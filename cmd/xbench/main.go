// Command xbench is the command-line front end of the XBench benchmark
// reproduction: it generates benchmark databases, prints the class schemas
// (the paper's Figures 1-4), loads engines, runs individual workload
// queries, and regenerates the paper's Tables 1-9.
//
// Usage:
//
//	xbench generate  --class=dcmd --size=small [--dir=out] [--seed=N]
//	xbench schema    --class=tcsd [--dtd|--xsd]
//	xbench tables    [--table=N]           (static Tables 1-3)
//	xbench bench     [--table=N] [--sizes=small,normal,large] [--repeat=N] [--scale=N] [--csv]
//	xbench report    [--format=table|json|csv] [--repeat=N] [--warm=N] [--q=5,12] [--sizes=...]
//	xbench chaos     [--seed=N] [--crashes=N] [--read-error-rate=F] [--torn-rate=F] [--size=S] [--scale=N] [--updates]
//	xbench ablation  [--q=N] [--size=S]    (indexed vs sequential scan)
//	xbench analyze   --class=tcmd --size=small
//	xbench verify    --class=dcmd --size=small
//	xbench shape     [--sizes=...]         (paper-vs-measured shape checks)
//	xbench load      --engine=x-hive --class=dcmd --size=small
//	xbench query     --engine=x-hive --class=dcmd --size=small --q=5 [--show]
//	xbench explain   --engine=x-hive --class=dcsd --size=small --query=5 [--remote=ADDR]
//	xbench workload  --engine=x-hive --class=dcmd --size=small
//	xbench updates   [--class=dcmd|tcmd] [--size=S] [--engine=NAME] [--remote=ADDR] [--repeat=N] [--format=table|json|csv] [--gen-seed=N] [--scale=N]
//	xbench throughput --engine=x-hive --class=dcmd --size=small [--remote=ADDR | --shards=LIST] [--skip-load] [--clients=1,2,4,8] [--ops=N|--duration=D] [--think=D] [--seed=N] [--update-fraction=F] [--update-seq-base=N] [--read-pref=primary|replica] [--partial=failfast|degraded] [--fanout=N] [--vnodes=N] [--format=table|json|csv] [--gen-seed=N] [--scale=N]
//	xbench mvcc-sweep [--class=dcmd] [--size=S] [--engine=NAME] [--fractions=0,0.1,...] [--clients=N] [--ops=N] [--seed=N] [--baseline] [--check] [--out=FILE] [--gen-seed=N]
//	xbench serve     --engine=x-hive --class=dcmd --size=small [--addr=HOST:PORT] [--shard=I/N] [--vnodes=N] [--replica-of=ADDR] [--poll=D] [--journal=FILE] [--max-inflight=N] [--queue-wait=D] [--request-timeout=D] [--drain-timeout=D] [--no-load] [--gen-seed=N] [--scale=N]
//	xbench route     --shards=P1[+R1],P2,... [--class=dcmd] [--size=S] [--addr=HOST:PORT] [--read-pref=primary|replica] [--partial=failfast|degraded] [--fanout=N] [--vnodes=N] [--max-inflight=N] [--queue-wait=D] [--request-timeout=D] [--drain-timeout=D] [--no-load] [--gen-seed=N] [--scale=N]
//	xbench perf      [--cell=pager|wire|journal|all] [--short] [--check] [--tolerance=F] [--out=FILE] [--baseline-dir=DIR] [--label=S]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"xbench/internal/analyze"
	"xbench/internal/bench"
	"xbench/internal/chaos"
	"xbench/internal/core"
	"xbench/internal/driver"
	"xbench/internal/gen"
	"xbench/internal/router"
	"xbench/internal/workload"
	"xbench/internal/xmldom"
	"xbench/internal/xmlschema"
)

// command is one subcommand row: the dispatch switch and the usage text
// are both generated from the same table, so they cannot drift apart.
type command struct {
	name    string
	summary string
	run     func(args []string) error
}

// commands lists every subcommand with its one-line description, in the
// order usage prints them.
var commands = []command{
	{"generate", "generate a benchmark database to a directory", cmdGenerate},
	{"schema", "print a class schema diagram (Figures 1-4), DTD or XSD", cmdSchema},
	{"tables", "print the static tables (Tables 1-3)", cmdTables},
	{"bench", "run the experiment grid and print Tables 4-9", cmdBench},
	{"report", "per-cell p50/p95/p99 metrics report with phase and I/O breakdown", cmdReport},
	{"chaos", "crash/recovery fault-injection grid over every engine x class", cmdChaos},
	{"ablation", "compare indexed vs sequential-scan query times", cmdAblation},
	{"analyze", "statistical analysis of a generated database (paper 2.1.1)", cmdAnalyze},
	{"verify", "cross-check every engine's answers against the native engine", cmdVerify},
	{"shape", "machine-checked paper-vs-measured shape comparison", cmdShape},
	{"load", "bulk-load one engine and report load statistics", cmdLoad},
	{"query", "run one workload query on one engine", cmdQuery},
	{"explain", "print the costed physical plan for one workload query", cmdExplain},
	{"workload", "run every defined query of a class on one engine", cmdWorkload},
	{"updates", "update workload (U1-U3): per-op p50/p95/p99 with I/O breakdown", cmdUpdates},
	{"throughput", "closed-loop multi-client driver: qps + per-query percentiles", cmdThroughput},
	{"mvcc-sweep", "read p99 vs update fraction, MVCC snapshots vs write-lock baseline", cmdMVCCSweep},
	{"serve", "serve one engine over TCP for remote throughput/updates runs", cmdServe},
	{"route", "front a shard cluster: hash-partitioned scatter-gather router over TCP", cmdRoute},
	{"perf", "hot-path before/after perf cells with archived baselines", cmdPerf},
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	name, args := os.Args[1], os.Args[2:]
	if name == "help" || name == "-h" || name == "--help" {
		usage()
		return
	}
	for _, c := range commands {
		if c.name == name {
			if err := c.run(args); err != nil {
				fmt.Fprintf(os.Stderr, "xbench %s: %v\n", name, err)
				os.Exit(1)
			}
			return
		}
	}
	fmt.Fprintf(os.Stderr, "xbench: unknown command %q\n", name)
	usage()
	os.Exit(2)
}

func usage() {
	fmt.Fprintln(os.Stderr, "xbench — XBench XML DBMS benchmark (ICDE 2004) reproduction")
	fmt.Fprintln(os.Stderr, "\ncommands:")
	for _, c := range commands {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", c.name, c.summary)
	}
	fmt.Fprintln(os.Stderr, `
engines: x-hive | xcolumn | xcollection | sql-server
classes: tcsd | tcmd | dcsd | dcmd
sizes:   small | normal | large

run 'xbench <command> --help' for the command's flags`)
}

func classFlag(fs *flag.FlagSet) *string { return fs.String("class", "dcmd", "database class") }
func sizeFlag(fs *flag.FlagSet) *string  { return fs.String("size", "small", "database size") }

func parseClassSize(classStr, sizeStr string) (core.Class, core.Size, error) {
	class, err := core.ParseClass(classStr)
	if err != nil {
		return 0, 0, err
	}
	size, err := core.ParseSize(sizeStr)
	if err != nil {
		return 0, 0, err
	}
	return class, size, nil
}

// engineNameByFlag resolves a CLI engine spelling to its paper row label.
func engineNameByFlag(name string) (string, error) {
	switch strings.ToLower(strings.NewReplacer("-", "", "_", "", " ", "").Replace(name)) {
	case "xhive", "native":
		return "X-Hive", nil
	case "xcolumn":
		return "Xcolumn", nil
	case "xcollection":
		return "Xcollection", nil
	case "sqlserver":
		return "SQL Server", nil
	}
	return "", fmt.Errorf("unknown engine %q", name)
}

func engineByFlag(name string) (core.Engine, error) {
	label, err := engineNameByFlag(name)
	if err != nil {
		return nil, err
	}
	return bench.NewEngine(label), nil
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	classStr, sizeStr := classFlag(fs), sizeFlag(fs)
	dir := fs.String("dir", "xbench-data", "output directory")
	seed := fs.Uint64("seed", 0, "generation seed")
	scale := fs.Int("scale", 1, "extra size multiplier (25 approximates the paper's absolute sizes)")
	fs.Parse(args)
	class, size, err := parseClassSize(*classStr, *sizeStr)
	if err != nil {
		return err
	}
	cfg := gen.Config{Seed: *seed, SizeMultiplier: *scale}
	db, err := cfg.Generate(class, size)
	if err != nil {
		return err
	}
	out := filepath.Join(*dir, db.Instance())
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	for _, d := range db.Docs {
		if err := os.WriteFile(filepath.Join(out, d.Name), d.Data, 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("generated %s: %d document(s), %d bytes -> %s\n",
		db.Instance(), len(db.Docs), db.Bytes(), out)
	return nil
}

func cmdSchema(args []string) error {
	fs := flag.NewFlagSet("schema", flag.ExitOnError)
	classStr := classFlag(fs)
	dtd := fs.Bool("dtd", false, "emit a DTD instead of the diagram")
	xsd := fs.Bool("xsd", false, "emit a W3C XML Schema instead of the diagram")
	fs.Parse(args)
	class, err := core.ParseClass(*classStr)
	if err != nil {
		return err
	}
	s := xmlschema.For(class)
	switch {
	case *dtd:
		fmt.Print(s.DTD())
	case *xsd:
		fmt.Print(s.XSD())
	default:
		fmt.Print(s.Diagram())
	}
	return nil
}

func cmdTables(args []string) error {
	fs := flag.NewFlagSet("tables", flag.ExitOnError)
	table := fs.Int("table", 0, "table number (1-3); 0 = all static tables")
	fs.Parse(args)
	switch *table {
	case 0:
		bench.PrintTable1(os.Stdout)
		bench.PrintTable2(os.Stdout)
		bench.PrintTable3(os.Stdout)
	case 1:
		bench.PrintTable1(os.Stdout)
	case 2:
		bench.PrintTable2(os.Stdout)
	case 3:
		bench.PrintTable3(os.Stdout)
	default:
		return fmt.Errorf("static tables are 1-3; use 'xbench bench --table=%d' for measured tables", *table)
	}
	return nil
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	table := fs.Int("table", 0, "table number (4-9); 0 = all")
	sizesStr := fs.String("sizes", "small,normal,large", "comma-separated sizes")
	repeat := fs.Int("repeat", 3, "cold runs averaged per query cell")
	scale := fs.Int("scale", 1, "extra size multiplier over the library defaults")
	seed := fs.Uint64("seed", 0, "generation seed")
	csv := fs.Bool("csv", false, "emit CSV rows (header table,engine,class,size,value_ms)")
	fs.Parse(args)
	sizes, err := parseSizes(*sizesStr)
	if err != nil {
		return err
	}
	cfg := gen.Config{Seed: *seed, SizeMultiplier: *scale}
	r := bench.NewRunner(cfg, sizes, os.Stdout)
	r.Repeat = *repeat
	r.CSV = *csv
	switch {
	case *table == 0:
		return r.AllTables()
	case *table == 4:
		return r.Table4()
	case *table >= 5 && *table <= 9:
		if err := r.Table4(); err != nil { // loads feed the query tables
			return err
		}
		return r.QueryTable(*table)
	default:
		return fmt.Errorf("measured tables are 4-9")
	}
}

func cmdChaos(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	sizeStr := sizeFlag(fs)
	seed := fs.Uint64("seed", 0, "fault-injection seed (same seed => same faults)")
	crashes := fs.Int("crashes", 3, "crash points per engine x class cell")
	readRate := fs.Float64("read-error-rate", 0, "transient read-fault probability during reload (0 = default, negative = off)")
	tornRate := fs.Float64("torn-rate", 0, "torn-page-write probability during reload (0 = default, negative = off)")
	scale := fs.Int("scale", 1, "extra size multiplier")
	genSeed := fs.Uint64("gen-seed", 0, "generation seed")
	updates := fs.Bool("updates", false, "also run the crash-during-update grid (U1-U3 on the multi-document classes)")
	updatesOnly := fs.Bool("updates-only", false, "run only the crash-during-update grid")
	fs.Parse(args)
	size, err := core.ParseSize(*sizeStr)
	if err != nil {
		return err
	}
	r := bench.NewRunner(gen.Config{Seed: *genSeed, SizeMultiplier: *scale}, []core.Size{size}, os.Stdout)
	cfg := chaos.Config{
		Seed:          *seed,
		CrashPoints:   *crashes,
		ReadErrorRate: *readRate,
		TornWriteRate: *tornRate,
	}
	if !*updatesOnly {
		if err := r.ChaosGrid(cfg); err != nil {
			return err
		}
	}
	if *updates || *updatesOnly {
		return r.UpdateChaosGrid(cfg)
	}
	return nil
}

func cmdAblation(args []string) error {
	fs := flag.NewFlagSet("ablation", flag.ExitOnError)
	sizeStr := sizeFlag(fs)
	qNum := fs.Int("q", 5, "query number")
	repeat := fs.Int("repeat", 3, "cold runs averaged per cell")
	scale := fs.Int("scale", 1, "extra size multiplier")
	fs.Parse(args)
	size, err := core.ParseSize(*sizeStr)
	if err != nil {
		return err
	}
	r := bench.NewRunner(gen.Config{SizeMultiplier: *scale}, []core.Size{size}, os.Stdout)
	r.Repeat = *repeat
	return r.IndexAblation(core.QueryID(*qNum), size)
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	classStr, sizeStr := classFlag(fs), sizeFlag(fs)
	seed := fs.Uint64("seed", 0, "generation seed")
	fs.Parse(args)
	class, size, err := parseClassSize(*classStr, *sizeStr)
	if err != nil {
		return err
	}
	db, err := gen.Config{Seed: *seed}.Generate(class, size)
	if err != nil {
		return err
	}
	r := analyze.New()
	for _, d := range db.Docs {
		doc, err := xmldom.Parse(d.Data)
		if err != nil {
			return err
		}
		r.AddDocument(doc)
	}
	r.Finish()
	_, err = r.WriteTo(os.Stdout)
	return err
}

func cmdVerify(args []string) error {
	ctx := context.Background()
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	classStr, sizeStr := classFlag(fs), sizeFlag(fs)
	seed := fs.Uint64("seed", 0, "generation seed")
	fs.Parse(args)
	class, size, err := parseClassSize(*classStr, *sizeStr)
	if err != nil {
		return err
	}
	db, err := gen.Config{Seed: *seed}.Generate(class, size)
	if err != nil {
		return err
	}
	oracle, err := engineByFlag("x-hive")
	if err != nil {
		return err
	}
	if _, _, err := workload.LoadAndIndex(ctx, oracle, db); err != nil {
		return err
	}
	fmt.Printf("verifying %s against %s\n", db.Instance(), oracle.Name())
	failures := 0
	for _, name := range []string{"xcolumn", "xcollection", "sql-server"} {
		e, err := engineByFlag(name)
		if err != nil {
			return err
		}
		if e.Supports(class, size) != nil {
			fmt.Printf("%-12s unsupported for %s %s (blank cells in the paper)\n",
				e.Name(), class, size)
			continue
		}
		if _, _, err := workload.LoadAndIndex(ctx, e, db); err != nil {
			return err
		}
		for _, q := range workload.QueryIDs(class) {
			want := workload.RunCold(ctx, oracle, class, q)
			if want.Err != nil {
				return fmt.Errorf("native %s: %w", q, want.Err)
			}
			got := workload.RunCold(ctx, e, class, q)
			if errors.Is(got.Err, core.ErrNoQuery) {
				continue // not hand-translated for this engine
			}
			if got.Err != nil {
				fmt.Printf("%-12s %-4s ERROR: %v\n", e.Name(), q, got.Err)
				failures++
				continue
			}
			mode := workload.ModeFor(class, q, e.Name())
			if err := workload.Check(mode, want.Result, got.Result); err != nil {
				fmt.Printf("%-12s %-4s MISMATCH (%s): %v\n", e.Name(), q, mode, err)
				failures++
				continue
			}
			fmt.Printf("%-12s %-4s ok (%d items, checked %s)\n",
				e.Name(), q, got.Result.Count(), mode)
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d verification failure(s)", failures)
	}
	fmt.Println("all checks passed")
	return nil
}

func parseSizes(sizesStr string) ([]core.Size, error) {
	var sizes []core.Size
	for _, part := range strings.Split(sizesStr, ",") {
		s, err := core.ParseSize(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		sizes = append(sizes, s)
	}
	return sizes, nil
}

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	sizesStr := fs.String("sizes", "small,normal,large", "comma-separated sizes")
	repeat := fs.Int("repeat", 5, "cold runs per cell (percentiles need several)")
	warm := fs.Int("warm", 3, "warm runs per cell after the cold runs (0 disables)")
	format := fs.String("format", "table", "output format: table, json or csv")
	queriesStr := fs.String("q", "", "comma-separated query numbers (default: the paper tables' 5,12,17,8,14)")
	scale := fs.Int("scale", 1, "extra size multiplier")
	seed := fs.Uint64("seed", 0, "generation seed")
	fs.Parse(args)
	sizes, err := parseSizes(*sizesStr)
	if err != nil {
		return err
	}
	var queries []core.QueryID
	if *queriesStr != "" {
		for _, part := range strings.Split(*queriesStr, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &n); err != nil {
				return fmt.Errorf("bad query number %q", part)
			}
			queries = append(queries, core.QueryID(n))
		}
	}
	r := bench.NewRunner(gen.Config{Seed: *seed, SizeMultiplier: *scale}, sizes, os.Stdout)
	return r.MetricsReport(bench.ReportOptions{
		Queries: queries,
		Repeat:  *repeat,
		Warm:    *warm,
		Format:  *format,
	})
}

func cmdShape(args []string) error {
	fs := flag.NewFlagSet("shape", flag.ExitOnError)
	sizesStr := fs.String("sizes", "small,normal,large", "comma-separated sizes")
	repeat := fs.Int("repeat", 2, "cold runs averaged per cell")
	scale := fs.Int("scale", 1, "extra size multiplier")
	fs.Parse(args)
	sizes, err := parseSizes(*sizesStr)
	if err != nil {
		return err
	}
	r := bench.NewRunner(gen.Config{SizeMultiplier: *scale}, sizes, os.Stdout)
	r.Repeat = *repeat
	return r.ShapeReport()
}

func cmdLoad(args []string) error {
	ctx := context.Background()
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	classStr, sizeStr := classFlag(fs), sizeFlag(fs)
	engineStr := fs.String("engine", "x-hive", "engine name")
	seed := fs.Uint64("seed", 0, "generation seed")
	fs.Parse(args)
	class, size, err := parseClassSize(*classStr, *sizeStr)
	if err != nil {
		return err
	}
	e, err := engineByFlag(*engineStr)
	if err != nil {
		return err
	}
	db, err := gen.Config{Seed: *seed}.Generate(class, size)
	if err != nil {
		return err
	}
	st, dur, err := workload.LoadAndIndex(ctx, e, db)
	if err != nil {
		return err
	}
	fmt.Printf("%s loaded %s (%d docs, %d bytes) in %v\n",
		e.Name(), db.Instance(), st.Documents, st.Bytes, dur)
	fmt.Printf("  rows=%d nodes=%d pageIO=%d skippedMixed=%d\n",
		st.Rows, st.Nodes, st.PageIO, st.SkippedMixed)
	return nil
}

func cmdQuery(args []string) error {
	ctx := context.Background()
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	classStr, sizeStr := classFlag(fs), sizeFlag(fs)
	engineStr := fs.String("engine", "x-hive", "engine name")
	qNum := fs.Int("q", 5, "query number (1-20)")
	show := fs.Bool("show", false, "print result items")
	seed := fs.Uint64("seed", 0, "generation seed")
	fs.Parse(args)
	class, size, err := parseClassSize(*classStr, *sizeStr)
	if err != nil {
		return err
	}
	e, err := engineByFlag(*engineStr)
	if err != nil {
		return err
	}
	db, err := gen.Config{Seed: *seed}.Generate(class, size)
	if err != nil {
		return err
	}
	if _, _, err := workload.LoadAndIndex(ctx, e, db); err != nil {
		return err
	}
	m := workload.RunCold(ctx, e, class, core.QueryID(*qNum))
	if m.Err != nil {
		return m.Err
	}
	fmt.Printf("%s %s/%s: %d item(s) in %v (cold), pageIO=%d order=%v mixedLost=%v\n",
		e.Name(), class, m.Query, m.Result.Count(), m.Elapsed,
		m.Result.PageIO, m.Result.OrderGuaranteed, m.Result.MixedContentLost)
	if *show {
		for i, item := range m.Result.Items {
			fmt.Printf("  [%d] %s\n", i+1, item)
		}
	}
	return nil
}

// cmdExplain prints the costed physical plan an engine would execute for
// one workload query, either against a freshly loaded local engine or a
// served engine over the wire (OpExplain).
func cmdExplain(args []string) error {
	ctx := context.Background()
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	classStr, sizeStr := classFlag(fs), sizeFlag(fs)
	engineStr := fs.String("engine", "x-hive", "engine name (local mode)")
	qNum := fs.Int("query", 5, "query number (1-20)")
	remote := fs.String("remote", "", "address of an `xbench serve` instance")
	seed := fs.Uint64("seed", 0, "generation seed (local mode)")
	fs.Parse(args)
	class, size, err := parseClassSize(*classStr, *sizeStr)
	if err != nil {
		return err
	}
	q := core.QueryID(*qNum)
	var (
		node *core.PlanNode
		name string
	)
	if *remote != "" {
		cl, err := dialRemote(*remote)
		if err != nil {
			return err
		}
		defer cl.Close()
		name = cl.Name()
		node, err = cl.Explain(ctx, q, workload.Params(class))
		if err != nil {
			return err
		}
	} else {
		e, err := engineByFlag(*engineStr)
		if err != nil {
			return err
		}
		db, err := gen.Config{Seed: *seed}.Generate(class, size)
		if err != nil {
			return err
		}
		if _, _, err := workload.LoadAndIndex(ctx, e, db); err != nil {
			return err
		}
		name = e.Name()
		node, err = core.Explain(ctx, e, q, workload.Params(class))
		if err != nil {
			return err
		}
	}
	fmt.Printf("%s %s/Q%d:\n%s", name, class, *qNum, node.Format())
	return nil
}

func cmdWorkload(args []string) error {
	ctx := context.Background()
	fs := flag.NewFlagSet("workload", flag.ExitOnError)
	classStr, sizeStr := classFlag(fs), sizeFlag(fs)
	engineStr := fs.String("engine", "x-hive", "engine name")
	seed := fs.Uint64("seed", 0, "generation seed")
	fs.Parse(args)
	class, size, err := parseClassSize(*classStr, *sizeStr)
	if err != nil {
		return err
	}
	e, err := engineByFlag(*engineStr)
	if err != nil {
		return err
	}
	db, err := gen.Config{Seed: *seed}.Generate(class, size)
	if err != nil {
		return err
	}
	if _, _, err := workload.LoadAndIndex(ctx, e, db); err != nil {
		return err
	}
	fmt.Printf("%s on %s (%d docs, %d bytes)\n", e.Name(), db.Instance(), len(db.Docs), db.Bytes())
	for _, q := range workload.QueryIDs(class) {
		m := workload.RunCold(ctx, e, class, q)
		if m.Err == core.ErrNoQuery {
			continue
		}
		if m.Err != nil {
			fmt.Printf("  %-4s %-34s error: %v\n", q, q.FunctionGroup(), m.Err)
			continue
		}
		fmt.Printf("  %-4s %-34s %6d item(s) %10v pageIO=%d\n",
			q, q.FunctionGroup(), m.Result.Count(), m.Elapsed, m.Result.PageIO)
	}
	return nil
}

type updatesOpts struct {
	class, size, engine, remote, format *string
	repeat, scale                       *int
	genSeed                             *uint64
}

func updatesFlags(fs *flag.FlagSet) *updatesOpts {
	return &updatesOpts{
		class:   classFlag(fs),
		size:    sizeFlag(fs),
		engine:  fs.String("engine", "", "engine name (empty = every engine)"),
		remote:  fs.String("remote", "", "address of an 'xbench serve' instance; measures that one engine over TCP"),
		repeat:  fs.Int("repeat", 5, "measured runs per update op (percentiles need several)"),
		format:  fs.String("format", "table", "output format: table, json or csv"),
		genSeed: fs.Uint64("gen-seed", 0, "generation seed"),
		scale:   fs.Int("scale", 1, "extra size multiplier"),
	}
}

func cmdUpdates(args []string) error {
	fs := flag.NewFlagSet("updates", flag.ExitOnError)
	o := updatesFlags(fs)
	fs.Parse(args)
	class, size, err := parseClassSize(*o.class, *o.size)
	if err != nil {
		return err
	}
	var engines []string
	if *o.engine != "" {
		label, err := engineNameByFlag(*o.engine)
		if err != nil {
			return err
		}
		engines = []string{label}
	}
	r := bench.NewRunner(gen.Config{Seed: *o.genSeed, SizeMultiplier: *o.scale}, []core.Size{size}, os.Stdout)
	if *o.remote != "" {
		// One remote row: the grid dials a fresh client per row (loads
		// travel over the wire; closing a client leaves the server up).
		probe, err := dialRemote(*o.remote)
		if err != nil {
			return err
		}
		probe.Close()
		engines = []string{probe.Name()}
		r.EngineList = engines
		addr := *o.remote
		r.NewEngineFn = func(string) core.Engine {
			cl, err := dialRemote(addr)
			if err != nil {
				return unreachableEngine{name: probe.Name(), err: err}
			}
			return cl
		}
	}
	return r.UpdatesReport(bench.UpdatesOptions{
		Class:   class,
		Repeat:  *o.repeat,
		Format:  *o.format,
		Engines: engines,
	})
}

// parseClients parses a comma-separated client-count list like "1,2,4,8".
func parseClients(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad client count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

type throughputOpts struct {
	class, size, engine, remote, clients, format *string
	skipLoad                                     *bool
	ops, scale, updateSeqBase                    *int
	duration, think                              *time.Duration
	seed, genSeed                                *uint64
	updateFraction                               *float64
	router                                       *routerOpts
}

func throughputFlags(fs *flag.FlagSet) *throughputOpts {
	return &throughputOpts{
		class:          classFlag(fs),
		size:           sizeFlag(fs),
		engine:         fs.String("engine", "x-hive", "engine name (ignored with --remote/--shards: the servers picked it)"),
		remote:         fs.String("remote", "", "address of an 'xbench serve' instance; drives it over TCP instead of in-process"),
		skipLoad:       fs.Bool("skip-load", false, "with --remote/--shards: assume the server(s) already loaded, skip the wire load"),
		clients:        fs.String("clients", "1,2,4,8", "comma-separated client counts to sweep"),
		ops:            fs.Int("ops", 0, "queries per client (0 = use --duration)"),
		duration:       fs.Duration("duration", 0, "wall-clock bound per step (used when --ops=0; 0 selects 50 ops/client)"),
		think:          fs.Duration("think", 0, "closed-loop think time between queries (0 = 2ms default, negative disables)"),
		seed:           fs.Uint64("seed", 1, "query-mix seed (same seed + clients => same per-client op sequence)"),
		updateFraction: fs.Float64("update-fraction", 0, "per-op probability of a document update instead of a query (mixed read/write mode; needs a multi-document class)"),
		updateSeqBase:  fs.Int("update-seq-base", 0, "first update-document sequence number; raise it when re-running a mixed sweep against a server that already consumed earlier sequences"),
		format:         fs.String("format", "table", "output format: table, json or csv"),
		genSeed:        fs.Uint64("gen-seed", 0, "generation seed"),
		scale:          fs.Int("scale", 1, "extra size multiplier"),
		router:         routerFlagSet(fs),
	}
}

func cmdThroughput(args []string) error {
	ctx := context.Background()
	fs := flag.NewFlagSet("throughput", flag.ExitOnError)
	o := throughputFlags(fs)
	fs.Parse(args)
	class, size, err := parseClassSize(*o.class, *o.size)
	if err != nil {
		return err
	}
	clients, err := parseClients(*o.clients)
	if err != nil {
		return err
	}
	var e core.Engine
	var rt *router.Router
	switch {
	case *o.remote != "" && *o.router.shards != "":
		return fmt.Errorf("--remote and --shards are mutually exclusive")
	case *o.remote != "":
		cl, err := dialRemote(*o.remote)
		if err != nil {
			return err
		}
		defer cl.Close()
		e = cl
	case *o.router.shards != "":
		if rt, err = o.router.dial(); err != nil {
			return err
		}
		defer rt.Close()
		e = rt
	default:
		if e, err = engineByFlag(*o.engine); err != nil {
			return err
		}
	}
	if (*o.remote == "" && rt == nil) || !*o.skipLoad {
		db, err := gen.Config{Seed: *o.genSeed, SizeMultiplier: *o.scale}.Generate(class, size)
		if err != nil {
			return err
		}
		if _, _, err := workload.LoadAndIndex(ctx, e, db); err != nil {
			return err
		}
	}
	reports, err := driver.Sweep(ctx, e, class, clients, driver.Config{
		OpsPerClient:   *o.ops,
		Duration:       *o.duration,
		Seed:           *o.seed,
		Think:          *o.think,
		UpdateFraction: *o.updateFraction,
		UpdateSeqBase:  *o.updateSeqBase,
	})
	if err != nil {
		return err
	}
	// With --shards, append the per-shard routing counters to the report
	// (on stderr for the machine formats, so their output stays parseable).
	shardReport := func() {
		if rt == nil {
			return
		}
		w := os.Stdout
		if *o.format != "table" {
			w = os.Stderr
		}
		printShardMetrics(w, rt.Metrics())
	}
	switch *o.format {
	case "table":
		driver.WriteTable(os.Stdout, reports)
		shardReport()
		return nil
	case "json":
		err = driver.WriteJSON(os.Stdout, reports)
		shardReport()
		return err
	case "csv":
		err = driver.WriteCSV(os.Stdout, reports)
		shardReport()
		return err
	default:
		return fmt.Errorf("unknown format %q (want table, json or csv)", *o.format)
	}
}
