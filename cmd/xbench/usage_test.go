package main

import (
	"flag"
	"os"
	"regexp"
	"testing"
)

// TestUsageMatchesFlags pins the package doc comment's usage lines to the
// flags the commands actually register, in both directions: every --flag
// on a command's usage line must be registered, and every registered flag
// must appear on the line. The audited set is the serving/driver commands,
// whose flag lists have historically drifted from the doc comment.
func TestUsageMatchesFlags(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	flagRe := regexp.MustCompile(`--([a-z][a-z0-9-]*)`)
	cases := []struct {
		name     string
		register func(fs *flag.FlagSet)
	}{
		{"updates", func(fs *flag.FlagSet) { updatesFlags(fs) }},
		{"throughput", func(fs *flag.FlagSet) { throughputFlags(fs) }},
		{"serve", func(fs *flag.FlagSet) { serveFlags(fs) }},
		{"route", func(fs *flag.FlagSet) { routeFlags(fs) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lineRe := regexp.MustCompile(`(?m)^//\txbench ` + tc.name + `\s+(.*)$`)
			m := lineRe.FindSubmatch(src)
			if m == nil {
				t.Fatalf("no usage line for %q in main.go's package doc comment", tc.name)
			}
			doc := map[string]bool{}
			for _, f := range flagRe.FindAllSubmatch(m[1], -1) {
				doc[string(f[1])] = true
			}
			fs := flag.NewFlagSet(tc.name, flag.ContinueOnError)
			tc.register(fs)
			fs.VisitAll(func(f *flag.Flag) {
				if !doc[f.Name] {
					t.Errorf("flag --%s is registered but missing from the usage line", f.Name)
				}
				delete(doc, f.Name)
			})
			for name := range doc {
				t.Errorf("usage line mentions --%s but the command does not register it", name)
			}
		})
	}
}

// TestUsageCoversEveryCommand checks each entry of the dispatch table has
// a usage line in the doc comment — mvcc-sweep once went missing there.
func TestUsageCoversEveryCommand(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range commands {
		re := regexp.MustCompile(`(?m)^//\txbench ` + regexp.QuoteMeta(c.name) + `\s`)
		if !re.Match(src) {
			t.Errorf("command %q has no usage line in the package doc comment", c.name)
		}
	}
}
