// `xbench route` fronts a shard cluster: it dials every shard of a
// sharded serving tier (each an `xbench serve --shard=i/n` process, plus
// optional `--replica-of` replicas), wraps them in the hash-partitioned
// scatter-gather router, and serves the router itself over TCP — so any
// wire client (`throughput --remote`, `updates --remote`) drives the
// whole cluster through one address. The server attaches each request's
// idempotency key to its context and the router's shard clients reuse it,
// so an update retried against the front end stays exactly-once on the
// owning shard.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"xbench/internal/client"
	"xbench/internal/gen"
	"xbench/internal/metrics"
	"xbench/internal/router"
	"xbench/internal/server"
	"xbench/internal/workload"
)

// routerOpts are the flags shared by every command that fronts a shard
// cluster (`route`, `throughput --shards`).
type routerOpts struct {
	shards   *string
	readPref *string
	partial  *string
	fanout   *int
	vnodes   *int
}

func routerFlagSet(fs *flag.FlagSet) *routerOpts {
	return &routerOpts{
		shards:   fs.String("shards", "", "comma-separated shard list, each PRIMARY[+REPLICA[+REPLICA...]] (e.g. :9411+:9421,:9412)"),
		readPref: fs.String("read-pref", "primary", "read preference: primary (always fresh) or replica (offloaded, may lag by the journal-shipping interval)"),
		partial:  fs.String("partial", "failfast", "scatter partial-failure policy: failfast or degraded (answered shards' union + shard-error count)"),
		fanout:   fs.Int("fanout", 0, "concurrent shard legs per scatter (0 = default)"),
		vnodes:   fs.Int("vnodes", 0, "virtual nodes per shard on the hash ring; must match the shards' --vnodes (0 = default)"),
	}
}

// parseShards parses the --shards list into shard specs.
func parseShards(s string) ([]router.Shard, error) {
	var shards []router.Shard
	for _, part := range strings.Split(s, ",") {
		members := strings.Split(strings.TrimSpace(part), "+")
		sh := router.Shard{Primary: strings.TrimSpace(members[0])}
		if sh.Primary == "" {
			return nil, fmt.Errorf("empty shard entry in --shards=%q", s)
		}
		for _, rep := range members[1:] {
			if rep = strings.TrimSpace(rep); rep == "" {
				return nil, fmt.Errorf("empty replica address in --shards entry %q", part)
			}
			sh.Replicas = append(sh.Replicas, rep)
		}
		shards = append(shards, sh)
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("--shards needs at least one shard address")
	}
	return shards, nil
}

// dial builds the router the flags describe.
func (o *routerOpts) dial() (*router.Router, error) {
	shards, err := parseShards(*o.shards)
	if err != nil {
		return nil, err
	}
	cfg := router.Config{
		Vnodes: *o.vnodes,
		Fanout: *o.fanout,
		Client: client.Config{Pipeline: true},
	}
	switch *o.readPref {
	case "primary":
		cfg.ReadPref = router.ReadPrimary
	case "replica":
		cfg.ReadPref = router.ReadReplica
	default:
		return nil, fmt.Errorf("unknown --read-pref %q (want primary or replica)", *o.readPref)
	}
	switch *o.partial {
	case "failfast":
	case "degraded":
		cfg.Degraded = true
	default:
		return nil, fmt.Errorf("unknown --partial %q (want failfast or degraded)", *o.partial)
	}
	return router.Dial(shards, cfg)
}

// printShardMetrics renders the router.shard.<i>.* counters and the
// gather histogram: the per-shard view of where routed ops, scatter legs,
// errors and read failovers went. Sync the failover counters first by
// snapshotting via Router.Metrics().
func printShardMetrics(w io.Writer, reg *metrics.Registry) {
	snap := reg.Snapshot()
	fmt.Fprintf(w, "%-6s %8s %8s %8s %10s\n", "shard", "routed", "scatter", "errors", "failovers")
	for i := 0; ; i++ {
		pfx := fmt.Sprintf("router.shard.%d.", i)
		if _, ok := snap.Counters[pfx+"routed"]; !ok {
			break
		}
		fmt.Fprintf(w, "%-6d %8d %8d %8d %10d\n", i,
			snap.Counters[pfx+"routed"], snap.Counters[pfx+"scatter"],
			snap.Counters[pfx+"errors"], snap.Counters[pfx+"failovers"])
	}
	if g := reg.Histogram("router.gather"); g.Count() > 0 {
		fmt.Fprintf(w, "gather: n=%d p50=%v p95=%v p99=%v\n", g.Count(), g.P50(), g.P95(), g.P99())
	}
}

type routeOpts struct {
	class, size, addr                       *string
	maxInflight, scale                      *int
	queueWait, requestTimeout, drainTimeout *time.Duration
	noLoad                                  *bool
	genSeed                                 *uint64
	router                                  *routerOpts
}

func routeFlags(fs *flag.FlagSet) *routeOpts {
	return &routeOpts{
		class:          classFlag(fs),
		size:           sizeFlag(fs),
		addr:           fs.String("addr", "127.0.0.1:9410", "listen address (port 0 picks a free port, printed on stdout)"),
		maxInflight:    fs.Int("max-inflight", 0, "admission-control slots; above this requests queue, then shed (0 = default)"),
		queueWait:      fs.Duration("queue-wait", 0, "longest a request waits for a slot before the overload rejection (0 = default)"),
		requestTimeout: fs.Duration("request-timeout", 0, "server-side cap on one request's context deadline (0 = default)"),
		drainTimeout:   fs.Duration("drain-timeout", 10*time.Second, "grace period for in-flight requests on SIGTERM"),
		noLoad:         fs.Bool("no-load", false, "skip the partitioned bulk load; the shards are already loaded (e.g. by `serve --shard`)"),
		genSeed:        fs.Uint64("gen-seed", 0, "generation seed"),
		scale:          fs.Int("scale", 1, "extra size multiplier"),
		router:         routerFlagSet(fs),
	}
}

func cmdRoute(args []string) error {
	fs := flag.NewFlagSet("route", flag.ExitOnError)
	o := routeFlags(fs)
	fs.Parse(args)
	class, size, err := parseClassSize(*o.class, *o.size)
	if err != nil {
		return err
	}
	if *o.router.shards == "" {
		return fmt.Errorf("route: --shards is required (start them with `xbench serve --shard=i/n`)")
	}
	r, err := o.router.dial()
	if err != nil {
		return err
	}
	if !*o.noLoad {
		db, err := gen.Config{Seed: *o.genSeed, SizeMultiplier: *o.scale}.Generate(class, size)
		if err != nil {
			r.Close()
			return err
		}
		st, dur, err := workload.LoadAndIndex(context.Background(), r, db)
		if err != nil {
			r.Close()
			return err
		}
		fmt.Printf("loaded %s across %d shard(s) (%d docs, %d bytes) in %v\n",
			db.Instance(), r.Shards(), st.Documents, st.Bytes, dur)
	}
	srv := server.New(r, server.Config{
		Addr:           *o.addr,
		MaxInflight:    *o.maxInflight,
		QueueWait:      *o.queueWait,
		RequestTimeout: *o.requestTimeout,
	})
	if err := srv.Start(); err != nil {
		return err
	}
	fmt.Printf("routing %s on %s (drive with: xbench throughput --remote=%s --skip-load --class=%s)\n",
		r.Name(), srv.Addr(), srv.Addr(), class.Code())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	sig := <-sigc
	signal.Stop(sigc) // a second signal kills the process the default way
	fmt.Printf("%s: draining (up to %v) ...\n", sig, *o.drainTimeout)

	reg := r.Metrics() // sync failover counters while the shards are still dialed
	ctx, cancel := context.WithTimeout(context.Background(), *o.drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil { // closes the router with it
		return err
	}
	printShardMetrics(os.Stdout, reg)
	fmt.Println("drained; bye")
	return nil
}
