// The serving side of the network layer: `xbench serve` loads one engine
// and exposes it over TCP; `throughput --remote` / `updates --remote`
// (main.go) drive it from another process through internal/client.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"xbench/internal/client"
	"xbench/internal/core"
	"xbench/internal/gen"
	"xbench/internal/router"
	"xbench/internal/server"
	"xbench/internal/workload"
)

// dialRemote connects to an `xbench serve` instance with the CLI's
// default client tuning: the pipelined transport, so a multi-worker
// driver shares a few multiplexed connections instead of one socket
// per in-flight request.
func dialRemote(addr string) (*client.Client, error) {
	return client.Dial(addr, client.Config{Pipeline: true})
}

// unreachableEngine stands in for a remote row whose re-dial failed; it
// declines every class so the grid skips it instead of panicking.
type unreachableEngine struct {
	name string
	err  error
}

func (u unreachableEngine) Name() string                         { return u.name }
func (u unreachableEngine) Supports(core.Class, core.Size) error { return u.err }
func (u unreachableEngine) BuildIndexes([]core.IndexSpec) error  { return u.err }
func (u unreachableEngine) ColdReset()                           {}
func (u unreachableEngine) PageIO() int64                        { return 0 }
func (u unreachableEngine) Close() error                         { return nil }
func (u unreachableEngine) Load(context.Context, *core.Database) (core.LoadStats, error) {
	return core.LoadStats{}, u.err
}
func (u unreachableEngine) Execute(context.Context, core.QueryID, core.Params) (core.Result, error) {
	return core.Result{}, u.err
}
func (u unreachableEngine) InsertDocument(context.Context, string, []byte) error  { return u.err }
func (u unreachableEngine) ReplaceDocument(context.Context, string, []byte) error { return u.err }
func (u unreachableEngine) DeleteDocument(context.Context, string) error          { return u.err }

type serveOpts struct {
	class, size, engine, addr, journal, shard, replicaOf *string
	maxInflight, scale, vnodes                           *int
	queueWait, requestTimeout, drainTimeout, poll        *time.Duration
	noLoad                                               *bool
	genSeed                                              *uint64
}

func serveFlags(fs *flag.FlagSet) *serveOpts {
	return &serveOpts{
		class:          classFlag(fs),
		size:           sizeFlag(fs),
		engine:         fs.String("engine", "x-hive", "engine to serve"),
		addr:           fs.String("addr", "127.0.0.1:9410", "listen address (port 0 picks a free port, printed on stdout)"),
		maxInflight:    fs.Int("max-inflight", 0, "admission-control slots; above this requests queue, then shed (0 = default)"),
		queueWait:      fs.Duration("queue-wait", 0, "longest a request waits for a slot before the overload rejection (0 = default)"),
		requestTimeout: fs.Duration("request-timeout", 0, "server-side cap on one request's context deadline (0 = default)"),
		drainTimeout:   fs.Duration("drain-timeout", 10*time.Second, "grace period for in-flight requests on SIGTERM"),
		noLoad:         fs.Bool("no-load", false, "serve the engine empty; a remote client loads it over the wire"),
		journal:        fs.String("journal", "", "durable update journal path; recovered before serving, so acknowledged updates survive a process kill"),
		shard:          fs.String("shard", "", "serve one partition of the generated database, as I/N (e.g. 0/3); ownership follows the router's hash ring"),
		vnodes:         fs.Int("vnodes", 0, "virtual nodes per shard on the hash ring; must match the router's --vnodes (0 = default)"),
		replicaOf:      fs.String("replica-of", "", "run as a read-only replica of the primary at this address, continuously replaying its shipped journal"),
		poll:           fs.Duration("poll", 0, "replica journal poll interval (0 = default)"),
		genSeed:        fs.Uint64("gen-seed", 0, "generation seed"),
		scale:          fs.Int("scale", 1, "extra size multiplier"),
	}
}

// parseShardSpec parses a --shard=I/N partition coordinate.
func parseShardSpec(s string) (int, int, error) {
	var idx, n int
	if _, err := fmt.Sscanf(s, "%d/%d", &idx, &n); err != nil {
		return 0, 0, fmt.Errorf("bad --shard %q (want I/N, e.g. 0/3)", s)
	}
	if n < 1 || idx < 0 || idx >= n {
		return 0, 0, fmt.Errorf("bad --shard %q: index must be in [0,%d)", s, n)
	}
	return idx, n, nil
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	o := serveFlags(fs)
	fs.Parse(args)
	class, size, err := parseClassSize(*o.class, *o.size)
	if err != nil {
		return err
	}
	e, err := engineByFlag(*o.engine)
	if err != nil {
		return err
	}
	cfg := server.Config{
		Addr:           *o.addr,
		MaxInflight:    *o.maxInflight,
		QueueWait:      *o.queueWait,
		RequestTimeout: *o.requestTimeout,
	}

	shardIdx, shardN := 0, 0
	if *o.shard != "" {
		if *o.noLoad {
			return fmt.Errorf("serve: --shard partitions the generated base database (drop --no-load)")
		}
		if shardIdx, shardN, err = parseShardSpec(*o.shard); err != nil {
			return err
		}
	}
	// genBase regenerates the deterministic base database — sliced down to
	// this process's ring partition under --shard, so a shard (or its
	// replica) reconstructs what it owns without asking the router.
	genBase := func() (*core.Database, error) {
		db, err := gen.Config{Seed: *o.genSeed, SizeMultiplier: *o.scale}.Generate(class, size)
		if err != nil {
			return nil, err
		}
		if shardN > 0 {
			full := len(db.Docs)
			db = router.NewRing(shardN, *o.vnodes).Partition(db, shardIdx)
			fmt.Printf("shard %d/%d owns %d of %d documents\n", shardIdx, shardN, len(db.Docs), full)
		}
		return db, nil
	}

	if *o.replicaOf != "" {
		return serveReplica(o, e, cfg, genBase)
	}

	var srv *server.Server
	if *o.journal != "" {
		// Crash-safe path: regenerate the base database deterministically,
		// then Reopen loads it, replays the journal's acknowledged updates
		// and rebuilds the idempotency dedup table before the listener
		// opens — a killed-and-restarted server answers a client's retry
		// with the original outcome instead of re-applying it.
		if *o.noLoad {
			return fmt.Errorf("serve: --journal needs the base database (drop --no-load)")
		}
		db, err := genBase()
		if err != nil {
			return err
		}
		var replayed int
		srv, replayed, err = server.Reopen(e, db, workload.Indexes(db.Class), *o.journal, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("recovered %s into %s: %d journaled updates replayed from %s\n",
			db.Instance(), e.Name(), replayed, *o.journal)
	} else {
		if !*o.noLoad {
			db, err := genBase()
			if err != nil {
				return err
			}
			st, dur, err := workload.LoadAndIndex(context.Background(), e, db)
			if err != nil {
				return err
			}
			fmt.Printf("loaded %s into %s (%d docs, %d bytes) in %v\n",
				db.Instance(), e.Name(), st.Documents, st.Bytes, dur)
		}
		srv = server.New(e, cfg)
	}
	if err := srv.Start(); err != nil {
		return err
	}
	fmt.Printf("serving %s on %s (drive with: xbench throughput --remote=%s --skip-load --class=%s)\n",
		e.Name(), srv.Addr(), srv.Addr(), class.Code())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	sig := <-sigc
	signal.Stop(sigc) // a second signal kills the process the default way
	fmt.Printf("%s: draining (up to %v) ...\n", sig, *o.drainTimeout)

	ctx, cancel := context.WithTimeout(context.Background(), *o.drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	fmt.Println("drained; bye")
	return nil
}

// serveReplica is `xbench serve --replica-of=ADDR`: load the same base
// partition the primary serves, then ship the primary's durable journal
// into it forever, answering reads (and rejecting writes) on --addr.
func serveReplica(o *serveOpts, e core.Engine, cfg server.Config, genBase func() (*core.Database, error)) error {
	if *o.journal != "" {
		return fmt.Errorf("serve: a replica replays its primary's journal; drop --journal")
	}
	if *o.noLoad {
		return fmt.Errorf("serve: --replica-of needs the base database (drop --no-load)")
	}
	db, err := genBase()
	if err != nil {
		return err
	}
	rep, err := router.StartReplica(context.Background(), e, db, workload.Indexes(db.Class), *o.replicaOf, router.ReplicaConfig{
		Server: cfg,
		Client: client.Config{Pipeline: true},
		Poll:   *o.poll,
	})
	if err != nil {
		return err
	}
	fmt.Printf("replica of %s: serving %s read-only on %s\n", *o.replicaOf, e.Name(), rep.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	sig := <-sigc
	signal.Stop(sigc)
	fmt.Printf("%s: replica stopping after %d applied journal records\n", sig, rep.Applied())
	if aerr := rep.Err(); aerr != nil {
		rep.Close()
		return aerr
	}
	return rep.Close()
}
