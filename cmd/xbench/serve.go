// The serving side of the network layer: `xbench serve` loads one engine
// and exposes it over TCP; `throughput --remote` / `updates --remote`
// (main.go) drive it from another process through internal/client.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"xbench/internal/client"
	"xbench/internal/core"
	"xbench/internal/gen"
	"xbench/internal/server"
	"xbench/internal/workload"
)

// dialRemote connects to an `xbench serve` instance with the CLI's
// default client tuning: the pipelined transport, so a multi-worker
// driver shares a few multiplexed connections instead of one socket
// per in-flight request.
func dialRemote(addr string) (*client.Client, error) {
	return client.Dial(addr, client.Config{Pipeline: true})
}

// unreachableEngine stands in for a remote row whose re-dial failed; it
// declines every class so the grid skips it instead of panicking.
type unreachableEngine struct {
	name string
	err  error
}

func (u unreachableEngine) Name() string                         { return u.name }
func (u unreachableEngine) Supports(core.Class, core.Size) error { return u.err }
func (u unreachableEngine) BuildIndexes([]core.IndexSpec) error  { return u.err }
func (u unreachableEngine) ColdReset()                           {}
func (u unreachableEngine) PageIO() int64                        { return 0 }
func (u unreachableEngine) Close() error                         { return nil }
func (u unreachableEngine) Load(context.Context, *core.Database) (core.LoadStats, error) {
	return core.LoadStats{}, u.err
}
func (u unreachableEngine) Execute(context.Context, core.QueryID, core.Params) (core.Result, error) {
	return core.Result{}, u.err
}
func (u unreachableEngine) InsertDocument(context.Context, string, []byte) error  { return u.err }
func (u unreachableEngine) ReplaceDocument(context.Context, string, []byte) error { return u.err }
func (u unreachableEngine) DeleteDocument(context.Context, string) error          { return u.err }

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	classStr, sizeStr := classFlag(fs), sizeFlag(fs)
	engineStr := fs.String("engine", "x-hive", "engine to serve")
	addr := fs.String("addr", "127.0.0.1:9410", "listen address (port 0 picks a free port, printed on stdout)")
	maxInflight := fs.Int("max-inflight", 0, "admission-control slots; above this requests queue, then shed (0 = default)")
	queueWait := fs.Duration("queue-wait", 0, "longest a request waits for a slot before the overload rejection (0 = default)")
	requestTimeout := fs.Duration("request-timeout", 0, "server-side cap on one request's context deadline (0 = default)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "grace period for in-flight requests on SIGTERM")
	noLoad := fs.Bool("no-load", false, "serve the engine empty; a remote client loads it over the wire")
	journal := fs.String("journal", "", "durable update journal path; recovered before serving, so acknowledged updates survive a process kill")
	seed := fs.Uint64("gen-seed", 0, "generation seed")
	scale := fs.Int("scale", 1, "extra size multiplier")
	fs.Parse(args)
	class, size, err := parseClassSize(*classStr, *sizeStr)
	if err != nil {
		return err
	}
	e, err := engineByFlag(*engineStr)
	if err != nil {
		return err
	}
	cfg := server.Config{
		Addr:           *addr,
		MaxInflight:    *maxInflight,
		QueueWait:      *queueWait,
		RequestTimeout: *requestTimeout,
	}
	var srv *server.Server
	if *journal != "" {
		// Crash-safe path: regenerate the base database deterministically,
		// then Reopen loads it, replays the journal's acknowledged updates
		// and rebuilds the idempotency dedup table before the listener
		// opens — a killed-and-restarted server answers a client's retry
		// with the original outcome instead of re-applying it.
		if *noLoad {
			return fmt.Errorf("serve: --journal needs the base database (drop --no-load)")
		}
		db, err := gen.Config{Seed: *seed, SizeMultiplier: *scale}.Generate(class, size)
		if err != nil {
			return err
		}
		var replayed int
		srv, replayed, err = server.Reopen(e, db, workload.Indexes(db.Class), *journal, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("recovered %s into %s: %d journaled updates replayed from %s\n",
			db.Instance(), e.Name(), replayed, *journal)
	} else {
		if !*noLoad {
			db, err := gen.Config{Seed: *seed, SizeMultiplier: *scale}.Generate(class, size)
			if err != nil {
				return err
			}
			st, dur, err := workload.LoadAndIndex(context.Background(), e, db)
			if err != nil {
				return err
			}
			fmt.Printf("loaded %s into %s (%d docs, %d bytes) in %v\n",
				db.Instance(), e.Name(), st.Documents, st.Bytes, dur)
		}
		srv = server.New(e, cfg)
	}
	if err := srv.Start(); err != nil {
		return err
	}
	fmt.Printf("serving %s on %s (drive with: xbench throughput --remote=%s --skip-load --class=%s)\n",
		e.Name(), srv.Addr(), srv.Addr(), class.Code())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	sig := <-sigc
	signal.Stop(sigc) // a second signal kills the process the default way
	fmt.Printf("%s: draining (up to %v) ...\n", sig, *drainTimeout)

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	fmt.Println("drained; bye")
	return nil
}
