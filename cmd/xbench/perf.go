package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"xbench/internal/bench"
)

// cmdPerf runs the hot-path perf cells (DESIGN.md §13): each cell
// measures one optimization's workload with the optimization off and on
// and reports the improvement ratio. With --out the result is archived
// as JSON (the committed baselines live at results/BENCH_pr7_<cell>.json);
// with --check the fresh ratio is compared against the committed baseline
// and the command fails on a >tolerance regression. EXPERIMENTS.md
// documents the regeneration protocol.
func cmdPerf(args []string) error {
	fs := flag.NewFlagSet("perf", flag.ExitOnError)
	cell := fs.String("cell", "all", "perf cell to run: pager | wire | journal | all")
	short := fs.Bool("short", false, "CI-scale workload (seconds, not minutes)")
	check := fs.Bool("check", false, "compare against the committed baseline and fail on regression")
	tolerance := fs.Float64("tolerance", 0.20, "allowed fractional drop of the improvement ratio under --check")
	out := fs.String("out", "", "write result JSON to this path (--cell=all: '<cell>' in the path expands per cell)")
	baseDir := fs.String("baseline-dir", "results", "directory holding BENCH_pr7_<cell>.json baselines for --check")
	label := fs.String("label", "", "free-form label recorded in the result (e.g. a commit id)")
	fs.Parse(args)

	cells := bench.PerfCellNames
	if *cell != "all" {
		cells = []string{*cell}
	}
	var failures []string
	for _, name := range cells {
		res, err := bench.RunPerfCell(name, *short)
		if err != nil {
			return fmt.Errorf("cell %s: %w", name, err)
		}
		res.Label = *label
		fmt.Printf("cell %-8s %-38s before %10.0f ops/s  after %10.0f ops/s  improvement %.2fx (%s)\n",
			name, res.Workload, res.Before.OpsPerSec, res.After.OpsPerSec, res.Improvement, res.ImprovementMetric)
		for k, v := range res.After.Extra {
			fmt.Printf("  after.%s = %.2f\n", k, v)
		}
		if *out != "" {
			path := strings.ReplaceAll(*out, "<cell>", name)
			if err := bench.WritePerfResult(path, res); err != nil {
				return err
			}
			fmt.Printf("  wrote %s\n", path)
		}
		if *check {
			base := filepath.Join(*baseDir, "BENCH_pr7_"+name+".json")
			if err := bench.CheckPerfRegression(res, base, *tolerance); err != nil {
				failures = append(failures, err.Error())
				fmt.Fprintf(os.Stderr, "  REGRESSION: %v\n", err)
			} else {
				fmt.Printf("  check ok vs %s\n", base)
			}
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d perf cell(s) regressed", len(failures))
	}
	return nil
}
