package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"xbench/internal/core"
	"xbench/internal/driver"
	"xbench/internal/gen"
	"xbench/internal/workload"
)

// cmdMVCCSweep measures what the update workload does to read latency as
// the update fraction grows (DESIGN.md §15, EXPERIMENTS.md): one
// FractionSweep with MVCC snapshot reads on, and optionally the same
// sweep with snapshots off — the pre-MVCC baseline where every query
// queues behind the engine write lock. With snapshots the read p99
// should stay roughly flat from 0% to 50% updates; the baseline curve
// degrades. --check turns the flat-curve claim into an exit code for CI.
func cmdMVCCSweep(args []string) error {
	ctx := context.Background()
	fs := flag.NewFlagSet("mvcc-sweep", flag.ExitOnError)
	classStr, sizeStr := classFlag(fs), sizeFlag(fs)
	engineStr := fs.String("engine", "sql-server", "engine name")
	fractionsStr := fs.String("fractions", "0,0.1,0.2,0.3,0.4,0.5", "comma-separated update fractions to sweep")
	clients := fs.Int("clients", 4, "concurrent clients per step")
	ops := fs.Int("ops", 30, "ops per client per step")
	seed := fs.Uint64("seed", 1, "op-mix seed")
	baseline := fs.Bool("baseline", true, "also sweep with snapshots off (the write-lock baseline)")
	check := fs.Bool("check", false, "fail unless snapshot read p99 at >=30% updates stays within 2x the read-only p99")
	out := fs.String("out", "", "also write the table to this file")
	genSeed := fs.Uint64("gen-seed", 0, "generation seed")
	fs.Parse(args)
	class, size, err := parseClassSize(*classStr, *sizeStr)
	if err != nil {
		return err
	}
	fractions, err := parseFractions(*fractionsStr)
	if err != nil {
		return err
	}
	db, err := gen.Config{Seed: *genSeed}.Generate(class, size)
	if err != nil {
		return err
	}

	cfg := driver.Config{Clients: *clients, OpsPerClient: *ops, Seed: *seed, Think: -1}
	sweep := func(snapshots bool) ([]driver.FractionPoint, error) {
		e, err := engineByFlag(*engineStr)
		if err != nil {
			return nil, err
		}
		defer e.Close()
		e.(interface{ SetSnapshots(bool) }).SetSnapshots(snapshots)
		if _, _, err := workload.LoadAndIndex(ctx, e, db); err != nil {
			return nil, err
		}
		return driver.FractionSweep(ctx, e, class, fractions, cfg)
	}

	snapPts, err := sweep(true)
	if err != nil {
		return err
	}
	var basePts []driver.FractionPoint
	if *baseline {
		if basePts, err = sweep(false); err != nil {
			return err
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}
	writeMVCCSweep(w, *engineStr, class, size, snapPts, basePts)

	if *check {
		return checkFlatReads(snapPts)
	}
	return nil
}

// parseFractions parses "0,0.1,0.3" into floats, requiring each in [0, 1).
func parseFractions(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || f < 0 || f >= 1 {
			return nil, fmt.Errorf("bad update fraction %q (want values in [0, 1))", part)
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no update fractions given")
	}
	return out, nil
}

// writeMVCCSweep prints the sweep as one row per fraction: the snapshot
// run's read latency and throughput, and the baseline's beside it when
// it ran.
func writeMVCCSweep(w io.Writer, engine string, class core.Class, size core.Size, snap, base []driver.FractionPoint) {
	fmt.Fprintf(w, "mvcc-sweep engine=%s class=%s size=%s (read latency vs update fraction)\n", engine, class, size)
	if len(base) > 0 {
		fmt.Fprintf(w, "%-8s %12s %12s %10s | %12s %12s %10s\n",
			"updates", "snap p50", "snap p99", "snap qps", "base p50", "base p99", "base qps")
	} else {
		fmt.Fprintf(w, "%-8s %12s %12s %10s\n", "updates", "snap p50", "snap p99", "snap qps")
	}
	for i, pt := range snap {
		r := pt.Report
		fmt.Fprintf(w, "%-8s %12s %12s %10.1f", fmt.Sprintf("%.0f%%", pt.Fraction*100),
			r.ReadP50, r.ReadP99, r.Throughput)
		if len(base) > i {
			b := base[i].Report
			fmt.Fprintf(w, " | %12s %12s %10.1f", b.ReadP50, b.ReadP99, b.Throughput)
		}
		fmt.Fprintln(w)
	}
}

// checkFlatReads is the CI smoke gate: the snapshot-mode point nearest
// 30% updates must keep its aggregate read p99 within 2x of the sweep's
// read-only (fraction 0) p99. Higher fractions stay informational —
// on a small host the far tail is dominated by CPU time-sharing with
// the update rewrites, which MVCC cannot (and does not claim to)
// remove; the gate pins the lock-wait claim, not the scheduler.
func checkFlatReads(snap []driver.FractionPoint) error {
	var readOnly, gate *driver.FractionPoint
	for i := range snap {
		pt := &snap[i]
		if pt.Fraction == 0 {
			readOnly = pt
		}
		if pt.Fraction >= 0.3 && (gate == nil || pt.Fraction < gate.Fraction) {
			gate = pt
		}
	}
	if readOnly == nil || gate == nil {
		return fmt.Errorf("--check needs a fraction-0 point and a point at >=30%% updates")
	}
	if floor := readOnly.Report.ReadP99; gate.Report.ReadP99 > 2*floor {
		return fmt.Errorf("read p99 %v at %.0f%% updates exceeds 2x the read-only p99 %v",
			gate.Report.ReadP99, gate.Fraction*100, floor)
	}
	return nil
}
