#!/usr/bin/env bash
# Sharded serving-tier smoke test: start three `xbench serve --shard=i/3
# --journal` primaries and a journal-shipped read replica of shard 0,
# front them with `xbench route` (degraded partial-failure policy), and
# drive the whole cluster through the front-end's single address:
#
#   1. a mixed read/write remote sweep against the healthy cluster,
#   2. kill -9 shard 0's primary and require a read sweep to keep
#      answering through the replica failover mid-outage,
#   3. restart shard 0 from its journal (the banner must report replayed
#      updates) and run another mixed sweep,
#   4. SIGTERM the router and require a graceful exit 0 with the
#      per-shard metrics report in its drain output.
#
# CI runs this (workflow job `shard-smoke`); `make shard-smoke` locally.
set -euo pipefail

cd "$(dirname "$0")/.."
tmp="$(mktemp -d)"
bin="$tmp/xbench"
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$tmp"' EXIT

go build -o "$bin" ./cmd/xbench

# await_banner LOG PID SED_PATTERN -> prints the captured address
await_banner() {
    local log=$1 pid=$2 pat=$3 addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n "$pat" "$log")
        [ -n "$addr" ] && { echo "$addr"; return 0; }
        kill -0 "$pid" 2>/dev/null || { echo "process died during startup:" >&2; cat "$log" >&2; return 1; }
        sleep 0.2
    done
    echo "no banner in $log:" >&2; cat "$log" >&2; return 1
}

# Three journaled shard primaries, each loading its ring partition of the
# same deterministically generated database.
declare -a shard_addr shard_pid
for i in 0 1 2; do
    "$bin" serve --engine=x-hive --class=dcmd --size=small --shard="$i/3" \
        --journal="$tmp/shard$i.journal" --addr=127.0.0.1:0 >"$tmp/s$i.log" 2>&1 &
    shard_pid[$i]=$!
done
for i in 0 1 2; do
    shard_addr[$i]=$(await_banner "$tmp/s$i.log" "${shard_pid[$i]}" 's/^serving .* on \([0-9.:]*\) .*/\1/p')
    echo "shard $i on ${shard_addr[$i]}"
done

# A read replica of shard 0, fed by its shipped journal.
"$bin" serve --engine=x-hive --class=dcmd --size=small --shard=0/3 \
    --replica-of="${shard_addr[0]}" --poll=10ms --addr=127.0.0.1:0 >"$tmp/r0.log" 2>&1 &
replica_pid=$!
replica_addr=$(await_banner "$tmp/r0.log" "$replica_pid" 's/^replica of .* on \([0-9.:]*\)$/\1/p')
echo "replica of shard 0 on $replica_addr"

# The router front-end: one address for the whole cluster. The shards are
# already loaded (--shard), so --no-load; degraded keeps scatters
# answering while a shard is down.
"$bin" route --class=dcmd --size=small --no-load --partial=degraded \
    --shards="${shard_addr[0]}+$replica_addr,${shard_addr[1]},${shard_addr[2]}" \
    --addr=127.0.0.1:0 --drain-timeout=10s >"$tmp/route.log" 2>&1 &
router_pid=$!
front=$(await_banner "$tmp/route.log" "$router_pid" 's/^routing .* on \([0-9.:]*\) .*/\1/p')
echo "router on $front"

# 1. Mixed read/write sweep against the healthy cluster.
"$bin" throughput --remote="$front" --skip-load --class=dcmd \
    --clients=1,2 --ops=20 --update-fraction=0.2 --format=json | grep -q '"qps"' \
    || { echo "healthy mixed sweep produced no report"; exit 1; }
echo "healthy mixed sweep OK"

# 2. Whole-shard death: kill -9 shard 0's primary mid-life. Reads must
# keep answering through the replica failover + degraded scatters.
kill -9 "${shard_pid[0]}"
wait "${shard_pid[0]}" 2>/dev/null || true
"$bin" throughput --remote="$front" --skip-load --class=dcmd \
    --clients=2 --ops=15 --format=json | grep -q '"qps"' \
    || { echo "read sweep with a dead shard produced no report"; exit 1; }
echo "dead-shard read sweep OK"

# 3. Restart shard 0 on the same port from its journal.
"$bin" serve --engine=x-hive --class=dcmd --size=small --shard=0/3 \
    --journal="$tmp/shard0.journal" --addr="${shard_addr[0]}" >"$tmp/s0b.log" 2>&1 &
shard_pid[0]=$!
await_banner "$tmp/s0b.log" "${shard_pid[0]}" 's/^serving .* on \([0-9.:]*\) .*/\1/p' >/dev/null
replayed=$(sed -n 's/^recovered .*: \([0-9]*\) journaled updates replayed.*/\1/p' "$tmp/s0b.log")
[ -n "$replayed" ] || { echo "shard 0 restart printed no recovery banner:"; cat "$tmp/s0b.log"; exit 1; }
[ "$replayed" -gt 0 ] || { echo "shard 0 journal replayed 0 updates after a mixed sweep"; exit 1; }
echo "shard 0 restarted with $replayed journaled updates replayed"

# --update-seq-base: the first sweep consumed the low update-document
# sequences and a mid-cycle step can leave documents behind, so the
# re-run starts its U1 names past anything already placed.
"$bin" throughput --remote="$front" --skip-load --class=dcmd \
    --clients=1,2 --ops=20 --update-fraction=0.2 --update-seq-base=500000 \
    --format=json | grep -q '"qps"' \
    || { echo "post-recovery mixed sweep produced no report"; exit 1; }
echo "post-recovery mixed sweep OK"

# 4. Graceful drain: SIGTERM the router, require exit 0 and the per-shard
# metrics report in its output.
kill -TERM "$router_pid"
router_status=0
wait "$router_pid" || router_status=$?
cat "$tmp/route.log"
if [ "$router_status" -ne 0 ]; then
    echo "route exited $router_status after SIGTERM (want graceful 0)"
    exit 1
fi
grep -q 'drained' "$tmp/route.log" || { echo "route exited without draining"; exit 1; }
grep -Eq '^shard +routed' "$tmp/route.log" || { echo "route drain printed no per-shard metrics"; exit 1; }
echo "shard smoke OK"
