#!/usr/bin/env bash
# Serving-layer smoke test: start `xbench serve` on a loopback port, run a
# two-client remote throughput sweep and a remote update report against
# it, then SIGTERM the server and require a graceful (exit 0) drain.
# CI runs this (workflow job `serve-smoke`); `make smoke` runs it locally.
set -euo pipefail

cd "$(dirname "$0")/.."
bin="$(mktemp -d)/xbench"
log="$(mktemp)"
trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$(dirname "$bin")" "$log"' EXIT

go build -o "$bin" ./cmd/xbench

# Port 0 => the kernel picks a free port; the serve banner names it.
"$bin" serve --engine=x-hive --class=dcmd --size=small --addr=127.0.0.1:0 \
    --max-inflight=16 --drain-timeout=10s >"$log" 2>&1 &
server_pid=$!

addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^serving .* on \([0-9.:]*\) .*/\1/p' "$log")
    [ -n "$addr" ] && break
    kill -0 "$server_pid" 2>/dev/null || { echo "server died during startup:"; cat "$log"; exit 1; }
    sleep 0.2
done
[ -n "$addr" ] || { echo "server never printed its address:"; cat "$log"; exit 1; }
echo "serving on $addr"

"$bin" throughput --remote="$addr" --skip-load --class=dcmd \
    --clients=1,2 --ops=20 --format=json | grep -q '"qps"' \
    || { echo "remote sweep produced no report"; exit 1; }

"$bin" updates --remote="$addr" --class=dcmd --repeat=2 | grep -q 'U3' \
    || { echo "remote update report produced no U3 row"; exit 1; }

kill -TERM "$server_pid"
server_status=0
wait "$server_pid" || server_status=$?
cat "$log"
if [ "$server_status" -ne 0 ]; then
    echo "serve exited $server_status after SIGTERM (want graceful 0)"
    exit 1
fi
grep -q 'drained' "$log" || { echo "serve exited without draining"; exit 1; }
echo "serve smoke OK"
