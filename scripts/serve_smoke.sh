#!/usr/bin/env bash
# Serving-layer smoke test: start `xbench serve --journal` on a loopback
# port, run a two-client remote throughput sweep and a remote update
# report against it, then kill -9 the server mid-life, restart it on the
# same port from the journal (the banner must report replayed updates),
# run another remote sweep, and finally SIGTERM and require a graceful
# (exit 0) drain.
# CI runs this (workflow job `serve-smoke`); `make smoke` runs it locally.
set -euo pipefail

cd "$(dirname "$0")/.."
bin="$(mktemp -d)/xbench"
log="$(mktemp)"
log2="$(mktemp)"
journal="$(mktemp -d)/updates.journal"
trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$(dirname "$bin")" "$(dirname "$journal")" "$log" "$log2"' EXIT

go build -o "$bin" ./cmd/xbench

# Port 0 => the kernel picks a free port; the serve banner names it.
"$bin" serve --engine=x-hive --class=dcmd --size=small --addr=127.0.0.1:0 \
    --journal="$journal" --max-inflight=16 --drain-timeout=10s >"$log" 2>&1 &
server_pid=$!

addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^serving .* on \([0-9.:]*\) .*/\1/p' "$log")
    [ -n "$addr" ] && break
    kill -0 "$server_pid" 2>/dev/null || { echo "server died during startup:"; cat "$log"; exit 1; }
    sleep 0.2
done
[ -n "$addr" ] || { echo "server never printed its address:"; cat "$log"; exit 1; }
echo "serving on $addr"

"$bin" throughput --remote="$addr" --skip-load --class=dcmd \
    --clients=1,2 --ops=20 --format=json | grep -q '"qps"' \
    || { echo "remote sweep produced no report"; exit 1; }

"$bin" updates --remote="$addr" --class=dcmd --repeat=2 | grep -q 'U3' \
    || { echo "remote update report produced no U3 row"; exit 1; }

# The crash leg: SIGKILL (no defers, no flushes), then restart on the SAME
# port from the same journal. Recovery must replay the acknowledged
# updates before the listener opens.
kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true
cat "$log"

"$bin" serve --engine=x-hive --class=dcmd --size=small --addr="$addr" \
    --journal="$journal" --max-inflight=16 --drain-timeout=10s >"$log2" 2>&1 &
server_pid=$!

for _ in $(seq 1 50); do
    grep -q '^serving ' "$log2" && break
    kill -0 "$server_pid" 2>/dev/null || { echo "server died during journal restart:"; cat "$log2"; exit 1; }
    sleep 0.2
done
grep -q '^serving ' "$log2" || { echo "restarted server never came up:"; cat "$log2"; exit 1; }
replayed=$(sed -n 's/^recovered .*: \([0-9]*\) journaled updates replayed.*/\1/p' "$log2")
[ -n "$replayed" ] || { echo "restart printed no recovery banner:"; cat "$log2"; exit 1; }
[ "$replayed" -gt 0 ] || { echo "journal recovery replayed 0 updates after an update run"; exit 1; }
echo "restarted on $addr with $replayed journaled updates replayed"

"$bin" throughput --remote="$addr" --skip-load --class=dcmd \
    --clients=1,2 --ops=20 --format=json | grep -q '"qps"' \
    || { echo "post-recovery remote sweep produced no report"; exit 1; }

kill -TERM "$server_pid"
server_status=0
wait "$server_pid" || server_status=$?
cat "$log2"
if [ "$server_status" -ne 0 ]; then
    echo "serve exited $server_status after SIGTERM (want graceful 0)"
    exit 1
fi
grep -q 'drained' "$log2" || { echo "serve exited without draining"; exit 1; }
echo "serve smoke OK"
