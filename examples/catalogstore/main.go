// Catalogstore: the e-commerce scenario that motivates the DC/SD class —
// an online bookstore keeps its catalog as one XML document and needs
// exact-match lookups, universal quantification over authors, missing-
// element checks and datatype casts. The example runs the same workload
// against a shredding engine (SQL Server analog) and the native XML store
// and compares answers and costs, illustrating the paper's central
// comparison.
//
// Run with:
//
//	go run ./examples/catalogstore
package main

import (
	"context"
	"fmt"
	"log"

	"xbench"
)

func main() {
	ctx := context.Background()
	db, err := xbench.Generate(xbench.DCSD, xbench.Small)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalog: %d bytes, schema:\n\n", db.Bytes())
	diagram := xbench.SchemaDiagram(xbench.DCSD)
	fmt.Println(head(diagram, 12))

	var engines []xbench.Engine
	for _, name := range []string{"sqlserver", "native"} {
		e, err := xbench.New(name)
		if err != nil {
			log.Fatal(err)
		}
		engines = append(engines, e)
	}
	for _, e := range engines {
		if _, err := xbench.LoadAndIndex(ctx, e, db); err != nil {
			log.Fatalf("%s: %v", e.Name(), err)
		}
	}

	queries := []struct {
		id   xbench.QueryID
		what string
	}{
		{xbench.Q1, "look up item I1 by id"},
		{xbench.Q8, "ISBN of I1 via a path with an unknown step"},
		{xbench.Q12, "reconstruct the first author's mailing address"},
		{xbench.Q14, "publishers without a fax number in 1997-2001"},
		{xbench.Q20, "titles of items with more than 900 pages"},
	}
	fmt.Printf("%-6s %-48s %-22s %-22s\n", "query", "task", engines[0].Name(), engines[1].Name())
	for _, q := range queries {
		row := fmt.Sprintf("%-6s %-48s", q.id, q.what)
		for _, e := range engines {
			m := xbench.RunCold(ctx, e, xbench.DCSD, q.id)
			if m.Err != nil {
				log.Fatalf("%s %s: %v", e.Name(), q.id, m.Err)
			}
			row += fmt.Sprintf(" %3d items %8v    ", m.Result.Count(), m.Elapsed.Round(10_000))
		}
		fmt.Println(row)
	}

	// Show what "reconstruction" means: the shredded engine rebuilds the
	// mailing address from rows; the native engine returns the original
	// fragment.
	fmt.Println("\nQ12 fragment from the native store:")
	m := xbench.RunCold(ctx, engines[1], xbench.DCSD, xbench.Q12)
	if m.Err != nil || m.Result.Count() == 0 {
		log.Fatal("Q12 failed")
	}
	fmt.Println("  " + m.Result.Items[0])
}

func head(s string, lines int) string {
	out, n := "", 0
	for _, line := range splitLines(s) {
		out += line + "\n"
		n++
		if n == lines {
			out += "  ...\n"
			break
		}
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
