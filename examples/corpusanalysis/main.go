// Corpusanalysis: rerun the paper's §2.1.1 methodology on our own
// generated data. The XBench authors analyzed real corpora (GCIDE, OED,
// Reuters, Springer) to extract element inventories, parent/child
// occurrence distributions and irregularity statistics, then fitted
// standard probability distributions and built generators from them.
// This example closes the loop: it generates a TC/MD corpus, analyzes it
// with the same pipeline, and shows that the published structure of
// Figure 2 — recursion, optional elements, skewed occurrence counts —
// is recovered empirically.
//
// Run with:
//
//	go run ./examples/corpusanalysis [-class tcmd]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"xbench"
	"xbench/internal/analyze"
	"xbench/internal/xmldom"
)

func main() {
	classFlag := flag.String("class", "tcmd", "database class to analyze")
	flag.Parse()
	class, err := xbench.ParseClass(*classFlag)
	if err != nil {
		log.Fatal(err)
	}

	db, err := xbench.Generate(class, xbench.Small)
	if err != nil {
		log.Fatal(err)
	}

	report := analyze.New()
	for _, d := range db.Docs {
		doc, err := xmldom.Parse(d.Data)
		if err != nil {
			log.Fatal(err)
		}
		report.AddDocument(doc)
	}
	report.Finish()

	if _, err := report.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nCompare with the published schema (paper Figures 1-4):")
	fmt.Println(xbench.SchemaDiagram(class))
}
