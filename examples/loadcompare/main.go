// Loadcompare: reproduce the paper's Experiment 1 (complexity of mapping
// and bulk loading, Table 4) on one class: load the same DC/MD database
// into all four engines, report load time, simulated page I/O, rows
// produced by shredding, and what each mapping lost.
//
// Run with:
//
//	go run ./examples/loadcompare [-class dcmd] [-size small]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"xbench"
)

func main() {
	classFlag := flag.String("class", "dcmd", "database class (tcsd|tcmd|dcsd|dcmd)")
	sizeFlag := flag.String("size", "small", "database size (small|normal|large)")
	flag.Parse()

	class, err := xbench.ParseClass(*classFlag)
	if err != nil {
		log.Fatal(err)
	}
	size, err := xbench.ParseSize(*sizeFlag)
	if err != nil {
		log.Fatal(err)
	}

	db, err := xbench.Generate(class, size)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bulk loading %s: %d document(s), %d bytes\n\n",
		db.Instance(), len(db.Docs), db.Bytes())

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "engine\tload\tpageIO\trows\tnodes\tmixed lost\tnote")
	for _, e := range xbench.Engines() {
		if err := e.Supports(class, size); err != nil {
			fmt.Fprintf(w, "%s\t-\t-\t-\t-\t-\tunsupported (blank cell in the paper)\n", e.Name())
			continue
		}
		m, err := timeLoad(e, db)
		if err != nil {
			log.Fatalf("%s: %v", e.Name(), err)
		}
		note := ""
		switch {
		case e.Name() == "Xcolumn":
			note = "intact CLOBs + side tables"
		case m.stats.Nodes > 0:
			note = "stored intact as XML"
		case m.stats.SkippedMixed > 0:
			note = "shredded; mixed content dropped"
		case m.stats.Rows > 0:
			note = "shredded into tables"
		}
		fmt.Fprintf(w, "%s\t%v\t%d\t%d\t%d\t%d\t%s\n",
			e.Name(), m.elapsedRounded(), m.stats.PageIO, m.stats.Rows,
			m.stats.Nodes, m.stats.SkippedMixed, note)
	}
	w.Flush()

	fmt.Println("\nAs in the paper's Table 4: the native store loads fastest (no")
	fmt.Println("shredding), the relational engines pay for decomposition and key")
	fmt.Println("indexes, and multi-document databases cost per-file I/O.")
}

type loadMeasure struct {
	stats   xbench.LoadStats
	elapsed time.Duration
}

func timeLoad(e xbench.Engine, db *xbench.Database) (loadMeasure, error) {
	start := time.Now()
	stats, err := xbench.LoadAndIndex(context.Background(), e, db)
	return loadMeasure{stats: stats, elapsed: time.Since(start)}, err
}

func (m loadMeasure) elapsedRounded() string {
	return fmt.Sprintf("%.1fms", float64(m.elapsed.Microseconds())/1000)
}
