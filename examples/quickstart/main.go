// Quickstart: generate a small XBench catalog database, load it into the
// native XML engine, build the paper's indexes, and run a few workload
// queries plus an ad-hoc XQuery.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"xbench"
)

func main() {
	ctx := context.Background()
	// 1. Generate the DC/SD database (one catalog.xml mapped from TPC-W).
	db, err := xbench.Generate(xbench.DCSD, xbench.Small)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %s: %d document(s), %d bytes\n",
		db.Instance(), len(db.Docs), db.Bytes())

	// 2. Load it into the native XML engine and build Table 3's indexes.
	engine, err := xbench.New("native")
	if err != nil {
		log.Fatal(err)
	}
	stats, err := xbench.LoadAndIndex(ctx, engine, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded by %s: %d nodes, %d page I/Os\n",
		engine.Name(), stats.Nodes, stats.PageIO)

	// 3. Run benchmark queries cold (caches dropped first, as in the paper).
	for _, q := range []xbench.QueryID{xbench.Q1, xbench.Q5, xbench.Q14, xbench.Q20} {
		m := xbench.RunCold(ctx, engine, xbench.DCSD, q)
		if m.Err != nil {
			log.Fatalf("%s: %v", q, m.Err)
		}
		fmt.Printf("%-4s %-22s %3d item(s) in %8v (pageIO=%d)\n",
			q, q.FunctionGroup(), m.Result.Count(), m.Elapsed, m.Result.PageIO)
	}

	// 4. Ad-hoc XQuery over the generated documents.
	items, err := xbench.EvalXQuery(
		`for $i in //item[number(attributes/number_of_pages) > 900]
		 order by $i/title
		 return concat(string($i/title), " (", string($i/attributes/number_of_pages), " pages)")`,
		db.Docs, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d books over 900 pages:\n", len(items))
	for i, it := range items {
		if i == 5 {
			fmt.Println("  ...")
			break
		}
		fmt.Println("  " + it)
	}
}
