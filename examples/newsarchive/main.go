// Newsarchive: the text-centric multi-document scenario (TC/MD) — a news
// corpus of irregular article documents with recursive sections, optional
// fields and cross references. The example exercises the text-search and
// structure-sensitive parts of the workload on the native XML store, the
// territory where the paper found X-Hive strongest.
//
// Run with:
//
//	go run ./examples/newsarchive
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"xbench"
)

func main() {
	ctx := context.Background()
	db, err := xbench.Generate(xbench.TCMD, xbench.Small)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archive: %d articles, %d bytes total\n", len(db.Docs), db.Bytes())

	engine, err := xbench.New("native")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := xbench.LoadAndIndex(ctx, engine, db); err != nil {
		log.Fatal(err)
	}

	// Full-text search across the corpus (Q17).
	m := xbench.RunCold(ctx, engine, xbench.TCMD, xbench.Q17)
	must(m.Err)
	fmt.Printf("\narticles mentioning %q (%d):\n", xbench.QueryParams(xbench.TCMD).Get("W2"), m.Result.Count())
	for _, t := range firstN(m.Result.Items, 4) {
		fmt.Println("  " + t)
	}

	// Who wrote what: Q2 finds every article by a given author.
	m = xbench.RunCold(ctx, engine, xbench.TCMD, xbench.Q2)
	must(m.Err)
	fmt.Printf("\narticles by %s (%d):\n", xbench.QueryParams(xbench.TCMD).Get("Y"), m.Result.Count())
	for _, t := range firstN(m.Result.Items, 4) {
		fmt.Println("  " + t)
	}

	// Ordered access: the section after the Introduction (Q4) relies on
	// document order — exactly what shredded mappings cannot guarantee.
	m = xbench.RunCold(ctx, engine, xbench.TCMD, xbench.Q4)
	must(m.Err)
	fmt.Printf("\nsections following an Introduction in %s's articles:\n",
		xbench.QueryParams(xbench.TCMD).Get("Y"))
	if m.Result.Count() == 0 {
		fmt.Println("  (none in this corpus)")
	}
	for _, h := range firstN(m.Result.Items, 4) {
		fmt.Println("  " + h)
	}

	// Structure transformation (Q13): build a summary document.
	m = xbench.RunCold(ctx, engine, xbench.TCMD, xbench.Q13)
	must(m.Err)
	if m.Result.Count() > 0 {
		fmt.Println("\nsummary of article a1:")
		fmt.Println("  " + clip(m.Result.Items[0], 180))
	}

	// Irregularity (Q15): authors with empty contact elements.
	m = xbench.RunCold(ctx, engine, xbench.TCMD, xbench.Q15)
	must(m.Err)
	fmt.Printf("\nauthors with empty contact elements in the date window: %d\n", m.Result.Count())

	// Ad-hoc: the citation graph via cross-document references.
	refs, err := xbench.EvalXQuery(
		`for $a in //article
		 where exists($a/epilog/references/a_id)
		 return concat(string($a/@id), " -> ", string-join(data($a/epilog/references/a_id/@target), " "))`,
		db.Docs, nil)
	must(err)
	fmt.Printf("\ncitation edges (%d articles cite others):\n", len(refs))
	for _, r := range firstN(refs, 5) {
		fmt.Println("  " + r)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func firstN(items []string, n int) []string {
	if len(items) > n {
		return items[:n]
	}
	return items
}

func clip(s string, n int) string {
	if len(s) > n {
		return s[:n] + "..."
	}
	return strings.TrimSpace(s)
}
