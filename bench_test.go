package xbench

// Benchmarks regenerating the paper's measured tables, one benchmark
// family per table:
//
//	BenchmarkTable4BulkLoad  — Table 4 (bulk loading time)
//	BenchmarkTable5Q5        — Table 5 (ordered access)
//	BenchmarkTable6Q12       — Table 6 (document construction)
//	BenchmarkTable7Q17       — Table 7 (text search)
//	BenchmarkTable8Q8        — Table 8 (path expressions)
//	BenchmarkTable9Q14       — Table 9 (missing elements)
//
// Sub-benchmarks enumerate engine/class/size cells; unsupported cells
// (the paper's blank entries) are skipped. By default only the Small
// size runs so `go test -bench=.` stays quick; set
// XBENCH_BENCH_SIZES=small,normal[,large] for the full grid, which is
// what EXPERIMENTS.md is produced from (via cmd/xbench bench).
//
// Each iteration is a cold run: caches are flushed before the query, per
// the paper's methodology. b.ReportMetric exposes the page I/O per
// operation so the disk-bound shape is visible alongside wall time.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"

	"xbench/internal/bench"
	"xbench/internal/core"
	"xbench/internal/engines/native"
	"xbench/internal/gen"
	"xbench/internal/workload"
)

// benchCfg shrinks the databases ~4x versus the library defaults so the
// grid is tractable under `go test -bench`; ratios between sizes are
// unchanged.
var benchCfg = gen.Config{
	DictEntries: 100,
	Articles:    8,
	Items:       40,
	Orders:      80,
}

var (
	runnerOnce sync.Once
	runner     *bench.Runner
)

func benchSizes() []core.Size {
	env := os.Getenv("XBENCH_BENCH_SIZES")
	if env == "" {
		return []core.Size{core.Small}
	}
	var sizes []core.Size
	for _, part := range strings.Split(env, ",") {
		s, err := core.ParseSize(strings.TrimSpace(part))
		if err != nil {
			panic(err)
		}
		sizes = append(sizes, s)
	}
	return sizes
}

func sharedRunner() *bench.Runner {
	runnerOnce.Do(func() {
		runner = bench.NewRunner(benchCfg, benchSizes(), os.Stderr)
	})
	return runner
}

func cellName(engine string, class core.Class, size core.Size) string {
	return fmt.Sprintf("%s/%s/%s", strings.ReplaceAll(engine, " ", ""), class.Code(), size)
}

// BenchmarkTable4BulkLoad regenerates Table 4: fresh engine, full bulk
// load (and the automatic PK/FK index creation of the relational
// engines) per iteration.
func BenchmarkTable4BulkLoad(b *testing.B) {
	r := sharedRunner()
	for _, engine := range bench.EngineNames {
		for _, class := range core.Classes {
			for _, size := range benchSizes() {
				e := bench.NewEngine(engine)
				if err := e.Supports(class, size); err != nil {
					continue // blank cell in the paper's table
				}
				db, err := r.Database(class, size)
				if err != nil {
					b.Fatal(err)
				}
				b.Run(cellName(engine, class, size), func(b *testing.B) {
					var io int64
					for i := 0; i < b.N; i++ {
						fresh := bench.NewEngine(engine)
						st, err := fresh.Load(context.Background(), db)
						if err != nil {
							b.Fatal(err)
						}
						io += st.PageIO
					}
					b.ReportMetric(float64(io)/float64(b.N), "pageIO/op")
					b.SetBytes(int64(db.Bytes()))
				})
			}
		}
	}
}

func benchQueryTable(b *testing.B, tableNo int) {
	q := bench.TableQueries[tableNo]
	r := sharedRunner()
	for _, engine := range bench.EngineNames {
		for _, class := range core.Classes {
			for _, size := range benchSizes() {
				engine, class, size := engine, class, size
				probe, err := r.Measure(engine, class, size, q)
				if errors.Is(err, core.ErrUnsupported) {
					continue // blank cell
				}
				if err != nil {
					b.Fatalf("%s %s/%s %s: %v", engine, class, size, q, err)
				}
				_ = probe
				b.Run(cellName(engine, class, size), func(b *testing.B) {
					var io int64
					for i := 0; i < b.N; i++ {
						m, err := r.Measure(engine, class, size, q)
						if err != nil {
							b.Fatal(err)
						}
						io += m.Result.PageIO
					}
					b.ReportMetric(float64(io)/float64(b.N), "pageIO/op")
				})
			}
		}
	}
}

// BenchmarkTable5Q5 regenerates Table 5 (Q5: absolute ordered access).
func BenchmarkTable5Q5(b *testing.B) { benchQueryTable(b, 5) }

// BenchmarkTable6Q12 regenerates Table 6 (Q12: document construction
// preserving structure).
func BenchmarkTable6Q12(b *testing.B) { benchQueryTable(b, 6) }

// BenchmarkTable7Q17 regenerates Table 7 (Q17: uni-gram text search,
// no full-text indexes).
func BenchmarkTable7Q17(b *testing.B) { benchQueryTable(b, 7) }

// BenchmarkTable8Q8 regenerates Table 8 (Q8: path expression with one
// unknown element).
func BenchmarkTable8Q8(b *testing.B) { benchQueryTable(b, 8) }

// BenchmarkTable9Q14 regenerates Table 9 (Q14: irregular data, missing
// elements; deliberately no index on the missing element).
func BenchmarkTable9Q14(b *testing.B) { benchQueryTable(b, 9) }

// BenchmarkDatabaseGeneration measures the generators themselves (the
// ToXgene-analog path for TC classes, the TPC-W mapping for DC classes).
func BenchmarkDatabaseGeneration(b *testing.B) {
	for _, class := range core.Classes {
		b.Run(class.Code(), func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				db, err := benchCfg.Generate(class, core.Small)
				if err != nil {
					b.Fatal(err)
				}
				bytes = int64(db.Bytes())
			}
			b.SetBytes(bytes)
		})
	}
}

// BenchmarkXQueryEngine measures raw query-engine throughput on a
// pre-parsed in-memory collection (no I/O), isolating evaluator cost from
// storage cost — a micro-benchmark in the spirit of the Michigan
// benchmark the paper contrasts itself with.
func BenchmarkXQueryEngine(b *testing.B) {
	db, err := benchCfg.Generate(core.DCSD, core.Small)
	if err != nil {
		b.Fatal(err)
	}
	queriesToRun := map[string]string{
		"exact-match": `//item[@id = "I7"]/title`,
		"aggregate":   `count(//item[number(attributes/number_of_pages) > 500])`,
		"flwor-sort":  `for $i in //item order by $i/subject return $i/@id`,
		"quantified":  `//item[every $a in authors/author satisfies exists($a/contact_information)]/@id`,
	}
	for name, q := range queriesToRun {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := EvalXQuery(q, db.Docs, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestBenchmarkCellsMatchPaperBlanks pins the support matrix that decides
// which benchmark cells exist, so the bench grid cannot silently drift
// from the paper's tables.
func TestBenchmarkCellsMatchPaperBlanks(t *testing.T) {
	type cell struct {
		engine string
		class  core.Class
		size   core.Size
	}
	blanks := []cell{
		{"Xcolumn", core.DCSD, core.Small},
		{"Xcolumn", core.TCSD, core.Large},
		{"Xcollection", core.DCSD, core.Normal},
		{"Xcollection", core.TCSD, core.Large},
	}
	for _, c := range blanks {
		e := bench.NewEngine(c.engine)
		if err := e.Supports(c.class, c.size); err == nil {
			t.Errorf("%s %s %s should be a blank cell", c.engine, c.class, c.size)
		}
	}
	filled := []cell{
		{"Xcollection", core.TCSD, core.Small},
		{"SQL Server", core.TCSD, core.Large},
		{"X-Hive", core.DCMD, core.Large},
		{"Xcolumn", core.TCMD, core.Large},
	}
	for _, c := range filled {
		e := bench.NewEngine(c.engine)
		if err := e.Supports(c.class, c.size); err != nil {
			t.Errorf("%s %s %s should be measurable: %v", c.engine, c.class, c.size, err)
		}
	}
	_ = workload.Params(core.DCMD) // keep the workload import honest
}

// BenchmarkAblationStorageFormat compares the native engine's two storage
// formats — persistent binary DOM pages (the X-Hive model, the default)
// versus raw XML re-parsed on every access — on the text-search query,
// the workload most sensitive to document access cost.
func BenchmarkAblationStorageFormat(b *testing.B) {
	db, err := benchCfg.Generate(core.TCSD, core.Small)
	if err != nil {
		b.Fatal(err)
	}
	for _, f := range []struct {
		name   string
		format native.Format
	}{
		{"persistent-dom", native.FormatDOM},
		{"raw-xml", native.FormatXML},
	} {
		e := native.NewWithFormat(0, f.format)
		if _, _, err := workload.LoadAndIndex(context.Background(), e, db); err != nil {
			b.Fatal(err)
		}
		b.Run(f.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := workload.RunCold(context.Background(), e, core.TCSD, core.Q17)
				if m.Err != nil {
					b.Fatal(m.Err)
				}
			}
		})
	}
}

// BenchmarkAblationBufferPool varies the buffer pool size on a scan-heavy
// query: the design choice DESIGN.md calls out (a pool small relative to
// Large databases keeps cold scans disk-bound).
func BenchmarkAblationBufferPool(b *testing.B) {
	db, err := benchCfg.Generate(core.DCMD, core.Small)
	if err != nil {
		b.Fatal(err)
	}
	for _, pool := range []int{32, 512, 8192} {
		e := native.New(pool)
		if _, _, err := workload.LoadAndIndex(context.Background(), e, db); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("pool%d", pool), func(b *testing.B) {
			var io int64
			for i := 0; i < b.N; i++ {
				m := workload.RunCold(context.Background(), e, core.DCMD, core.Q14)
				if m.Err != nil {
					b.Fatal(m.Err)
				}
				io += m.Result.PageIO
			}
			b.ReportMetric(float64(io)/float64(b.N), "pageIO/op")
		})
	}
}

// BenchmarkUpdateWorkload measures the document-granularity update
// operations (U1 insert, U2 replace, U3 delete) on the native engine —
// one step into the paper's future-work list ("(2) update workloads").
func BenchmarkUpdateWorkload(b *testing.B) {
	for _, op := range []workload.UpdateOp{workload.U1, workload.U2, workload.U3} {
		db, err := benchCfg.Generate(core.DCMD, core.Small)
		if err != nil {
			b.Fatal(err)
		}
		e := native.New(0)
		if _, _, err := workload.LoadAndIndex(context.Background(), e, db); err != nil {
			b.Fatal(err)
		}
		b.Run(op.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if m := workload.RunUpdate(e, core.DCMD, op, i); m.Err != nil {
					b.Fatal(m.Err)
				}
			}
		})
	}
}

// BenchmarkAblationSegmentedStorage compares document-granular storage
// (the default, matching the paper's measured TC/SD blow-ups) against
// node-granular segmented storage with (document, segment) index locators
// — the model that would explain the paper's flat DC/SD Q8 cells. The
// gap is the cost of materializing one huge document for a point query.
func BenchmarkAblationSegmentedStorage(b *testing.B) {
	db, err := benchCfg.Generate(core.DCSD, core.Normal)
	if err != nil {
		b.Fatal(err)
	}
	variants := []struct {
		name string
		mk   func() *native.Engine
	}{
		{"document-granular", func() *native.Engine { return native.New(0) }},
		{"segmented", func() *native.Engine {
			e, err := native.NewWithOptions(0, native.Options{Format: native.FormatDOM, Segmented: true})
			if err != nil {
				b.Fatal(err)
			}
			return e
		}},
	}
	for _, v := range variants {
		e := v.mk()
		if _, _, err := workload.LoadAndIndex(context.Background(), e, db); err != nil {
			b.Fatal(err)
		}
		b.Run(v.name, func(b *testing.B) {
			var io int64
			for i := 0; i < b.N; i++ {
				m := workload.RunCold(context.Background(), e, core.DCSD, core.Q8)
				if m.Err != nil {
					b.Fatal(m.Err)
				}
				io += m.Result.PageIO
			}
			b.ReportMetric(float64(io)/float64(b.N), "pageIO/op")
		})
	}
}
