package xbench

import (
	"context"
	"testing"

	"xbench/internal/metrics"
	"xbench/internal/pager"
)

// TestNewEngineNames: every recognized name (and alias) constructs the
// right engine; unknown names error instead of panicking.
func TestNewEngineNames(t *testing.T) {
	cases := map[string]string{
		"native":      "X-Hive",
		"x-hive":      "X-Hive",
		"XHive":       "X-Hive",
		"xcolumn":     "Xcolumn",
		"Xcollection": "Xcollection",
		"sqlserver":   "SQL Server",
		"SQL Server":  "SQL Server",
	}
	for name, want := range cases {
		e, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if e.Name() != want {
			t.Errorf("New(%q).Name() = %q, want %q", name, e.Name(), want)
		}
	}
	if _, err := New("oracle"); err == nil {
		t.Fatal("unknown engine name accepted")
	}
}

// TestNewOptions: WithFaultPolicy and WithMetrics reach the engine's
// pager; WithPoolPages and WithRowLimit at least construct.
func TestNewOptions(t *testing.T) {
	reg := metrics.NewRegistry()
	e, err := New("native",
		WithPoolPages(64),
		WithFaultPolicy(FaultPolicy{Seed: 7}),
		WithMetrics(reg),
	)
	if err != nil {
		t.Fatal(err)
	}
	p := e.(interface{ Pager() *pager.Pager }).Pager()
	fp, ok := p.FaultPolicyInfo()
	if !ok || fp.Seed != 7 {
		t.Fatalf("fault policy not installed: %+v %v", fp, ok)
	}
	if p.Metrics() != reg {
		t.Fatal("metrics registry not attached")
	}
	if _, err := New("xcollection", WithRowLimit(10), WithPoolPages(32)); err != nil {
		t.Fatal(err)
	}
}

// TestWithSnapshots: snapshot reads default on for every engine; the
// option turns them off (the write-lock baseline) and back on.
func TestWithSnapshots(t *testing.T) {
	type snapper interface{ SnapshotsEnabled() bool }
	for _, name := range []string{"native", "xcolumn", "xcollection", "sqlserver"} {
		e, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		if !e.(snapper).SnapshotsEnabled() {
			t.Errorf("%s: snapshots not on by default", name)
		}
		off, err := New(name, WithSnapshots(false))
		if err != nil {
			t.Fatal(err)
		}
		if off.(snapper).SnapshotsEnabled() {
			t.Errorf("%s: WithSnapshots(false) left snapshots on", name)
		}
	}
}

// TestDeprecatedConstructorsStillWork pins the compatibility satellite:
// the old constructors and the options API coexist.
func TestDeprecatedConstructorsStillWork(t *testing.T) {
	old := NewNativeEngine(0)
	neu, err := New("native")
	if err != nil {
		t.Fatal(err)
	}
	if old.Name() != neu.Name() {
		t.Fatalf("old %q vs new %q", old.Name(), neu.Name())
	}
}

// fakeV1 is a minimal legacy engine for the adapter re-export test.
type fakeV1 struct{}

func (fakeV1) Name() string                      { return "v1" }
func (fakeV1) Supports(Class, Size) error        { return nil }
func (fakeV1) Load(*Database) (LoadStats, error) { return LoadStats{}, nil }
func (fakeV1) BuildIndexes([]IndexSpec) error    { return nil }
func (fakeV1) Execute(QueryID, Params) (Result, error) {
	return Result{Items: []string{"ok"}}, nil
}
func (fakeV1) ColdReset()    {}
func (fakeV1) PageIO() int64 { return 0 }
func (fakeV1) Close() error  { return nil }

// TestAdaptV1 lifts a legacy engine through the facade and checks both
// delegation and context rejection.
func TestAdaptV1(t *testing.T) {
	var v1 EngineV1 = fakeV1{}
	e := AdaptV1(v1)
	res, err := e.Execute(context.Background(), Q1, nil)
	if err != nil || len(res.Items) != 1 {
		t.Fatalf("adapted Execute: %v %v", res, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Execute(ctx, Q1, nil); err == nil {
		t.Fatal("adapter ignored canceled context")
	}
}

// TestThroughputFacade: the facade Throughput runs the driver end to end
// on a loaded engine and reports qps and per-query percentiles.
func TestThroughputFacade(t *testing.T) {
	ctx := context.Background()
	db, err := Generate(DCSD, Small)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New("native")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadAndIndex(ctx, e, db); err != nil {
		t.Fatal(err)
	}
	rep, err := Throughput(ctx, e, DCSD, ThroughputConfig{
		Clients:      2,
		OpsPerClient: 4,
		Queries:      []QueryID{Q1, Q5},
		Think:        -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != 8 || rep.Throughput <= 0 {
		t.Fatalf("report: ops=%d qps=%f", rep.Ops, rep.Throughput)
	}
	if len(rep.Cells) == 0 || rep.Cells[0].P50 <= 0 {
		t.Fatalf("no latency cells: %+v", rep.Cells)
	}
}
