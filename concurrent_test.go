package xbench

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentExecuteAllEngines is the concurrency acceptance test of
// the engines' Execute contract: for every engine, 8 goroutines each run
// the full DC/MD query set against one shared loaded engine while another
// goroutine interleaves ColdReset and PageIO calls, and every answer must
// equal the single-threaded baseline. Run it with -race.
func TestConcurrentExecuteAllEngines(t *testing.T) {
	ctx := context.Background()
	db, err := Generate(DCMD, Small)
	if err != nil {
		t.Fatal(err)
	}
	queries := WorkloadQueries(DCMD)
	params := QueryParams(DCMD)

	for _, name := range []string{"native", "xcolumn", "xcollection", "sqlserver"} {
		name := name
		t.Run(name, func(t *testing.T) {
			e, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := LoadAndIndex(ctx, e, db); err != nil {
				t.Fatal(err)
			}

			// Single-threaded baseline, and the answerable query subset.
			baseline := map[QueryID]Result{}
			var mix []QueryID
			for _, q := range queries {
				res, err := e.Execute(ctx, q, params)
				if err != nil {
					if errors.Is(err, ErrNoQuery) || errors.Is(err, ErrUnsupported) {
						continue
					}
					t.Fatalf("baseline %s: %v", q, err)
				}
				baseline[q] = res
				mix = append(mix, q)
			}
			if len(mix) == 0 {
				t.Fatal("engine answers no queries")
			}

			const goroutines = 8
			errc := make(chan error, goroutines)
			stop := make(chan struct{})

			// Interleave the maintenance calls the bugfix contract covers:
			// ColdReset quiesces, PageIO reads concurrently with Execute.
			var maint sync.WaitGroup
			maint.Add(1)
			go func() {
				defer maint.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					if i%3 == 0 {
						e.ColdReset()
					}
					_ = e.PageIO()
				}
			}()

			var workers sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				workers.Add(1)
				go func(g int) {
					defer workers.Done()
					for round := 0; round < 3; round++ {
						for _, q := range mix {
							res, err := e.Execute(ctx, q, params)
							if err != nil {
								errc <- fmt.Errorf("goroutine %d %s: %w", g, q, err)
								return
							}
							want := baseline[q]
							if len(res.Items) != len(want.Items) {
								errc <- fmt.Errorf("goroutine %d %s: %d items, baseline %d",
									g, q, len(res.Items), len(want.Items))
								return
							}
							for i := range want.Items {
								if res.Items[i] != want.Items[i] {
									errc <- fmt.Errorf("goroutine %d %s: item %d diverges", g, q, i)
									return
								}
							}
						}
					}
				}(g)
			}

			workers.Wait()
			close(stop)
			maint.Wait()
			close(errc)
			if err := <-errc; err != nil {
				t.Fatal(err)
			}
		})
	}
}
