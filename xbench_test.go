package xbench

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

// The facade tests drive the library exactly as the README shows.

func TestPublicAPIFlow(t *testing.T) {
	db, err := Generate(DCSD, Small)
	if err != nil {
		t.Fatal(err)
	}
	if db.Instance() != "DCSDS" || db.Bytes() == 0 {
		t.Fatalf("bad database: %s %d", db.Instance(), db.Bytes())
	}
	e := NewNativeEngine(0)
	st, err := LoadAndIndex(context.Background(), e, db)
	if err != nil {
		t.Fatal(err)
	}
	if st.Nodes == 0 {
		t.Fatal("no nodes loaded")
	}
	m := RunCold(context.Background(), e, DCSD, Q1)
	if m.Err != nil || m.Result.Count() != 1 {
		t.Fatalf("Q1: %v %v", m.Result.Items, m.Err)
	}
	if m.Elapsed <= 0 {
		t.Fatal("no time measured")
	}
}

func TestPublicEngineConstructors(t *testing.T) {
	engines := Engines()
	if len(engines) != 4 {
		t.Fatalf("Engines() = %d", len(engines))
	}
	names := map[string]bool{}
	for _, e := range engines {
		names[e.Name()] = true
	}
	for _, want := range []string{"Xcolumn", "Xcollection", "SQL Server", "X-Hive"} {
		if !names[want] {
			t.Errorf("missing engine %s", want)
		}
	}
	if NewXcolumnEngine(0).Name() != "Xcolumn" ||
		NewXcollectionEngine(0, 0).Name() != "Xcollection" ||
		NewSQLServerEngine(0).Name() != "SQL Server" {
		t.Fatal("constructor names wrong")
	}
}

func TestPublicParseHelpers(t *testing.T) {
	if c, err := ParseClass("dcmd"); err != nil || c != DCMD {
		t.Fatal("ParseClass")
	}
	if s, err := ParseSize("large"); err != nil || s != Large {
		t.Fatal("ParseSize")
	}
	if _, err := ParseClass("zz"); err == nil {
		t.Fatal("ParseClass accepted garbage")
	}
}

func TestPublicEvalXQuery(t *testing.T) {
	docs := []Doc{{Name: "d.xml", Data: []byte(`<r><v>1</v><v>2</v></r>`)}}
	items, err := EvalXQuery(`sum(//v)`, docs, nil)
	if err != nil || len(items) != 1 || items[0] != "3" {
		t.Fatalf("EvalXQuery = %v, %v", items, err)
	}
	items, err = EvalXQuery(`//v[. = $X]`, docs, Params{"X": "2"})
	if err != nil || len(items) != 1 {
		t.Fatalf("EvalXQuery with vars = %v, %v", items, err)
	}
	if _, err := EvalXQuery(`((`, docs, nil); err == nil {
		t.Fatal("bad query accepted")
	}
	if _, err := EvalXQuery(`//x`, []Doc{{Name: "bad", Data: []byte("<a>")}}, nil); err == nil {
		t.Fatal("bad document accepted")
	}
}

func TestPublicSchemaEmitters(t *testing.T) {
	for _, class := range Classes {
		if !strings.Contains(SchemaDiagram(class), class.String()) {
			t.Errorf("diagram for %s missing class label", class)
		}
		if !strings.Contains(SchemaDTD(class), "<!ELEMENT") {
			t.Errorf("DTD for %s empty", class)
		}
	}
}

func TestPublicWorkloadHelpers(t *testing.T) {
	if len(WorkloadQueries(DCMD)) < 12 {
		t.Fatal("workload too small")
	}
	if len(Indexes(DCSD)) != 2 {
		t.Fatal("DC/SD should have 2 indexes")
	}
	if QueryParams(DCMD).Get("X") != "O1" {
		t.Fatal("params wrong")
	}
}

func TestPublicBenchRunner(t *testing.T) {
	var buf bytes.Buffer
	r := NewBenchRunner(GenConfig{DictEntries: 30, Articles: 5, Items: 20, Orders: 30},
		[]Size{Small}, &buf)
	if err := r.Table4(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "X-Hive") {
		t.Fatal("runner produced no table")
	}
}

func TestPublicErrors(t *testing.T) {
	e := NewXcolumnEngine(0)
	if err := e.Supports(TCSD, Small); !errors.Is(err, ErrUnsupported) {
		t.Fatal("ErrUnsupported not surfaced through the facade")
	}
	db, _ := Generate(DCSD, Small)
	n := NewNativeEngine(0)
	if _, err := LoadAndIndex(context.Background(), n, db); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Execute(context.Background(), Q19, nil); !errors.Is(err, ErrNoQuery) {
		t.Fatal("ErrNoQuery not surfaced")
	}
}

func TestPublicSchemaXSD(t *testing.T) {
	for _, class := range Classes {
		if !strings.Contains(SchemaXSD(class), "xs:schema") {
			t.Errorf("XSD for %s empty", class)
		}
	}
}

// TestPublicServeConnect drives the network layer through the facade the
// way the README shows: serve an engine, Connect, run the driver remote.
func TestPublicServeConnect(t *testing.T) {
	db, err := Generate(DCMD, Small)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New("native")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(e, ServerConfig{})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Connect(srv.Addr().String(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Name() != e.Name() {
		t.Fatalf("remote name %q, want %q", cl.Name(), e.Name())
	}
	if _, err := LoadAndIndex(context.Background(), cl, db); err != nil {
		t.Fatal(err)
	}
	rep, err := Throughput(context.Background(), cl, DCMD, ThroughputConfig{
		Clients: 2, OpsPerClient: 5, Think: -1, NoWarmup: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != 10 || rep.Errs != 0 {
		t.Fatalf("remote driver run: ops=%d errs=%d", rep.Ops, rep.Errs)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("graceful close: %v", err)
	}
}
