GO ?= go

.PHONY: build test vet race chaos verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Crash/recovery fault-injection grid over every engine x class.
chaos: build
	$(GO) run ./cmd/xbench chaos

# The PR gate: everything that must be green before a change lands.
verify: build vet test race
