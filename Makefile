GO ?= go

.PHONY: build test vet race chaos chaos-updates torture smoke shard-smoke bench-baseline perf-check plan-check plan-golden mvcc-sweep verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race pass in short mode: the race detector multiplies runtimes ~10x, so
# the gate runs the suite with -short; the concurrency stress tests
# (engines, pager, btree, driver) all run in short mode.
race:
	$(GO) test -race -short ./...

# Crash/recovery fault-injection grid over every engine x class.
chaos: build
	$(GO) run ./cmd/xbench chaos

# Crash-during-update grid: every engine x U1/U2/U3 x crash point must
# recover to exactly the pre- or post-update state. Two crash points
# cover both legal outcomes (the zero offset tears the journal commit
# record -> rollback; the budget offset lands after it -> commit).
chaos-updates: build
	$(GO) run ./cmd/xbench chaos --updates-only --crashes=2

# Process-kill torture: a real `xbench serve --journal` child is
# SIGKILLed and restarted 20 times at seeded points during a mixed
# read/write storm; the journal must afterwards hold exactly the set of
# acknowledged updates (no lost ack, no double-apply). The shard-kill
# variant runs the same drill against a 3-shard router with a read
# replica, SIGKILLing a whole shard: cluster-wide exactly-once, and reads
# keep answering through every dead-primary window.
torture:
	$(GO) test -run 'TestProcessKillTorture|TestShardKillTorture|TestSupervisorKill' -v ./internal/chaos/

# Serving-layer smoke: xbench serve on loopback, remote 2-client sweep +
# remote updates, kill -9 + journal-recovery restart, SIGTERM, require a
# graceful exit 0.
smoke:
	bash scripts/serve_smoke.sh

# Sharded serving-tier smoke: 3 `serve --shard` primaries + 1 journal-fed
# replica behind `xbench route`; mixed sweep, kill -9 one whole shard
# mid-run (reads must keep answering via the replica), journal-recovery
# restart, graceful router drain with the per-shard metrics report.
shard-smoke:
	bash scripts/shard_smoke.sh

# Regenerate the archived hot-path perf baselines (full-size cells; see
# EXPERIMENTS.md "performance regression protocol"). Commit the updated
# results/BENCH_pr7_*.json alongside any change that moves them.
bench-baseline:
	$(GO) run ./cmd/xbench perf --cell=all --out='results/BENCH_pr7_<cell>.json'

# Regression gate: re-measure every cell at CI scale and fail if an
# improvement RATIO fell more than 20% below its committed baseline.
# Ratios (hit rate, updates/fsync, pipelined-vs-pooled speedup) are
# compared rather than absolute throughput, so a slower CI machine does
# not read as a regression.
perf-check:
	$(GO) run ./cmd/xbench perf --cell=all --short --check

# MVCC snapshot-read smoke: read p99 must stay within 2x the read-only
# p99 at 30% updates when snapshots pin readers off the engine write
# lock (DESIGN.md §15). Large per-point samples so the p99 is a real
# quantile, not the single worst scheduler hiccup; no baseline sweep —
# the gate pins the snapshot curve only, CI time stays bounded.
mvcc-sweep: build
	$(GO) run ./cmd/xbench mvcc-sweep --clients=2 --ops=400 \
		--fractions=0,0.3 --baseline=false --check

# Plan regression gate: the costed EXPLAIN tree of every (class, query)
# cell, planned over fixture statistics, must match the checked-in corpus
# under results/plans/ byte for byte.
plan-check:
	$(GO) test -run TestGoldenPlans ./internal/plan/

# Refresh the EXPLAIN corpus after an intended planner change; commit the
# diff alongside the change that caused it.
plan-golden:
	$(GO) test -run TestGoldenPlans -update-plans ./internal/plan/

# The PR gate: everything that must be green before a change lands.
verify: build vet test race chaos-updates torture smoke shard-smoke plan-check
