GO ?= go

.PHONY: build test vet race chaos verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race pass in short mode: the race detector multiplies runtimes ~10x, so
# the gate runs the suite with -short; the concurrency stress tests
# (engines, pager, btree, driver) all run in short mode.
race:
	$(GO) test -race -short ./...

# Crash/recovery fault-injection grid over every engine x class.
chaos: build
	$(GO) run ./cmd/xbench chaos

# The PR gate: everything that must be green before a change lands.
verify: build vet test race
