GO ?= go

.PHONY: build test vet race chaos chaos-updates torture smoke verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race pass in short mode: the race detector multiplies runtimes ~10x, so
# the gate runs the suite with -short; the concurrency stress tests
# (engines, pager, btree, driver) all run in short mode.
race:
	$(GO) test -race -short ./...

# Crash/recovery fault-injection grid over every engine x class.
chaos: build
	$(GO) run ./cmd/xbench chaos

# Crash-during-update grid: every engine x U1/U2/U3 x crash point must
# recover to exactly the pre- or post-update state. Two crash points
# cover both legal outcomes (the zero offset tears the journal commit
# record -> rollback; the budget offset lands after it -> commit).
chaos-updates: build
	$(GO) run ./cmd/xbench chaos --updates-only --crashes=2

# Process-kill torture: a real `xbench serve --journal` child is
# SIGKILLed and restarted 20 times at seeded points during a mixed
# read/write storm; the journal must afterwards hold exactly the set of
# acknowledged updates (no lost ack, no double-apply).
torture:
	$(GO) test -run 'TestProcessKillTorture|TestSupervisorKill' -v ./internal/chaos/

# Serving-layer smoke: xbench serve on loopback, remote 2-client sweep +
# remote updates, kill -9 + journal-recovery restart, SIGTERM, require a
# graceful exit 0.
smoke:
	bash scripts/serve_smoke.sh

# The PR gate: everything that must be green before a change lands.
verify: build vet test race chaos-updates torture smoke
