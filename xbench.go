// Package xbench is an open-source reproduction of the XBench family of
// XML database benchmarks (Yao, Özsu, Khandelwal: "XBench Benchmark and
// Performance Testing of XML DBMSs", ICDE 2004).
//
// It provides, entirely in Go with no dependencies outside the standard
// library:
//
//   - Deterministic generators for the four XBench database classes
//     (TC/SD dictionary, TC/MD article corpus, DC/SD catalog, DC/MD
//     orders + flat documents), driven by a ToXgene-style template engine
//     and a TPC-W-derived relational population.
//   - The Q1-Q20 workload instantiated per class, with the Table 3 value
//     indexes and deterministic parameter bindings.
//   - Four storage engines reproducing the architectures the paper
//     evaluates: a native XML store (X-Hive analog), CLOB-plus-side-tables
//     (DB2 Xcolumn analog) and two shredding engines (DB2 Xcollection and
//     SQL Server analogs), all running over a simulated pager with a
//     buffer pool so cold-run costs are observable.
//   - An XQuery subset engine that the native store executes directly.
//   - A benchmark harness that regenerates the paper's Tables 1-9 and the
//     schema diagrams of Figures 1-4.
//
// This file is the public facade: it re-exports the types and
// constructors a downstream user needs, so the internal packages stay
// free to evolve.
package xbench

import (
	"context"
	"fmt"
	"io"
	"strings"

	"xbench/internal/bench"
	"xbench/internal/client"
	"xbench/internal/core"
	"xbench/internal/driver"
	"xbench/internal/engines/native"
	"xbench/internal/engines/sqlserver"
	"xbench/internal/engines/xcollection"
	"xbench/internal/engines/xcolumn"
	"xbench/internal/gen"
	"xbench/internal/metrics"
	"xbench/internal/pager"
	"xbench/internal/router"
	"xbench/internal/server"
	"xbench/internal/workload"
	"xbench/internal/xmldom"
	"xbench/internal/xmlschema"
	"xbench/internal/xquery"
)

// Core vocabulary.
type (
	// Class is one of the four benchmark database classes.
	Class = core.Class
	// Size is a database scale step (Small/Normal/Large/Huge, 10x apart).
	Size = core.Size
	// QueryID identifies one of the 20 abstract workload queries.
	QueryID = core.QueryID
	// Params binds the external variables of a query.
	Params = core.Params
	// Result is a query execution outcome.
	Result = core.Result
	// Database is a generated document set.
	Database = core.Database
	// Doc is one serialized document.
	Doc = core.Doc
	// Engine is a system under test.
	Engine = core.Engine
	// LoadStats reports what a bulk load did.
	LoadStats = core.LoadStats
	// IndexSpec is a Table 3 value index definition.
	IndexSpec = core.IndexSpec
	// PlanNode is one operator of a costed physical query plan
	// (see Explain).
	PlanNode = core.PlanNode
	// Explainer is the optional Engine extension that describes query
	// plans without executing them.
	Explainer = core.Explainer
	// GenConfig controls database generation scale and seed.
	GenConfig = gen.Config
	// Measurement is one cold query measurement.
	Measurement = workload.Measurement
	// EngineV1 is the pre-context engine contract; AdaptV1 lifts one to
	// the current Engine interface.
	EngineV1 = core.EngineV1
	// FaultPolicy configures the fault-injecting disk (see WithFaultPolicy).
	FaultPolicy = pager.FaultPolicy
	// MetricsRegistry collects counters, spans and histograms
	// (see WithMetrics).
	MetricsRegistry = metrics.Registry
	// ThroughputConfig controls the multi-client workload driver.
	ThroughputConfig = driver.Config
	// ThroughputReport is one closed-loop driver run's result.
	ThroughputReport = driver.Report
	// Server exposes an Engine over TCP (see NewServer, DESIGN.md §11).
	Server = server.Server
	// ServerConfig tunes the server's address, admission control and
	// per-request timeout cap.
	ServerConfig = server.Config
	// Client is a remote engine handle; it satisfies Engine, so drivers
	// run unchanged against a served engine (see Connect).
	Client = client.Client
	// ClientConfig tunes the client's pool, dial timeout and retry policy.
	ClientConfig = client.Config
	// Router coordinates a sharded serving tier: a hash-partitioned
	// scatter-gather Engine over N served shards (see ConnectShards,
	// DESIGN.md §16).
	Router = router.Router
	// RouterShard declares one shard of a sharded cluster: a primary
	// address plus the read replicas its journal feeds.
	RouterShard = router.Shard
	// RouterConfig tunes the router's partitioning, scatter fan-out,
	// partial-failure policy and read preference.
	RouterConfig = router.Config
)

// Read preferences for RouterConfig.ReadPref.
const (
	ReadPrimary = router.ReadPrimary
	ReadReplica = router.ReadReplica
)

// The four classes (paper Table 1).
const (
	TCSD = core.TCSD
	TCMD = core.TCMD
	DCSD = core.DCSD
	DCMD = core.DCMD
)

// The scale steps.
const (
	Small  = core.Small
	Normal = core.Normal
	Large  = core.Large
	Huge   = core.Huge
)

// Workload query ids (the paper's 20 abstract query types).
const (
	Q1  = core.Q1
	Q2  = core.Q2
	Q3  = core.Q3
	Q4  = core.Q4
	Q5  = core.Q5
	Q6  = core.Q6
	Q7  = core.Q7
	Q8  = core.Q8
	Q9  = core.Q9
	Q10 = core.Q10
	Q11 = core.Q11
	Q12 = core.Q12
	Q13 = core.Q13
	Q14 = core.Q14
	Q15 = core.Q15
	Q16 = core.Q16
	Q17 = core.Q17
	Q18 = core.Q18
	Q19 = core.Q19
	Q20 = core.Q20
)

// ErrUnsupported marks class/size combinations an engine cannot host.
var ErrUnsupported = core.ErrUnsupported

// ErrNoQuery marks workload queries a class does not instantiate.
var ErrNoQuery = core.ErrNoQuery

// ErrNoExplain marks engines (or old servers) that execute queries but
// cannot describe their plans; Explain wraps it so callers can degrade
// gracefully with errors.Is.
var ErrNoExplain = core.ErrNoExplain

// Classes lists all four classes in the paper's table order.
var Classes = core.Classes

// Sizes lists the three sizes the paper reports (Small, Normal, Large).
var Sizes = core.Sizes

// Generate builds the benchmark database for a class at a size with the
// default configuration (deterministic; ~0.4 MB at Small, 10x per step).
func Generate(class Class, size Size) (*Database, error) {
	return gen.Generate(class, size)
}

// ParseClass converts "tcsd", "TC/SD", ... to a Class.
func ParseClass(s string) (Class, error) { return core.ParseClass(s) }

// ParseSize converts "small", "normal", ... to a Size.
func ParseSize(s string) (Size, error) { return core.ParseSize(s) }

// NewMetricsRegistry creates an empty metrics registry to pass to
// WithMetrics.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// Option configures an engine built by New.
type Option func(*engineOptions)

type engineOptions struct {
	poolPages int
	rowLimit  int
	fault     *pager.FaultPolicy
	metrics   *metrics.Registry
	snapshots *bool
}

// WithPoolPages sizes the engine's buffer pool in pages; <= 0 selects the
// default.
func WithPoolPages(n int) Option { return func(o *engineOptions) { o.poolPages = n } }

// WithRowLimit sets the per-document decomposition row limit of the
// Xcollection engine (<= 0 selects the default). Other engines ignore it.
func WithRowLimit(n int) Option { return func(o *engineOptions) { o.rowLimit = n } }

// WithFaultPolicy installs a fault-injection policy on the engine's pager
// (enables the write-ahead log and the simulated crash/torn-write faults).
func WithFaultPolicy(fp FaultPolicy) Option {
	return func(o *engineOptions) { o.fault = &fp }
}

// WithMetrics attaches a metrics registry to the engine's pager so disk,
// operator and phase counters accumulate there.
func WithMetrics(reg *MetricsRegistry) Option {
	return func(o *engineOptions) { o.metrics = reg }
}

// WithSnapshots toggles MVCC snapshot reads (DESIGN.md §15). They are on
// by default: a query pins a commit epoch and runs against an immutable
// published state without taking the engine write lock, so U1-U3 updates
// never stall readers. WithSnapshots(false) reverts to the pre-MVCC
// behavior — queries serialize against updates under the engine latch —
// which is the baseline the update-fraction sweep compares against.
func WithSnapshots(on bool) Option {
	return func(o *engineOptions) { o.snapshots = &on }
}

// New constructs an engine by name with functional options. Recognized
// names (case-insensitive): "native" or "x-hive", "xcolumn", "xcollection",
// "sqlserver" or "sql server".
//
//	e, err := xbench.New("native", xbench.WithPoolPages(256))
func New(name string, opts ...Option) (Engine, error) {
	var o engineOptions
	for _, opt := range opts {
		opt(&o)
	}
	var e Engine
	switch strings.ToLower(strings.ReplaceAll(name, " ", "")) {
	case "native", "x-hive", "xhive":
		e = native.New(o.poolPages)
	case "xcolumn":
		e = xcolumn.New(o.poolPages)
	case "xcollection":
		e = xcollection.New(o.poolPages, o.rowLimit)
	case "sqlserver":
		e = sqlserver.New(o.poolPages)
	default:
		return nil, fmt.Errorf("xbench: unknown engine %q (want native, xcolumn, xcollection or sqlserver)", name)
	}
	if o.fault != nil || o.metrics != nil {
		p := e.(interface{ Pager() *pager.Pager }).Pager()
		if o.fault != nil {
			p.SetFaultPolicy(*o.fault)
		}
		if o.metrics != nil {
			p.SetMetrics(o.metrics)
		}
	}
	if o.snapshots != nil {
		e.(interface{ SetSnapshots(bool) }).SetSnapshots(*o.snapshots)
	}
	return e, nil
}

// AdaptV1 wraps a pre-context EngineV1 as an Engine.
func AdaptV1(e EngineV1) Engine { return core.AdaptV1(e) }

// NewNativeEngine returns the native XML store (X-Hive analog).
// poolPages sizes the buffer pool; <= 0 selects the default.
//
// Deprecated: use New("native", WithPoolPages(poolPages)).
func NewNativeEngine(poolPages int) Engine { return native.New(poolPages) }

// NewXcolumnEngine returns the DB2 XML Extender Xcolumn analog
// (intact CLOBs + side tables; multi-document classes only).
//
// Deprecated: use New("xcolumn", WithPoolPages(poolPages)).
func NewXcolumnEngine(poolPages int) Engine { return xcolumn.New(poolPages) }

// NewXcollectionEngine returns the DB2 XML Extender Xcollection analog
// (shredding with a per-document decomposition row limit; rowLimit <= 0
// selects the default).
//
// Deprecated: use New("xcollection", WithPoolPages(poolPages),
// WithRowLimit(rowLimit)).
func NewXcollectionEngine(poolPages, rowLimit int) Engine {
	return xcollection.New(poolPages, rowLimit)
}

// NewSQLServerEngine returns the SQL Server 2000 + SQLXML analog
// (shredding; mixed-content text is dropped).
//
// Deprecated: use New("sqlserver", WithPoolPages(poolPages)).
func NewSQLServerEngine(poolPages int) Engine { return sqlserver.New(poolPages) }

// Engines returns one fresh instance of each of the four systems, in the
// paper's row order (Xcolumn, Xcollection, SQL Server, X-Hive).
func Engines() []Engine {
	out := make([]Engine, 0, len(bench.EngineNames))
	for _, n := range bench.EngineNames {
		out = append(out, bench.NewEngine(n))
	}
	return out
}

// LoadAndIndex bulk-loads db into e and builds the Table 3 indexes.
// Cancellation via ctx is honored at page-fetch granularity.
func LoadAndIndex(ctx context.Context, e Engine, db *Database) (LoadStats, error) {
	st, _, err := workload.LoadAndIndex(ctx, e, db)
	return st, err
}

// QueryParams returns the deterministic parameter bindings for a class.
func QueryParams(class Class) Params { return workload.Params(class) }

// Explain returns the costed physical plan the engine would execute for
// q, as a printable tree (PlanNode.Format). Engines that cannot explain
// — including EngineV1 adapters and remote servers predating OpExplain —
// return an error wrapping ErrNoExplain.
func Explain(ctx context.Context, e Engine, q QueryID, p Params) (*PlanNode, error) {
	return core.Explain(ctx, e, q, p)
}

// RunCold executes one workload query cold (caches dropped first).
func RunCold(ctx context.Context, e Engine, class Class, q QueryID) Measurement {
	return workload.RunCold(ctx, e, class, q)
}

// Throughput runs the closed-loop multi-client workload driver against a
// loaded engine and reports qps plus per-query latency percentiles. The
// engine must already be loaded and indexed (see LoadAndIndex).
func Throughput(ctx context.Context, e Engine, class Class, cfg ThroughputConfig) (ThroughputReport, error) {
	return driver.Run(ctx, e, class, cfg)
}

// NewServer wraps an engine in a TCP server (not yet listening; call
// Start, and Shutdown/Close to drain). A zero ServerConfig listens on an
// ephemeral loopback port with the default admission control.
func NewServer(e Engine, cfg ServerConfig) *Server { return server.New(e, cfg) }

// Connect dials an xbench server (see NewServer or `xbench serve`) and
// returns a remote Engine. Closing it releases the client's connections
// only; the server and its engine keep running.
func Connect(addr string, cfg ClientConfig) (*Client, error) { return client.Dial(addr, cfg) }

// ConnectShards dials every shard of a served cluster and returns the
// coordinating Router: an Engine that hash-partitions documents across
// the shards, routes single-document queries and the U1-U3 updates to the
// owning shard, and scatter-gathers everything else. Closing it releases
// the coordinator's connections only; the shard servers keep running.
func ConnectShards(shards []RouterShard, cfg RouterConfig) (*Router, error) {
	return router.Dial(shards, cfg)
}

// WorkloadQueries returns the query types instantiated for a class.
func WorkloadQueries(class Class) []QueryID { return workload.QueryIDs(class) }

// Indexes returns the Table 3 index specs for a class.
func Indexes(class Class) []IndexSpec { return workload.Indexes(class) }

// SchemaDiagram renders the ASCII schema tree of a class (the information
// of paper Figures 1-4).
func SchemaDiagram(class Class) string { return xmlschema.For(class).Diagram() }

// SchemaDTD renders the DTD of a class.
func SchemaDTD(class Class) string { return xmlschema.For(class).DTD() }

// SchemaXSD renders the W3C XML Schema of a class (XBench supports XML
// Schema, unlike the benchmarks the paper compares against).
func SchemaXSD(class Class) string { return xmlschema.For(class).XSD() }

// NewBenchRunner returns the harness that regenerates the paper's tables.
// A zero GenConfig uses the defaults; nil sizes means Small/Normal/Large.
func NewBenchRunner(cfg GenConfig, sizes []Size, out io.Writer) *bench.Runner {
	return bench.NewRunner(cfg, sizes, out)
}

// EvalXQuery compiles and evaluates an ad-hoc XQuery over a set of
// serialized documents, returning the serialized result items. It is the
// quickest way to use the query engine directly.
func EvalXQuery(query string, docs []Doc, vars Params) ([]string, error) {
	coll := xquery.NewCollection()
	for _, d := range docs {
		parsed, err := xmldom.Parse(d.Data)
		if err != nil {
			return nil, err
		}
		coll.Add(d.Name, parsed)
	}
	q, err := xquery.Parse(query)
	if err != nil {
		return nil, err
	}
	bound := map[string]xquery.Seq{}
	for k, v := range vars {
		bound[k] = xquery.Seq{v}
	}
	seq, err := q.EvalWithVars(coll, bound)
	if err != nil {
		return nil, err
	}
	return xquery.SerializeSeq(seq), nil
}
