package xbench

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// TestExplainFacade: every built-in engine explains its plans through
// the facade, and the DC/SD Q5 plan shows the limit pushdown the paper's
// ordered-access cell depends on.
func TestExplainFacade(t *testing.T) {
	ctx := context.Background()
	db, err := Generate(DCSD, Small)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []Engine{NewNativeEngine(0), NewXcollectionEngine(0, 0), NewSQLServerEngine(0)} {
		if _, err := LoadAndIndex(ctx, e, db); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		node, err := Explain(ctx, e, Q5, QueryParams(DCSD))
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		out := node.Format()
		if !strings.Contains(out, "limit 1 [limit-pushdown]") {
			t.Errorf("%s: Q5 plan lost the limit pushdown:\n%s", e.Name(), out)
		}
		// Asking about a query the class does not define is an
		// ErrNoQuery, not a panic.
		if _, err := Explain(ctx, e, QueryID(99), nil); !errors.Is(err, ErrNoQuery) {
			t.Errorf("%s: undefined query err = %v, want ErrNoQuery", e.Name(), err)
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestExplainV1Fallback: legacy EngineV1 wrappers never implement
// Explainer; Explain degrades to the ErrNoExplain sentinel instead of
// failing opaquely.
func TestExplainV1Fallback(t *testing.T) {
	e := AdaptV1(fakeV1{})
	_, err := Explain(context.Background(), e, Q1, nil)
	if !errors.Is(err, ErrNoExplain) {
		t.Fatalf("err = %v, want ErrNoExplain", err)
	}
}
