module xbench

go 1.22
