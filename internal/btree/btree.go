// Package btree implements a disk-oriented B+tree over the simulated pager:
// fixed-size node pages, variable-length string keys, duplicate keys
// allowed, uint64 values (heap RIDs). It backs both the value indexes of
// paper Table 3 and the primary/foreign-key indexes the relational engines
// create during bulk loading.
//
// The benchmark workload is load-then-query, so the tree supports Insert
// and lookups but not deletion, matching XBench 1.0's query-only scope.
//
// Concurrency: Search and Range take a shared latch, so any number of
// readers traverse in parallel; Insert and Sync take it exclusive. The
// root pointer, entry count and height only change under the exclusive
// latch. Node pages themselves are protected by the pager's own latch.
package btree

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"xbench/internal/metrics"
	"xbench/internal/pager"
)

// MaxKey is the maximum indexed key length; longer keys are truncated
// (DB2 and SQL Server impose similar index key limits, see paper §3.2.2 on
// why long text columns cannot be indexed).
const MaxKey = 512

// Tree is a B+tree handle. Concurrent Search/Range calls are safe;
// Insert and Sync exclude them.
type Tree struct {
	mu     sync.RWMutex
	p      *pager.Pager
	fid    pager.FileID
	root   uint32
	n      int
	height int

	// Counters from the pager's metrics registry (nil-safe): node visits,
	// node splits, and the tree height as a high-water gauge.
	cVisit  *metrics.Counter
	cSplit  *metrics.Counter
	cHeight *metrics.Counter
}

type node struct {
	leaf bool
	next uint32 // leaf chain; 0 = none (page 0 is a reserved header page)
	keys []string
	vals []uint64 // leaf only, parallel to keys
	kids []uint32 // internal only, len(keys)+1
}

// New creates an empty tree in a fresh pager file. Page 0 is reserved as a
// header page so that page number 0 can serve as the nil sentinel in the
// leaf chain.
func New(p *pager.Pager, name string) (*Tree, error) {
	t := &Tree{p: p, fid: p.Create(name), height: 1}
	t.bindMetrics()
	if _, err := p.Append(t.fid); err != nil { // reserved page 0
		return nil, err
	}
	no, err := p.Append(t.fid)
	if err != nil {
		return nil, err
	}
	t.root = no
	if err := t.writeNode(no, &node{leaf: true}); err != nil {
		return nil, err
	}
	t.cHeight.SetMax(int64(t.height))
	return t, nil
}

// bindMetrics caches the tree's counters from the pager's registry.
func (t *Tree) bindMetrics() {
	reg := t.p.Metrics()
	t.cVisit = reg.Counter("btree.visit")
	t.cSplit = reg.Counter("btree.split")
	t.cHeight = reg.Counter("btree.height")
}

// Len returns the number of stored entries.
func (t *Tree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.n
}

// FileID returns the pager file backing the tree.
func (t *Tree) FileID() pager.FileID { return t.fid }

// header page 0 layout: [4] magic "BTR1" [4] root page [8] entry count.
const headerMagic = 0x42545231

// Sync persists the tree header (root page number and entry count) to the
// reserved page 0 and forces every dirty node page to disk. A synced tree
// survives a crash: Open re-attaches to it after pager recovery.
func (t *Tree) Sync() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	var buf [16]byte
	binary.BigEndian.PutUint32(buf[0:4], headerMagic)
	binary.BigEndian.PutUint32(buf[4:8], t.root)
	binary.BigEndian.PutUint64(buf[8:16], uint64(t.n))
	if err := t.p.Write(t.fid, 0, buf[:]); err != nil {
		return err
	}
	return t.p.Sync(t.fid)
}

// Open re-attaches to a tree previously persisted with Sync in the given
// pager file (e.g. after crash recovery replayed the WAL).
func Open(p *pager.Pager, fid pager.FileID) (*Tree, error) {
	t := &Tree{p: p, fid: fid}
	pg, err := p.Read(fid, 0)
	if err != nil {
		return nil, err
	}
	if binary.BigEndian.Uint32(pg[0:4]) != headerMagic {
		return nil, fmt.Errorf("btree: file %d has no synced tree header", fid)
	}
	t.root = binary.BigEndian.Uint32(pg[4:8])
	t.n = int(binary.BigEndian.Uint64(pg[8:16]))
	if t.root == 0 || t.root >= p.NumPages(fid) {
		return nil, fmt.Errorf("btree: file %d header has invalid root page %d", fid, t.root)
	}
	t.bindMetrics()
	// Recover the height by descending the leftmost spine.
	t.height = 1
	for no := t.root; ; t.height++ {
		nd, err := t.readNode(context.Background(), no)
		if err != nil {
			return nil, err
		}
		if nd.leaf {
			break
		}
		no = nd.kids[0]
	}
	t.cHeight.SetMax(int64(t.height))
	return t, nil
}

// Height returns the tree height in levels (1 = a lone leaf root).
func (t *Tree) Height() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.height
}

func trunc(key string) string {
	if len(key) > MaxKey {
		return key[:MaxKey]
	}
	return key
}

// Insert adds (key, val). Duplicate keys are allowed. Insert takes the
// exclusive latch: concurrent searches wait for the tree to be
// structurally consistent again.
func (t *Tree) Insert(key string, val uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	key = trunc(key)
	sepKey, newChild, split, err := t.insert(t.root, key, val)
	if err != nil {
		return err
	}
	if split {
		// Grow a new root.
		no, err := t.p.Append(t.fid)
		if err != nil {
			return err
		}
		root := &node{keys: []string{sepKey}, kids: []uint32{t.root, newChild}}
		if err := t.writeNode(no, root); err != nil {
			return err
		}
		t.root = no
		t.height++
		t.cHeight.SetMax(int64(t.height))
	}
	t.n++
	return nil
}

func (t *Tree) insert(pageNo uint32, key string, val uint64) (string, uint32, bool, error) {
	nd, err := t.readNode(context.Background(), pageNo)
	if err != nil {
		return "", 0, false, err
	}
	if nd.leaf {
		// Insert after the last equal key (stable for duplicates).
		i := sort.Search(len(nd.keys), func(i int) bool { return nd.keys[i] > key })
		nd.keys = append(nd.keys, "")
		copy(nd.keys[i+1:], nd.keys[i:])
		nd.keys[i] = key
		nd.vals = append(nd.vals, 0)
		copy(nd.vals[i+1:], nd.vals[i:])
		nd.vals[i] = val
		return t.finishInsert(pageNo, nd)
	}
	ci := sort.Search(len(nd.keys), func(i int) bool { return nd.keys[i] > key })
	sep, newChild, split, err := t.insert(nd.kids[ci], key, val)
	if err != nil {
		return "", 0, false, err
	}
	if !split {
		return "", 0, false, nil
	}
	nd.keys = append(nd.keys, "")
	copy(nd.keys[ci+1:], nd.keys[ci:])
	nd.keys[ci] = sep
	nd.kids = append(nd.kids, 0)
	copy(nd.kids[ci+2:], nd.kids[ci+1:])
	nd.kids[ci+1] = newChild
	return t.finishInsert(pageNo, nd)
}

// finishInsert writes nd back, splitting it first if it no longer fits.
func (t *Tree) finishInsert(pageNo uint32, nd *node) (string, uint32, bool, error) {
	if nd.size() <= pager.PageSize {
		return "", 0, false, t.writeNode(pageNo, nd)
	}
	t.cSplit.Inc()
	mid := len(nd.keys) / 2
	right := &node{leaf: nd.leaf}
	var sep string
	if nd.leaf {
		right.keys = append(right.keys, nd.keys[mid:]...)
		right.vals = append(right.vals, nd.vals[mid:]...)
		nd.keys = nd.keys[:mid]
		nd.vals = nd.vals[:mid]
		sep = right.keys[0]
		right.next = nd.next
	} else {
		sep = nd.keys[mid]
		right.keys = append(right.keys, nd.keys[mid+1:]...)
		right.kids = append(right.kids, nd.kids[mid+1:]...)
		nd.keys = nd.keys[:mid]
		nd.kids = nd.kids[:mid+1]
	}
	rightNo, err := t.p.Append(t.fid)
	if err != nil {
		return "", 0, false, err
	}
	if nd.leaf {
		nd.next = rightNo
	}
	if err := t.writeNode(rightNo, right); err != nil {
		return "", 0, false, err
	}
	if err := t.writeNode(pageNo, nd); err != nil {
		return "", 0, false, err
	}
	return sep, rightNo, true, nil
}

// Search returns all values stored under key, in insertion order.
// Concurrent searches run in parallel; cancellation via ctx is honored
// at page-fetch granularity.
func (t *Tree) Search(ctx context.Context, key string) ([]uint64, error) {
	key = trunc(key)
	var out []uint64
	err := t.Range(ctx, key, key, func(_ string, v uint64) bool {
		out = append(out, v)
		return true
	})
	return out, err
}

// Range visits entries with lo <= key <= hi in key order. Returning false
// stops the scan. Concurrent ranges run in parallel under a shared
// latch; cancellation via ctx is honored at page-fetch granularity.
func (t *Tree) Range(ctx context.Context, lo, hi string, fn func(key string, val uint64) bool) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return rangeScan(ctx, t.readNode, t.root, lo, hi, fn)
}

// rangeScan is the shared range traversal: descend from root to the
// leftmost leaf that can contain lo, then walk the leaf chain. read
// abstracts the page fetch so the live Tree (pool reads under its shared
// latch) and a TreeView (epoch-pinned versioned reads, no latch) use the
// same logic.
func rangeScan(ctx context.Context, read func(context.Context, uint32) (*node, error),
	root uint32, lo, hi string, fn func(key string, val uint64) bool) error {
	lo, hi = trunc(lo), trunc(hi)
	pageNo := root
	for {
		nd, err := read(ctx, pageNo)
		if err != nil {
			return err
		}
		if nd.leaf {
			break
		}
		// Descend to the leftmost leaf that can contain lo. Duplicates of a
		// promoted separator may remain in the left sibling, so on an equal
		// separator we go left and rely on the leaf chain to walk forward.
		ci := sort.Search(len(nd.keys), func(i int) bool { return nd.keys[i] >= lo })
		pageNo = nd.kids[ci]
	}
	for pageNo != 0 {
		nd, err := read(ctx, pageNo)
		if err != nil {
			return err
		}
		for i, k := range nd.keys {
			if k < lo {
				continue
			}
			if k > hi {
				return nil
			}
			if !fn(k, nd.vals[i]) {
				return nil
			}
		}
		pageNo = nd.next
	}
	return nil
}

// node serialization:
//
//	[1]type [4]next [2]nkeys
//	leaf:     nkeys * ([2]klen [klen]key [8]val)
//	internal: [4]kid0 then nkeys * ([2]klen [klen]key [4]kid)
func (n *node) size() int {
	s := 1 + 4 + 2
	if n.leaf {
		for _, k := range n.keys {
			s += 2 + len(k) + 8
		}
	} else {
		s += 4
		for _, k := range n.keys {
			s += 2 + len(k) + 4
		}
	}
	return s
}

func (t *Tree) writeNode(pageNo uint32, n *node) error {
	buf := make([]byte, 0, n.size())
	if n.leaf {
		buf = append(buf, 0)
	} else {
		buf = append(buf, 1)
	}
	buf = binary.BigEndian.AppendUint32(buf, n.next)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(n.keys)))
	if n.leaf {
		for i, k := range n.keys {
			buf = binary.BigEndian.AppendUint16(buf, uint16(len(k)))
			buf = append(buf, k...)
			buf = binary.BigEndian.AppendUint64(buf, n.vals[i])
		}
	} else {
		buf = binary.BigEndian.AppendUint32(buf, n.kids[0])
		for i, k := range n.keys {
			buf = binary.BigEndian.AppendUint16(buf, uint16(len(k)))
			buf = append(buf, k...)
			buf = binary.BigEndian.AppendUint32(buf, n.kids[i+1])
		}
	}
	if len(buf) > pager.PageSize {
		return fmt.Errorf("btree: node overflow: %d bytes", len(buf))
	}
	return t.p.Write(t.fid, pageNo, buf)
}

func (t *Tree) readNode(ctx context.Context, pageNo uint32) (*node, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t.cVisit.Inc()
	pg, err := t.p.Read(t.fid, pageNo)
	if err != nil {
		return nil, err
	}
	return decodeNode(pg), nil
}

func decodeNode(pg []byte) *node {
	n := &node{leaf: pg[0] == 0}
	n.next = binary.BigEndian.Uint32(pg[1:5])
	nk := int(binary.BigEndian.Uint16(pg[5:7]))
	off := 7
	if n.leaf {
		n.keys = make([]string, nk)
		n.vals = make([]uint64, nk)
		for i := 0; i < nk; i++ {
			kl := int(binary.BigEndian.Uint16(pg[off : off+2]))
			off += 2
			n.keys[i] = string(pg[off : off+kl])
			off += kl
			n.vals[i] = binary.BigEndian.Uint64(pg[off : off+8])
			off += 8
		}
		return n
	}
	n.kids = make([]uint32, 1, nk+1)
	n.kids[0] = binary.BigEndian.Uint32(pg[off : off+4])
	off += 4
	n.keys = make([]string, nk)
	for i := 0; i < nk; i++ {
		kl := int(binary.BigEndian.Uint16(pg[off : off+2]))
		off += 2
		n.keys[i] = string(pg[off : off+kl])
		off += kl
		n.kids = append(n.kids, binary.BigEndian.Uint32(pg[off:off+4]))
		off += 4
	}
	return n
}
