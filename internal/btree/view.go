package btree

import (
	"context"

	"xbench/internal/pager"
)

// Reader is the read surface shared by a live Tree and an epoch-pinned
// TreeView: the engines' query paths depend on this interface so the
// same plan execution code runs against either.
type Reader interface {
	Search(ctx context.Context, key string) ([]uint64, error)
	Range(ctx context.Context, lo, hi string, fn func(key string, val uint64) bool) error
	Height() int
	Len() int
}

var (
	_ Reader = (*Tree)(nil)
	_ Reader = (*TreeView)(nil)
)

// TreeView is an immutable snapshot of a Tree as of a commit epoch: the
// root pointer, entry count and height frozen at view time, with node
// pages read through pager.ReadAt. A view takes no latch at all — a
// concurrent Insert into the live tree rewrites node pages, but the
// mutation bracket captures their pre-images, so the view's traversal
// stays structurally consistent. The reader must hold a pager.Snap
// pinned at the view's epoch for the view's lifetime.
type TreeView struct {
	p      *pager.Pager
	fid    pager.FileID
	root   uint32
	n      int
	height int
	epoch  uint64
	t      *Tree // metrics source
}

// ViewAt freezes the tree as of the given commit epoch. It must be
// called by the writer (or under its exclusion) at a commit boundary:
// the in-memory root/count/height then exactly describe the tree whose
// node pages ReadAt serves at that epoch.
func (t *Tree) ViewAt(epoch uint64) *TreeView {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return &TreeView{p: t.p, fid: t.fid, root: t.root, n: t.n, height: t.height, epoch: epoch, t: t}
}

// Epoch returns the view's commit epoch.
func (v *TreeView) Epoch() uint64 { return v.epoch }

// Len returns the entry count of the view.
func (v *TreeView) Len() int { return v.n }

// Height returns the tree height of the view.
func (v *TreeView) Height() int { return v.height }

func (v *TreeView) readNode(ctx context.Context, pageNo uint32) (*node, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	v.t.cVisit.Inc()
	pg, err := v.p.ReadAt(v.fid, pageNo, v.epoch)
	if err != nil {
		return nil, err
	}
	return decodeNode(pg), nil
}

// Search returns all values stored under key as of the view's epoch.
func (v *TreeView) Search(ctx context.Context, key string) ([]uint64, error) {
	key = trunc(key)
	var out []uint64
	err := v.Range(ctx, key, key, func(_ string, val uint64) bool {
		out = append(out, val)
		return true
	})
	return out, err
}

// Range visits entries with lo <= key <= hi in key order as of the
// view's epoch. Returning false stops the scan.
func (v *TreeView) Range(ctx context.Context, lo, hi string, fn func(key string, val uint64) bool) error {
	return rangeScan(ctx, v.readNode, v.root, lo, hi, fn)
}
