package btree

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"xbench/internal/pager"
	"xbench/internal/stats"
)

func newTree(t *testing.T) *Tree {
	t.Helper()
	tr, err := New(pager.New(256), "idx")
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestInsertSearchSmall(t *testing.T) {
	tr := newTree(t)
	pairs := map[string]uint64{"b": 2, "a": 1, "c": 3}
	for k, v := range pairs {
		if err := tr.Insert(k, v); err != nil {
			t.Fatal(err)
		}
	}
	for k, v := range pairs {
		got, err := tr.Search(context.Background(), k)
		if err != nil || len(got) != 1 || got[0] != v {
			t.Fatalf("Search(%q) = %v, %v", k, got, err)
		}
	}
	if got, _ := tr.Search(context.Background(), "zzz"); len(got) != 0 {
		t.Fatal("Search miss returned values")
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestManyKeysForceSplits(t *testing.T) {
	tr := newTree(t)
	const n = 20000
	for i := 0; i < n; i++ {
		if err := tr.Insert(fmt.Sprintf("key%08d", i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, i := range []int{0, 1, 777, n / 2, n - 1} {
		got, err := tr.Search(context.Background(), fmt.Sprintf("key%08d", i))
		if err != nil || len(got) != 1 || got[0] != uint64(i) {
			t.Fatalf("Search key%08d = %v, %v", i, got, err)
		}
	}
}

func TestRandomOrderInsert(t *testing.T) {
	tr := newTree(t)
	r := stats.NewRNG(5)
	perm := r.Perm(5000)
	for _, i := range perm {
		if err := tr.Insert(fmt.Sprintf("k%06d", i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Full range scan must return every key in sorted order.
	var keys []string
	err := tr.Range(context.Background(), "", "\xff", func(k string, v uint64) bool {
		keys = append(keys, k)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 5000 {
		t.Fatalf("range returned %d keys", len(keys))
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatal("range scan not in key order")
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr := newTree(t)
	// Enough duplicates to force splits through runs of equal keys.
	for i := 0; i < 3000; i++ {
		key := fmt.Sprintf("dup%d", i%7)
		if err := tr.Insert(key, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for d := 0; d < 7; d++ {
		got, err := tr.Search(context.Background(), fmt.Sprintf("dup%d", d))
		if err != nil {
			t.Fatal(err)
		}
		want := 3000 / 7
		if d < 3000%7 {
			want++
		}
		if len(got) != want {
			t.Fatalf("dup%d: %d values, want %d", d, len(got), want)
		}
		seen := map[uint64]bool{}
		for _, v := range got {
			if int(v)%7 != d || seen[v] {
				t.Fatalf("dup%d: wrong/duplicated value %d", d, v)
			}
			seen[v] = true
		}
	}
}

func TestRangeBounds(t *testing.T) {
	tr := newTree(t)
	for i := 0; i < 100; i++ {
		tr.Insert(fmt.Sprintf("%03d", i), uint64(i))
	}
	var got []uint64
	tr.Range(context.Background(), "010", "020", func(_ string, v uint64) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 11 || got[0] != 10 || got[10] != 20 {
		t.Fatalf("Range[010,020] = %v", got)
	}
	// Early stop.
	count := 0
	tr.Range(context.Background(), "000", "099", func(string, uint64) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
	// Empty range.
	n := 0
	tr.Range(context.Background(), "500", "600", func(string, uint64) bool { n++; return true })
	if n != 0 {
		t.Fatal("empty range returned entries")
	}
}

func TestLongKeysTruncated(t *testing.T) {
	tr := newTree(t)
	long := strings.Repeat("x", MaxKey+100)
	if err := tr.Insert(long, 1); err != nil {
		t.Fatal(err)
	}
	got, err := tr.Search(context.Background(), long)
	if err != nil || len(got) != 1 {
		t.Fatalf("truncated key lookup failed: %v, %v", got, err)
	}
	// A different key sharing the first MaxKey bytes collides by design.
	other := long + "different"
	got, _ = tr.Search(context.Background(), other)
	if len(got) != 1 {
		t.Fatal("prefix-identical key should hit the truncated entry")
	}
}

func TestEmptyKey(t *testing.T) {
	tr := newTree(t)
	tr.Insert("", 42)
	tr.Insert("a", 1)
	got, err := tr.Search(context.Background(), "")
	if err != nil || len(got) != 1 || got[0] != 42 {
		t.Fatalf("empty key lookup = %v, %v", got, err)
	}
}

func TestPropertyMatchesMap(t *testing.T) {
	tr := newTree(t)
	model := map[string][]uint64{}
	i := uint64(0)
	f := func(key string) bool {
		if len(key) > MaxKey {
			key = key[:MaxKey]
		}
		i++
		if err := tr.Insert(key, i); err != nil {
			return false
		}
		model[key] = append(model[key], i)
		got, err := tr.Search(context.Background(), key)
		if err != nil || len(got) != len(model[key]) {
			return false
		}
		gotSet := map[uint64]bool{}
		for _, v := range got {
			gotSet[v] = true
		}
		for _, v := range model[key] {
			if !gotSet[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestColdLookupSurvivesReset(t *testing.T) {
	p := pager.New(64)
	tr, _ := New(p, "idx")
	for i := 0; i < 2000; i++ {
		tr.Insert(fmt.Sprintf("k%05d", i), uint64(i))
	}
	p.ColdReset()
	p.ResetStats()
	got, err := tr.Search(context.Background(), "k01234")
	if err != nil || len(got) != 1 || got[0] != 1234 {
		t.Fatalf("cold search = %v, %v", got, err)
	}
	if s := p.Stats(); s.Reads == 0 {
		t.Fatal("cold lookup performed no disk reads")
	}
}

func TestSyncOpenRoundTrip(t *testing.T) {
	p := pager.New(8) // tiny pool: the tree spills to disk while building
	tr, err := New(p, "idx")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		if err := tr.Insert(fmt.Sprintf("k%05d", i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Sync(); err != nil {
		t.Fatal(err)
	}
	p.ColdReset()
	re, err := Open(p, tr.FileID())
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != tr.Len() {
		t.Fatalf("reopened Len = %d, want %d", re.Len(), tr.Len())
	}
	got, err := re.Search(context.Background(), "k02718")
	if err != nil || len(got) != 1 || got[0] != 2718 {
		t.Fatalf("search after reopen = %v, %v", got, err)
	}
}

func TestSyncSurvivesCrashRecovery(t *testing.T) {
	p := pager.New(8)
	p.SetFaultPolicy(pager.FaultPolicy{Seed: 1})
	tr, err := New(p, "idx")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := tr.Insert(fmt.Sprintf("k%04d", i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Sync(); err != nil {
		t.Fatal(err)
	}
	// Simulated crash: the pool is dropped and the WAL replayed.
	if _, err := p.Recover(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(p, tr.FileID())
	if err != nil {
		t.Fatal(err)
	}
	var n int
	if err := re.Range(context.Background(), "", "\xff", func(string, uint64) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 1000 {
		t.Fatalf("recovered tree has %d entries, want 1000", n)
	}
}

func TestOpenRejectsUnsyncedFile(t *testing.T) {
	p := pager.New(8)
	tr, err := New(p, "idx")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(p, tr.FileID()); err == nil {
		t.Fatal("Open of a never-synced tree succeeded")
	}
}
