package btree

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"xbench/internal/pager"
)

// TestConcurrentSearchAndRange: readers share the tree latch; Search and
// Range from many goroutines return complete answers. Run with -race.
func TestConcurrentSearchAndRange(t *testing.T) {
	ctx := context.Background()
	p := pager.New(16)
	tr, err := New(p, "idx")
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		if err := tr.Insert(fmt.Sprintf("key%05d", i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}

	errc := make(chan error, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < n; i += 7 {
				k := (i + g*37) % n
				vals, err := tr.Search(ctx, fmt.Sprintf("key%05d", k))
				if err != nil {
					errc <- err
					return
				}
				if len(vals) != 1 || vals[0] != uint64(k) {
					errc <- fmt.Errorf("key%05d -> %v", k, vals)
					return
				}
			}
			count := 0
			err := tr.Range(ctx, "key00000", "key99999", func(string, uint64) bool {
				count++
				return true
			})
			if err != nil {
				errc <- err
				return
			}
			if count != n {
				errc <- fmt.Errorf("range saw %d keys, want %d", count, n)
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentInsertWithReaders: Insert takes the exclusive latch, so a
// writer interleaved with readers neither races nor loses keys.
func TestConcurrentInsertWithReaders(t *testing.T) {
	ctx := context.Background()
	p := pager.New(16)
	tr, err := New(p, "idx")
	if err != nil {
		t.Fatal(err)
	}
	const base = 200
	for i := 0; i < base; i++ {
		if err := tr.Insert(fmt.Sprintf("base%05d", i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}

	errc := make(chan error, 5)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if err := tr.Insert(fmt.Sprintf("new%05d", i), uint64(base+i)); err != nil {
				errc <- err
				return
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < base; i++ {
				k := (i + g*31) % base
				vals, err := tr.Search(ctx, fmt.Sprintf("base%05d", k))
				if err != nil {
					errc <- err
					return
				}
				if len(vals) != 1 || vals[0] != uint64(k) {
					errc <- fmt.Errorf("base%05d -> %v", k, vals)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		vals, err := tr.Search(ctx, fmt.Sprintf("new%05d", i))
		if err != nil || len(vals) != 1 {
			t.Fatalf("new%05d missing after concurrent insert: %v %v", i, vals, err)
		}
	}
	if tr.Len() != base+200 {
		t.Fatalf("Len = %d, want %d", tr.Len(), base+200)
	}
}
