package relational

import (
	"context"
	"fmt"

	"xbench/internal/btree"
	"xbench/internal/pager"
)

// Snapshot support: an epoch-pinned, immutable clone of a DB whose read
// operators serve pages as of one commit epoch (DESIGN.md §15). The
// shredding engines publish one snapshot DB per committed update; query
// execution runs against it with no table latch and no engine write
// lock, while the writer keeps mutating the live DB.

// tableSnap freezes a table's read state: the heap extent and the index
// set as of one commit epoch.
type tableSnap struct {
	heap    pager.HeapView
	indexes map[string]*btree.TreeView
}

// ErrSnapshotWrite is returned by mutating operations on a snapshot
// table; snapshots are read-only by construction.
var ErrSnapshotWrite = fmt.Errorf("relational: write to snapshot table")

// Snapshot clones the database as an immutable view at the given commit
// epoch. It must be called from the writer (or under its exclusion) at a
// commit boundary — the live tables' in-memory extents then exactly
// describe the pages ReadAt serves at that epoch. Buffered heap tails
// are flushed as a side effect (a no-op after the engines' per-update
// syncs). Readers of the snapshot must hold a pager.Snap pinned at the
// epoch for as long as they use it.
func (db *DB) Snapshot(epoch uint64) (*DB, error) {
	s := &DB{Pager: db.Pager, tables: make(map[string]*Table, len(db.tables))}
	for name, t := range db.tables {
		st, err := t.snapshot(s, epoch)
		if err != nil {
			return nil, err
		}
		s.tables[name] = st
	}
	return s, nil
}

// snapshot clones one table in frozen mode.
func (t *Table) snapshot(db *DB, epoch uint64) (*Table, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	hv, err := t.heap.View(epoch)
	if err != nil {
		return nil, fmt.Errorf("relational: snapshot %s: %w", t.Name, err)
	}
	sn := &tableSnap{heap: hv, indexes: make(map[string]*btree.TreeView, len(t.indexes))}
	for col, ix := range t.indexes {
		sn.indexes[col] = ix.ViewAt(epoch)
	}
	return &Table{
		Name:   t.Name,
		Cols:   t.Cols,
		db:     db,
		colIdx: t.colIdx,
		heap:   t.heap, // unused by reads in snap mode; kept for identity
		snap:   sn,
	}, nil
}

// IsSnapshot reports whether the table is an epoch-pinned snapshot.
func (t *Table) IsSnapshot() bool { return t.snap != nil }

// Epoch returns the snapshot's commit epoch (pager.LiveEpoch for a live
// table).
func (t *Table) Epoch() uint64 {
	if t.snap == nil {
		return pager.LiveEpoch
	}
	return t.snap.heap.Epoch()
}

// scanRecords abstracts the heap scan over live vs snapshot mode.
func (t *Table) scanRecords(ctx context.Context, fn func(rid pager.RID, rec []byte) bool) error {
	if t.snap != nil {
		return t.snap.heap.Scan(ctx, fn)
	}
	return t.heap.Scan(ctx, fn)
}

// getRecord abstracts the heap point read over live vs snapshot mode.
func (t *Table) getRecord(ctx context.Context, rid pager.RID) ([]byte, error) {
	if t.snap != nil {
		return t.snap.heap.Get(ctx, rid)
	}
	return t.heap.Get(ctx, rid)
}
