// Package relational is the miniature relational engine underneath the
// three XML-via-relational storage strategies of the paper (DB2 Xcolumn,
// DB2 Xcollection, SQL Server). It provides heap tables over the simulated
// pager, B+tree indexes with equality and range lookups, sequential scans,
// and the small set of physical operators the hand-translated workload
// queries need.
//
// Concurrency: the read operators (Scan, Get, LookupEq, LookupRange) are
// safe from many goroutines once loading is done; each table guards its
// index map and row directory with a reader/writer latch so Insert and
// CreateIndex exclude readers. Schema definition (Create) is not
// concurrent — tables are created before any load or query runs.
package relational

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"xbench/internal/btree"
	"xbench/internal/metrics"
	"xbench/internal/pager"
)

// Null is the sentinel stored for SQL NULL. It is distinct from the empty
// string, which represents a present-but-empty XML element — the
// distinction Q14 (missing element) vs Q15 (empty value) relies on.
const Null = "\x00NULL"

// IsNull reports whether a value is the NULL sentinel.
func IsNull(v string) bool { return v == Null }

// Row is one tuple; values are strings (XML's native value type), with
// Null marking SQL NULL.
type Row []string

// DB is a collection of tables sharing one pager.
type DB struct {
	Pager  *pager.Pager
	tables map[string]*Table
}

// NewDB returns an empty database over p.
func NewDB(p *pager.Pager) *DB {
	return &DB{Pager: p, tables: map[string]*Table{}}
}

// Table is a heap table with optional B+tree indexes.
type Table struct {
	Name string
	Cols []string

	db     *DB
	colIdx map[string]int
	heap   *pager.Heap

	// mu guards indexes and rids: writers (Insert, CreateIndex, Truncate)
	// take it exclusive, readers take it shared just long enough to fetch
	// the index pointer — the btree has its own latch for the traversal.
	mu      sync.RWMutex
	indexes map[string]*btree.Tree
	rids    []pager.RID // insertion order, for stable scans

	// snap, when non-nil, marks this table as an immutable epoch-pinned
	// snapshot (snapshot.go): reads serve the frozen heap view and index
	// views, mutations fail with ErrSnapshotWrite.
	snap *tableSnap
}

// Create makes a new empty table. It panics if the name is taken (schema
// definition bugs should fail loudly).
func (db *DB) Create(name string, cols ...string) *Table {
	if _, dup := db.tables[name]; dup {
		panic(fmt.Sprintf("relational: table %q already exists", name))
	}
	t := &Table{
		Name:    name,
		Cols:    cols,
		db:      db,
		colIdx:  make(map[string]int, len(cols)),
		heap:    pager.NewHeap(db.Pager, name),
		indexes: map[string]*btree.Tree{},
	}
	for i, c := range cols {
		t.colIdx[c] = i
	}
	db.tables[name] = t
	return t
}

// Table returns a table by name, or nil.
func (db *DB) Table(name string) *Table { return db.tables[name] }

// Truncate empties every table: heap pages, the row directory and all
// indexes are discarded (index pager files are abandoned; CreateIndex
// builds fresh ones). The schema survives, so a failed bulk load leaves
// an empty but loadable database.
func (db *DB) Truncate() error {
	for _, name := range db.TableNames() {
		t := db.tables[name]
		if err := t.heap.Reset(); err != nil {
			return err
		}
		t.mu.Lock()
		t.rids = nil
		t.indexes = map[string]*btree.Tree{}
		t.mu.Unlock()
	}
	return nil
}

// TableNames returns all table names, sorted.
func (db *DB) TableNames() []string {
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Col returns the index of a column. It panics on unknown columns —
// these are static query-plan bugs, not runtime conditions.
func (t *Table) Col(name string) int {
	i, ok := t.colIdx[name]
	if !ok {
		panic(fmt.Sprintf("relational: table %s has no column %q", t.Name, name))
	}
	return i
}

// Count returns the number of rows.
func (t *Table) Count() int {
	if t.snap != nil {
		return t.snap.heap.Count()
	}
	return t.heap.Count()
}

// Insert appends a row and maintains any existing indexes.
func (t *Table) Insert(row Row) error {
	if t.snap != nil {
		return ErrSnapshotWrite
	}
	if len(row) != len(t.Cols) {
		return fmt.Errorf("relational: %s: row has %d values, want %d", t.Name, len(row), len(t.Cols))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rid, err := t.heap.Insert(encodeRow(row))
	if err != nil {
		return err
	}
	t.rids = append(t.rids, rid)
	for col, ix := range t.indexes {
		v := row[t.Col(col)]
		if IsNull(v) {
			continue // NULLs are not indexed
		}
		if err := ix.Insert(v, uint64(rid)); err != nil {
			return err
		}
	}
	return nil
}

// Flush persists buffered heap pages (end of bulk load).
func (t *Table) Flush() error { return t.heap.Flush() }

// DeleteWhere removes every row whose col equals val, returning the
// number removed. The heap is append-only, so deletion rewrites the
// table: surviving rows are re-inserted and any indexes are rebuilt over
// them (the old index files are abandoned, as in Truncate). That is
// acceptable for the update workload, which deletes one document's few
// rows out of a table it mostly keeps; crash-atomicity of the rewrite is
// the caller's concern (the engines journal the update before applying
// it and replay from scratch after a crash).
func (t *Table) DeleteWhere(ctx context.Context, col, val string) (int, error) {
	if t.snap != nil {
		return 0, ErrSnapshotWrite
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ci := t.Col(col)
	var keep []Row
	deleted := 0
	err := t.heap.Scan(ctx, func(_ pager.RID, rec []byte) bool {
		row := decodeRow(rec)
		if row[ci] == val {
			deleted++
		} else {
			keep = append(keep, row)
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	if deleted == 0 {
		return 0, nil
	}
	indexed := make([]string, 0, len(t.indexes))
	for c := range t.indexes {
		indexed = append(indexed, c)
	}
	sort.Strings(indexed)
	if err := t.heap.Reset(); err != nil {
		return deleted, err
	}
	t.rids = nil
	t.indexes = map[string]*btree.Tree{}
	for _, row := range keep {
		rid, err := t.heap.Insert(encodeRow(row))
		if err != nil {
			return deleted, err
		}
		t.rids = append(t.rids, rid)
	}
	if err := t.heap.Flush(); err != nil {
		return deleted, err
	}
	for _, c := range indexed {
		if err := t.createIndexLocked(c); err != nil {
			return deleted, err
		}
	}
	return deleted, nil
}

// CreateIndex builds a B+tree on col over existing rows. Creating the same
// index twice is a no-op.
func (t *Table) CreateIndex(col string) error {
	if t.snap != nil {
		return ErrSnapshotWrite
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.createIndexLocked(col)
}

// createIndexLocked is CreateIndex under an already-held exclusive latch.
func (t *Table) createIndexLocked(col string) error {
	if _, ok := t.indexes[col]; ok {
		return nil
	}
	ci := t.Col(col)
	ix, err := btree.New(t.db.Pager, t.Name+"."+col+".idx")
	if err != nil {
		return err
	}
	err = t.heap.Scan(context.Background(), func(rid pager.RID, rec []byte) bool {
		row := decodeRow(rec)
		if !IsNull(row[ci]) {
			if e := ix.Insert(row[ci], uint64(rid)); e != nil {
				err = e
				return false
			}
		}
		return true
	})
	if err != nil {
		return err
	}
	// Persist the tree header so the index survives crash recovery.
	if err := ix.Sync(); err != nil {
		return err
	}
	t.indexes[col] = ix
	return nil
}

// HasIndex reports whether col is indexed.
func (t *Table) HasIndex(col string) bool {
	_, ok := t.index(col)
	return ok
}

// index fetches an index reader: the live tree under the shared latch,
// or the epoch-pinned view of a snapshot table (no latch — the snap map
// is immutable).
func (t *Table) index(col string) (btree.Reader, bool) {
	if t.snap != nil {
		ix, ok := t.snap.indexes[col]
		return ix, ok
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	ix, ok := t.indexes[col]
	return ix, ok
}

// reg returns the metrics registry shared through the table's pager.
func (t *Table) reg() *metrics.Registry { return t.db.Pager.Metrics() }

// Scan visits all rows in insertion order (a full table scan: every heap
// page is read). Returning false stops early. Cancellation via ctx is
// honored at page-fetch granularity.
func (t *Table) Scan(ctx context.Context, fn func(Row) bool) error {
	reg := t.reg()
	reg.Counter("relational.scan").Inc()
	defer reg.StartSpan(metrics.PhaseScan).End()
	return t.scanRecords(ctx, func(_ pager.RID, rec []byte) bool {
		reg.Counter("relational.scan.row").Inc()
		return fn(decodeRow(rec))
	})
}

// Get fetches one row by RID.
func (t *Table) Get(ctx context.Context, rid pager.RID) (Row, error) {
	rec, err := t.getRecord(ctx, rid)
	if err != nil {
		return nil, err
	}
	return decodeRow(rec), nil
}

// LookupEq returns rows where col == val, using an index when available
// and falling back to a sequential scan otherwise.
func (t *Table) LookupEq(ctx context.Context, col, val string) ([]Row, error) {
	if ix, ok := t.index(col); ok {
		reg := t.reg()
		reg.Counter("relational.probe").Inc()
		sp := reg.StartSpan(metrics.PhaseIndexProbe)
		rids, err := ix.Search(ctx, val)
		sp.End()
		if err != nil {
			return nil, err
		}
		rows := make([]Row, 0, len(rids))
		for _, r := range rids {
			row, err := t.Get(ctx, pager.RID(r))
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
		return rows, nil
	}
	ci := t.Col(col)
	var rows []Row
	err := t.Scan(ctx, func(r Row) bool {
		if r[ci] == val {
			rows = append(rows, r)
		}
		return true
	})
	return rows, err
}

// LookupRange returns rows with lo <= col <= hi (string comparison, which
// matches ISO dates), via index when available.
func (t *Table) LookupRange(ctx context.Context, col, lo, hi string) ([]Row, error) {
	if ix, ok := t.index(col); ok {
		reg := t.reg()
		reg.Counter("relational.probe").Inc()
		defer reg.StartSpan(metrics.PhaseIndexProbe).End()
		var rows []Row
		var inner error
		err := ix.Range(ctx, lo, hi, func(_ string, v uint64) bool {
			row, e := t.Get(ctx, pager.RID(v))
			if e != nil {
				inner = e
				return false
			}
			rows = append(rows, row)
			return true
		})
		if inner != nil {
			return nil, inner
		}
		return rows, err
	}
	ci := t.Col(col)
	var rows []Row
	err := t.Scan(ctx, func(r Row) bool {
		if !IsNull(r[ci]) && r[ci] >= lo && r[ci] <= hi {
			rows = append(rows, r)
		}
		return true
	})
	return rows, err
}

// LookupEqN is LookupEq with a row cap: the planner's limit pushdown
// (positional [1] access) fetches only the first n matches instead of
// materializing every row and discarding the rest. n <= 0 means no cap.
func (t *Table) LookupEqN(ctx context.Context, col, val string, n int) ([]Row, error) {
	if n <= 0 {
		return t.LookupEq(ctx, col, val)
	}
	if ix, ok := t.index(col); ok {
		reg := t.reg()
		reg.Counter("relational.probe").Inc()
		sp := reg.StartSpan(metrics.PhaseIndexProbe)
		rids, err := ix.Search(ctx, val)
		sp.End()
		if err != nil {
			return nil, err
		}
		if len(rids) > n {
			rids = rids[:n]
		}
		rows := make([]Row, 0, len(rids))
		for _, r := range rids {
			row, err := t.Get(ctx, pager.RID(r))
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
		return rows, nil
	}
	ci := t.Col(col)
	var rows []Row
	err := t.Scan(ctx, func(r Row) bool {
		if r[ci] == val {
			rows = append(rows, r)
		}
		return len(rows) < n
	})
	return rows, err
}

// ScanEq filters sequentially for col == val even when an index exists:
// the executor's path for plans whose cost model chose the scan.
func (t *Table) ScanEq(ctx context.Context, col, val string) ([]Row, error) {
	ci := t.Col(col)
	var rows []Row
	err := t.Scan(ctx, func(r Row) bool {
		if r[ci] == val {
			rows = append(rows, r)
		}
		return true
	})
	return rows, err
}

// ScanRange filters sequentially for lo <= col <= hi even when an index
// exists, mirroring ScanEq for range plans.
func (t *Table) ScanRange(ctx context.Context, col, lo, hi string) ([]Row, error) {
	ci := t.Col(col)
	var rows []Row
	err := t.Scan(ctx, func(r Row) bool {
		if !IsNull(r[ci]) && r[ci] >= lo && r[ci] <= hi {
			rows = append(rows, r)
		}
		return true
	})
	return rows, err
}

// HeapPages returns the page count of the table's record heap, the
// planner's sequential-scan cost.
func (t *Table) HeapPages() int64 {
	if t.snap != nil {
		return t.snap.heap.Pages()
	}
	return t.heap.Pages()
}

// IndexHeight returns the btree height of col's index, 0 when the
// column is unindexed.
func (t *Table) IndexHeight(col string) int {
	if ix, ok := t.index(col); ok {
		return ix.Height()
	}
	return 0
}

// encodeRow serializes values as length-prefixed strings.
func encodeRow(row Row) []byte {
	n := 2
	for _, v := range row {
		n += 4 + len(v)
	}
	buf := make([]byte, 0, n)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(row)))
	for _, v := range row {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(v)))
		buf = append(buf, v...)
	}
	return buf
}

func decodeRow(rec []byte) Row {
	n := int(binary.BigEndian.Uint16(rec[:2]))
	row := make(Row, n)
	off := 2
	for i := 0; i < n; i++ {
		l := int(binary.BigEndian.Uint32(rec[off : off+4]))
		off += 4
		row[i] = string(rec[off : off+l])
		off += l
	}
	return row
}

// SortRows orders rows by the given column index. When numeric is true the
// values are compared as floats (Q11/Q20 datatype casting); otherwise as
// strings. NULLs sort last.
func SortRows(rows []Row, col int, numeric, asc bool) {
	sort.SliceStable(rows, func(i, j int) bool {
		a, b := rows[i][col], rows[j][col]
		an, bn := IsNull(a), IsNull(b)
		if an || bn {
			return !an && bn // non-null first
		}
		var less bool
		if numeric {
			af, _ := strconv.ParseFloat(a, 64)
			bf, _ := strconv.ParseFloat(b, 64)
			less = af < bf
		} else {
			less = a < b
		}
		if asc {
			return less
		}
		return !less
	})
}

// HashJoin joins left and right on equality of the given column indexes,
// returning concatenated rows (left columns then right columns). NULL keys
// never match, per SQL semantics.
func HashJoin(left, right []Row, lcol, rcol int) []Row {
	idx := make(map[string][]Row, len(right))
	for _, r := range right {
		k := r[rcol]
		if IsNull(k) {
			continue
		}
		idx[k] = append(idx[k], r)
	}
	var out []Row
	for _, l := range left {
		if IsNull(l[lcol]) {
			continue
		}
		for _, r := range idx[l[lcol]] {
			joined := make(Row, 0, len(l)+len(r))
			joined = append(joined, l...)
			joined = append(joined, r...)
			out = append(out, joined)
		}
	}
	return out
}
