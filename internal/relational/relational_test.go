package relational

import (
	"context"
	"fmt"
	"testing"

	"xbench/internal/pager"
)

func newDB() *DB { return NewDB(pager.New(256)) }

func TestCreateInsertScan(t *testing.T) {
	db := newDB()
	tb := db.Create("item", "id", "title", "cost")
	for i := 0; i < 10; i++ {
		if err := tb.Insert(Row{fmt.Sprintf("I%d", i), fmt.Sprintf("Title %d", i), "9.99"}); err != nil {
			t.Fatal(err)
		}
	}
	if tb.Count() != 10 {
		t.Fatalf("Count = %d", tb.Count())
	}
	var ids []string
	tb.Scan(context.Background(), func(r Row) bool {
		ids = append(ids, r[tb.Col("id")])
		return true
	})
	if len(ids) != 10 || ids[0] != "I0" || ids[9] != "I9" {
		t.Fatalf("scan ids = %v", ids)
	}
}

func TestInsertArityError(t *testing.T) {
	db := newDB()
	tb := db.Create("t", "a", "b")
	if err := tb.Insert(Row{"only-one"}); err == nil {
		t.Fatal("arity violation accepted")
	}
}

func TestDuplicateTablePanics(t *testing.T) {
	db := newDB()
	db.Create("t", "a")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Create did not panic")
		}
	}()
	db.Create("t", "a")
}

func TestUnknownColumnPanics(t *testing.T) {
	db := newDB()
	tb := db.Create("t", "a")
	defer func() {
		if recover() == nil {
			t.Fatal("unknown column did not panic")
		}
	}()
	tb.Col("nope")
}

func TestLookupEqWithAndWithoutIndex(t *testing.T) {
	db := newDB()
	tb := db.Create("t", "k", "v")
	for i := 0; i < 500; i++ {
		tb.Insert(Row{fmt.Sprintf("k%03d", i%100), fmt.Sprintf("v%d", i)})
	}
	// Without an index: sequential scan.
	rows, err := tb.LookupEq(context.Background(), "k", "k042")
	if err != nil || len(rows) != 5 {
		t.Fatalf("scan lookup = %d rows, %v", len(rows), err)
	}
	// With an index: same answer.
	if err := tb.CreateIndex("k"); err != nil {
		t.Fatal(err)
	}
	if !tb.HasIndex("k") {
		t.Fatal("HasIndex false after CreateIndex")
	}
	rows2, err := tb.LookupEq(context.Background(), "k", "k042")
	if err != nil || len(rows2) != 5 {
		t.Fatalf("indexed lookup = %d rows, %v", len(rows2), err)
	}
	// Index must also cover rows inserted after creation.
	tb.Insert(Row{"k042", "late"})
	rows3, _ := tb.LookupEq(context.Background(), "k", "k042")
	if len(rows3) != 6 {
		t.Fatalf("index not maintained on insert: %d rows", len(rows3))
	}
	// Re-creating is a no-op.
	if err := tb.CreateIndex("k"); err != nil {
		t.Fatal(err)
	}
}

func TestLookupRange(t *testing.T) {
	db := newDB()
	tb := db.Create("t", "date", "x")
	for i := 0; i < 100; i++ {
		tb.Insert(Row{fmt.Sprintf("2000-01-%02d", i%30+1), "y"})
	}
	scan, err := tb.LookupRange(context.Background(), "date", "2000-01-10", "2000-01-12")
	if err != nil {
		t.Fatal(err)
	}
	tb.CreateIndex("date")
	indexed, err := tb.LookupRange(context.Background(), "date", "2000-01-10", "2000-01-12")
	if err != nil {
		t.Fatal(err)
	}
	if len(scan) == 0 || len(scan) != len(indexed) {
		t.Fatalf("range results differ: scan=%d indexed=%d", len(scan), len(indexed))
	}
}

func TestNullHandling(t *testing.T) {
	db := newDB()
	tb := db.Create("pub", "name", "fax")
	tb.Insert(Row{"P1", "555-0000"})
	tb.Insert(Row{"P2", Null})
	tb.Insert(Row{"P3", ""}) // empty is NOT null
	tb.CreateIndex("fax")

	// NULLs are not indexed and never equal anything.
	rows, _ := tb.LookupEq(context.Background(), "fax", Null)
	if len(rows) != 0 {
		t.Fatal("NULL matched in index lookup")
	}
	rows, _ = tb.LookupEq(context.Background(), "fax", "")
	if len(rows) != 1 || rows[0][0] != "P3" {
		t.Fatalf("empty-string lookup = %v", rows)
	}
	// A scan-side NULL check still finds the missing-fax publisher.
	var missing []string
	tb.Scan(context.Background(), func(r Row) bool {
		if IsNull(r[tb.Col("fax")]) {
			missing = append(missing, r[0])
		}
		return true
	})
	if len(missing) != 1 || missing[0] != "P2" {
		t.Fatalf("missing-fax scan = %v", missing)
	}
	// Range scans skip NULLs.
	got, _ := tb.LookupRange(context.Background(), "name", "P1", "P9")
	if len(got) != 3 {
		t.Fatalf("range over names = %d", len(got))
	}
}

func TestSortRows(t *testing.T) {
	rows := []Row{{"b", "10"}, {"a", "9"}, {"c", "100"}, {Null, "1"}}
	SortRows(rows, 0, false, true)
	if rows[0][0] != "a" || rows[2][0] != "c" || !IsNull(rows[3][0]) {
		t.Fatalf("string sort wrong: %v", rows)
	}
	SortRows(rows, 1, true, true)
	if rows[0][1] != "1" || rows[1][1] != "9" || rows[2][1] != "10" || rows[3][1] != "100" {
		t.Fatalf("numeric sort wrong: %v", rows)
	}
	SortRows(rows, 1, true, false)
	if rows[0][1] != "100" {
		t.Fatalf("descending sort wrong: %v", rows)
	}
}

func TestHashJoin(t *testing.T) {
	orders := []Row{{"O1", "C1"}, {"O2", "C2"}, {"O3", "C1"}, {"O4", Null}}
	custs := []Row{{"C1", "Ada"}, {"C2", "Bob"}, {"C3", "Eve"}, {Null, "Ghost"}}
	joined := HashJoin(orders, custs, 1, 0)
	if len(joined) != 3 {
		t.Fatalf("join produced %d rows", len(joined))
	}
	for _, r := range joined {
		if len(r) != 4 || r[1] != r[2] {
			t.Fatalf("bad joined row %v", r)
		}
	}
}

func TestGetAndRoundTripSpecialValues(t *testing.T) {
	db := newDB()
	tb := db.Create("t", "v")
	vals := []string{"", Null, "with \x00 byte", "ünïcødé", "<xml>&stuff</xml>"}
	for _, v := range vals {
		tb.Insert(Row{v})
	}
	i := 0
	tb.Scan(context.Background(), func(r Row) bool {
		if r[0] != vals[i] {
			t.Fatalf("value %d mangled: %q vs %q", i, r[0], vals[i])
		}
		i++
		return true
	})
	if i != len(vals) {
		t.Fatalf("scanned %d rows", i)
	}
}

func TestTableNames(t *testing.T) {
	db := newDB()
	db.Create("b", "x")
	db.Create("a", "x")
	names := db.TableNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("TableNames = %v", names)
	}
	if db.Table("a") == nil || db.Table("zzz") != nil {
		t.Fatal("Table lookup wrong")
	}
}

func TestFlushThenColdScan(t *testing.T) {
	p := pager.New(64)
	db := NewDB(p)
	tb := db.Create("t", "v")
	for i := 0; i < 1000; i++ {
		tb.Insert(Row{fmt.Sprintf("row%d", i)})
	}
	if err := tb.Flush(); err != nil {
		t.Fatal(err)
	}
	p.ColdReset()
	p.ResetStats()
	n := 0
	tb.Scan(context.Background(), func(Row) bool { n++; return true })
	if n != 1000 {
		t.Fatalf("cold scan saw %d rows", n)
	}
	if s := p.Stats(); s.Reads == 0 {
		t.Fatal("cold scan did no disk reads")
	}
}
