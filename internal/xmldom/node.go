// Package xmldom implements the XML substrate of XBench from scratch: a
// tokenizer and parser producing a DOM with document order, a serializer,
// and a streaming encoder used by the database generators.
//
// Only the XML 1.0 subset exercised by the benchmark is supported:
// elements, attributes, character data, CDATA sections, comments,
// processing instructions, the five predefined entities and numeric
// character references. DTDs are skipped (the paper turns validation off
// during loading).
package xmldom

import (
	"sort"
	"strings"
)

// Kind discriminates DOM node types.
type Kind uint8

const (
	// DocumentKind is the root container of a parsed document.
	DocumentKind Kind = iota
	// ElementKind is an element node.
	ElementKind
	// TextKind is a character-data node.
	TextKind
	// CommentKind is a comment node.
	CommentKind
	// PIKind is a processing-instruction node.
	PIKind
)

func (k Kind) String() string {
	switch k {
	case DocumentKind:
		return "document"
	case ElementKind:
		return "element"
	case TextKind:
		return "text"
	case CommentKind:
		return "comment"
	case PIKind:
		return "pi"
	}
	return "invalid"
}

// Attr is a name="value" attribute of an element.
type Attr struct {
	Name  string
	Value string
}

// Node is a DOM node. A single concrete type covers all kinds; the fields
// used depend on Kind. Document order (Ord) is assigned during parsing or
// by Renumber and is what the ordered-access queries (Q4/Q5) rely on.
type Node struct {
	Kind     Kind
	Name     string // element name or PI target
	Data     string // text, comment or PI content
	Attrs    []Attr // elements only
	Children []*Node
	Parent   *Node
	Ord      int32 // position in document order (0 = document node)
}

// NewDocument returns an empty document node.
func NewDocument() *Node { return &Node{Kind: DocumentKind} }

// NewElement returns a detached element node.
func NewElement(name string) *Node { return &Node{Kind: ElementKind, Name: name} }

// NewText returns a detached text node.
func NewText(data string) *Node { return &Node{Kind: TextKind, Data: data} }

// Append attaches child at the end of n's child list and returns child.
func (n *Node) Append(child *Node) *Node {
	child.Parent = n
	n.Children = append(n.Children, child)
	return child
}

// AddElement appends a new child element with the given name.
func (n *Node) AddElement(name string) *Node {
	return n.Append(NewElement(name))
}

// AddText appends a text child (no-op for empty data) and returns n.
func (n *Node) AddText(data string) *Node {
	if data != "" {
		n.Append(NewText(data))
	}
	return n
}

// AddLeaf appends <name>text</name> and returns the new element.
func (n *Node) AddLeaf(name, text string) *Node {
	e := n.AddElement(name)
	e.AddText(text)
	return e
}

// SetAttr sets (or replaces) an attribute and returns n.
func (n *Node) SetAttr(name, value string) *Node {
	for i := range n.Attrs {
		if n.Attrs[i].Name == name {
			n.Attrs[i].Value = value
			return n
		}
	}
	n.Attrs = append(n.Attrs, Attr{name, value})
	return n
}

// Attr returns the value of the named attribute and whether it exists.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// Root returns the document element (first element child) of a document
// node, or n itself if n is an element. Returns nil for other kinds.
func (n *Node) Root() *Node {
	if n.Kind == ElementKind {
		return n
	}
	if n.Kind == DocumentKind {
		for _, c := range n.Children {
			if c.Kind == ElementKind {
				return c
			}
		}
	}
	return nil
}

// Elements returns the element children of n.
func (n *Node) Elements() []*Node {
	var es []*Node
	for _, c := range n.Children {
		if c.Kind == ElementKind {
			es = append(es, c)
		}
	}
	return es
}

// ChildElements returns the child elements with the given name.
func (n *Node) ChildElements(name string) []*Node {
	var es []*Node
	for _, c := range n.Children {
		if c.Kind == ElementKind && c.Name == name {
			es = append(es, c)
		}
	}
	return es
}

// FirstChild returns the first child element with the given name, or nil.
func (n *Node) FirstChild(name string) *Node {
	for _, c := range n.Children {
		if c.Kind == ElementKind && c.Name == name {
			return c
		}
	}
	return nil
}

// Text returns the concatenated character data of all descendant text
// nodes (the XPath string value of an element).
func (n *Node) Text() string {
	var b strings.Builder
	n.appendText(&b)
	return b.String()
}

func (n *Node) appendText(b *strings.Builder) {
	if n.Kind == TextKind {
		b.WriteString(n.Data)
		return
	}
	for _, c := range n.Children {
		c.appendText(b)
	}
}

// HasMixedContent reports whether n directly contains both non-whitespace
// text and element children — the content model relational mappings cannot
// represent (paper §3.1.3 item 3).
func (n *Node) HasMixedContent() bool {
	hasText, hasElem := false, false
	for _, c := range n.Children {
		switch c.Kind {
		case TextKind:
			if strings.TrimSpace(c.Data) != "" {
				hasText = true
			}
		case ElementKind:
			hasElem = true
		}
	}
	return hasText && hasElem
}

// Walk visits n and every descendant in document order. Returning false
// from fn prunes the subtree below the current node.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Descendants returns all descendant elements (excluding n) with the given
// name, in document order. An empty name matches every element.
func (n *Node) Descendants(name string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		c.Walk(func(d *Node) bool {
			if d.Kind == ElementKind && (name == "" || d.Name == name) {
				out = append(out, d)
			}
			return true
		})
	}
	return out
}

// Renumber assigns document order to the whole tree rooted at n, starting
// from 0 at n. Parsing renumbers automatically; call this after building a
// tree by hand if ordered access matters.
func (n *Node) Renumber() {
	ord := int32(0)
	n.Walk(func(d *Node) bool {
		d.Ord = ord
		ord++
		return true
	})
}

// CountNodes returns the number of nodes in the subtree (including n).
func (n *Node) CountNodes() int {
	c := 0
	n.Walk(func(*Node) bool { c++; return true })
	return c
}

// SortByOrd sorts nodes in place by document order.
func SortByOrd(nodes []*Node) {
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Ord < nodes[j].Ord })
}

// Clone deep-copies the subtree rooted at n. The copy's Parent is nil and
// Ord values are preserved.
func (n *Node) Clone() *Node {
	c := &Node{Kind: n.Kind, Name: n.Name, Data: n.Data, Ord: n.Ord}
	if len(n.Attrs) > 0 {
		c.Attrs = append([]Attr(nil), n.Attrs...)
	}
	for _, ch := range n.Children {
		c.Append(ch.Clone())
	}
	return c
}
