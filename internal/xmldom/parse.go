package xmldom

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
)

// SyntaxError reports a well-formedness violation with a byte offset.
type SyntaxError struct {
	Offset int
	Msg    string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xmldom: syntax error at offset %d: %s", e.Offset, e.Msg)
}

// Parse parses a complete XML document and returns its document node with
// document order assigned. Insignificant whitespace between elements is
// kept as text nodes only when it is adjacent to non-whitespace content;
// pure inter-element whitespace is dropped, which matches how the
// benchmark's data generators emit documents (no indentation).
func Parse(data []byte) (*Node, error) {
	p := &parser{data: data}
	doc, err := p.parseDocument()
	if err != nil {
		return nil, err
	}
	doc.Renumber()
	return doc, nil
}

// MustParse is Parse that panics on error; for tests and fixtures.
func MustParse(data string) *Node {
	doc, err := Parse([]byte(data))
	if err != nil {
		panic(err)
	}
	return doc
}

var (
	cdataEnd   = []byte("]]>")
	commentEnd = []byte("-->")
	piEnd      = []byte("?>")
)

type parser struct {
	data []byte
	pos  int
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Offset: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) eof() bool { return p.pos >= len(p.data) }

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.data[p.pos]
}

func (p *parser) skipSpace() {
	for !p.eof() {
		switch p.data[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) expect(s string) error {
	if p.pos+len(s) > len(p.data) || string(p.data[p.pos:p.pos+len(s)]) != s {
		return p.errf("expected %q", s)
	}
	p.pos += len(s)
	return nil
}

func (p *parser) hasPrefix(s string) bool {
	return p.pos+len(s) <= len(p.data) && string(p.data[p.pos:p.pos+len(s)]) == s
}

func (p *parser) parseDocument() (*Node, error) {
	doc := NewDocument()
	sawRoot := false
	for {
		p.skipSpace()
		if p.eof() {
			break
		}
		switch {
		case p.hasPrefix("<?"):
			pi, err := p.parsePI()
			if err != nil {
				return nil, err
			}
			if pi.Name != "xml" { // drop the XML declaration itself
				doc.Append(pi)
			}
		case p.hasPrefix("<!--"):
			c, err := p.parseComment()
			if err != nil {
				return nil, err
			}
			doc.Append(c)
		case p.hasPrefix("<!DOCTYPE"):
			if err := p.skipDoctype(); err != nil {
				return nil, err
			}
		case p.peek() == '<':
			if sawRoot {
				return nil, p.errf("multiple root elements")
			}
			el, err := p.parseElement()
			if err != nil {
				return nil, err
			}
			doc.Append(el)
			sawRoot = true
		default:
			return nil, p.errf("unexpected content %q outside root element", p.peek())
		}
	}
	if !sawRoot {
		return nil, p.errf("document has no root element")
	}
	return doc, nil
}

func isNameStart(c byte) bool {
	return c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c == '-' || c == '.' || (c >= '0' && c <= '9')
}

func (p *parser) parseName() (string, error) {
	start := p.pos
	if p.eof() || !isNameStart(p.data[p.pos]) {
		return "", p.errf("expected name")
	}
	p.pos++
	for !p.eof() && isNameChar(p.data[p.pos]) {
		p.pos++
	}
	return string(p.data[start:p.pos]), nil
}

func (p *parser) parseElement() (*Node, error) {
	if err := p.expect("<"); err != nil {
		return nil, err
	}
	name, err := p.parseName()
	if err != nil {
		return nil, err
	}
	el := NewElement(name)
	// Attributes.
	for {
		p.skipSpace()
		if p.eof() {
			return nil, p.errf("unterminated start tag <%s", name)
		}
		c := p.peek()
		if c == '>' || c == '/' {
			break
		}
		aname, err := p.parseName()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if err := p.expect("="); err != nil {
			return nil, err
		}
		p.skipSpace()
		aval, err := p.parseAttValue()
		if err != nil {
			return nil, err
		}
		if _, dup := el.Attr(aname); dup {
			return nil, p.errf("duplicate attribute %q on <%s>", aname, name)
		}
		el.Attrs = append(el.Attrs, Attr{aname, aval})
	}
	if p.peek() == '/' {
		p.pos++
		if err := p.expect(">"); err != nil {
			return nil, err
		}
		return el, nil
	}
	if err := p.expect(">"); err != nil {
		return nil, err
	}
	if err := p.parseContent(el); err != nil {
		return nil, err
	}
	// parseContent consumed "</"; now the name and ">".
	ename, err := p.parseName()
	if err != nil {
		return nil, err
	}
	if ename != name {
		return nil, p.errf("mismatched end tag </%s> for <%s>", ename, name)
	}
	p.skipSpace()
	if err := p.expect(">"); err != nil {
		return nil, err
	}
	return el, nil
}

// parseContent parses element content up to and including the "</" of the
// element's end tag.
func (p *parser) parseContent(el *Node) error {
	var text strings.Builder
	flush := func() {
		if text.Len() > 0 {
			s := text.String()
			text.Reset()
			if strings.TrimSpace(s) == "" {
				return // drop pure inter-element whitespace
			}
			el.Append(NewText(s))
		}
	}
	for {
		if p.eof() {
			return p.errf("unterminated element <%s>", el.Name)
		}
		c := p.data[p.pos]
		if c == '<' {
			switch {
			case p.hasPrefix("</"):
				flush()
				p.pos += 2
				return nil
			case p.hasPrefix("<!--"):
				flush()
				cm, err := p.parseComment()
				if err != nil {
					return err
				}
				el.Append(cm)
			case p.hasPrefix("<![CDATA["):
				p.pos += len("<![CDATA[")
				end := bytes.Index(p.data[p.pos:], cdataEnd)
				if end < 0 {
					return p.errf("unterminated CDATA section")
				}
				text.Write(p.data[p.pos : p.pos+end])
				p.pos += end + 3
			case p.hasPrefix("<?"):
				flush()
				pi, err := p.parsePI()
				if err != nil {
					return err
				}
				el.Append(pi)
			default:
				flush()
				child, err := p.parseElement()
				if err != nil {
					return err
				}
				el.Append(child)
			}
			continue
		}
		if c == '&' {
			r, err := p.parseReference()
			if err != nil {
				return err
			}
			text.WriteString(r)
			continue
		}
		text.WriteByte(c)
		p.pos++
	}
}

func (p *parser) parseAttValue() (string, error) {
	if p.eof() || (p.peek() != '"' && p.peek() != '\'') {
		return "", p.errf("attribute value must be quoted")
	}
	quote := p.data[p.pos]
	p.pos++
	var b strings.Builder
	for {
		if p.eof() {
			return "", p.errf("unterminated attribute value")
		}
		c := p.data[p.pos]
		switch c {
		case quote:
			p.pos++
			return b.String(), nil
		case '<':
			return "", p.errf("'<' in attribute value")
		case '&':
			r, err := p.parseReference()
			if err != nil {
				return "", err
			}
			b.WriteString(r)
		default:
			b.WriteByte(c)
			p.pos++
		}
	}
}

func (p *parser) parseReference() (string, error) {
	// caller guarantees p.data[p.pos] == '&'
	semi := -1
	for i := p.pos + 1; i < len(p.data) && i < p.pos+12; i++ {
		if p.data[i] == ';' {
			semi = i
			break
		}
	}
	if semi < 0 {
		return "", p.errf("unterminated entity reference")
	}
	ref := string(p.data[p.pos+1 : semi])
	p.pos = semi + 1
	switch ref {
	case "lt":
		return "<", nil
	case "gt":
		return ">", nil
	case "amp":
		return "&", nil
	case "quot":
		return `"`, nil
	case "apos":
		return "'", nil
	}
	if strings.HasPrefix(ref, "#") {
		body := ref[1:]
		base := 10
		if strings.HasPrefix(body, "x") || strings.HasPrefix(body, "X") {
			body, base = body[1:], 16
		}
		n, err := strconv.ParseUint(body, base, 32)
		if err != nil {
			return "", p.errf("bad character reference &%s;", ref)
		}
		return string(rune(n)), nil
	}
	return "", p.errf("unknown entity &%s;", ref)
}

func (p *parser) parseComment() (*Node, error) {
	if err := p.expect("<!--"); err != nil {
		return nil, err
	}
	end := bytes.Index(p.data[p.pos:], commentEnd)
	if end < 0 {
		return nil, p.errf("unterminated comment")
	}
	n := &Node{Kind: CommentKind, Data: string(p.data[p.pos : p.pos+end])}
	p.pos += end + 3
	return n, nil
}

func (p *parser) parsePI() (*Node, error) {
	if err := p.expect("<?"); err != nil {
		return nil, err
	}
	target, err := p.parseName()
	if err != nil {
		return nil, err
	}
	end := bytes.Index(p.data[p.pos:], piEnd)
	if end < 0 {
		return nil, p.errf("unterminated processing instruction")
	}
	n := &Node{Kind: PIKind, Name: target, Data: strings.TrimSpace(string(p.data[p.pos : p.pos+end]))}
	p.pos += end + 2
	return n, nil
}

func (p *parser) skipDoctype() error {
	if err := p.expect("<!DOCTYPE"); err != nil {
		return err
	}
	depth := 1
	for !p.eof() {
		switch p.data[p.pos] {
		case '<':
			depth++
		case '>':
			depth--
			if depth == 0 {
				p.pos++
				return nil
			}
		}
		p.pos++
	}
	return p.errf("unterminated DOCTYPE")
}
