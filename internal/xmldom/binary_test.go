package xmldom

import (
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	cases := []string{
		`<a/>`,
		`<a x="1" y="two"><b>text</b><c/><b>more</b></a>`,
		`<qt>mixed <i>inline</i> tail</qt>`,
		`<?xml version="1.0"?><!-- c --><root><?pi data?><x>&amp;&lt;</x></root>`,
		`<deep><a><b><c><d><e>bottom</e></d></c></b></a></deep>`,
	}
	for _, src := range cases {
		doc := MustParse(src)
		enc := EncodeBinary(doc)
		dec, err := DecodeBinary(enc)
		if err != nil {
			t.Fatalf("%q: decode: %v", src, err)
		}
		if !Equal(doc, dec) {
			t.Fatalf("%q: round trip changed tree:\n%s\nvs\n%s", src, doc.XML(), dec.XML())
		}
	}
}

func TestBinaryPreservesDocumentOrder(t *testing.T) {
	doc := MustParse(`<a><b><c/></b><d/><e><f/></e></a>`)
	dec, err := DecodeBinary(EncodeBinary(doc))
	if err != nil {
		t.Fatal(err)
	}
	var ords []int32
	dec.Walk(func(n *Node) bool {
		ords = append(ords, n.Ord)
		return true
	})
	for i := 1; i < len(ords); i++ {
		if ords[i] <= ords[i-1] {
			t.Fatalf("document order not increasing after decode: %v", ords)
		}
	}
	// Parent pointers must be restored too.
	f := dec.Root().Descendants("f")[0]
	if f.Parent == nil || f.Parent.Name != "e" {
		t.Fatal("parent pointers not restored")
	}
}

func TestBinaryPropertyViaXML(t *testing.T) {
	// For any two short text fragments, building a tree, binary round
	// tripping and serializing must equal the direct serialization.
	f := func(a, b string) bool {
		n := NewElement("r")
		n.SetAttr("k", a)
		n.AddLeaf("c", b)
		dec, err := DecodeBinary(EncodeBinary(n))
		if err != nil {
			return false
		}
		return dec.XML() == n.XML()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("tooshort"),
		[]byte("XDM1"),                    // truncated after magic
		[]byte("XDM1\x01\x02ab\x00"),      // element references missing data
		append([]byte("XDM1\x00"), 0xFF),  // unknown kind
		[]byte("not-xdm-anything-at-all"), // wrong magic
	}
	for i, data := range cases {
		if _, err := DecodeBinary(data); err == nil {
			t.Errorf("case %d: garbage decoded successfully", i)
		}
	}
}

func TestBinaryTrailingBytesRejected(t *testing.T) {
	enc := EncodeBinary(MustParse(`<a/>`))
	if _, err := DecodeBinary(append(enc, 0x00)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestBinarySmallerAndFasterShape(t *testing.T) {
	// Name dictionary encoding should make repetitive documents compact:
	// binary must not exceed ~1.5x the XML size even in the worst case and
	// should be smaller for tag-heavy content.
	var b []byte
	doc := NewDocument()
	root := doc.AddElement("orders")
	for i := 0; i < 200; i++ {
		o := root.AddElement("order_line_with_long_name")
		o.AddLeaf("item_identifier_column", "I1")
		o.AddLeaf("quantity_column", "3")
	}
	xml := doc.XML()
	b = EncodeBinary(doc)
	if len(b) >= len(xml) {
		t.Fatalf("binary (%d) not smaller than XML (%d) for tag-heavy doc", len(b), len(xml))
	}
}

func BenchmarkParseXML(b *testing.B) {
	doc := buildBenchDoc()
	data := doc.XMLBytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeBinaryDOM(b *testing.B) {
	doc := buildBenchDoc()
	data := EncodeBinary(doc)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBinary(data); err != nil {
			b.Fatal(err)
		}
	}
}

func buildBenchDoc() *Node {
	doc := NewDocument()
	root := doc.AddElement("catalog")
	for i := 0; i < 500; i++ {
		item := root.AddElement("item")
		item.SetAttr("id", "I1")
		item.AddLeaf("title", "Some Book Title With Words")
		item.AddLeaf("description", "a moderately long description of the item with many words in it")
		a := item.AddElement("authors").AddElement("author")
		a.AddLeaf("name", "Ada Adams")
		a.AddLeaf("country", "Canada")
	}
	doc.Renumber()
	return doc
}
