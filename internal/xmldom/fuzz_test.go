package xmldom

import (
	"bytes"
	"testing"
)

// FuzzParse checks that the parser never panics, and that any document it
// accepts survives a serialize-reparse round trip (the invariant the
// storage engines rely on).
func FuzzParse(f *testing.F) {
	seeds := []string{
		`<a/>`,
		`<a x="1"><b>t</b><!-- c --><![CDATA[raw]]></a>`,
		`<?xml version="1.0"?><r>&amp;&#65;</r>`,
		`<a><a><a/></a></a>`,
		`<qt>mix <i>in</i> ed</qt>`,
		`<a x='s'/>`,
		`<!DOCTYPE a [<!ELEMENT a ANY>]><a/>`,
		`<a`, `</a>`, `<a>&bogus;</a>`, `<<>>`, "",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := Parse(data)
		if err != nil {
			return // rejection is fine; panics are not
		}
		out := doc.XMLBytes()
		doc2, err := Parse(out)
		if err != nil {
			t.Fatalf("accepted document failed reparse: %v\ninput: %q\nserialized: %q", err, data, out)
		}
		if !Equal(doc, doc2) {
			t.Fatalf("round trip changed tree for %q", data)
		}
		if !bytes.Equal(out, doc2.XMLBytes()) {
			t.Fatalf("serialization not a fixpoint for %q", data)
		}
	})
}

// FuzzDecodeBinary checks the binary DOM decoder never panics on
// arbitrary input.
func FuzzDecodeBinary(f *testing.F) {
	f.Add([]byte("XDM1"))
	f.Add(EncodeBinary(MustParse(`<a x="1"><b>t</b></a>`)))
	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := DecodeBinary(data)
		if err == nil && n == nil {
			t.Fatal("nil node with nil error")
		}
	})
}
