package xmldom

import (
	"encoding/binary"
	"fmt"
)

// Binary DOM serialization: the persistent-DOM page format the native
// engine stores instead of raw XML. Decoding rebuilds the node tree
// without tokenizing, escaping or well-formedness work, the way X-Hive
// paged in persistent DOM nodes rather than re-parsing documents.
//
// Layout (all integers varint-encoded):
//
//	magic "XDM1"
//	nameCount, then each name (len, bytes)   — element/PI name dictionary
//	node := kind
//	        ElementKind:  nameIdx, nattrs, {attrName(len,bytes), value(len,bytes)}, nchildren, children
//	        TextKind:     data(len, bytes)
//	        CommentKind:  data(len, bytes)
//	        PIKind:       nameIdx, data(len, bytes)
//	        DocumentKind: nchildren, children
//
// Document order is assigned during decode in one pass.

var binMagic = []byte("XDM1")

// EncodeBinary serializes the subtree rooted at n into the persistent DOM
// format.
func EncodeBinary(n *Node) []byte {
	names := map[string]int{}
	var nameList []string
	var collect func(*Node)
	collect = func(nd *Node) {
		if nd.Kind == ElementKind || nd.Kind == PIKind {
			if _, ok := names[nd.Name]; !ok {
				names[nd.Name] = len(nameList)
				nameList = append(nameList, nd.Name)
			}
		}
		for _, c := range nd.Children {
			collect(c)
		}
	}
	collect(n)

	buf := make([]byte, 0, 1024)
	buf = append(buf, binMagic...)
	buf = binary.AppendUvarint(buf, uint64(len(nameList)))
	for _, name := range nameList {
		buf = appendString(buf, name)
	}
	var enc func([]byte, *Node) []byte
	enc = func(b []byte, nd *Node) []byte {
		b = append(b, byte(nd.Kind))
		switch nd.Kind {
		case ElementKind:
			b = binary.AppendUvarint(b, uint64(names[nd.Name]))
			b = binary.AppendUvarint(b, uint64(len(nd.Attrs)))
			for _, a := range nd.Attrs {
				b = appendString(b, a.Name)
				b = appendString(b, a.Value)
			}
			b = binary.AppendUvarint(b, uint64(len(nd.Children)))
			for _, c := range nd.Children {
				b = enc(b, c)
			}
		case TextKind, CommentKind:
			b = appendString(b, nd.Data)
		case PIKind:
			b = binary.AppendUvarint(b, uint64(names[nd.Name]))
			b = appendString(b, nd.Data)
		case DocumentKind:
			b = binary.AppendUvarint(b, uint64(len(nd.Children)))
			for _, c := range nd.Children {
				b = enc(b, c)
			}
		}
		return b
	}
	return enc(buf, n)
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

type binReader struct {
	data []byte
	pos  int
	ord  int32
}

func (r *binReader) errf(format string, args ...any) error {
	return fmt.Errorf("xmldom: binary decode at %d: %s", r.pos, fmt.Sprintf(format, args...))
}

func (r *binReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		return 0, r.errf("bad varint")
	}
	r.pos += n
	return v, nil
}

func (r *binReader) str() (string, error) {
	l, err := r.uvarint()
	if err != nil {
		return "", err
	}
	// Compare in uint64 space: a hostile length can overflow int.
	if l > uint64(len(r.data)-r.pos) {
		return "", r.errf("string of %d bytes overruns buffer", l)
	}
	s := string(r.data[r.pos : r.pos+int(l)])
	r.pos += int(l)
	return s, nil
}

// DecodeBinary rebuilds a node tree from the persistent DOM format,
// assigning document order.
func DecodeBinary(data []byte) (*Node, error) {
	if len(data) < len(binMagic) || string(data[:len(binMagic)]) != string(binMagic) {
		return nil, fmt.Errorf("xmldom: not a binary DOM document")
	}
	r := &binReader{data: data, pos: len(binMagic)}
	nameCount, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nameCount > uint64(len(data)) { // each name costs at least one byte
		return nil, r.errf("name count %d exceeds input size", nameCount)
	}
	names := make([]string, nameCount)
	for i := range names {
		if names[i], err = r.str(); err != nil {
			return nil, err
		}
	}
	node, err := r.node(names, 0)
	if err != nil {
		return nil, err
	}
	if r.pos != len(data) {
		return nil, r.errf("%d trailing bytes", len(data)-r.pos)
	}
	return node, nil
}

const maxBinaryDepth = 4096

func (r *binReader) node(names []string, depth int) (*Node, error) {
	if depth > maxBinaryDepth {
		return nil, r.errf("nesting deeper than %d", maxBinaryDepth)
	}
	if r.pos >= len(r.data) {
		return nil, r.errf("truncated node")
	}
	kind := Kind(r.data[r.pos])
	r.pos++
	n := &Node{Kind: kind, Ord: r.ord}
	r.ord++
	var err error
	switch kind {
	case ElementKind:
		nameIdx, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if nameIdx >= uint64(len(names)) {
			return nil, r.errf("name index %d out of range", nameIdx)
		}
		n.Name = names[nameIdx]
		nattrs, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if nattrs > uint64(len(r.data)) { // each attribute costs >= 2 bytes
			return nil, r.errf("attribute count %d exceeds input size", nattrs)
		}
		if nattrs > 0 {
			n.Attrs = make([]Attr, nattrs)
			for i := range n.Attrs {
				if n.Attrs[i].Name, err = r.str(); err != nil {
					return nil, err
				}
				if n.Attrs[i].Value, err = r.str(); err != nil {
					return nil, err
				}
			}
		}
		if err := r.children(n, names, depth); err != nil {
			return nil, err
		}
	case TextKind, CommentKind:
		if n.Data, err = r.str(); err != nil {
			return nil, err
		}
	case PIKind:
		nameIdx, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if nameIdx >= uint64(len(names)) {
			return nil, r.errf("name index %d out of range", nameIdx)
		}
		n.Name = names[nameIdx]
		if n.Data, err = r.str(); err != nil {
			return nil, err
		}
	case DocumentKind:
		if err := r.children(n, names, depth); err != nil {
			return nil, err
		}
	default:
		return nil, r.errf("unknown node kind %d", kind)
	}
	return n, nil
}

func (r *binReader) children(parent *Node, names []string, depth int) error {
	count, err := r.uvarint()
	if err != nil {
		return err
	}
	if count > uint64(len(r.data)) { // a child costs at least one byte
		return r.errf("child count %d exceeds input size", count)
	}
	if count > 0 {
		parent.Children = make([]*Node, 0, count)
	}
	for i := uint64(0); i < count; i++ {
		c, err := r.node(names, depth+1)
		if err != nil {
			return err
		}
		c.Parent = parent
		parent.Children = append(parent.Children, c)
	}
	return nil
}
