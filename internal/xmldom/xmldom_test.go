package xmldom

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSimple(t *testing.T) {
	doc := MustParse(`<?xml version="1.0"?><a x="1"><b>hi</b><c/></a>`)
	root := doc.Root()
	if root == nil || root.Name != "a" {
		t.Fatalf("root = %v", root)
	}
	if v, ok := root.Attr("x"); !ok || v != "1" {
		t.Fatalf("attr x = %q, %v", v, ok)
	}
	if len(root.Elements()) != 2 {
		t.Fatalf("children = %d", len(root.Elements()))
	}
	if root.FirstChild("b").Text() != "hi" {
		t.Fatalf("b text = %q", root.FirstChild("b").Text())
	}
	if root.FirstChild("c") == nil {
		t.Fatal("self-closing c missing")
	}
}

func TestParseEntities(t *testing.T) {
	doc := MustParse(`<a t="&quot;q&quot;">&lt;&amp;&gt; &#65;&#x42;</a>`)
	root := doc.Root()
	if got := root.Text(); got != "<&> AB" {
		t.Fatalf("text = %q", got)
	}
	if v, _ := root.Attr("t"); v != `"q"` {
		t.Fatalf("attr = %q", v)
	}
}

func TestParseCDATAAndComments(t *testing.T) {
	doc := MustParse(`<a><!-- note --><![CDATA[<raw> & stuff]]></a>`)
	root := doc.Root()
	if got := root.Text(); got != "<raw> & stuff" {
		t.Fatalf("CDATA text = %q", got)
	}
	hasComment := false
	for _, c := range root.Children {
		if c.Kind == CommentKind && strings.Contains(c.Data, "note") {
			hasComment = true
		}
	}
	if !hasComment {
		t.Fatal("comment lost")
	}
}

func TestParseDoctypeAndPI(t *testing.T) {
	doc := MustParse(`<?xml version="1.0"?><!DOCTYPE a [<!ELEMENT a (#PCDATA)>]><?target data?><a>x</a>`)
	if doc.Root().Text() != "x" {
		t.Fatal("doctype skipping broke content")
	}
	foundPI := false
	for _, c := range doc.Children {
		if c.Kind == PIKind && c.Name == "target" {
			foundPI = true
		}
	}
	if !foundPI {
		t.Fatal("processing instruction lost")
	}
}

func TestParseMixedContent(t *testing.T) {
	doc := MustParse(`<qt>before <i>italic</i> after</qt>`)
	root := doc.Root()
	if !root.HasMixedContent() {
		t.Fatal("mixed content not detected")
	}
	if root.Text() != "before italic after" {
		t.Fatalf("mixed text = %q", root.Text())
	}
	plain := MustParse(`<a><b>x</b></a>`).Root()
	if plain.HasMixedContent() {
		t.Fatal("element-only content flagged as mixed")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,                      // empty
		`<a>`,                   // unterminated
		`<a></b>`,               // mismatched tags
		`<a x=1></a>`,           // unquoted attribute
		`<a x="1" x="2"></a>`,   // duplicate attribute
		`<a>&unknown;</a>`,      // undefined entity
		`<a><b></a></b>`,        // interleaved
		`<a/><b/>`,              // two roots
		`<a t="<"></a>`,         // < in attribute
		`<a><!-- unclosed </a>`, // unterminated comment
		`text only`,             // no root element
	}
	for _, src := range cases {
		if _, err := Parse([]byte(src)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := Parse([]byte(`<a></b>`))
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Offset == 0 || !strings.Contains(se.Error(), "mismatched") {
		t.Fatalf("unhelpful error: %v", se)
	}
}

func TestDocumentOrder(t *testing.T) {
	doc := MustParse(`<a><b><c/></b><d/></a>`)
	var names []string
	var ords []int32
	doc.Walk(func(n *Node) bool {
		if n.Kind == ElementKind {
			names = append(names, n.Name)
			ords = append(ords, n.Ord)
		}
		return true
	})
	if strings.Join(names, "") != "abcd" {
		t.Fatalf("walk order = %v", names)
	}
	for i := 1; i < len(ords); i++ {
		if ords[i] <= ords[i-1] {
			t.Fatalf("document order not increasing: %v", ords)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	src := `<catalog><item id="I1"><title>a &amp; b</title><attributes><srp>3.50</srp></attributes></item></catalog>`
	doc := MustParse(src)
	out := doc.XML()
	doc2 := MustParse(out)
	if !Equal(doc, doc2) {
		t.Fatalf("round trip changed document:\n%s\n%s", out, doc2.XML())
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Any text content must survive serialize-parse unchanged.
	f := func(s string) bool {
		if !validUTF8Text(s) {
			return true // XML cannot carry arbitrary control bytes
		}
		n := NewElement("t")
		n.AddText(s)
		doc, err := Parse([]byte(n.XML()))
		if err != nil {
			return false
		}
		return doc.Root().Text() == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func validUTF8Text(s string) bool {
	for _, r := range s {
		if r == 0xFFFD || r < 0x20 && r != '\t' && r != '\n' && r != '\r' {
			return false
		}
		if r == '\r' { // parser does not normalize line endings
			return false
		}
	}
	return true
}

func TestAttrEscaping(t *testing.T) {
	n := NewElement("a")
	n.SetAttr("v", `x"y<z&`)
	doc := MustParse(n.XML())
	if got, _ := doc.Root().Attr("v"); got != `x"y<z&` {
		t.Fatalf("attr round trip = %q", got)
	}
}

func TestNodeHelpers(t *testing.T) {
	doc := MustParse(`<a><b>1</b><c>2</c><b>3</b></a>`)
	root := doc.Root()
	bs := root.ChildElements("b")
	if len(bs) != 2 || bs[0].Text() != "1" || bs[1].Text() != "3" {
		t.Fatalf("ChildElements = %v", bs)
	}
	if root.Text() != "123" {
		t.Fatalf("Text = %q", root.Text())
	}
	if n := root.CountNodes(); n != 7 { // a,b,1,c,2,b,3
		t.Fatalf("CountNodes = %d", n)
	}
}

func TestDescendants(t *testing.T) {
	doc := MustParse(`<a><s><s><p>x</p></s><p>y</p></s></a>`)
	ps := doc.Root().Descendants("p")
	if len(ps) != 2 || ps[0].Text() != "x" || ps[1].Text() != "y" {
		t.Fatalf("Descendants(p) wrong: %d", len(ps))
	}
	all := doc.Root().Descendants("")
	if len(all) != 4 { // s, s, p, p
		t.Fatalf("Descendants(\"\") = %d", len(all))
	}
}

func TestCloneIsDeep(t *testing.T) {
	doc := MustParse(`<a x="1"><b>t</b></a>`)
	c := doc.Root().Clone()
	c.FirstChild("b").Children[0].Data = "changed"
	c.SetAttr("x", "2")
	if doc.Root().FirstChild("b").Text() != "t" {
		t.Fatal("clone shares text nodes")
	}
	if v, _ := doc.Root().Attr("x"); v != "1" {
		t.Fatal("clone shares attrs")
	}
	if c.Parent != nil {
		t.Fatal("clone kept parent")
	}
}

func TestEncoder(t *testing.T) {
	e := NewEncoder()
	e.Begin("order", "id", "O1")
	e.Leaf("total", "9.99")
	e.Leaf("note", "")
	e.Empty("flag", "set", "yes")
	e.End()
	b, err := e.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	doc, err := Parse(b)
	if err != nil {
		t.Fatalf("encoder output unparseable: %v\n%s", err, b)
	}
	root := doc.Root()
	if root.Name != "order" {
		t.Fatalf("root = %s", root.Name)
	}
	if v, _ := root.Attr("id"); v != "O1" {
		t.Fatal("attr lost")
	}
	if root.FirstChild("total").Text() != "9.99" {
		t.Fatal("leaf text lost")
	}
	if v, _ := root.FirstChild("flag").Attr("set"); v != "yes" {
		t.Fatal("empty element attr lost")
	}
}

func TestEncoderErrors(t *testing.T) {
	e := NewEncoder()
	e.Begin("a")
	if _, err := e.Bytes(); err == nil {
		t.Fatal("unclosed element not reported")
	}
	e2 := NewEncoder()
	e2.End()
	if _, err := e2.Bytes(); err == nil {
		t.Fatal("stray End not reported")
	}
	e3 := NewEncoder()
	e3.Begin("a", "odd")
	if _, err := e3.Bytes(); err == nil {
		t.Fatal("odd attribute list not reported")
	}
}

func TestEncoderEscapes(t *testing.T) {
	e := NewEncoder()
	e.Begin("a", "t", `q"<&`)
	e.Text(`body <&> text`)
	e.End()
	b, err := e.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	doc, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if got := doc.Root().Text(); got != `body <&> text` {
		t.Fatalf("text = %q", got)
	}
	if v, _ := doc.Root().Attr("t"); v != `q"<&` {
		t.Fatalf("attr = %q", v)
	}
}

func TestSortByOrd(t *testing.T) {
	doc := MustParse(`<a><b/><c/><d/></a>`)
	els := doc.Root().Elements()
	shuffled := []*Node{els[2], els[0], els[1]}
	SortByOrd(shuffled)
	if shuffled[0].Name != "b" || shuffled[2].Name != "d" {
		t.Fatalf("SortByOrd wrong: %s %s %s", shuffled[0].Name, shuffled[1].Name, shuffled[2].Name)
	}
}

func TestWalkPrune(t *testing.T) {
	doc := MustParse(`<a><skip><x/></skip><keep/></a>`)
	var visited []string
	doc.Walk(func(n *Node) bool {
		if n.Kind != ElementKind {
			return true
		}
		visited = append(visited, n.Name)
		return n.Name != "skip"
	})
	for _, v := range visited {
		if v == "x" {
			t.Fatal("prune did not stop descent")
		}
	}
}
