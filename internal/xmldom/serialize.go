package xmldom

import (
	"bytes"
	"fmt"
	"io"
	"strings"
)

// escapeText writes s with &, < and > escaped (character-data context).
func escapeText(w *bytes.Buffer, s string) {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			w.WriteString("&amp;")
		case '<':
			w.WriteString("&lt;")
		case '>':
			w.WriteString("&gt;")
		default:
			w.WriteByte(s[i])
		}
	}
}

// escapeAttr writes s escaped for a double-quoted attribute value.
func escapeAttr(w *bytes.Buffer, s string) {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			w.WriteString("&amp;")
		case '<':
			w.WriteString("&lt;")
		case '"':
			w.WriteString("&quot;")
		default:
			w.WriteByte(s[i])
		}
	}
}

// AppendXML serializes the subtree rooted at n into buf.
func (n *Node) AppendXML(buf *bytes.Buffer) {
	switch n.Kind {
	case DocumentKind:
		for _, c := range n.Children {
			c.AppendXML(buf)
		}
	case TextKind:
		escapeText(buf, n.Data)
	case CommentKind:
		buf.WriteString("<!--")
		buf.WriteString(n.Data)
		buf.WriteString("-->")
	case PIKind:
		buf.WriteString("<?")
		buf.WriteString(n.Name)
		if n.Data != "" {
			buf.WriteByte(' ')
			buf.WriteString(n.Data)
		}
		buf.WriteString("?>")
	case ElementKind:
		buf.WriteByte('<')
		buf.WriteString(n.Name)
		for _, a := range n.Attrs {
			buf.WriteByte(' ')
			buf.WriteString(a.Name)
			buf.WriteString(`="`)
			escapeAttr(buf, a.Value)
			buf.WriteByte('"')
		}
		if len(n.Children) == 0 {
			buf.WriteString("/>")
			return
		}
		buf.WriteByte('>')
		for _, c := range n.Children {
			c.AppendXML(buf)
		}
		buf.WriteString("</")
		buf.WriteString(n.Name)
		buf.WriteByte('>')
	}
}

// XML returns the serialized form of the subtree rooted at n.
func (n *Node) XML() string {
	var buf bytes.Buffer
	n.AppendXML(&buf)
	return buf.String()
}

// XMLBytes returns the serialized form as a byte slice.
func (n *Node) XMLBytes() []byte {
	var buf bytes.Buffer
	n.AppendXML(&buf)
	return buf.Bytes()
}

// Equal reports deep structural equality of two subtrees (kind, name,
// data, attributes, children) ignoring Ord and Parent.
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind || a.Name != b.Name || a.Data != b.Data ||
		len(a.Attrs) != len(b.Attrs) || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Attrs {
		if a.Attrs[i] != b.Attrs[i] {
			return false
		}
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// Encoder writes XML incrementally. The database generators use it to emit
// documents without materializing a DOM, keeping memory flat even at the
// 1 GB paper scale.
type Encoder struct {
	buf   bytes.Buffer
	stack []string
	err   error
}

// NewEncoder returns an encoder that writes the standard XML declaration.
func NewEncoder() *Encoder {
	e := &Encoder{}
	e.buf.WriteString(`<?xml version="1.0" encoding="UTF-8"?>`)
	e.buf.WriteByte('\n')
	return e
}

// Begin opens <name attr...>. Attrs are passed as alternating name, value
// strings for brevity at the hundreds of call sites in the generators.
func (e *Encoder) Begin(name string, attrs ...string) *Encoder {
	if len(attrs)%2 != 0 {
		e.fail("odd attribute list for <" + name + ">")
		return e
	}
	e.buf.WriteByte('<')
	e.buf.WriteString(name)
	for i := 0; i < len(attrs); i += 2 {
		e.buf.WriteByte(' ')
		e.buf.WriteString(attrs[i])
		e.buf.WriteString(`="`)
		escapeAttr(&e.buf, attrs[i+1])
		e.buf.WriteByte('"')
	}
	e.buf.WriteByte('>')
	e.stack = append(e.stack, name)
	return e
}

// Text appends escaped character data.
func (e *Encoder) Text(s string) *Encoder {
	escapeText(&e.buf, s)
	return e
}

// End closes the most recently opened element.
func (e *Encoder) End() *Encoder {
	if len(e.stack) == 0 {
		e.fail("End with no open element")
		return e
	}
	name := e.stack[len(e.stack)-1]
	e.stack = e.stack[:len(e.stack)-1]
	e.buf.WriteString("</")
	e.buf.WriteString(name)
	e.buf.WriteByte('>')
	return e
}

// Leaf writes <name>text</name> in one call (or <name/> for empty text).
func (e *Encoder) Leaf(name, text string, attrs ...string) *Encoder {
	if text == "" && len(attrs) == 0 {
		e.buf.WriteByte('<')
		e.buf.WriteString(name)
		e.buf.WriteString("/>")
		return e
	}
	e.Begin(name, attrs...)
	e.Text(text)
	return e.End()
}

// Empty writes a self-closing <name attr.../> element.
func (e *Encoder) Empty(name string, attrs ...string) *Encoder {
	if len(attrs)%2 != 0 {
		e.fail("odd attribute list for <" + name + "/>")
		return e
	}
	e.buf.WriteByte('<')
	e.buf.WriteString(name)
	for i := 0; i < len(attrs); i += 2 {
		e.buf.WriteByte(' ')
		e.buf.WriteString(attrs[i])
		e.buf.WriteString(`="`)
		escapeAttr(&e.buf, attrs[i+1])
		e.buf.WriteByte('"')
	}
	e.buf.WriteString("/>")
	return e
}

// Raw appends pre-escaped markup verbatim. Use only with trusted content.
func (e *Encoder) Raw(s string) *Encoder {
	e.buf.WriteString(s)
	return e
}

// Len returns the number of bytes emitted so far.
func (e *Encoder) Len() int { return e.buf.Len() }

func (e *Encoder) fail(msg string) {
	if e.err == nil {
		e.err = fmt.Errorf("xmldom: encoder: %s", msg)
	}
}

// Bytes finishes the document and returns it. It returns an error if
// elements remain open or a structural misuse occurred.
func (e *Encoder) Bytes() ([]byte, error) {
	if e.err != nil {
		return nil, e.err
	}
	if len(e.stack) != 0 {
		return nil, fmt.Errorf("xmldom: encoder: %d unclosed element(s): %s",
			len(e.stack), strings.Join(e.stack, ", "))
	}
	return e.buf.Bytes(), nil
}

// WriteTo writes the finished document to w.
func (e *Encoder) WriteTo(w io.Writer) (int64, error) {
	b, err := e.Bytes()
	if err != nil {
		return 0, err
	}
	n, err := w.Write(b)
	return int64(n), err
}
