package pager

import (
	"bytes"
	"errors"
	"testing"
)

func TestCloseFlushesAndReleasesFiles(t *testing.T) {
	p := New(4)
	f := p.Create("t")
	no, err := p.Append(f)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("z"), 64)
	if err := p.Write(f, no, data); err != nil {
		t.Fatal(err)
	}
	if p.OpenFiles() != 1 {
		t.Fatalf("OpenFiles = %d before close", p.OpenFiles())
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if p.OpenFiles() != 0 {
		t.Fatalf("OpenFiles = %d after close", p.OpenFiles())
	}
	// Double close must be a safe no-op — engines close defensively.
	if err := p.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestOpsAfterCloseFail(t *testing.T) {
	p := New(4)
	f := p.Create("t")
	if _, err := p.Append(f); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Read(f, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Read after close: %v", err)
	}
	if err := p.Write(f, 0, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Write after close: %v", err)
	}
	if _, err := p.Append(f); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after close: %v", err)
	}
	if err := p.Truncate(f); !errors.Is(err, ErrClosed) {
		t.Fatalf("Truncate after close: %v", err)
	}
	if err := p.Sync(f); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after close: %v", err)
	}
	if err := p.SyncAll(); !errors.Is(err, ErrClosed) {
		t.Fatalf("SyncAll after close: %v", err)
	}
}
