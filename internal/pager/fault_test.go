package pager

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// fillPages creates a file of n pages with distinct recognizable content
// and syncs it to disk.
func fillPages(t *testing.T, p *Pager, name string, n int) FileID {
	t.Helper()
	f := p.Create(name)
	for i := 0; i < n; i++ {
		if _, err := p.Append(f); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if err := p.Write(f, uint32(i), bytes.Repeat([]byte{byte(i + 1)}, PageSize)); err != nil {
			t.Fatalf("Write %d: %v", i, err)
		}
	}
	if err := p.Sync(f); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	return f
}

// faultTrace runs a fixed workload under a policy and returns a summary of
// the injected faults.
func faultTrace(seed uint64) string {
	p := New(4)
	p.SetFaultPolicy(FaultPolicy{Seed: seed, ReadErrorRate: 0.3, TornWriteRate: 0.3})
	f := p.Create("t")
	for i := 0; i < 8; i++ {
		p.Append(f)
		p.Write(f, uint32(i), []byte{byte(i)})
	}
	p.Sync(f)
	p.ColdReset()
	for i := 0; i < 8; i++ {
		p.Read(f, uint32(i))
	}
	s := p.Stats()
	return fmt.Sprintf("faults=%d retries=%d torn=%d wal=%d ops=%d",
		s.ReadFaults, s.ReadRetries, s.TornWrites, s.WALAppends, p.OpCount())
}

func TestFaultDeterminism(t *testing.T) {
	a := faultTrace(42)
	b := faultTrace(42)
	if a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	c := faultTrace(43)
	if a == c {
		t.Fatalf("different seeds produced identical fault traces: %s", a)
	}
}

func TestTransientReadRetry(t *testing.T) {
	p := New(2)
	f := fillPages(t, p, "t", 4)
	p.ColdReset()
	// A moderate rate: reads fault sometimes but essentially never fault
	// MaxReadAttempts times in a row (0.2^4 = 0.16%).
	p.SetFaultPolicy(FaultPolicy{Seed: 7, ReadErrorRate: 0.2})
	for round := 0; round < 20; round++ {
		p.ColdReset()
		for i := 0; i < 4; i++ {
			pg, err := p.Read(f, uint32(i))
			if err != nil {
				t.Fatalf("round %d read %d: %v", round, i, err)
			}
			if pg[0] != byte(i+1) {
				t.Fatalf("round %d read %d returned wrong page", round, i)
			}
		}
	}
	s := p.Stats()
	if s.ReadFaults == 0 {
		t.Fatal("no transient faults injected at rate 0.2 over 80 cold reads")
	}
	if s.ReadRetries != s.ReadFaults {
		t.Fatalf("retries=%d faults=%d: every transient fault should be retried", s.ReadRetries, s.ReadFaults)
	}
}

func TestReadFaultExhaustionIsFatal(t *testing.T) {
	p := New(2)
	f := fillPages(t, p, "t", 1)
	p.ColdReset()
	p.SetFaultPolicy(FaultPolicy{Seed: 1, ReadErrorRate: 1})
	_, err := p.Read(f, 0)
	if !errors.Is(err, ErrReadFault) {
		t.Fatalf("err = %v, want ErrReadFault", err)
	}
	if IsTransient(err) {
		t.Fatal("exhausted read fault must not be transient")
	}
	if s := p.Stats(); s.ReadRetries != MaxReadAttempts-1 {
		t.Fatalf("retries = %d, want %d", s.ReadRetries, MaxReadAttempts-1)
	}
}

func TestTornWriteRepairedByRecover(t *testing.T) {
	p := New(2)
	p.SetFaultPolicy(FaultPolicy{Seed: 3, TornWriteRate: 1}) // every write tears
	f := p.Create("t")
	for i := 0; i < 4; i++ {
		if _, err := p.Append(f); err != nil {
			t.Fatal(err)
		}
		if err := p.Write(f, uint32(i), bytes.Repeat([]byte{byte(i + 1)}, PageSize)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Sync(f); err != nil {
		t.Fatal(err)
	}
	if s := p.Stats(); s.TornWrites == 0 {
		t.Fatal("no torn writes at rate 1")
	}
	// The disk now holds torn pages; recovery must repair them from the WAL.
	if n, err := p.Recover(); err != nil || n == 0 {
		t.Fatalf("Recover = %d, %v", n, err)
	}
	if err := p.CheckDurable(); err != nil {
		t.Fatalf("CheckDurable after recover: %v", err)
	}
	for i := 0; i < 4; i++ {
		pg, err := p.Read(f, uint32(i))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pg, bytes.Repeat([]byte{byte(i + 1)}, PageSize)) {
			t.Fatalf("page %d not repaired", i)
		}
	}
}

func TestCrashHaltsAllIO(t *testing.T) {
	p := New(2)
	f := fillPages(t, p, "t", 4)
	p.ColdReset()
	p.SetFaultPolicy(FaultPolicy{Seed: 5, CrashAfterOps: 2})
	var err error
	for i := 0; i < 4 && err == nil; i++ {
		_, err = p.Read(f, uint32(i))
	}
	if !IsCrash(err) {
		t.Fatalf("err = %v, want crash", err)
	}
	if !p.Crashed() {
		t.Fatal("Crashed() = false after crash point")
	}
	// Every I/O path must fail while down.
	if _, err := p.Read(f, 0); !IsCrash(err) {
		t.Fatalf("Read while crashed: %v", err)
	}
	if err := p.Write(f, 0, nil); !IsCrash(err) {
		t.Fatalf("Write while crashed: %v", err)
	}
	if _, err := p.Append(f); !IsCrash(err) {
		t.Fatalf("Append while crashed: %v", err)
	}
	if err := p.Truncate(f); !IsCrash(err) {
		t.Fatalf("Truncate while crashed: %v", err)
	}
	if _, err := p.Recover(); err != nil {
		t.Fatal(err)
	}
	if p.Crashed() {
		t.Fatal("still crashed after Recover")
	}
	if _, err := p.Read(f, 0); err != nil {
		t.Fatalf("Read after Recover: %v", err)
	}
}

// TestCrashBudgetSweep is the core recovery property: for every possible
// crash point in a write workload, recovery restores exactly the durable
// prefix — the disk matches the WAL's shadow images bit for bit.
func TestCrashBudgetSweep(t *testing.T) {
	// First measure the op budget of the fault-free workload.
	run := func(crashAt int64) (*Pager, FileID, error) {
		p := New(2) // tiny pool so evictions write back mid-workload
		p.SetFaultPolicy(FaultPolicy{Seed: 11, CrashAfterOps: crashAt})
		f := p.Create("t")
		var err error
		for i := 0; i < 6 && err == nil; i++ {
			_, err = p.Append(f)
			if err == nil {
				err = p.Write(f, uint32(i), bytes.Repeat([]byte{byte(i + 1)}, PageSize))
			}
		}
		if err == nil {
			err = p.Sync(f)
		}
		return p, f, err
	}
	p, _, err := run(0)
	if err != nil {
		t.Fatal(err)
	}
	total := p.OpCount()
	if total < 6 {
		t.Fatalf("workload too small to sweep: %d ops", total)
	}
	// CrashAfterOps = n fails the (n+1)th op, so n ranges over 1..total-1
	// to guarantee the crash fires before the workload completes.
	for n := int64(1); n < total; n++ {
		p, f, err := run(n)
		if err == nil {
			t.Fatalf("crash at %d/%d did not fire", n, total)
		}
		if !IsCrash(err) {
			t.Fatalf("crash at %d: unexpected error %v", n, err)
		}
		if _, err := p.Recover(); err != nil {
			t.Fatalf("crash at %d: Recover: %v", n, err)
		}
		if err := p.CheckDurable(); err != nil {
			t.Fatalf("crash at %d: %v", n, err)
		}
		// The recovered file must be fully usable again.
		if _, err := p.Append(f); err != nil {
			t.Fatalf("crash at %d: Append after recover: %v", n, err)
		}
	}
}

func TestRecoverReplaysTruncate(t *testing.T) {
	p := New(2)
	p.SetFaultPolicy(FaultPolicy{Seed: 13})
	f := fillPages(t, p, "t", 3)
	if err := p.Truncate(f); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Recover(); err != nil {
		t.Fatal(err)
	}
	if n := p.NumPages(f); n != 0 {
		t.Fatalf("replay resurrected %d truncated pages", n)
	}
	if err := p.CheckDurable(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverWithoutPolicyFails(t *testing.T) {
	p := New(2)
	if _, err := p.Recover(); err == nil {
		t.Fatal("Recover without a policy succeeded")
	}
	if err := p.CheckDurable(); err == nil {
		t.Fatal("CheckDurable without a policy succeeded")
	}
}

func TestWALDecodeRejectsCorruption(t *testing.T) {
	rec := encodeWALRecord(walKindPage, pageKey{fid: 1, no: 2}, bytes.Repeat([]byte{9}, PageSize))
	if _, _, _, _, ok := decodeWALRecord(rec); !ok {
		t.Fatal("valid record rejected")
	}
	// Torn tail: every strict prefix must be rejected.
	for _, cut := range []int{0, 1, walHeaderSize - 1, walHeaderSize, len(rec) - 9, len(rec) - 1} {
		if _, _, _, _, ok := decodeWALRecord(rec[:cut]); ok {
			t.Fatalf("torn record of %d/%d bytes accepted", cut, len(rec))
		}
	}
	// Bit flip in the payload must fail the checksum.
	bad := append([]byte(nil), rec...)
	bad[walHeaderSize+100] ^= 0xFF
	if _, _, _, _, ok := decodeWALRecord(bad); ok {
		t.Fatal("corrupt record accepted")
	}
}

// TestReadAliasingContract covers the satellite fix: by default Read
// returns aliases (documented hazard), and with copy-on-read enabled
// mutating the returned slice cannot corrupt the pool.
func TestReadAliasingContract(t *testing.T) {
	p := New(4)
	f := fillPages(t, p, "t", 1)
	p.SetCopyReads(true)
	pg, err := p.Read(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	pg[0] = 0xEE // must not reach the pool
	again, _ := p.Read(f, 0)
	if again[0] == 0xEE {
		t.Fatal("mutation through copy-on-read slice corrupted the pool")
	}
	p.SetCopyReads(false)
	a, _ := p.Read(f, 0)
	b, _ := p.Read(f, 0)
	if &a[0] != &b[0] {
		t.Fatal("aliasing mode should serve the pooled frame")
	}
	// Fault injection forces copies back on.
	p.SetFaultPolicy(FaultPolicy{Seed: 1})
	c, _ := p.Read(f, 0)
	if &c[0] == &a[0] {
		t.Fatal("fault policy did not force copy-on-read")
	}
}

// TestWriteBackTruncationGuard covers the guard in writeBack: a dirty
// frame whose file was truncated underneath it is dropped, not written.
func TestWriteBackTruncationGuard(t *testing.T) {
	p := New(4)
	f := p.Create("t")
	p.Append(f)
	p.Write(f, 0, []byte("doomed"))
	// Truncate drops the frame from the pool; rebuild the hazard manually
	// so the guard itself is exercised: a valid dirty frame pointing past
	// the end of its file.
	if err := p.Truncate(f); err != nil {
		t.Fatal(err)
	}
	p.mu.Lock()
	p.frames[0] = frame{key: pageKey{fid: f, no: 0}, data: make([]byte, PageSize), dirty: true, valid: true}
	p.table[pageKey{fid: f, no: 0}] = 0
	err := p.writeBack(&p.frames[0])
	p.mu.Unlock()
	if err != nil {
		t.Fatalf("writeBack on truncated file: %v", err)
	}
	if n := p.NumPages(f); n != 0 {
		t.Fatalf("write-back resurrected %d pages of a truncated file", n)
	}
	if s := p.Stats(); s.Writes != 0 {
		t.Fatalf("guard counted %d disk writes", s.Writes)
	}
}

// TestClockEvictionOrder pins the CLOCK sweep: reference bits grant a
// second chance, and the hand resumes where it stopped.
func TestClockEvictionOrder(t *testing.T) {
	p := New(3)
	f := p.Create("t")
	for i := 0; i < 5; i++ {
		if _, err := p.Append(f); err != nil {
			t.Fatal(err)
		}
		if err := p.Write(f, uint32(i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.SyncAll(); err != nil {
		t.Fatal(err)
	}
	p.ColdReset()

	inPool := func(no uint32) bool {
		p.mu.Lock()
		defer p.mu.Unlock()
		_, ok := p.table[pageKey{fid: f, no: no}]
		return ok
	}
	// Fill the 3-frame pool: A=0, B=1, C=2, all with used bits set.
	p.Read(f, 0)
	p.Read(f, 1)
	p.Read(f, 2)
	// Installing D=3 sweeps the clock: all three used bits are cleared,
	// the hand wraps to frame 0 and evicts A.
	p.Read(f, 3)
	if inPool(0) {
		t.Fatal("CLOCK should have evicted page 0 after a full sweep")
	}
	if !inPool(1) || !inPool(2) || !inPool(3) {
		t.Fatal("pages 1,2,3 should be resident")
	}
	// Touch B so its reference bit protects it, then install E=4: the hand
	// is at frame 1 (B), skips it, and evicts C.
	p.Read(f, 1)
	p.Read(f, 4)
	if inPool(2) {
		t.Fatal("CLOCK should have evicted page 2 (page 1 was referenced)")
	}
	if !inPool(1) || !inPool(3) || !inPool(4) {
		t.Fatal("pages 1,3,4 should be resident")
	}
}

func TestBtreeStyleCrashDuringEviction(t *testing.T) {
	// Writes via a tiny pool force evictions inside install; a crash there
	// must surface as an error from Write/Append, not corrupt anything.
	p := New(2)
	p.SetFaultPolicy(FaultPolicy{Seed: 17, CrashAfterOps: 5})
	f := p.Create("t")
	var err error
	for i := 0; i < 32 && err == nil; i++ {
		_, err = p.Append(f)
		if err == nil {
			err = p.Write(f, uint32(i), bytes.Repeat([]byte{byte(i)}, PageSize))
		}
	}
	if !IsCrash(err) {
		t.Fatalf("err = %v, want crash via eviction path", err)
	}
	if _, err := p.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := p.CheckDurable(); err != nil {
		t.Fatal(err)
	}
}
