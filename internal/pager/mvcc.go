// MVCC snapshot layer (DESIGN.md §15): copy-on-write page versions that
// let readers traverse a consistent epoch of the database while a writer
// mutates it — without the engine write lock ever appearing on the read
// path.
//
// The model is single-writer / multi-reader, matching the engines' update
// protocol (updates already serialize on the engine mutex; queries do
// not). Time is divided into commit epochs:
//
//   - The pager holds a current committed epoch E. A reader pins E
//     (PinSnapshot) and reads every page "as of E" with ReadAt.
//   - A writer brackets one update in BeginMutation/EndMutation. The
//     mutation targets epoch E+1: the first in-place Write (or Truncate)
//     of each page captures the page's pre-image as a version superseded
//     at E+1. EndMutation publishes E+1 as the new committed epoch.
//   - ReadAt(fid, no, S) returns the oldest version with supersededAt > S,
//     or the live page when no version covers S. Because the journal-first
//     update protocol makes the journal append the commit point and the
//     mutation the redo apply, a reader pinned at E sees exactly the
//     pre-update database for the whole mutation, and readers pinning
//     after EndMutation see exactly the post-update database.
//   - GC reclaims versions whose supersededAt is <= the lowest pinned
//     epoch, clamped to the committed epoch so an open bracket's
//     pre-images survive until their commit even with no pins held. It
//     runs inline on unpin and commit, and optionally in the background
//     (StartGC) so long-pinned snapshots don't defer all reclamation to
//     the releasing reader.
//
// Version buffers alias the buffers they supersede: the pool replaces
// page buffers wholesale and never mutates them in place (the documented
// Read aliasing contract), so a captured pre-image stays immutable
// without a copy.
//
// Quiesce: Load and ColdReset must not race pinned snapshots — they call
// BlockPins, which waits for every outstanding pin to be released and
// holds new PinSnapshot calls until UnblockPins. This replaces the old
// "no concurrent readers because of the engine write lock" assumption.
package pager

import (
	"sync"
	"time"

	"xbench/internal/metrics"
)

// LiveEpoch is the sentinel epoch meaning "read the current page, no
// snapshot": ReadAt(fid, no, LiveEpoch) is exactly Read(fid, no).
const LiveEpoch = ^uint64(0)

// pageVersion is one superseded pre-image of a page: its content was
// current up to (but excluding) epoch supersededAt.
type pageVersion struct {
	supersededAt uint64
	data         []byte // immutable; aliases a replaced pool/disk buffer
}

// mvccState carries the snapshot machinery. It has its own mutex so pin
// and version bookkeeping never contend with the buffer-pool latch; lock
// order is p.mu before mvcc.mu (ReadAt takes them strictly in sequence,
// never nested the other way).
type mvccState struct {
	mu   sync.Mutex
	cond *sync.Cond // signals pin-count drops and unblocks

	epoch     uint64 // current committed epoch
	mutTarget uint64 // epoch the active mutation commits as; 0 = none
	mutActive bool

	pins    map[uint64]int // pinned epoch -> pin count
	blocked bool           // BlockPins in force: new pins wait

	versions map[pageKey][]pageVersion // ascending supersededAt
	// newPages tracks pages appended inside the active mutation: they did
	// not exist at any pinned epoch, so their writes need no pre-image.
	newPages map[pageKey]struct{}

	gcStop chan struct{}
	gcDone chan struct{}

	// cached metrics (nil-safe); bound by SetMetrics.
	cPin     *metrics.Counter // pager.snap.pin: snapshots pinned
	cCapture *metrics.Counter // pager.snap.capture: page versions captured
	cVRead   *metrics.Counter // pager.snap.read.version: reads served from a version
	cGC      *metrics.Counter // pager.snap.gc: versions reclaimed
}

func (m *mvccState) init() {
	if m.cond == nil {
		m.cond = sync.NewCond(&m.mu)
	}
	if m.pins == nil {
		m.pins = make(map[uint64]int)
	}
	if m.versions == nil {
		m.versions = make(map[pageKey][]pageVersion)
	}
}

// Snap is one pinned snapshot. Release is idempotent.
type Snap struct {
	p        *Pager
	epoch    uint64
	released bool
}

// Epoch returns the pinned commit epoch.
func (s *Snap) Epoch() uint64 { return s.epoch }

// Release unpins the snapshot, making its versions reclaimable.
func (s *Snap) Release() {
	if s == nil || s.p == nil {
		return
	}
	m := &s.p.mvcc
	m.mu.Lock()
	if s.released {
		m.mu.Unlock()
		return
	}
	s.released = true
	if n := m.pins[s.epoch]; n <= 1 {
		delete(m.pins, s.epoch)
	} else {
		m.pins[s.epoch] = n - 1
	}
	m.pruneLocked()
	m.cond.Broadcast()
	m.mu.Unlock()
}

// PinSnapshot pins the current committed epoch and returns the snapshot
// handle. While BlockPins is in force (Load, ColdReset) it waits for
// UnblockPins, so readers pin either the state before the exclusive
// operation or the state after it, never a half-built one.
func (p *Pager) PinSnapshot() *Snap {
	m := &p.mvcc
	m.mu.Lock()
	m.init()
	for m.blocked {
		m.cond.Wait()
	}
	e := m.epoch
	m.pins[e]++
	m.cPin.Inc()
	m.mu.Unlock()
	return &Snap{p: p, epoch: e}
}

// SnapshotEpoch returns the current committed epoch.
func (p *Pager) SnapshotEpoch() uint64 {
	m := &p.mvcc
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// PinnedSnapshots returns the number of outstanding pins (for tests and
// GC introspection).
func (p *Pager) PinnedSnapshots() int {
	m := &p.mvcc
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, c := range m.pins {
		n += c
	}
	return n
}

// LiveVersions returns the number of retained page versions.
func (p *Pager) LiveVersions() int {
	m := &p.mvcc
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, vs := range m.versions {
		n += len(vs)
	}
	return n
}

// BlockPins waits for every outstanding snapshot pin to be released and
// then holds new PinSnapshot calls until UnblockPins. It is the quiesce
// primitive for Load and ColdReset: with no pins outstanding every page
// version is dead, so the version store is emptied too.
func (p *Pager) BlockPins() {
	m := &p.mvcc
	m.mu.Lock()
	m.init()
	for m.blocked { // serialize concurrent blockers
		m.cond.Wait()
	}
	m.blocked = true
	for len(m.pins) > 0 {
		m.cond.Wait()
	}
	// No pins and no open bracket (callers hold the engine write lock),
	// so every version is <= the committed epoch and this drops them all.
	m.pruneLocked()
	m.mu.Unlock()
}

// UnblockPins lifts BlockPins and wakes waiting readers.
func (p *Pager) UnblockPins() {
	m := &p.mvcc
	m.mu.Lock()
	m.blocked = false
	m.cond.Broadcast()
	m.mu.Unlock()
}

// BeginMutation starts the single writer's copy-on-write bracket: page
// writes until EndMutation capture pre-images superseded at the returned
// target epoch. Mutations do not nest; the engines serialize writers on
// their own mutex.
func (p *Pager) BeginMutation() uint64 {
	m := &p.mvcc
	m.mu.Lock()
	defer m.mu.Unlock()
	m.init()
	// A mutation abandoned by a failed apply (the caller surfaces the
	// error; recovery is the journal's job) leaves mutActive set; the next
	// bracket reuses the same target so its pre-images stay first-wins.
	m.mutActive = true
	m.mutTarget = m.epoch + 1
	m.newPages = make(map[pageKey]struct{})
	return m.mutTarget
}

// EndMutation commits the bracket: the target epoch becomes the current
// committed epoch, visible to subsequent PinSnapshot calls. It returns
// the committed epoch.
func (p *Pager) EndMutation() uint64 {
	m := &p.mvcc
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.mutActive {
		return m.epoch
	}
	m.epoch = m.mutTarget
	m.mutActive = false
	m.newPages = nil
	m.pruneLocked()
	return m.epoch
}

// AdvanceEpoch bumps the committed epoch outside a mutation bracket.
// Load uses it after rebuilding the database under BlockPins, so stale
// snapshot handles (epoch < current) are distinguishable from fresh ones.
func (p *Pager) AdvanceEpoch() uint64 {
	m := &p.mvcc
	m.mu.Lock()
	defer m.mu.Unlock()
	m.init()
	m.epoch++
	m.mutActive = false
	return m.epoch
}

// mvccReset drops all version and mutation state (crash recovery: the
// in-memory chains died with the machine; replay re-brackets each
// committed journal record, rebuilding a consistent latest epoch).
func (p *Pager) mvccReset() {
	m := &p.mvcc
	m.mu.Lock()
	defer m.mu.Unlock()
	m.init()
	m.versions = make(map[pageKey][]pageVersion)
	m.mutActive = false
	m.mutTarget = 0
}

// capture records a page's pre-image, superseded at the active mutation's
// target epoch. First capture per page per target wins: a later write to
// the same page in the same mutation must not overwrite the pre-image
// with a half-mutated one. No-op outside a mutation bracket (bulk Load
// runs under BlockPins instead — versioning it would pin the whole
// database in memory). Callers hold p.mu; data must be an immutable
// buffer (the replaced pool/disk buffer, or zeroPage).
func (p *Pager) capture(key pageKey, data []byte) {
	m := &p.mvcc
	m.mu.Lock()
	if !m.mutActive {
		m.mu.Unlock()
		return
	}
	if _, isNew := m.newPages[key]; isNew {
		m.mu.Unlock()
		return
	}
	vs := m.versions[key]
	if n := len(vs); n > 0 && vs[n-1].supersededAt >= m.mutTarget {
		m.mu.Unlock()
		return
	}
	m.versions[key] = append(vs, pageVersion{supersededAt: m.mutTarget, data: data})
	m.cCapture.Inc()
	m.mu.Unlock()
}

// mutationActive reports whether a BeginMutation bracket is open.
func (p *Pager) mutationActive() bool {
	m := &p.mvcc
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.mutActive
}

// noteAppend records a page appended inside the active mutation, exempting
// its writes from pre-image capture. Callers hold p.mu.
func (p *Pager) noteAppend(key pageKey) {
	m := &p.mvcc
	m.mu.Lock()
	if m.mutActive {
		m.newPages[key] = struct{}{}
	}
	m.mu.Unlock()
}

// zeroPage backs pre-images of pages that were appended but never
// written. It is shared and must never be mutated.
var zeroPage = make([]byte, PageSize)

// preImage resolves a page's current content for capture: the pool frame
// if cached, else the disk image, else a zero page. Caller holds p.mu.
func (p *Pager) preImage(f *file, key pageKey) []byte {
	if i, ok := p.table[key]; ok {
		return p.frames[i].data
	}
	if key.no < uint32(len(f.pages)) && f.pages[key.no] != nil {
		return f.pages[key.no]
	}
	return zeroPage
}

// versionAt returns the content of the page as of epoch, or (nil, false)
// when no retained version covers it and the live page is the answer.
func (p *Pager) versionAt(key pageKey, epoch uint64) ([]byte, bool) {
	m := &p.mvcc
	m.mu.Lock()
	defer m.mu.Unlock()
	vs := m.versions[key]
	// Oldest version superseded strictly after the snapshot epoch is the
	// content that was current at that epoch.
	for i := range vs {
		if vs[i].supersededAt > epoch {
			m.cVRead.Inc()
			return vs[i].data, true
		}
	}
	return nil, false
}

// ReadAt returns the content of a page as of a pinned snapshot epoch.
// The caller must hold a Snap pinned at that epoch (otherwise GC may
// have reclaimed the versions it needs). Like Read, the returned slice
// is read-only and may alias shared buffers. ReadAt(fid, no, LiveEpoch)
// degenerates to Read.
func (p *Pager) ReadAt(fid FileID, no uint32, epoch uint64) ([]byte, error) {
	if epoch == LiveEpoch {
		return p.Read(fid, no)
	}
	key := pageKey{fid, no}
	if data, ok := p.versionAt(key, epoch); ok {
		return data, nil
	}
	// No version covered the epoch, so the live page looked like the
	// answer — but that check races the writer: between versionAt and
	// Read the mutation may capture this page's pre-image and overwrite
	// (or truncate) it. The writer always captures before it mutates,
	// both under the pool latch, so if our live read observed mutated
	// state the capture is visible now: recheck and prefer the version.
	// When the recheck finds nothing the live read was genuinely
	// pre-mutation (or the page is unmutated) and both paths agree.
	data, err := p.Read(fid, no)
	if vdata, ok := p.versionAt(key, epoch); ok {
		return vdata, nil
	}
	return data, err
}

// pruneLocked reclaims versions no pinned snapshot can reach: everything
// superseded at or before the lowest pinned epoch. The bound is clamped
// to the committed epoch: a version with supersededAt > epoch was
// captured by the still-open mutation bracket, and a reader may pin the
// committed epoch at any moment and need it — even when no pins are
// held right now. Caller holds mvcc.mu.
func (m *mvccState) pruneLocked() {
	low := m.epoch
	for e := range m.pins {
		if e < low {
			low = e
		}
	}
	if len(m.versions) == 0 {
		return
	}
	reclaimed := int64(0)
	for key, vs := range m.versions {
		i := 0
		for i < len(vs) && vs[i].supersededAt <= low {
			i++
		}
		if i == 0 {
			continue
		}
		reclaimed += int64(i)
		if i == len(vs) {
			delete(m.versions, key)
		} else {
			m.versions[key] = append([]pageVersion(nil), vs[i:]...)
		}
	}
	if reclaimed > 0 {
		m.cGC.Add(reclaimed)
	}
}

// GC runs one reclamation pass and returns the number of versions still
// retained.
func (p *Pager) GC() int {
	m := &p.mvcc
	m.mu.Lock()
	defer m.mu.Unlock()
	m.init()
	m.pruneLocked()
	n := 0
	for _, vs := range m.versions {
		n += len(vs)
	}
	return n
}

// StartGC starts the background version reclaimer, pruning every
// interval. It complements the inline pruning on unpin/commit: with a
// long-pinned snapshot, versions that fall below a later, shorter pin
// are reclaimed without waiting for the long reader. StopGC (or Close)
// stops it. Starting twice restarts the ticker.
func (p *Pager) StartGC(interval time.Duration) {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	p.StopGC()
	m := &p.mvcc
	m.mu.Lock()
	m.init()
	stop := make(chan struct{})
	done := make(chan struct{})
	m.gcStop, m.gcDone = stop, done
	m.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				p.GC()
			}
		}
	}()
}

// StopGC stops the background reclaimer, if running.
func (p *Pager) StopGC() {
	m := &p.mvcc
	m.mu.Lock()
	stop, done := m.gcStop, m.gcDone
	m.gcStop, m.gcDone = nil, nil
	m.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// setSnapMetrics binds the snapshot counters; called from SetMetrics
// with p.mu held.
func (p *Pager) setSnapMetrics(reg *metrics.Registry) {
	m := &p.mvcc
	m.mu.Lock()
	m.cPin = reg.Counter("pager.snap.pin")
	m.cCapture = reg.Counter("pager.snap.capture")
	m.cVRead = reg.Counter("pager.snap.read.version")
	m.cGC = reg.Counter("pager.snap.gc")
	m.mu.Unlock()
}
