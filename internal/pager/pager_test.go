package pager

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"testing/quick"
)

func TestCreateAppendReadWrite(t *testing.T) {
	p := New(4)
	f := p.Create("t")
	no, err := p.Append(f)
	if err != nil || no != 0 {
		t.Fatalf("Append = %d, %v", no, err)
	}
	data := bytes.Repeat([]byte("x"), 100)
	if err := p.Write(f, no, data); err != nil {
		t.Fatal(err)
	}
	got, err := p.Read(f, no)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:100], data) {
		t.Fatal("read-back mismatch")
	}
	if len(got) != PageSize {
		t.Fatalf("page size %d", len(got))
	}
}

func TestReadWriteErrors(t *testing.T) {
	p := New(4)
	f := p.Create("t")
	if _, err := p.Read(f, 0); err == nil {
		t.Fatal("read beyond EOF succeeded")
	}
	if err := p.Write(f, 5, nil); err == nil {
		t.Fatal("write beyond EOF succeeded")
	}
	if err := p.Write(f, 0, make([]byte, PageSize+1)); err == nil {
		t.Fatal("oversized write succeeded")
	}
	if _, err := p.Append(FileID(99)); err == nil {
		t.Fatal("append to unknown file succeeded")
	}
	if _, err := p.Read(FileID(99), 0); err == nil {
		t.Fatal("read of unknown file succeeded")
	}
}

func TestBufferPoolHitsAndEviction(t *testing.T) {
	p := New(2) // tiny pool
	f := p.Create("t")
	for i := 0; i < 4; i++ {
		no, _ := p.Append(f)
		p.Write(f, no, []byte{byte(i)})
	}
	p.ColdReset()
	p.ResetStats()

	p.Read(f, 0) // miss
	p.Read(f, 0) // hit
	s := p.Stats()
	if s.Reads != 1 || s.Hits != 1 {
		t.Fatalf("reads=%d hits=%d", s.Reads, s.Hits)
	}
	// Touch enough pages to evict page 0 from the 2-frame pool.
	p.Read(f, 1)
	p.Read(f, 2)
	p.Read(f, 3)
	p.ResetStats()
	p.Read(f, 0)
	if got := p.Stats(); got.Reads != 1 {
		t.Fatalf("page 0 should have been evicted; reads=%d hits=%d", got.Reads, got.Hits)
	}
}

func TestColdResetForcesMisses(t *testing.T) {
	p := New(8)
	f := p.Create("t")
	no, _ := p.Append(f)
	p.Write(f, no, []byte("hello"))
	p.Read(f, no)
	p.ResetStats()
	p.Read(f, no) // warm: hit
	if s := p.Stats(); s.Hits != 1 || s.Reads != 0 {
		t.Fatalf("warm read: %+v", s)
	}
	p.ColdReset()
	p.ResetStats()
	got, _ := p.Read(f, no) // cold: miss
	if s := p.Stats(); s.Reads != 1 || s.Hits != 0 {
		t.Fatalf("cold read: %+v", s)
	}
	if string(got[:5]) != "hello" {
		t.Fatal("data lost across ColdReset")
	}
}

func TestTruncate(t *testing.T) {
	p := New(4)
	f := p.Create("t")
	p.Append(f)
	p.Append(f)
	if p.NumPages(f) != 2 {
		t.Fatal("NumPages before truncate")
	}
	if err := p.Truncate(f); err != nil {
		t.Fatal(err)
	}
	if p.NumPages(f) != 0 {
		t.Fatal("NumPages after truncate")
	}
	if _, err := p.Read(f, 0); err == nil {
		t.Fatal("stale cached page served after truncate")
	}
	if err := p.Truncate(FileID(99)); err == nil {
		t.Fatal("truncate of unknown file succeeded")
	}
}

func TestHeapRoundTrip(t *testing.T) {
	p := New(16)
	h := NewHeap(p, "heap")
	recs := [][]byte{
		[]byte("first"),
		[]byte(""),
		bytes.Repeat([]byte("big"), 10000), // spans multiple pages
		[]byte("last"),
	}
	var rids []RID
	for _, r := range recs {
		rid, err := h.Insert(r)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if h.Count() != len(recs) {
		t.Fatalf("Count = %d", h.Count())
	}
	for i, rid := range rids {
		got, err := h.Get(context.Background(), rid)
		if err != nil {
			t.Fatalf("Get(%d): %v", rid, err)
		}
		if !bytes.Equal(got, recs[i]) {
			t.Fatalf("record %d mismatch: %d vs %d bytes", i, len(got), len(recs[i]))
		}
	}
}

func TestHeapScanOrderAndEarlyStop(t *testing.T) {
	p := New(16)
	h := NewHeap(p, "heap")
	for i := 0; i < 10; i++ {
		h.Insert([]byte(fmt.Sprintf("rec%d", i)))
	}
	var seen []string
	h.Scan(context.Background(), func(_ RID, rec []byte) bool {
		seen = append(seen, string(rec))
		return len(seen) < 4
	})
	if len(seen) != 4 || seen[0] != "rec0" || seen[3] != "rec3" {
		t.Fatalf("scan = %v", seen)
	}
}

func TestHeapFlushAndColdRead(t *testing.T) {
	p := New(16)
	h := NewHeap(p, "heap")
	rid, _ := h.Insert([]byte("buffered"))
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
	p.ColdReset()
	got, err := h.Get(context.Background(), rid)
	if err != nil || string(got) != "buffered" {
		t.Fatalf("Get after flush+cold = %q, %v", got, err)
	}
	// Continue inserting into the same tail page after Flush.
	rid2, _ := h.Insert([]byte("more"))
	got2, err := h.Get(context.Background(), rid2)
	if err != nil || string(got2) != "more" {
		t.Fatalf("Get of post-flush record = %q, %v", got2, err)
	}
}

func TestHeapGetErrors(t *testing.T) {
	p := New(16)
	h := NewHeap(p, "heap")
	h.Insert([]byte("x"))
	if _, err := h.Get(context.Background(), RID(1<<40)); err == nil {
		t.Fatal("Get far beyond end succeeded")
	}
}

func TestHeapProperty(t *testing.T) {
	p := New(64)
	h := NewHeap(p, "heap")
	type entry struct {
		rid RID
		val []byte
	}
	var entries []entry
	f := func(data []byte) bool {
		rid, err := h.Insert(data)
		if err != nil {
			return false
		}
		entries = append(entries, entry{rid, append([]byte(nil), data...)})
		// Every previously inserted record must still read back intact.
		for _, e := range entries {
			got, err := h.Get(context.Background(), e.rid)
			if err != nil || !bytes.Equal(got, e.val) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsIO(t *testing.T) {
	s := Stats{Reads: 3, Writes: 4, Hits: 9}
	if s.IO() != 7 {
		t.Fatalf("IO = %d", s.IO())
	}
}

func TestDefaultPool(t *testing.T) {
	p := New(0)
	if p.capacity != DefaultPoolPages {
		t.Fatalf("default capacity = %d", p.capacity)
	}
}
