package pager

import (
	"encoding/binary"
	"testing"

	"xbench/internal/metrics"
)

// buildFile creates a file of n pages, each stamped with its page number,
// flushed to "disk" so later reads are genuine misses.
func buildFile(t *testing.T, p *Pager, name string, n int) FileID {
	t.Helper()
	f := p.Create(name)
	buf := make([]byte, 8)
	for i := 0; i < n; i++ {
		no, err := p.Append(f)
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint64(buf, uint64(i))
		if err := p.Write(f, no, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Sync(f); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestScanResistance is the policy's reason to exist: a one-pass
// sequential scan of a file much larger than the pool must not evict a
// hot working set that was touched repeatedly before the scan.
func TestScanResistance(t *testing.T) {
	const (
		pool = 64
		hotN = 16
	)
	p := New(pool)
	hot := buildFile(t, p, "hot", hotN)
	big := buildFile(t, p, "big", 4*pool) // 4x the pool: guaranteed thrash without protection
	p.ColdReset()

	// Heat the working set: three rounds drives each hot page to maxRef.
	for round := 0; round < 3; round++ {
		for i := 0; i < hotN; i++ {
			if _, err := p.Read(hot, uint32(i)); err != nil {
				t.Fatal(err)
			}
		}
	}

	// One-pass sequential scan of the big file.
	for i := 0; i < 4*pool; i++ {
		if _, err := p.Read(big, uint32(i)); err != nil {
			t.Fatal(err)
		}
	}

	// Every hot page must still be resident.
	p.ResetStats()
	for i := 0; i < hotN; i++ {
		if _, err := p.Read(hot, uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	s := p.Stats()
	if s.Reads != 0 || s.Hits != int64(hotN) {
		t.Fatalf("hot set evicted by scan: re-reads reads=%d hits=%d (want 0/%d)",
			s.Reads, s.Hits, hotN)
	}
}

// TestPlainClockThrashesOnScan pins the counterfactual: with scan
// protection off (the pre-PR-7 policy) the same scan wipes the hot set.
// If this starts passing, the legacy mode is no longer legacy.
func TestPlainClockThrashesOnScan(t *testing.T) {
	const (
		pool = 64
		hotN = 16
	)
	p := New(pool)
	p.SetScanProtection(false)
	hot := buildFile(t, p, "hot", hotN)
	big := buildFile(t, p, "big", 4*pool)
	p.ColdReset()

	for round := 0; round < 3; round++ {
		for i := 0; i < hotN; i++ {
			p.Read(hot, uint32(i))
		}
	}
	for i := 0; i < 4*pool; i++ {
		p.Read(big, uint32(i))
	}

	p.ResetStats()
	for i := 0; i < hotN; i++ {
		p.Read(hot, uint32(i))
	}
	if s := p.Stats(); s.Reads == 0 {
		t.Fatalf("plain CLOCK unexpectedly scan-resistant: hits=%d", s.Hits)
	}
}

// TestReadaheadTurnsScanMissesIntoHits checks that a detected sequential
// stream prefetches ahead of the demand reads: most of the scan's reads
// are served by prefetched frames, and the stats/metrics agree.
func TestReadaheadTurnsScanMissesIntoHits(t *testing.T) {
	const pages = 256
	p := New(64)
	f := buildFile(t, p, "seq", pages)
	p.ColdReset()
	p.ResetStats()

	for i := 0; i < pages; i++ {
		got, err := p.Read(f, uint32(i))
		if err != nil {
			t.Fatal(err)
		}
		if n := binary.LittleEndian.Uint64(got[:8]); n != uint64(i) {
			t.Fatalf("page %d holds %d (prefetch corruption)", i, n)
		}
	}

	s := p.Stats()
	if s.Prefetched == 0 {
		t.Fatal("sequential scan issued no readahead")
	}
	if s.PrefetchHits == 0 {
		t.Fatal("no demand read was served by a prefetched frame")
	}
	// Demand misses + hits must cover the whole scan; with readahead the
	// large majority of demand reads should be hits.
	if s.Hits < pages/2 {
		t.Fatalf("readahead ineffective: hits=%d of %d pages (reads=%d prefetched=%d)",
			s.Hits, pages, s.Reads, s.Prefetched)
	}
	// Every page is still read from disk exactly once (no duplicated I/O).
	if s.Reads != pages {
		t.Fatalf("scan cost %d disk reads for %d pages", s.Reads, pages)
	}
}

// TestReadaheadDisabledForTinyPools: pools too small for a stream ring
// must behave exactly like the unprotected pager on scans (no prefetch
// self-pollution).
func TestReadaheadDisabledForTinyPools(t *testing.T) {
	p := New(4) // readaheadWindow: min(8, 4/4=1) -> disabled
	f := buildFile(t, p, "seq", 32)
	p.ColdReset()
	p.ResetStats()
	for i := 0; i < 32; i++ {
		if _, err := p.Read(f, uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s := p.Stats(); s.Prefetched != 0 {
		t.Fatalf("tiny pool prefetched %d pages", s.Prefetched)
	}
}

// TestScanProtectionToggle: turning protection off and back on must not
// corrupt cached data or the frame table.
func TestScanProtectionToggle(t *testing.T) {
	p := New(32)
	f := buildFile(t, p, "t", 16)
	for i := 0; i < 16; i++ {
		p.Read(f, uint32(i))
	}
	p.SetScanProtection(false)
	p.SetScanProtection(true)
	for i := 0; i < 16; i++ {
		got, err := p.Read(f, uint32(i))
		if err != nil {
			t.Fatal(err)
		}
		if n := binary.LittleEndian.Uint64(got[:8]); n != uint64(i) {
			t.Fatalf("page %d holds %d after toggle", i, n)
		}
	}
}

// TestStreamResetOnRandomAccess: a random jump breaks the streak and
// releases the ring; the next sequential run re-detects from scratch.
func TestStreamResetOnRandomAccess(t *testing.T) {
	p := New(64)
	f := buildFile(t, p, "mix", 128)
	p.ColdReset()

	for i := 0; i < 10; i++ { // sequential: stream detected
		p.Read(f, uint32(i))
	}
	p.Read(f, 100) // jump: streak broken
	p.ResetStats()
	for i := 40; i < 44; i++ { // too short to re-trigger prefetch until threshold
		p.Read(f, uint32(i))
	}
	// Re-detection happens at the threshold-th consecutive miss; just
	// assert the pager stayed coherent and served correct data.
	got, err := p.Read(f, 44)
	if err != nil {
		t.Fatal(err)
	}
	if n := binary.LittleEndian.Uint64(got[:8]); n != 44 {
		t.Fatalf("page 44 holds %d", n)
	}
}

// TestEvictionMetrics: the pager.evict.* / pager.readahead.* counters
// must fire alongside the Stats fields.
func TestEvictionMetrics(t *testing.T) {
	p := New(32)
	reg := metrics.NewRegistry()
	p.SetMetrics(reg)
	f := buildFile(t, p, "seq", 128)
	p.ColdReset()
	for i := 0; i < 128; i++ {
		if _, err := p.Read(f, uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["pager.readahead.issued"] == 0 {
		t.Fatal("pager.readahead.issued never fired")
	}
	if snap.Counters["pager.readahead.hit"] == 0 {
		t.Fatal("pager.readahead.hit never fired")
	}
	if snap.Counters["pager.evict"] == 0 {
		t.Fatal("pager.evict never fired")
	}
	if snap.Counters["pager.evict.scan"] == 0 {
		t.Fatal("pager.evict.scan never fired on a 4x-pool scan")
	}
}
