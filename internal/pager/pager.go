// Package pager simulates the disk subsystem beneath every storage engine:
// page-addressed files, a write-back CLOCK buffer pool, and I/O accounting.
//
// The paper measures cold-run times on a 2 GHz / 1 GB Windows XP machine.
// We cannot reproduce 2004 hardware, so the engines run over this shared
// pager and the benchmark reports wall-clock time plus page I/O counts
// (the harness converts I/O to time with an explicit seek-cost model).
//
// The pool is write-back: Write dirties a frame without disk I/O; a disk
// write is counted when a dirty frame is evicted, synced (the fsync
// analog used for per-file durability during multi-document loads) or
// flushed by ColdReset. Repeated updates to a hot page — B+tree leaves
// during index builds — are therefore absorbed, as on a real DBMS.
// ColdReset flushes and drops the pool, reproducing the paper's "cold
// run ... to prevent caching effects" methodology.
//
// Latching: the pool is guarded by one reader/writer latch. Pool hits —
// the overwhelmingly common case for warm multi-client workloads — take
// the latch shared, so concurrent readers proceed in parallel; misses,
// writes, syncs and ColdReset take it exclusive. I/O statistics are
// atomic counters, so Stats (and the engines' PageIO) never block behind
// a query. The CLOCK reference bit is set with an atomic store under the
// shared latch; all other frame state changes happen under the exclusive
// latch.
package pager

import (
	"fmt"
	"sync"
	"sync/atomic"

	"xbench/internal/metrics"
)

// PageSize is the simulated page size in bytes.
const PageSize = 8192

// FileID identifies a paged file within a Pager.
type FileID uint32

// Stats accumulates simulated I/O counters.
type Stats struct {
	// Reads counts page reads that missed the buffer pool (disk reads).
	Reads int64
	// Writes counts page writes to disk (eviction, sync, cold flush).
	Writes int64
	// Hits counts page reads served from the buffer pool.
	Hits int64
	// ReadFaults counts injected transient read faults (fault.go).
	ReadFaults int64
	// ReadRetries counts retry attempts made after transient read faults.
	ReadRetries int64
	// TornWrites counts in-place page writes that tore (a prefix reached
	// disk). Silent until recovery repairs them from the WAL.
	TornWrites int64
	// WALAppends counts write-ahead log records appended.
	WALAppends int64
}

// IO returns total disk operations (reads + writes).
func (s Stats) IO() int64 { return s.Reads + s.Writes }

// statCells is the live, concurrently-updated form of Stats. Hits are
// counted outside any latch; the rest under the exclusive latch — atomics
// keep Stats() coherent either way.
type statCells struct {
	reads       atomic.Int64
	writes      atomic.Int64
	hits        atomic.Int64
	readFaults  atomic.Int64
	readRetries atomic.Int64
	tornWrites  atomic.Int64
	walAppends  atomic.Int64
}

// Pager owns a set of simulated files and a shared buffer pool.
// It is safe for concurrent use: reads that hit the pool share the
// latch; everything that changes pool structure is exclusive.
type Pager struct {
	mu    sync.RWMutex
	files map[FileID]*file
	next  FileID
	stats statCells

	// buffer pool (CLOCK replacement, write-back)
	capacity int
	frames   []frame
	table    map[pageKey]int // pageKey -> frame index
	hand     int

	// fault injection + write-ahead log (fault.go, wal.go); nil when the
	// disk is perfect.
	fault *faultState
	// closed is set by Close; every subsequent file operation fails with
	// ErrClosed.
	closed bool
	// copyReads returns defensive copies from Read (forced on by fault
	// injection, optional otherwise — see the Read aliasing contract).
	copyReads bool

	// reg receives per-event counters alongside stats; the cached
	// counters keep the hot paths at one atomic add per event. All are
	// nil (and inert) until SetMetrics is called.
	reg        *metrics.Registry
	cRead      *metrics.Counter // pager.read: disk reads (pool misses)
	cWrite     *metrics.Counter // pager.write: disk writes (write-backs)
	cHit       *metrics.Counter // pager.hit: pool hits
	cEvict     *metrics.Counter // pager.evict: frames evicted by CLOCK
	cWALAppend *metrics.Counter // pager.wal.append: WAL records
	cReadFault *metrics.Counter // pager.read.fault: injected transient faults
	cReadRetry *metrics.Counter // pager.read.retry: retry attempts
	cTornWrite *metrics.Counter // pager.write.torn: torn in-place writes
}

type pageKey struct {
	fid FileID
	no  uint32
}

type frame struct {
	key  pageKey
	data []byte
	// used is the CLOCK reference bit. It is the one frame field touched
	// under the shared latch (atomically, by concurrent pool hits); the
	// exclusive latch covers every other access.
	used  uint32
	dirty bool
	valid bool
}

type file struct {
	name  string
	pages [][]byte // the "disk"; nil entries were never written back
}

// DefaultPoolPages is the default buffer pool capacity (4 MB of pages),
// deliberately small relative to the Large databases so cold scans are
// disk-bound, as they were on the paper's 1 GB machine.
const DefaultPoolPages = 512

// New returns a pager with the given buffer pool capacity in pages
// (<= 0 selects DefaultPoolPages).
func New(poolPages int) *Pager {
	if poolPages <= 0 {
		poolPages = DefaultPoolPages
	}
	return &Pager{
		files:    make(map[FileID]*file),
		capacity: poolPages,
		frames:   make([]frame, poolPages),
		table:    make(map[pageKey]int, poolPages),
	}
}

// SetMetrics attaches a metrics registry: every subsequent disk read,
// write, pool hit, eviction, WAL append and fault retry is counted under
// "pager.*" names in addition to Stats. Layers above the pager (btree,
// relational, the engines) share the same registry via Metrics.
func (p *Pager) SetMetrics(reg *metrics.Registry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.reg = reg
	p.cRead = reg.Counter("pager.read")
	p.cWrite = reg.Counter("pager.write")
	p.cHit = reg.Counter("pager.hit")
	p.cEvict = reg.Counter("pager.evict")
	p.cWALAppend = reg.Counter("pager.wal.append")
	p.cReadFault = reg.Counter("pager.read.fault")
	p.cReadRetry = reg.Counter("pager.read.retry")
	p.cTornWrite = reg.Counter("pager.write.torn")
}

// Metrics returns the attached registry (nil, and safe to use, when
// SetMetrics was never called).
func (p *Pager) Metrics() *metrics.Registry {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.reg
}

// ErrClosed is returned by file operations on a pager after Close.
var ErrClosed = fmt.Errorf("pager: closed")

// Create makes a new empty file and returns its id. On a closed pager it
// returns an unregistered id whose operations fail with "unknown file".
func (p *Pager) Create(name string) FileID {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.next
	p.next++
	if p.closed {
		return id
	}
	p.files[id] = &file{name: name}
	return id
}

// Close releases the pager's simulated file handles, buffer pool frames
// and WAL/fault state. Dirty pages are flushed best-effort first (a
// crashed pager simply drops them). Double-Close is safe; any file
// operation after Close fails with ErrClosed.
func (p *Pager) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	for i := range p.frames {
		if p.frames[i].valid && p.frames[i].dirty {
			_ = p.writeBack(&p.frames[i]) // best-effort, like ColdReset
		}
	}
	p.closed = true
	p.files = make(map[FileID]*file)
	p.frames = nil
	p.table = nil
	p.fault = nil
	return nil
}

// OpenFiles returns the number of simulated file handles currently open
// (0 after Close). It is the observable the fd-leak tests assert on.
func (p *Pager) OpenFiles() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.files)
}

// Truncate discards all pages of a file, including cached ones. While
// crashed it fails: a dead machine cannot clean up after itself.
func (p *Pager) Truncate(fid FileID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	f, ok := p.files[fid]
	if !ok {
		return fmt.Errorf("pager: unknown file %d", fid)
	}
	// Journal the truncation so recovery does not resurrect old pages.
	if err := p.walAppend(walKindTruncate, pageKey{fid: fid}, nil); err != nil {
		return err
	}
	f.pages = nil
	for i := range p.frames {
		if p.frames[i].valid && p.frames[i].key.fid == fid {
			delete(p.table, p.frames[i].key)
			p.frames[i] = frame{}
		}
	}
	return nil
}

// NumPages returns the page count of a file.
func (p *Pager) NumPages(fid FileID) uint32 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if f, ok := p.files[fid]; ok {
		return uint32(len(f.pages))
	}
	return 0
}

// Append adds a new zeroed page to the file and returns its number. The
// page starts life dirty in the pool; its disk write is counted when it
// is evicted or synced.
func (p *Pager) Append(fid FileID) (uint32, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return 0, ErrClosed
	}
	f, ok := p.files[fid]
	if !ok {
		return 0, fmt.Errorf("pager: unknown file %d", fid)
	}
	if p.fault != nil && p.fault.crashed {
		return 0, ErrCrashed
	}
	no := uint32(len(f.pages))
	f.pages = append(f.pages, nil) // reserve the slot; data arrives on write-back
	if err := p.install(pageKey{fid, no}, make([]byte, PageSize), true); err != nil {
		return 0, err
	}
	return no, nil
}

// Read returns the content of a page. By default the returned slice
// aliases the buffer-pool copy; callers must treat it as read-only and
// use Write to mutate pages — mutating the returned slice corrupts the
// pool (and, after a write-back, the simulated disk itself, since clean
// frames alias their on-disk image). SetCopyReads(true) removes the
// hazard by returning defensive copies; fault injection forces it on
// because WAL checksums depend on unmutated frames.
//
// Concurrent readers of a returned slice are safe even across eviction:
// page buffers are replaced wholesale, never mutated in place, so a
// reader holds a consistent (possibly superseded) version of the page.
//
// Transient read faults are retried internally with exponential backoff,
// up to MaxReadAttempts attempts; the retries are counted in Stats. A
// page that faults on every attempt returns a fatal ErrReadFault.
func (p *Pager) Read(fid FileID, no uint32) ([]byte, error) {
	for attempt := 1; ; attempt++ {
		data, err := p.readOnce(fid, no)
		if err == nil || !IsTransient(err) {
			return data, err
		}
		if attempt >= MaxReadAttempts {
			return nil, fmt.Errorf("pager: file %d page %d: %w (%d attempts)",
				fid, no, ErrReadFault, attempt)
		}
		p.retryBackoff(attempt)
	}
}

// readOnce performs one read attempt through the buffer pool: a hit is
// served under the shared latch; a miss upgrades to the exclusive latch
// (re-checking the table, since another reader may have installed the
// page in the window) and fetches from disk.
func (p *Pager) readOnce(fid FileID, no uint32) ([]byte, error) {
	key := pageKey{fid, no}

	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return nil, ErrClosed
	}
	if p.fault != nil && p.fault.crashed {
		p.mu.RUnlock()
		return nil, ErrCrashed // even pool hits: the machine is down
	}
	if i, ok := p.table[key]; ok {
		atomic.StoreUint32(&p.frames[i].used, 1)
		data := p.outPage(p.frames[i].data)
		cHit := p.cHit
		p.mu.RUnlock()
		p.stats.hits.Add(1)
		cHit.Inc()
		return data, nil
	}
	p.mu.RUnlock()

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fault != nil && p.fault.crashed {
		return nil, ErrCrashed
	}
	// Another reader may have faulted the page in while we waited.
	if i, ok := p.table[key]; ok {
		p.frames[i].used = 1
		p.stats.hits.Add(1)
		p.cHit.Inc()
		return p.outPage(p.frames[i].data), nil
	}
	f, ok := p.files[fid]
	if !ok || no >= uint32(len(f.pages)) {
		return nil, fmt.Errorf("pager: read beyond end of file %d page %d", fid, no)
	}
	if err := p.diskOp(opRead); err != nil {
		return nil, err
	}
	p.stats.reads.Add(1)
	p.cRead.Inc()
	data := make([]byte, PageSize)
	copy(data, f.pages[no])
	if err := p.install(key, data, false); err != nil {
		return nil, err
	}
	return p.outPage(data), nil
}

// outPage applies the copy-on-read option to a page leaving the pool.
// Callers hold the latch (shared suffices: copyReads only changes under
// the exclusive latch).
func (p *Pager) outPage(data []byte) []byte {
	if !p.copyReads {
		return data
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp
}

// Write replaces the content of an existing page in the pool, marking it
// dirty (write-back: no disk write is counted yet). data longer than
// PageSize is an error; shorter data is zero-padded.
func (p *Pager) Write(fid FileID, no uint32, data []byte) error {
	if len(data) > PageSize {
		return fmt.Errorf("pager: write of %d bytes exceeds page size", len(data))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	f, ok := p.files[fid]
	if !ok || no >= uint32(len(f.pages)) {
		return fmt.Errorf("pager: write beyond end of file %d page %d", fid, no)
	}
	if p.fault != nil && p.fault.crashed {
		return ErrCrashed
	}
	pg := make([]byte, PageSize)
	copy(pg, data)
	return p.install(pageKey{fid, no}, pg, true)
}

// install places a page into the buffer pool, evicting with CLOCK and
// writing back the victim if dirty. It fails only when the eviction
// write-back does (crash); the pool is left unchanged then. Callers hold
// the exclusive latch, so frame fields may be accessed plainly here.
func (p *Pager) install(key pageKey, data []byte, dirty bool) error {
	if i, ok := p.table[key]; ok {
		p.frames[i].data = data
		p.frames[i].used = 1
		p.frames[i].dirty = p.frames[i].dirty || dirty
		return nil
	}
	for {
		fr := &p.frames[p.hand]
		if !fr.valid {
			break
		}
		if fr.used != 0 {
			fr.used = 0
			p.hand = (p.hand + 1) % p.capacity
			continue
		}
		if fr.dirty {
			if err := p.writeBack(fr); err != nil {
				return err
			}
		}
		delete(p.table, fr.key)
		p.cEvict.Inc()
		break
	}
	p.frames[p.hand] = frame{key: key, data: data, used: 1, dirty: dirty, valid: true}
	p.table[key] = p.hand
	p.hand = (p.hand + 1) % p.capacity
	return nil
}

// writeBack persists one dirty frame, counting a disk write. With fault
// injection enabled the write is preceded by a WAL record (the durable
// image recovery restores) and may tear: only a prefix reaches the disk,
// silently — the frame is still marked clean, exactly like a real torn
// write that is only discovered at recovery time.
func (p *Pager) writeBack(fr *frame) error {
	f := p.files[fr.key.fid]
	if f == nil || fr.key.no >= uint32(len(f.pages)) {
		return nil // file truncated underneath the frame
	}
	if err := p.walAppend(walKindPage, fr.key, fr.data); err != nil {
		return err
	}
	if err := p.diskOp(opWrite); err != nil {
		return err
	}
	p.stats.writes.Add(1)
	p.cWrite.Inc()
	if n, torn := p.tornWrite(); torn {
		p.stats.tornWrites.Add(1)
		p.cTornWrite.Inc()
		pg := make([]byte, PageSize)
		copy(pg[:n], fr.data[:n])
		f.pages[fr.key.no] = pg
		fr.dirty = false
		return nil
	}
	f.pages[fr.key.no] = fr.data
	fr.dirty = false
	return nil
}

// Sync writes back every dirty page of one file (the fsync analog: one
// disk write per dirty page). Loading a database of many small files
// syncs per file, which is exactly the per-document I/O that dominates
// DC/MD bulk loading in the paper.
func (p *Pager) Sync(fid FileID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	for i := range p.frames {
		if p.frames[i].valid && p.frames[i].dirty && p.frames[i].key.fid == fid {
			if err := p.writeBack(&p.frames[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// SyncAll writes back every dirty page of every file.
func (p *Pager) SyncAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	for i := range p.frames {
		if p.frames[i].valid && p.frames[i].dirty {
			if err := p.writeBack(&p.frames[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// ColdReset flushes dirty pages and empties the buffer pool (the paper's
// cold-run methodology). Disk contents and I/O statistics are preserved.
// The flush is best-effort: on a crashed pager the dirty frames are
// simply dropped, as they would be in a real power loss.
//
// ColdReset takes the exclusive latch, so it quiesces: page reads in
// flight complete first, and reads issued during the reset wait for it.
func (p *Pager) ColdReset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.frames {
		if p.frames[i].valid && p.frames[i].dirty {
			_ = p.writeBack(&p.frames[i]) // best-effort; crash loses the frame
		}
		p.frames[i] = frame{}
	}
	p.table = make(map[pageKey]int, p.capacity)
	p.hand = 0
}

// Stats returns the accumulated I/O counters. It is lock-free and safe
// to call concurrently with queries; the fields are read individually,
// so a snapshot taken mid-operation may be skewed by the op in flight.
func (p *Pager) Stats() Stats {
	return Stats{
		Reads:       p.stats.reads.Load(),
		Writes:      p.stats.writes.Load(),
		Hits:        p.stats.hits.Load(),
		ReadFaults:  p.stats.readFaults.Load(),
		ReadRetries: p.stats.readRetries.Load(),
		TornWrites:  p.stats.tornWrites.Load(),
		WALAppends:  p.stats.walAppends.Load(),
	}
}

// ResetStats zeroes the I/O counters (e.g. between benchmark phases).
func (p *Pager) ResetStats() {
	p.stats.reads.Store(0)
	p.stats.writes.Store(0)
	p.stats.hits.Store(0)
	p.stats.readFaults.Store(0)
	p.stats.readRetries.Store(0)
	p.stats.tornWrites.Store(0)
	p.stats.walAppends.Store(0)
}
