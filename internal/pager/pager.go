// Package pager simulates the disk subsystem beneath every storage engine:
// page-addressed files, a write-back CLOCK buffer pool, and I/O accounting.
//
// The paper measures cold-run times on a 2 GHz / 1 GB Windows XP machine.
// We cannot reproduce 2004 hardware, so the engines run over this shared
// pager and the benchmark reports wall-clock time plus page I/O counts
// (the harness converts I/O to time with an explicit seek-cost model).
//
// The pool is write-back: Write dirties a frame without disk I/O; a disk
// write is counted when a dirty frame is evicted, synced (the fsync
// analog used for per-file durability during multi-document loads) or
// flushed by ColdReset. Repeated updates to a hot page — B+tree leaves
// during index builds — are therefore absorbed, as on a real DBMS.
// ColdReset flushes and drops the pool, reproducing the paper's "cold
// run ... to prevent caching effects" methodology.
//
// Latching: the pool is guarded by one reader/writer latch. Pool hits —
// the overwhelmingly common case for warm multi-client workloads — take
// the latch shared, so concurrent readers proceed in parallel; misses,
// writes, syncs and ColdReset take it exclusive. I/O statistics are
// atomic counters, so Stats (and the engines' PageIO) never block behind
// a query. The GCLOCK reference count is bumped with an atomic CAS under
// the shared latch; all other frame state changes happen under the
// exclusive latch.
//
// Eviction (DESIGN.md §13): the pool is scan-resistant. Replacement is
// GCLOCK — a CLOCK hand over per-frame reference *counts* capped at
// maxRef, so repeatedly-hit pages survive several hand sweeps (ARC-style
// frequency protection) while one-touch pages decay to victims in one.
// On top of that, consecutive read misses on a file are detected as a
// sequential stream: stream pages recycle a small ring of frames the
// stream itself owns instead of running the hand, so a one-pass scan of
// a file larger than the pool evicts its own previous pages and leaves
// the hot working set alone — and each detected stream prefetches the
// next ReadaheadWindow pages in one batch, so the scan's demand reads
// become pool hits. SetScanProtection(false) restores the plain CLOCK
// of earlier revisions (maxRef 1, no streams, no readahead); the perf
// baseline cells measure exactly that before/after pair.
package pager

import (
	"fmt"
	"sync"
	"sync/atomic"

	"xbench/internal/metrics"
)

// PageSize is the simulated page size in bytes.
const PageSize = 8192

// FileID identifies a paged file within a Pager.
type FileID uint32

// Stats accumulates simulated I/O counters.
type Stats struct {
	// Reads counts page reads that missed the buffer pool (disk reads).
	Reads int64
	// Writes counts page writes to disk (eviction, sync, cold flush).
	Writes int64
	// Hits counts page reads served from the buffer pool.
	Hits int64
	// ReadFaults counts injected transient read faults (fault.go).
	ReadFaults int64
	// ReadRetries counts retry attempts made after transient read faults.
	ReadRetries int64
	// TornWrites counts in-place page writes that tore (a prefix reached
	// disk). Silent until recovery repairs them from the WAL.
	TornWrites int64
	// WALAppends counts write-ahead log records appended.
	WALAppends int64
	// Prefetched counts pages read ahead of demand by sequential-stream
	// readahead. They are disk reads (already included in Reads).
	Prefetched int64
	// PrefetchHits counts demand reads served by a prefetched frame.
	PrefetchHits int64
}

// IO returns total disk operations (reads + writes).
func (s Stats) IO() int64 { return s.Reads + s.Writes }

// statCells is the live, concurrently-updated form of Stats. Hits are
// counted outside any latch; the rest under the exclusive latch — atomics
// keep Stats() coherent either way.
type statCells struct {
	reads        atomic.Int64
	writes       atomic.Int64
	hits         atomic.Int64
	readFaults   atomic.Int64
	readRetries  atomic.Int64
	tornWrites   atomic.Int64
	walAppends   atomic.Int64
	prefetched   atomic.Int64
	prefetchHits atomic.Int64
}

// Pager owns a set of simulated files and a shared buffer pool.
// It is safe for concurrent use: reads that hit the pool share the
// latch; everything that changes pool structure is exclusive.
type Pager struct {
	mu    sync.RWMutex
	files map[FileID]*file
	next  FileID
	stats statCells

	// buffer pool (GCLOCK replacement, write-back)
	capacity int
	frames   []frame
	table    map[pageKey]int // pageKey -> frame index
	hand     int

	// scan resistance + readahead (see the package comment). maxRef is 1
	// when protection is off, which degenerates GCLOCK to plain CLOCK.
	scanProtect bool
	maxRef      uint32
	streams     map[FileID]*seqStream

	// fault injection + write-ahead log (fault.go, wal.go); nil when the
	// disk is perfect.
	fault *faultState
	// closed is set by Close; every subsequent file operation fails with
	// ErrClosed.
	closed bool
	// copyReads returns defensive copies from Read (forced on by fault
	// injection, optional otherwise — see the Read aliasing contract).
	copyReads bool

	// reg receives per-event counters alongside stats; the cached
	// counters keep the hot paths at one atomic add per event. All are
	// nil (and inert) until SetMetrics is called.
	reg         *metrics.Registry
	cRead       *metrics.Counter // pager.read: demand disk reads (pool misses)
	cWrite      *metrics.Counter // pager.write: disk writes (write-backs)
	cHit        *metrics.Counter // pager.hit: pool hits
	cEvict      *metrics.Counter // pager.evict: frames evicted (all causes)
	cEvictDirty *metrics.Counter // pager.evict.dirty: evictions that wrote back
	cEvictScan  *metrics.Counter // pager.evict.scan: stream-ring recycles
	cRAIssued   *metrics.Counter // pager.readahead.issued: pages prefetched
	cRAHit      *metrics.Counter // pager.readahead.hit: demand hits on prefetched frames
	cRAWasted   *metrics.Counter // pager.readahead.wasted: prefetched frames evicted unused
	cWALAppend  *metrics.Counter // pager.wal.append: WAL records
	cReadFault  *metrics.Counter // pager.read.fault: injected transient faults
	cReadRetry  *metrics.Counter // pager.read.retry: retry attempts
	cTornWrite  *metrics.Counter // pager.write.torn: torn in-place writes

	// mvcc is the snapshot layer (mvcc.go): commit epochs, pinned
	// snapshots, copy-on-write page versions and their GC.
	mvcc mvccState
}

type pageKey struct {
	fid FileID
	no  uint32
}

type frame struct {
	key  pageKey
	data []byte
	// ref is the GCLOCK reference count, capped at the pager's maxRef.
	// It and prefetched are the two frame fields touched under the shared
	// latch (atomically, by concurrent pool hits); the exclusive latch
	// covers every other access.
	ref uint32
	// prefetched is 1 while the frame holds a readahead page no demand
	// read has consumed yet (cleared atomically by the first hit).
	prefetched uint32
	dirty      bool
	valid      bool
}

// seqStream tracks one file's sequential read pattern: the last missed
// page, the current run of consecutive misses, and the small ring of
// frames the stream recycles once it is detected. All fields are guarded
// by the pager's exclusive latch.
type seqStream struct {
	lastNo   uint32
	started  bool // lastNo is meaningful
	streak   int  // consecutive +1 misses
	ring     []ringSlot
	ringNext int
}

// ringSlot remembers a frame the stream installed and the page it put
// there; if the main hand reassigned the frame meanwhile, the slot is
// stale and the stream falls back to a normal acquisition.
type ringSlot struct {
	idx int
	key pageKey
}

type file struct {
	name  string
	pages [][]byte // the "disk"; nil entries were never written back
}

// DefaultPoolPages is the default buffer pool capacity (4 MB of pages),
// deliberately small relative to the Large databases so cold scans are
// disk-bound, as they were on the paper's 1 GB machine.
const DefaultPoolPages = 512

// New returns a pager with the given buffer pool capacity in pages
// (<= 0 selects DefaultPoolPages).
func New(poolPages int) *Pager {
	if poolPages <= 0 {
		poolPages = DefaultPoolPages
	}
	return &Pager{
		files:       make(map[FileID]*file),
		capacity:    poolPages,
		frames:      make([]frame, poolPages),
		table:       make(map[pageKey]int, poolPages),
		scanProtect: true,
		maxRef:      protectedMaxRef,
		streams:     make(map[FileID]*seqStream),
	}
}

// protectedMaxRef is the GCLOCK reference-count cap with scan protection
// on: a page must be missed by the hand this many times before it is
// evictable, so the hot working set survives several full sweeps.
const protectedMaxRef = 3

// seqThreshold is the number of consecutive +1-page read misses that
// promotes a file's access pattern to a detected sequential stream.
const seqThreshold = 3

// SetScanProtection toggles the scan-resistant GCLOCK policy and
// sequential readahead (both on by default). Off restores the plain
// CLOCK of earlier revisions: reference counts cap at 1, and sequential
// streams are neither detected nor prefetched — the before/after perf
// baseline measures exactly this pair. Cached pages stay cached across
// the toggle; reference counts above a lowered cap decay as the hand
// passes them.
func (p *Pager) SetScanProtection(on bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.scanProtect = on
	if on {
		p.maxRef = protectedMaxRef
	} else {
		p.maxRef = 1
	}
	p.streams = make(map[FileID]*seqStream)
}

// SetMetrics attaches a metrics registry: every subsequent disk read,
// write, pool hit, eviction, WAL append and fault retry is counted under
// "pager.*" names in addition to Stats. Layers above the pager (btree,
// relational, the engines) share the same registry via Metrics.
func (p *Pager) SetMetrics(reg *metrics.Registry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.reg = reg
	p.cRead = reg.Counter("pager.read")
	p.cWrite = reg.Counter("pager.write")
	p.cHit = reg.Counter("pager.hit")
	p.cEvict = reg.Counter("pager.evict")
	p.cEvictDirty = reg.Counter("pager.evict.dirty")
	p.cEvictScan = reg.Counter("pager.evict.scan")
	p.cRAIssued = reg.Counter("pager.readahead.issued")
	p.cRAHit = reg.Counter("pager.readahead.hit")
	p.cRAWasted = reg.Counter("pager.readahead.wasted")
	p.cWALAppend = reg.Counter("pager.wal.append")
	p.cReadFault = reg.Counter("pager.read.fault")
	p.cReadRetry = reg.Counter("pager.read.retry")
	p.cTornWrite = reg.Counter("pager.write.torn")
	p.setSnapMetrics(reg)
}

// Metrics returns the attached registry (nil, and safe to use, when
// SetMetrics was never called).
func (p *Pager) Metrics() *metrics.Registry {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.reg
}

// ErrClosed is returned by file operations on a pager after Close.
var ErrClosed = fmt.Errorf("pager: closed")

// Create makes a new empty file and returns its id. On a closed pager it
// returns an unregistered id whose operations fail with "unknown file".
func (p *Pager) Create(name string) FileID {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.next
	p.next++
	if p.closed {
		return id
	}
	p.files[id] = &file{name: name}
	return id
}

// Close releases the pager's simulated file handles, buffer pool frames
// and WAL/fault state. Dirty pages are flushed best-effort first (a
// crashed pager simply drops them). Double-Close is safe; any file
// operation after Close fails with ErrClosed.
func (p *Pager) Close() error {
	p.StopGC()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	for i := range p.frames {
		if p.frames[i].valid && p.frames[i].dirty {
			_ = p.writeBack(&p.frames[i]) // best-effort, like ColdReset
		}
	}
	p.closed = true
	p.files = make(map[FileID]*file)
	p.frames = nil
	p.table = nil
	p.streams = nil
	p.fault = nil
	return nil
}

// OpenFiles returns the number of simulated file handles currently open
// (0 after Close). It is the observable the fd-leak tests assert on.
func (p *Pager) OpenFiles() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.files)
}

// Truncate discards all pages of a file, including cached ones. While
// crashed it fails: a dead machine cannot clean up after itself.
func (p *Pager) Truncate(fid FileID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	f, ok := p.files[fid]
	if !ok {
		return fmt.Errorf("pager: unknown file %d", fid)
	}
	// Journal the truncation so recovery does not resurrect old pages.
	if err := p.walAppend(walKindTruncate, pageKey{fid: fid}, nil); err != nil {
		return err
	}
	// Inside a mutation bracket, every discarded page is a pre-image a
	// pinned snapshot may still need (heap rewrites Truncate + reinsert).
	if p.mutationActive() {
		for no := uint32(0); no < uint32(len(f.pages)); no++ {
			key := pageKey{fid, no}
			p.capture(key, p.preImage(f, key))
		}
	}
	f.pages = nil
	for i := range p.frames {
		if p.frames[i].valid && p.frames[i].key.fid == fid {
			delete(p.table, p.frames[i].key)
			p.frames[i] = frame{}
		}
	}
	delete(p.streams, fid)
	return nil
}

// NumPages returns the page count of a file.
func (p *Pager) NumPages(fid FileID) uint32 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if f, ok := p.files[fid]; ok {
		return uint32(len(f.pages))
	}
	return 0
}

// Append adds a new zeroed page to the file and returns its number. The
// page starts life dirty in the pool; its disk write is counted when it
// is evicted or synced.
func (p *Pager) Append(fid FileID) (uint32, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return 0, ErrClosed
	}
	f, ok := p.files[fid]
	if !ok {
		return 0, fmt.Errorf("pager: unknown file %d", fid)
	}
	if p.fault != nil && p.fault.crashed {
		return 0, ErrCrashed
	}
	no := uint32(len(f.pages))
	f.pages = append(f.pages, nil) // reserve the slot; data arrives on write-back
	if err := p.install(pageKey{fid, no}, make([]byte, PageSize), true); err != nil {
		return 0, err
	}
	p.noteAppend(pageKey{fid, no})
	return no, nil
}

// Read returns the content of a page. By default the returned slice
// aliases the buffer-pool copy; callers must treat it as read-only and
// use Write to mutate pages — mutating the returned slice corrupts the
// pool (and, after a write-back, the simulated disk itself, since clean
// frames alias their on-disk image). SetCopyReads(true) removes the
// hazard by returning defensive copies; fault injection forces it on
// because WAL checksums depend on unmutated frames.
//
// Concurrent readers of a returned slice are safe even across eviction:
// page buffers are replaced wholesale, never mutated in place, so a
// reader holds a consistent (possibly superseded) version of the page.
//
// Transient read faults are retried internally with exponential backoff,
// up to MaxReadAttempts attempts; the retries are counted in Stats. A
// page that faults on every attempt returns a fatal ErrReadFault.
func (p *Pager) Read(fid FileID, no uint32) ([]byte, error) {
	for attempt := 1; ; attempt++ {
		data, err := p.readOnce(fid, no)
		if err == nil || !IsTransient(err) {
			return data, err
		}
		if attempt >= MaxReadAttempts {
			return nil, fmt.Errorf("pager: file %d page %d: %w (%d attempts)",
				fid, no, ErrReadFault, attempt)
		}
		p.retryBackoff(attempt)
	}
}

// readOnce performs one read attempt through the buffer pool: a hit is
// served under the shared latch; a miss upgrades to the exclusive latch
// (re-checking the table, since another reader may have installed the
// page in the window) and fetches from disk.
func (p *Pager) readOnce(fid FileID, no uint32) ([]byte, error) {
	key := pageKey{fid, no}

	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return nil, ErrClosed
	}
	if p.fault != nil && p.fault.crashed {
		p.mu.RUnlock()
		return nil, ErrCrashed // even pool hits: the machine is down
	}
	if i, ok := p.table[key]; ok {
		p.bumpRef(&p.frames[i])
		data := p.outPage(p.frames[i].data)
		cHit := p.cHit
		p.mu.RUnlock()
		p.stats.hits.Add(1)
		cHit.Inc()
		return data, nil
	}
	p.mu.RUnlock()

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fault != nil && p.fault.crashed {
		return nil, ErrCrashed
	}
	// Another reader may have faulted the page in while we waited.
	if i, ok := p.table[key]; ok {
		p.bumpRef(&p.frames[i])
		p.stats.hits.Add(1)
		p.cHit.Inc()
		return p.outPage(p.frames[i].data), nil
	}
	f, ok := p.files[fid]
	if !ok || no >= uint32(len(f.pages)) {
		return nil, fmt.Errorf("pager: read beyond end of file %d page %d", fid, no)
	}
	if err := p.diskOp(opRead); err != nil {
		return nil, err
	}
	p.stats.reads.Add(1)
	p.cRead.Inc()
	data := make([]byte, PageSize)
	copy(data, f.pages[no])
	if st := p.noteMiss(fid, no); st != nil {
		if err := p.installScan(st, key, data, false); err != nil {
			return nil, err
		}
		p.readahead(f, fid, st, no)
	} else if err := p.install(key, data, false); err != nil {
		return nil, err
	}
	return p.outPage(data), nil
}

// bumpRef increments a frame's GCLOCK reference count (capped at the
// pager's maxRef) and consumes its prefetched flag, counting a readahead
// hit the first time a demand read lands on a prefetched page. Callers
// hold at least the shared latch, so the frame fields are touched
// atomically (concurrent hits race on them) while maxRef — only written
// under the exclusive latch — is read plainly.
func (p *Pager) bumpRef(fr *frame) {
	for {
		r := atomic.LoadUint32(&fr.ref)
		if r >= p.maxRef {
			break
		}
		if atomic.CompareAndSwapUint32(&fr.ref, r, r+1) {
			break
		}
	}
	if atomic.SwapUint32(&fr.prefetched, 0) == 1 {
		p.stats.prefetchHits.Add(1)
		p.cRAHit.Inc()
	}
}

// outPage applies the copy-on-read option to a page leaving the pool.
// Callers hold the latch (shared suffices: copyReads only changes under
// the exclusive latch).
func (p *Pager) outPage(data []byte) []byte {
	if !p.copyReads {
		return data
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp
}

// Write replaces the content of an existing page in the pool, marking it
// dirty (write-back: no disk write is counted yet). data longer than
// PageSize is an error; shorter data is zero-padded.
func (p *Pager) Write(fid FileID, no uint32, data []byte) error {
	if len(data) > PageSize {
		return fmt.Errorf("pager: write of %d bytes exceeds page size", len(data))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	f, ok := p.files[fid]
	if !ok || no >= uint32(len(f.pages)) {
		return fmt.Errorf("pager: write beyond end of file %d page %d", fid, no)
	}
	if p.fault != nil && p.fault.crashed {
		return ErrCrashed
	}
	key := pageKey{fid, no}
	if p.mutationActive() {
		p.capture(key, p.preImage(f, key))
	}
	pg := make([]byte, PageSize)
	copy(pg, data)
	return p.install(key, pg, true)
}

// install places a page into the buffer pool, evicting with GCLOCK and
// writing back the victim if dirty. It fails only when the eviction
// write-back does (crash); the pool is left unchanged then. Callers hold
// the exclusive latch, so frame fields may be accessed plainly here.
func (p *Pager) install(key pageKey, data []byte, dirty bool) error {
	if i, ok := p.table[key]; ok {
		p.frames[i].data = data
		p.bumpRef(&p.frames[i])
		p.frames[i].dirty = p.frames[i].dirty || dirty
		return nil
	}
	idx, err := p.acquireFrame()
	if err != nil {
		return err
	}
	p.frames[idx] = frame{key: key, data: data, ref: 1, dirty: dirty, valid: true}
	p.table[key] = idx
	return nil
}

// acquireFrame runs the GCLOCK hand to a victim frame, writes back a
// dirty victim, evicts it, and returns the now-free frame index. The
// hand decrements each nonzero reference count it passes, so a page at
// maxRef survives maxRef full sweeps without a hit. Callers hold the
// exclusive latch.
func (p *Pager) acquireFrame() (int, error) {
	for {
		fr := &p.frames[p.hand]
		if !fr.valid {
			break
		}
		if fr.ref != 0 {
			fr.ref--
			p.hand = (p.hand + 1) % p.capacity
			continue
		}
		if fr.dirty {
			if err := p.writeBack(fr); err != nil {
				return 0, err
			}
			p.cEvictDirty.Inc()
		}
		if fr.prefetched == 1 {
			p.cRAWasted.Inc()
		}
		delete(p.table, fr.key)
		p.cEvict.Inc()
		break
	}
	idx := p.hand
	p.hand = (p.hand + 1) % p.capacity
	return idx, nil
}

// readaheadWindow returns the prefetch batch size for this pool: up to 8
// pages, shrunk for small pools, and 0 (readahead and stream detection
// disabled) when the pool is too small for a stream ring to do anything
// but pollute it.
func (p *Pager) readaheadWindow() int {
	w := 8
	if c := p.capacity / 4; c < w {
		w = c
	}
	if w < 2 {
		return 0
	}
	return w
}

// noteMiss records a demand read miss in the file's stream tracker and,
// once the pattern is sequential (seqThreshold consecutive +1 misses),
// returns the stream so the caller installs into the stream's ring and
// prefetches ahead. Any non-sequential miss resets the tracker and
// releases the ring back to normal replacement. Callers hold the
// exclusive latch.
func (p *Pager) noteMiss(fid FileID, no uint32) *seqStream {
	if !p.scanProtect || p.readaheadWindow() == 0 {
		return nil
	}
	st := p.streams[fid]
	if st == nil {
		st = &seqStream{}
		p.streams[fid] = st
	}
	if st.started && no == st.lastNo+1 {
		st.streak++
	} else {
		st.streak = 0
		st.ring = nil
		st.ringNext = 0
	}
	st.started = true
	st.lastNo = no
	if st.streak < seqThreshold {
		return nil
	}
	if st.ring == nil {
		// Ring capacity 2× the readahead window: enough frames for the
		// in-flight prefetch batch plus the pages the scan just consumed.
		st.ring = make([]ringSlot, 0, 2*p.readaheadWindow())
	}
	return st
}

// installScan places a sequential-stream page into the buffer pool,
// recycling a frame from the stream's own ring when one is available so
// the scan evicts its own trail instead of running the GCLOCK hand over
// the hot working set. A ring slot is reusable only if it still holds
// the page the stream put there, clean and at most once-referenced —
// otherwise (the hand reassigned it, or another query is keeping it hot)
// the stream falls back to a normal acquisition and takes the frame
// over. Callers hold the exclusive latch.
func (p *Pager) installScan(st *seqStream, key pageKey, data []byte, prefetch bool) error {
	if i, ok := p.table[key]; ok {
		p.frames[i].data = data
		if !prefetch {
			p.bumpRef(&p.frames[i])
		}
		return nil
	}
	idx := -1
	if len(st.ring) == cap(st.ring) && cap(st.ring) > 0 {
		slot := st.ring[st.ringNext]
		fr := &p.frames[slot.idx]
		if fr.valid && fr.key == slot.key && fr.ref <= 1 && !fr.dirty {
			if fr.prefetched == 1 {
				p.cRAWasted.Inc()
			}
			delete(p.table, fr.key)
			p.cEvict.Inc()
			p.cEvictScan.Inc()
			idx = slot.idx
		}
	}
	if idx < 0 {
		var err error
		idx, err = p.acquireFrame()
		if err != nil {
			return err
		}
	}
	fr := frame{key: key, data: data, ref: 1, valid: true}
	if prefetch {
		fr.ref = 0
		fr.prefetched = 1
	}
	p.frames[idx] = fr
	p.table[key] = idx
	if len(st.ring) < cap(st.ring) {
		st.ring = append(st.ring, ringSlot{idx: idx, key: key})
	} else if cap(st.ring) > 0 {
		st.ring[st.ringNext] = ringSlot{idx: idx, key: key}
		st.ringNext = (st.ringNext + 1) % cap(st.ring)
	}
	return nil
}

// readahead prefetches the next window pages of a detected stream in one
// batch: each is a disk read installed at reference count 0 with the
// prefetched flag set, so the stream's own demand reads turn into pool
// hits and unused prefetches are the first frames recycled. Prefetch
// I/O errors are swallowed — readahead is an optimization, never a
// correctness dependency (the demand read that triggered it has already
// succeeded). Callers hold the exclusive latch.
func (p *Pager) readahead(f *file, fid FileID, st *seqStream, no uint32) {
	w := p.readaheadWindow()
	last := no
	for i := 1; i <= w; i++ {
		next := no + uint32(i)
		if next >= uint32(len(f.pages)) {
			break
		}
		if _, ok := p.table[pageKey{fid, next}]; ok {
			continue
		}
		if err := p.diskOp(opRead); err != nil {
			break
		}
		p.stats.reads.Add(1)
		p.cRead.Inc()
		p.stats.prefetched.Add(1)
		p.cRAIssued.Inc()
		data := make([]byte, PageSize)
		copy(data, f.pages[next])
		if err := p.installScan(st, pageKey{fid, next}, data, true); err != nil {
			break
		}
		last = next
	}
	// Advance the stream cursor past the prefetched run: the demand reads
	// that follow are pool hits (never seen by noteMiss), so the next
	// miss at last+1 must still read as sequential.
	if last > st.lastNo {
		st.lastNo = last
	}
}

// writeBack persists one dirty frame, counting a disk write. With fault
// injection enabled the write is preceded by a WAL record (the durable
// image recovery restores) and may tear: only a prefix reaches the disk,
// silently — the frame is still marked clean, exactly like a real torn
// write that is only discovered at recovery time.
func (p *Pager) writeBack(fr *frame) error {
	f := p.files[fr.key.fid]
	if f == nil || fr.key.no >= uint32(len(f.pages)) {
		return nil // file truncated underneath the frame
	}
	if err := p.walAppend(walKindPage, fr.key, fr.data); err != nil {
		return err
	}
	if err := p.diskOp(opWrite); err != nil {
		return err
	}
	p.stats.writes.Add(1)
	p.cWrite.Inc()
	if n, torn := p.tornWrite(); torn {
		p.stats.tornWrites.Add(1)
		p.cTornWrite.Inc()
		pg := make([]byte, PageSize)
		copy(pg[:n], fr.data[:n])
		f.pages[fr.key.no] = pg
		fr.dirty = false
		return nil
	}
	f.pages[fr.key.no] = fr.data
	fr.dirty = false
	return nil
}

// Sync writes back every dirty page of one file (the fsync analog: one
// disk write per dirty page). Loading a database of many small files
// syncs per file, which is exactly the per-document I/O that dominates
// DC/MD bulk loading in the paper.
func (p *Pager) Sync(fid FileID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	for i := range p.frames {
		if p.frames[i].valid && p.frames[i].dirty && p.frames[i].key.fid == fid {
			if err := p.writeBack(&p.frames[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// SyncAll writes back every dirty page of every file.
func (p *Pager) SyncAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	for i := range p.frames {
		if p.frames[i].valid && p.frames[i].dirty {
			if err := p.writeBack(&p.frames[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// ColdReset flushes dirty pages and empties the buffer pool (the paper's
// cold-run methodology). Disk contents and I/O statistics are preserved.
// The flush is best-effort: on a crashed pager the dirty frames are
// simply dropped, as they would be in a real power loss.
//
// ColdReset takes the exclusive latch, so it quiesces: page reads in
// flight complete first, and reads issued during the reset wait for it.
// With MVCC snapshots it additionally drains pinned snapshots first
// (BlockPins): a pinned reader's page versions must not disappear under
// it, and a reader pinning mid-reset must observe the post-reset state.
func (p *Pager) ColdReset() {
	p.BlockPins()
	defer p.UnblockPins()
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.frames {
		if p.frames[i].valid && p.frames[i].dirty {
			_ = p.writeBack(&p.frames[i]) // best-effort; crash loses the frame
		}
		p.frames[i] = frame{}
	}
	p.table = make(map[pageKey]int, p.capacity)
	p.hand = 0
	p.streams = make(map[FileID]*seqStream)
}

// Stats returns the accumulated I/O counters. It is lock-free and safe
// to call concurrently with queries; the fields are read individually,
// so a snapshot taken mid-operation may be skewed by the op in flight.
func (p *Pager) Stats() Stats {
	return Stats{
		Reads:        p.stats.reads.Load(),
		Writes:       p.stats.writes.Load(),
		Hits:         p.stats.hits.Load(),
		ReadFaults:   p.stats.readFaults.Load(),
		ReadRetries:  p.stats.readRetries.Load(),
		TornWrites:   p.stats.tornWrites.Load(),
		WALAppends:   p.stats.walAppends.Load(),
		Prefetched:   p.stats.prefetched.Load(),
		PrefetchHits: p.stats.prefetchHits.Load(),
	}
}

// ResetStats zeroes the I/O counters (e.g. between benchmark phases).
func (p *Pager) ResetStats() {
	p.stats.reads.Store(0)
	p.stats.writes.Store(0)
	p.stats.hits.Store(0)
	p.stats.readFaults.Store(0)
	p.stats.readRetries.Store(0)
	p.stats.tornWrites.Store(0)
	p.stats.walAppends.Store(0)
	p.stats.prefetched.Store(0)
	p.stats.prefetchHits.Store(0)
}
