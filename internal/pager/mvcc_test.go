package pager

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fillPage writes a whole page of the given byte value.
func fillPage(t *testing.T, p *Pager, fid FileID, no uint32, b byte) {
	t.Helper()
	if err := p.Write(fid, no, bytes.Repeat([]byte{b}, PageSize)); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotReadSeesPreImage(t *testing.T) {
	p := New(8)
	fid := p.Create("t")
	if _, err := p.Append(fid); err != nil {
		t.Fatal(err)
	}
	fillPage(t, p, fid, 0, 'A')

	snap := p.PinSnapshot()
	defer snap.Release()

	p.BeginMutation()
	fillPage(t, p, fid, 0, 'B')
	e := p.EndMutation()

	got, err := p.ReadAt(fid, 0, snap.Epoch())
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 'A' {
		t.Fatalf("snapshot read saw %q, want pre-image 'A'", got[0])
	}
	after := p.PinSnapshot()
	defer after.Release()
	if after.Epoch() != e {
		t.Fatalf("new pin epoch %d, want committed %d", after.Epoch(), e)
	}
	got, err = p.ReadAt(fid, 0, after.Epoch())
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 'B' {
		t.Fatalf("post-commit read saw %q, want 'B'", got[0])
	}
}

// TestOpenBracketVersionsSurviveZeroPinPrune is the regression test for
// the prune clamp: with no pins outstanding, GC must NOT reclaim
// pre-images captured by a still-open mutation bracket. A reader pinning
// the committed epoch mid-bracket depends on them.
func TestOpenBracketVersionsSurviveZeroPinPrune(t *testing.T) {
	p := New(8)
	fid := p.Create("t")
	if _, err := p.Append(fid); err != nil {
		t.Fatal(err)
	}
	fillPage(t, p, fid, 0, 'A')

	p.BeginMutation()
	fillPage(t, p, fid, 0, 'B') // captures pre-image 'A' at the open target

	// No pins are held. Before the clamp this pruned the open bracket's
	// version and the pinned read below returned the half-mutated 'B'.
	if n := p.GC(); n != 1 {
		t.Fatalf("GC retained %d versions, want 1 (open bracket pre-image)", n)
	}

	snap := p.PinSnapshot() // pins the committed (pre-bracket) epoch
	got, err := p.ReadAt(fid, 0, snap.Epoch())
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 'A' {
		t.Fatalf("mid-bracket snapshot read saw %q, want pre-image 'A'", got[0])
	}
	snap.Release()
	p.EndMutation()

	// With the bracket committed and no pins, everything is reclaimable.
	if n := p.GC(); n != 0 {
		t.Fatalf("GC retained %d versions after commit with no pins, want 0", n)
	}
}

// TestSnapshotReadDuringTruncateRewrite stresses the ReadAt recheck: a
// writer repeatedly truncates and rewrites a file inside mutation
// brackets (the heap DeleteWhere pattern) while readers pin snapshots
// and demand a page image consistent with their epoch. Without the
// post-read version recheck, a reader racing the truncate observes the
// half-rebuilt live page.
func TestSnapshotReadDuringTruncateRewrite(t *testing.T) {
	p := New(8)
	fid := p.Create("t")
	if _, err := p.Append(fid); err != nil {
		t.Fatal(err)
	}
	fillPage(t, p, fid, 0, 'a')

	// epochByte records the page content committed at each epoch.
	var mu sync.Mutex
	epochByte := map[uint64]byte{p.SnapshotEpoch(): 'a'}

	var stop atomic.Bool
	var torn atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				snap := p.PinSnapshot()
				mu.Lock()
				want := epochByte[snap.Epoch()]
				mu.Unlock()
				got, err := p.ReadAt(fid, 0, snap.Epoch())
				if err != nil || got[0] != want || got[PageSize-1] != want {
					torn.Add(1)
				}
				snap.Release()
			}
		}()
	}

	for i := 0; i < 200; i++ {
		b := byte('a' + (i+1)%26)
		p.BeginMutation()
		if err := p.Truncate(fid); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Append(fid); err != nil {
			t.Fatal(err)
		}
		fillPage(t, p, fid, 0, b)
		mu.Lock()
		epochByte[p.EndMutation()] = b
		mu.Unlock()
	}
	stop.Store(true)
	wg.Wait()
	if n := torn.Load(); n > 0 {
		t.Fatalf("%d torn snapshot reads during truncate/rewrite", n)
	}
}

// TestColdResetWaitsForPinnedSnapshots pins down the quiesce contract:
// ColdReset (and Load, which uses the same BlockPins primitive) must
// wait for outstanding pins instead of racing them, and new pins issued
// during the reset must wait until it finishes.
func TestColdResetWaitsForPinnedSnapshots(t *testing.T) {
	p := New(8)
	fid := p.Create("t")
	if _, err := p.Append(fid); err != nil {
		t.Fatal(err)
	}
	fillPage(t, p, fid, 0, 'A')

	snap := p.PinSnapshot()
	resetDone := make(chan struct{})
	go func() {
		p.ColdReset()
		close(resetDone)
	}()

	select {
	case <-resetDone:
		t.Fatal("ColdReset finished while a snapshot was pinned")
	case <-time.After(50 * time.Millisecond):
	}

	// A pin issued while the reset is draining must not sneak in before
	// it: it blocks until UnblockPins.
	pinDone := make(chan struct{})
	go func() {
		p.PinSnapshot().Release()
		close(pinDone)
	}()
	select {
	case <-pinDone:
		t.Fatal("PinSnapshot succeeded while ColdReset was draining pins")
	case <-time.After(50 * time.Millisecond):
	}

	snap.Release()
	select {
	case <-resetDone:
	case <-time.After(2 * time.Second):
		t.Fatal("ColdReset did not finish after the pin was released")
	}
	select {
	case <-pinDone:
	case <-time.After(2 * time.Second):
		t.Fatal("blocked PinSnapshot did not resume after ColdReset")
	}
	if n := p.PinnedSnapshots(); n != 0 {
		t.Fatalf("%d pins outstanding after quiesce, want 0", n)
	}
}

// TestHeapViewFrozenDuringRewrite exercises the layer engines actually
// read through: a HeapView built at a commit epoch must keep serving the
// records frozen at that epoch while the live heap is reset and
// rebuilt (the relational DeleteWhere rewrite) in later brackets.
func TestHeapViewFrozenDuringRewrite(t *testing.T) {
	ctx := context.Background()
	p := New(16)
	h := NewHeap(p, "heap")

	write := func(gen, n int) []string {
		recs := make([]string, n)
		p.BeginMutation()
		if err := h.Reset(); err != nil {
			t.Fatal(err)
		}
		for i := range recs {
			recs[i] = fmt.Sprintf("gen%d-rec%d-%s", gen, i, bytes.Repeat([]byte{'x'}, 100))
			if _, err := h.Insert([]byte(recs[i])); err != nil {
				t.Fatal(err)
			}
		}
		if err := h.Flush(); err != nil {
			t.Fatal(err)
		}
		p.EndMutation()
		return recs
	}

	gen0 := write(0, 50)
	snap := p.PinSnapshot()
	defer snap.Release()
	v, err := h.View(snap.Epoch())
	if err != nil {
		t.Fatal(err)
	}

	// Rewrite the heap twice more; the view must not notice.
	write(1, 37)
	write(2, 61)

	var got []string
	if err := v.Scan(ctx, func(_ RID, rec []byte) bool {
		got = append(got, string(rec))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(gen0) {
		t.Fatalf("snapshot scan saw %d records, want %d", len(got), len(gen0))
	}
	for i := range got {
		if got[i] != gen0[i] {
			t.Fatalf("record %d: snapshot saw %q, want %q", i, got[i][:20], gen0[i][:20])
		}
	}
}
