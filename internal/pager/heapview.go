package pager

import (
	"context"
	"encoding/binary"
	"fmt"
)

// HeapView is an immutable snapshot of a Heap: the record extent frozen
// at view time, with every page read served as of a commit epoch
// (pager.ReadAt). A view never consults the heap's in-memory tail or
// mutable cursors, so it is safe to use from any goroutine while the
// owning engine's writer keeps inserting, truncating or rewriting the
// live heap — as long as the reader holds a Snap pinned at the view's
// epoch (otherwise GC may reclaim the page versions the view depends on).
//
// Views are built by the writer at state-publish time (engines publish
// one per heap inside their snapshot state) and by tests.
type HeapView struct {
	p     *Pager
	fid   FileID
	end   uint64
	count int
	epoch uint64
}

// View freezes the heap's current extent as of the given commit epoch.
// A buffered-but-unflushed tail page would be invisible to the pager, so
// View flushes it first; engines call View after their per-update syncs,
// making this a no-op in practice.
func (h *Heap) View(epoch uint64) (HeapView, error) {
	if h.tailDirty {
		if err := h.Flush(); err != nil {
			return HeapView{}, err
		}
	}
	return HeapView{p: h.p, fid: h.fid, end: h.end, count: h.count, epoch: epoch}, nil
}

// LiveView freezes the heap's extent with live (unversioned) page reads —
// the degenerate view used when snapshots are disabled.
func (h *Heap) LiveView() (HeapView, error) { return h.View(LiveEpoch) }

// Epoch returns the view's commit epoch (LiveEpoch for a live view).
func (v HeapView) Epoch() uint64 { return v.epoch }

// Count returns the number of records in the view.
func (v HeapView) Count() int { return v.count }

// Bytes returns the record extent of the view.
func (v HeapView) Bytes() uint64 { return v.end }

// Pages returns the page count of the view's extent — the scan cost the
// planner sees for this snapshot.
func (v HeapView) Pages() int64 {
	if v.end == 0 {
		return 0
	}
	return int64((v.end + PageSize - 1) / PageSize)
}

// readAt fills buf starting at offset, reading pages as of the view's
// epoch. Cancellation is honored at page-fetch granularity, like
// Heap.readAt.
func (v HeapView) readAt(ctx context.Context, buf []byte, off uint64) error {
	for len(buf) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		pg, err := v.p.ReadAt(v.fid, uint32(off/PageSize), v.epoch)
		if err != nil {
			return err
		}
		n := copy(buf, pg[off%PageSize:])
		if n == 0 {
			return fmt.Errorf("pager: heap view read stalled at offset %d", off)
		}
		buf = buf[n:]
		off += uint64(n)
	}
	return nil
}

// Get returns a fresh copy of the record stored at rid, as of the view.
func (v HeapView) Get(ctx context.Context, rid RID) ([]byte, error) {
	off := uint64(rid)
	if off+4 > v.end {
		return nil, fmt.Errorf("pager: rid %d beyond heap view end %d", rid, v.end)
	}
	var pfx [4]byte
	if err := v.readAt(ctx, pfx[:], off); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(pfx[:])
	if off+4+uint64(n) > v.end {
		return nil, fmt.Errorf("pager: rid %d has corrupt length %d in view", rid, n)
	}
	rec := make([]byte, n)
	if err := v.readAt(ctx, rec, off+4); err != nil {
		return nil, err
	}
	return rec, nil
}

// Scan visits every record of the view in insertion order; returning
// false stops early.
func (v HeapView) Scan(ctx context.Context, fn func(rid RID, rec []byte) bool) error {
	off := uint64(0)
	for off < v.end {
		rec, err := v.Get(ctx, RID(off))
		if err != nil {
			return err
		}
		if !fn(RID(off), rec) {
			return nil
		}
		off += 4 + uint64(len(rec))
	}
	return nil
}
