// Write-ahead log and crash recovery for the simulated disk.
//
// With a FaultPolicy installed, every in-place page write is preceded by
// a checksummed full-page image appended to the log, and every file
// truncation by a truncate marker. Recover replays the log in order —
// applying complete, checksum-valid records and discarding a torn tail —
// which restores every page to its last durable image: torn in-place
// writes are repaired from their (complete) log record, and a crash that
// tore the log record itself never performed the in-place write, so the
// page legitimately keeps its previous durable image.
//
// Record layout (big-endian):
//
//	[4] magic "WAL1"
//	[1] kind: 0 = page image, 1 = file truncate
//	[4] file id
//	[4] page number (0 for truncate)
//	[4] data length  (0 for truncate, PageSize for page images)
//	[n] data
//	[8] FNV-64a over kind, file id, page number and data
package pager

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
)

const walMagic = 0x57414C31 // "WAL1"

const (
	walKindPage     = 0
	walKindTruncate = 1
)

const walHeaderSize = 4 + 1 + 4 + 4 + 4 // magic, kind, fid, page, length

func walChecksum(kind byte, fid FileID, no uint32, data []byte) uint64 {
	h := fnv.New64a()
	var hdr [9]byte
	hdr[0] = kind
	binary.BigEndian.PutUint32(hdr[1:5], uint32(fid))
	binary.BigEndian.PutUint32(hdr[5:9], no)
	h.Write(hdr[:])
	h.Write(data)
	return h.Sum64()
}

func encodeWALRecord(kind byte, key pageKey, data []byte) []byte {
	buf := make([]byte, 0, walHeaderSize+len(data)+8)
	buf = binary.BigEndian.AppendUint32(buf, walMagic)
	buf = append(buf, kind)
	buf = binary.BigEndian.AppendUint32(buf, uint32(key.fid))
	buf = binary.BigEndian.AppendUint32(buf, key.no)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(data)))
	buf = append(buf, data...)
	return binary.BigEndian.AppendUint64(buf, walChecksum(kind, key.fid, key.no, data))
}

// decodeWALRecord parses the record at the head of buf. ok is false for a
// torn or corrupt record (recovery stops there and discards the tail).
func decodeWALRecord(buf []byte) (kind byte, key pageKey, data []byte, size int, ok bool) {
	if len(buf) < walHeaderSize {
		return 0, pageKey{}, nil, 0, false
	}
	if binary.BigEndian.Uint32(buf[0:4]) != walMagic {
		return 0, pageKey{}, nil, 0, false
	}
	kind = buf[4]
	key.fid = FileID(binary.BigEndian.Uint32(buf[5:9]))
	key.no = binary.BigEndian.Uint32(buf[9:13])
	n := int(binary.BigEndian.Uint32(buf[13:17]))
	size = walHeaderSize + n + 8
	if n > PageSize || len(buf) < size {
		return 0, pageKey{}, nil, 0, false
	}
	data = buf[walHeaderSize : walHeaderSize+n]
	if binary.BigEndian.Uint64(buf[size-8:size]) != walChecksum(kind, key.fid, key.no, data) {
		return 0, pageKey{}, nil, 0, false
	}
	return kind, key, data, size, true
}

// walAppend logs one record ahead of the disk action it protects. A crash
// firing on the append itself leaves a deterministic partial prefix in
// the log — the torn tail Recover discards. Callers must hold p.mu.
func (p *Pager) walAppend(kind byte, key pageKey, data []byte) error {
	fs := p.fault
	if fs == nil {
		return nil
	}
	rec := encodeWALRecord(kind, key, data)
	if err := p.diskOp(opWrite); err != nil {
		if errors.Is(err, ErrCrashed) && len(rec) > 0 {
			fs.wal = append(fs.wal, rec[:int(fs.randU64()%uint64(len(rec)))]...)
		}
		return err
	}
	p.stats.walAppends.Add(1)
	p.cWALAppend.Inc()
	fs.wal = append(fs.wal, rec...)
	switch kind {
	case walKindPage:
		fs.shadow[key] = append([]byte(nil), data...)
	case walKindTruncate:
		for k := range fs.shadow {
			if k.fid == key.fid {
				delete(fs.shadow, k)
			}
		}
	}
	return nil
}

// Recover restores the last durable state after a simulated crash: the
// buffer pool is dropped without write-back (in-memory dirty frames died
// with the process), every complete WAL record is replayed in order into
// the files, and a torn tail — a partial or checksum-corrupt final
// record — is discarded. The crash flag and the disk-operation clock are
// cleared so I/O can resume under the still-installed policy; call
// SetFaultPolicy afterwards to change it (e.g. to disable the crash
// point before re-loading). Recover on a non-crashed pager acts as a
// checkpoint: torn page writes are repaired from the log. It returns the
// number of records replayed.
func (p *Pager) Recover() (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fs := p.fault
	if fs == nil {
		return 0, fmt.Errorf("pager: Recover without a fault policy (WAL disabled)")
	}
	// Drop the pool: nothing in volatile memory survived the crash.
	for i := range p.frames {
		p.frames[i] = frame{}
	}
	p.table = make(map[pageKey]int, p.capacity)
	p.hand = 0
	// Redo pass over the log.
	replayed := 0
	buf := fs.wal
	for len(buf) > 0 {
		kind, key, data, size, ok := decodeWALRecord(buf)
		if !ok {
			break // torn tail: everything from here on was not durable
		}
		f := p.files[key.fid]
		if f != nil {
			switch kind {
			case walKindPage:
				for uint32(len(f.pages)) <= key.no {
					f.pages = append(f.pages, nil)
				}
				pg := make([]byte, PageSize)
				copy(pg, data)
				f.pages[key.no] = pg
			case walKindTruncate:
				f.pages = nil
			}
		}
		replayed++
		buf = buf[size:]
	}
	fs.wal = fs.wal[:0] // checkpoint: all images are now in place
	fs.crashed = false
	fs.ops = 0
	// The in-memory MVCC version chains died with the machine; the update
	// journal replay re-brackets each committed record, rebuilding a
	// consistent latest epoch from scratch.
	p.mvccReset()
	return replayed, nil
}

// CheckDurable verifies the recovery invariant after Recover (or after a
// clean SyncAll with no faults in flight): every non-empty page on the
// simulated disk equals the last durable image the WAL recorded for it,
// and every recorded image is present. It returns a descriptive error on
// the first violation.
func (p *Pager) CheckDurable() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	fs := p.fault
	if fs == nil {
		return fmt.Errorf("pager: CheckDurable without a fault policy")
	}
	for fid, f := range p.files {
		for no, pg := range f.pages {
			img, ok := fs.shadow[pageKey{fid, uint32(no)}]
			if pg == nil && !ok {
				continue // never durably written: legitimately empty
			}
			if pg == nil || !ok || !bytes.Equal(pg, img) {
				return fmt.Errorf("pager: file %d (%s) page %d diverges from its durable image (disk %d bytes, image %d bytes)",
					fid, f.name, no, len(pg), len(img))
			}
		}
	}
	for key := range fs.shadow {
		f := p.files[key.fid]
		if f == nil || key.no >= uint32(len(f.pages)) {
			return fmt.Errorf("pager: durable image for file %d page %d has no backing page", key.fid, key.no)
		}
	}
	return nil
}
