// Fault injection: a seeded, deterministic fault model for the simulated
// disk. A FaultPolicy makes the pager misbehave the way 2004-era hardware
// (and today's) actually does — transient read errors, torn page writes,
// and crashes that halt all further I/O — so the engines and the
// benchmark harness can be exercised against failure and recovery, not
// just the happy path. Faults are drawn from a splitmix64 stream seeded
// by the policy, so the same seed over the same operation sequence
// produces the same fault sequence: every chaos run is reproducible.
//
// Enabling a policy also enables the write-ahead log (wal.go): every
// in-place page write is preceded by a checksummed full-page log record,
// which is what makes Recover able to restore the last durable state
// after a crash or a torn write.
package pager

import (
	"errors"
	"fmt"
	"time"
)

// ErrCrashed is returned by every disk operation after a crash point has
// fired: the simulated machine is down until Recover is called.
var ErrCrashed = errors.New("pager: simulated crash: I/O halted")

// ErrTransientRead marks a soft, retryable read fault (a bad sector read
// that succeeds on retry). Pager.Read retries these internally; callers
// only see the error if a policy's rate is so high that MaxReadAttempts
// consecutive attempts all fault.
var ErrTransientRead = errors.New("pager: transient read fault")

// ErrReadFault is the fatal form of a read fault: MaxReadAttempts
// consecutive transient faults on the same page. It is deliberately not
// a transient error — engines must treat it as fatal.
var ErrReadFault = errors.New("pager: read failed after retries")

// IsCrash reports whether err means the pager has crashed and needs
// Recover before any further I/O.
func IsCrash(err error) bool { return errors.Is(err, ErrCrashed) }

// IsTransient reports whether err is a retryable soft fault.
func IsTransient(err error) bool { return errors.Is(err, ErrTransientRead) }

// MaxReadAttempts bounds the internal retry loop for transient read
// faults: the first attempt plus up to three retries.
const MaxReadAttempts = 4

// FaultPolicy configures deterministic fault injection. The zero rate /
// zero crash point fields individually disable their fault kind; setting
// any policy at all enables the write-ahead log and durable-image
// bookkeeping.
type FaultPolicy struct {
	// Seed drives the fault stream. The same seed over the same operation
	// sequence yields the same faults. 0 is a valid seed.
	Seed uint64
	// ReadErrorRate is the probability, per disk read, of a transient
	// read fault (retried internally with backoff).
	ReadErrorRate float64
	// TornWriteRate is the probability, per in-place page write, that
	// only a prefix of the page reaches the platter. The fault is silent
	// — like real torn writes, it is only detectable at recovery time,
	// when the WAL image repairs the page.
	TornWriteRate float64
	// CrashAfterOps halts all further I/O once this many disk operations
	// (reads, write-backs and WAL appends) have completed; 0 disables.
	// A crash landing on a WAL append leaves a torn record tail, which
	// Recover discards.
	CrashAfterOps int64
}

// faultState is the live fault-injection machinery hanging off a Pager.
// It is guarded by the pager's mutex.
type faultState struct {
	policy  FaultPolicy
	rng     uint64
	ops     int64
	crashed bool
	wal     []byte             // the simulated log file
	shadow  map[pageKey][]byte // last durable image per page
}

// splitmix64: tiny, fast, and adequate for fault scheduling.
func (fs *faultState) randU64() uint64 {
	fs.rng += 0x9E3779B97F4A7C15
	z := fs.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (fs *faultState) rand01() float64 {
	return float64(fs.randU64()>>11) / (1 << 53)
}

// SetFaultPolicy installs or updates deterministic fault injection,
// enabling the write-ahead log. Updating the policy on a pager that
// already has one keeps the log and the durable-image bookkeeping (so a
// post-crash policy change — e.g. disabling the crash point before
// re-loading — does not forget what is on disk) and reseeds the fault
// stream from the new seed. Fault injection also turns on defensive read
// copies: WAL checksums rely on buffer frames not being mutated through
// slices returned by Read.
func (p *Pager) SetFaultPolicy(fp FaultPolicy) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fault == nil {
		p.fault = &faultState{shadow: map[pageKey][]byte{}}
	}
	p.fault.policy = fp
	// Mix the seed so Seed 0 does not start the stream at state 0.
	p.fault.rng = fp.Seed ^ 0xD1B54A32D192ED03
	p.copyReads = true
}

// FaultPolicyInfo returns the active policy and whether fault injection
// is enabled.
func (p *Pager) FaultPolicyInfo() (FaultPolicy, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.fault == nil {
		return FaultPolicy{}, false
	}
	return p.fault.policy, true
}

// Crashed reports whether a crash point has fired and I/O is halted.
func (p *Pager) Crashed() bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.fault != nil && p.fault.crashed
}

// OpCount returns the number of disk operations (reads, write-backs and
// WAL appends) performed since the policy was set or the last Recover.
// It is the clock that CrashAfterOps is measured on.
func (p *Pager) OpCount() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fault == nil {
		return 0
	}
	return p.fault.ops
}

// SetCopyReads toggles defensive copying in Read independently of fault
// injection: with it on, mutating a returned slice cannot corrupt the
// buffer pool. Fault injection forces it on.
func (p *Pager) SetCopyReads(on bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.copyReads = on
}

type opKind int

const (
	opRead opKind = iota
	opWrite
)

// diskOp accounts one disk operation against the fault policy: it fails
// fast when crashed, fires the crash point when the op budget is spent,
// and injects transient faults on reads. Callers must hold p.mu. With no
// policy it is a no-op.
func (p *Pager) diskOp(kind opKind) error {
	fs := p.fault
	if fs == nil {
		return nil
	}
	if fs.crashed {
		return ErrCrashed
	}
	if fs.policy.CrashAfterOps > 0 && fs.ops >= fs.policy.CrashAfterOps {
		fs.crashed = true
		return fmt.Errorf("%w (crash point at %d disk ops)", ErrCrashed, fs.ops)
	}
	fs.ops++
	if kind == opRead && fs.policy.ReadErrorRate > 0 && fs.rand01() < fs.policy.ReadErrorRate {
		p.stats.readFaults.Add(1)
		p.cReadFault.Inc()
		return fmt.Errorf("%w (op %d)", ErrTransientRead, fs.ops)
	}
	return nil
}

// tornWrite decides whether the current in-place write tears, and if so
// how many bytes reach the disk. Callers must hold p.mu.
func (p *Pager) tornWrite() (int, bool) {
	fs := p.fault
	if fs == nil || fs.policy.TornWriteRate <= 0 {
		return 0, false
	}
	if fs.rand01() >= fs.policy.TornWriteRate {
		return 0, false
	}
	// Tear somewhere strictly inside the page (a zero-length tear would
	// be an untorn old page; a full-length one an untorn new page).
	n := 1 + int(fs.randU64()%uint64(PageSize-1))
	return n, true
}

// retryBackoff sleeps briefly before a read retry (the simulated device
// settle time) and counts the retry. Exponential: attempt 1 waits one
// unit, attempt 2 two, attempt 3 four.
func (p *Pager) retryBackoff(attempt int) {
	p.stats.readRetries.Add(1)
	p.mu.RLock()
	c := p.cReadRetry
	p.mu.RUnlock()
	c.Inc()
	time.Sleep(time.Duration(1<<(attempt-1)) * 20 * time.Microsecond)
}
