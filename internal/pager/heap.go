package pager

import (
	"context"
	"encoding/binary"
	"fmt"
)

// RID identifies a record in a Heap: the byte offset where its length
// prefix begins.
type RID uint64

// Heap is an append-only record file over a paged file. Records are
// length-prefixed and may span pages, so whole XML documents and shredded
// rows use the same storage primitive. Inserts are buffered one page at a
// time and flushed as pages fill, modeling bulk-load I/O; call Flush to
// persist a partial tail page.
//
// Get and Scan are safe to call from many goroutines once loading has
// finished (after Flush/Sync); Insert/Flush/Reset require external
// exclusion from readers — the engines provide it with their write lock.
type Heap struct {
	p   *Pager
	fid FileID

	end       uint64 // next insert offset
	flushed   uint64 // offsets below this are on disk
	tail      []byte // in-memory image of the tail page
	tailNo    uint32
	hasTail   bool
	tailDirty bool // tail differs from its on-disk image
	count     int
}

// NewHeap creates an empty heap in a fresh file.
func NewHeap(p *Pager, name string) *Heap {
	return &Heap{p: p, fid: p.Create(name)}
}

// Count returns the number of records inserted.
func (h *Heap) Count() int { return h.count }

// Bytes returns the total size of record data including prefixes.
func (h *Heap) Bytes() uint64 { return h.end }

// Pages returns the number of pages the heap's records occupy — the
// sequential-scan cost the query planner feeds its cost model.
func (h *Heap) Pages() int64 {
	if h.end == 0 {
		return 0
	}
	return int64((h.end + PageSize - 1) / PageSize)
}

// Insert appends a record and returns its RID.
func (h *Heap) Insert(rec []byte) (RID, error) {
	rid := RID(h.end)
	var pfx [4]byte
	binary.BigEndian.PutUint32(pfx[:], uint32(len(rec)))
	if err := h.write(pfx[:]); err != nil {
		return 0, err
	}
	if err := h.write(rec); err != nil {
		return 0, err
	}
	h.count++
	return rid, nil
}

// write appends raw bytes across page boundaries.
func (h *Heap) write(b []byte) error {
	for len(b) > 0 {
		off := int(h.end % PageSize)
		if !h.hasTail {
			no, err := h.p.Append(h.fid)
			if err != nil {
				return err
			}
			h.tailNo = no
			h.tail = make([]byte, PageSize)
			h.hasTail = true
		}
		n := copy(h.tail[off:], b)
		b = b[n:]
		h.end += uint64(n)
		h.tailDirty = true
		if h.end%PageSize == 0 {
			if err := h.flushTail(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (h *Heap) flushTail() error {
	if !h.hasTail {
		return nil
	}
	if err := h.p.Write(h.fid, h.tailNo, h.tail); err != nil {
		return err
	}
	h.flushed = (uint64(h.tailNo) + 1) * PageSize
	h.hasTail = false
	return nil
}

// Flush persists any buffered tail page.
func (h *Heap) Flush() error {
	if !h.hasTail {
		return nil
	}
	if err := h.p.Write(h.fid, h.tailNo, h.tail); err != nil {
		return err
	}
	h.flushed = h.end
	h.tailDirty = false
	// Keep the tail image so further inserts continue filling the page.
	return nil
}

// Sync flushes the tail page and forces every dirty page of the heap's
// file to disk (the per-file fsync of a multi-document load).
func (h *Heap) Sync() error {
	if err := h.Flush(); err != nil {
		return err
	}
	return h.p.Sync(h.fid)
}

// readAt fills buf from the heap starting at offset, going through the
// buffer pool (and the in-memory tail when needed). The context is
// checked before each page fetch — this is the page-fetch granularity at
// which query cancellation is honored.
func (h *Heap) readAt(ctx context.Context, buf []byte, off uint64) error {
	for len(buf) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		pageNo := uint32(off / PageSize)
		pageOff := int(off % PageSize)
		var src []byte
		if h.hasTail && pageNo == h.tailNo && h.tailDirty {
			// Unflushed data is only available in memory; once flushed,
			// reads go through the buffer pool like any other page so
			// cold-run I/O is fully accounted.
			src = h.tail
		} else {
			pg, err := h.p.Read(h.fid, pageNo)
			if err != nil {
				return err
			}
			src = pg
		}
		n := copy(buf, src[pageOff:])
		if n == 0 {
			return fmt.Errorf("pager: heap read stalled at offset %d", off)
		}
		buf = buf[n:]
		off += uint64(n)
	}
	return nil
}

// Get returns the record stored at rid. The result is a fresh copy.
// Cancellation via ctx is honored at page-fetch granularity.
func (h *Heap) Get(ctx context.Context, rid RID) ([]byte, error) {
	off := uint64(rid)
	if off+4 > h.end {
		return nil, fmt.Errorf("pager: rid %d beyond heap end %d", rid, h.end)
	}
	var pfx [4]byte
	if err := h.readAt(ctx, pfx[:], off); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(pfx[:])
	if off+4+uint64(n) > h.end {
		return nil, fmt.Errorf("pager: rid %d has corrupt length %d", rid, n)
	}
	rec := make([]byte, n)
	if err := h.readAt(ctx, rec, off+4); err != nil {
		return nil, err
	}
	return rec, nil
}

// Scan visits every record in insertion order. Returning false stops the
// scan early. Cancellation via ctx is honored at page-fetch granularity.
func (h *Heap) Scan(ctx context.Context, fn func(rid RID, rec []byte) bool) error {
	off := uint64(0)
	for off < h.end {
		rec, err := h.Get(ctx, RID(off))
		if err != nil {
			return err
		}
		if !fn(RID(off), rec) {
			return nil
		}
		off += 4 + uint64(len(rec))
	}
	return nil
}

// Reset truncates the heap to empty so it can be rebuilt (used when a
// catalog is rewritten after document updates).
func (h *Heap) Reset() error {
	if err := h.p.Truncate(h.fid); err != nil {
		return err
	}
	h.end = 0
	h.flushed = 0
	h.tail = nil
	h.hasTail = false
	h.tailDirty = false
	h.count = 0
	return nil
}
