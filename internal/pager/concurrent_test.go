package pager

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentReads: many goroutines read a working set larger than the
// pool (forcing misses, lock upgrades and CLOCK evictions under load)
// while verifying page contents. Run with -race.
func TestConcurrentReads(t *testing.T) {
	p := New(8)
	fid := p.Create("data")
	const pages = 32
	for i := 0; i < pages; i++ {
		no, err := p.Append(fid)
		if err != nil {
			t.Fatal(err)
		}
		pg := bytes.Repeat([]byte{byte(i)}, PageSize)
		if err := p.Write(fid, no, pg); err != nil {
			t.Fatal(err)
		}
	}

	const goroutines = 8
	errc := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				no := uint32((g*131 + i*7) % pages)
				pg, err := p.Read(fid, no)
				if err != nil {
					errc <- err
					return
				}
				if pg[0] != byte(no) || pg[PageSize-1] != byte(no) {
					errc <- fmt.Errorf("page %d holds %d", no, pg[0])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Hits == 0 || st.Reads == 0 {
		t.Fatalf("stats did not accumulate under concurrency: %+v", st)
	}
}

// TestConcurrentColdResetAndStats: ColdReset, Stats and NumPages race
// against readers without corrupting answers — the ColdReset/PageIO
// concurrency contract at the pager layer.
func TestConcurrentColdResetAndStats(t *testing.T) {
	p := New(4)
	fid := p.Create("data")
	const pages = 16
	for i := 0; i < pages; i++ {
		no, err := p.Append(fid)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Write(fid, no, bytes.Repeat([]byte{byte(i)}, PageSize)); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var maint sync.WaitGroup
	maint.Add(1)
	go func() {
		defer maint.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 3 {
			case 0:
				p.ColdReset()
			case 1:
				_ = p.Stats()
			case 2:
				if n := p.NumPages(fid); n != pages {
					panic(fmt.Sprintf("NumPages = %d", n))
				}
			}
		}
	}()

	errc := make(chan error, 4)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				no := uint32((g + i) % pages)
				pg, err := p.Read(fid, no)
				if err != nil {
					errc <- err
					return
				}
				if pg[0] != byte(no) {
					errc <- fmt.Errorf("page %d holds %d after reset race", no, pg[0])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	maint.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentHeapGet: heap reads are goroutine-safe after the load is
// flushed.
func TestConcurrentHeapGet(t *testing.T) {
	ctx := context.Background()
	p := New(8)
	h := NewHeap(p, "heap")
	var rids []RID
	for i := 0; i < 200; i++ {
		rid, err := h.Insert([]byte(fmt.Sprintf("record-%04d", i)))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}

	errc := make(chan error, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < len(rids); i++ {
				k := (i + g*13) % len(rids)
				rec, err := h.Get(ctx, rids[k])
				if err != nil {
					errc <- err
					return
				}
				if want := fmt.Sprintf("record-%04d", k); string(rec) != want {
					errc <- fmt.Errorf("rid %d: got %q want %q", rids[k], rec, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}
