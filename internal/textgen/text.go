package textgen

import (
	"fmt"
	"strings"

	"xbench/internal/stats"
)

// Text generates prose with Zipf-distributed word frequencies.
type Text struct {
	r    *stats.RNG
	zipf *stats.Zipf
}

// zipfCache shares the (expensive to build) CDF between Text instances;
// the CDF depends only on the pool size, which is fixed.
var zipfCache = stats.NewZipf(PoolSize(), 1.05)

// NewText returns a prose generator over r.
func NewText(r *stats.RNG) *Text {
	return &Text{r: r, zipf: zipfCache}
}

// Word draws one word, frequency-skewed.
func (t *Text) Word() string {
	return WordAt(stats.DrawInt(t.r, t.zipf) - 1)
}

// Words draws n space-separated words.
func (t *Text) Words(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(t.Word())
	}
	return b.String()
}

// Sentence draws a capitalized sentence of lo..hi words ending in a period.
func (t *Text) Sentence(lo, hi int) string {
	n := t.r.IntRange(lo, hi)
	s := t.Words(n)
	if s == "" {
		return ""
	}
	return strings.ToUpper(s[:1]) + s[1:] + "."
}

// Paragraph draws nSentences sentences joined with spaces.
func (t *Text) Paragraph(nSentences int) string {
	parts := make([]string, nSentences)
	for i := range parts {
		parts[i] = t.Sentence(5, 18)
	}
	return strings.Join(parts, " ")
}

// Phrase returns a fixed n-gram that is guaranteed to occur in generated
// prose with non-trivial probability; used to bind Q18's phrase parameter.
func Phrase() string { return "of the" }

// Name pools for authors, customers and publishers.
var firstNames = []string{
	"Ada", "Alan", "Barbara", "Carl", "Diana", "Edgar", "Frances", "Grace",
	"Henri", "Ingrid", "Jim", "Kurt", "Leslie", "Maurice", "Niklaus",
	"Olga", "Peter", "Quentin", "Rosa", "Sergei", "Tamer", "Ursula",
	"Victor", "Wanda", "Xavier", "Yuri", "Zelda", "Benjamin", "Nitin",
	"Donald", "Edsger", "Fernando", "Hector", "Irene", "Jeffrey", "Ken",
}
var lastNames = []string{
	"Adams", "Baker", "Codd", "Dijkstra", "Engel", "Floyd", "Gray",
	"Hoare", "Iverson", "Jones", "Knuth", "Lamport", "McCarthy", "Naur",
	"Olsen", "Perlis", "Quinn", "Ritchie", "Stone", "Turing", "Ullman",
	"Valiant", "Wirth", "Xu", "Yao", "Zadeh", "Ozsu", "Keenleyside",
	"Barbosa", "Mendelzon", "Chamberlin", "Fankhauser", "Robie", "Schmidt",
}

// FirstName returns a deterministic first name for index i.
func FirstName(i int) string { return firstNames[abs(i)%len(firstNames)] }

// LastName returns a deterministic last name for index i.
func LastName(i int) string { return lastNames[abs(i)%len(lastNames)] }

// FullName returns "First Last" for index i, cycling through combinations.
func FullName(i int) string {
	i = abs(i)
	return FirstName(i) + " " + LastName(i/len(firstNames))
}

// countries is the COUNTRY table domain (TPC-W uses 92 countries; a
// representative subset keeps Q7's universal quantification selective).
var countries = []string{
	"Canada", "United States", "United Kingdom", "Germany", "France",
	"Japan", "Australia", "Brazil", "India", "China", "Netherlands",
	"Switzerland", "Sweden", "Norway", "Italy", "Spain", "Mexico",
	"South Korea", "Singapore", "New Zealand", "Ireland", "Austria",
	"Belgium", "Denmark", "Finland",
}

// CountryCount returns the number of countries in the domain.
func CountryCount() int { return len(countries) }

// Country returns the i-th country name.
func Country(i int) string { return countries[abs(i)%len(countries)] }

// Date renders a deterministic ISO date. day is an absolute day index that
// is mapped into the window 1995-01-01 .. 2003-12-30 used by the TPC-W
// style temporal predicates. Within each synthetic 360-day year the mapping
// is monotone, so range predicates behave intuitively.
func Date(day int) string {
	day = abs(day) % (9 * 360) // nine 360-day years keep arithmetic simple
	year := 1995 + day/360
	rem := day % 360
	return fmt.Sprintf("%04d-%02d-%02d", year, rem/30+1, rem%30+1)
}

// Phone renders a deterministic phone number for index i.
func Phone(i int) string {
	i = abs(i)
	return fmt.Sprintf("+1-%03d-%03d-%04d", 200+i%700, 100+(i/7)%900, i%10000)
}

// Email renders a deterministic e-mail address from a name.
func Email(name string, i int) string {
	user := strings.ToLower(strings.ReplaceAll(name, " ", "."))
	return fmt.Sprintf("%s%d@example.org", user, abs(i)%100)
}

func abs(i int) int {
	if i < 0 {
		return -i
	}
	return i
}
