// Package textgen produces the synthetic English prose, names, dates and
// identifiers that populate XBench documents. Word choice is Zipf-skewed to
// mimic natural-language frequency, which gives the text-search queries
// (Q17/Q18) realistic selectivities.
package textgen

// wordPool is the base vocabulary. Ordered roughly by descending natural
// frequency so a Zipf draw over indexes yields natural-looking prose.
var wordPool = []string{
	"the", "of", "and", "to", "in", "a", "is", "that", "for", "it",
	"as", "was", "with", "be", "by", "on", "not", "he", "this", "are",
	"or", "his", "from", "at", "which", "but", "have", "an", "had", "they",
	"you", "were", "their", "one", "all", "we", "can", "her", "has", "there",
	"been", "if", "more", "when", "will", "would", "who", "so", "no", "said",
	"system", "data", "time", "document", "value", "result", "model", "form",
	"number", "part", "study", "case", "work", "group", "problem", "fact",
	"element", "order", "point", "world", "house", "area", "water", "word",
	"place", "money", "story", "issue", "side", "kind", "head", "service",
	"friend", "father", "power", "hour", "game", "line", "member", "country",
	"language", "structure", "process", "method", "theory", "analysis",
	"approach", "research", "science", "nature", "history", "measure",
	"market", "policy", "price", "growth", "trade", "industry", "product",
	"network", "signal", "energy", "field", "force", "matter", "light",
	"space", "earth", "ocean", "river", "mountain", "forest", "stone",
	"voice", "music", "color", "paper", "letter", "book", "page", "table",
	"figure", "image", "note", "term", "phrase", "sense", "meaning", "usage",
	"origin", "root", "branch", "leaf", "seed", "fruit", "flower", "grain",
	"animal", "bird", "fish", "horse", "cattle", "sheep", "wolf", "bear",
	"city", "town", "village", "street", "road", "bridge", "tower", "wall",
	"garden", "window", "door", "floor", "roof", "chamber", "court", "hall",
	"king", "queen", "prince", "lord", "lady", "knight", "soldier", "guard",
	"battle", "war", "peace", "treaty", "council", "law", "right", "duty",
	"church", "temple", "priest", "faith", "spirit", "soul", "heaven",
	"season", "spring", "summer", "autumn", "winter", "morning", "evening",
	"night", "shadow", "silence", "sound", "storm", "wind", "rain", "snow",
	"fire", "flame", "smoke", "ash", "iron", "gold", "silver", "copper",
	"glass", "cloth", "silk", "wool", "leather", "timber", "marble", "clay",
	"bread", "wine", "salt", "honey", "butter", "cheese", "meat", "milk",
	"journey", "voyage", "passage", "path", "track", "course", "distance",
	"motion", "speed", "weight", "length", "height", "depth", "breadth",
	"ancient", "modern", "common", "general", "special", "single", "double",
	"simple", "complex", "narrow", "broad", "gentle", "rough", "smooth",
	"bright", "dark", "heavy", "hollow", "solid", "liquid", "frozen",
	"quiet", "rapid", "steady", "sudden", "constant", "frequent", "rare",
	"noble", "humble", "famous", "obscure", "sacred", "profane", "mortal",
	"write", "read", "speak", "listen", "observe", "record", "compare",
	"divide", "combine", "extend", "reduce", "increase", "maintain",
	"develop", "produce", "consume", "deliver", "receive", "obtain",
	"contain", "include", "exclude", "require", "provide", "support",
	"describe", "explain", "define", "derive", "denote", "signify",
	"appear", "remain", "become", "happen", "follow", "precede", "consist",
	"carry", "bring", "raise", "lower", "gather", "scatter", "bind",
	"query", "index", "schema", "engine", "archive", "corpus", "entry",
	"article", "section", "chapter", "volume", "edition", "preface",
	"abstract", "citation", "reference", "appendix", "glossary", "margin",
}

// PoolSize returns the vocabulary size.
func PoolSize() int { return len(wordPool) }

// WordAt returns the i-th vocabulary word (wrapping).
func WordAt(i int) string {
	if i < 0 {
		i = -i
	}
	return wordPool[i%len(wordPool)]
}

// syllables used to mint unique headwords, product titles, and names.
var sylOnset = []string{"b", "br", "c", "cl", "d", "dr", "f", "fl", "g", "gr",
	"h", "k", "l", "m", "n", "p", "pr", "qu", "r", "s", "st", "t", "tr", "v", "w"}
var sylNucleus = []string{"a", "e", "i", "o", "u", "ae", "ea", "io", "ou"}
var sylCoda = []string{"", "n", "r", "s", "l", "m", "t", "nd", "rd", "st"}

// Syllable returns the i-th syllable of the deterministic syllable space.
func Syllable(i int) string {
	if i < 0 {
		i = -i
	}
	o := sylOnset[i%len(sylOnset)]
	i /= len(sylOnset)
	n := sylNucleus[i%len(sylNucleus)]
	i /= len(sylNucleus)
	c := sylCoda[i%len(sylCoda)]
	return o + n + c
}

// Headword mints the dictionary headword for entry i. Headwords are
// deterministic so workload parameters can be bound without scanning the
// database ("word_1" in the paper's Q8 corresponds to Headword(1)).
func Headword(i int) string {
	if i < 0 {
		i = -i
	}
	s := Syllable(i%2250) + Syllable((i/2250)%2250)
	if i >= 2250*2250 {
		s += Syllable(i / (2250 * 2250))
	}
	return s
}
