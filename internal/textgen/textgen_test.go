package textgen

import (
	"strings"
	"testing"
	"testing/quick"

	"xbench/internal/stats"
)

func TestWordAt(t *testing.T) {
	if WordAt(0) != "the" {
		t.Fatalf("WordAt(0) = %q", WordAt(0))
	}
	if WordAt(-5) != WordAt(5) {
		t.Fatal("negative index not mirrored")
	}
	if WordAt(PoolSize()) != WordAt(0) {
		t.Fatal("index does not wrap at pool size")
	}
}

func TestHeadwordDeterministicAndDistinct(t *testing.T) {
	if Headword(17) != Headword(17) {
		t.Fatal("Headword not deterministic")
	}
	seen := map[string]int{}
	for i := 0; i < 20000; i++ {
		w := Headword(i)
		if w == "" {
			t.Fatalf("empty headword at %d", i)
		}
		if prev, dup := seen[w]; dup {
			t.Fatalf("headword collision: %d and %d both %q", prev, i, w)
		}
		seen[w] = i
	}
}

func TestHeadwordProperty(t *testing.T) {
	f := func(i uint16) bool {
		w := Headword(int(i))
		return w != "" && strings.ToLower(w) == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTextProse(t *testing.T) {
	tx := NewText(stats.NewRNG(1))
	s := tx.Sentence(5, 9)
	if !strings.HasSuffix(s, ".") {
		t.Fatalf("sentence %q lacks period", s)
	}
	words := strings.Fields(strings.TrimSuffix(s, "."))
	if len(words) < 5 || len(words) > 9 {
		t.Fatalf("sentence has %d words", len(words))
	}
	if s[0] < 'A' || s[0] > 'Z' {
		t.Fatalf("sentence %q not capitalized", s)
	}

	p := tx.Paragraph(3)
	if strings.Count(p, ".") < 3 {
		t.Fatalf("paragraph %q has fewer than 3 sentences", p)
	}
}

func TestTextZipfSkew(t *testing.T) {
	tx := NewText(stats.NewRNG(2))
	counts := map[string]int{}
	for i := 0; i < 20000; i++ {
		counts[tx.Word()]++
	}
	if counts["the"] < counts[WordAt(PoolSize()-1)] {
		t.Fatal("word frequency not skewed toward pool head")
	}
	if len(counts) < 100 {
		t.Fatalf("only %d distinct words drawn", len(counts))
	}
}

func TestPhraseOccursInProse(t *testing.T) {
	tx := NewText(stats.NewRNG(3))
	found := false
	for i := 0; i < 50 && !found; i++ {
		found = strings.Contains(tx.Paragraph(5), Phrase())
	}
	if !found {
		t.Fatalf("phrase %q never appeared in 50 paragraphs", Phrase())
	}
}

func TestNames(t *testing.T) {
	if FirstName(3) != FirstName(3) || LastName(4) != LastName(4) {
		t.Fatal("names not deterministic")
	}
	if FullName(10) == FullName(11) {
		t.Fatal("adjacent full names identical")
	}
	if !strings.Contains(FullName(0), " ") {
		t.Fatalf("FullName(0) = %q lacks space", FullName(0))
	}
}

func TestCountry(t *testing.T) {
	if CountryCount() < 10 {
		t.Fatalf("too few countries: %d", CountryCount())
	}
	if Country(0) == "" || Country(0) != Country(CountryCount()) {
		t.Fatal("Country not cyclic/deterministic")
	}
}

func TestDateFormat(t *testing.T) {
	for _, day := range []int{0, 1, 359, 360, 1000, 9*360 - 1, 9 * 360} {
		d := Date(day)
		if len(d) != 10 || d[4] != '-' || d[7] != '-' {
			t.Fatalf("Date(%d) = %q not ISO", day, d)
		}
		if d < "1995-01-01" || d > "2003-12-30" {
			t.Fatalf("Date(%d) = %q outside window", day, d)
		}
	}
	f := func(day int32) bool {
		d := Date(int(day))
		return len(d) == 10 && d >= "1995-01-01" && d <= "2003-12-30"
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDateMonotoneWithinYear(t *testing.T) {
	// Dates within a single synthetic year must be non-decreasing so date
	// range predicates behave intuitively.
	prev := Date(0)
	for day := 1; day < 360; day++ {
		d := Date(day)
		if d < prev {
			t.Fatalf("Date(%d)=%q < Date(%d)=%q", day, d, day-1, prev)
		}
		prev = d
	}
}

func TestPhoneEmail(t *testing.T) {
	if Phone(5) != Phone(5) {
		t.Fatal("Phone not deterministic")
	}
	if !strings.HasPrefix(Phone(5), "+1-") {
		t.Fatalf("Phone(5) = %q", Phone(5))
	}
	e := Email("Ada Adams", 7)
	if !strings.Contains(e, "@example.org") || !strings.Contains(e, "ada.adams") {
		t.Fatalf("Email = %q", e)
	}
}
