package stats

import (
	"fmt"
	"math"
	"sort"
)

// Dist is a bounded probability distribution over values drawn with an RNG.
// Every XBench distribution carries explicit minimum and maximum values, as
// required by the paper ("the minimum and maximum values of that
// distribution are defined in order to generate finite documents").
type Dist interface {
	// Draw samples one value.
	Draw(r *RNG) float64
	// Bounds returns the inclusive [min, max] support.
	Bounds() (min, max float64)
	// Mean returns the distribution mean (of the unbounded family; the
	// clamping shifts it only marginally for sane parameters).
	Mean() float64
	fmt.Stringer
}

// DrawInt samples a distribution and rounds to the nearest integer.
func DrawInt(r *RNG, d Dist) int {
	return int(math.Round(d.Draw(r)))
}

// Uniform is the continuous uniform distribution on [Lo, Hi].
type Uniform struct{ Lo, Hi float64 }

func (u Uniform) Draw(r *RNG) float64        { return u.Lo + r.Float64()*(u.Hi-u.Lo) }
func (u Uniform) Bounds() (float64, float64) { return u.Lo, u.Hi }
func (u Uniform) Mean() float64              { return (u.Lo + u.Hi) / 2 }
func (u Uniform) String() string             { return fmt.Sprintf("Uniform[%g,%g]", u.Lo, u.Hi) }

// Normal is the normal distribution clamped to [Min, Max].
type Normal struct {
	Mu, Sigma float64
	Min, Max  float64
}

func (n Normal) Draw(r *RNG) float64 {
	// Box-Muller transform.
	u1 := 1 - r.Float64() // in (0,1]
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return clamp(n.Mu+n.Sigma*z, n.Min, n.Max)
}
func (n Normal) Bounds() (float64, float64) { return n.Min, n.Max }
func (n Normal) Mean() float64              { return n.Mu }
func (n Normal) String() string {
	return fmt.Sprintf("Normal(mu=%g,sigma=%g)[%g,%g]", n.Mu, n.Sigma, n.Min, n.Max)
}

// Exponential is the exponential distribution with rate Lambda, shifted to
// start at Min and clamped at Max.
type Exponential struct {
	Lambda   float64
	Min, Max float64
}

func (e Exponential) Draw(r *RNG) float64 {
	x := -math.Log(1-r.Float64()) / e.Lambda
	return clamp(e.Min+x, e.Min, e.Max)
}
func (e Exponential) Bounds() (float64, float64) { return e.Min, e.Max }
func (e Exponential) Mean() float64              { return e.Min + 1/e.Lambda }
func (e Exponential) String() string {
	return fmt.Sprintf("Exp(lambda=%g)[%g,%g]", e.Lambda, e.Min, e.Max)
}

// Zipf draws integer ranks 1..N with probability proportional to 1/rank^S.
// It models the highly skewed element-value and word frequencies of the
// text-centric corpora.
type Zipf struct {
	N int     // number of ranks
	S float64 // skew, > 0
	// cdf is lazily built; Zipf values are immutable after first Draw.
	cdf []float64
}

// NewZipf precomputes the CDF for n ranks with skew s.
func NewZipf(n int, s float64) *Zipf {
	z := &Zipf{N: n, S: s}
	z.build()
	return z
}

func (z *Zipf) build() {
	z.cdf = make([]float64, z.N)
	sum := 0.0
	for i := 1; i <= z.N; i++ {
		sum += 1 / math.Pow(float64(i), z.S)
		z.cdf[i-1] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
}

func (z *Zipf) Draw(r *RNG) float64 {
	if z.cdf == nil {
		z.build()
	}
	u := r.Float64()
	i := sort.SearchFloat64s(z.cdf, u)
	if i >= z.N {
		i = z.N - 1
	}
	return float64(i + 1)
}
func (z *Zipf) Bounds() (float64, float64) { return 1, float64(z.N) }
func (z *Zipf) Mean() float64 {
	if z.cdf == nil {
		z.build()
	}
	m, prev := 0.0, 0.0
	for i, c := range z.cdf {
		m += float64(i+1) * (c - prev)
		prev = c
	}
	return m
}
func (z *Zipf) String() string { return fmt.Sprintf("Zipf(n=%d,s=%g)", z.N, z.S) }

// Categorical draws an index 0..len(Weights)-1 with the given weights.
// It models "probability distribution of instance occurrences of immediate
// child elements to a parent element" for small discrete choices.
type Categorical struct {
	Weights []float64
	total   float64
}

// NewCategorical builds a categorical distribution; weights need not sum
// to 1. It panics on empty or non-positive total weight.
func NewCategorical(weights ...float64) *Categorical {
	c := &Categorical{Weights: weights}
	for _, w := range weights {
		if w < 0 {
			panic("stats: negative categorical weight")
		}
		c.total += w
	}
	if len(weights) == 0 || c.total <= 0 {
		panic("stats: categorical needs positive total weight")
	}
	return c
}

func (c *Categorical) Draw(r *RNG) float64 {
	u := r.Float64() * c.total
	acc := 0.0
	for i, w := range c.Weights {
		acc += w
		if u < acc {
			return float64(i)
		}
	}
	return float64(len(c.Weights) - 1)
}
func (c *Categorical) Bounds() (float64, float64) { return 0, float64(len(c.Weights) - 1) }
func (c *Categorical) Mean() float64 {
	m := 0.0
	for i, w := range c.Weights {
		m += float64(i) * w / c.total
	}
	return m
}
func (c *Categorical) String() string { return fmt.Sprintf("Categorical(%d)", len(c.Weights)) }

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
