package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(7)
	s1 := r.Split(1)
	s2 := r.Split(2)
	s1again := r.Split(1)
	if s1.Uint64() != s1again.Uint64() {
		t.Fatal("Split is not deterministic for the same label")
	}
	if v1, v2 := s1.Uint64(), s2.Uint64(); v1 == v2 {
		t.Fatal("Split streams for different labels coincide")
	}
	// Splitting must not advance the parent.
	before := *r
	_ = r.Split(99)
	if *r != before {
		t.Fatal("Split mutated the parent RNG")
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for n := 1; n <= 17; n++ {
		seen := map[int]bool{}
		for i := 0; i < 200*n; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
			seen[v] = true
		}
		if len(seen) != n {
			t.Fatalf("Intn(%d) never produced all %d values (got %d)", n, n, len(seen))
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(-3, 5)
		if v < -3 || v > 5 {
			t.Fatalf("IntRange(-3,5) = %d", v)
		}
	}
	if v := r.IntRange(4, 4); v != 4 {
		t.Fatalf("IntRange(4,4) = %d", v)
	}
	// Reversed bounds are normalized.
	if v := r.IntRange(9, 2); v < 2 || v > 9 {
		t.Fatalf("IntRange(9,2) = %d", v)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(5)
	sum := 0.0
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", f)
		}
		sum += f
	}
	if mean := sum / 10000; mean < 0.45 || mean > 0.55 {
		t.Fatalf("Float64 mean %g far from 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(9)
	quickCheck := func(n uint8) bool {
		m := int(n%50) + 1
		p := r.Perm(m)
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == m
	}
	if err := quick.Check(quickCheck, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPick(t *testing.T) {
	r := NewRNG(13)
	items := []string{"a", "b", "c"}
	counts := map[string]int{}
	for i := 0; i < 3000; i++ {
		counts[Pick(r, items)]++
	}
	for _, it := range items {
		if counts[it] < 700 {
			t.Fatalf("Pick starved %q: %v", it, counts)
		}
	}
}

func TestUniformStats(t *testing.T) {
	r := NewRNG(1)
	d := Uniform{10, 20}
	for i := 0; i < 5000; i++ {
		v := d.Draw(r)
		if v < 10 || v >= 20 {
			t.Fatalf("Uniform draw %g outside [10,20)", v)
		}
	}
	if m := d.Mean(); m != 15 {
		t.Fatalf("Uniform mean = %g", m)
	}
}

func TestNormalClamped(t *testing.T) {
	r := NewRNG(2)
	d := Normal{Mu: 50, Sigma: 30, Min: 0, Max: 100}
	sum := 0.0
	for i := 0; i < 5000; i++ {
		v := d.Draw(r)
		if v < 0 || v > 100 {
			t.Fatalf("Normal draw %g outside clamp", v)
		}
		sum += v
	}
	if mean := sum / 5000; math.Abs(mean-50) > 3 {
		t.Fatalf("clamped Normal mean %g far from 50", mean)
	}
}

func TestExponentialShape(t *testing.T) {
	r := NewRNG(4)
	d := Exponential{Lambda: 0.5, Min: 1, Max: 100}
	below, total := 0, 20000
	for i := 0; i < total; i++ {
		v := d.Draw(r)
		if v < 1 || v > 100 {
			t.Fatalf("Exponential draw %g outside bounds", v)
		}
		if v < d.Mean() {
			below++
		}
	}
	// Exponential is right-skewed: well over half the mass below the mean.
	if frac := float64(below) / float64(total); frac < 0.55 {
		t.Fatalf("Exponential not right-skewed: %g below mean", frac)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(6)
	z := NewZipf(100, 1.0)
	counts := make([]int, 101)
	for i := 0; i < 20000; i++ {
		v := int(z.Draw(r))
		if v < 1 || v > 100 {
			t.Fatalf("Zipf draw %d out of range", v)
		}
		counts[v]++
	}
	if counts[1] <= counts[50]*3 {
		t.Fatalf("Zipf rank 1 (%d) not much more frequent than rank 50 (%d)",
			counts[1], counts[50])
	}
	lo, hi := z.Bounds()
	if lo != 1 || hi != 100 {
		t.Fatalf("Zipf bounds = %g,%g", lo, hi)
	}
}

func TestCategorical(t *testing.T) {
	r := NewRNG(8)
	c := NewCategorical(1, 0, 3)
	counts := make([]int, 3)
	for i := 0; i < 8000; i++ {
		counts[int(c.Draw(r))]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight category drawn %d times", counts[1])
	}
	if counts[2] < counts[0]*2 {
		t.Fatalf("weights not respected: %v", counts)
	}
	if m := c.Mean(); math.Abs(m-1.5) > 1e-9 {
		t.Fatalf("Categorical mean = %g, want 1.5", m)
	}
}

func TestCategoricalPanics(t *testing.T) {
	for _, weights := range [][]float64{{}, {0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCategorical(%v) did not panic", weights)
				}
			}()
			NewCategorical(weights...)
		}()
	}
}

func TestDrawIntRounds(t *testing.T) {
	r := NewRNG(10)
	d := Uniform{2.4, 2.6}
	for i := 0; i < 100; i++ {
		if v := DrawInt(r, d); v != 2 && v != 3 {
			t.Fatalf("DrawInt = %d", v)
		}
	}
}
