package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the descriptive statistics the paper's analysis phase
// collects for each schema parameter (child counts, value lengths, ...).
type Summary struct {
	N            int
	Min, Max     float64
	Mean, StdDev float64
	Median       float64
	Skewness     float64
	// ExKurtosis is the excess kurtosis (0 for normal, -1.2 for uniform,
	// 6 for exponential).
	ExKurtosis float64
}

// Summarize computes descriptive statistics of xs. It returns a zero
// Summary for empty input.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	s.Median = sorted[len(sorted)/2]
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	s.Mean = sum / float64(s.N)
	m2, m3, m4 := 0.0, 0.0, 0.0
	for _, x := range xs {
		d := x - s.Mean
		m2 += d * d
		m3 += d * d * d
		m4 += d * d * d * d
	}
	m2 /= float64(s.N)
	m3 /= float64(s.N)
	m4 /= float64(s.N)
	s.StdDev = math.Sqrt(m2)
	if m2 > 0 {
		s.Skewness = m3 / math.Pow(m2, 1.5)
		s.ExKurtosis = m4/(m2*m2) - 3
	}
	return s
}

// Fit picks the distribution family that best matches xs by the method of
// moments, reproducing the paper's step "standard probability distributions
// are fit to the data". Candidates: Uniform, Normal, Exponential.
func Fit(xs []float64) Dist {
	s := Summarize(xs)
	if s.N == 0 {
		return Uniform{0, 0}
	}
	if s.StdDev == 0 {
		return Uniform{s.Min, s.Max}
	}
	candidates := []Dist{
		Uniform{s.Min, s.Max},
		Normal{Mu: s.Mean, Sigma: s.StdDev, Min: s.Min, Max: s.Max},
		Exponential{Lambda: 1 / math.Max(s.Mean-s.Min, 1e-9), Min: s.Min, Max: s.Max},
	}
	best, bestErr := candidates[0], math.Inf(1)
	for _, d := range candidates {
		e := fitError(d, s)
		if e < bestErr {
			best, bestErr = d, e
		}
	}
	return best
}

// fitError scores how far d's shape is from the sample's, using the
// (skewness, excess-kurtosis) signature that separates the three families:
// uniform (0, -1.2), normal (0, 0), exponential (2, 6). Lower is better.
func fitError(d Dist, s Summary) float64 {
	meanErr := math.Abs(d.Mean()-s.Mean) / math.Max(math.Abs(s.Mean), 1)
	var skew, exKurt float64
	switch d.(type) {
	case Uniform:
		skew, exKurt = 0, -1.2
	case Normal:
		skew, exKurt = 0, 0
	case Exponential:
		skew, exKurt = 2, 6
	}
	skewErr := math.Abs(skew - s.Skewness)
	kurtErr := math.Abs(exKurt - s.ExKurtosis)
	var implied float64
	switch t := d.(type) {
	case Uniform:
		implied = (t.Hi - t.Lo) / math.Sqrt(12)
	case Normal:
		implied = t.Sigma
	case Exponential:
		implied = 1 / t.Lambda
	}
	sdErr := math.Abs(implied-s.StdDev) / math.Max(s.StdDev, 1e-9)
	return meanErr + 0.5*skewErr + 0.25*kurtErr + sdErr
}

// Histogram counts occurrences of integer-valued samples, the raw form in
// which the paper's analyzer gathers element/attribute statistics.
type Histogram struct {
	counts map[int]int
	total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{counts: map[int]int{}} }

// Add records one observation.
func (h *Histogram) Add(v int) { h.counts[v]++; h.total++ }

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// Freq returns the relative frequency of v.
func (h *Histogram) Freq(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[v]) / float64(h.total)
}

// Values returns the observed values in ascending order.
func (h *Histogram) Values() []int {
	vs := make([]int, 0, len(h.counts))
	for v := range h.counts {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	return vs
}

// Samples expands the histogram back to a float sample slice (ordered).
func (h *Histogram) Samples() []float64 {
	var xs []float64
	for _, v := range h.Values() {
		for i := 0; i < h.counts[v]; i++ {
			xs = append(xs, float64(v))
		}
	}
	return xs
}

// String renders a compact textual form for diagnostics.
func (h *Histogram) String() string {
	return fmt.Sprintf("Histogram(n=%d, distinct=%d)", h.total, len(h.counts))
}
