package stats

import (
	"math"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.Median != 3 {
		t.Fatalf("Summarize basic stats wrong: %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("StdDev = %g", s.StdDev)
	}
	if math.Abs(s.Skewness) > 1e-9 {
		t.Fatalf("symmetric sample has skewness %g", s.Skewness)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatalf("empty Summarize: %+v", s)
	}
}

func TestFitRecoversFamilies(t *testing.T) {
	r := NewRNG(77)
	draw := func(d Dist, n int) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = d.Draw(r)
		}
		return xs
	}

	if _, ok := Fit(draw(Uniform{0, 100}, 4000)).(Uniform); !ok {
		t.Error("Fit did not recover Uniform family")
	}
	if _, ok := Fit(draw(Normal{Mu: 50, Sigma: 5, Min: 0, Max: 100}, 4000)).(Normal); !ok {
		t.Error("Fit did not recover Normal family")
	}
	if _, ok := Fit(draw(Exponential{Lambda: 0.2, Min: 0, Max: 1000}, 4000)).(Exponential); !ok {
		t.Error("Fit did not recover Exponential family")
	}
}

func TestFitDegenerate(t *testing.T) {
	d := Fit([]float64{7, 7, 7, 7})
	lo, hi := d.Bounds()
	if lo != 7 || hi != 7 {
		t.Fatalf("constant sample fit bounds = [%g,%g]", lo, hi)
	}
	if Fit(nil) == nil {
		t.Fatal("Fit(nil) returned nil")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int{1, 2, 2, 3, 3, 3} {
		h.Add(v)
	}
	if h.Total() != 6 {
		t.Fatalf("Total = %d", h.Total())
	}
	if f := h.Freq(3); math.Abs(f-0.5) > 1e-9 {
		t.Fatalf("Freq(3) = %g", f)
	}
	if f := h.Freq(99); f != 0 {
		t.Fatalf("Freq(99) = %g", f)
	}
	vs := h.Values()
	if len(vs) != 3 || vs[0] != 1 || vs[2] != 3 {
		t.Fatalf("Values = %v", vs)
	}
	if xs := h.Samples(); len(xs) != 6 || xs[0] != 1 || xs[5] != 3 {
		t.Fatalf("Samples = %v", xs)
	}
	// Round-trip: fitting the histogram samples must not panic and should
	// stay within the observed bounds.
	d := Fit(h.Samples())
	if lo, hi := d.Bounds(); lo < 1 || hi > 3 {
		t.Fatalf("fit bounds [%g,%g] exceed data", lo, hi)
	}
}
