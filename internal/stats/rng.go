// Package stats provides the deterministic random number generation and
// the probability distributions that drive XBench database generation.
//
// The paper fits standard probability distributions (with explicit minimum
// and maximum bounds "to generate finite documents") to statistics gathered
// from real corpora; this package supplies those distribution families plus
// a simple moment-based fitter. All randomness flows through RNG, a small
// self-contained PCG32 generator, so a (class, size, seed) triple always
// regenerates byte-identical databases on any platform and Go version.
package stats

// RNG is a PCG-XSH-RR 32-bit pseudo random generator. It is deliberately
// self-contained (no math/rand) so generated databases are reproducible
// across Go releases.
type RNG struct {
	state uint64
	inc   uint64
}

const pcgMult = 6364136223846793005

// NewRNG returns a generator seeded deterministically from seed. Distinct
// streams for the same seed can be created with Split.
func NewRNG(seed uint64) *RNG {
	r := &RNG{inc: (seed << 1) | 1}
	r.state = splitmix64(seed)
	r.Uint32()
	return r
}

// Split derives an independent stream keyed by label, leaving r unchanged.
// It is used to give each document (or each template field) its own stream
// so that generating documents in a different order yields the same data.
func (r *RNG) Split(label uint64) *RNG {
	s := splitmix64(r.state ^ splitmix64(label))
	n := &RNG{inc: (splitmix64(label+0x9e3779b97f4a7c15) << 1) | 1}
	n.state = s
	n.Uint32()
	return n
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Uint32 returns the next 32 random bits.
func (r *RNG) Uint32() uint32 {
	old := r.state
	r.state = old*pcgMult + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	return uint64(r.Uint32())<<32 | uint64(r.Uint32())
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method, unbiased.
	bound := uint32(n)
	threshold := -bound % bound
	for {
		v := r.Uint32()
		m := uint64(v) * uint64(bound)
		if uint32(m) >= threshold {
			return int(m >> 32)
		}
	}
}

// IntRange returns a uniform int in [lo, hi] inclusive.
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		lo, hi = hi, lo
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Pick returns a uniformly chosen element of items.
func Pick[T any](r *RNG, items []T) T {
	return items[r.Intn(len(items))]
}
