// Package router is the sharded serving tier: a coordinator that
// hash-partitions documents across N engine shards — each an independent
// wire server, typically `xbench serve` processes — and satisfies
// core.Engine itself, so the driver, facade and CLI run against a cluster
// exactly as they run against one engine.
//
// Placement is a consistent-hash ring (this file): every shard projects
// Vnodes virtual points onto a 64-bit circle and a document belongs to
// the shard owning the first point at or clockwise from the document
// name's hash. Adding a shard therefore steals only the key ranges its
// own points carve out of existing arcs — no document ever moves between
// two old shards, which is what keeps rebalancing proportional to 1/N
// instead of reshuffling everything (router.go, AddShard).
//
// The same ring function runs on both sides of the wire: the router uses
// it to route, and `xbench serve --shard=i/n` uses Partition to load only
// its slice of a deterministically generated database, so a SIGKILLed
// shard can recover its partition from scratch (base generation + its own
// journal) without asking the router what it owned.
package router

import (
	"fmt"
	"hash/fnv"
	"sort"

	"xbench/internal/core"
)

// DefaultVnodes is the virtual-node count per shard when Config.Vnodes is
// zero. 64 points per shard keeps the expected imbalance between shards
// in the low single-digit percent range while construction and lookup
// stay trivially cheap.
const DefaultVnodes = 64

// point is one virtual node on the circle.
type point struct {
	hash  uint64
	shard int
}

// Ring is an immutable consistent-hash ring over shard indices 0..N-1.
// Build a new one to change the topology; Router swaps rings atomically
// under its topology lock.
type Ring struct {
	shards int
	vnodes int
	points []point // sorted by hash
}

// NewRing builds the ring for shard indices 0..shards-1 with vnodes
// virtual points each (<= 0 selects DefaultVnodes). Construction is fully
// deterministic: every process that agrees on (shards, vnodes) agrees on
// ownership of every name.
func NewRing(shards, vnodes int) *Ring {
	if shards < 1 {
		panic("router: ring needs at least one shard")
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{shards: shards, vnodes: vnodes, points: make([]point, 0, shards*vnodes)}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: hashName(fmt.Sprintf("shard-%d/vnode-%d", s, v)), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Shards returns the shard count the ring was built for.
func (r *Ring) Shards() int { return r.shards }

// Vnodes returns the virtual-node count per shard.
func (r *Ring) Vnodes() int { return r.vnodes }

// Owner returns the shard index owning a document name.
func (r *Ring) Owner(name string) int {
	return r.points[r.slot(hashName(name))].shard
}

// RangeOf returns the index of the virtual-node arc a name falls in —
// names sharing an arc form one migration range. The index is only
// meaningful relative to this ring.
func (r *Ring) RangeOf(name string) int {
	return r.slot(hashName(name))
}

// slot locates the first point at or clockwise from h (wrapping at the
// top of the circle).
func (r *Ring) slot(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// hashName hashes a document name onto the circle: FNV-64a (stable across
// processes and Go releases, unlike maphash) through a splitmix64
// finalizer. The finalizer matters — FNV barely avalanches on inputs that
// differ only in a trailing digit, which is exactly what vnode labels and
// generated document names look like, and without it a 4-shard ring gave
// one shard 1.8× its fair share.
func hashName(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Partition returns a shallow copy of db holding only the documents the
// ring assigns to shard. `xbench serve --shard=i/n` loads exactly this
// slice, so the union of all shards' partitions is the whole database and
// the intersection of any two is empty.
func (r *Ring) Partition(db *core.Database, shard int) *core.Database {
	part := *db
	part.Docs = nil
	for _, d := range db.Docs {
		if r.Owner(d.Name) == shard {
			part.Docs = append(part.Docs, d)
		}
	}
	return &part
}
