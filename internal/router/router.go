// The Router: a core.Engine whose "storage" is N remote shards.
//
// Routing: single-document operations — the U1-U3 updates and any query
// the RouteKey function can pin to one document — go to the owning shard
// alone; every other query scatters to all shards and gathers the union
// (documents are partitioned, so a cross-document query's result is
// exactly the concatenation of its per-shard results). Updates ride the
// shard's primary; reads ride a failover client ordered by the read
// preference, so they survive a dead primary by falling over to its
// journal-fed replicas (replica.go).
//
// Consistency of topology changes: a topology RWMutex covers every
// engine call for its whole duration. Rebalancing (AddShard) flips the
// ring first — brand-new documents immediately land on the new shard —
// then migrates each moved vnode arc under short exclusive sections:
// copy to the target, flip the catalog, delete from the source. Readers
// hold the read lock across route + execute, so at every observable
// instant a document lives on exactly one shard; no scatter can see a
// document twice or lose it mid-move.
//
// Partial failure: fail-fast (default) cancels the scatter on the first
// shard error and returns it. Degraded mode returns the union of the
// shards that answered, with core.Result.ShardErrors counting those that
// did not — the serving tier's "stale is better than down" option.
package router

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"xbench/internal/client"
	"xbench/internal/core"
	"xbench/internal/metrics"
)

// ReadPref selects which member of a shard serves reads.
type ReadPref int

const (
	// ReadPrimary prefers the shard primary, falling over to replicas only
	// when the primary's breaker condemns it. Reads are always fresh.
	ReadPrimary ReadPref = iota
	// ReadReplica prefers the replicas (in declaration order), keeping the
	// primary as the last resort. Reads may trail the primary by the
	// journal-shipping lag; updates still see their own writes only via
	// the primary.
	ReadReplica
)

// Shard declares one shard's members: the primary every update goes to
// and the replicas its journal feeds.
type Shard struct {
	Primary  string
	Replicas []string
}

// RouteKeyFunc maps a query instance to the single document that fully
// answers it. Returning ok=false scatters the query to every shard.
type RouteKeyFunc func(q core.QueryID, p core.Params) (doc string, ok bool)

// DefaultRouteKey recognizes the two query shapes a single document fully
// answers. Q16 is doc($DOC) — retrieval of one named document — so it
// routes to the DOC param's owner; scattered to a partitioned corpus it
// would fail on every shard but the owner with "document not found". Q1
// probing an update target id ("OU<seq>"/"aU<seq>") is answered entirely
// by the corresponding update document. Everything else scatters — for a
// partitioned corpus the union of per-shard answers is the correct result
// of any cross-document query.
func DefaultRouteKey(q core.QueryID, p core.Params) (string, bool) {
	switch q {
	case core.Q16:
		if doc := p.Get("DOC"); doc != "" {
			return doc, true
		}
	case core.Q1:
		x := p.Get("X")
		switch {
		case strings.HasPrefix(x, "OU") && len(x) > 2:
			return "order-update-" + x[2:] + ".xml", true
		case strings.HasPrefix(x, "aU") && len(x) > 2:
			return "article-update-" + x[2:] + ".xml", true
		}
	}
	return "", false
}

// Config controls a Router.
type Config struct {
	// Vnodes is the virtual-node count per shard; <= 0 selects
	// DefaultVnodes. Shard servers loading their own partition
	// (`xbench serve --shard`) must agree on it.
	Vnodes int
	// Fanout bounds concurrent per-shard legs of one scatter; <= 0
	// selects 8.
	Fanout int
	// Degraded switches the partial-failure policy from fail-fast to
	// degraded results: scatters return the union of the shards that
	// answered, with Result.ShardErrors counting those that did not.
	Degraded bool
	// ReadPref selects primary-preferred (fresh) or replica-preferred
	// (offloaded, possibly stale) reads.
	ReadPref ReadPref
	// RouteKey pins queries to single documents; nil selects
	// DefaultRouteKey.
	RouteKey RouteKeyFunc
	// Metrics receives the router's per-shard counters and gather
	// histogram; nil creates a private registry (readable via Metrics()).
	Metrics *metrics.Registry
	// Client is the template for every per-shard connection (pooling,
	// retries, breakers, pipelining). Zero values select the client
	// package defaults.
	Client client.Config
}

func (c Config) withDefaults() Config {
	if c.Vnodes <= 0 {
		c.Vnodes = DefaultVnodes
	}
	if c.Fanout <= 0 {
		c.Fanout = 8
	}
	if c.RouteKey == nil {
		c.RouteKey = DefaultRouteKey
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
	return c
}

// catEntry is one document's placement. Data is the document's bytes —
// the router is the placement authority, and holding the bytes is what
// makes rebalancing self-contained: migration replays the document onto
// its new owner without needing a document-fetch op on the shards.
type catEntry struct {
	shard int
	data  []byte
}

// shardConn is one shard's connections and counters.
type shardConn struct {
	spec  Shard
	write *client.Client // primary only: updates, loads, index builds
	read  *client.Client // failover list ordered by the read preference

	routed  *metrics.Counter // router.shard.<i>.routed
	scatter *metrics.Counter // router.shard.<i>.scatter
	errs    *metrics.Counter // router.shard.<i>.errors
	fo      *metrics.Counter // router.shard.<i>.failovers (synced lazily)
}

func (sc *shardConn) close() error {
	err := sc.write.Close()
	if sc.read != sc.write {
		err = errors.Join(err, sc.read.Close())
	}
	return err
}

// Router is the scatter-gather coordinator. It satisfies core.Engine.
type Router struct {
	cfg  Config
	reg  *metrics.Registry
	gath *metrics.Histogram // router.gather: scatter wall time
	name string

	// mu is the topology lock: every engine call holds it shared for its
	// whole duration; AddShard's migration sections hold it exclusive.
	mu     sync.RWMutex
	ring   *Ring
	shards []*shardConn

	// catalog maps every document placed through this router to its
	// current shard (authoritative over the ring, which only places names
	// the catalog has never seen). Guarded by catMu, always acquired
	// under mu — never the other way around.
	catMu   sync.RWMutex
	catalog map[string]catEntry
}

// Dial connects to every shard and builds the router. All shards must be
// up; a partial cluster is a configuration error at construction time
// (at runtime it is what the partial-failure policy is for).
func Dial(shards []Shard, cfg Config) (*Router, error) {
	if len(shards) == 0 {
		return nil, errors.New("router: no shards")
	}
	cfg = cfg.withDefaults()
	r := &Router{
		cfg:     cfg,
		reg:     cfg.Metrics,
		gath:    cfg.Metrics.Histogram("router.gather"),
		ring:    NewRing(len(shards), cfg.Vnodes),
		catalog: map[string]catEntry{},
	}
	for i, spec := range shards {
		sc, err := r.dialShard(i, spec)
		if err != nil {
			for _, prev := range r.shards {
				prev.close()
			}
			return nil, fmt.Errorf("router: shard %d: %w", i, err)
		}
		r.shards = append(r.shards, sc)
	}
	r.name = fmt.Sprintf("router(%d×%s)", len(shards), r.shards[0].write.Name())
	return r, nil
}

// dialShard opens one shard's write and read connections and registers
// its counters.
func (r *Router) dialShard(i int, spec Shard) (*shardConn, error) {
	write, err := client.Dial(spec.Primary, r.cfg.Client)
	if err != nil {
		return nil, err
	}
	read := write
	if len(spec.Replicas) > 0 {
		var addrs []string
		if r.cfg.ReadPref == ReadReplica {
			addrs = append(append(addrs, spec.Replicas...), spec.Primary)
		} else {
			addrs = append(append(addrs, spec.Primary), spec.Replicas...)
		}
		if read, err = client.DialAddrs(addrs, r.cfg.Client); err != nil {
			write.Close()
			return nil, err
		}
	}
	pfx := fmt.Sprintf("router.shard.%d.", i)
	return &shardConn{
		spec: spec, write: write, read: read,
		routed:  r.reg.Counter(pfx + "routed"),
		scatter: r.reg.Counter(pfx + "scatter"),
		errs:    r.reg.Counter(pfx + "errors"),
		fo:      r.reg.Counter(pfx + "failovers"),
	}, nil
}

// Metrics returns the router's registry after syncing the per-shard
// failover counters from the underlying clients.
func (r *Router) Metrics() *metrics.Registry {
	r.mu.RLock()
	for _, sc := range r.shards {
		n := sc.read.Failovers()
		if sc.read != sc.write {
			n += sc.write.Failovers()
		}
		sc.fo.Set(int64(n))
	}
	r.mu.RUnlock()
	return r.reg
}

// Shards returns the current shard count.
func (r *Router) Shards() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.shards)
}

// ownerLocked resolves a document's shard: the catalog is authoritative
// for every name placed through this router; the ring places names the
// catalog has never seen. Caller holds mu (shared or exclusive).
func (r *Router) ownerLocked(name string) int {
	r.catMu.RLock()
	ent, ok := r.catalog[name]
	r.catMu.RUnlock()
	if ok {
		return ent.shard
	}
	return r.ring.Owner(name)
}

func (r *Router) setCat(name string, shard int, data []byte) {
	r.catMu.Lock()
	r.catalog[name] = catEntry{shard: shard, data: data}
	r.catMu.Unlock()
}

func (r *Router) delCat(name string) {
	r.catMu.Lock()
	delete(r.catalog, name)
	r.catMu.Unlock()
}

// --- core.Engine ---

// Name labels the cluster after its shards' engine.
func (r *Router) Name() string { return r.name }

// Supports asks the first shard: shards are homogeneous by construction
// (the same engine binary serving partitions of the same database).
func (r *Router) Supports(c core.Class, s core.Size) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.shards[0].write.Supports(c, s)
}

// Load partitions the database by the ring and bulk-loads every shard's
// slice concurrently. The catalog is rebuilt to cover exactly db's
// documents.
func (r *Router) Load(ctx context.Context, db *core.Database) (core.LoadStats, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	parts := make([]*core.Database, len(r.shards))
	for i := range r.shards {
		parts[i] = r.ring.Partition(db, i)
	}
	stats := make([]core.LoadStats, len(r.shards))
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for i, sc := range r.shards {
		wg.Add(1)
		go func(i int, sc *shardConn) {
			defer wg.Done()
			stats[i], errs[i] = sc.write.Load(ctx, parts[i])
			if errs[i] != nil {
				sc.errs.Inc()
			}
		}(i, sc)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return core.LoadStats{}, err
	}
	r.catMu.Lock()
	r.catalog = make(map[string]catEntry, len(db.Docs))
	for i := range parts {
		for _, d := range parts[i].Docs {
			r.catalog[d.Name] = catEntry{shard: i, data: d.Data}
		}
	}
	r.catMu.Unlock()
	var total core.LoadStats
	for _, st := range stats {
		total.Documents += st.Documents
		total.Rows += st.Rows
		total.Nodes += st.Nodes
		total.Bytes += st.Bytes
		total.PageIO += st.PageIO
		total.SkippedMixed += st.SkippedMixed
	}
	return total, nil
}

// BuildIndexes builds the Table 3 indexes on every shard.
func (r *Router) BuildIndexes(specs []core.IndexSpec) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for i, sc := range r.shards {
		wg.Add(1)
		go func(i int, sc *shardConn) {
			defer wg.Done()
			errs[i] = sc.write.BuildIndexes(specs)
		}(i, sc)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Execute routes or scatters one query. A query the RouteKey pins to a
// document runs on that document's owner alone; everything else runs on
// every shard and returns the union.
func (r *Router) Execute(ctx context.Context, q core.QueryID, p core.Params) (core.Result, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if name, ok := r.cfg.RouteKey(q, p); ok {
		sc := r.shards[r.ownerLocked(name)]
		sc.routed.Inc()
		res, err := sc.read.Execute(ctx, q, p)
		if err != nil {
			sc.errs.Inc()
		}
		return res, err
	}
	return r.scatterLocked(ctx, q, p)
}

// scatterLocked fans one query out to every shard (bounded by Fanout)
// and merges the answers. Caller holds mu shared.
func (r *Router) scatterLocked(ctx context.Context, q core.QueryID, p core.Params) (core.Result, error) {
	start := time.Now()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type legResult struct {
		res core.Result
		err error
	}
	legs := make([]legResult, len(r.shards))
	sem := make(chan struct{}, r.cfg.Fanout)
	var wg sync.WaitGroup
	var once sync.Once
	var abortErr error
	for i, sc := range r.shards {
		wg.Add(1)
		go func(i int, sc *shardConn) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				legs[i].err = ctx.Err()
				return
			}
			sc.scatter.Inc()
			legs[i].res, legs[i].err = sc.read.Execute(ctx, q, p)
			if err := legs[i].err; err != nil {
				sc.errs.Inc()
				// Semantic declines (query undefined, combination
				// unsupported) are deterministic and identical on every
				// shard; infrastructure failures trip fail-fast.
				if !r.cfg.Degraded && !core.IsNotAnswered(err) {
					once.Do(func() { abortErr = err; cancel() })
				}
			}
		}(i, sc)
	}
	wg.Wait()
	r.gath.Observe(time.Since(start))

	var out core.Result
	answered, failed := 0, 0
	var firstErr error
	for i := range legs {
		err := legs[i].err
		if err == nil {
			out.Items = append(out.Items, legs[i].res.Items...)
			out.PageIO += legs[i].res.PageIO
			out.MixedContentLost = out.MixedContentLost || legs[i].res.MixedContentLost
			if answered == 0 {
				out.OrderGuaranteed = legs[i].res.OrderGuaranteed
			}
			answered++
			continue
		}
		if core.IsNotAnswered(err) {
			return core.Result{}, err
		}
		failed++
		if firstErr == nil {
			firstErr = err
		}
	}
	if abortErr != nil {
		return core.Result{}, abortErr
	}
	if failed > 0 && !r.cfg.Degraded {
		return core.Result{}, firstErr
	}
	if answered == 0 {
		if firstErr == nil {
			firstErr = errors.New("router: no shards")
		}
		return core.Result{}, fmt.Errorf("router: all %d shards failed: %w", failed, firstErr)
	}
	// A union over more than one shard interleaves per-shard sequences,
	// so global document order is guaranteed only when one shard answered
	// everything.
	out.OrderGuaranteed = out.OrderGuaranteed && answered == 1 && failed == 0
	out.ShardErrors = failed
	return out, nil
}

// ColdReset drops every shard primary's caches (replicas keep theirs:
// cold-run measurements read the primaries, and the journal puller's
// steady trickle would re-warm replicas immediately anyway).
func (r *Router) ColdReset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var wg sync.WaitGroup
	for _, sc := range r.shards {
		wg.Add(1)
		go func(sc *shardConn) {
			defer wg.Done()
			sc.write.ColdReset()
		}(sc)
	}
	wg.Wait()
}

// PageIO sums the shard primaries' cumulative page I/O.
func (r *Router) PageIO() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var total int64
	for _, sc := range r.shards {
		total += sc.write.PageIO()
	}
	return total
}

// InsertDocument routes U1 to the owning shard's primary. The context's
// idempotency key (wire.WithIdemKey, attached by a front-end server) — or
// the shard client's own key when there is none — makes the hop
// exactly-once.
func (r *Router) InsertDocument(ctx context.Context, name string, data []byte) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	owner := r.ownerLocked(name)
	sc := r.shards[owner]
	sc.routed.Inc()
	if err := sc.write.InsertDocument(ctx, name, data); err != nil {
		sc.errs.Inc()
		return err
	}
	r.setCat(name, owner, data)
	return nil
}

// ReplaceDocument routes U2 to the owning shard's primary.
func (r *Router) ReplaceDocument(ctx context.Context, name string, data []byte) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	owner := r.ownerLocked(name)
	sc := r.shards[owner]
	sc.routed.Inc()
	if err := sc.write.ReplaceDocument(ctx, name, data); err != nil {
		sc.errs.Inc()
		return err
	}
	r.setCat(name, owner, data)
	return nil
}

// DeleteDocument routes U3 to the owning shard's primary.
func (r *Router) DeleteDocument(ctx context.Context, name string) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	owner := r.ownerLocked(name)
	sc := r.shards[owner]
	sc.routed.Inc()
	if err := sc.write.DeleteDocument(ctx, name); err != nil {
		sc.errs.Inc()
		return err
	}
	r.delCat(name)
	return nil
}

// Close releases every shard connection. The shard servers keep running —
// like client.Close, this closes the coordinator's handle only.
func (r *Router) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var err error
	for _, sc := range r.shards {
		err = errors.Join(err, sc.close())
	}
	r.shards = nil
	return err
}

var _ core.Engine = (*Router)(nil)

// Rebalance reports one AddShard migration.
type Rebalance struct {
	Shard  int // index the new shard joined as
	Moved  int // documents migrated onto it
	Ranges int // vnode arcs they were migrated in
}

// AddShard joins a new shard and rebalances: the ring is regrown first —
// consistent hashing guarantees the new ring takes ranges only FROM
// existing shards TO the new one — and every catalog document whose
// ownership moved is migrated arc by arc. Each arc migrates under the
// exclusive topology lock (copy to target, flip catalog, delete from
// source), so concurrent queries and updates — which hold the shared
// lock for their whole call — observe every document on exactly one
// shard at every instant; they interleave with the migration only
// between arcs.
//
// A migration error aborts the remaining arcs and is returned with the
// partial report; re-invoking rebalancing is safe because the catalog
// already reflects everything that moved.
func (r *Router) AddShard(ctx context.Context, spec Shard) (Rebalance, error) {
	r.mu.Lock()
	if len(r.shards) == 0 {
		r.mu.Unlock()
		return Rebalance{}, errors.New("router: closed")
	}
	newIdx := len(r.shards)
	r.mu.Unlock()

	// Dial outside the lock: a slow or dead new shard must not stall
	// serving.
	sc, err := r.dialShard(newIdx, spec)
	if err != nil {
		return Rebalance{}, fmt.Errorf("router: add shard %d: %w", newIdx, err)
	}

	r.mu.Lock()
	if len(r.shards) != newIdx {
		r.mu.Unlock()
		sc.close()
		return Rebalance{}, errors.New("router: concurrent AddShard")
	}
	newRing := NewRing(newIdx+1, r.cfg.Vnodes)
	r.shards = append(r.shards, sc)
	r.ring = newRing // new document names place onto the new topology now
	r.name = fmt.Sprintf("router(%d×%s)", len(r.shards), r.shards[0].write.Name())

	// Snapshot the moved set: catalog documents whose new-ring owner
	// differs from their current placement. Consistent hashing makes
	// every one of them move TO the new shard (ring_test pins this).
	type moved struct {
		name string
		arc  int
	}
	var movedDocs []moved
	r.catMu.RLock()
	for name, ent := range r.catalog {
		if newRing.Owner(name) != ent.shard {
			movedDocs = append(movedDocs, moved{name: name, arc: newRing.RangeOf(name)})
		}
	}
	r.catMu.RUnlock()
	r.mu.Unlock()

	sort.Slice(movedDocs, func(i, j int) bool {
		if movedDocs[i].arc != movedDocs[j].arc {
			return movedDocs[i].arc < movedDocs[j].arc
		}
		return movedDocs[i].name < movedDocs[j].name
	})

	rep := Rebalance{Shard: newIdx}
	for lo := 0; lo < len(movedDocs); {
		hi := lo
		for hi < len(movedDocs) && movedDocs[hi].arc == movedDocs[lo].arc {
			hi++
		}
		r.mu.Lock()
		for _, m := range movedDocs[lo:hi] {
			r.catMu.RLock()
			ent, ok := r.catalog[m.name]
			r.catMu.RUnlock()
			if !ok || ent.shard == newIdx {
				continue // deleted or re-placed by a concurrent update
			}
			if err := sc.write.ReplaceDocument(ctx, m.name, ent.data); err != nil {
				r.mu.Unlock()
				return rep, fmt.Errorf("router: migrate %s to shard %d: %w", m.name, newIdx, err)
			}
			r.setCat(m.name, newIdx, ent.data)
			if err := r.shards[ent.shard].write.DeleteDocument(ctx, m.name); err != nil {
				r.mu.Unlock()
				return rep, fmt.Errorf("router: migrate %s off shard %d: %w", m.name, ent.shard, err)
			}
			rep.Moved++
		}
		r.mu.Unlock()
		rep.Ranges++
		lo = hi
	}
	return rep, nil
}
