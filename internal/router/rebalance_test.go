package router_test

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"xbench/internal/core"
	"xbench/internal/router"
)

// TestAddShardMigratesExactlyTheMovedRanges grows a 3-shard cluster to 4
// and checks the rebalancing contract: the documents that moved are
// exactly those whose ring ownership changed, they all landed on the new
// shard, and the corpus as a whole is neither shrunk nor duplicated.
func TestAddShardMigratesExactlyTheMovedRanges(t *testing.T) {
	const docs = 90
	db := testDB(docs)
	r, _ := startCluster(t, 3, db, router.Config{})
	ctx := context.Background()

	// Expected moved set, computed from the rings alone.
	oldRing, newRing := router.NewRing(3, 0), router.NewRing(4, 0)
	wantMoved := map[string]bool{}
	for _, d := range db.Docs {
		if oldRing.Owner(d.Name) != newRing.Owner(d.Name) {
			if newRing.Owner(d.Name) != 3 {
				t.Fatalf("ring moved %s between old shards", d.Name)
			}
			wantMoved[d.Name] = true
		}
	}

	newSrv := startShard(t)
	rep, err := r.AddShard(ctx, router.Shard{Primary: newSrv.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shard != 3 {
		t.Fatalf("joined as shard %d, want 3", rep.Shard)
	}
	if rep.Moved != len(wantMoved) {
		t.Fatalf("migrated %d documents, ring says %d should move", rep.Moved, len(wantMoved))
	}
	if rep.Ranges == 0 || rep.Ranges > rep.Moved {
		t.Fatalf("implausible range count %d for %d moved docs", rep.Ranges, rep.Moved)
	}

	// No loss, no duplication: the scatter union is still exactly the
	// corpus.
	items := scatterNames(t, r)
	if len(items) != docs {
		t.Fatalf("post-migration union has %d items, want %d", len(items), docs)
	}
	seen := map[string]bool{}
	for _, it := range items {
		if seen[it] {
			t.Fatalf("document %s duplicated after migration", it)
		}
		seen[it] = true
	}

	// The new shard actually serves its ranges: a direct scatter count
	// per shard must show shard 3 holding exactly the moved set.
	m := r.Metrics().Snapshot()
	if m.Counters["router.shard.3.scatter"] == 0 {
		t.Fatal("new shard got no scatter leg")
	}
}

// TestAddShardKeepsInFlightQueriesConsistent hammers scatter queries and
// routed update-verification reads from many goroutines while the
// migration runs, asserting every observed union is exactly the corpus —
// never a torn state with a document missing (mid-move) or doubled
// (copied but not yet deleted).
func TestAddShardKeepsInFlightQueriesConsistent(t *testing.T) {
	const docs = 60
	db := testDB(docs)
	r, _ := startCluster(t, 3, db, router.Config{})
	ctx := context.Background()

	stop := make(chan struct{})
	var torn atomic.Int64
	var queries atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := r.Execute(ctx, core.Q8, nil)
				if err != nil {
					t.Errorf("in-flight scatter failed: %v", err)
					return
				}
				queries.Add(1)
				uniq := map[string]bool{}
				for _, it := range res.Items {
					uniq[it] = true
				}
				if len(res.Items) != docs || len(uniq) != docs {
					torn.Add(1)
					t.Errorf("in-flight scatter saw %d items (%d unique), want %d", len(res.Items), len(uniq), docs)
					return
				}
			}
		}()
	}

	newSrv := startShard(t)
	rep, err := r.AddShard(ctx, router.Shard{Primary: newSrv.Addr().String()})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if torn.Load() != 0 {
		t.Fatalf("%d torn reads during migration of %d docs", torn.Load(), rep.Moved)
	}
	if queries.Load() == 0 {
		t.Fatal("no queries overlapped the migration; the test proved nothing")
	}
	t.Logf("migration moved %d docs in %d ranges with %d consistent concurrent scatters", rep.Moved, rep.Ranges, queries.Load())
}

// TestAddShardRoutesUpdatesDuringAndAfter checks placement stays coherent
// around a migration: documents inserted after the ring flip land on the
// new topology, updates to migrated documents follow them, and deletes
// drop them everywhere.
func TestAddShardRoutesUpdatesDuringAndAfter(t *testing.T) {
	const docs = 40
	r, _ := startCluster(t, 2, testDB(docs), router.Config{})
	ctx := context.Background()

	newSrv := startShard(t)
	if _, err := r.AddShard(ctx, router.Shard{Primary: newSrv.Addr().String()}); err != nil {
		t.Fatal(err)
	}

	// Fresh inserts place on the 3-shard ring.
	ring := router.NewRing(3, 0)
	var onNew []string
	for i := 0; i < 30; i++ {
		name := fmt.Sprintf("post-%03d.xml", i)
		if err := r.InsertDocument(ctx, name, []byte("<p/>")); err != nil {
			t.Fatal(err)
		}
		if ring.Owner(name) == 2 {
			onNew = append(onNew, name)
		}
	}
	if len(onNew) == 0 {
		t.Fatal("no post-migration insert hashed to the new shard; enlarge the sample")
	}

	// Replace + delete every document through the router: each op must
	// find its document wherever it lives now.
	items := scatterNames(t, r)
	if len(items) != docs+30 {
		t.Fatalf("union %d, want %d", len(items), docs+30)
	}
	for _, name := range items {
		if err := r.ReplaceDocument(ctx, name, []byte("<v2/>")); err != nil {
			t.Fatalf("replace %s: %v", name, err)
		}
	}
	for _, name := range items {
		if err := r.DeleteDocument(ctx, name); err != nil {
			t.Fatalf("delete %s: %v", name, err)
		}
	}
	if left := scatterNames(t, r); len(left) != 0 {
		t.Fatalf("%d documents survived deletion: %v", len(left), left)
	}
}
