package router

import (
	"fmt"
	"testing"

	"xbench/internal/core"
)

func ringNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("doc-%04d.xml", i)
	}
	return names
}

// TestRingDeterministic pins cross-process agreement: two rings built
// from the same (shards, vnodes) assign every name identically. The
// router and `xbench serve --shard` depend on this to agree on ownership
// without talking to each other.
func TestRingDeterministic(t *testing.T) {
	a, b := NewRing(5, 0), NewRing(5, 0)
	for _, name := range ringNames(1000) {
		if a.Owner(name) != b.Owner(name) {
			t.Fatalf("rings disagree on %s", name)
		}
	}
}

// TestRingBalance checks virtual nodes keep the partition sizes sane: no
// shard owns more than twice (or less than a third of) its fair share
// over a 3000-name corpus.
func TestRingBalance(t *testing.T) {
	const shards, names = 4, 3000
	r := NewRing(shards, 0)
	counts := make([]int, shards)
	for _, name := range ringNames(names) {
		counts[r.Owner(name)]++
	}
	fair := names / shards
	for s, c := range counts {
		if c > 2*fair || c < fair/3 {
			t.Fatalf("shard %d owns %d names, fair share is %d: %v", s, c, fair, counts)
		}
	}
}

// TestRingGrowMovesOnlyToNewShard pins the consistent-hashing contract
// rebalancing relies on: growing n -> n+1 changes a name's owner only
// when the NEW shard takes it. A migration therefore never moves a
// document between two old shards.
func TestRingGrowMovesOnlyToNewShard(t *testing.T) {
	for n := 1; n <= 6; n++ {
		old, grown := NewRing(n, 0), NewRing(n+1, 0)
		moved := 0
		for _, name := range ringNames(2000) {
			if o, g := old.Owner(name), grown.Owner(name); o != g {
				if g != n {
					t.Fatalf("grow %d->%d moved %s from shard %d to OLD shard %d", n, n+1, name, o, g)
				}
				moved++
			}
		}
		// The new shard should take roughly 1/(n+1) of the corpus — and
		// certainly not nothing or everything.
		if moved == 0 || moved > 2*2000/(n+1) {
			t.Fatalf("grow %d->%d moved %d of 2000 names", n, n+1, moved)
		}
	}
}

// TestRingPartition checks Partition slices a database into disjoint,
// exhaustive shard slices.
func TestRingPartition(t *testing.T) {
	db := &core.Database{Class: core.DCMD, Size: core.Small}
	for _, name := range ringNames(200) {
		db.Docs = append(db.Docs, core.Doc{Name: name, Data: []byte("<d/>")})
	}
	r := NewRing(3, 0)
	seen := map[string]int{}
	total := 0
	for s := 0; s < 3; s++ {
		part := r.Partition(db, s)
		if part.Class != db.Class || part.Size != db.Size {
			t.Fatal("partition lost database identity")
		}
		for _, d := range part.Docs {
			seen[d.Name]++
			total++
		}
	}
	if total != len(db.Docs) {
		t.Fatalf("partitions cover %d of %d docs", total, len(db.Docs))
	}
	for name, n := range seen {
		if n != 1 {
			t.Fatalf("%s appears in %d partitions", name, n)
		}
	}
}
