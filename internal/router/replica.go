// Read replicas: a replica is a read-only wire server over its own
// engine, kept current by shipping the primary's durable update journal —
// poll OpJournal for the committed window past what it has applied,
// re-apply the records in commit order, advance, repeat. The replica owns
// no durability: on restart it reloads its base database and replays the
// journal from record zero, so its state is always a prefix of what a
// primary crash-recovery would reconstruct, never ahead of it.
//
// Consistency model: eventually consistent, bounded by the poll interval
// plus one apply pass. Updates are rejected at the wire with
// core.ErrReadOnly (server.Config.ReadOnly), so a replica can diverge
// from its primary only by lagging, never by forking.
package router

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"xbench/internal/client"
	"xbench/internal/core"
	"xbench/internal/server"
	"xbench/internal/updatelog"
	"xbench/internal/wire"
)

// ReplicaConfig controls one replica.
type ReplicaConfig struct {
	// Server configures the replica's read-only listener; ReadOnly is
	// forced on regardless of its value here.
	Server server.Config
	// Client configures the connection the journal puller keeps to the
	// primary (retries and breaker settings govern how a replica rides
	// out a primary restart).
	Client client.Config
	// Poll is the journal poll interval; <= 0 selects 50ms. A pull that
	// returns a full window polls again immediately — the interval paces
	// an up-to-date replica, not a catch-up.
	Poll time.Duration
}

// Replica is a running read replica: a read-only server plus the journal
// puller feeding its engine.
type Replica struct {
	srv  *server.Server
	src  *client.Client
	stop context.CancelFunc
	wg   sync.WaitGroup

	applied atomic.Uint64 // journal records applied (== next poll index)
	failed  atomic.Value  // error: first apply failure; puller halts on it
}

// StartReplica loads db into eng, builds its indexes, starts a read-only
// server for it, and begins pulling primaryAddr's journal. The replica
// owns eng from here on (Close closes it, via the server).
func StartReplica(ctx context.Context, eng core.Engine, db *core.Database, specs []core.IndexSpec, primaryAddr string, cfg ReplicaConfig) (*Replica, error) {
	if _, err := eng.Load(ctx, db); err != nil {
		return nil, fmt.Errorf("router: replica load: %w", err)
	}
	if err := eng.BuildIndexes(specs); err != nil {
		return nil, fmt.Errorf("router: replica indexes: %w", err)
	}
	src, err := client.Dial(primaryAddr, cfg.Client)
	if err != nil {
		return nil, fmt.Errorf("router: replica dial primary: %w", err)
	}
	cfg.Server.ReadOnly = true
	srv := server.New(eng, cfg.Server)
	if err := srv.Start(); err != nil {
		src.Close()
		return nil, err
	}
	poll := cfg.Poll
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	pctx, cancel := context.WithCancel(context.Background())
	rep := &Replica{srv: srv, src: src, stop: cancel}
	rep.wg.Add(1)
	go rep.pull(pctx, eng, poll)
	return rep, nil
}

// pull is the shipping loop. Transport errors are retried on the next
// tick (the primary may be restarting — its journal replay will put the
// same records back); an APPLY error halts the loop, because skipping a
// record would fork the replica from its primary silently.
func (rep *Replica) pull(ctx context.Context, eng core.Engine, poll time.Duration) {
	defer rep.wg.Done()
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		resp, err := rep.src.JournalPull(ctx, rep.applied.Load())
		switch {
		case err == nil && len(resp.Records) > 0:
			for _, rec := range resp.Records {
				if aerr := updatelog.Apply(ctx, eng, []updatelog.Record{rec}); aerr != nil {
					rep.failed.Store(fmt.Errorf("router: replica apply record %d: %w", rep.applied.Load(), aerr))
					return
				}
				rep.applied.Add(1)
			}
			if len(resp.Records) >= wire.MaxJournalBatch {
				continue // mid catch-up: pull again immediately
			}
		case err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, client.ErrClosed)):
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// Addr returns the replica's listen address.
func (rep *Replica) Addr() net.Addr { return rep.srv.Addr() }

// Applied returns how many journal records the replica has applied — the
// index its next poll starts from. Tests await catch-up on it.
func (rep *Replica) Applied() uint64 { return rep.applied.Load() }

// Err returns the apply failure that halted the puller, or nil while
// shipping is healthy.
func (rep *Replica) Err() error {
	if v := rep.failed.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// Close stops the puller, the server, and the engine under it.
func (rep *Replica) Close() error {
	rep.stop()
	err := rep.src.Close()
	rep.wg.Wait()
	return errors.Join(err, rep.srv.Close())
}
