package router_test

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"xbench/internal/client"
	"xbench/internal/core"
	"xbench/internal/router"
	"xbench/internal/server"
)

// stubEngine is an in-memory engine for router tests: Q1 with an update
// target id answers from the document map (update verification), Q8
// scatters — it returns one item per stored document — so a cross-shard
// union is countable and duplicates are detectable.
type stubEngine struct {
	mu   sync.Mutex
	docs map[string][]byte
}

func newStub() *stubEngine { return &stubEngine{docs: map[string][]byte{}} }

func (s *stubEngine) Name() string                         { return "stub" }
func (s *stubEngine) Supports(core.Class, core.Size) error { return nil }
func (s *stubEngine) BuildIndexes([]core.IndexSpec) error  { return nil }
func (s *stubEngine) PageIO() int64                        { return 1 }
func (s *stubEngine) ColdReset()                           {}
func (s *stubEngine) Close() error                         { return nil }

func (s *stubEngine) Load(_ context.Context, db *core.Database) (core.LoadStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.docs = map[string][]byte{}
	for _, d := range db.Docs {
		s.docs[d.Name] = d.Data
	}
	return core.LoadStats{Documents: len(db.Docs), Bytes: db.Bytes()}, nil
}

func (s *stubEngine) Execute(_ context.Context, q core.QueryID, p core.Params) (core.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case q == core.Q20:
		return core.Result{}, core.ErrNoQuery
	case q == core.Q16:
		// doc($DOC) semantics, like the real engines: only the owner can
		// answer; everyone else hard-errors. A scatter would fail fail-fast.
		if doc, ok := s.docs[p.Get("DOC")]; ok {
			return core.Result{Items: []string{string(doc)}, OrderGuaranteed: true, PageIO: 1}, nil
		}
		return core.Result{}, fmt.Errorf("stub: document %q not found", p.Get("DOC"))
	case q == core.Q1:
		x := p.Get("X")
		if len(x) > 2 && (strings.HasPrefix(x, "OU") || strings.HasPrefix(x, "aU")) {
			for _, name := range []string{"order-update-" + x[2:] + ".xml", "article-update-" + x[2:] + ".xml"} {
				if doc, ok := s.docs[name]; ok {
					return core.Result{Items: []string{string(doc)}, OrderGuaranteed: true, PageIO: 1}, nil
				}
			}
			return core.Result{}, nil
		}
	}
	// Scatter probe: one item per stored document.
	names := make([]string, 0, len(s.docs))
	for name := range s.docs {
		names = append(names, name)
	}
	sort.Strings(names)
	return core.Result{Items: names, OrderGuaranteed: true, PageIO: int64(len(names))}, nil
}

func (s *stubEngine) InsertDocument(_ context.Context, name string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.docs[name]; ok {
		return fmt.Errorf("stub: document %s exists", name)
	}
	s.docs[name] = data
	return nil
}

func (s *stubEngine) ReplaceDocument(_ context.Context, name string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.docs[name] = data
	return nil
}

func (s *stubEngine) DeleteDocument(_ context.Context, name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.docs[name]; !ok {
		return fmt.Errorf("stub: document %s does not exist", name)
	}
	delete(s.docs, name)
	return nil
}

// testDB builds a database of n one-element documents.
func testDB(n int) *core.Database {
	db := &core.Database{Class: core.DCMD, Size: core.Small}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("doc-%03d.xml", i)
		db.Docs = append(db.Docs, core.Doc{Name: name, Data: []byte("<d n=\"" + name + "\"/>")})
	}
	return db
}

// startShard boots one stub shard server; cleanup closes it.
func startShard(t *testing.T) *server.Server {
	t.Helper()
	srv := server.New(newStub(), server.Config{})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// startCluster boots n shards and a router over them, loaded with db.
func startCluster(t *testing.T, n int, db *core.Database, cfg router.Config) (*router.Router, []*server.Server) {
	t.Helper()
	srvs := make([]*server.Server, n)
	shards := make([]router.Shard, n)
	for i := range srvs {
		srvs[i] = startShard(t)
		shards[i] = router.Shard{Primary: srvs[i].Addr().String()}
	}
	r, err := router.Dial(shards, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	if db != nil {
		st, err := r.Load(context.Background(), db)
		if err != nil {
			t.Fatal(err)
		}
		if st.Documents != len(db.Docs) {
			t.Fatalf("loaded %d documents, want %d", st.Documents, len(db.Docs))
		}
	}
	return r, srvs
}

// scatterNames runs the scatter probe and returns the document-name union.
func scatterNames(t *testing.T, r *router.Router) []string {
	t.Helper()
	res, err := r.Execute(context.Background(), core.Q8, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res.Items
}

// TestRouterLoadPartitionsAndScatters loads a 3-shard cluster and checks
// the partitioning invariants: every shard holds a non-empty slice, the
// scatter union is exactly the corpus, and no document appears twice.
func TestRouterLoadPartitionsAndScatters(t *testing.T) {
	db := testDB(60)
	r, _ := startCluster(t, 3, db, router.Config{})

	if got, want := r.Name(), "router(3×stub)"; got != want {
		t.Fatalf("name %q, want %q", got, want)
	}
	items := scatterNames(t, r)
	if len(items) != 60 {
		t.Fatalf("scatter union has %d items, want 60", len(items))
	}
	seen := map[string]bool{}
	for _, it := range items {
		if seen[it] {
			t.Fatalf("document %s appears on more than one shard", it)
		}
		seen[it] = true
	}
	// Multi-shard unions cannot promise document order.
	res, _ := r.Execute(context.Background(), core.Q8, nil)
	if res.OrderGuaranteed {
		t.Fatal("multi-shard scatter claims OrderGuaranteed")
	}
	// Per-shard balance: with 60 docs on 3 shards nobody should be empty.
	m := r.Metrics().Snapshot()
	for i := 0; i < 3; i++ {
		if m.Counters[fmt.Sprintf("router.shard.%d.scatter", i)] == 0 {
			t.Fatalf("shard %d saw no scatter leg", i)
		}
	}
}

// TestRouterRoutesSingleDocOps drives the update cycle (insert, verify
// via routed Q1, replace, delete) and checks the routed ops pinned to one
// shard instead of scattering.
func TestRouterRoutesSingleDocOps(t *testing.T) {
	r, _ := startCluster(t, 3, testDB(12), router.Config{})
	ctx := context.Background()

	if err := r.InsertDocument(ctx, "order-update-5.xml", []byte("<order id=\"OU5\"/>")); err != nil {
		t.Fatal(err)
	}
	res, err := r.Execute(ctx, core.Q1, core.Params{"X": "OU5"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 1 || !strings.Contains(res.Items[0], "OU5") {
		t.Fatalf("routed verification read: %+v", res)
	}
	if err := r.ReplaceDocument(ctx, "order-update-5.xml", []byte("<order id=\"OU5\" v=\"2\"/>")); err != nil {
		t.Fatal(err)
	}
	if err := r.DeleteDocument(ctx, "order-update-5.xml"); err != nil {
		t.Fatal(err)
	}
	res, err = r.Execute(ctx, core.Q1, core.Params{"X": "OU5"})
	if err != nil || len(res.Items) != 0 {
		t.Fatalf("read after delete: %+v, %v", res, err)
	}

	// All five ops routed: exactly one shard's routed counter moved per op
	// and no scatter legs were sent.
	m := r.Metrics().Snapshot()
	var routed, scatter int64
	for i := 0; i < 3; i++ {
		routed += m.Counters[fmt.Sprintf("router.shard.%d.routed", i)]
		scatter += m.Counters[fmt.Sprintf("router.shard.%d.scatter", i)]
	}
	if routed != 5 || scatter != 0 {
		t.Fatalf("routed=%d scatter=%d, want 5 routed and 0 scatter", routed, scatter)
	}
}

// TestRouterRoutesDocQueries pins the Q16 route: doc($DOC) is answered
// only by the document's owner (every other shard hard-errors "not
// found"), so the router must send it to that one shard. Every corpus
// document must round-trip under the default fail-fast policy — if Q16
// scattered, the non-owner errors would fail it.
func TestRouterRoutesDocQueries(t *testing.T) {
	db := testDB(30)
	r, _ := startCluster(t, 3, db, router.Config{})
	ctx := context.Background()

	for _, d := range db.Docs {
		res, err := r.Execute(ctx, core.Q16, core.Params{"DOC": d.Name})
		if err != nil {
			t.Fatalf("Q16 %s: %v", d.Name, err)
		}
		if len(res.Items) != 1 || res.Items[0] != string(d.Data) {
			t.Fatalf("Q16 %s: %+v", d.Name, res)
		}
	}
	m := r.Metrics().Snapshot()
	var routed, scatter int64
	for i := 0; i < 3; i++ {
		routed += m.Counters[fmt.Sprintf("router.shard.%d.routed", i)]
		scatter += m.Counters[fmt.Sprintf("router.shard.%d.scatter", i)]
	}
	if routed != 30 || scatter != 0 {
		t.Fatalf("routed=%d scatter=%d, want 30 routed and 0 scatter", routed, scatter)
	}
}

// TestScatterPartialFailure kills one shard and checks both policies:
// fail-fast surfaces the error, degraded returns the surviving union with
// the shard-error count.
func TestScatterPartialFailure(t *testing.T) {
	db := testDB(30)

	t.Run("fail-fast", func(t *testing.T) {
		r, srvs := startCluster(t, 3, db, router.Config{
			Client: client.Config{Retries: -1, DialTimeout: 500 * time.Millisecond},
		})
		srvs[1].Close()
		if _, err := r.Execute(context.Background(), core.Q8, nil); err == nil {
			t.Fatal("scatter with a dead shard succeeded under fail-fast")
		}
	})

	t.Run("degraded", func(t *testing.T) {
		r, srvs := startCluster(t, 3, db, router.Config{
			Degraded: true,
			Client:   client.Config{Retries: -1, DialTimeout: 500 * time.Millisecond},
		})
		srvs[1].Close()
		res, err := r.Execute(context.Background(), core.Q8, nil)
		if err != nil {
			t.Fatalf("degraded scatter: %v", err)
		}
		if res.ShardErrors != 1 {
			t.Fatalf("ShardErrors=%d, want 1", res.ShardErrors)
		}
		if len(res.Items) == 0 || len(res.Items) >= 30 {
			t.Fatalf("degraded union has %d items, want a proper subset of 30", len(res.Items))
		}

		// Semantic declines are not "degraded": every shard answers
		// ErrNoQuery deterministically, so the router must return it, not
		// an empty union.
		if _, err := r.Execute(context.Background(), core.Q20, nil); !errors.Is(err, core.ErrNoQuery) {
			t.Fatalf("Q20: %v, want ErrNoQuery", err)
		}
	})
}

// TestRoutedReadFailsOverToReplica runs a primary+replica shard, kills
// the primary, and checks routed reads keep answering via the replica.
func TestRoutedReadFailsOverToReplica(t *testing.T) {
	ctx := context.Background()

	// Journaled primary (replicas ship its journal).
	jp := filepath.Join(t.TempDir(), "journal.log")
	prim, _, err := server.Reopen(newStub(), testDB(1), nil, jp, server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := prim.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { prim.Close() })

	rep, err := router.StartReplica(ctx, newStub(), testDB(1), nil, prim.Addr().String(),
		router.ReplicaConfig{Poll: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rep.Close() })

	r, err := router.Dial(
		[]router.Shard{{Primary: prim.Addr().String(), Replicas: []string{rep.Addr().String()}}},
		router.Config{Client: client.Config{FailThreshold: 1, Backoff: time.Millisecond}},
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })

	// Write through the router, wait for the replica to apply it.
	if err := r.InsertDocument(ctx, "order-update-9.xml", []byte("<order id=\"OU9\"/>")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for rep.Applied() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("replica never applied the journaled insert (applied=%d, err=%v)", rep.Applied(), rep.Err())
		}
		time.Sleep(time.Millisecond)
	}

	// Kill the primary. The routed read must fail over to the replica.
	prim.Close()
	res, err := r.Execute(ctx, core.Q1, core.Params{"X": "OU9"})
	if err != nil {
		t.Fatalf("routed read with dead primary: %v", err)
	}
	if len(res.Items) != 1 || !strings.Contains(res.Items[0], "OU9") {
		t.Fatalf("failover read answered %+v", res)
	}

	// Updates cannot fail over — the replica is read-only. The router
	// must surface an error, not silently fork the replica.
	uctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	if err := r.InsertDocument(uctx, "order-update-10.xml", []byte("<order/>")); err == nil {
		t.Fatal("update succeeded with the primary dead")
	}
}

// TestReplicaShipsJournal checks the shipping pipeline end to end: keyed
// updates on the primary appear on the replica in order, reads on the
// replica see them, and writes to the replica are rejected.
func TestReplicaShipsJournal(t *testing.T) {
	ctx := context.Background()
	jp := filepath.Join(t.TempDir(), "journal.log")
	prim, _, err := server.Reopen(newStub(), testDB(0), nil, jp, server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := prim.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { prim.Close() })

	rep, err := router.StartReplica(ctx, newStub(), testDB(0), nil, prim.Addr().String(),
		router.ReplicaConfig{Poll: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rep.Close() })

	pc, err := client.Dial(prim.Addr().String(), client.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pc.Close() })

	const updates = 20
	for i := 0; i < updates; i++ {
		name := fmt.Sprintf("order-update-%d.xml", i)
		if err := pc.InsertDocument(ctx, name, []byte(fmt.Sprintf("<order id=\"OU%d\"/>", i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for rep.Applied() < updates {
		if time.Now().After(deadline) {
			t.Fatalf("replica applied %d/%d (err=%v)", rep.Applied(), updates, rep.Err())
		}
		time.Sleep(time.Millisecond)
	}

	rc, err := client.Dial(rep.Addr().String(), client.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rc.Close() })
	res, err := rc.Execute(ctx, core.Q1, core.Params{"X": "OU7"})
	if err != nil || len(res.Items) != 1 {
		t.Fatalf("replica read: %+v, %v", res, err)
	}
	if err := rc.InsertDocument(ctx, "x.xml", []byte("<x/>")); !errors.Is(err, core.ErrReadOnly) {
		t.Fatalf("replica write: %v, want ErrReadOnly", err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("replica apply error: %v", err)
	}
}
