// Package queries holds the XBench workload catalog: the XQuery
// instantiation of each abstract query type (Q1..Q20) for each database
// class, plus the index hints that let the native engine use the value
// indexes of paper Table 3.
//
// The paper specifies the 20 query types abstractly and maps each to a
// concrete query per applicable class; not every class instantiates every
// type (paper §2.2). Parameters appear as external variables ($X, $W, $Y,
// $Z, $LO/$HI, $N, $DOC, ...) bound at execution time.
package queries

import (
	"xbench/internal/core"
)

// Def is one concrete workload query.
type Def struct {
	ID    core.QueryID
	Class core.Class
	// XQuery is the query text run by the native engine.
	XQuery string
	// Params lists the external variable names the query requires.
	Params []string
	// IndexTarget optionally names a Table 3 index (e.g. "order/@id")
	// whose key equals the named parameter.
	//
	// Deprecated: engines no longer read these hints — the cost-based
	// planner (internal/plan) derives the access path from the XQuery
	// text and live statistics. The hints survive only as assertions the
	// planner must reproduce (see internal/plan TestHintDrift).
	IndexTarget string
	// IndexParam names the parameter probed against IndexTarget.
	//
	// Deprecated: see IndexTarget.
	IndexParam string
	// OrderSensitive marks queries whose correctness depends on document
	// order (the paper's Q5/Q12 caveat for shredded engines).
	OrderSensitive bool
	// TouchesMixed marks queries whose result includes mixed-content
	// element text (lost by the SQL Server mapping).
	TouchesMixed bool
}

// Lookup returns the query definition for (class, id), or nil when the
// class does not instantiate that query type.
func Lookup(class core.Class, id core.QueryID) *Def {
	for i := range catalog {
		d := &catalog[i]
		if d.Class == class && d.ID == id {
			return d
		}
	}
	return nil
}

// ForClass returns all queries defined for a class, in Q-number order.
func ForClass(class core.Class) []*Def {
	var out []*Def
	for q := core.Q1; q <= core.Q20; q++ {
		if d := Lookup(class, q); d != nil {
			out = append(out, d)
		}
	}
	return out
}

// Indexes reproduces paper Table 3: the value indexes per class.
func Indexes(class core.Class) []core.IndexSpec {
	switch class {
	case core.TCSD:
		return []core.IndexSpec{{Class: class, Target: "hw"}}
	case core.TCMD:
		return []core.IndexSpec{{Class: class, Target: "article/@id"}}
	case core.DCSD:
		return []core.IndexSpec{
			{Class: class, Target: "item/@id"},
			{Class: class, Target: "date_of_release"},
		}
	case core.DCMD:
		return []core.IndexSpec{{Class: class, Target: "order/@id"}}
	}
	return nil
}

var catalog = []Def{
	// ---------------------------------------------------------------- TC/SD
	{ID: core.Q1, Class: core.TCSD,
		XQuery: `//entry[hw = $W]`,
		Params: []string{"W"}, IndexTarget: "hw", IndexParam: "W"},
	{ID: core.Q2, Class: core.TCSD,
		XQuery: `//entry[sense/qp/q/a = $Y]/hw`,
		Params: []string{"Y"}},
	{ID: core.Q3, Class: core.TCSD,
		XQuery: `for $l in distinct-values(//loc) order by $l
		         return <group><loc>{$l}</loc><cnt>{count(//entry[.//loc = $l])}</cnt></group>`},
	{ID: core.Q5, Class: core.TCSD,
		XQuery: `//entry[hw = $W]/sense[1]`,
		Params: []string{"W"}, IndexTarget: "hw", IndexParam: "W",
		OrderSensitive: true},
	{ID: core.Q6, Class: core.TCSD,
		XQuery: `//entry[some $q in .//q satisfies ($q/a = $Y and $q/loc = $L)]/hw`,
		Params: []string{"Y", "L"}},
	{ID: core.Q7, Class: core.TCSD,
		XQuery: `//entry[every $q in .//q satisfies $q/qd >= $LO]/hw`,
		Params: []string{"LO"}},
	{ID: core.Q8, Class: core.TCSD,
		XQuery: `//entry[hw = $W]/*/qp/q/qt`,
		Params: []string{"W"}, IndexTarget: "hw", IndexParam: "W",
		TouchesMixed: true},
	{ID: core.Q9, Class: core.TCSD,
		XQuery: `//entry[hw = $W]//qt`,
		Params: []string{"W"}, IndexTarget: "hw", IndexParam: "W",
		TouchesMixed: true},
	{ID: core.Q11, Class: core.TCSD,
		XQuery: `for $q in //entry[hw = $W]//q order by $q/qd
		         return <r>{$q/a}{$q/qd}</r>`,
		Params: []string{"W"}, IndexTarget: "hw", IndexParam: "W"},
	{ID: core.Q12, Class: core.TCSD,
		XQuery: `//entry[hw = $W]/sense[1]/qp[1]`,
		Params: []string{"W"}, IndexTarget: "hw", IndexParam: "W",
		OrderSensitive: true, TouchesMixed: true},
	{ID: core.Q13, Class: core.TCSD,
		XQuery: `for $e in //entry[hw = $W]
		         return <word><head>{string($e/hw)}</head><sounds>{string($e/pr)}</sounds><first-def>{string($e/sense[1]/def)}</first-def></word>`,
		Params: []string{"W"}, IndexTarget: "hw", IndexParam: "W"},
	{ID: core.Q14, Class: core.TCSD,
		XQuery: `//entry[empty(etym)]/hw`},
	{ID: core.Q17, Class: core.TCSD,
		XQuery: `//entry[contains-word(string(.), $W2)]/hw`,
		Params: []string{"W2"}, TouchesMixed: true},
	{ID: core.Q18, Class: core.TCSD,
		XQuery: `//entry[contains(string(.), $PHRASE)]/hw`,
		Params: []string{"PHRASE"}},

	// ---------------------------------------------------------------- TC/MD
	{ID: core.Q1, Class: core.TCMD,
		XQuery: `//article[@id = $X]/prolog/title`,
		Params: []string{"X"}, IndexTarget: "article/@id", IndexParam: "X"},
	{ID: core.Q2, Class: core.TCMD,
		XQuery: `//article[prolog/authors/author/name = $Y]/prolog/title`,
		Params: []string{"Y"}},
	{ID: core.Q3, Class: core.TCMD,
		XQuery: `for $g in distinct-values(//genre) order by $g
		         return <group><genre>{$g}</genre><cnt>{count(//article[prolog/genre = $g])}</cnt></group>`},
	{ID: core.Q4, Class: core.TCMD,
		XQuery: `//article[prolog/authors/author/name = $Y]/body/sec[heading = "Introduction"]/following-sibling::sec[1]/heading`,
		Params: []string{"Y"}, OrderSensitive: true},
	{ID: core.Q5, Class: core.TCMD,
		XQuery: `//article[@id = $X]/body/sec[1]/heading`,
		Params: []string{"X"}, IndexTarget: "article/@id", IndexParam: "X",
		OrderSensitive: true},
	{ID: core.Q6, Class: core.TCMD,
		XQuery: `//article[some $p in .//p satisfies (contains-word(string($p), $K1) and contains-word(string($p), $K2))]/prolog/title`,
		Params: []string{"K1", "K2"}},
	{ID: core.Q7, Class: core.TCMD,
		XQuery: `//article[every $a in prolog/authors/author satisfies exists($a/contact)]/prolog/title`},
	{ID: core.Q8, Class: core.TCMD,
		XQuery: `//article[@id = $X]/*/sec/heading`,
		Params: []string{"X"}, IndexTarget: "article/@id", IndexParam: "X"},
	{ID: core.Q9, Class: core.TCMD,
		XQuery: `//article[@id = $X]//heading`,
		Params: []string{"X"}, IndexTarget: "article/@id", IndexParam: "X"},
	{ID: core.Q12, Class: core.TCMD,
		XQuery: `//article[@id = $X]/prolog/abstract`,
		Params: []string{"X"}, IndexTarget: "article/@id", IndexParam: "X",
		OrderSensitive: true},
	{ID: core.Q13, Class: core.TCMD,
		XQuery: `for $a in //article[@id = $X]
		         return <summary><title>{string($a/prolog/title)}</title><first-author>{string($a/prolog/authors/author[1]/name)}</first-author><date>{string($a/prolog/dateline/date)}</date>{$a/prolog/abstract}</summary>`,
		Params: []string{"X"}, IndexTarget: "article/@id", IndexParam: "X"},
	{ID: core.Q14, Class: core.TCMD,
		XQuery: `//article[prolog/dateline/date >= $LO and prolog/dateline/date <= $HI][empty(prolog/genre)]/prolog/title`,
		Params: []string{"LO", "HI"}},
	{ID: core.Q15, Class: core.TCMD,
		XQuery: `//article[prolog/dateline/date >= $LO and prolog/dateline/date <= $HI]//author[contact = ""]/name`,
		Params: []string{"LO", "HI"}},
	{ID: core.Q16, Class: core.TCMD,
		XQuery: `doc($DOC)`,
		Params: []string{"DOC"}},
	{ID: core.Q17, Class: core.TCMD,
		XQuery: `//article[contains-word(string(.), $W2)]/prolog/title`,
		Params: []string{"W2"}},
	{ID: core.Q18, Class: core.TCMD,
		XQuery: `for $a in //article[contains(string(.), $PHRASE)]
		         return <hit>{$a/prolog/title}{$a/prolog/abstract}</hit>`,
		Params: []string{"PHRASE"}},

	// ---------------------------------------------------------------- DC/SD
	{ID: core.Q1, Class: core.DCSD,
		XQuery: `//item[@id = $X]`,
		Params: []string{"X"}, IndexTarget: "item/@id", IndexParam: "X"},
	{ID: core.Q2, Class: core.DCSD,
		XQuery: `//item[authors/author/name/last_name = $Y]/title`,
		Params: []string{"Y"}},
	{ID: core.Q3, Class: core.DCSD,
		XQuery: `avg(//item/attributes/number_of_pages)`},
	{ID: core.Q5, Class: core.DCSD,
		XQuery: `//item[@id = $X]/authors/author[1]`,
		Params: []string{"X"}, IndexTarget: "item/@id", IndexParam: "X",
		OrderSensitive: true},
	{ID: core.Q6, Class: core.DCSD,
		XQuery: `//item[some $a in authors/author satisfies $a/contact_information/mailing_address/name_of_country = $Z]/@id`,
		Params: []string{"Z"}},
	{ID: core.Q7, Class: core.DCSD,
		XQuery: `//item[every $a in authors/author satisfies $a/contact_information/mailing_address/name_of_country = $Z]/title`,
		Params: []string{"Z"}},
	{ID: core.Q8, Class: core.DCSD,
		XQuery: `//item[@id = $X]/*/isbn`,
		Params: []string{"X"}, IndexTarget: "item/@id", IndexParam: "X"},
	{ID: core.Q9, Class: core.DCSD,
		XQuery: `//item[@id = $X]//name_of_country`,
		Params: []string{"X"}, IndexTarget: "item/@id", IndexParam: "X"},
	{ID: core.Q10, Class: core.DCSD,
		XQuery: `for $i in //item[date_of_release >= $LO and date_of_release <= $HI]
		         order by $i/subject
		         return <r id="{$i/@id}">{$i/subject}</r>`,
		Params: []string{"LO", "HI"}},
	{ID: core.Q11, Class: core.DCSD,
		XQuery: `for $i in //item[date_of_release >= $LO and date_of_release <= $HI]
		         order by number($i/attributes/number_of_pages)
		         return $i/@id`,
		Params: []string{"LO", "HI"}},
	{ID: core.Q12, Class: core.DCSD,
		XQuery: `//item[@id = $X]/authors/author[1]/contact_information/mailing_address`,
		Params: []string{"X"}, IndexTarget: "item/@id", IndexParam: "X",
		OrderSensitive: true},
	{ID: core.Q13, Class: core.DCSD,
		XQuery: `for $i in //item[@id = $X]
		         return <item-summary id="{$i/@id}"><name>{string($i/title)}</name><released>{string($i/date_of_release)}</released><publisher>{string($i/publisher/name)}</publisher></item-summary>`,
		Params: []string{"X"}, IndexTarget: "item/@id", IndexParam: "X"},
	{ID: core.Q14, Class: core.DCSD,
		XQuery: `//item[date_of_release >= $LO and date_of_release <= $HI][empty(publisher/FAX_number)]/publisher/name`,
		Params: []string{"LO", "HI"}},
	{ID: core.Q17, Class: core.DCSD,
		XQuery: `//item[contains-word(string(description), $W2)]/title`,
		Params: []string{"W2"}},
	{ID: core.Q20, Class: core.DCSD,
		XQuery: `//item[number(attributes/number_of_pages) > $N]/title`,
		Params: []string{"N"}},

	// ---------------------------------------------------------------- DC/MD
	{ID: core.Q1, Class: core.DCMD,
		XQuery: `//order[@id = $X]/total`,
		Params: []string{"X"}, IndexTarget: "order/@id", IndexParam: "X"},
	{ID: core.Q2, Class: core.DCMD,
		XQuery: `//order[order_lines/order_line/item_id = $I]/@id`,
		Params: []string{"I"}},
	{ID: core.Q3, Class: core.DCMD,
		XQuery: `sum(//order[order_date >= $LO and order_date <= $HI]/total)`,
		Params: []string{"LO", "HI"}},
	{ID: core.Q5, Class: core.DCMD,
		XQuery: `//order[@id = $X]/order_lines/order_line[1]`,
		Params: []string{"X"}, IndexTarget: "order/@id", IndexParam: "X",
		OrderSensitive: true},
	{ID: core.Q6, Class: core.DCMD,
		XQuery: `//order[some $l in order_lines/order_line satisfies number($l/qty) >= 5]/@id`},
	{ID: core.Q8, Class: core.DCMD,
		XQuery: `//order[@id = $X]/*/order_line/item_id`,
		Params: []string{"X"}, IndexTarget: "order/@id", IndexParam: "X"},
	{ID: core.Q9, Class: core.DCMD,
		XQuery: `//order[@id = $X]//order_status`,
		Params: []string{"X"}, IndexTarget: "order/@id", IndexParam: "X"},
	{ID: core.Q10, Class: core.DCMD,
		XQuery: `for $o in //order[order_date >= $LO and order_date <= $HI]
		         order by $o/ship_type
		         return <r><id>{$o/@id}</id><date>{string($o/order_date)}</date><ship>{string($o/ship_type)}</ship></r>`,
		Params: []string{"LO", "HI"}},
	{ID: core.Q12, Class: core.DCMD,
		XQuery: `//order[@id = $X]/cc_xacts`,
		Params: []string{"X"}, IndexTarget: "order/@id", IndexParam: "X",
		OrderSensitive: true},
	{ID: core.Q14, Class: core.DCMD,
		XQuery: `//order[order_date >= $LO and order_date <= $HI][empty(cc_xacts/ship_country)]/@id`,
		Params: []string{"LO", "HI"}},
	{ID: core.Q15, Class: core.DCMD,
		XQuery: `//order[order_status = ""]/@id`},
	{ID: core.Q16, Class: core.DCMD,
		XQuery: `doc($DOC)`,
		Params: []string{"DOC"}},
	{ID: core.Q17, Class: core.DCMD,
		XQuery: `//order[some $c in order_lines/order_line/comment satisfies contains-word(string($c), $W2)]/@id`,
		Params: []string{"W2"}},
	{ID: core.Q19, Class: core.DCMD,
		XQuery: `for $o in //order[@id = $X], $c in //customer[@id = string($o/customer_id)]
		         return <r><name>{string($c/c_fname)} {string($c/c_lname)}</name><phone>{string($c/c_phone)}</phone><status>{string($o/order_status)}</status></r>`,
		Params: []string{"X"}, IndexTarget: "order/@id", IndexParam: "X"},
}
