package queries

import (
	"strings"
	"testing"

	"xbench/internal/core"
	"xbench/internal/xquery"
)

func TestAllQueriesParse(t *testing.T) {
	n := 0
	for _, class := range core.Classes {
		for _, d := range ForClass(class) {
			n++
			if _, err := xquery.Parse(d.XQuery); err != nil {
				t.Errorf("%s/%s does not parse: %v", class, d.ID, err)
			}
		}
	}
	if n < 50 {
		t.Fatalf("catalog has only %d query instantiations", n)
	}
}

func TestBenchmarkedQueriesCoverAllClasses(t *testing.T) {
	// The paper's experiments use Q5, Q8, Q12, Q14 and Q17 on all four
	// classes (Tables 5-9 have columns for each).
	for _, q := range []core.QueryID{core.Q5, core.Q8, core.Q12, core.Q14, core.Q17} {
		for _, class := range core.Classes {
			if Lookup(class, q) == nil {
				t.Errorf("%s not instantiated for %s", q, class)
			}
		}
	}
}

func TestParamsDeclared(t *testing.T) {
	for _, class := range core.Classes {
		for _, d := range ForClass(class) {
			// Every declared parameter must appear in the text, and every
			// $VAR in the text (upper-case convention for externals) must
			// be declared.
			for _, p := range d.Params {
				if !strings.Contains(d.XQuery, "$"+p) {
					t.Errorf("%s/%s declares unused parameter $%s", class, d.ID, p)
				}
			}
			if d.IndexParam != "" {
				found := false
				for _, p := range d.Params {
					if p == d.IndexParam {
						found = true
					}
				}
				if !found {
					t.Errorf("%s/%s index param $%s not in Params", class, d.ID, d.IndexParam)
				}
			}
		}
	}
}

func TestIndexHintsMatchTable3(t *testing.T) {
	for _, class := range core.Classes {
		specs := Indexes(class)
		targets := map[string]bool{}
		for _, s := range specs {
			targets[s.Target] = true
		}
		for _, d := range ForClass(class) {
			if d.IndexTarget != "" && !targets[d.IndexTarget] {
				t.Errorf("%s/%s hints at index %q which Table 3 does not define",
					class, d.ID, d.IndexTarget)
			}
		}
	}
	// Table 3 exact contents.
	if len(Indexes(core.DCSD)) != 2 {
		t.Fatal("DC/SD should have two indexes (item/@id, date_of_release)")
	}
	if Indexes(core.TCSD)[0].Target != "hw" {
		t.Fatal("TC/SD index should be hw")
	}
}

func TestLookupMiss(t *testing.T) {
	if Lookup(core.DCSD, core.Q19) != nil {
		t.Fatal("Q19 should not be defined for DC/SD")
	}
	if Lookup(core.TCSD, core.Q4) != nil {
		t.Fatal("Q4 should not be defined for TC/SD")
	}
}

func TestOrderSensitiveFlags(t *testing.T) {
	for _, class := range core.Classes {
		d := Lookup(class, core.Q5)
		if d == nil || !d.OrderSensitive {
			t.Errorf("%s Q5 must be order sensitive", class)
		}
		d = Lookup(class, core.Q12)
		if d == nil || !d.OrderSensitive {
			t.Errorf("%s Q12 must be order sensitive", class)
		}
	}
}

func TestFunctionGroupsCovered(t *testing.T) {
	// Across the whole catalog every functional group of the paper must be
	// exercised at least once.
	groups := map[string]bool{}
	for _, class := range core.Classes {
		for _, d := range ForClass(class) {
			groups[d.ID.FunctionGroup()] = true
		}
	}
	if len(groups) != 12 {
		t.Fatalf("catalog covers %d of the paper's 12 functional groups: %v", len(groups), groups)
	}
}
