package xquery

import "testing"

// TestAnalyzeSimplePredicate: a root path with an equality predicate
// yields one source with the predicate extracted for pushdown.
func TestAnalyzeSimplePredicate(t *testing.T) {
	sh, err := Analyze(`//entry[hw = $W]/sense[1]`)
	if err != nil {
		t.Fatal(err)
	}
	src := sh.Primary()
	if src == nil || src.RootElem != "entry" {
		t.Fatalf("primary = %+v, want entry", src)
	}
	if len(src.Preds) != 1 || src.Preds[0].Path != "hw" || src.Preds[0].Op != "=" || src.Preds[0].Param != "$W" {
		t.Fatalf("preds = %+v, want hw = $W", src.Preds)
	}
	if src.Positional != 1 {
		t.Fatalf("positional = %d, want 1 (sense[1])", src.Positional)
	}
}

// TestAnalyzeRange: paired inequality predicates survive as two preds on
// the same path, the planner's raw material for a range probe.
func TestAnalyzeRange(t *testing.T) {
	sh, err := Analyze(`//item[date_of_release >= $LO and date_of_release <= $HI]/title`)
	if err != nil {
		t.Fatal(err)
	}
	src := sh.Primary()
	if src == nil || len(src.Preds) != 2 {
		t.Fatalf("primary = %+v, want 2 preds", src)
	}
	ops := map[string]string{}
	for _, p := range src.Preds {
		if p.Path != "date_of_release" {
			t.Fatalf("pred path %q, want date_of_release", p.Path)
		}
		ops[p.Op] = p.Param
	}
	if ops[">="] != "$LO" || ops["<="] != "$HI" {
		t.Fatalf("ops = %v, want >=$LO and <=$HI", ops)
	}
}

// TestAnalyzeJoin: a two-variable FLWOR yields two bound sources — the
// shape the join reorderer keys on.
func TestAnalyzeJoin(t *testing.T) {
	sh, err := Analyze(`for $o in //order[@id = $X], $c in //customer[@id = string($o/customer_id)]
		return <r>{$c/c_phone}</r>`)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Joins() != 2 || len(sh.Sources) != 2 {
		t.Fatalf("sources = %+v, want 2 bound sources", sh.Sources)
	}
	for _, src := range sh.Sources {
		if src.Var == "" {
			t.Fatalf("source %+v not bound to a variable", src)
		}
	}
	if !sh.Constructs {
		t.Error("element constructor not detected")
	}
}

// TestAnalyzeDocAndAggregate: doc() access and aggregate calls are
// flagged so the planner can special-case them.
func TestAnalyzeDocAndAggregate(t *testing.T) {
	sh, err := Analyze(`doc($DOC)//account_information`)
	if err != nil {
		t.Fatal(err)
	}
	if !sh.UsesDoc {
		t.Error("doc() not detected")
	}
	sh, err = Analyze(`count(//item[@id = $X])`)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Aggregate != "count" {
		t.Errorf("aggregate = %q, want count", sh.Aggregate)
	}
}
