package xquery

import (
	"fmt"
	"strconv"
)

// Parse compiles an XQuery string into an executable Query.
func Parse(src string) (*Query, error) {
	p := &parser{lx: &lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.cur.kind != tokEOF {
		return nil, p.errf("unexpected %s after query", p.cur)
	}
	return &Query{Source: src, root: e}, nil
}

// MustParse is Parse that panics on error; for static workload queries.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	lx  *lexer
	cur token
}

func (p *parser) errf(format string, args ...any) error {
	return &Error{Pos: p.cur.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.cur = t
	return nil
}

// accept consumes the current token if it is the given symbol/keyword.
func (p *parser) accept(kind tokKind, text string) (bool, error) {
	if p.cur.kind == kind && p.cur.text == text {
		return true, p.advance()
	}
	return false, nil
}

func (p *parser) expect(kind tokKind, text string) error {
	ok, err := p.accept(kind, text)
	if err != nil {
		return err
	}
	if !ok {
		return p.errf("expected %q, found %s", text, p.cur)
	}
	return nil
}

// parseExpr parses a comma-separated sequence expression.
func (p *parser) parseExpr() (expr, error) {
	first, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	items := []expr{first}
	for {
		ok, err := p.accept(tokSymbol, ",")
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		e, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		items = append(items, e)
	}
	if len(items) == 1 {
		return first, nil
	}
	return seqExpr{items: items}, nil
}

func (p *parser) parseExprSingle() (expr, error) {
	if p.cur.kind == tokName {
		switch p.cur.text {
		case "for", "let":
			return p.parseFLWOR()
		case "some", "every":
			return p.parseQuantified()
		case "if":
			// Only a conditional when followed by '('.
			save := *p.lx
			saveTok := p.cur
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.cur.kind == tokSymbol && p.cur.text == "(" {
				return p.parseIf()
			}
			*p.lx = save
			p.cur = saveTok
		}
	}
	return p.parseOr()
}

func (p *parser) parseFLWOR() (expr, error) {
	var f flwor
	for p.cur.kind == tokName && (p.cur.text == "for" || p.cur.text == "let") {
		isLet := p.cur.text == "let"
		if err := p.advance(); err != nil {
			return nil, err
		}
		for {
			if p.cur.kind != tokVar {
				return nil, p.errf("expected variable in %s clause, found %s",
					map[bool]string{true: "let", false: "for"}[isLet], p.cur)
			}
			name := p.cur.text
			if err := p.advance(); err != nil {
				return nil, err
			}
			posVar := ""
			if !isLet {
				if ok, err := p.accept(tokName, "at"); err != nil {
					return nil, err
				} else if ok {
					if p.cur.kind != tokVar {
						return nil, p.errf("expected positional variable after 'at'")
					}
					posVar = p.cur.text
					if err := p.advance(); err != nil {
						return nil, err
					}
				}
				if err := p.expect(tokName, "in"); err != nil {
					return nil, err
				}
			} else {
				if err := p.expect(tokSymbol, ":="); err != nil {
					return nil, err
				}
			}
			src, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			f.clauses = append(f.clauses, flworClause{
				isLet: isLet, varName: name, posVar: posVar, src: src,
			})
			ok, err := p.accept(tokSymbol, ",")
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
		}
	}
	if ok, err := p.accept(tokName, "where"); err != nil {
		return nil, err
	} else if ok {
		w, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		f.where = w
	}
	if p.cur.kind == tokName && p.cur.text == "order" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expect(tokName, "by"); err != nil {
			return nil, err
		}
		for {
			key, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			spec := orderSpec{key: key}
			if ok, err := p.accept(tokName, "descending"); err != nil {
				return nil, err
			} else if ok {
				spec.desc = true
			} else if _, err := p.accept(tokName, "ascending"); err != nil {
				return nil, err
			}
			f.orderBy = append(f.orderBy, spec)
			ok, err := p.accept(tokSymbol, ",")
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
		}
	}
	if err := p.expect(tokName, "return"); err != nil {
		return nil, err
	}
	ret, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	f.ret = ret
	if len(f.clauses) == 0 {
		return nil, p.errf("FLWOR without for/let clause")
	}
	return f, nil
}

func (p *parser) parseQuantified() (expr, error) {
	every := p.cur.text == "every"
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.cur.kind != tokVar {
		return nil, p.errf("expected variable after some/every")
	}
	name := p.cur.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expect(tokName, "in"); err != nil {
		return nil, err
	}
	src, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokName, "satisfies"); err != nil {
		return nil, err
	}
	cond, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	return quantified{every: every, varName: name, src: src, cond: cond}, nil
}

func (p *parser) parseIf() (expr, error) {
	// 'if' consumed; current token is '('.
	if err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	if err := p.expect(tokName, "then"); err != nil {
		return nil, err
	}
	then, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokName, "else"); err != nil {
		return nil, err
	}
	els, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	return ifExpr{cond: cond, then: then, els: els}, nil
}

func (p *parser) parseOr() (expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		ok, err := p.accept(tokName, "or")
		if err != nil {
			return nil, err
		}
		if !ok {
			return l, nil
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = binary{op: "or", l: l, r: r}
	}
}

func (p *parser) parseAnd() (expr, error) {
	l, err := p.parseComparison()
	if err != nil {
		return nil, err
	}
	for {
		ok, err := p.accept(tokName, "and")
		if err != nil {
			return nil, err
		}
		if !ok {
			return l, nil
		}
		r, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		l = binary{op: "and", l: l, r: r}
	}
}

var cmpOps = map[string]string{
	"=": "=", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">=",
	"eq": "=", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">=",
}

func (p *parser) parseComparison() (expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	var op string
	if p.cur.kind == tokSymbol {
		if o, ok := cmpOps[p.cur.text]; ok {
			op = o
		}
	} else if p.cur.kind == tokName {
		// Value comparison keywords only count when a right operand follows.
		if o, ok := cmpOps[p.cur.text]; ok {
			op = o
		}
	}
	if op == "" {
		return l, nil
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	r, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return binary{op: op, l: l, r: r}, nil
}

func (p *parser) parseAdditive() (expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.cur.kind == tokSymbol && (p.cur.text == "+" || p.cur.text == "-") ||
		p.cur.kind == tokName && p.cur.text == "to" {
		op := p.cur.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = binary{op: op, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseMultiplicative() (expr, error) {
	l, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	for (p.cur.kind == tokSymbol && p.cur.text == "*") ||
		(p.cur.kind == tokName && (p.cur.text == "div" || p.cur.text == "idiv" || p.cur.text == "mod")) {
		// '*' here is multiplication only when a value precedes it; the
		// wildcard case is consumed inside path steps, so reaching this
		// point with '*' means multiplication.
		op := p.cur.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseUnion()
		if err != nil {
			return nil, err
		}
		l = binary{op: op, l: l, r: r}
	}
	return l, nil
}

// parseUnion handles node-sequence union: a | b ("union" keyword included).
func (p *parser) parseUnion() (expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for (p.cur.kind == tokSymbol && p.cur.text == "|") ||
		(p.cur.kind == tokName && p.cur.text == "union") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = binary{op: "|", l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (expr, error) {
	if p.cur.kind == tokSymbol && p.cur.text == "-" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unary{operand: e}, nil
	}
	return p.parsePath()
}

// parsePath parses a relative or absolute path expression.
func (p *parser) parsePath() (expr, error) {
	var pe pathExpr
	switch {
	case p.cur.kind == tokSymbol && p.cur.text == "//":
		pe.fromRoot = true
		if err := p.advance(); err != nil {
			return nil, err
		}
		st, err := p.parseStep(axisDescendant)
		if err != nil {
			return nil, err
		}
		pe.steps = append(pe.steps, st)
	case p.cur.kind == tokSymbol && p.cur.text == "/":
		pe.fromRoot = true
		if err := p.advance(); err != nil {
			return nil, err
		}
		st, err := p.parseStep(axisChild)
		if err != nil {
			return nil, err
		}
		pe.steps = append(pe.steps, st)
	default:
		prim, preds, isStep, err := p.parsePrimaryOrStep()
		if err != nil {
			return nil, err
		}
		if isStep {
			pe.steps = append(pe.steps, prim.(stepWrap).s)
		} else {
			pe.input = prim
			pe.preds = preds
		}
	}
	for p.cur.kind == tokSymbol && (p.cur.text == "/" || p.cur.text == "//") {
		ax := axisChild
		if p.cur.text == "//" {
			ax = axisDescendant
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		st, err := p.parseStep(ax)
		if err != nil {
			return nil, err
		}
		pe.steps = append(pe.steps, st)
	}
	// Collapse a bare primary with no steps back to the primary itself.
	if pe.input != nil && len(pe.steps) == 0 && len(pe.preds) == 0 {
		return pe.input, nil
	}
	return pe, nil
}

// stepWrap lets parsePrimaryOrStep return a step through the expr return
// slot.
type stepWrap struct{ s step }

func (stepWrap) exprNode() {}

// parsePrimaryOrStep distinguishes a primary expression (literal, var,
// parenthesized, function call, constructor, '.') from a name-test step
// starting a relative path.
func (p *parser) parsePrimaryOrStep() (expr, []expr, bool, error) {
	switch p.cur.kind {
	case tokString:
		e := literal{str: p.cur.text}
		if err := p.advance(); err != nil {
			return nil, nil, false, err
		}
		return e, nil, false, nil
	case tokNumber:
		n, err := strconv.ParseFloat(p.cur.text, 64)
		if err != nil {
			return nil, nil, false, p.errf("bad number %q", p.cur.text)
		}
		e := literal{num: n, isNum: true}
		if err := p.advance(); err != nil {
			return nil, nil, false, err
		}
		return e, nil, false, nil
	case tokVar:
		e := varRef{name: p.cur.text}
		if err := p.advance(); err != nil {
			return nil, nil, false, err
		}
		preds, err := p.parsePredicates()
		return e, preds, false, err
	case tokTagOpen:
		e, err := p.parseElemCtor()
		return e, nil, false, err
	case tokSymbol:
		switch p.cur.text {
		case "(":
			if err := p.advance(); err != nil {
				return nil, nil, false, err
			}
			// Empty sequence "()".
			if p.cur.kind == tokSymbol && p.cur.text == ")" {
				if err := p.advance(); err != nil {
					return nil, nil, false, err
				}
				return seqExpr{}, nil, false, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, nil, false, err
			}
			if err := p.expect(tokSymbol, ")"); err != nil {
				return nil, nil, false, err
			}
			preds, err := p.parsePredicates()
			return e, preds, false, err
		case ".":
			if err := p.advance(); err != nil {
				return nil, nil, false, err
			}
			return contextItem{}, nil, false, nil
		case "..":
			if err := p.advance(); err != nil {
				return nil, nil, false, err
			}
			st := step{axis: axisParent, name: "*"}
			return stepWrap{st}, nil, true, nil
		case "@", "*":
			st, err := p.parseStep(axisChild)
			if err != nil {
				return nil, nil, false, err
			}
			return stepWrap{st}, nil, true, nil
		}
	case tokName:
		name := p.cur.text
		if err := p.advance(); err != nil {
			return nil, nil, false, err
		}
		if p.cur.kind == tokSymbol && p.cur.text == "(" {
			// Function call.
			if err := p.advance(); err != nil {
				return nil, nil, false, err
			}
			var args []expr
			if !(p.cur.kind == tokSymbol && p.cur.text == ")") {
				for {
					a, err := p.parseExprSingle()
					if err != nil {
						return nil, nil, false, err
					}
					args = append(args, a)
					ok, err := p.accept(tokSymbol, ",")
					if err != nil {
						return nil, nil, false, err
					}
					if !ok {
						break
					}
				}
			}
			if err := p.expect(tokSymbol, ")"); err != nil {
				return nil, nil, false, err
			}
			preds, err := p.parsePredicates()
			return call{name: name, args: args}, preds, false, err
		}
		// Axis step with explicit axis (name::...)?
		if p.cur.kind == tokSymbol && p.cur.text == ":" {
			// lexer splits "::" into two ':' symbols
			if err := p.advance(); err != nil {
				return nil, nil, false, err
			}
			if err := p.expect(tokSymbol, ":"); err != nil {
				return nil, nil, false, err
			}
			ax, ok := axisByName(name)
			if !ok {
				return nil, nil, false, p.errf("unknown axis %q", name)
			}
			st, err := p.parseStep(ax)
			if err != nil {
				return nil, nil, false, err
			}
			return stepWrap{st}, nil, true, nil
		}
		// Plain name test starting a relative path.
		preds, err := p.parsePredicates()
		if err != nil {
			return nil, nil, false, err
		}
		return stepWrap{step{axis: axisChild, name: name, preds: preds}}, nil, true, nil
	}
	return nil, nil, false, p.errf("unexpected %s", p.cur)
}

func axisByName(name string) (axis, bool) {
	switch name {
	case "child":
		return axisChild, true
	case "descendant":
		return axisDescendant, true
	case "attribute":
		return axisAttribute, true
	case "self":
		return axisSelf, true
	case "parent":
		return axisParent, true
	case "following-sibling":
		return axisFollowingSibling, true
	case "preceding-sibling":
		return axisPrecedingSibling, true
	}
	return 0, false
}

// parseStep parses one step after '/', '//' or an axis prefix.
func (p *parser) parseStep(defaultAxis axis) (step, error) {
	st := step{axis: defaultAxis}
	if p.cur.kind == tokSymbol && p.cur.text == "@" {
		st.deep = defaultAxis == axisDescendant
		st.axis = axisAttribute
		if err := p.advance(); err != nil {
			return st, err
		}
	}
	switch {
	case p.cur.kind == tokSymbol && p.cur.text == "*":
		st.name = "*"
		if err := p.advance(); err != nil {
			return st, err
		}
	case p.cur.kind == tokSymbol && p.cur.text == "..":
		st.axis = axisParent
		st.name = "*"
		if err := p.advance(); err != nil {
			return st, err
		}
	case p.cur.kind == tokName:
		name := p.cur.text
		if err := p.advance(); err != nil {
			return st, err
		}
		// Explicit axis: name::test
		if p.cur.kind == tokSymbol && p.cur.text == ":" {
			if err := p.advance(); err != nil {
				return st, err
			}
			if err := p.expect(tokSymbol, ":"); err != nil {
				return st, err
			}
			ax, ok := axisByName(name)
			if !ok {
				return st, p.errf("unknown axis %q", name)
			}
			return p.parseStep(ax)
		}
		// node test functions: text(), node()
		if p.cur.kind == tokSymbol && p.cur.text == "(" && (name == "text" || name == "node") {
			if err := p.advance(); err != nil {
				return st, err
			}
			if err := p.expect(tokSymbol, ")"); err != nil {
				return st, err
			}
			st.name = name + "()"
		} else {
			st.name = name
		}
	default:
		return st, p.errf("expected name test, found %s", p.cur)
	}
	preds, err := p.parsePredicates()
	if err != nil {
		return st, err
	}
	st.preds = preds
	return st, nil
}

func (p *parser) parsePredicates() ([]expr, error) {
	var preds []expr
	for p.cur.kind == tokSymbol && p.cur.text == "[" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokSymbol, "]"); err != nil {
			return nil, err
		}
		preds = append(preds, e)
	}
	return preds, nil
}
