package xquery

import (
	"reflect"
	"strings"
	"testing"

	"xbench/internal/xmldom"
)

// testColl builds a small two-document collection shaped like the
// benchmark data.
func testColl() *Collection {
	c := NewCollection()
	c.Add("catalog.xml", xmldom.MustParse(`<catalog>
		<item id="I1"><title>Go Databases</title><price>30</price>
			<authors>
				<author><name>Ada</name><country>Canada</country></author>
				<author><name>Bob</name><country>Canada</country></author>
			</authors>
			<publisher><name>P One</name><fax>111</fax></publisher>
		</item>
		<item id="I2"><title>XML Systems</title><price>45</price>
			<authors>
				<author><name>Eve</name><country>France</country></author>
			</authors>
			<publisher><name>P Two</name></publisher>
		</item>
		<item id="I3"><title>Query Processing</title><price>12</price>
			<authors>
				<author><name>Ada</name><country>Canada</country></author>
			</authors>
			<publisher><name>P Three</name></publisher>
		</item>
	</catalog>`))
	c.Add("article1.xml", xmldom.MustParse(`<article id="a1">
		<title>On Systems</title>
		<sec id="s1"><heading>Introduction</heading><p>first words here</p></sec>
		<sec id="s2"><heading>Methods</heading><p>more data about systems</p></sec>
		<sec id="s3"><heading>Results</heading><p>empty</p></sec>
	</article>`))
	return c
}

func run(t *testing.T, src string) Seq {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	s, err := q.Eval(testColl())
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return s
}

func strs(s Seq) []string { return SerializeSeq(s) }

func TestSimplePaths(t *testing.T) {
	if got := strs(run(t, `/catalog/item/title`)); !reflect.DeepEqual(got, []string{
		"<title>Go Databases</title>", "<title>XML Systems</title>", "<title>Query Processing</title>",
	}) {
		t.Fatalf("titles = %v", got)
	}
	if got := run(t, `//price`); len(got) != 3 {
		t.Fatalf("//price = %d items", len(got))
	}
	if got := strs(run(t, `//item/@id`)); !reflect.DeepEqual(got, []string{"I1", "I2", "I3"}) {
		t.Fatalf("ids = %v", got)
	}
	if got := strs(run(t, `//@id`)); len(got) != 7 { // 3 items + article + 3 secs
		t.Fatalf("//@id = %v", got)
	}
}

func TestWildcardAndUnknownElementPaths(t *testing.T) {
	// Q8-style: one unknown element name in the path.
	got := strs(run(t, `/catalog/*/title`))
	if len(got) != 3 {
		t.Fatalf("wildcard path = %v", got)
	}
	// Q9-style: multiple unknown steps via //.
	got = strs(run(t, `/catalog//name`))
	if len(got) != 7 { // 4 author names + 3 publisher names
		t.Fatalf("//name = %v", got)
	}
}

func TestPredicates(t *testing.T) {
	got := strs(run(t, `//item[@id = "I2"]/title`))
	if len(got) != 1 || !strings.Contains(got[0], "XML Systems") {
		t.Fatalf("exact match = %v", got)
	}
	// Positional predicate is per context node: first author of each item.
	got = strs(run(t, `//item/authors/author[1]/name`))
	if len(got) != 3 || !strings.Contains(got[0], "Ada") || !strings.Contains(got[1], "Eve") {
		t.Fatalf("first authors = %v", got)
	}
	// position() and last().
	got = strs(run(t, `//item[position() = last()]/@id`))
	if !reflect.DeepEqual(got, []string{"I3"}) {
		t.Fatalf("last item = %v", got)
	}
	// Numeric comparison inside predicate.
	got = strs(run(t, `//item[price > 25]/@id`))
	if !reflect.DeepEqual(got, []string{"I1", "I2"}) {
		t.Fatalf("price filter = %v", got)
	}
	// Chained predicates.
	got = strs(run(t, `//item[price > 10][2]/@id`))
	if !reflect.DeepEqual(got, []string{"I2"}) {
		t.Fatalf("chained predicates = %v", got)
	}
}

func TestMissingElementPredicate(t *testing.T) {
	// Q14-style: publishers without a fax.
	got := strs(run(t, `//publisher[empty(fax)]/name`))
	if len(got) != 2 {
		t.Fatalf("no-fax publishers = %v", got)
	}
	got = strs(run(t, `//publisher[not(fax)]/name`))
	if len(got) != 2 {
		t.Fatalf("not(fax) = %v", got)
	}
}

func TestFLWOR(t *testing.T) {
	got := strs(run(t, `for $i in //item where $i/price > 20 return $i/title`))
	if len(got) != 2 {
		t.Fatalf("FLWOR where = %v", got)
	}
	// let + count.
	got = strs(run(t, `let $all := //item return count($all)`))
	if !reflect.DeepEqual(got, []string{"3"}) {
		t.Fatalf("let/count = %v", got)
	}
	// order by string.
	got = strs(run(t, `for $t in //item/title order by string($t) return string($t)`))
	if !reflect.DeepEqual(got, []string{"Go Databases", "Query Processing", "XML Systems"}) {
		t.Fatalf("order by = %v", got)
	}
	// order by numeric descending.
	got = strs(run(t, `for $i in //item order by number($i/price) descending return $i/@id`))
	if !reflect.DeepEqual(got, []string{"I2", "I1", "I3"}) {
		t.Fatalf("numeric order = %v", got)
	}
	// positional variable.
	got = strs(run(t, `for $i at $p in //item where $p = 2 return $i/@id`))
	if !reflect.DeepEqual(got, []string{"I2"}) {
		t.Fatalf("at $p = %v", got)
	}
	// multiple for clauses produce a product.
	got = strs(run(t, `for $a in (1, 2), $b in (10, 20) return $a + $b`))
	if !reflect.DeepEqual(got, []string{"11", "21", "12", "22"}) {
		t.Fatalf("product = %v", got)
	}
}

func TestQuantified(t *testing.T) {
	// Q7-style universal quantification.
	got := strs(run(t, `for $i in //item
		where every $a in $i/authors/author satisfies $a/country = "Canada"
		return $i/@id`))
	if !reflect.DeepEqual(got, []string{"I1", "I3"}) {
		t.Fatalf("every = %v", got)
	}
	got = strs(run(t, `for $i in //item
		where some $a in $i/authors/author satisfies $a/name = "Eve"
		return $i/@id`))
	if !reflect.DeepEqual(got, []string{"I2"}) {
		t.Fatalf("some = %v", got)
	}
	// every over the empty sequence is true.
	got = strs(run(t, `every $x in () satisfies $x = 1`))
	if !reflect.DeepEqual(got, []string{"true"}) {
		t.Fatalf("vacuous every = %v", got)
	}
}

func TestAggregates(t *testing.T) {
	cases := map[string]string{
		`sum(//price)`:  "87",
		`avg(//price)`:  "29",
		`min(//price)`:  "12",
		`max(//price)`:  "45",
		`count(//item)`: "3",
		`sum(())`:       "0",
	}
	for src, want := range cases {
		got := strs(run(t, src))
		if len(got) != 1 || got[0] != want {
			t.Errorf("%s = %v, want %s", src, got, want)
		}
	}
	// min/max over strings (dates).
	got := strs(run(t, `max(//item/title)`))
	if !reflect.DeepEqual(got, []string{"XML Systems"}) {
		t.Fatalf("string max = %v", got)
	}
}

func TestStringFunctions(t *testing.T) {
	cases := map[string]string{
		`contains("hello world", "lo wo")`:      "true",
		`contains("hello", "xyz")`:              "false",
		`contains-word("the quick fox", "fox")`: "true",
		`contains-word("foxes run", "fox")`:     "false",
		`starts-with("hello", "he")`:            "true",
		`string-length("abcd")`:                 "4",
		`normalize-space("  a   b  ")`:          "a b",
		`lower-case("AbC")`:                     "abc",
		`upper-case("AbC")`:                     "ABC",
		`concat("a", "b", "c")`:                 "abc",
		`substring("abcdef", 2, 3)`:             "bcd",
		`substring("abcdef", 4)`:                "def",
		`string-join(("a","b","c"), "-")`:       "a-b-c",
	}
	for src, want := range cases {
		got := strs(run(t, src))
		if len(got) != 1 || got[0] != want {
			t.Errorf("%s = %v, want %s", src, got, want)
		}
	}
}

func TestArithmeticAndComparisons(t *testing.T) {
	cases := map[string]string{
		`1 + 2 * 3`:     "7",
		`(1 + 2) * 3`:   "9",
		`10 div 4`:      "2.5",
		`10 mod 3`:      "1",
		`-5 + 2`:        "-3",
		`2 < 10`:        "true",
		`"2" < "10"`:    "false", // both numeric-parseable: numeric compare wins -> true? see below
		`"a" < "b"`:     "true",
		`1 = 1.0`:       "true",
		`count(1 to 5)`: "5",
	}
	// "2" < "10": both parse as numbers, so numeric comparison applies.
	cases[`"2" < "10"`] = "true"
	for src, want := range cases {
		got := strs(run(t, src))
		if len(got) != 1 || got[0] != want {
			t.Errorf("%s = %v, want %s", src, got, want)
		}
	}
}

func TestExistentialComparison(t *testing.T) {
	// General comparison is existential over node sequences.
	got := strs(run(t, `//item[authors/author/name = "Ada"]/@id`))
	if !reflect.DeepEqual(got, []string{"I1", "I3"}) {
		t.Fatalf("existential = %v", got)
	}
}

func TestIfExpr(t *testing.T) {
	got := strs(run(t, `if (count(//item) > 2) then "many" else "few"`))
	if !reflect.DeepEqual(got, []string{"many"}) {
		t.Fatalf("if = %v", got)
	}
	// 'if' as an element name still parses as a path step.
	c := NewCollection()
	c.Add("d.xml", xmldom.MustParse(`<r><if>x</if></r>`))
	q := MustParse(`//if`)
	s, err := q.Eval(c)
	if err != nil || len(s) != 1 {
		t.Fatalf("element named if: %v %v", s, err)
	}
}

func TestElementConstructors(t *testing.T) {
	got := strs(run(t, `for $i in //item[@id = "I1"]
		return <result id="{$i/@id}">{$i/title}</result>`))
	want := `<result id="I1"><title>Go Databases</title></result>`
	if len(got) != 1 || got[0] != want {
		t.Fatalf("constructor = %v", got)
	}
	// Nested constructors with mixed literal text.
	got = strs(run(t, `<out><n>static</n><v>{1 + 1}</v></out>`))
	if !reflect.DeepEqual(got, []string{"<out><n>static</n><v>2</v></out>"}) {
		t.Fatalf("nested ctor = %v", got)
	}
	// Atomic sequence items are space-separated.
	got = strs(run(t, `<s>{(1, 2, 3)}</s>`))
	if !reflect.DeepEqual(got, []string{"<s>1 2 3</s>"}) {
		t.Fatalf("atomic spacing = %v", got)
	}
	// Constructed content is cloned, not aliased.
	got = strs(run(t, `<w>{//item[1]/title}</w>`))
	if !strings.Contains(got[0], "<title>Go Databases</title>") {
		t.Fatalf("clone = %v", got)
	}
}

func TestSiblingAxes(t *testing.T) {
	// Q4-style: the section following the Introduction.
	got := strs(run(t, `//sec[heading = "Introduction"]/following-sibling::sec[1]/heading`))
	if len(got) != 1 || !strings.Contains(got[0], "Methods") {
		t.Fatalf("following-sibling = %v", got)
	}
	got = strs(run(t, `//sec[heading = "Results"]/preceding-sibling::sec[1]/heading`))
	if len(got) != 1 || !strings.Contains(got[0], "Methods") {
		t.Fatalf("preceding-sibling = %v", got)
	}
}

func TestParentAxisAndDotDot(t *testing.T) {
	got := strs(run(t, `//heading[. = "Methods"]/../@id`))
	if !reflect.DeepEqual(got, []string{"s2"}) {
		t.Fatalf(".. = %v", got)
	}
	got = strs(run(t, `//heading[. = "Methods"]/parent::sec/@id`))
	if !reflect.DeepEqual(got, []string{"s2"}) {
		t.Fatalf("parent:: = %v", got)
	}
}

func TestDocFunction(t *testing.T) {
	got := strs(run(t, `doc("article1.xml")//heading[1]`))
	if len(got) != 1 || !strings.Contains(got[0], "Introduction") {
		t.Fatalf("doc() = %v", got)
	}
	q := MustParse(`doc("missing.xml")//x`)
	if _, err := q.Eval(testColl()); err == nil {
		t.Fatal("doc of missing document succeeded")
	}
}

func TestDistinctValues(t *testing.T) {
	got := strs(run(t, `distinct-values(//author/country)`))
	if !reflect.DeepEqual(got, []string{"Canada", "France"}) {
		t.Fatalf("distinct-values = %v", got)
	}
}

func TestExternalVariables(t *testing.T) {
	q := MustParse(`//item[@id = $X]/title`)
	s, err := q.EvalWithVars(testColl(), map[string]Seq{"X": {"I3"}})
	if err != nil || len(s) != 1 {
		t.Fatalf("external var: %v, %v", s, err)
	}
	if !strings.Contains(strs(s)[0], "Query Processing") {
		t.Fatalf("wrong item: %v", strs(s))
	}
	if _, err := q.Eval(testColl()); err == nil {
		t.Fatal("unbound variable did not error")
	}
}

func TestDocumentOrderAndDedup(t *testing.T) {
	// A union-ish path visiting the same nodes twice must dedup.
	got := strs(run(t, `count(//item/../item)`))
	if !reflect.DeepEqual(got, []string{"3"}) {
		t.Fatalf("dedup = %v", got)
	}
	// Cross-document order follows collection order.
	got = strs(run(t, `//title`))
	if len(got) != 4 || !strings.Contains(got[3], "On Systems") {
		t.Fatalf("cross-doc order = %v", got)
	}
}

func TestTextNodeStep(t *testing.T) {
	got := strs(run(t, `//sec[@id = "s1"]/p/text()`))
	if !reflect.DeepEqual(got, []string{"first words here"}) {
		t.Fatalf("text() = %v", got)
	}
}

func TestCommentsInQuery(t *testing.T) {
	got := strs(run(t, `(: find items :) count(//item (: all of them :))`))
	if !reflect.DeepEqual(got, []string{"3"}) {
		t.Fatalf("comments = %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`for $x in`,
		`//item[`,
		`1 +`,
		`<a>{1}</b>`,
		`let $x := 1`, // missing return
		`some $x in (1)`,
		`"unterminated`,
		`$`,
		`foo(1`,
		`(: unterminated comment`,
		`//item)`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	coll := testColl()
	bad := []string{
		`$undefined`,
		`unknownfn()`,
		`sum(//title)`, // non-numeric sum
		`1 + "abc"`,
	}
	for _, src := range bad {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := q.Eval(coll); err == nil {
			t.Errorf("Eval(%q) succeeded", src)
		}
	}
}

func TestContainsWord(t *testing.T) {
	cases := []struct {
		text, word string
		want       bool
	}{
		{"the quick fox", "fox", true},
		{"the quick fox", "FOX", true},
		{"foxes", "fox", false},
		{"end fox", "fox", true},
		{"fox start", "fox", true},
		{"a-fox-b", "fox", true},
		{"", "fox", false},
		{"fox", "", false},
		{"prefix foxfox", "fox", false},
		{"punct fox.", "fox", true},
	}
	for _, c := range cases {
		if got := ContainsWord(c.text, c.word); got != c.want {
			t.Errorf("ContainsWord(%q, %q) = %v", c.text, c.word, got)
		}
	}
}

func TestCollectionAccessors(t *testing.T) {
	c := testColl()
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "catalog.xml" {
		t.Fatalf("Names = %v", names)
	}
	if c.Doc("catalog.xml") == nil || c.Doc("nope") != nil {
		t.Fatal("Doc lookup wrong")
	}
}

func TestUnionOperator(t *testing.T) {
	got := strs(run(t, `count(//title | //price)`))
	if !reflect.DeepEqual(got, []string{"7"}) { // 4 titles + 3 prices
		t.Fatalf("union count = %v", got)
	}
	// Duplicates removed, document order preserved.
	got = strs(run(t, `//item[1]/title | //item[1]/title | //item[1]/price`))
	if len(got) != 2 || !strings.Contains(got[0], "title") || !strings.Contains(got[1], "price") {
		t.Fatalf("union dedup/order = %v", got)
	}
	got = strs(run(t, `count(//heading union //title)`))
	if !reflect.DeepEqual(got, []string{"7"}) { // 3 headings + 4 titles
		t.Fatalf("union keyword = %v", got)
	}
}

func TestIdivAndModErrors(t *testing.T) {
	if got := strs(run(t, `7 idiv 2`)); !reflect.DeepEqual(got, []string{"3"}) {
		t.Fatalf("idiv = %v", got)
	}
	for _, src := range []string{`1 idiv 0`, `1 mod 0`} {
		q := MustParse(src)
		if _, err := q.Eval(testColl()); err == nil {
			t.Errorf("%s did not error", src)
		}
	}
}

func TestMoreStringAndNumericFunctions(t *testing.T) {
	cases := map[string]string{
		`ends-with("catalog", "log")`:         "true",
		`ends-with("catalog", "dog")`:         "false",
		`substring-before("2001-05-17", "-")`: "2001",
		`substring-after("2001-05-17", "-")`:  "05-17",
		`substring-before("abc", "x")`:        "",
		`translate("2001-05-17", "-", "/")`:   "2001/05/17",
		`translate("banana", "an", "")`:       "b",
		`translate("abc", "ab", "x")`:         "xc",
		`round(2.5)`:                          "3",
		`floor(2.9)`:                          "2",
		`ceiling(2.1)`:                        "3",
		`abs(-4)`:                             "4",
		`round(number("17.4"))`:               "17",
	}
	for src, want := range cases {
		got := strs(run(t, src))
		if len(got) != 1 || got[0] != want {
			t.Errorf("%s = %v, want %s", src, got, want)
		}
	}
}

func TestUnionInPredicate(t *testing.T) {
	// Items that have either a fax-bearing publisher or the name Eve.
	got := strs(run(t, `//item[publisher/fax | authors/author[name = "Eve"]]/@id`))
	if !reflect.DeepEqual(got, []string{"I1", "I2"}) {
		t.Fatalf("union predicate = %v", got)
	}
}

func TestEvalCtorAttributeExpressions(t *testing.T) {
	got := strs(run(t, `for $i in //item[1] return <out id="pre-{$i/@id}-post" n="{count($i/authors/author)}"/>`))
	if !reflect.DeepEqual(got, []string{`<out id="pre-I1-post" n="2"/>`}) {
		t.Fatalf("attr ctor = %v", got)
	}
}

func TestFunctionArityErrors(t *testing.T) {
	coll := testColl()
	bad := []string{
		`count()`, `count(1, 2)`, `contains("a")`, `position(1)`,
		`substring("a")`, `doc()`, `not()`, `string-join(("a"))`,
	}
	for _, src := range bad {
		q, err := Parse(src)
		if err != nil {
			continue // a parse rejection is fine too
		}
		if _, err := q.Eval(coll); err == nil {
			t.Errorf("%s evaluated without error", src)
		}
	}
}

func TestNumberFormatting(t *testing.T) {
	if FormatNumber(3) != "3" || FormatNumber(2.5) != "2.5" || FormatNumber(-7) != "-7" {
		t.Fatal("FormatNumber wrong")
	}
	got := strs(run(t, `1.5 + 1.5`))
	if !reflect.DeepEqual(got, []string{"3"}) {
		t.Fatalf("whole float rendered as %v", got)
	}
}

func TestNestedFLWORAndLetChains(t *testing.T) {
	got := strs(run(t, `for $i in //item
		let $n := count($i/authors/author)
		where $n > 1
		return concat(string($i/@id), ":", string($n))`))
	if !reflect.DeepEqual(got, []string{"I1:2"}) {
		t.Fatalf("let chain = %v", got)
	}
	// Nested FLWOR in return position.
	got = strs(run(t, `for $i in //item[@id = "I1"]
		return for $a in $i/authors/author return string($a/name)`))
	if !reflect.DeepEqual(got, []string{"Ada", "Bob"}) {
		t.Fatalf("nested flwor = %v", got)
	}
}

func TestOrderByMultipleKeys(t *testing.T) {
	got := strs(run(t, `for $a in //author
		order by string($a/country), string($a/name) descending
		return concat(string($a/country), "/", string($a/name))`))
	want := []string{"Canada/Bob", "Canada/Ada", "Canada/Ada", "France/Eve"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("multi-key order = %v", got)
	}
}

func TestOrderByEmptyKeyFirst(t *testing.T) {
	c := NewCollection()
	c.Add("d.xml", xmldom.MustParse(`<r><e><k>b</k></e><e/><e><k>a</k></e></r>`))
	q := MustParse(`for $e in //e order by $e/k return count($e/k)`)
	s, err := q.Eval(c)
	if err != nil {
		t.Fatal(err)
	}
	got := SerializeSeq(s)
	if !reflect.DeepEqual(got, []string{"0", "1", "1"}) {
		t.Fatalf("empty keys should sort first: %v", got)
	}
}

func TestDeepAttributeStep(t *testing.T) {
	got := strs(run(t, `count(//sec//@id)`))
	if !reflect.DeepEqual(got, []string{"3"}) { // s1, s2, s3 via descendant-or-self
		t.Fatalf("//sec//@id = %v", got)
	}
}

func TestSelfAxis(t *testing.T) {
	got := strs(run(t, `count(//item/self::item)`))
	if !reflect.DeepEqual(got, []string{"3"}) {
		t.Fatalf("self axis = %v", got)
	}
	got = strs(run(t, `count(//item/self::other)`))
	if !reflect.DeepEqual(got, []string{"0"}) {
		t.Fatalf("self axis name test = %v", got)
	}
}
