package xquery

// expr is an AST node.
type expr interface{ exprNode() }

// literal is a string or numeric constant.
type literal struct {
	str   string
	num   float64
	isNum bool
}

// varRef references $name.
type varRef struct{ name string }

// contextItem is '.'.
type contextItem struct{}

// seqExpr is a comma sequence (e1, e2, ...).
type seqExpr struct{ items []expr }

// axis of a path step.
type axis int

const (
	axisChild axis = iota
	axisDescendant
	axisAttribute
	axisSelf
	axisParent
	axisFollowingSibling
	axisPrecedingSibling
)

// step is one path step: axis::test[pred]...
type step struct {
	axis axis
	name string // element/attribute name; "*" is a wildcard
	// deep marks an attribute step reached via '//' (descendant-or-self
	// attribute lookup, e.g. //@id).
	deep  bool
	preds []expr
}

// pathExpr applies steps to an input expression. A nil input means the
// path is rooted at the collection (leading '/' or '//').
type pathExpr struct {
	input    expr
	fromRoot bool
	steps    []step
	// preds are predicates applied to the primary input itself,
	// e.g. (expr)[3].
	preds []expr
}

// binary covers arithmetic, comparison and logical operators.
type binary struct {
	op   string
	l, r expr
}

// unary negation.
type unary struct{ operand expr }

// call is a function call.
type call struct {
	name string
	args []expr
}

// flwor is for/let/where/order by/return.
type flwor struct {
	clauses []flworClause
	where   expr
	orderBy []orderSpec
	ret     expr
}

type flworClause struct {
	isLet   bool
	varName string
	// posVar is the "at $i" positional variable of a for clause ("" = none).
	posVar string
	src    expr
}

type orderSpec struct {
	key  expr
	desc bool
}

// quantified is some/every $v in src satisfies cond.
type quantified struct {
	every   bool
	varName string
	src     expr
	cond    expr
}

// ifExpr is if (cond) then a else b.
type ifExpr struct {
	cond, then, els expr
}

// elemCtor is a direct element constructor. Content parts are either raw
// text (string) or enclosed expressions (expr).
type elemCtor struct {
	name    string
	attrs   []attrCtor
	content []any // string | expr
}

type attrCtor struct {
	name  string
	parts []any // string | expr
}

func (literal) exprNode()     {}
func (varRef) exprNode()      {}
func (contextItem) exprNode() {}
func (seqExpr) exprNode()     {}
func (pathExpr) exprNode()    {}
func (binary) exprNode()      {}
func (unary) exprNode()       {}
func (call) exprNode()        {}
func (flwor) exprNode()       {}
func (quantified) exprNode()  {}
func (ifExpr) exprNode()      {}
func (elemCtor) exprNode()    {}
