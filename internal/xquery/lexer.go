// Package xquery implements the XQuery subset that carries the XBench
// workload: path expressions with child/descendant/attribute and sibling
// axes, predicates (positional and boolean), FLWOR expressions with order
// by, quantified expressions (some/every), conditionals, arithmetic and
// comparisons, element constructors with enclosed expressions, and the
// function library the 20 benchmark queries require (aggregates, string
// and text-search functions, casts, existence tests).
//
// The native engine evaluates these queries directly over xmldom trees,
// the way X-Hive executed XQuery in the paper; the relational engines
// instead run hand-translated plans, the way the authors translated
// XQuery to SQL for DB2 and SQL Server.
package xquery

import (
	"fmt"
	"strings"
)

type tokKind int

const (
	tokEOF     tokKind = iota
	tokName            // NCName
	tokVar             // $name
	tokString          // 'lit' or "lit"
	tokNumber          // 123 or 1.5
	tokSymbol          // punctuation and operators
	tokTagOpen         // '<' starting a direct element constructor
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of query"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// Error reports a parse or evaluation failure with position context.
type Error struct {
	Pos int
	Msg string
}

func (e *Error) Error() string {
	return fmt.Sprintf("xquery: %s (at offset %d)", e.Msg, e.Pos)
}

type lexer struct {
	src string
	pos int
	// prevKind tracks the previous significant token so '<' can be
	// disambiguated between comparison and element constructor.
	prevKind tokKind
	prevText string
}

func (l *lexer) errf(pos int, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isNameStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c == '-' || c == '.' || (c >= '0' && c <= '9')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if isSpace(c) {
			l.pos++
			continue
		}
		if strings.HasPrefix(l.src[l.pos:], "(:") {
			end := strings.Index(l.src[l.pos+2:], ":)")
			if end < 0 {
				return l.errf(l.pos, "unterminated comment")
			}
			l.pos += 2 + end + 2
			continue
		}
		return nil
	}
	return nil
}

// next returns the next token. Element-constructor bodies are lexed by the
// parser itself (they need raw text), so next only flags the opening '<'.
func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return l.mk(token{kind: tokEOF, pos: start}), nil
	}
	c := l.src[l.pos]
	switch {
	case isNameStart(c):
		for l.pos < len(l.src) && isNameChar(l.src[l.pos]) {
			l.pos++
		}
		return l.mk(token{kind: tokName, text: l.src[start:l.pos], pos: start}), nil
	case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
		for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.') {
			l.pos++
		}
		return l.mk(token{kind: tokNumber, text: l.src[start:l.pos], pos: start}), nil
	case c == '$':
		l.pos++
		if l.pos >= len(l.src) || !isNameStart(l.src[l.pos]) {
			return token{}, l.errf(start, "expected variable name after '$'")
		}
		for l.pos < len(l.src) && isNameChar(l.src[l.pos]) {
			l.pos++
		}
		return l.mk(token{kind: tokVar, text: l.src[start+1 : l.pos], pos: start}), nil
	case c == '"' || c == '\'':
		l.pos++
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errf(start, "unterminated string literal")
			}
			if l.src[l.pos] == c {
				// Doubled quote is an escaped quote.
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == c {
					b.WriteByte(c)
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			b.WriteByte(l.src[l.pos])
			l.pos++
		}
		return l.mk(token{kind: tokString, text: b.String(), pos: start}), nil
	case c == '<':
		// '<' begins an element constructor when a value cannot precede it
		// (start of expression, after '(', ',', 'return', operators...).
		if l.constructorPosition() && l.pos+1 < len(l.src) && isNameStart(l.src[l.pos+1]) {
			l.pos++
			return l.mk(token{kind: tokTagOpen, text: "<", pos: start}), nil
		}
		if strings.HasPrefix(l.src[l.pos:], "<=") {
			l.pos += 2
			return l.mk(token{kind: tokSymbol, text: "<=", pos: start}), nil
		}
		l.pos++
		return l.mk(token{kind: tokSymbol, text: "<", pos: start}), nil
	}
	for _, sym := range []string{"//", ":=", ">=", "<=", "!=", "||", ".."} {
		if strings.HasPrefix(l.src[l.pos:], sym) {
			l.pos += len(sym)
			return l.mk(token{kind: tokSymbol, text: sym, pos: start}), nil
		}
	}
	l.pos++
	return l.mk(token{kind: tokSymbol, text: string(c), pos: start}), nil
}

func (l *lexer) mk(t token) token {
	l.prevKind, l.prevText = t.kind, t.text
	return t
}

// constructorPosition reports whether a '<' at the current position should
// start a direct element constructor rather than a less-than comparison.
func (l *lexer) constructorPosition() bool {
	switch l.prevKind {
	case tokName:
		switch l.prevText {
		case "return", "then", "else", "satisfies", "in", "and", "or", "to", "div", "mod":
			return true
		}
		return false
	case tokVar, tokString, tokNumber:
		return false
	case tokSymbol:
		switch l.prevText {
		case ")", "]", ".":
			return false
		}
		return true
	default: // start of query, EOF can't happen before
		return true
	}
}
