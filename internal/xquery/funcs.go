package xquery

import (
	"fmt"
	"math"
	"strings"

	"xbench/internal/xmldom"
)

func evalCall(ctx *evalCtx, c call) (Seq, error) {
	argc := func(n int) error {
		if len(c.args) != n {
			return &Error{Msg: fmt.Sprintf("%s() expects %d argument(s), got %d", c.name, n, len(c.args))}
		}
		return nil
	}
	evalArg := func(i int) (Seq, error) { return evalExpr(ctx, c.args[i]) }

	switch c.name {
	case "position":
		if err := argc(0); err != nil {
			return nil, err
		}
		return Seq{float64(ctx.pos)}, nil
	case "last":
		if err := argc(0); err != nil {
			return nil, err
		}
		return Seq{float64(ctx.size)}, nil
	case "collection":
		var out Seq
		for _, d := range ctx.coll.docs {
			out = append(out, d)
		}
		return out, nil
	case "doc", "document":
		if err := argc(1); err != nil {
			return nil, err
		}
		a, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		name := seqString(a)
		d := ctx.coll.Doc(name)
		if d == nil {
			return nil, &Error{Msg: fmt.Sprintf("doc(%q): no such document", name)}
		}
		return Seq{d}, nil
	case "count":
		if err := argc(1); err != nil {
			return nil, err
		}
		a, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		return Seq{float64(len(a))}, nil
	case "sum", "avg", "min", "max":
		if err := argc(1); err != nil {
			return nil, err
		}
		a, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		return aggregate(c.name, a)
	case "empty":
		if err := argc(1); err != nil {
			return nil, err
		}
		a, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		return Seq{len(a) == 0}, nil
	case "exists":
		if err := argc(1); err != nil {
			return nil, err
		}
		a, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		return Seq{len(a) > 0}, nil
	case "not":
		if err := argc(1); err != nil {
			return nil, err
		}
		a, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		return Seq{!ebv(a)}, nil
	case "boolean":
		if err := argc(1); err != nil {
			return nil, err
		}
		a, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		return Seq{ebv(a)}, nil
	case "string":
		if err := argc(1); err != nil {
			return nil, err
		}
		a, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		return Seq{seqString(a)}, nil
	case "number":
		if err := argc(1); err != nil {
			return nil, err
		}
		a, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		n, err := seqNumber(a)
		if err != nil {
			return nil, err
		}
		return Seq{n}, nil
	case "data":
		if err := argc(1); err != nil {
			return nil, err
		}
		a, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		out := make(Seq, len(a))
		for i, item := range a {
			out[i] = atomize(item)
		}
		return out, nil
	case "name":
		if err := argc(1); err != nil {
			return nil, err
		}
		a, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		if len(a) == 0 {
			return Seq{""}, nil
		}
		if n, ok := a[0].(*xmldom.Node); ok {
			return Seq{n.Name}, nil
		}
		return Seq{""}, nil
	case "distinct-values":
		if err := argc(1); err != nil {
			return nil, err
		}
		a, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		seen := map[string]bool{}
		var out Seq
		for _, item := range a {
			v := atomize(item)
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
		return out, nil
	case "contains":
		if err := argc(2); err != nil {
			return nil, err
		}
		a, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		b, err := evalArg(1)
		if err != nil {
			return nil, err
		}
		return Seq{strings.Contains(seqString(a), seqString(b))}, nil
	case "contains-word":
		// Uni-gram full-text search (the paper's Q17): true when the word
		// occurs with word boundaries, case-insensitively.
		if err := argc(2); err != nil {
			return nil, err
		}
		a, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		b, err := evalArg(1)
		if err != nil {
			return nil, err
		}
		return Seq{ContainsWord(seqString(a), seqString(b))}, nil
	case "starts-with":
		if err := argc(2); err != nil {
			return nil, err
		}
		a, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		b, err := evalArg(1)
		if err != nil {
			return nil, err
		}
		return Seq{strings.HasPrefix(seqString(a), seqString(b))}, nil
	case "string-length":
		if err := argc(1); err != nil {
			return nil, err
		}
		a, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		return Seq{float64(len(seqString(a)))}, nil
	case "normalize-space":
		if err := argc(1); err != nil {
			return nil, err
		}
		a, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		return Seq{strings.Join(strings.Fields(seqString(a)), " ")}, nil
	case "lower-case":
		if err := argc(1); err != nil {
			return nil, err
		}
		a, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		return Seq{strings.ToLower(seqString(a))}, nil
	case "upper-case":
		if err := argc(1); err != nil {
			return nil, err
		}
		a, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		return Seq{strings.ToUpper(seqString(a))}, nil
	case "concat":
		var b strings.Builder
		for i := range c.args {
			a, err := evalArg(i)
			if err != nil {
				return nil, err
			}
			b.WriteString(seqString(a))
		}
		return Seq{b.String()}, nil
	case "string-join":
		if err := argc(2); err != nil {
			return nil, err
		}
		a, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		sep, err := evalArg(1)
		if err != nil {
			return nil, err
		}
		parts := make([]string, len(a))
		for i, item := range a {
			parts[i] = atomize(item)
		}
		return Seq{strings.Join(parts, seqString(sep))}, nil
	case "substring":
		if len(c.args) != 2 && len(c.args) != 3 {
			return nil, &Error{Msg: "substring() expects 2 or 3 arguments"}
		}
		a, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		s := seqString(a)
		st, err := evalArg(1)
		if err != nil {
			return nil, err
		}
		start, err := seqNumber(st)
		if err != nil {
			return nil, err
		}
		from := int(start) - 1
		if from < 0 {
			from = 0
		}
		if from > len(s) {
			from = len(s)
		}
		to := len(s)
		if len(c.args) == 3 {
			ln, err := evalArg(2)
			if err != nil {
				return nil, err
			}
			n, err := seqNumber(ln)
			if err != nil {
				return nil, err
			}
			to = from + int(n)
			if to > len(s) {
				to = len(s)
			}
			if to < from {
				to = from
			}
		}
		return Seq{s[from:to]}, nil
	case "ends-with":
		if err := argc(2); err != nil {
			return nil, err
		}
		a, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		b, err := evalArg(1)
		if err != nil {
			return nil, err
		}
		return Seq{strings.HasSuffix(seqString(a), seqString(b))}, nil
	case "substring-before", "substring-after":
		if err := argc(2); err != nil {
			return nil, err
		}
		a, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		b, err := evalArg(1)
		if err != nil {
			return nil, err
		}
		s, sub := seqString(a), seqString(b)
		i := strings.Index(s, sub)
		if i < 0 {
			return Seq{""}, nil
		}
		if c.name == "substring-before" {
			return Seq{s[:i]}, nil
		}
		return Seq{s[i+len(sub):]}, nil
	case "translate":
		if err := argc(3); err != nil {
			return nil, err
		}
		a, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		from, err := evalArg(1)
		if err != nil {
			return nil, err
		}
		to, err := evalArg(2)
		if err != nil {
			return nil, err
		}
		return Seq{translate(seqString(a), seqString(from), seqString(to))}, nil
	case "round", "floor", "ceiling", "abs":
		if err := argc(1); err != nil {
			return nil, err
		}
		a, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		if len(a) == 0 {
			return Seq{}, nil
		}
		n, err := seqNumber(a)
		if err != nil {
			return nil, err
		}
		switch c.name {
		case "round":
			return Seq{math.Round(n)}, nil
		case "floor":
			return Seq{math.Floor(n)}, nil
		case "ceiling":
			return Seq{math.Ceil(n)}, nil
		case "abs":
			return Seq{math.Abs(n)}, nil
		}
	case "true":
		return Seq{true}, nil
	case "false":
		return Seq{false}, nil
	}
	return nil, &Error{Msg: fmt.Sprintf("unknown function %s()", c.name)}
}

// translate implements fn:translate over runes: characters in from map to
// the corresponding character in to; from-characters without a
// counterpart are removed.
func translate(s, from, to string) string {
	fromRunes := []rune(from)
	toRunes := []rune(to)
	mapping := make(map[rune]rune, len(fromRunes))
	remove := make(map[rune]bool)
	for i, r := range fromRunes {
		if _, dup := mapping[r]; dup || remove[r] {
			continue // first occurrence wins
		}
		if i < len(toRunes) {
			mapping[r] = toRunes[i]
		} else {
			remove[r] = true
		}
	}
	var b strings.Builder
	for _, r := range s {
		if remove[r] {
			continue
		}
		if m, ok := mapping[r]; ok {
			b.WriteRune(m)
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

func seqString(s Seq) string {
	if len(s) == 0 {
		return ""
	}
	return atomize(s[0])
}

func aggregate(name string, s Seq) (Seq, error) {
	if len(s) == 0 {
		if name == "sum" {
			return Seq{float64(0)}, nil
		}
		return Seq{}, nil
	}
	nums := make([]float64, 0, len(s))
	allNum := true
	for _, item := range s {
		n, ok := toNumber(item)
		if !ok {
			allNum = false
			break
		}
		nums = append(nums, n)
	}
	if !allNum {
		// String min/max (e.g. over dates); sum/avg require numbers.
		if name != "min" && name != "max" {
			return nil, &Error{Msg: name + "() over non-numeric values"}
		}
		best := atomize(s[0])
		for _, item := range s[1:] {
			v := atomize(item)
			if (name == "min" && v < best) || (name == "max" && v > best) {
				best = v
			}
		}
		return Seq{best}, nil
	}
	switch name {
	case "sum":
		t := 0.0
		for _, n := range nums {
			t += n
		}
		return Seq{t}, nil
	case "avg":
		t := 0.0
		for _, n := range nums {
			t += n
		}
		return Seq{t / float64(len(nums))}, nil
	case "min":
		m := nums[0]
		for _, n := range nums[1:] {
			if n < m {
				m = n
			}
		}
		return Seq{m}, nil
	case "max":
		m := nums[0]
		for _, n := range nums[1:] {
			if n > m {
				m = n
			}
		}
		return Seq{m}, nil
	}
	return nil, &Error{Msg: "unknown aggregate " + name}
}

// ContainsWord reports whether text contains word as a whole word,
// case-insensitively. Exported so relational engines run the exact same
// text-search semantics as the native engine's contains-word().
func ContainsWord(text, word string) bool {
	if word == "" {
		return false
	}
	t := strings.ToLower(text)
	w := strings.ToLower(word)
	for off := 0; ; {
		i := strings.Index(t[off:], w)
		if i < 0 {
			return false
		}
		i += off
		beforeOK := i == 0 || !isWordChar(t[i-1])
		j := i + len(w)
		afterOK := j >= len(t) || !isWordChar(t[j])
		if beforeOK && afterOK {
			return true
		}
		off = i + 1
	}
}

func isWordChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}
