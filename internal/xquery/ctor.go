package xquery

import "strings"

// parseElemCtor parses a direct element constructor in token mode: the
// current token is tokTagOpen and the lexer position is just past '<'.
// After the constructor is read, the next token is fetched so token-mode
// parsing resumes normally.
func (p *parser) parseElemCtor() (expr, error) {
	ctor, err := p.parseCtorBody()
	if err != nil {
		return nil, err
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return ctor, nil
}

// parseCtorBody parses a constructor whose '<' has been consumed, entirely
// in raw mode (whitespace and text are significant; enclosed expressions
// {...} re-enter the expression parser). It does not fetch a next token:
// nested constructors must leave the parent's raw reading position intact.
func (p *parser) parseCtorBody() (expr, error) {
	l := p.lx
	name := l.rawName()
	if name == "" {
		return nil, p.errf("expected element name in constructor")
	}
	ctor := elemCtor{name: name}
	// Attributes.
	for {
		l.rawSkipSpace()
		if l.pos >= len(l.src) {
			return nil, p.errf("unterminated constructor <%s", name)
		}
		if l.src[l.pos] == '/' || l.src[l.pos] == '>' {
			break
		}
		aname := l.rawName()
		if aname == "" {
			return nil, p.errf("expected attribute name in <%s>", name)
		}
		l.rawSkipSpace()
		if !l.rawByte('=') {
			return nil, p.errf("expected '=' after attribute %s", aname)
		}
		l.rawSkipSpace()
		if l.pos >= len(l.src) || (l.src[l.pos] != '"' && l.src[l.pos] != '\'') {
			return nil, p.errf("attribute %s value must be quoted", aname)
		}
		quote := l.src[l.pos]
		l.pos++
		parts, err := p.rawParts(string(quote), false)
		if err != nil {
			return nil, err
		}
		l.pos++ // closing quote
		ctor.attrs = append(ctor.attrs, attrCtor{name: aname, parts: parts})
	}
	if l.src[l.pos] == '/' {
		l.pos++
		if !l.rawByte('>') {
			return nil, p.errf("expected '/>' in <%s>", name)
		}
		return ctor, nil
	}
	l.pos++ // '>'
	// Content: raw text, {expr}, nested elements, until </name>.
	for {
		if l.pos >= len(l.src) {
			return nil, p.errf("unterminated element <%s>", name)
		}
		if strings.HasPrefix(l.src[l.pos:], "</") {
			l.pos += 2
			end := l.rawName()
			if end != name {
				return nil, p.errf("mismatched </%s> for <%s>", end, name)
			}
			l.rawSkipSpace()
			if !l.rawByte('>') {
				return nil, p.errf("expected '>' after </%s", name)
			}
			return ctor, nil
		}
		if l.src[l.pos] == '<' {
			l.pos++
			child, err := p.parseCtorBody()
			if err != nil {
				return nil, err
			}
			ctor.content = append(ctor.content, child)
			continue
		}
		if l.src[l.pos] == '{' {
			if strings.HasPrefix(l.src[l.pos:], "{{") {
				ctor.content = append(ctor.content, "{")
				l.pos += 2
				continue
			}
			l.pos++
			e, err := p.enclosedExpr()
			if err != nil {
				return nil, err
			}
			ctor.content = append(ctor.content, e)
			continue
		}
		// Raw text run.
		start := l.pos
		for l.pos < len(l.src) && l.src[l.pos] != '<' && l.src[l.pos] != '{' {
			l.pos++
		}
		if txt := l.src[start:l.pos]; txt != "" {
			ctor.content = append(ctor.content, txt)
		}
	}
}

// rawParts collects attribute-value parts: text runs and enclosed exprs,
// stopping at the terminator character (not consumed).
func (p *parser) rawParts(term string, _ bool) ([]any, error) {
	l := p.lx
	var parts []any
	for {
		if l.pos >= len(l.src) {
			return nil, p.errf("unterminated attribute value")
		}
		c := l.src[l.pos]
		if string(c) == term {
			return parts, nil
		}
		if c == '{' {
			l.pos++
			e, err := p.enclosedExpr()
			if err != nil {
				return nil, err
			}
			parts = append(parts, e)
			continue
		}
		start := l.pos
		for l.pos < len(l.src) && string(l.src[l.pos]) != term && l.src[l.pos] != '{' {
			l.pos++
		}
		parts = append(parts, l.src[start:l.pos])
	}
}

// enclosedExpr parses {expr}: the '{' is consumed; on return the lexer is
// positioned right after the matching '}'.
func (p *parser) enclosedExpr() (expr, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !(p.cur.kind == tokSymbol && p.cur.text == "}") {
		return nil, p.errf("expected '}' after enclosed expression, found %s", p.cur)
	}
	// Do NOT advance: the lexer is already positioned after '}', and the
	// caller resumes raw-mode reading from there.
	return e, nil
}

// raw-mode lexer helpers.

func (l *lexer) rawSkipSpace() {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
}

func (l *lexer) rawName() string {
	start := l.pos
	if l.pos >= len(l.src) || !isNameStart(l.src[l.pos]) {
		return ""
	}
	l.pos++
	for l.pos < len(l.src) && isNameChar(l.src[l.pos]) {
		l.pos++
	}
	return l.src[start:l.pos]
}

func (l *lexer) rawByte(c byte) bool {
	if l.pos < len(l.src) && l.src[l.pos] == c {
		l.pos++
		return true
	}
	return false
}
