package xquery

import (
	"fmt"
	"strconv"
	"strings"
)

// This file is the planner's view into the AST. The AST itself stays
// unexported; Analyze distills the structural facts the cost-based
// planner in internal/plan needs: which collections the query reads,
// which predicates gate the primary access, whether a positional [1]
// caps the result, and which evaluation features (order by, aggregates,
// constructors, text search) appear.

// Pred is one comparison predicate extracted from a path step or a
// FLWOR source: Path op Param, with Path relative to the step's element
// (attributes spelled "@name") and Param either "$var", a "$var/path"
// join reference, or a literal.
type Pred struct {
	Path  string
	Op    string
	Param string
}

// Source is one rooted collection access (a '//elem[...]' path or a
// FLWOR for-clause over one).
type Source struct {
	// Var is the FLWOR variable bound to this source ("" for a plain
	// path expression).
	Var string
	// RootElem is the first named element step ("item", "order", ...).
	RootElem string
	// Preds are the comparison predicates on that step.
	Preds []Pred
	// Positional is the value of the first numeric positional
	// predicate on a later step ("/sense[1]"), 0 if none. A positional
	// k means at most k items of the inner path are needed per match —
	// the limit-pushdown rewrite keys off it.
	Positional int
	// Residual counts predicates on the root step that are not simple
	// comparisons (quantifiers, empty(), text search): they must be
	// re-evaluated after the access path, whatever it is.
	Residual int
}

// Shape summarizes a parsed query for the planner.
type Shape struct {
	// Sources lists rooted collection accesses in query order. More
	// than one means a join (Q19's order x customer reconstruction).
	Sources []Source
	// OrderBy is true when a FLWOR sorts its results.
	OrderBy bool
	// Aggregate names a top-level aggregate call (count/avg/sum/...),
	// "" if none.
	Aggregate string
	// Constructs is true when the query builds new elements.
	Constructs bool
	// UsesDoc is true for doc($X) document lookups.
	UsesDoc bool
	// TextSearch is true when contains()/contains-word() appears: the
	// access path cannot be an equality index probe.
	TextSearch bool
	// Quantified is true for some/every predicates.
	Quantified bool
}

// Joins returns the number of joined sources (0 or 1 means no join).
func (s *Shape) Joins() int { return len(s.Sources) }

// Primary returns the first source, or nil when the query reads no
// rooted collection path (pure doc() lookups).
func (s *Shape) Primary() *Source {
	if len(s.Sources) == 0 {
		return nil
	}
	return &s.Sources[0]
}

// Analyze parses src and summarizes its structure. It never fails on a
// parseable query: shapes it does not recognize simply come back with
// fewer facts (no sources, no preds), which the planner treats as a
// full scan.
func Analyze(src string) (*Shape, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, fmt.Errorf("xquery: analyze: %w", err)
	}
	sh := &Shape{}
	(&analyzer{sh: sh}).walk(q.root, "")
	return sh, nil
}

type analyzer struct {
	sh *Shape
}

// walk traverses the expression tree. bindVar is the FLWOR variable the
// current expression is bound to (for-clause sources), "" otherwise.
func (a *analyzer) walk(e expr, bindVar string) {
	switch v := e.(type) {
	case literal, varRef, contextItem, nil:
	case seqExpr:
		for _, it := range v.items {
			a.walk(it, "")
		}
	case pathExpr:
		if v.fromRoot {
			a.source(v, bindVar)
			return
		}
		a.walk(v.input, "")
		for _, st := range v.steps {
			for _, p := range st.preds {
				a.walk(p, "")
			}
		}
		for _, p := range v.preds {
			a.walk(p, "")
		}
	case binary:
		a.walk(v.l, "")
		a.walk(v.r, "")
	case unary:
		a.walk(v.operand, "")
	case call:
		switch v.name {
		case "doc":
			a.sh.UsesDoc = true
		case "contains", "contains-word":
			a.sh.TextSearch = true
		case "count", "avg", "sum", "min", "max":
			if a.sh.Aggregate == "" {
				a.sh.Aggregate = v.name
			}
		}
		for _, arg := range v.args {
			// distinct-values(//loc) and sum(//order/total) feed a
			// rooted path straight into a call: the path is still the
			// query's source, so the bind variable passes through.
			a.walk(arg, bindVar)
		}
	case flwor:
		for _, cl := range v.clauses {
			if cl.isLet {
				a.walk(cl.src, "")
			} else {
				a.walk(cl.src, cl.varName)
			}
		}
		if v.where != nil {
			a.walk(v.where, "")
		}
		if len(v.orderBy) > 0 {
			a.sh.OrderBy = true
		}
		a.walk(v.ret, "")
	case quantified:
		a.sh.Quantified = true
		a.walk(v.src, "")
		a.walk(v.cond, "")
	case ifExpr:
		a.walk(v.cond, "")
		a.walk(v.then, "")
		a.walk(v.els, "")
	case elemCtor:
		a.sh.Constructs = true
		for _, at := range v.attrs {
			for _, part := range at.parts {
				if ex, ok := part.(expr); ok {
					a.walk(ex, "")
				}
			}
		}
		for _, part := range v.content {
			if ex, ok := part.(expr); ok {
				a.walk(ex, "")
			}
		}
	}
}

// source records a rooted path as a Source: root element, predicates on
// it, and any positional cap on the trailing steps. Predicates are also
// walked so text search and quantifiers inside them are seen.
func (a *analyzer) source(p pathExpr, bindVar string) {
	src := Source{Var: bindVar}
	primary := -1
	for i, st := range p.steps {
		if st.name != "" && st.name != "*" && st.axis != axisAttribute {
			primary = i
			src.RootElem = st.name
			break
		}
	}
	for i, st := range p.steps {
		for _, pr := range st.preds {
			if i == primary {
				got := collectPreds(pr)
				if len(got) == 0 {
					src.Residual++
				}
				src.Preds = append(src.Preds, got...)
			}
			if i > primary && src.Positional == 0 {
				if n, ok := positional(pr); ok {
					src.Positional = n
				}
			}
			a.walk(pr, "")
		}
	}
	for _, pr := range p.preds {
		a.walk(pr, "")
	}
	a.sh.Sources = append(a.sh.Sources, src)
}

// collectPreds flattens an 'and' tree of comparisons into Preds,
// skipping anything that is not a simple path-vs-param comparison
// (quantifiers, empty(), function predicates).
func collectPreds(e expr) []Pred {
	switch v := e.(type) {
	case binary:
		switch v.op {
		case "and":
			return append(collectPreds(v.l), collectPreds(v.r)...)
		case "=", "!=", "<", "<=", ">", ">=":
			path, ok := relPath(v.l)
			if !ok {
				return nil
			}
			param, ok := paramRef(v.r)
			if !ok {
				return nil
			}
			return []Pred{{Path: path, Op: v.op, Param: param}}
		}
	}
	return nil
}

// positional reports a bare numeric predicate [n].
func positional(e expr) (int, bool) {
	lit, ok := e.(literal)
	if !ok || !lit.isNum {
		return 0, false
	}
	n := int(lit.num)
	if float64(n) != lit.num || n < 1 {
		return 0, false
	}
	return n, true
}

// relPath renders a relative path expression ("hw", "@id",
// "prolog/dateline/date") and unwraps string()/number() around one.
func relPath(e expr) (string, bool) {
	switch v := e.(type) {
	case call:
		if (v.name == "string" || v.name == "number") && len(v.args) == 1 {
			return relPath(v.args[0])
		}
	case pathExpr:
		if v.fromRoot || len(v.preds) != 0 {
			return "", false
		}
		switch v.input.(type) {
		case nil, contextItem:
		default:
			return "", false
		}
		return renderSteps(v.steps)
	}
	return "", false
}

// paramRef renders the comparison's right side: "$X" for variables,
// "$o/customer_id" for join references into another binding, or the
// literal text. string()/number() wrappers are transparent.
func paramRef(e expr) (string, bool) {
	switch v := e.(type) {
	case varRef:
		return "$" + v.name, true
	case literal:
		if v.isNum {
			return strconv.FormatFloat(v.num, 'g', -1, 64), true
		}
		return strconv.Quote(v.str), true
	case call:
		if (v.name == "string" || v.name == "number") && len(v.args) == 1 {
			return paramRef(v.args[0])
		}
	case pathExpr:
		vr, ok := v.input.(varRef)
		if !ok || v.fromRoot || len(v.preds) != 0 {
			return "", false
		}
		tail, ok := renderSteps(v.steps)
		if !ok {
			return "", false
		}
		return "$" + vr.name + "/" + tail, true
	}
	return "", false
}

func renderSteps(steps []step) (string, bool) {
	parts := make([]string, 0, len(steps))
	for _, st := range steps {
		if len(st.preds) != 0 || st.name == "" {
			return "", false
		}
		switch st.axis {
		case axisChild, axisDescendant:
			parts = append(parts, st.name)
		case axisAttribute:
			parts = append(parts, "@"+st.name)
		case axisSelf:
		default:
			return "", false
		}
	}
	if len(parts) == 0 {
		return "", false
	}
	return strings.Join(parts, "/"), true
}
