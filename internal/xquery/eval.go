package xquery

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"xbench/internal/xmldom"
)

// Item is one value in a sequence: *xmldom.Node, string, float64 or bool.
type Item any

// Seq is an ordered sequence of items (the XQuery data model).
type Seq []Item

// Collection is the document set a query runs against.
type Collection struct {
	names  []string
	docs   []*xmldom.Node // document nodes, parallel to names
	byName map[string]*xmldom.Node
	order  map[*xmldom.Node]int // document node -> collection position
}

// NewCollection returns an empty collection.
func NewCollection() *Collection {
	return &Collection{
		byName: map[string]*xmldom.Node{},
		order:  map[*xmldom.Node]int{},
	}
}

// Add registers a parsed document under a name (e.g. its file name).
func (c *Collection) Add(name string, doc *xmldom.Node) {
	c.names = append(c.names, name)
	c.docs = append(c.docs, doc)
	c.byName[name] = doc
	c.order[doc] = len(c.docs) - 1
}

// Len returns the number of documents.
func (c *Collection) Len() int { return len(c.docs) }

// Doc returns a document by name, or nil.
func (c *Collection) Doc(name string) *xmldom.Node { return c.byName[name] }

// Names returns document names in collection order.
func (c *Collection) Names() []string { return append([]string(nil), c.names...) }

// Query is a compiled XQuery expression.
type Query struct {
	Source string
	root   expr
}

// Eval runs the query against a collection.
func (q *Query) Eval(coll *Collection) (Seq, error) {
	return q.EvalWithVars(coll, nil)
}

// EvalWithVars runs the query with externally bound variables (the
// workload binds query parameters like $X this way).
func (q *Query) EvalWithVars(coll *Collection, vars map[string]Seq) (Seq, error) {
	ctx := &evalCtx{coll: coll, vars: map[string]Seq{}}
	for k, v := range vars {
		ctx.vars[k] = v
	}
	return evalExpr(ctx, q.root)
}

type evalCtx struct {
	coll *Collection
	vars map[string]Seq
	item Item // context item ('.')
	pos  int  // 1-based position()
	size int  // last()
}

func (c *evalCtx) clone() *evalCtx {
	vars := make(map[string]Seq, len(c.vars))
	for k, v := range c.vars {
		vars[k] = v
	}
	return &evalCtx{coll: c.coll, vars: vars, item: c.item, pos: c.pos, size: c.size}
}

func evalExpr(ctx *evalCtx, e expr) (Seq, error) {
	switch t := e.(type) {
	case literal:
		if t.isNum {
			return Seq{t.num}, nil
		}
		return Seq{t.str}, nil
	case varRef:
		v, ok := ctx.vars[t.name]
		if !ok {
			return nil, &Error{Msg: fmt.Sprintf("undefined variable $%s", t.name)}
		}
		return v, nil
	case contextItem:
		if ctx.item == nil {
			return nil, &Error{Msg: "context item is undefined"}
		}
		return Seq{ctx.item}, nil
	case seqExpr:
		var out Seq
		for _, it := range t.items {
			s, err := evalExpr(ctx, it)
			if err != nil {
				return nil, err
			}
			out = append(out, s...)
		}
		return out, nil
	case unary:
		s, err := evalExpr(ctx, t.operand)
		if err != nil {
			return nil, err
		}
		n, err := seqNumber(s)
		if err != nil {
			return nil, err
		}
		return Seq{-n}, nil
	case binary:
		return evalBinary(ctx, t)
	case call:
		return evalCall(ctx, t)
	case pathExpr:
		return evalPath(ctx, t)
	case flwor:
		return evalFLWOR(ctx, t)
	case quantified:
		return evalQuantified(ctx, t)
	case ifExpr:
		cond, err := evalExpr(ctx, t.cond)
		if err != nil {
			return nil, err
		}
		if ebv(cond) {
			return evalExpr(ctx, t.then)
		}
		return evalExpr(ctx, t.els)
	case elemCtor:
		n, err := evalCtor(ctx, t)
		if err != nil {
			return nil, err
		}
		return Seq{n}, nil
	case stepWrap:
		// A bare step outside a pathExpr (shouldn't normally occur).
		return evalPath(ctx, pathExpr{steps: []step{t.s}})
	}
	return nil, &Error{Msg: fmt.Sprintf("unhandled expression %T", e)}
}

func evalBinary(ctx *evalCtx, b binary) (Seq, error) {
	switch b.op {
	case "and":
		l, err := evalExpr(ctx, b.l)
		if err != nil {
			return nil, err
		}
		if !ebv(l) {
			return Seq{false}, nil
		}
		r, err := evalExpr(ctx, b.r)
		if err != nil {
			return nil, err
		}
		return Seq{ebv(r)}, nil
	case "or":
		l, err := evalExpr(ctx, b.l)
		if err != nil {
			return nil, err
		}
		if ebv(l) {
			return Seq{true}, nil
		}
		r, err := evalExpr(ctx, b.r)
		if err != nil {
			return nil, err
		}
		return Seq{ebv(r)}, nil
	}
	l, err := evalExpr(ctx, b.l)
	if err != nil {
		return nil, err
	}
	r, err := evalExpr(ctx, b.r)
	if err != nil {
		return nil, err
	}
	switch b.op {
	case "|":
		return unionSeqs(ctx, l, r), nil
	case "+", "-", "*", "div", "idiv", "mod":
		ln, err := seqNumber(l)
		if err != nil {
			return nil, err
		}
		rn, err := seqNumber(r)
		if err != nil {
			return nil, err
		}
		switch b.op {
		case "+":
			return Seq{ln + rn}, nil
		case "-":
			return Seq{ln - rn}, nil
		case "*":
			return Seq{ln * rn}, nil
		case "div":
			return Seq{ln / rn}, nil
		case "idiv":
			if int64(rn) == 0 {
				return nil, &Error{Msg: "integer division by zero"}
			}
			return Seq{float64(int64(ln) / int64(rn))}, nil
		case "mod":
			if int64(rn) == 0 {
				return nil, &Error{Msg: "modulo by zero"}
			}
			return Seq{float64(int64(ln) % int64(rn))}, nil
		}
	case "to":
		ln, err := seqNumber(l)
		if err != nil {
			return nil, err
		}
		rn, err := seqNumber(r)
		if err != nil {
			return nil, err
		}
		var out Seq
		for i := int(ln); i <= int(rn); i++ {
			out = append(out, float64(i))
		}
		return out, nil
	case "=", "!=", "<", "<=", ">", ">=":
		// General comparison: existential over both sequences.
		for _, li := range l {
			for _, ri := range r {
				if compareItems(li, ri, b.op) {
					return Seq{true}, nil
				}
			}
		}
		return Seq{false}, nil
	}
	return nil, &Error{Msg: fmt.Sprintf("unhandled operator %q", b.op)}
}

// unionSeqs merges two sequences: nodes are deduplicated and the merged
// node set is returned in document order; atomic items keep encounter
// order after the nodes (ad-hoc but total).
func unionSeqs(ctx *evalCtx, l, r Seq) Seq {
	seen := map[*xmldom.Node]bool{}
	var out Seq
	allNodes := true
	for _, s := range []Seq{l, r} {
		for _, item := range s {
			if n, ok := item.(*xmldom.Node); ok {
				if seen[n] {
					continue
				}
				seen[n] = true
			} else {
				allNodes = false
			}
			out = append(out, item)
		}
	}
	if allNodes && len(out) > 1 {
		sortDocOrder(ctx, out)
	}
	return out
}

// compareItems applies op to two atomized items. If both atomize to
// numbers the comparison is numeric, otherwise lexicographic — which is
// correct for the benchmark's ISO dates.
func compareItems(a, b Item, op string) bool {
	as, bs := atomize(a), atomize(b)
	af, aok := toNumber(a)
	bf, bok := toNumber(b)
	if aok && bok {
		switch op {
		case "=":
			return af == bf
		case "!=":
			return af != bf
		case "<":
			return af < bf
		case "<=":
			return af <= bf
		case ">":
			return af > bf
		case ">=":
			return af >= bf
		}
	}
	switch op {
	case "=":
		return as == bs
	case "!=":
		return as != bs
	case "<":
		return as < bs
	case "<=":
		return as <= bs
	case ">":
		return as > bs
	case ">=":
		return as >= bs
	}
	return false
}

func evalFLWOR(ctx *evalCtx, f flwor) (Seq, error) {
	tuples := []*evalCtx{ctx.clone()}
	for _, cl := range f.clauses {
		var next []*evalCtx
		for _, tu := range tuples {
			src, err := evalExpr(tu, cl.src)
			if err != nil {
				return nil, err
			}
			if cl.isLet {
				nt := tu.clone()
				nt.vars[cl.varName] = src
				next = append(next, nt)
				continue
			}
			for i, item := range src {
				nt := tu.clone()
				nt.vars[cl.varName] = Seq{item}
				if cl.posVar != "" {
					nt.vars[cl.posVar] = Seq{float64(i + 1)}
				}
				next = append(next, nt)
			}
		}
		tuples = next
	}
	if f.where != nil {
		var kept []*evalCtx
		for _, tu := range tuples {
			w, err := evalExpr(tu, f.where)
			if err != nil {
				return nil, err
			}
			if ebv(w) {
				kept = append(kept, tu)
			}
		}
		tuples = kept
	}
	if len(f.orderBy) > 0 {
		type keyed struct {
			tu   *evalCtx
			keys []Item
		}
		ks := make([]keyed, len(tuples))
		for i, tu := range tuples {
			ks[i].tu = tu
			for _, spec := range f.orderBy {
				kv, err := evalExpr(tu, spec.key)
				if err != nil {
					return nil, err
				}
				var k Item
				if len(kv) > 0 {
					k = kv[0]
				}
				ks[i].keys = append(ks[i].keys, k)
			}
		}
		sort.SliceStable(ks, func(i, j int) bool {
			for s, spec := range f.orderBy {
				a, b := ks[i].keys[s], ks[j].keys[s]
				cmp := compareKeys(a, b)
				if cmp == 0 {
					continue
				}
				if spec.desc {
					return cmp > 0
				}
				return cmp < 0
			}
			return false
		})
		for i := range ks {
			tuples[i] = ks[i].tu
		}
	}
	var out Seq
	for _, tu := range tuples {
		r, err := evalExpr(tu, f.ret)
		if err != nil {
			return nil, err
		}
		out = append(out, r...)
	}
	return out, nil
}

// compareKeys orders two order-by keys: nil (empty) first, numeric when
// both are numbers, string otherwise.
func compareKeys(a, b Item) int {
	if a == nil || b == nil {
		switch {
		case a == nil && b == nil:
			return 0
		case a == nil:
			return -1
		default:
			return 1
		}
	}
	af, aok := toNumber(a)
	bf, bok := toNumber(b)
	if aok && bok {
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	as, bs := atomize(a), atomize(b)
	switch {
	case as < bs:
		return -1
	case as > bs:
		return 1
	default:
		return 0
	}
}

func evalQuantified(ctx *evalCtx, q quantified) (Seq, error) {
	src, err := evalExpr(ctx, q.src)
	if err != nil {
		return nil, err
	}
	for _, item := range src {
		nt := ctx.clone()
		nt.vars[q.varName] = Seq{item}
		c, err := evalExpr(nt, q.cond)
		if err != nil {
			return nil, err
		}
		if q.every {
			if !ebv(c) {
				return Seq{false}, nil
			}
		} else if ebv(c) {
			return Seq{true}, nil
		}
	}
	return Seq{q.every}, nil
}

func evalCtor(ctx *evalCtx, c elemCtor) (*xmldom.Node, error) {
	el := xmldom.NewElement(c.name)
	for _, a := range c.attrs {
		var b strings.Builder
		for _, part := range a.parts {
			switch pt := part.(type) {
			case string:
				b.WriteString(pt)
			case expr:
				s, err := evalExpr(ctx, pt)
				if err != nil {
					return nil, err
				}
				for i, item := range s {
					if i > 0 {
						b.WriteByte(' ')
					}
					b.WriteString(atomize(item))
				}
			}
		}
		el.SetAttr(a.name, b.String())
	}
	for _, part := range c.content {
		switch pt := part.(type) {
		case string:
			el.AddText(pt)
		case expr:
			s, err := evalExpr(ctx, pt)
			if err != nil {
				return nil, err
			}
			prevAtomic := false
			for _, item := range s {
				if n, ok := item.(*xmldom.Node); ok {
					el.Append(n.Clone())
					prevAtomic = false
					continue
				}
				if prevAtomic {
					el.AddText(" ")
				}
				el.AddText(atomize(item))
				prevAtomic = true
			}
		}
	}
	return el, nil
}

// ebv computes the effective boolean value of a sequence.
func ebv(s Seq) bool {
	if len(s) == 0 {
		return false
	}
	if _, isNode := s[0].(*xmldom.Node); isNode {
		return true
	}
	if len(s) > 1 {
		return true
	}
	switch v := s[0].(type) {
	case bool:
		return v
	case float64:
		return v != 0
	case string:
		return v != ""
	}
	return true
}

// atomize returns the string value of an item.
func atomize(it Item) string {
	switch v := it.(type) {
	case nil:
		return ""
	case *xmldom.Node:
		return v.Text()
	case string:
		return v
	case float64:
		return FormatNumber(v)
	case bool:
		if v {
			return "true"
		}
		return "false"
	}
	return fmt.Sprint(it)
}

// FormatNumber renders a number the way atomization does; the relational
// engines use it so aggregate results compare byte-for-byte with the
// native engine's.
func FormatNumber(f float64) string {
	if f == float64(int64(f)) {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// toNumber attempts numeric atomization.
func toNumber(it Item) (float64, bool) {
	switch v := it.(type) {
	case float64:
		return v, true
	case bool:
		if v {
			return 1, true
		}
		return 0, true
	default:
		s := strings.TrimSpace(atomize(it))
		if s == "" {
			return 0, false
		}
		f, err := strconv.ParseFloat(s, 64)
		return f, err == nil
	}
}

func seqNumber(s Seq) (float64, error) {
	if len(s) == 0 {
		return 0, &Error{Msg: "empty sequence where a number is required"}
	}
	n, ok := toNumber(s[0])
	if !ok {
		return 0, &Error{Msg: fmt.Sprintf("cannot cast %q to a number", atomize(s[0]))}
	}
	return n, nil
}

// SerializeSeq renders a result sequence as strings, one per item: nodes
// as XML, atomics as their string value. This is what engines put into
// core.Result.Items.
func SerializeSeq(s Seq) []string {
	out := make([]string, len(s))
	for i, item := range s {
		if n, ok := item.(*xmldom.Node); ok {
			out[i] = n.XML()
		} else {
			out[i] = atomize(item)
		}
	}
	return out
}
