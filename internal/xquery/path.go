package xquery

import (
	"sort"

	"xbench/internal/xmldom"
)

func evalPath(ctx *evalCtx, pe pathExpr) (Seq, error) {
	var cur Seq
	switch {
	case pe.fromRoot:
		for _, d := range ctx.coll.docs {
			cur = append(cur, d)
		}
	case pe.input != nil:
		s, err := evalExpr(ctx, pe.input)
		if err != nil {
			return nil, err
		}
		cur = s
		if len(pe.preds) > 0 {
			cur, err = applyPredicates(ctx, cur, pe.preds)
			if err != nil {
				return nil, err
			}
		}
	default:
		if ctx.item == nil {
			return nil, &Error{Msg: "relative path with undefined context item"}
		}
		cur = Seq{ctx.item}
	}
	for _, st := range pe.steps {
		next, err := applyStep(ctx, cur, st)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

// applyStep evaluates one step for every node in the input sequence,
// applying the step's predicates per context node (XPath position
// semantics), then merges results in document order with duplicates
// removed.
func applyStep(ctx *evalCtx, input Seq, st step) (Seq, error) {
	var merged Seq
	seen := map[*xmldom.Node]bool{}
	allNodes := true
	for _, item := range input {
		n, ok := item.(*xmldom.Node)
		if !ok {
			continue // axis steps apply to nodes only
		}
		cands := candidates(n, st)
		filtered, err := applyPredicates(ctx, cands, st.preds)
		if err != nil {
			return nil, err
		}
		for _, f := range filtered {
			if fn, ok := f.(*xmldom.Node); ok {
				if seen[fn] {
					continue
				}
				seen[fn] = true
			} else {
				allNodes = false
			}
			merged = append(merged, f)
		}
	}
	if allNodes && len(merged) > 1 {
		sortDocOrder(ctx, merged)
	}
	return merged, nil
}

// candidates returns the raw axis results for one context node.
func candidates(n *xmldom.Node, st step) Seq {
	var out Seq
	switch st.axis {
	case axisChild:
		switch st.name {
		case "text()":
			for _, c := range n.Children {
				if c.Kind == xmldom.TextKind {
					out = append(out, c.Data)
				}
			}
		case "node()":
			for _, c := range n.Children {
				if c.Kind == xmldom.TextKind {
					out = append(out, c.Data)
				} else {
					out = append(out, c)
				}
			}
		default:
			for _, c := range n.Children {
				if c.Kind == xmldom.ElementKind && (st.name == "*" || c.Name == st.name) {
					out = append(out, c)
				}
			}
		}
	case axisDescendant:
		// descendant (not -or-self), element name test.
		for _, c := range n.Children {
			c.Walk(func(d *xmldom.Node) bool {
				if d.Kind == xmldom.ElementKind && (st.name == "*" || d.Name == st.name) {
					out = append(out, d)
				}
				return true
			})
		}
	case axisAttribute:
		if st.deep {
			// //@name: attributes of descendant-or-self elements.
			n.Walk(func(d *xmldom.Node) bool {
				out = append(out, attrValues(d, st.name)...)
				return true
			})
		} else {
			out = attrValues(n, st.name)
		}
	case axisSelf:
		if n.Kind == xmldom.ElementKind && (st.name == "*" || n.Name == st.name) {
			out = append(out, n)
		}
	case axisParent:
		if p := n.Parent; p != nil && p.Kind == xmldom.ElementKind &&
			(st.name == "*" || p.Name == st.name) {
			out = append(out, p)
		}
	case axisFollowingSibling, axisPrecedingSibling:
		p := n.Parent
		if p == nil {
			return nil
		}
		idx := -1
		for i, c := range p.Children {
			if c == n {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil
		}
		if st.axis == axisFollowingSibling {
			for _, c := range p.Children[idx+1:] {
				if c.Kind == xmldom.ElementKind && (st.name == "*" || c.Name == st.name) {
					out = append(out, c)
				}
			}
		} else {
			// preceding-sibling in reverse document order (XPath semantics:
			// positions count backwards from the context node).
			for i := idx - 1; i >= 0; i-- {
				c := p.Children[i]
				if c.Kind == xmldom.ElementKind && (st.name == "*" || c.Name == st.name) {
					out = append(out, c)
				}
			}
		}
	}
	return out
}

func attrValues(n *xmldom.Node, name string) Seq {
	if n.Kind != xmldom.ElementKind {
		return nil
	}
	var out Seq
	if name == "*" {
		for _, a := range n.Attrs {
			out = append(out, a.Value)
		}
		return out
	}
	if v, ok := n.Attr(name); ok {
		out = append(out, v)
	}
	return out
}

// applyPredicates filters a candidate list, giving each predicate
// expression access to the context item, position() and last().
func applyPredicates(ctx *evalCtx, items Seq, preds []expr) (Seq, error) {
	cur := items
	for _, pred := range preds {
		var kept Seq
		size := len(cur)
		for i, item := range cur {
			sub := ctx.clone()
			sub.item = item
			sub.pos = i + 1
			sub.size = size
			v, err := evalExpr(sub, pred)
			if err != nil {
				return nil, err
			}
			// A single numeric predicate value is a position test.
			if len(v) == 1 {
				if f, ok := v[0].(float64); ok {
					if int(f) == i+1 {
						kept = append(kept, item)
					}
					continue
				}
			}
			if ebv(v) {
				kept = append(kept, item)
			}
		}
		cur = kept
	}
	return cur, nil
}

// sortDocOrder sorts nodes by (collection position of their document,
// node order within the document). Constructed nodes (no document) keep
// their relative order after all document nodes.
func sortDocOrder(ctx *evalCtx, items Seq) {
	type ranked struct {
		item Item
		doc  int
		ord  int32
	}
	rs := make([]ranked, len(items))
	for i, it := range items {
		rs[i] = ranked{item: it, doc: 1 << 30, ord: int32(i)}
		if n, ok := it.(*xmldom.Node); ok {
			root := n
			for root.Parent != nil {
				root = root.Parent
			}
			if d, ok := ctx.coll.order[root]; ok {
				rs[i].doc = d
				rs[i].ord = n.Ord
			}
		}
	}
	// Stable sort keeps constructed nodes in encounter order.
	sort.SliceStable(rs, func(i, j int) bool {
		if rs[i].doc != rs[j].doc {
			return rs[i].doc < rs[j].doc
		}
		return rs[i].ord < rs[j].ord
	})
	for i := range rs {
		items[i] = rs[i].item
	}
}
