package shredder

import (
	"context"
	"errors"
	"strings"
	"testing"

	"xbench/internal/core"
	"xbench/internal/pager"
	"xbench/internal/relational"
	"xbench/internal/xmldom"
)

func newStore(class core.Class, opts Options) *Store {
	return NewStore(class, relational.NewDB(pager.New(128)), opts)
}

const orderDoc = `<order id="O1">
	<customer_id>C1</customer_id><order_date>2000-05-05</order_date>
	<sub_total>10</sub_total><tax>0.8</tax><total>10.8</total>
	<ship_type>AIR</ship_type><ship_date>2000-05-07</ship_date>
	<ship_addr_id>A1</ship_addr_id><order_status>SHIPPED</order_status>
	<cc_xacts><cc_type>VISA</cc_type><cc_number>4111</cc_number>
	<cc_name>Ada A</cc_name><cc_expiry>2002-01-01</cc_expiry>
	<cc_auth_id>AUTH1</cc_auth_id><total_amount>10.8</total_amount></cc_xacts>
	<order_lines>
	  <order_line><item_id>I1</item_id><qty>1</qty><discount>0</discount></order_line>
	  <order_line><item_id>I2</item_id><qty>2</qty><discount>5</discount><comment>fast please</comment></order_line>
	</order_lines></order>`

func TestShredOrder(t *testing.T) {
	s := newStore(core.DCMD, Options{})
	rows, err := s.ShredDocument("order1.xml", xmldom.MustParse(orderDoc))
	if err != nil {
		t.Fatal(err)
	}
	if rows != 3 { // 1 order + 2 lines
		t.Fatalf("rows = %d", rows)
	}
	ot := s.DB.Table("order_tab")
	got, err := ot.LookupEq(context.Background(), "id", "O1")
	if err != nil || len(got) != 1 {
		t.Fatalf("order row: %v %v", got, err)
	}
	r := got[0]
	if r[ot.Col("cc_type")] != "VISA" {
		t.Fatal("CC_XACTS not folded into order_tab")
	}
	if !relational.IsNull(r[ot.Col("ship_country")]) {
		t.Fatal("absent ship_country should be NULL")
	}
	lt := s.DB.Table("order_line_tab")
	lrows, _ := lt.LookupEq(context.Background(), "order_id", "O1")
	if len(lrows) != 2 {
		t.Fatalf("lines = %d", len(lrows))
	}
	if !relational.IsNull(lrows[0][lt.Col("comment")]) || relational.IsNull(lrows[1][lt.Col("comment")]) {
		t.Fatal("comment NULL handling wrong")
	}
}

func TestShredDictionaryMixedContent(t *testing.T) {
	dict := `<dictionary><entry id="e1"><hw>alpha</hw><pos>n.</pos>
		<etym>From <cr target="e2">beta</cr> roots.</etym>
		<sense><def>first letter</def>
		<qp><q><qd>1999-01-01</qd><a>Ada Adams</a><loc>London</loc>
		<qt>quote <i>emphasis</i> more</qt></q></qp></sense></entry>
		<entry id="e2"><hw>beta</hw><pos>n.</pos>
		<sense><def>second letter</def></sense></entry></dictionary>`

	keep := newStore(core.TCSD, Options{})
	if _, err := keep.ShredDocument("dictionary.xml", xmldom.MustParse(dict)); err != nil {
		t.Fatal(err)
	}
	qt := keep.DB.Table("quote_tab")
	qrows, _ := qt.LookupEq(context.Background(), "entry_id", "e1")
	if len(qrows) != 1 {
		t.Fatalf("quotes = %d", len(qrows))
	}
	if got := qrows[0][qt.Col("qt")]; !strings.Contains(got, "emphasis") {
		t.Fatalf("flattened qt = %q", got)
	}
	if keep.SkippedMixed != 0 {
		t.Fatal("non-dropping store counted skipped mixed content")
	}

	drop := newStore(core.TCSD, Options{DropMixed: true})
	if _, err := drop.ShredDocument("dictionary.xml", xmldom.MustParse(dict)); err != nil {
		t.Fatal(err)
	}
	if drop.SkippedMixed == 0 {
		t.Fatal("dropping store counted no skipped mixed content")
	}
	qt2 := drop.DB.Table("quote_tab")
	qrows2, _ := qt2.LookupEq(context.Background(), "entry_id", "e1")
	if got := qrows2[0][qt2.Col("qt")]; got != "" {
		t.Fatalf("dropped qt should be empty (present, text lost), got %q", got)
	}
	// etym is present: NULL only for e2 where it is truly missing.
	et := drop.DB.Table("entry_tab")
	e1, _ := et.LookupEq(context.Background(), "id", "e1")
	e2, _ := et.LookupEq(context.Background(), "id", "e2")
	if relational.IsNull(e1[0][et.Col("etym")]) {
		t.Fatal("present etym should not be NULL even when text dropped")
	}
	if !relational.IsNull(e2[0][et.Col("etym")]) {
		t.Fatal("missing etym should be NULL")
	}
}

func TestShredArticleRecursion(t *testing.T) {
	art := `<article id="a1"><prolog><title>T</title>
		<authors><author><name>N</name><contact></contact></author></authors>
		<keywords><kw>data</kw><kw>system</kw></keywords></prolog>
		<body><sec id="s1"><heading>Introduction</heading><p>p1</p>
		<sec id="s1.1"><p>nested</p></sec></sec>
		<sec id="s2"><heading>More</heading><p>p2</p></sec></body>
		<epilog><references><a_id target="a9">article 9</a_id></references></epilog></article>`
	s := newStore(core.TCMD, Options{})
	if _, err := s.ShredDocument("article1.xml", xmldom.MustParse(art)); err != nil {
		t.Fatal(err)
	}
	st := s.DB.Table("sec_tab")
	rows, _ := st.LookupEq(context.Background(), "article_id", "a1")
	if len(rows) != 3 {
		t.Fatalf("secs = %d", len(rows))
	}
	// The nested section must point at its parent via the unique id
	// (the paper's chain-relationship fix).
	var nestedParent string
	for _, r := range rows {
		if r[st.Col("id")] == "s1.1" {
			nestedParent = r[st.Col("parent_sec")]
		}
	}
	if nestedParent != "s1" {
		t.Fatalf("nested sec parent = %q", nestedParent)
	}
	if s.DB.Table("kw_tab").Count() != 2 {
		t.Fatal("keywords not shredded")
	}
	if s.DB.Table("ref_tab").Count() != 1 {
		t.Fatal("references not shredded")
	}
	// Empty contact is stored as empty string, not NULL (Q15 vs Q14).
	at := s.DB.Table("art_author_tab")
	arows, _ := at.LookupEq(context.Background(), "article_id", "a1")
	if v := arows[0][at.Col("contact")]; relational.IsNull(v) || v != "" {
		t.Fatalf("empty contact stored as %q", v)
	}
}

func TestRowLimit(t *testing.T) {
	s := newStore(core.DCMD, Options{RowLimitPerDoc: 2})
	_, err := s.ShredDocument("order1.xml", xmldom.MustParse(orderDoc))
	if !errors.Is(err, core.ErrUnsupported) {
		t.Fatalf("row limit did not trip: %v", err)
	}
}

func TestFlushPerDocument(t *testing.T) {
	p := pager.New(128)
	s := NewStore(core.DCMD, relational.NewDB(p), Options{FlushPerDocument: true})
	before := p.Stats().Writes
	if _, err := s.ShredDocument("order1.xml", xmldom.MustParse(orderDoc)); err != nil {
		t.Fatal(err)
	}
	perDoc := p.Stats().Writes - before

	p2 := pager.New(128)
	s2 := NewStore(core.DCMD, relational.NewDB(p2), Options{})
	before2 := p2.Stats().Writes
	if _, err := s2.ShredDocument("order1.xml", xmldom.MustParse(orderDoc)); err != nil {
		t.Fatal(err)
	}
	perBatch := p2.Stats().Writes - before2
	if perDoc <= perBatch {
		t.Fatalf("per-document flushing should cost more writes: %d vs %d", perDoc, perBatch)
	}
}

func TestUnknownRootRejected(t *testing.T) {
	s := newStore(core.DCMD, Options{})
	if _, err := s.ShredDocument("x.xml", xmldom.MustParse(`<bogus/>`)); err == nil {
		t.Fatal("unknown root accepted")
	}
}
