// Package shredder implements the DAD-style XML-to-relational mapping used
// by the shredding engines (DB2 Xcollection and SQL Server in the paper).
// Each XBench class has a fixed decomposition into tables, mirroring the
// annotated schemas the paper's authors wrote by hand (§3.1.1, §3.1.2).
//
// The mapping reproduces the documented problems of shredding (§3.1.3):
//
//   - Document order is not represented (no order columns), so ordered
//     access and reconstruction are only accidentally correct.
//   - Mixed-content elements cannot be mapped; with Options.DropMixed
//     (SQL Server) their text is lost entirely, otherwise (Xcollection)
//     only the flattened text survives, losing inline markup.
//   - Chain relationships rely on the unique ids the generators add to
//     ambiguous elements (sec/@id), per the paper's fix.
//   - A decomposition row limit per document (DB2's 1024-row limit,
//     scaled to this reproduction's database sizes) rejects large
//     single-document databases.
package shredder

import (
	"context"
	"fmt"

	"xbench/internal/core"
	"xbench/internal/plan"
	"xbench/internal/relational"
	"xbench/internal/xmldom"
)

// Options control the engine-specific mapping behavior.
type Options struct {
	// DropMixed discards the character data of mixed-content elements
	// (SQL Server, paper §3.1.3 item 3). When false the flattened text is
	// stored (structure is still lost).
	DropMixed bool
	// RowLimitPerDoc rejects any document that decomposes into more rows
	// (DB2 Xcollection's 1024-row limit, §3.1.3 item 5). 0 disables.
	RowLimitPerDoc int
	// FlushPerDocument flushes and syncs every table after each document
	// (per-document transaction commits: both DB2's decomposition and the
	// SQLXML bulk loader work document-at-a-time), instead of once at the
	// end of the load.
	FlushPerDocument bool
}

// Store holds the shredded representation of one database.
type Store struct {
	Class core.Class
	DB    *relational.DB
	Opts  Options
	// Rows is the total number of rows inserted.
	Rows int
	// SkippedMixed counts mixed-content elements whose text was dropped.
	SkippedMixed int
	// Feedback accumulates observed range-probe selectivities for the
	// cost model. Shared (by pointer) with every Snapshot clone, so
	// queries running against pinned snapshot views still teach the
	// live planner.
	Feedback *plan.Feedback
}

// Snapshot clones the store as an immutable view of its tables at the
// given commit epoch (relational.DB.Snapshot): the query path the
// shredding engines publish per committed update so readers never take
// the engine write lock. Must be called under writer exclusion at a
// commit boundary; readers must hold a pager.Snap pinned at epoch.
func (s *Store) Snapshot(epoch uint64) (*Store, error) {
	db, err := s.DB.Snapshot(epoch)
	if err != nil {
		return nil, err
	}
	return &Store{Class: s.Class, DB: db, Opts: s.Opts, Rows: s.Rows,
		SkippedMixed: s.SkippedMixed, Feedback: s.Feedback}, nil
}

// NewStore creates the per-class table schema in db.
func NewStore(class core.Class, db *relational.DB, opts Options) *Store {
	s := &Store{Class: class, DB: db, Opts: opts, Feedback: &plan.Feedback{}}
	switch class {
	case core.DCSD:
		db.Create("item_tab", "id", "title", "date_of_release", "subject",
			"description", "srp", "cost", "avail", "isbn", "number_of_pages",
			"backing", "length", "width", "height")
		db.Create("item_author_tab", "item_id", "first_name", "middle_name",
			"last_name", "date_of_birth", "biography", "street_address1",
			"street_address2", "city", "state", "zip_code", "country",
			"phone_number", "email_address")
		db.Create("item_publisher_tab", "item_id", "name", "fax_number",
			"phone_number", "email_address")
	case core.DCMD:
		// The paper maps all orderXXX.xml documents into two tables
		// (order_tab and order_line_tab); CC_XACTS is 1:1 and folded in.
		db.Create("order_tab", "id", "customer_id", "order_date", "sub_total",
			"tax", "total", "ship_type", "ship_date", "ship_addr_id",
			"order_status", "cc_type", "cc_number", "cc_name", "cc_expiry",
			"cc_auth_id", "total_amount", "ship_country")
		db.Create("order_line_tab", "order_id", "item_id", "qty", "discount", "comment")
		db.Create("customer_tab", "id", "c_uname", "c_fname", "c_lname",
			"c_phone", "c_email", "c_since", "c_discount", "c_addr_id")
		db.Create("flat_item_tab", "id", "i_title", "i_a_id", "i_pub_date",
			"i_publisher", "i_subject", "i_cost", "i_isbn", "i_page")
		db.Create("flat_author_tab", "id", "a_fname", "a_lname", "a_mname",
			"a_dob", "a_bio")
		db.Create("address_tab", "id", "addr_street1", "addr_street2",
			"addr_city", "addr_state", "addr_zip", "addr_co_id")
		db.Create("country_tab", "id", "co_name", "co_exchange", "co_currency")
	case core.TCSD:
		db.Create("entry_tab", "id", "hw", "pr", "pos", "etym")
		db.Create("sense_tab", "entry_id", "sense_no", "def")
		db.Create("quote_tab", "entry_id", "sense_no", "qd", "a", "loc", "qt")
		db.Create("cr_tab", "entry_id", "target", "text")
	case core.TCMD:
		db.Create("article_tab", "id", "doc", "title", "genre", "date",
			"country", "has_abstract")
		db.Create("abs_para_tab", "article_id", "text")
		db.Create("art_author_tab", "article_id", "name", "affiliation",
			"contact", "bio")
		db.Create("sec_tab", "id", "article_id", "parent_sec", "heading")
		db.Create("para_tab", "sec_id", "article_id", "text")
		db.Create("kw_tab", "article_id", "kw")
		db.Create("ref_tab", "article_id", "target")
	}
	return s
}

// text returns the string value of the named child, or NULL when absent.
func text(n *xmldom.Node, name string) string {
	c := n.FirstChild(name)
	if c == nil {
		return relational.Null
	}
	return c.Text()
}

// attr returns an attribute value or NULL.
func attr(n *xmldom.Node, name string) string {
	if v, ok := n.Attr(name); ok {
		return v
	}
	return relational.Null
}

// mixedText returns the flattened text of a mixed-content element,
// honoring DropMixed, and reports whether content was dropped.
func (s *Store) mixedText(n *xmldom.Node) (string, bool) {
	if n == nil {
		return relational.Null, false
	}
	if n.HasMixedContent() && s.Opts.DropMixed {
		// The element's text cannot be mapped (paper §3.1.3 item 3); its
		// presence survives as an empty value, its content is lost.
		s.SkippedMixed++
		return "", true
	}
	return n.Text(), false
}

// ShredDocument decomposes one parsed document into rows. It returns the
// number of rows produced, enforcing Options.RowLimitPerDoc.
func (s *Store) ShredDocument(name string, doc *xmldom.Node) (int, error) {
	before := s.Rows
	root := doc.Root()
	if root == nil {
		return 0, fmt.Errorf("shredder: %s has no root element", name)
	}
	var err error
	switch s.Class {
	case core.DCSD:
		err = s.shredCatalog(root)
	case core.DCMD:
		err = s.shredDCMD(name, root)
	case core.TCSD:
		err = s.shredDictionary(root)
	case core.TCMD:
		err = s.shredArticle(name, root)
	default:
		err = fmt.Errorf("shredder: unsupported class %v", s.Class)
	}
	if err != nil {
		return 0, err
	}
	produced := s.Rows - before
	if s.Opts.RowLimitPerDoc > 0 && produced > s.Opts.RowLimitPerDoc {
		return produced, fmt.Errorf("shredder: document %s decomposed into %d rows, exceeding the %d-row limit: %w",
			name, produced, s.Opts.RowLimitPerDoc, core.ErrUnsupported)
	}
	if s.Opts.FlushPerDocument {
		if err := s.Sync(); err != nil {
			return produced, err
		}
	}
	return produced, nil
}

func (s *Store) insert(table string, row relational.Row) error {
	if err := s.DB.Table(table).Insert(row); err != nil {
		return err
	}
	s.Rows++
	return nil
}

// Flush persists all table heaps.
func (s *Store) Flush() error {
	for _, name := range s.DB.TableNames() {
		if err := s.DB.Table(name).Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Sync flushes all tables and forces dirty pages to disk (the end of a
// per-document transaction).
func (s *Store) Sync() error {
	if err := s.Flush(); err != nil {
		return err
	}
	return s.DB.Pager.SyncAll()
}

// Truncate empties the shredded database (schema preserved) so a failed
// load leaves a clean, loadable store.
func (s *Store) Truncate() error {
	s.Rows = 0
	s.SkippedMixed = 0
	return s.DB.Truncate()
}

// UnitDocID returns the root id of a document the update workload can
// target: a whole <order> (DC/MD) or <article> (TC/MD). Those are the
// unit documents of the multi-document classes — one document per
// logical entity, so document-granularity insert/replace/delete maps to
// a clean relational cascade keyed by that id. Other roots (the shared
// TargetColumn maps a Table 3 index target ("hw", "item/@id") to the
// shredded (table, column) it lands on. The shredding engines build
// their indexes through it, and the planner uses it to route costed
// index probes to the right table.
func TargetColumn(class core.Class, target string) (table, col string, ok bool) {
	switch class {
	case core.TCSD:
		if target == "hw" {
			return "entry_tab", "hw", true
		}
	case core.TCMD:
		if target == "article/@id" {
			return "article_tab", "id", true
		}
	case core.DCSD:
		switch target {
		case "item/@id":
			return "item_tab", "id", true
		case "date_of_release":
			return "item_tab", "date_of_release", true
		}
	case core.DCMD:
		if target == "order/@id" {
			return "order_tab", "id", true
		}
	}
	return "", "", false
}

// customers/items/... documents of DC/MD) return ok=false: they shred
// into rows for many entities and have no single delete key.
func UnitDocID(class core.Class, doc *xmldom.Node) (string, bool) {
	root := doc.Root()
	if root == nil {
		return "", false
	}
	switch {
	case class == core.DCMD && root.Name == "order":
		id, ok := root.Attr("id")
		return id, ok && id != ""
	case class == core.TCMD && root.Name == "article":
		id, ok := root.Attr("id")
		return id, ok && id != ""
	}
	return "", false
}

// DeleteDocumentRows removes every row the unit document with the given
// root id shredded into, returning the number of rows deleted. The
// cascade is the inverse of shredDCMD/shredArticle: each per-document
// table is filtered on its document-id column. The store is synced after
// the rewrite, like a per-document load transaction.
func (s *Store) DeleteDocumentRows(ctx context.Context, id string) (int, error) {
	var cascade [][2]string
	switch s.Class {
	case core.DCMD:
		cascade = [][2]string{
			{"order_tab", "id"},
			{"order_line_tab", "order_id"},
		}
	case core.TCMD:
		cascade = [][2]string{
			{"article_tab", "id"},
			{"abs_para_tab", "article_id"},
			{"art_author_tab", "article_id"},
			{"sec_tab", "article_id"},
			{"para_tab", "article_id"},
			{"kw_tab", "article_id"},
			{"ref_tab", "article_id"},
		}
	default:
		return 0, fmt.Errorf("shredder: class %v has no unit documents: %w", s.Class, core.ErrUnsupported)
	}
	deleted := 0
	for _, tc := range cascade {
		n, err := s.DB.Table(tc[0]).DeleteWhere(ctx, tc[1], id)
		if err != nil {
			return deleted, fmt.Errorf("shredder: delete %s rows of %s: %w", tc[0], id, err)
		}
		deleted += n
	}
	s.Rows -= deleted
	return deleted, s.Sync()
}

func (s *Store) shredCatalog(root *xmldom.Node) error {
	for _, item := range root.ChildElements("item") {
		id := attr(item, "id")
		attrs := item.FirstChild("attributes")
		dims := attrs.FirstChild("dimensions")
		if err := s.insert("item_tab", relational.Row{
			id, text(item, "title"), text(item, "date_of_release"),
			text(item, "subject"), text(item, "description"),
			text(attrs, "srp"), text(attrs, "cost"), text(attrs, "avail"),
			text(attrs, "isbn"), text(attrs, "number_of_pages"),
			text(attrs, "backing"), text(dims, "length"),
			text(dims, "width"), text(dims, "height"),
		}); err != nil {
			return err
		}
		for _, a := range item.FirstChild("authors").ChildElements("author") {
			name := a.FirstChild("name")
			ci := a.FirstChild("contact_information")
			var addr *xmldom.Node
			phone, email := relational.Null, relational.Null
			if ci != nil {
				addr = ci.FirstChild("mailing_address")
				phone = text(ci, "phone_number")
				email = text(ci, "email_address")
			}
			country := relational.Null
			if addr != nil {
				if co := addr.FirstChild("name_of_country"); co != nil {
					country = co.Text()
				}
			}
			if err := s.insert("item_author_tab", relational.Row{
				id, text(name, "first_name"), text(name, "middle_name"),
				text(name, "last_name"), text(a, "date_of_birth"),
				text(a, "biography"), text(addr, "street_address1"),
				text(addr, "street_address2"), text(addr, "city"),
				text(addr, "state"), text(addr, "zip_code"), country,
				phone, email,
			}); err != nil {
				return err
			}
		}
		if pub := item.FirstChild("publisher"); pub != nil {
			if err := s.insert("item_publisher_tab", relational.Row{
				id, text(pub, "name"), text(pub, "FAX_number"),
				text(pub, "phone_number"), text(pub, "email_address"),
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

func (s *Store) shredDCMD(name string, root *xmldom.Node) error {
	switch root.Name {
	case "order":
		cc := root.FirstChild("cc_xacts")
		if err := s.insert("order_tab", relational.Row{
			attr(root, "id"), text(root, "customer_id"), text(root, "order_date"),
			text(root, "sub_total"), text(root, "tax"), text(root, "total"),
			text(root, "ship_type"), text(root, "ship_date"),
			text(root, "ship_addr_id"), text(root, "order_status"),
			text(cc, "cc_type"), text(cc, "cc_number"), text(cc, "cc_name"),
			text(cc, "cc_expiry"), text(cc, "cc_auth_id"),
			text(cc, "total_amount"), text(cc, "ship_country"),
		}); err != nil {
			return err
		}
		oid, _ := root.Attr("id")
		for _, ol := range root.FirstChild("order_lines").ChildElements("order_line") {
			if err := s.insert("order_line_tab", relational.Row{
				oid, text(ol, "item_id"), text(ol, "qty"),
				text(ol, "discount"), text(ol, "comment"),
			}); err != nil {
				return err
			}
		}
	case "customers":
		for _, c := range root.ChildElements("customer") {
			if err := s.insert("customer_tab", relational.Row{
				attr(c, "id"), text(c, "c_uname"), text(c, "c_fname"),
				text(c, "c_lname"), text(c, "c_phone"), text(c, "c_email"),
				text(c, "c_since"), text(c, "c_discount"), text(c, "c_addr_id"),
			}); err != nil {
				return err
			}
		}
	case "items":
		for _, it := range root.ChildElements("flat_item") {
			if err := s.insert("flat_item_tab", relational.Row{
				attr(it, "id"), text(it, "i_title"), text(it, "i_a_id"),
				text(it, "i_pub_date"), text(it, "i_publisher"),
				text(it, "i_subject"), text(it, "i_cost"), text(it, "i_isbn"),
				text(it, "i_page"),
			}); err != nil {
				return err
			}
		}
	case "authors":
		for _, a := range root.ChildElements("flat_author") {
			if err := s.insert("flat_author_tab", relational.Row{
				attr(a, "id"), text(a, "a_fname"), text(a, "a_lname"),
				text(a, "a_mname"), text(a, "a_dob"), text(a, "a_bio"),
			}); err != nil {
				return err
			}
		}
	case "addresses":
		for _, a := range root.ChildElements("address") {
			if err := s.insert("address_tab", relational.Row{
				attr(a, "id"), text(a, "addr_street1"), text(a, "addr_street2"),
				text(a, "addr_city"), text(a, "addr_state"), text(a, "addr_zip"),
				text(a, "addr_co_id"),
			}); err != nil {
				return err
			}
		}
	case "countries":
		for _, c := range root.ChildElements("country") {
			if err := s.insert("country_tab", relational.Row{
				attr(c, "id"), text(c, "co_name"), text(c, "co_exchange"),
				text(c, "co_currency"),
			}); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("shredder: unexpected DC/MD root <%s> in %s", root.Name, name)
	}
	return nil
}

func (s *Store) shredDictionary(root *xmldom.Node) error {
	for _, e := range root.ChildElements("entry") {
		id := attr(e, "id")
		etym, _ := s.mixedText(e.FirstChild("etym"))
		if err := s.insert("entry_tab", relational.Row{
			id, text(e, "hw"), text(e, "pr"), text(e, "pos"), etym,
		}); err != nil {
			return err
		}
		if et := e.FirstChild("etym"); et != nil {
			for _, cr := range et.ChildElements("cr") {
				if err := s.insert("cr_tab", relational.Row{
					id, attr(cr, "target"), cr.Text(),
				}); err != nil {
					return err
				}
			}
		}
		for si, sense := range e.ChildElements("sense") {
			senseNo := fmt.Sprint(si + 1)
			if err := s.insert("sense_tab", relational.Row{
				id, senseNo, text(sense, "def"),
			}); err != nil {
				return err
			}
			for _, cr := range sense.ChildElements("cr") {
				if err := s.insert("cr_tab", relational.Row{
					id, attr(cr, "target"), cr.Text(),
				}); err != nil {
					return err
				}
			}
			for _, qp := range sense.ChildElements("qp") {
				for _, q := range qp.ChildElements("q") {
					qt, _ := s.mixedText(q.FirstChild("qt"))
					if err := s.insert("quote_tab", relational.Row{
						id, senseNo, text(q, "qd"), text(q, "a"),
						text(q, "loc"), qt,
					}); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

func (s *Store) shredArticle(name string, root *xmldom.Node) error {
	id := attr(root, "id")
	prolog := root.FirstChild("prolog")
	date, country := relational.Null, relational.Null
	if dl := prolog.FirstChild("dateline"); dl != nil {
		date = text(dl, "date")
		country = text(dl, "country")
	}
	hasAbstract := relational.Null
	if prolog.FirstChild("abstract") != nil {
		hasAbstract = "1"
	}
	if err := s.insert("article_tab", relational.Row{
		id, name, text(prolog, "title"), text(prolog, "genre"),
		date, country, hasAbstract,
	}); err != nil {
		return err
	}
	if ab := prolog.FirstChild("abstract"); ab != nil {
		for _, para := range ab.ChildElements("p") {
			if err := s.insert("abs_para_tab", relational.Row{id, para.Text()}); err != nil {
				return err
			}
		}
	}
	for _, a := range prolog.FirstChild("authors").ChildElements("author") {
		if err := s.insert("art_author_tab", relational.Row{
			id, text(a, "name"), text(a, "affiliation"),
			text(a, "contact"), text(a, "bio"),
		}); err != nil {
			return err
		}
	}
	if kws := prolog.FirstChild("keywords"); kws != nil {
		for _, kw := range kws.ChildElements("kw") {
			if err := s.insert("kw_tab", relational.Row{id, kw.Text()}); err != nil {
				return err
			}
		}
	}
	var shredSec func(sec *xmldom.Node, parent string) error
	shredSec = func(sec *xmldom.Node, parent string) error {
		sid := attr(sec, "id")
		if err := s.insert("sec_tab", relational.Row{
			sid, id, parent, text(sec, "heading"),
		}); err != nil {
			return err
		}
		for _, p := range sec.ChildElements("p") {
			if err := s.insert("para_tab", relational.Row{sid, id, p.Text()}); err != nil {
				return err
			}
		}
		for _, sub := range sec.ChildElements("sec") {
			if err := shredSec(sub, sid); err != nil {
				return err
			}
		}
		return nil
	}
	for _, sec := range root.FirstChild("body").ChildElements("sec") {
		if err := shredSec(sec, relational.Null); err != nil {
			return err
		}
	}
	if ep := root.FirstChild("epilog"); ep != nil {
		if refs := ep.FirstChild("references"); refs != nil {
			for _, r := range refs.ChildElements("a_id") {
				if err := s.insert("ref_tab", relational.Row{id, attr(r, "target")}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
