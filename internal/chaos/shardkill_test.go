package chaos

import (
	"context"
	"fmt"
	"net"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"xbench/internal/client"
	"xbench/internal/core"
	"xbench/internal/router"
	"xbench/internal/updatelog"
	"xbench/internal/workload"
)

// waitPort blocks until a TCP connect to addr succeeds (the replica
// process opens its listener only after loading its partition).
func waitPort(t *testing.T, addr string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		conn, err := net.DialTimeout("tcp", addr, 250*time.Millisecond)
		if err == nil {
			conn.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s not ready after %v: %v", addr, timeout, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShardKillTorture is the whole-shard death drill for the sharded
// serving tier: three real `xbench serve --shard=i/3 --journal` children
// behind a router, one of them (the victim) backed by a journal-shipped
// read replica. An update storm runs through the router while the victim
// shard is SIGKILLed and restarted repeatedly. The invariants:
//
//   - Exactly-once across the cluster: after the storm, the union of the
//     three shard journals holds every acknowledged insert exactly once —
//     no ack lost to a kill, no document applied twice, and no document
//     journaled on two shards (placement stayed unique through the
//     deaths).
//   - Reads continue while a shard is down: during every dead-primary
//     window, scatters and reads routed to the victim keep answering —
//     the read client fails over to the replica, and the degraded
//     partial-failure policy covers any window the replica needs.
func TestShardKillTorture(t *testing.T) {
	if testing.Short() {
		t.Skip("shard-kill torture is a multi-second test; skipped in -short")
	}
	bin := buildXbench(t)
	dir := t.TempDir()
	childLog := &syncBuffer{}
	ctx := context.Background()

	// Three journaled shard children on fixed ports, plus a replica of the
	// victim (shard 0). Every process regenerates the same base database
	// and loads only its ring partition.
	const shards, victim = 3, 0
	sups := make([]*Supervisor, shards)
	journals := make([]string, shards)
	for i := range sups {
		addr := freeAddr(t)
		journals[i] = filepath.Join(dir, fmt.Sprintf("shard%d.journal", i))
		sups[i] = &Supervisor{
			Binary: bin,
			Args: []string{"serve",
				"--engine=x-hive", "--class=dcmd", "--size=small",
				fmt.Sprintf("--shard=%d/%d", i, shards),
				"--addr=" + addr, "--journal=" + journals[i]},
			Addr: addr,
			Log:  childLog,
		}
		if err := sups[i].Start(); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		defer sups[i].Kill()
	}

	repAddr := freeAddr(t)
	replica := exec.Command(bin, "serve",
		"--engine=x-hive", "--class=dcmd", "--size=small",
		fmt.Sprintf("--shard=%d/%d", victim, shards),
		"--replica-of="+sups[victim].Addr, "--addr="+repAddr, "--poll=10ms")
	replica.Stdout, replica.Stderr = childLog, childLog
	if err := replica.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		replica.Process.Kill()
		replica.Wait()
	}()
	waitPort(t, repAddr, 30*time.Second)

	specs := make([]router.Shard, shards)
	for i, sup := range sups {
		specs[i] = router.Shard{Primary: sup.Addr}
	}
	specs[victim].Replicas = []string{repAddr}
	rt, err := router.Dial(specs, router.Config{
		Degraded: true, // reads must continue while the victim is down
		Client: client.Config{
			Retries:       200,
			Backoff:       5 * time.Millisecond,
			MaxBackoff:    100 * time.Millisecond,
			Cooldown:      50 * time.Millisecond,
			FailThreshold: 1,
			ClientID:      0x5AD, Seed: 11,
			Pipeline: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// A sentinel document owned by the victim shard: the mid-kill routed
	// read probes it, so at least some reads are pinned to the dead
	// primary's shard rather than scattering around it.
	ring := router.NewRing(shards, 0)
	sentinel := 0
	for seq := 900000; ; seq++ {
		if name, _ := workload.UpdateDoc(core.DCMD, seq, 0); ring.Owner(name) == victim {
			sentinel = seq
			break
		}
	}
	sentName, sentData := workload.UpdateDoc(core.DCMD, sentinel, 0)
	if err := rt.InsertDocument(ctx, sentName, sentData); err != nil {
		t.Fatalf("sentinel insert: %v", err)
	}

	// The storm: writers insert uniquely-named documents through the
	// router and log every acknowledgment. Names spread across all shards
	// by the ring, so the victim's kill windows sit in every writer's path.
	const workers = 3
	var (
		ackMu sync.Mutex
		acked []string
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				seq := 100000*(w+1) + i
				name, data := workload.UpdateDoc(core.DCMD, seq, 0)
				if err := rt.InsertDocument(ctx, name, data); err != nil {
					errs <- fmt.Errorf("worker %d seq %d: %w", w, seq, err)
					return
				}
				ackMu.Lock()
				acked = append(acked, name)
				ackMu.Unlock()
			}
		}(w)
	}

	// The killer: SIGKILL the victim shard, read THROUGH the outage, then
	// restart it (journal recovery). Both read shapes must answer with the
	// primary dead — the routed read rides the replica failover; the
	// scatter rides the replica leg plus the degraded policy.
	const cycles = 8
	readParams := core.Params{"X": fmt.Sprintf("OU%d", sentinel)}
	deadReads := 0
	for cycle := 0; cycle < cycles; cycle++ {
		time.Sleep(time.Duration(50+30*cycle) * time.Millisecond)
		if err := sups[victim].Kill(); err != nil {
			t.Fatalf("cycle %d kill: %v", cycle, err)
		}
		for k := 0; k < 2; k++ {
			if _, err := rt.Execute(ctx, core.Q1, readParams); err != nil {
				t.Errorf("cycle %d: routed read with dead primary: %v", cycle, err)
			}
			if _, err := rt.Execute(ctx, core.Q5, workload.Params(core.DCMD)); err != nil {
				t.Errorf("cycle %d: scatter with dead primary: %v", cycle, err)
			}
			deadReads += 2
		}
		if err := sups[victim].Start(); err != nil {
			t.Fatalf("cycle %d restart: %v\nchild log:\n%s", cycle, err, childLog.String())
		}
	}

	// Quiesce, then final deaths: examine the journals offline, exactly as
	// the next restarts would.
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("driver-visible update error: %v", err)
	}
	if got := sups[victim].Kills(); got < cycles {
		t.Fatalf("delivered %d SIGKILLs, want >= %d", got, cycles)
	}
	snap := rt.Metrics().Snapshot()
	for i := range sups {
		if err := sups[i].Kill(); err != nil {
			t.Fatal(err)
		}
	}

	// Cluster-wide exactly-once: every acknowledged insert in exactly one
	// journal, exactly once; every key applied once.
	journaled := map[string]int{}
	keys := map[string]int{}
	perShard := make([]int, shards)
	for i, path := range journals {
		fl, recs, err := updatelog.OpenFile(path)
		if err != nil {
			t.Fatalf("reopen shard %d journal: %v", i, err)
		}
		fl.Close()
		perShard[i] = len(recs)
		for _, r := range recs {
			journaled[r.Name]++
			if !r.Keyed() {
				t.Errorf("shard %d journal record %q has no idempotency key", i, r.Name)
			}
			keys[fmt.Sprintf("%d/%d/%d", i, r.Client, r.Seq)]++
		}
	}
	for k, n := range keys {
		if n > 1 {
			t.Errorf("idempotency key %s journaled %d times (double-apply)", k, n)
		}
	}
	for name, n := range journaled {
		if n > 1 {
			t.Errorf("document %s journaled %d times (double-apply or dual placement)", name, n)
		}
	}
	ackMu.Lock()
	defer ackMu.Unlock()
	if len(acked) == 0 {
		t.Fatal("storm acknowledged zero updates; the harness tested nothing")
	}
	for _, name := range acked {
		if journaled[name] == 0 {
			t.Errorf("acknowledged insert %s missing from every journal (lost ack)", name)
		}
	}
	if perShard[victim] == 0 {
		t.Error("victim shard journaled nothing; the kills never raced an update")
	}
	t.Logf("shard-kill torture: %d kills, %d acked inserts, journals %v, %d dead-window reads, victim failovers %d",
		sups[victim].Kills(), len(acked), perShard, deadReads,
		snap.Counters[fmt.Sprintf("router.shard.%d.failovers", victim)])
}
