package chaos

import (
	"context"
	"errors"
	"fmt"

	"xbench/internal/core"
	"xbench/internal/pager"
	"xbench/internal/workload"
)

// UpdateRecoverer is the contract an engine must satisfy for update chaos
// cells: replaying its logical update journal after pager recovery. All
// four built-in engines implement it.
type UpdateRecoverer interface {
	RecoverUpdates(ctx context.Context, db *core.Database) error
}

// UpdateOutcome summarizes one engine x class x update-op chaos cell.
//
// Unlike the load cells (where recovery re-runs the load, so the answers
// must match the fault-free baseline exactly), an update crash has TWO
// legal recovered states: the update never happened (the crash landed
// before the journal commit point) or it fully happened (the crash landed
// after). Committed and RolledBack count which state each crash point
// recovered to; anything in between — a torn, partially applied update —
// fails the cell.
type UpdateOutcome struct {
	Engine  string
	Class   core.Class
	Op      workload.UpdateOp
	Skipped bool // class/engine unsupported, not Faultable, or not UpdateRecoverer
	// CrashOps are the absolute disk-op budgets of the crash points.
	CrashOps []int64
	// Crashes counts crash points that actually fired mid-update.
	Crashes int
	// Recoveries counts successful pager recoveries.
	Recoveries int
	// Committed counts crash points that recovered to the post-update
	// state; RolledBack those that recovered to the pre-update state.
	Committed  int
	RolledBack int
	Err        error
}

func (o UpdateOutcome) String() string {
	switch {
	case o.Skipped:
		return "-"
	case o.Err != nil:
		return "FAIL"
	default:
		return fmt.Sprintf("ok:%dc%d+%d", o.Crashes, o.Committed, o.RolledBack)
	}
}

// RunUpdateCell chaos-tests one update operation on one engine x database
// cell: load, crash at deterministic points inside the update, recover the
// pager, replay the update journal, and require the verification query to
// observe exactly the pre-update or the post-update answer. newEngine must
// return a fresh instance on every call.
func RunUpdateCell(newEngine func() core.Engine, db *core.Database, op workload.UpdateOp, cfg Config) UpdateOutcome {
	ctx := context.Background()
	cfg = cfg.WithDefaults()
	probe := newEngine()
	out := UpdateOutcome{Engine: probe.Name(), Class: db.Class, Op: op}
	if db.Class.SingleDocument() {
		out.Skipped = true
		return out
	}
	if err := probe.Supports(db.Class, db.Size); err != nil {
		out.Skipped = true
		return out
	}
	if _, ok := probe.(Faultable); !ok {
		out.Skipped = true
		return out
	}
	if _, ok := probe.(UpdateRecoverer); !ok {
		out.Skipped = true
		return out
	}

	// Fault-free twin: establish the two legal recovered states. seq 0 is
	// used throughout — every run starts from a fresh load.
	const seq = 0
	id := workload.UpdateTargetID(db.Class, seq)
	twin := newEngine()
	if _, _, err := workload.LoadAndIndex(ctx, twin, db); err != nil {
		out.Err = fmt.Errorf("chaos: twin load: %w", err)
		return out
	}
	if err := setupUpdate(ctx, twin, db.Class, op, seq); err != nil {
		if errors.Is(err, core.ErrUnsupported) || errors.Is(err, core.ErrReadOnly) {
			out.Skipped = true
			return out
		}
		out.Err = fmt.Errorf("chaos: twin setup: %w", err)
		return out
	}
	pre, err := verifyItems(ctx, twin, id)
	if err != nil {
		out.Err = fmt.Errorf("chaos: twin pre-state: %w", err)
		return out
	}
	if err := applyUpdate(ctx, twin, db.Class, op, seq); err != nil {
		if errors.Is(err, core.ErrUnsupported) || errors.Is(err, core.ErrReadOnly) {
			out.Skipped = true
			return out
		}
		out.Err = fmt.Errorf("chaos: twin update: %w", err)
		return out
	}
	post, err := verifyItems(ctx, twin, id)
	if err != nil {
		out.Err = fmt.Errorf("chaos: twin post-state: %w", err)
		return out
	}
	if sameItems(pre, post) == nil {
		out.Err = fmt.Errorf("chaos: %s on %s is not observable: pre and post states identical", op, id)
		return out
	}

	// Measure the update's fault-free disk-op budget so crash points land
	// inside the operation itself, not the load around it.
	me := newEngine()
	mp := me.(Faultable).Pager()
	mp.SetFaultPolicy(pager.FaultPolicy{Seed: cfg.Seed})
	if _, _, err := workload.LoadAndIndex(ctx, me, db); err != nil {
		out.Err = fmt.Errorf("chaos: probe load: %w", err)
		return out
	}
	if err := setupUpdate(ctx, me, db.Class, op, seq); err != nil {
		out.Err = fmt.Errorf("chaos: probe setup: %w", err)
		return out
	}
	opsBefore := mp.OpCount()
	if err := applyUpdate(ctx, me, db.Class, op, seq); err != nil {
		out.Err = fmt.Errorf("chaos: probe update: %w", err)
		return out
	}
	budget := mp.OpCount() - opsBefore
	if budget == 0 {
		out.Err = fmt.Errorf("chaos: %s performed no disk operations", op)
		return out
	}

	// Spread crash points across [0, budget] INCLUSIVE of both ends: the
	// journal commit — a WAL append — is the update's very first disk op,
	// so a midpoints-only spread (as the load grid uses) would always
	// land after the commit point and never exercise rollback. rel = 0
	// crashes ON that first op, tearing the journal record.
	for i := 1; i <= cfg.CrashPoints; i++ {
		var rel int64
		if cfg.CrashPoints > 1 {
			rel = budget * int64(i-1) / int64(cfg.CrashPoints-1)
		}
		if err := runUpdateCrashPoint(newEngine, db, op, seq, id, cfg, rel, pre, post, &out); err != nil {
			out.Err = fmt.Errorf("chaos: crash point %d (op +%d): %w", i, rel, err)
			return out
		}
	}
	return out
}

// runUpdateCrashPoint exercises one crash point inside the update: load
// and set up fault-free, arm the crash, run the update, recover, replay
// the journal, and require the verification query to answer exactly the
// pre- or post-update state.
func runUpdateCrashPoint(newEngine func() core.Engine, db *core.Database, op workload.UpdateOp,
	seq int, id string, cfg Config, rel int64, pre, post []string, out *UpdateOutcome) error {
	ctx := context.Background()
	e := newEngine()
	p := e.(Faultable).Pager()
	p.SetFaultPolicy(pager.FaultPolicy{Seed: cfg.Seed})
	if _, _, err := workload.LoadAndIndex(ctx, e, db); err != nil {
		return fmt.Errorf("load: %w", err)
	}
	if err := setupUpdate(ctx, e, db.Class, op, seq); err != nil {
		return fmt.Errorf("setup: %w", err)
	}
	crashAt := p.OpCount() + rel
	out.CrashOps = append(out.CrashOps, crashAt)
	p.SetFaultPolicy(pager.FaultPolicy{Seed: cfg.Seed, CrashAfterOps: crashAt})

	err := applyUpdate(ctx, e, db.Class, op, seq)
	switch {
	case err == nil:
		// The op's I/O pattern varied and outran the crash point; the
		// recovered state below must then be the post state.
	case pager.IsCrash(err):
		out.Crashes++
	default:
		return fmt.Errorf("non-crash failure under crash policy: %w", err)
	}

	// Power is back: physical recovery first, then logical replay of the
	// committed updates, under soft faults.
	if _, err := p.Recover(); err != nil {
		return fmt.Errorf("recover: %w", err)
	}
	out.Recoveries++
	if err := p.CheckDurable(); err != nil {
		return fmt.Errorf("durability check: %w", err)
	}
	p.SetFaultPolicy(pager.FaultPolicy{
		Seed:          cfg.Seed + uint64(crashAt),
		ReadErrorRate: cfg.ReadErrorRate,
		TornWriteRate: cfg.TornWriteRate,
	})
	if err := e.(UpdateRecoverer).RecoverUpdates(ctx, db); err != nil {
		return fmt.Errorf("update replay: %w", err)
	}
	if err := e.BuildIndexes(workload.Indexes(db.Class)); err != nil {
		return fmt.Errorf("index rebuild: %w", err)
	}
	// Checkpoint: repair any torn writes of the replay, then verify.
	if _, err := p.Recover(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := p.CheckDurable(); err != nil {
		return fmt.Errorf("durability check after replay: %w", err)
	}

	got, err := verifyItems(ctx, e, id)
	if err != nil {
		return fmt.Errorf("verification query: %w", err)
	}
	switch {
	case sameItems(post, got) == nil:
		out.Committed++
	case sameItems(pre, got) == nil:
		out.RolledBack++
	default:
		return fmt.Errorf("recovered to neither pre- nor post-update state: %d item(s) for %s", len(got), id)
	}
	return checkRecoveredEpoch(ctx, e, p, db, seq, id, got)
}

// checkRecoveredEpoch requires recovery to land on a consistent latest
// commit epoch (DESIGN.md §15): replay must leave no mutation bracket
// open — so with pins drained, GC reclaims every page version — and
// the commit path must still work, with a fresh update advancing the
// epoch without disturbing the recovered answer.
func checkRecoveredEpoch(ctx context.Context, e core.Engine, p *pager.Pager,
	db *core.Database, seq int, id string, recovered []string) error {
	if n := p.PinnedSnapshots(); n != 0 {
		return fmt.Errorf("epoch check: %d snapshots pinned after recovery", n)
	}
	p.GC()
	if n := p.LiveVersions(); n != 0 {
		return fmt.Errorf("epoch check: %d page versions survive recovery with no pins (bracket left open?)", n)
	}
	// The recovered epoch must accept new commits: soft faults off — the
	// grid already proved fault tolerance, this proves the MVCC commit
	// path — then one fresh insert has to advance the epoch.
	p.SetFaultPolicy(pager.FaultPolicy{})
	before := p.SnapshotEpoch()
	if err := applyUpdate(ctx, e, db.Class, workload.U1, seq+1); err != nil {
		return fmt.Errorf("epoch check: post-recovery update: %w", err)
	}
	if after := p.SnapshotEpoch(); after <= before {
		return fmt.Errorf("epoch check: commit did not advance the epoch (%d -> %d)", before, after)
	}
	// Snapshot reads at the new epoch still answer the recovered state
	// for the original target.
	again, err := verifyItems(ctx, e, id)
	if err != nil {
		return fmt.Errorf("epoch check: re-verification: %w", err)
	}
	if err := sameItems(recovered, again); err != nil {
		return fmt.Errorf("epoch check: recovered answer changed after an unrelated commit: %w", err)
	}
	return nil
}

// setupUpdate brings the engine to the update's pre-state: U2 and U3 need
// their target document to exist (revision 0).
func setupUpdate(ctx context.Context, e core.Engine, class core.Class, op workload.UpdateOp, seq int) error {
	if op != workload.U2 && op != workload.U3 {
		return nil
	}
	name, doc := workload.UpdateDoc(class, seq, 0)
	return e.ReplaceDocument(ctx, name, doc)
}

// applyUpdate runs the update operation itself — the I/O the crash points
// land inside.
func applyUpdate(ctx context.Context, e core.Engine, class core.Class, op workload.UpdateOp, seq int) error {
	name, doc := workload.UpdateDoc(class, seq, 0)
	switch op {
	case workload.U1:
		return e.InsertDocument(ctx, name, doc)
	case workload.U2:
		_, doc1 := workload.UpdateDoc(class, seq, 1)
		return e.ReplaceDocument(ctx, name, doc1)
	case workload.U3:
		return e.DeleteDocument(ctx, name)
	}
	return fmt.Errorf("chaos: unknown update op %d", int(op))
}

// verifyItems runs the verification query (Q1 for the target id) and
// returns its items.
func verifyItems(ctx context.Context, e core.Engine, id string) ([]string, error) {
	res, err := e.Execute(ctx, core.Q1, core.Params{"X": id})
	if err != nil {
		return nil, err
	}
	return res.Items, nil
}
