package chaos_test

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xbench/internal/chaos"
	"xbench/internal/client"
	"xbench/internal/core"
	"xbench/internal/server"
	"xbench/internal/wire"
)

// wireStub answers every query instantly; just enough engine to put real
// request/response traffic through the proxy.
type wireStub struct{ closed atomic.Bool }

func (e *wireStub) Name() string                         { return "wire-stub" }
func (e *wireStub) Supports(core.Class, core.Size) error { return nil }
func (e *wireStub) BuildIndexes([]core.IndexSpec) error  { return nil }
func (e *wireStub) ColdReset()                           {}
func (e *wireStub) PageIO() int64                        { return 0 }
func (e *wireStub) Close() error                         { e.closed.Store(true); return nil }
func (e *wireStub) Load(context.Context, *core.Database) (core.LoadStats, error) {
	return core.LoadStats{}, nil
}
func (e *wireStub) Execute(context.Context, core.QueryID, core.Params) (core.Result, error) {
	return core.Result{Items: []string{"<x/>"}}, nil
}
func (e *wireStub) InsertDocument(context.Context, string, []byte) error  { return nil }
func (e *wireStub) ReplaceDocument(context.Context, string, []byte) error { return nil }
func (e *wireStub) DeleteDocument(context.Context, string) error          { return nil }

// typedTransportErr reports whether err is one of the error shapes the
// client is allowed to surface for a severed connection — anything else
// (a silent success, a mangled result, a hang) is a protocol bug.
func typedTransportErr(err error) bool {
	var ne net.Error
	var oe *net.OpError
	return errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, wire.ErrChecksum) ||
		errors.Is(err, wire.ErrOverloaded) ||
		errors.Is(err, wire.ErrShutdown) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled) ||
		errors.As(err, &ne) ||
		errors.As(err, &oe)
}

// TestProxyFaultsSurfaceTypedAndServerSurvives drives concurrent query
// traffic through a fault-injecting proxy severing connections mid-
// request and mid-frame. Every operation must either succeed or return a
// typed error, no client may hang, the admission gauge must return to
// zero, and the server must still answer cleanly afterwards.
func TestProxyFaultsSurfaceTypedAndServerSurvives(t *testing.T) {
	eng := &wireStub{}
	srv := server.New(eng, server.Config{MaxInflight: 8})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	proxy, err := chaos.NewProxy(srv.Addr().String(), chaos.ProxyConfig{
		Seed:     42,
		DropRate: 0.10,
		TearRate: 0.10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	const clients, opsEach = 6, 30
	var ok, failed atomic.Int64
	var badMu sync.Mutex
	var badErrs []error
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Retry disabled: each fault must surface, so the test can
			// classify every single failure.
			cl := &faultClient{addr: proxy.Addr()}
			defer cl.close()
			for op := 0; op < opsEach; op++ {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				err := cl.query(ctx)
				cancel()
				switch {
				case err == nil:
					ok.Add(1)
				case typedTransportErr(err):
					failed.Add(1)
				default:
					badMu.Lock()
					badErrs = append(badErrs, err)
					badMu.Unlock()
				}
			}
		}()
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("clients wedged behind the faulty proxy")
	}

	if len(badErrs) > 0 {
		t.Fatalf("%d untyped errors, first: %v", len(badErrs), badErrs[0])
	}
	drops, tears := proxy.Faults()
	if drops+tears == 0 {
		t.Fatal("proxy injected no faults; test exercised nothing")
	}
	if failed.Load() == 0 {
		t.Fatal("faults were injected but no operation failed")
	}
	if ok.Load() == 0 {
		t.Fatal("every operation failed; fault rates drowned the signal")
	}
	t.Logf("ops ok=%d failed=%d; faults drops=%d tears=%d", ok.Load(), failed.Load(), drops, tears)

	// Admission slots leak-free: the gauge must settle back to zero even
	// though many requests died mid-flight.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Inflight() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("admission gauge stuck at %d after the storm", srv.Inflight())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The server is not wedged: a clean (direct, no proxy) client gets
	// normal service.
	direct, err := client.Dial(srv.Addr().String(), client.Config{})
	if err != nil {
		t.Fatalf("server unreachable after fault storm: %v", err)
	}
	defer direct.Close()
	res, err := direct.Execute(context.Background(), core.Q1, core.Params{"X": "I1"})
	if err != nil || len(res.Items) != 1 {
		t.Fatalf("post-storm query: %+v, %v", res, err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("graceful shutdown after fault storm: %v", err)
	}
	if !eng.closed.Load() {
		t.Fatal("engine not closed by shutdown")
	}
}

// faultClient wraps client.Client with retry disabled so that every
// injected fault surfaces as an error the test can classify.
type faultClient struct {
	addr string

	mu sync.Mutex
	c  *client.Client
}

func (f *faultClient) query(ctx context.Context) error {
	f.mu.Lock()
	if f.c == nil {
		c, err := client.Dial(f.addr, client.Config{Retries: -1})
		if err != nil {
			f.mu.Unlock()
			return err
		}
		f.c = c
	}
	c := f.c
	f.mu.Unlock()
	_, err := c.Execute(ctx, core.Q1, core.Params{"X": "I1"})
	return err
}

func (f *faultClient) close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.c != nil {
		f.c.Close()
	}
}

// TestProxyDeterministicFaultSchedule pins that the same seed replays
// the same fault counts for the same traffic pattern, the property that
// makes a failing chaos run reproducible from its log line.
func TestProxyDeterministicFaultSchedule(t *testing.T) {
	run := func(seed uint64) (int64, int64) {
		eng := &wireStub{}
		srv := server.New(eng, server.Config{MaxInflight: 4})
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		proxy, err := chaos.NewProxy(srv.Addr().String(), chaos.ProxyConfig{
			Seed: seed, DropRate: 0.25, TearRate: 0.25,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer proxy.Close()
		// Sequential single-connection-at-a-time traffic so connection
		// ordinals are deterministic.
		for i := 0; i < 40; i++ {
			cl, err := client.Dial(proxy.Addr(), client.Config{Retries: -1})
			if err != nil {
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			_, _ = cl.Execute(ctx, core.Q1, nil)
			cancel()
			cl.Close()
		}
		return proxy.Faults()
	}
	d1, t1 := run(7)
	d2, t2 := run(7)
	if d1 != d2 || t1 != t2 {
		t.Fatalf("same seed, different schedule: (%d,%d) vs (%d,%d)", d1, t1, d2, t2)
	}
	if d1+t1 == 0 {
		t.Fatal("deterministic run injected no faults")
	}
}
