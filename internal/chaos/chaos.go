// Package chaos is the fault-injection harness: it crashes an engine at
// deterministic points inside a bulk load, recovers the pager from its
// write-ahead log, re-loads, and verifies that every workload query then
// answers exactly what a fault-free run answers. It is the executable
// proof of the recovery invariants in DESIGN.md ("Fault model and
// recovery") for all four engines.
//
// The harness deliberately tests the system the way a power cut would:
// the crash halts all I/O mid-load, volatile state dies, Recover replays
// the WAL, and the load is re-run from the start (each engine's Load is
// idempotent — it resets its store at entry). Queries then run against a
// store that lived through crash + recovery + transient read faults +
// torn writes, and their answers must be bit-identical to the baseline.
package chaos

import (
	"context"
	"errors"
	"fmt"

	"xbench/internal/core"
	"xbench/internal/pager"
	"xbench/internal/workload"
)

// Faultable is the contract an engine must satisfy to be chaos-tested:
// exposing its pager so faults can be injected and recovery driven. All
// four built-in engines implement it.
type Faultable interface {
	Pager() *pager.Pager
}

// Config controls one chaos run.
type Config struct {
	// Seed drives the deterministic fault streams; every crash point n
	// re-seeds with Seed+n so runs are reproducible end to end.
	Seed uint64
	// CrashPoints is the number of distinct crash points spread through
	// the load; <= 0 selects the default of 3.
	CrashPoints int
	// ReadErrorRate is the transient read-fault probability during the
	// post-recovery reload and queries; < 0 disables, 0 selects 0.02.
	ReadErrorRate float64
	// TornWriteRate is the torn-page probability during the reload;
	// < 0 disables, 0 selects 0.05.
	TornWriteRate float64
}

// WithDefaults resolves the zero-value fields to their defaults.
func (c Config) WithDefaults() Config {
	if c.CrashPoints <= 0 {
		c.CrashPoints = 3
	}
	switch {
	case c.ReadErrorRate < 0:
		c.ReadErrorRate = 0
	case c.ReadErrorRate == 0:
		c.ReadErrorRate = 0.02
	}
	switch {
	case c.TornWriteRate < 0:
		c.TornWriteRate = 0
	case c.TornWriteRate == 0:
		c.TornWriteRate = 0.05
	}
	return c
}

// Outcome summarizes one engine x class chaos cell.
type Outcome struct {
	Engine  string
	Class   core.Class
	Skipped bool // engine does not support the class, or is not Faultable
	// CrashOps are the disk-op budgets of the crash points exercised.
	CrashOps []int64
	// Crashes and Recoveries count crash points that fired and recovered.
	Crashes    int
	Recoveries int
	// Replayed is the total number of WAL records replayed across all
	// recoveries.
	Replayed int
	// Queries is the number of query results compared against baseline.
	Queries int
	Err     error
}

func (o Outcome) String() string {
	switch {
	case o.Skipped:
		return "-"
	case o.Err != nil:
		return "FAIL"
	default:
		return fmt.Sprintf("ok:%dc%dq", o.Crashes, o.Queries)
	}
}

// RunCell chaos-tests one engine x database cell. newEngine must return a
// fresh instance on every call; db is the database to load.
func RunCell(newEngine func() core.Engine, db *core.Database, cfg Config) Outcome {
	ctx := context.Background()
	cfg = cfg.WithDefaults()
	probe := newEngine()
	out := Outcome{Engine: probe.Name(), Class: db.Class}
	if err := probe.Supports(db.Class, db.Size); err != nil {
		out.Skipped = true
		return out
	}
	if _, ok := probe.(Faultable); !ok {
		out.Skipped = true
		return out
	}

	// Fault-free baseline: the answers every recovered run must reproduce.
	baseline := newEngine()
	if _, _, err := workload.LoadAndIndex(ctx, baseline, db); err != nil {
		out.Err = fmt.Errorf("chaos: baseline load: %w", err)
		return out
	}
	want := workload.RunAll(ctx, baseline, db.Class)
	for _, m := range want {
		if m.Err != nil && !queryNotAnswered(m.Err) {
			out.Err = fmt.Errorf("chaos: baseline %s: %w", m.Query, m.Err)
			return out
		}
	}

	// Measure the fault-free op budget so crash points land inside the
	// load, spread evenly through it.
	me := newEngine()
	mp := me.(Faultable).Pager()
	mp.SetFaultPolicy(pager.FaultPolicy{Seed: cfg.Seed})
	if _, _, err := workload.LoadAndIndex(ctx, me, db); err != nil {
		out.Err = fmt.Errorf("chaos: probe load: %w", err)
		return out
	}
	total := mp.OpCount()
	if total == 0 {
		out.Err = fmt.Errorf("chaos: load performed no disk operations")
		return out
	}

	for i := 1; i <= cfg.CrashPoints; i++ {
		crashAt := total * int64(i) / int64(cfg.CrashPoints+1)
		if crashAt < 1 {
			crashAt = 1
		}
		out.CrashOps = append(out.CrashOps, crashAt)
		if err := runCrashPoint(newEngine, db, cfg, crashAt, want, &out); err != nil {
			out.Err = fmt.Errorf("chaos: crash point %d (op %d): %w", i, crashAt, err)
			return out
		}
	}
	return out
}

// runCrashPoint exercises one crash point: load until the crash fires,
// recover, re-load under soft faults, and compare every query answer with
// the baseline.
func runCrashPoint(newEngine func() core.Engine, db *core.Database, cfg Config,
	crashAt int64, want []workload.Measurement, out *Outcome) error {
	ctx := context.Background()
	e := newEngine()
	p := e.(Faultable).Pager()
	p.SetFaultPolicy(pager.FaultPolicy{Seed: cfg.Seed, CrashAfterOps: crashAt})
	_, _, err := workload.LoadAndIndex(ctx, e, db)
	switch {
	case err == nil:
		// The budget outlasted the load (indexing cost can vary with the
		// crash point); nothing crashed, the answers below still must match.
	case pager.IsCrash(err):
		out.Crashes++
	default:
		return fmt.Errorf("non-crash failure under crash policy: %w", err)
	}

	// Power is back: recover to the last durable state and verify the
	// recovery invariant before trusting the disk.
	replayed, err := p.Recover()
	if err != nil {
		return fmt.Errorf("recover: %w", err)
	}
	out.Recoveries++
	out.Replayed += replayed
	if err := p.CheckDurable(); err != nil {
		return fmt.Errorf("durability check: %w", err)
	}

	// Re-load with the crash point disabled but soft faults still firing:
	// recovery must compose with transient read errors and torn writes.
	p.SetFaultPolicy(pager.FaultPolicy{
		Seed:          cfg.Seed + uint64(crashAt),
		ReadErrorRate: cfg.ReadErrorRate,
		TornWriteRate: cfg.TornWriteRate,
	})
	if _, _, err := workload.LoadAndIndex(ctx, e, db); err != nil {
		return fmt.Errorf("reload after recovery: %w", err)
	}
	// Checkpoint: repair any torn writes of the reload from the WAL, then
	// verify the disk is durable again.
	if _, err := p.Recover(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := p.CheckDurable(); err != nil {
		return fmt.Errorf("durability check after reload: %w", err)
	}

	got := workload.RunAll(ctx, e, db.Class)
	if len(got) != len(want) {
		return fmt.Errorf("ran %d queries, baseline ran %d", len(got), len(want))
	}
	for i, m := range got {
		if queryNotAnswered(want[i].Err) {
			// The engine does not implement this query for the class; the
			// recovered run must decline it the same way.
			if !queryNotAnswered(m.Err) {
				return fmt.Errorf("query %s answered after recovery but not at baseline", m.Query)
			}
			continue
		}
		if m.Err != nil {
			return fmt.Errorf("query %s after recovery: %w", m.Query, m.Err)
		}
		if err := sameItems(want[i].Result.Items, m.Result.Items); err != nil {
			return fmt.Errorf("query %s diverges from fault-free run: %w", m.Query, err)
		}
		out.Queries++
	}
	return nil
}

// queryNotAnswered reports whether err means the engine legitimately
// declines the query (not defined for the class, or unsupported) rather
// than failing it.
func queryNotAnswered(err error) bool {
	return err != nil && (errors.Is(err, core.ErrNoQuery) || errors.Is(err, core.ErrUnsupported))
}

// sameItems requires bit-identical result items in identical order — the
// strictest comparison: recovery must not change any answer at all.
func sameItems(want, got []string) error {
	if len(want) != len(got) {
		return fmt.Errorf("%d items, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			w, g := want[i], got[i]
			if len(w) > 120 {
				w = w[:120] + "..."
			}
			if len(g) > 120 {
				g = g[:120] + "..."
			}
			return fmt.Errorf("item %d differs:\n  want: %s\n  got:  %s", i, w, g)
		}
	}
	return nil
}
