package chaos

import (
	"fmt"
	"testing"

	"xbench/internal/core"
	"xbench/internal/engines/native"
	"xbench/internal/workload"
)

// TestUpdateCellsAllEngines is the acceptance criterion for crash-safe
// updates: every engine x multi-document class x update op recovers every
// crash point to exactly the pre- or post-update state — never a torn
// one. Across the grid both outcomes (committed and rolled back) must
// occur somewhere, or the crash points are not actually landing on both
// sides of the journal commit point.
func TestUpdateCellsAllEngines(t *testing.T) {
	var committed, rolledBack int
	for _, class := range []core.Class{core.DCMD, core.TCMD} {
		db, err := testGen.Generate(class, core.Small)
		if err != nil {
			t.Fatal(err)
		}
		for name, mk := range factories() {
			for _, op := range workload.UpdateOps {
				t.Run(fmt.Sprintf("%s/%s/%s", name, class.Code(), op), func(t *testing.T) {
					out := RunUpdateCell(mk, db, op, Config{Seed: 41, CrashPoints: 2})
					if out.Err != nil {
						t.Fatal(out.Err)
					}
					if out.Skipped {
						t.Fatal("supported update cell was skipped")
					}
					if out.Recoveries < len(out.CrashOps) {
						t.Fatalf("recoveries=%d for %d crash points", out.Recoveries, len(out.CrashOps))
					}
					if out.Committed+out.RolledBack != len(out.CrashOps) {
						t.Fatalf("outcome = %+v: %d crash points but %d+%d resolved states",
							out, len(out.CrashOps), out.Committed, out.RolledBack)
					}
					committed += out.Committed
					rolledBack += out.RolledBack
				})
			}
		}
	}
	if committed == 0 || rolledBack == 0 {
		t.Fatalf("grid never exercised both recovery outcomes: committed=%d rolledBack=%d",
			committed, rolledBack)
	}
}

// TestUpdateCellDeterministic: the same seed reproduces the identical
// update chaos run.
func TestUpdateCellDeterministic(t *testing.T) {
	db, err := testGen.Generate(core.DCMD, core.Small)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() core.Engine { return native.New(64) }
	a := RunUpdateCell(mk, db, workload.U2, Config{Seed: 5, CrashPoints: 2})
	b := RunUpdateCell(mk, db, workload.U2, Config{Seed: 5, CrashPoints: 2})
	if a.Err != nil || b.Err != nil {
		t.Fatalf("errs: %v / %v", a.Err, b.Err)
	}
	as, bs := fmt.Sprintf("%+v", a), fmt.Sprintf("%+v", b)
	if as != bs {
		t.Fatalf("same seed diverged:\n%s\n%s", as, bs)
	}
}

// TestUpdateCellSkipsSingleDocumentClasses: the update workload is not
// defined for SD classes; the cell must skip, not fail.
func TestUpdateCellSkipsSingleDocumentClasses(t *testing.T) {
	db, err := testGen.Generate(core.TCSD, core.Small)
	if err != nil {
		t.Fatal(err)
	}
	out := RunUpdateCell(func() core.Engine { return native.New(64) }, db, workload.U1, Config{Seed: 1})
	if !out.Skipped || out.Err != nil {
		t.Fatalf("outcome = %+v, want skip", out)
	}
	if out.String() != "-" {
		t.Fatalf("String() = %q", out.String())
	}
}
