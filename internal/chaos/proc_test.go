package chaos

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"xbench/internal/client"
	"xbench/internal/core"
	"xbench/internal/updatelog"
	"xbench/internal/workload"
)

// syncBuffer collects child process output for the failure report.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// buildXbench compiles the real CLI binary the supervisor will kill.
func buildXbench(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "xbench")
	cmd := exec.Command("go", "build", "-o", bin, "xbench/cmd/xbench")
	cmd.Dir = "../.." // module root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build xbench: %v\n%s", err, out)
	}
	return bin
}

// freeAddr reserves a port by listening on it and letting go — the
// supervisor's child needs a FIXED address to rebind after each kill.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestProcessKillTorture is the end-to-end exactly-once proof: an update
// storm runs against a REAL `xbench serve --journal` child process while
// the supervisor SIGKILLs and restarts it 20 times at seeded points.
// Afterwards the journal (read offline, after the final kill) must hold
// EXACTLY the set of acknowledged updates — every acked insert present
// (no lost ack: the fsynced journal is the commit point, acks only
// follow it) and no key or document applied twice (no double-apply: the
// dedup table, rebuilt from the journal on every restart, answered the
// cross-crash retries from memory).
func TestProcessKillTorture(t *testing.T) {
	if testing.Short() {
		t.Skip("process-kill torture is a multi-second test; skipped in -short")
	}
	bin := buildXbench(t)
	addr := freeAddr(t)
	journal := filepath.Join(t.TempDir(), "torture.journal")
	childLog := &syncBuffer{}

	sup := &Supervisor{
		Binary: bin,
		Args: []string{"serve",
			"--engine=x-hive", "--class=dcmd", "--size=small",
			"--addr=" + addr, "--journal=" + journal},
		Addr: addr,
		Log:  childLog,
	}
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	defer sup.Kill()

	// One client, generous retry budget: every update must ride out a
	// kill + restart window (sub-second here) inside its own retry loop.
	// Pipeline on: the torture proves exactly-once holds on the batched
	// mux transport too — in-flight requests sharing a connection all die
	// together on every kill and must all ride their retry loops out.
	c, err := client.DialAddrs([]string{addr}, client.Config{
		Retries:    200,
		Backoff:    5 * time.Millisecond,
		MaxBackoff: 100 * time.Millisecond,
		Cooldown:   50 * time.Millisecond,
		ClientID:   0xAB1E, Seed: 7,
		Pipeline: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// The storm: writers insert uniquely-named documents back to back and
	// log every acknowledgment; the last worker runs the full update
	// workload op — insert plus verification READ — so the storm is mixed
	// read/write, with queries retrying across the same restarts the
	// updates do. Unique names make the invariants exact set questions
	// against the journal.
	const workers = 3
	var (
		ackMu sync.Mutex
		acked []string
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				seq := 100000*(w+1) + i
				name, data := workload.UpdateDoc(core.DCMD, seq, 0)
				if w == workers-1 {
					// Mixed read/write leg: RunUpdateOp inserts, then
					// issues the Q1 verification query for the new doc.
					if m := workload.RunUpdateOp(context.Background(), c, core.DCMD, workload.U1, seq); m.Err != nil {
						errs <- fmt.Errorf("worker %d seq %d (verified): %w", w, seq, m.Err)
						return
					}
				} else if err := c.InsertDocument(context.Background(), name, data); err != nil {
					errs <- fmt.Errorf("worker %d seq %d: %w", w, seq, err)
					return
				}
				ackMu.Lock()
				acked = append(acked, name)
				ackMu.Unlock()
			}
		}(w)
	}

	// 20 SIGKILL/restart cycles at seeded points mid-storm.
	const cycles = 20
	stormErr := sup.Storm(cycles, 42, 50*time.Millisecond, 250*time.Millisecond)

	// Quiesce: workers finish their in-flight op (to acknowledgment or
	// error), so every issued update has a resolved outcome.
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("driver-visible update error: %v", err)
	}
	if stormErr != nil {
		t.Fatalf("storm: %v\nchild log:\n%s", stormErr, childLog.String())
	}
	if got := sup.Kills(); got < cycles {
		t.Fatalf("delivered %d SIGKILLs, want >= %d", got, cycles)
	}

	// Final death: examine the journal offline, exactly as the next
	// restart would.
	if err := sup.Kill(); err != nil {
		t.Fatal(err)
	}
	fl, recs, err := updatelog.OpenFile(journal)
	if err != nil {
		t.Fatalf("reopen journal after torture: %v", err)
	}
	fl.Close()

	journaled := map[string]int{}
	keys := map[string]int{}
	for _, r := range recs {
		if r.Kind != updatelog.KindInsert {
			t.Errorf("journal holds a %v record; the storm only inserts", r.Kind)
		}
		journaled[r.Name]++
		if !r.Keyed() {
			t.Errorf("journal record %q has no idempotency key", r.Name)
		}
		keys[fmt.Sprintf("%d/%d", r.Client, r.Seq)]++
	}
	for k, n := range keys {
		if n > 1 {
			t.Errorf("idempotency key %s journaled %d times (double-apply)", k, n)
		}
	}
	for name, n := range journaled {
		if n > 1 {
			t.Errorf("document %s journaled %d times (double-apply)", name, n)
		}
	}
	ackMu.Lock()
	defer ackMu.Unlock()
	if len(acked) == 0 {
		t.Fatal("storm acknowledged zero updates; the harness tested nothing")
	}
	for _, name := range acked {
		if journaled[name] == 0 {
			t.Errorf("acknowledged insert %s missing from the journal (lost ack)", name)
		}
	}
	// The converse also holds once the storm quiesced: every journaled
	// update was eventually acknowledged (an applied-but-unacked op keeps
	// retrying until its dedup hit succeeds, and workers only exit with a
	// resolved outcome).
	ackedSet := map[string]bool{}
	for _, name := range acked {
		ackedSet[name] = true
	}
	for name := range journaled {
		if !ackedSet[name] {
			t.Errorf("journaled insert %s was never acknowledged", name)
		}
	}
	t.Logf("torture: %d kills, %d acked inserts, %d journal records, child log %d bytes",
		sup.Kills(), len(acked), len(recs), len(childLog.String()))
}

// TestSupervisorKillIsNoopWhenDead: the supervisor's Kill must be safe
// on a never-started or already-killed child (the torture test calls it
// from a defer and again for the final death).
func TestSupervisorKillIsNoopWhenDead(t *testing.T) {
	sup := &Supervisor{Binary: "/nonexistent", Addr: "127.0.0.1:1"}
	if err := sup.Kill(); err != nil {
		t.Fatalf("Kill on never-started child: %v", err)
	}
	if sup.Kills() != 0 {
		t.Fatalf("kill count %d after no-op kill", sup.Kills())
	}
	if sup.Running() {
		t.Fatal("never-started supervisor reports running")
	}
}
