// Process-level chaos: where chaos.go kills a simulated engine inside
// one address space, the Supervisor kills a REAL `xbench serve` child
// with SIGKILL — no defers run, no buffers flush, the TCP listener
// vanishes mid-connection — and restarts it. Combined with the server's
// durable journal (`serve --journal`) and the client's keyed retries,
// this is the end-to-end torture rig for the exactly-once guarantee: a
// storm of updates runs THROUGH repeated process deaths and afterwards
// the journal must contain every acknowledged update exactly once.
//
// The supervisor is deliberately dumb: spawn, wait for the port to
// answer, SIGKILL, repeat at seeded intervals. All cleverness (recovery,
// dedup, failover) belongs to the system under test.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os/exec"
	"sync"
	"syscall"
	"time"

	"xbench/internal/stats"
)

// Supervisor manages one child server process across kill/restart
// cycles. Configure the fields, then Start / Kill / Storm. Safe for use
// from one goroutine at a time (the torture test's killer loop).
type Supervisor struct {
	// Binary is the path of the server executable (a built `xbench`).
	Binary string
	// Args is the full argument vector after the binary name — typically
	// `serve --addr=... --journal=...`. The same vector is used for every
	// restart, so recovery must be encoded in the flags, not the caller.
	Args []string
	// Addr is the address the child serves on; readiness = a TCP connect
	// to it succeeding, which the server only allows after recovery.
	Addr string
	// ReadyTimeout bounds one restart's wait for the port to answer;
	// <= 0 selects 30s.
	ReadyTimeout time.Duration
	// Log receives the child's stdout+stderr (nil discards). Handy when a
	// torture run fails: the last child's recovery banner says how many
	// journal records it replayed.
	Log io.Writer

	mu    sync.Mutex
	cmd   *exec.Cmd
	kills int
}

// Start spawns the child and blocks until its port answers (i.e. journal
// recovery finished and the listener is open).
func (s *Supervisor) Start() error {
	s.mu.Lock()
	if s.cmd != nil {
		s.mu.Unlock()
		return errors.New("chaos: child already running")
	}
	cmd := exec.Command(s.Binary, s.Args...)
	if s.Log != nil {
		cmd.Stdout, cmd.Stderr = s.Log, s.Log
	}
	if err := cmd.Start(); err != nil {
		s.mu.Unlock()
		return fmt.Errorf("chaos: spawn %s: %w", s.Binary, err)
	}
	s.cmd = cmd
	s.mu.Unlock()
	if err := s.waitReady(); err != nil {
		s.Kill() // don't leak a half-started child
		return err
	}
	return nil
}

// waitReady polls the serve port until a connect succeeds.
func (s *Supervisor) waitReady() error {
	timeout := s.ReadyTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	deadline := time.Now().Add(timeout)
	for {
		conn, err := net.DialTimeout("tcp", s.Addr, 250*time.Millisecond)
		if err == nil {
			conn.Close()
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: child on %s not ready after %v: %w", s.Addr, timeout, err)
		}
		// The child may have died during startup (bad flags, port taken):
		// surface its exit instead of polling a corpse.
		s.mu.Lock()
		cmd := s.cmd
		s.mu.Unlock()
		if cmd != nil && cmd.ProcessState != nil {
			return fmt.Errorf("chaos: child exited during startup: %v", cmd.ProcessState)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Kill SIGKILLs the child — the unflushable, undeferrable death — and
// reaps it. Killing a dead or never-started child is a no-op.
func (s *Supervisor) Kill() error {
	s.mu.Lock()
	cmd := s.cmd
	s.cmd = nil
	if cmd != nil {
		s.kills++
	}
	s.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return nil
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil && !errors.Is(err, syscall.ESRCH) {
		return fmt.Errorf("chaos: SIGKILL: %w", err)
	}
	cmd.Wait() // reap; exit status of a SIGKILLed child is expectedly non-nil
	return nil
}

// Kills returns how many SIGKILLs have been delivered.
func (s *Supervisor) Kills() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.kills
}

// Running reports whether a child is currently managed.
func (s *Supervisor) Running() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cmd != nil
}

// Storm runs `cycles` SIGKILL/restart cycles at seeded intervals drawn
// uniformly from [minGap, maxGap): let the update storm make progress,
// kill the child mid-flight, restart it (recovery replays the journal),
// repeat. The child is left RUNNING when Storm returns, so callers can
// quiesce their workload and then inspect final state. The gap stream is
// a Split of the run seed, so a torture failure replays exactly.
func (s *Supervisor) Storm(cycles int, seed uint64, minGap, maxGap time.Duration) error {
	if maxGap < minGap {
		minGap, maxGap = maxGap, minGap
	}
	rng := stats.NewRNG(seed).Split(0x70726F63) // "proc"
	for i := 0; i < cycles; i++ {
		gap := minGap
		if span := maxGap - minGap; span > 0 {
			gap += time.Duration(rng.Intn(int(span)))
		}
		time.Sleep(gap)
		if err := s.Kill(); err != nil {
			return fmt.Errorf("chaos: storm cycle %d: %w", i, err)
		}
		if err := s.Start(); err != nil {
			return fmt.Errorf("chaos: storm cycle %d restart: %w", i, err)
		}
	}
	return nil
}
