package chaos

import (
	"fmt"
	"testing"

	"xbench/internal/core"
	"xbench/internal/engines/native"
	"xbench/internal/engines/sqlserver"
	"xbench/internal/engines/xcollection"
	"xbench/internal/engines/xcolumn"
	"xbench/internal/gen"
)

var testGen = gen.Config{DictEntries: 40, Articles: 6, Items: 20, Orders: 40}

func factories() map[string]func() core.Engine {
	return map[string]func() core.Engine{
		"X-Hive":      func() core.Engine { return native.New(64) },
		"Xcolumn":     func() core.Engine { return xcolumn.New(64) },
		"Xcollection": func() core.Engine { return xcollection.New(64, 0) },
		"SQL Server":  func() core.Engine { return sqlserver.New(64) },
	}
}

// TestAllEnginesAllClasses is the acceptance criterion: every engine x
// class cell survives >= 3 distinct crash points, recovers, and answers
// every query exactly like a fault-free run.
func TestAllEnginesAllClasses(t *testing.T) {
	for _, class := range []core.Class{core.TCSD, core.TCMD, core.DCSD, core.DCMD} {
		db, err := testGen.Generate(class, core.Small)
		if err != nil {
			t.Fatal(err)
		}
		for name, mk := range factories() {
			t.Run(fmt.Sprintf("%s/%s", name, class.Code()), func(t *testing.T) {
				out := RunCell(mk, db, Config{Seed: 99})
				if out.Err != nil {
					t.Fatal(out.Err)
				}
				if out.Skipped {
					probe := mk()
					if probe.Supports(class, core.Small) == nil {
						t.Fatal("supported cell was skipped")
					}
					return
				}
				if len(out.CrashOps) < 3 {
					t.Fatalf("only %d crash points exercised", len(out.CrashOps))
				}
				seen := map[int64]bool{}
				for _, op := range out.CrashOps {
					seen[op] = true
				}
				if len(seen) < 3 {
					t.Fatalf("crash points not distinct: %v", out.CrashOps)
				}
				if out.Recoveries < len(out.CrashOps) {
					t.Fatalf("recoveries=%d for %d crash points", out.Recoveries, len(out.CrashOps))
				}
				if out.Queries == 0 {
					t.Fatal("no query results were compared")
				}
			})
		}
	}
}

// TestDeterministicOutcome: the same seed must reproduce the identical
// chaos run — crash points, fault effects, replay counts and all.
func TestDeterministicOutcome(t *testing.T) {
	db, err := testGen.Generate(core.DCMD, core.Small)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() core.Engine { return native.New(64) }
	a := RunCell(mk, db, Config{Seed: 7})
	b := RunCell(mk, db, Config{Seed: 7})
	if a.Err != nil || b.Err != nil {
		t.Fatalf("errs: %v / %v", a.Err, b.Err)
	}
	as := fmt.Sprintf("%+v", a)
	if bs := fmt.Sprintf("%+v", b); as != bs {
		t.Fatalf("same seed diverged:\n%s\n%s", as, bs)
	}
	c := RunCell(mk, db, Config{Seed: 8})
	if c.Err != nil {
		t.Fatal(c.Err)
	}
	if cs := fmt.Sprintf("%+v", c.CrashOps); cs == fmt.Sprintf("%+v", a.CrashOps) && c.Replayed == a.Replayed {
		// Crash points derive from the op budget, which rarely changes with
		// the seed alone; but the replay totals should move when soft-fault
		// streams differ. Tolerate equality only if both metrics agree by
		// chance — flag when everything is identical.
		t.Logf("seeds 7 and 8 produced identical outcomes; fault stream may be ignored")
	}
}

// TestSkipsUnsupportedCell: Xcolumn cannot host single-document classes;
// the harness must report a skip, not a failure.
func TestSkipsUnsupportedCell(t *testing.T) {
	db, err := testGen.Generate(core.TCSD, core.Small)
	if err != nil {
		t.Fatal(err)
	}
	out := RunCell(func() core.Engine { return xcolumn.New(64) }, db, Config{Seed: 1})
	if !out.Skipped || out.Err != nil {
		t.Fatalf("outcome = %+v, want skip", out)
	}
	if out.String() != "-" {
		t.Fatalf("String() = %q", out.String())
	}
}
