// Network fault injection: a TCP proxy that sits between internal/client
// and internal/server and breaks connections the way real networks do —
// severing them mid-request and tearing frames so a prefix of the bytes
// arrives and the rest never does. Faults draw from the same seeded PCG
// streams as the pager harness, so a (seed, connection ordinal) pair
// replays the identical fault schedule on every run.
//
// The proxy knows nothing about the frame format on purpose: it cuts at
// byte granularity, which subsumes every protocol-level tear (mid-header,
// mid-payload, between checksum and payload). The wire package's torn-
// frame tests prove any cut decodes to a typed error; the proxy tests
// prove the full client/server stack survives those cuts under load.
package chaos

import (
	"net"
	"sync"
	"sync/atomic"

	"xbench/internal/stats"
)

// ProxyConfig controls the fault schedule of a Proxy.
type ProxyConfig struct {
	// Seed drives the deterministic fault streams; each accepted
	// connection derives its own stream from (Seed, ordinal).
	Seed uint64
	// DropRate is the per-chunk probability the connection is severed
	// before the chunk is forwarded; < 0 disables, 0 selects 0.05.
	DropRate float64
	// TearRate is the per-chunk probability only a prefix of the chunk
	// is forwarded before the connection is severed; < 0 disables,
	// 0 selects 0.05.
	TearRate float64
}

func (c ProxyConfig) withDefaults() ProxyConfig {
	switch {
	case c.DropRate < 0:
		c.DropRate = 0
	case c.DropRate == 0:
		c.DropRate = 0.05
	}
	switch {
	case c.TearRate < 0:
		c.TearRate = 0
	case c.TearRate == 0:
		c.TearRate = 0.05
	}
	return c
}

// Proxy is a fault-injecting TCP relay. Dial its Addr instead of the
// server's and a deterministic fraction of requests die on the wire.
type Proxy struct {
	ln     net.Listener
	target string
	cfg    ProxyConfig

	ordinal atomic.Uint64
	drops   atomic.Int64
	tears   atomic.Int64

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewProxy starts a relay on a fresh loopback port forwarding to target.
func NewProxy(target string, cfg ProxyConfig) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		ln:     ln,
		target: target,
		cfg:    cfg.withDefaults(),
		conns:  map[net.Conn]struct{}{},
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the address clients should dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Faults reports how many connections the proxy has severed so far,
// split by kind.
func (p *Proxy) Faults() (drops, tears int64) {
	return p.drops.Load(), p.tears.Load()
}

// Close stops accepting and severs every live relayed connection.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	err := p.ln.Close()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

// track registers a connection for Close-time severing; it reports false
// when the proxy already closed (the caller must drop the connection).
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		n := p.ordinal.Add(1)
		p.wg.Add(1)
		go p.relay(conn, n)
	}
}

// relay pumps bytes both ways between the client connection and a fresh
// server connection, consulting the connection's fault stream per chunk.
// One fault kills both directions: half-open connections wedge real
// clients, and the point here is proving ours doesn't.
func (p *Proxy) relay(client net.Conn, ordinal uint64) {
	defer p.wg.Done()
	server, err := net.Dial("tcp", p.target)
	if err != nil {
		client.Close()
		return
	}
	if !p.track(client) || !p.track(server) {
		client.Close()
		server.Close()
		return
	}
	defer func() {
		p.untrack(client)
		p.untrack(server)
		client.Close()
		server.Close()
	}()

	rng := stats.NewRNG(p.cfg.Seed).Split(ordinal)
	var rngMu sync.Mutex
	sever := make(chan struct{})
	var once sync.Once
	kill := func() { once.Do(func() { close(sever) }) }

	var pumps sync.WaitGroup
	pump := func(dst, src net.Conn) {
		defer pumps.Done()
		defer kill()
		buf := make([]byte, 4096)
		for {
			n, err := src.Read(buf)
			if n > 0 {
				rngMu.Lock()
				roll := rng.Float64()
				cut := -1
				switch {
				case roll < p.cfg.DropRate:
					cut = 0
				case roll < p.cfg.DropRate+p.cfg.TearRate:
					cut = 1 + int(rng.Uint64()%uint64(n))
					if cut >= n {
						cut = n - 1 // always lose at least one byte
					}
				}
				rngMu.Unlock()
				if cut >= 0 {
					if cut == 0 {
						p.drops.Add(1)
					} else {
						p.tears.Add(1)
						dst.Write(buf[:cut])
					}
					return
				}
				if _, werr := dst.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				return
			}
		}
	}
	pumps.Add(2)
	go pump(server, client)
	go pump(client, server)

	// Whichever pump dies first (fault, peer close, proxy Close) severs
	// both connections so the other pump unblocks from its Read.
	go func() {
		<-sever
		client.Close()
		server.Close()
	}()
	pumps.Wait()
	kill()
}
