// Package xcolumn implements the DB2 XML Extender "XML column" analog:
// each document is kept intact as a CLOB, and side tables hold the
// searchable elements/attributes declared in the DAD, with a dxx_seqno
// column preserving the order of repeating elements (paper §3.1.1).
//
// Modeled properties from the paper:
//
//   - Only multi-document classes are supported: a single large XML
//     document exceeds the 2 GB CLOB limit, so TC/SD and DC/SD cells are
//     blank (§3.1.1, §3.1.3 item 6).
//   - Documents are stored intact, so reconstruction (Q12) and ordered
//     access (Q5, via dxx_seqno) are exact.
//   - Text search (Q17) has no side-table support and must scan every
//     CLOB, which is why Xcolumn's DC/MD text-search numbers explode in
//     Table 7.
package xcolumn

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"xbench/internal/core"
	"xbench/internal/engines/engsnap"
	"xbench/internal/metrics"
	"xbench/internal/pager"
	"xbench/internal/plan"
	"xbench/internal/queries"
	"xbench/internal/relational"
	"xbench/internal/updatelog"
	"xbench/internal/xmldom"
	"xbench/internal/xquery"
)

// Engine is an Xcolumn instance. Execute is safe from many goroutines
// against a loaded database; Load, BuildIndexes and ColdReset take the
// write lock, excluding (and quiescing) queries.
type Engine struct {
	mu      sync.RWMutex
	p       *pager.Pager
	class   core.Class
	clobs   *pager.Heap
	rids    []pager.RID          // CLOB rids in load order
	names   map[string]pager.RID // document name -> CLOB rid
	db      *relational.DB
	journal *updatelog.Log    // logical redo journal for U1-U3
	snap    engsnap.Published // MVCC snapshot state for lock-free reads
	planFB  plan.Feedback     // observed range selectivities for the cost model
}

// New returns an empty engine.
func New(poolPages int) *Engine {
	p := pager.New(poolPages)
	p.SetMetrics(metrics.NewRegistry())
	e := &Engine{p: p, clobs: pager.NewHeap(p, "clobs"), journal: updatelog.New(p, "updates")}
	e.snap.SetEnabled(true)
	p.StartGC(engsnap.GCInterval)
	return e
}

// clobReader is the read surface shared by the live CLOB heap and a
// frozen pager.HeapView.
type clobReader interface {
	Get(ctx context.Context, rid pager.RID) ([]byte, error)
	Pages() int64
}

// view is the read surface of the store at one moment: either the live
// heap, rid list and tables (caller holds the read latch) or frozen
// snapshot views pinned at a commit epoch (lock-free — the rid slice is
// copied at publish time and the DB is a snapshot clone).
type view struct {
	class core.Class
	clobs clobReader
	rids  []pager.RID
	db    *relational.DB
}

// liveView wraps the live store. Caller holds at least the read latch.
func (e *Engine) liveView() *view {
	return &view{class: e.class, clobs: e.clobs, rids: e.rids, db: e.db}
}

// publishLocked freezes the store at epoch and publishes it for
// snapshot readers. The caller holds the write lock and has synced the
// heaps, so the views freeze without flushing anything.
func (e *Engine) publishLocked(epoch uint64) error {
	if e.db == nil {
		e.snap.Publish(epoch, nil)
		return nil
	}
	cv, err := e.clobs.View(epoch)
	if err != nil {
		e.snap.Publish(epoch, nil)
		return err
	}
	dbSnap, err := e.db.Snapshot(epoch)
	if err != nil {
		e.snap.Publish(epoch, nil)
		return err
	}
	rids := append([]pager.RID(nil), e.rids...)
	e.snap.Publish(epoch, &view{class: e.class, clobs: cv, rids: rids, db: dbSnap})
	return nil
}

// SetSnapshots toggles MVCC snapshot reads (default on). Disabled,
// Execute falls back to the engine read latch and quiesces behind
// writers — the pre-MVCC baseline the update-fraction sweep compares
// against.
func (e *Engine) SetSnapshots(on bool) { e.snap.SetEnabled(on) }

// SnapshotsEnabled reports whether snapshot reads are on.
func (e *Engine) SnapshotsEnabled() bool { return e.snap.Enabled() }

// Name implements core.Engine.
func (e *Engine) Name() string { return "Xcolumn" }

// Supports implements core.Engine: single-document classes exceed the
// CLOB size limit (blank cells in the paper's tables).
func (e *Engine) Supports(c core.Class, _ core.Size) error {
	if c.SingleDocument() {
		return fmt.Errorf("xcolumn: %s: single large document exceeds the XML CLOB limit: %w",
			c, core.ErrUnsupported)
	}
	return nil
}

// Pager exposes the engine's pager for fault injection and recovery.
func (e *Engine) Pager() *pager.Pager { return e.p }

// Metrics returns the engine's metrics registry, shared by its pager,
// side-table indexes and query path.
func (e *Engine) Metrics() *metrics.Registry { return e.p.Metrics() }

// reset empties the store so Load is idempotent. The published snapshot
// is withdrawn first so readers fall back to the locked path rather
// than chase views into truncated files.
func (e *Engine) reset() error {
	e.snap.Publish(e.p.SnapshotEpoch(), nil)
	e.rids = nil
	e.names = nil
	if err := e.clobs.Reset(); err != nil {
		return err
	}
	if err := e.journal.Reset(); err != nil {
		return err
	}
	if e.db != nil {
		if err := e.db.Truncate(); err != nil {
			return err
		}
		e.db = nil
	}
	return nil
}

// abortLoad truncates the store after a non-crash mid-load failure so the
// database stays empty and loadable; after a crash the error passes
// through untouched (pager recovery is the only path forward).
func (e *Engine) abortLoad(err error) error {
	if pager.IsCrash(err) {
		return err
	}
	_ = e.reset()
	return err
}

// Load implements core.Engine: store each document as a CLOB and populate
// the side tables for the searchable elements. A failed load leaves an
// empty, loadable database.
// Load drains pinned snapshots before truncating: a reader holding a
// pre-load snapshot would otherwise race the wholesale truncate, whose
// pre-images are deliberately not versioned.
func (e *Engine) Load(ctx context.Context, db *core.Database) (core.LoadStats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var st core.LoadStats
	if err := e.Supports(db.Class, db.Size); err != nil {
		return st, err
	}
	e.p.BlockPins()
	defer e.p.UnblockPins()
	if err := e.reset(); err != nil {
		return st, err
	}
	st, err := e.loadDocs(ctx, db)
	if err != nil {
		return st, e.abortLoad(err)
	}
	if err := e.publishLocked(e.p.AdvanceEpoch()); err != nil {
		return st, e.abortLoad(err)
	}
	return st, nil
}

func (e *Engine) loadDocs(ctx context.Context, db *core.Database) (core.LoadStats, error) {
	var st core.LoadStats
	start := e.p.Stats()
	e.class = db.Class
	e.names = make(map[string]pager.RID, len(db.Docs))
	e.db = relational.NewDB(e.p)
	switch db.Class {
	case core.DCMD:
		e.db.Create("order_side", "doc", "id", "order_date", "ship_type",
			"order_status", "ship_country")
		e.db.Create("line_side", "doc", "dxx_seqno", "item_id", "comment")
		e.db.Create("customer_side", "doc", "dxx_seqno", "id", "c_fname",
			"c_lname", "c_phone")
	case core.TCMD:
		e.db.Create("article_side", "doc", "id", "title", "genre", "date")
		e.db.Create("sec_side", "doc", "dxx_seqno", "heading", "top")
	}
	for _, d := range db.Docs {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		doc, err := xmldom.Parse(d.Data)
		if err != nil {
			return st, fmt.Errorf("xcolumn: %s: %w", d.Name, err)
		}
		rid, err := e.clobs.Insert(d.Data)
		if err != nil {
			return st, err
		}
		e.rids = append(e.rids, rid)
		e.names[d.Name] = rid
		rows, err := e.populateSideTables(strconv.FormatUint(uint64(rid), 10), doc)
		if err != nil {
			return st, err
		}
		// One CLOB sync per incoming file: per-document I/O dominates
		// DC/MD loading (paper §3.2.1).
		if err := e.clobs.Sync(); err != nil {
			return st, err
		}
		st.Documents++
		st.Rows += rows
		st.Bytes += len(d.Data)
	}
	if err := e.clobs.Sync(); err != nil {
		return st, err
	}
	for _, name := range e.db.TableNames() {
		if err := e.db.Table(name).Flush(); err != nil {
			return st, err
		}
	}
	if err := e.p.SyncAll(); err != nil {
		return st, err
	}
	st.PageIO = e.p.Stats().IO() - start.IO()
	return st, nil
}

func (e *Engine) populateSideTables(doc string, parsed *xmldom.Node) (int, error) {
	rows := 0
	ins := func(table string, row relational.Row) error {
		rows++
		return e.db.Table(table).Insert(row)
	}
	root := parsed.Root()
	null := relational.Null
	opt := func(n *xmldom.Node, name string) string {
		if c := n.FirstChild(name); c != nil {
			return c.Text()
		}
		return null
	}
	switch e.class {
	case core.DCMD:
		switch root.Name {
		case "order":
			id, _ := root.Attr("id")
			sc := null
			if cc := root.FirstChild("cc_xacts"); cc != nil {
				sc = opt(cc, "ship_country")
			}
			if err := ins("order_side", relational.Row{
				doc, id, opt(root, "order_date"), opt(root, "ship_type"),
				opt(root, "order_status"), sc,
			}); err != nil {
				return rows, err
			}
			for i, ol := range root.FirstChild("order_lines").ChildElements("order_line") {
				if err := ins("line_side", relational.Row{
					doc, strconv.Itoa(i + 1), opt(ol, "item_id"), opt(ol, "comment"),
				}); err != nil {
					return rows, err
				}
			}
		case "customers":
			for i, c := range root.ChildElements("customer") {
				id, _ := c.Attr("id")
				if err := ins("customer_side", relational.Row{
					doc, strconv.Itoa(i + 1), id, opt(c, "c_fname"),
					opt(c, "c_lname"), opt(c, "c_phone"),
				}); err != nil {
					return rows, err
				}
			}
		}
	case core.TCMD:
		if root.Name != "article" {
			return rows, nil
		}
		id, _ := root.Attr("id")
		prolog := root.FirstChild("prolog")
		date := null
		if dl := prolog.FirstChild("dateline"); dl != nil {
			date = opt(dl, "date")
		}
		if err := ins("article_side", relational.Row{
			doc, id, opt(prolog, "title"), opt(prolog, "genre"), date,
		}); err != nil {
			return rows, err
		}
		seq := 0
		var walk func(sec *xmldom.Node, top bool) error
		walk = func(sec *xmldom.Node, top bool) error {
			seq++
			topFlag := "0"
			if top {
				topFlag = "1"
			}
			if err := ins("sec_side", relational.Row{
				doc, strconv.Itoa(seq), opt(sec, "heading"), topFlag,
			}); err != nil {
				return err
			}
			for _, sub := range sec.ChildElements("sec") {
				if err := walk(sub, false); err != nil {
					return err
				}
			}
			return nil
		}
		for _, sec := range root.FirstChild("body").ChildElements("sec") {
			if err := walk(sec, true); err != nil {
				return rows, err
			}
		}
	}
	return rows, nil
}

// BuildIndexes implements core.Engine: Table 3 indexes land on the side
// tables.
func (e *Engine) BuildIndexes(specs []core.IndexSpec) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.db == nil {
		return fmt.Errorf("xcolumn: BuildIndexes before Load")
	}
	e.p.BeginMutation()
	for _, spec := range specs {
		switch {
		case e.class == core.DCMD && spec.Target == "order/@id":
			if err := e.db.Table("order_side").CreateIndex("id"); err != nil {
				return err
			}
		case e.class == core.TCMD && spec.Target == "article/@id":
			if err := e.db.Table("article_side").CreateIndex("id"); err != nil {
				return err
			}
		}
	}
	if err := e.p.SyncAll(); err != nil {
		return err
	}
	return e.publishLocked(e.p.EndMutation())
}

// fetchDoc reads and parses the CLOB referenced by a side-table doc value.
func (e *Engine) fetchDoc(ctx context.Context, v *view, doc string) (*xmldom.Node, error) {
	rid, err := strconv.ParseUint(doc, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("xcolumn: bad doc reference %q", doc)
	}
	sp := e.Metrics().StartSpan(metrics.PhaseMaterialize)
	defer sp.End()
	data, err := v.clobs.Get(ctx, pager.RID(rid))
	if err != nil {
		return nil, err
	}
	return xmldom.Parse(data)
}

// Execute implements core.Engine. It is safe to call from many
// goroutines; cancellation via ctx is honored at page-fetch granularity.
// With snapshots on (the default), a query pins a commit epoch and runs
// against frozen heap, rid-list and side-table views without touching
// the engine write lock, so U1-U3 updates never stall it.
func (e *Engine) Execute(ctx context.Context, q core.QueryID, p core.Params) (core.Result, error) {
	if snap, val, ok := e.snap.Pin(e.p); ok {
		defer snap.Release()
		return e.run(ctx, val.(*view), q, p)
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.db == nil {
		return core.Result{}, fmt.Errorf("xcolumn: Execute before Load")
	}
	return e.run(ctx, e.liveView(), q, p)
}

// run executes q against v, which is either the live store (caller
// holds the read latch) or a pinned snapshot view (lock-free).
func (e *Engine) run(ctx context.Context, v *view, q core.QueryID, p core.Params) (core.Result, error) {
	def := queries.Lookup(v.class, q)
	if def == nil {
		return core.Result{}, core.ErrNoQuery
	}
	ph, err := plan.Plan(def, e.statValues(v))
	if err != nil {
		return core.Result{}, err
	}
	a := access{ph: ph, fb: &e.planFB}
	before := e.p.Stats()
	var items []string
	switch v.class {
	case core.DCMD:
		items, err = e.execDCMD(ctx, v, a, q, p)
	case core.TCMD:
		items, err = e.execTCMD(ctx, v, a, q, p)
	}
	if err != nil {
		return core.Result{}, err
	}
	return core.Result{
		Items: items,
		// dxx_seqno and the intact CLOB preserve document order (§3.2.2:
		// "DB2/Xcolumn can keep track of ordering information by using
		// dxx_seqno").
		OrderGuaranteed: true,
		PageIO:          e.p.Stats().IO() - before.IO(),
	}, nil
}

// statValues derives planner statistics from v: the CLOB heap drives
// scan cost (every unindexed query rereads the documents), and the
// side-table key indexes are the only probe paths.
func (e *Engine) statValues(v *view) plan.StatValues {
	st := plan.StatValues{
		DataPages: v.clobs.Pages(),
		DataRows:  int64(len(v.rids)),
		Indexes:   map[string]int{},
	}
	for _, spec := range queries.Indexes(v.class) {
		var table string
		switch {
		case v.class == core.DCMD && spec.Target == "order/@id":
			table = "order_side"
		case v.class == core.TCMD && spec.Target == "article/@id":
			table = "article_side"
		default:
			continue
		}
		if h := v.db.Table(table).IndexHeight("id"); h > 0 {
			st.Indexes[spec.Target] = h
		}
	}
	st.RangeSelectivity = e.planFB.Selectivity()
	return st
}

// Explain implements core.Explainer: the costed physical plan for q
// over the loaded database's live statistics.
func (e *Engine) Explain(_ context.Context, q core.QueryID, _ core.Params) (*core.PlanNode, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.db == nil {
		return nil, fmt.Errorf("xcolumn: Explain before Load")
	}
	def := queries.Lookup(e.class, q)
	if def == nil {
		return nil, core.ErrNoQuery
	}
	ph, err := plan.Plan(def, e.statValues(e.liveView()))
	if err != nil {
		return nil, err
	}
	return ph.Root, nil
}

var _ core.Explainer = (*Engine)(nil)

// access carries the physical plan's index-vs-scan decision into the
// side-table fetches below.
type access struct {
	ph *plan.Physical
	// fb receives observed range selectivities for the cost model.
	fb *plan.Feedback
}

func (a access) forceScan() bool {
	return a.ph != nil && a.ph.Access == plan.AccessScan
}

func (a access) eq(ctx context.Context, t *relational.Table, col, val string) ([]relational.Row, error) {
	if a.forceScan() {
		return t.ScanEq(ctx, col, val)
	}
	return t.LookupEq(ctx, col, val)
}

func (a access) rng(ctx context.Context, t *relational.Table, col, lo, hi string) ([]relational.Row, error) {
	var (
		rows []relational.Row
		err  error
	)
	if a.forceScan() {
		rows, err = t.ScanRange(ctx, col, lo, hi)
	} else {
		rows, err = t.LookupRange(ctx, col, lo, hi)
	}
	if err == nil && a.ph != nil && a.fb != nil {
		a.fb.Observe(a.ph.FeedbackTarget, int64(len(rows)), int64(t.Count()))
	}
	return rows, err
}

// docOf finds the CLOB reference for a key via the side table (indexed
// when Table 3 covers it, a forced scan when the plan rejects the
// probe).
func (e *Engine) docOf(ctx context.Context, v *view, a access, table, col, key string) (string, relational.Row, error) {
	t := v.db.Table(table)
	rows, err := a.eq(ctx, t, col, key)
	if err != nil || len(rows) == 0 {
		return "", nil, err
	}
	return rows[0][t.Col("doc")], rows[0], nil
}

func (e *Engine) execDCMD(ctx context.Context, v *view, a access, q core.QueryID, p core.Params) ([]string, error) {
	orderSide := v.db.Table("order_side")
	switch q {
	case core.Q1, core.Q5, core.Q8, core.Q9, core.Q12, core.Q16:
		doc, _, err := e.docOf(ctx, v, a, "order_side", "id", p.Get("X"))
		if err != nil || doc == "" {
			return nil, err
		}
		parsed, err := e.fetchDoc(ctx, v, doc)
		if err != nil {
			return nil, err
		}
		root := parsed.Root()
		switch q {
		case core.Q1:
			return []string{root.FirstChild("total").XML()}, nil
		case core.Q5:
			lines := root.FirstChild("order_lines").ChildElements("order_line")
			if len(lines) == 0 {
				return nil, nil
			}
			return []string{lines[0].XML()}, nil
		case core.Q8:
			var out []string
			for _, ol := range root.FirstChild("order_lines").ChildElements("order_line") {
				out = append(out, ol.FirstChild("item_id").XML())
			}
			return out, nil
		case core.Q9:
			return []string{root.FirstChild("order_status").XML()}, nil
		case core.Q12:
			return []string{root.FirstChild("cc_xacts").XML()}, nil
		case core.Q16:
			return []string{root.XML()}, nil
		}
	case core.Q10:
		rows, err := a.rng(ctx, orderSide, "order_date", p.Get("LO"), p.Get("HI"))
		if err != nil {
			return nil, err
		}
		sortByIDSuffix(rows, orderSide.Col("id"))
		relational.SortRows(rows, orderSide.Col("ship_type"), false, true)
		var out []string
		for _, r := range rows {
			n := xmldom.NewElement("r")
			n.AddLeaf("id", r[orderSide.Col("id")])
			n.AddLeaf("date", r[orderSide.Col("order_date")])
			n.AddLeaf("ship", r[orderSide.Col("ship_type")])
			out = append(out, n.XML())
		}
		return out, nil
	case core.Q14:
		rows, err := a.rng(ctx, orderSide, "order_date", p.Get("LO"), p.Get("HI"))
		if err != nil {
			return nil, err
		}
		var out []string
		for _, r := range rows {
			if relational.IsNull(r[orderSide.Col("ship_country")]) {
				out = append(out, r[orderSide.Col("id")])
			}
		}
		return out, nil
	case core.Q17:
		// No full-text side table: scan every CLOB (the Table 7 blow-up).
		return e.clobWordSearch(ctx, v, p.Get("W2"), func(root *xmldom.Node) (string, bool) {
			if root.Name != "order" {
				return "", false
			}
			id, _ := root.Attr("id")
			for _, ol := range root.FirstChild("order_lines").ChildElements("order_line") {
				if c := ol.FirstChild("comment"); c != nil && xquery.ContainsWord(c.Text(), p.Get("W2")) {
					return id, true
				}
			}
			return "", false
		})
	case core.Q19:
		doc, orow, err := e.docOf(ctx, v, a, "order_side", "id", p.Get("X"))
		if err != nil || doc == "" {
			return nil, err
		}
		parsed, err := e.fetchDoc(ctx, v, doc)
		if err != nil {
			return nil, err
		}
		custID := parsed.Root().FirstChild("customer_id").Text()
		custSide := v.db.Table("customer_side")
		var out []string
		if err := custSide.Scan(ctx, func(r relational.Row) bool {
			if r[custSide.Col("id")] == custID {
				n := xmldom.NewElement("r")
				n.AddLeaf("name", r[custSide.Col("c_fname")]+" "+r[custSide.Col("c_lname")])
				n.AddLeaf("phone", r[custSide.Col("c_phone")])
				st := orow[orderSide.Col("order_status")]
				if relational.IsNull(st) {
					st = ""
				}
				n.AddLeaf("status", st)
				out = append(out, n.XML())
				return false
			}
			return true
		}); err != nil {
			return nil, err
		}
		return out, nil
	}
	return nil, core.ErrNoQuery
}

func (e *Engine) execTCMD(ctx context.Context, v *view, a access, q core.QueryID, p core.Params) ([]string, error) {
	artSide := v.db.Table("article_side")
	secSide := v.db.Table("sec_side")
	switch q {
	case core.Q1:
		rows, err := a.eq(ctx, artSide, "id", p.Get("X"))
		if err != nil {
			return nil, err
		}
		var out []string
		for _, r := range rows {
			n := xmldom.NewElement("title")
			n.AddText(r[artSide.Col("title")])
			out = append(out, n.XML())
		}
		return out, nil
	case core.Q5, core.Q8:
		doc, _, err := e.docOf(ctx, v, a, "article_side", "id", p.Get("X"))
		if err != nil || doc == "" {
			return nil, err
		}
		// sec_side has no doc index; filtering it is a growing scan.
		type secRow struct {
			seq     int
			heading string
			top     bool
		}
		var secs []secRow
		if err := secSide.Scan(ctx, func(r relational.Row) bool {
			if r[secSide.Col("doc")] == doc {
				seq, _ := strconv.Atoi(r[secSide.Col("dxx_seqno")])
				secs = append(secs, secRow{
					seq:     seq,
					heading: r[secSide.Col("heading")],
					top:     r[secSide.Col("top")] == "1",
				})
			}
			return true
		}); err != nil {
			return nil, err
		}
		var out []string
		for _, s := range secs {
			if !s.top {
				continue
			}
			if q == core.Q5 {
				// First top-level section only; no result if it lacks a
				// heading (matching sec[1]/heading semantics).
				if relational.IsNull(s.heading) {
					return nil, nil
				}
				n := xmldom.NewElement("heading")
				n.AddText(s.heading)
				return []string{n.XML()}, nil
			}
			if relational.IsNull(s.heading) {
				continue
			}
			n := xmldom.NewElement("heading")
			n.AddText(s.heading)
			out = append(out, n.XML())
		}
		return out, nil
	case core.Q12:
		doc, _, err := e.docOf(ctx, v, a, "article_side", "id", p.Get("X"))
		if err != nil || doc == "" {
			return nil, err
		}
		parsed, err := e.fetchDoc(ctx, v, doc)
		if err != nil {
			return nil, err
		}
		ab := parsed.Root().FirstChild("prolog").FirstChild("abstract")
		if ab == nil {
			return nil, nil
		}
		return []string{ab.XML()}, nil
	case core.Q14:
		rows, err := a.rng(ctx, artSide, "date", p.Get("LO"), p.Get("HI"))
		if err != nil {
			return nil, err
		}
		var out []string
		for _, r := range rows {
			if relational.IsNull(r[artSide.Col("genre")]) {
				n := xmldom.NewElement("title")
				n.AddText(r[artSide.Col("title")])
				out = append(out, n.XML())
			}
		}
		return out, nil
	case core.Q17:
		return e.clobWordSearch(ctx, v, p.Get("W2"), func(root *xmldom.Node) (string, bool) {
			if root.Name != "article" {
				return "", false
			}
			if xquery.ContainsWord(root.Text(), p.Get("W2")) {
				return root.FirstChild("prolog").FirstChild("title").XML(), true
			}
			return "", false
		})
	}
	return nil, core.ErrNoQuery
}

// sortByIDSuffix stably orders rows by the numeric suffix of an id column
// ("O25" -> 25), the document order of generated ids.
func sortByIDSuffix(rows []relational.Row, col int) {
	sort.SliceStable(rows, func(i, j int) bool {
		return idSuffix(rows[i][col]) < idSuffix(rows[j][col])
	})
}

func idSuffix(id string) int {
	i := 0
	for i < len(id) && (id[i] < '0' || id[i] > '9') {
		i++
	}
	n, _ := strconv.Atoi(id[i:])
	return n
}

// clobWordSearch scans every stored CLOB: a cheap raw-byte prefilter, then
// a full parse of candidate documents to extract the result.
func (e *Engine) clobWordSearch(ctx context.Context, v *view, word string, extract func(root *xmldom.Node) (string, bool)) ([]string, error) {
	reg := e.Metrics()
	defer reg.StartSpan(metrics.PhaseScan).End()
	var out []string
	for _, rid := range v.rids {
		data, err := v.clobs.Get(ctx, rid)
		if err != nil {
			return nil, err
		}
		if !xquery.ContainsWord(string(data), word) {
			continue
		}
		parseSpan := reg.StartSpan(metrics.PhaseParse)
		parsed, err := xmldom.Parse(data)
		parseSpan.End()
		if err != nil {
			return nil, err
		}
		if item, ok := extract(parsed.Root()); ok {
			out = append(out, item)
		}
	}
	return out, nil
}

// ColdReset implements core.Engine. It quiesces: in-flight queries
// finish before the pool is dropped, and queries submitted during the
// reset wait for it.
func (e *Engine) ColdReset() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.p.ColdReset()
}

// PageIO implements core.Engine. Lock-free: safe concurrently with
// Execute.
func (e *Engine) PageIO() int64 { return e.p.Stats().IO() }

// Close implements core.Engine: dirty pages are flushed best-effort and
// the pager's file handles and pool are released. Double-Close is safe.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.snap.Publish(e.p.SnapshotEpoch(), nil)
	e.db = nil
	e.names = nil
	e.rids = nil
	return e.p.Close()
}

// The update workload (U1-U3) below follows the journal-first protocol:
// validate, journal + sync (the commit point), then apply. Applying a
// replace or delete regenerates the side tables for the document — the
// dxx_seqno columns are renumbered from the new content — and the old
// CLOB bytes are abandoned until the next full load, like a vacuum-less
// store. After a crash, RecoverUpdates reloads and re-applies the
// committed journal.

// InsertDocument implements core.Engine (U1: CLOB row + side-table rows).
func (e *Engine) InsertDocument(ctx context.Context, name string, data []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	if e.db == nil {
		return fmt.Errorf("xcolumn: InsertDocument before Load")
	}
	parsed, err := xmldom.Parse(data)
	if err != nil {
		return fmt.Errorf("xcolumn: insert %s: %w", name, err)
	}
	if _, exists := e.names[name]; exists {
		return fmt.Errorf("xcolumn: insert %s: document already exists", name)
	}
	e.p.BeginMutation()
	if err := e.journal.Append(updatelog.Record{Kind: updatelog.KindInsert, Name: name, Data: data}); err != nil {
		return err
	}
	if err := e.applyInsert(name, data, parsed); err != nil {
		return err
	}
	return e.publishLocked(e.p.EndMutation())
}

// ReplaceDocument implements core.Engine (U2: upsert; side-table rows are
// regenerated, renumbering dxx_seqno from the new content).
func (e *Engine) ReplaceDocument(ctx context.Context, name string, data []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	if e.db == nil {
		return fmt.Errorf("xcolumn: ReplaceDocument before Load")
	}
	parsed, err := xmldom.Parse(data)
	if err != nil {
		return fmt.Errorf("xcolumn: replace %s: %w", name, err)
	}
	e.p.BeginMutation()
	if err := e.journal.Append(updatelog.Record{Kind: updatelog.KindReplace, Name: name, Data: data}); err != nil {
		return err
	}
	if _, exists := e.names[name]; exists {
		if err := e.applyDelete(ctx, name); err != nil {
			return err
		}
	}
	if err := e.applyInsert(name, data, parsed); err != nil {
		return err
	}
	return e.publishLocked(e.p.EndMutation())
}

// DeleteDocument implements core.Engine (U3: drop the CLOB reference and
// cascade to every side table).
func (e *Engine) DeleteDocument(ctx context.Context, name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	if e.db == nil {
		return fmt.Errorf("xcolumn: DeleteDocument before Load")
	}
	if _, exists := e.names[name]; !exists {
		return fmt.Errorf("xcolumn: document %q not found", name)
	}
	e.p.BeginMutation()
	if err := e.journal.Append(updatelog.Record{Kind: updatelog.KindDelete, Name: name}); err != nil {
		return err
	}
	if err := e.applyDelete(ctx, name); err != nil {
		return err
	}
	return e.publishLocked(e.p.EndMutation())
}

// RecoverUpdates restores the store after a crash. Call pager Recover
// first; RecoverUpdates then reloads db and re-applies the committed
// update journal in order. Rebuild side-table indexes with BuildIndexes.
func (e *Engine) RecoverUpdates(ctx context.Context, db *core.Database) error {
	return updatelog.Replay(ctx, e, e.journal, db)
}

// applyInsert stores the CLOB and regenerates side-table rows. Caller
// holds the write lock and has journaled the update.
func (e *Engine) applyInsert(name string, data []byte, parsed *xmldom.Node) error {
	rid, err := e.clobs.Insert(data)
	if err != nil {
		return err
	}
	e.rids = append(e.rids, rid)
	e.names[name] = rid
	if _, err := e.populateSideTables(strconv.FormatUint(uint64(rid), 10), parsed); err != nil {
		return err
	}
	if err := e.clobs.Sync(); err != nil {
		return err
	}
	for _, tn := range e.db.TableNames() {
		if err := e.db.Table(tn).Flush(); err != nil {
			return err
		}
	}
	return e.p.SyncAll()
}

// applyDelete removes the document's side-table rows (every side table
// carries a doc reference column) and forgets its CLOB. Caller holds the
// write lock and has journaled the update.
func (e *Engine) applyDelete(ctx context.Context, name string) error {
	rid := e.names[name]
	ref := strconv.FormatUint(uint64(rid), 10)
	for _, tn := range e.db.TableNames() {
		if _, err := e.db.Table(tn).DeleteWhere(ctx, "doc", ref); err != nil {
			return err
		}
	}
	delete(e.names, name)
	// Copy-on-write: the previous slice may still back a published
	// snapshot view, so never shift it in place.
	rids := make([]pager.RID, 0, len(e.rids))
	for _, r := range e.rids {
		if r != rid {
			rids = append(rids, r)
		}
	}
	e.rids = rids
	return e.p.SyncAll()
}

var _ core.Engine = (*Engine)(nil)
