package xcolumn

import (
	"context"
	"testing"

	"xbench/internal/core"
	"xbench/internal/gen"
)

// TestLoadAtomicOnFailure: a malformed document mid-load must leave an
// empty, loadable database.
func TestLoadAtomicOnFailure(t *testing.T) {
	cfg := gen.Config{Articles: 5}
	db, err := cfg.Generate(core.TCMD, core.Small)
	if err != nil {
		t.Fatal(err)
	}
	e := New(64)
	broken := *db
	broken.Docs = append([]core.Doc(nil), db.Docs...)
	broken.Docs[2] = core.Doc{Name: "bad.xml", Data: []byte("<open>no close")}
	if _, err := e.Load(context.Background(), &broken); err == nil {
		t.Fatal("load of malformed database succeeded")
	}
	if e.db != nil || len(e.rids) != 0 || e.clobs.Count() != 0 {
		t.Fatalf("failed load left state: db=%v rids=%d clobs=%d", e.db != nil, len(e.rids), e.clobs.Count())
	}
	st, err := e.Load(context.Background(), db)
	if err != nil {
		t.Fatal(err)
	}
	if st.Documents != len(db.Docs) || e.clobs.Count() != len(db.Docs) {
		t.Fatalf("reload stored %d/%d documents", e.clobs.Count(), len(db.Docs))
	}
}
