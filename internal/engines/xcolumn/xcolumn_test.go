package xcolumn

import (
	"context"
	"errors"
	"strings"
	"testing"

	"xbench/internal/core"
	"xbench/internal/gen"
	"xbench/internal/queries"
)

func loadTiny(t *testing.T, class core.Class) *Engine {
	t.Helper()
	cfg := gen.Config{Articles: 5, Orders: 30, Items: 20}
	db, err := cfg.Generate(class, core.Small)
	if err != nil {
		t.Fatal(err)
	}
	e := New(0)
	if _, err := e.Load(context.Background(), db); err != nil {
		t.Fatal(err)
	}
	if err := e.BuildIndexes(queries.Indexes(class)); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRejectsSingleDocumentClasses(t *testing.T) {
	e := New(0)
	for _, class := range []core.Class{core.TCSD, core.DCSD} {
		if err := e.Supports(class, core.Small); !errors.Is(err, core.ErrUnsupported) {
			t.Errorf("Supports(%s) = %v, want ErrUnsupported", class, err)
		}
		db := &core.Database{Class: class, Size: core.Small}
		if _, err := e.Load(context.Background(), db); !errors.Is(err, core.ErrUnsupported) {
			t.Errorf("Load(%s) = %v, want ErrUnsupported", class, err)
		}
	}
}

func TestQ12ReturnsIntactFragment(t *testing.T) {
	e := loadTiny(t, core.DCMD)
	res, err := e.Execute(context.Background(), core.Q12, core.Params{"X": "O1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 1 || !strings.HasPrefix(res.Items[0], "<cc_xacts>") {
		t.Fatalf("Q12 = %v", res.Items)
	}
	if !res.OrderGuaranteed {
		t.Fatal("Xcolumn preserves order via dxx_seqno and intact CLOBs")
	}
}

func TestQ5UsesDocumentOrder(t *testing.T) {
	e := loadTiny(t, core.DCMD)
	res, err := e.Execute(context.Background(), core.Q5, core.Params{"X": "O1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 1 || !strings.HasPrefix(res.Items[0], "<order_line>") {
		t.Fatalf("Q5 = %v", res.Items)
	}
}

func TestQ16ReturnsWholeDocument(t *testing.T) {
	e := loadTiny(t, core.DCMD)
	res, err := e.Execute(context.Background(), core.Q16, core.Params{"X": "O1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 1 || !strings.HasPrefix(res.Items[0], `<order id="O1">`) {
		t.Fatalf("Q16 = %.80s", res.Items[0])
	}
}

func TestTCMDQueries(t *testing.T) {
	e := loadTiny(t, core.TCMD)
	res, err := e.Execute(context.Background(), core.Q1, core.Params{"X": "a2"})
	if err != nil || len(res.Items) != 1 {
		t.Fatalf("Q1: %v %v", res.Items, err)
	}
	res, err = e.Execute(context.Background(), core.Q8, core.Params{"X": "a2"})
	if err != nil || len(res.Items) == 0 {
		t.Fatalf("Q8: %v %v", res.Items, err)
	}
	for _, it := range res.Items {
		if !strings.HasPrefix(it, "<heading>") {
			t.Fatalf("Q8 item %q", it)
		}
	}
}

func TestQ17ScansAllCLOBs(t *testing.T) {
	e := loadTiny(t, core.TCMD)
	e.ColdReset()
	res, err := e.Execute(context.Background(), core.Q17, core.Params{"W2": "system"})
	if err != nil {
		t.Fatal(err)
	}
	// Scanning every CLOB must read essentially the whole database.
	if res.PageIO == 0 {
		t.Fatal("CLOB scan performed no I/O")
	}
}

func TestUndefinedQuery(t *testing.T) {
	e := loadTiny(t, core.DCMD)
	if _, err := e.Execute(context.Background(), core.Q20, nil); !errors.Is(err, core.ErrNoQuery) {
		t.Fatalf("want ErrNoQuery, got %v", err)
	}
}
