package xcollection

import (
	"context"
	"testing"

	"xbench/internal/core"
	"xbench/internal/gen"
)

// TestLoadAtomicOnFailure: a malformed document mid-load must leave an
// empty, loadable database.
func TestLoadAtomicOnFailure(t *testing.T) {
	cfg := gen.Config{Orders: 20}
	db, err := cfg.Generate(core.DCMD, core.Small)
	if err != nil {
		t.Fatal(err)
	}
	e := New(64, 0)
	broken := *db
	broken.Docs = append([]core.Doc(nil), db.Docs...)
	broken.Docs[3] = core.Doc{Name: "bad.xml", Data: []byte("<open>no close")}
	if _, err := e.Load(context.Background(), &broken); err == nil {
		t.Fatal("load of malformed database succeeded")
	}
	if e.store != nil {
		t.Fatal("failed load left a store behind")
	}
	st, err := e.Load(context.Background(), db)
	if err != nil {
		t.Fatal(err)
	}
	if st.Documents != len(db.Docs) {
		t.Fatalf("reload stored %d/%d documents", st.Documents, len(db.Docs))
	}
}

// TestLoadAtomicOnRowLimit: the decomposition row limit fires after rows
// were already inserted for earlier documents; the abort must truncate
// them.
func TestLoadAtomicOnRowLimit(t *testing.T) {
	cfg := gen.Config{Orders: 20}
	db, err := cfg.Generate(core.DCMD, core.Small)
	if err != nil {
		t.Fatal(err)
	}
	e := New(64, 1) // every real document decomposes into >1 row
	if _, err := e.Load(context.Background(), db); err == nil {
		t.Fatal("load under rowLimit=1 succeeded")
	}
	if e.store != nil {
		t.Fatal("failed load left a store behind")
	}
	// The same engine with the limit lifted loads cleanly.
	e.rowLimit = DefaultRowLimit
	if _, err := e.Load(context.Background(), db); err != nil {
		t.Fatal(err)
	}
}
