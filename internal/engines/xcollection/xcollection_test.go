package xcollection

import (
	"context"
	"errors"
	"strings"
	"testing"

	"xbench/internal/core"
	"xbench/internal/gen"
	"xbench/internal/queries"
)

func loadTiny(t *testing.T, class core.Class) *Engine {
	t.Helper()
	cfg := gen.Config{DictEntries: 30, Articles: 5, Items: 20, Orders: 30}
	db, err := cfg.Generate(class, core.Small)
	if err != nil {
		t.Fatal(err)
	}
	e := New(0, 0)
	if _, err := e.Load(context.Background(), db); err != nil {
		t.Fatal(err)
	}
	if err := e.BuildIndexes(queries.Indexes(class)); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSupportMatrix(t *testing.T) {
	e := New(0, 0)
	if err := e.Supports(core.TCSD, core.Normal); !errors.Is(err, core.ErrUnsupported) {
		t.Fatal("TC/SD Normal should exceed the decomposition row limit")
	}
	if err := e.Supports(core.DCMD, core.Large); err != nil {
		t.Fatalf("DC/MD Large should load: %v", err)
	}
}

func TestLoadRejectsUnsupported(t *testing.T) {
	cfg := gen.Config{DictEntries: 10}
	db, err := cfg.Generate(core.TCSD, core.Normal)
	if err != nil {
		t.Fatal(err)
	}
	e := New(0, 0)
	if _, err := e.Load(context.Background(), db); !errors.Is(err, core.ErrUnsupported) {
		t.Fatalf("Load accepted unsupported combination: %v", err)
	}
}

func TestAutoKeyIndexesBuilt(t *testing.T) {
	e := loadTiny(t, core.DCMD)
	for _, tc := range []struct{ table, col string }{
		{"order_tab", "id"},
		{"order_line_tab", "order_id"},
		{"customer_tab", "id"},
	} {
		if !e.Store().DB.Table(tc.table).HasIndex(tc.col) {
			t.Errorf("%s.%s not auto-indexed during bulk load", tc.table, tc.col)
		}
	}
}

func TestExecuteBeforeLoadFails(t *testing.T) {
	e := New(0, 0)
	if _, err := e.Execute(context.Background(), core.Q5, nil); err == nil {
		t.Fatal("Execute before Load succeeded")
	}
	if err := e.BuildIndexes(nil); err == nil {
		t.Fatal("BuildIndexes before Load succeeded")
	}
}

func TestTargetColumnMapping(t *testing.T) {
	cases := []struct {
		class  core.Class
		target string
		table  string
		ok     bool
	}{
		{core.TCSD, "hw", "entry_tab", true},
		{core.TCMD, "article/@id", "article_tab", true},
		{core.DCSD, "item/@id", "item_tab", true},
		{core.DCSD, "date_of_release", "item_tab", true},
		{core.DCMD, "order/@id", "order_tab", true},
		{core.DCMD, "bogus", "", false},
	}
	for _, c := range cases {
		table, _, ok := TargetColumn(c.class, c.target)
		if ok != c.ok || table != c.table {
			t.Errorf("TargetColumn(%s, %s) = %s, %v", c.class, c.target, table, ok)
		}
	}
}

func TestQ5FlagsOrder(t *testing.T) {
	e := loadTiny(t, core.DCMD)
	res, err := e.Execute(context.Background(), core.Q5, core.Params{"X": "O1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 1 || !strings.HasPrefix(res.Items[0], "<order_line>") {
		t.Fatalf("Q5 = %v", res.Items)
	}
	if res.OrderGuaranteed {
		t.Fatal("shredded Q5 must not guarantee order")
	}
}
