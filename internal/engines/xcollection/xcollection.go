// Package xcollection implements the DB2 XML Extender "XML collection"
// analog: documents are shredded into relational tables according to a
// DAD-style mapping, primary/foreign-key indexes are created automatically
// during bulk loading, and queries run as hand-translated relational plans.
//
// Modeled limitations from the paper:
//
//   - No document-order columns: ordered access and reconstruction are
//     only accidentally correct (§3.2.2).
//   - The 1024-row decomposition limit per document (§3.1.3 item 5),
//     scaled to this reproduction's database sizes, rejects Normal and
//     Large single-document databases; only SD/Small loads.
package xcollection

import (
	"context"
	"fmt"
	"sync"

	"xbench/internal/core"
	"xbench/internal/engines/shredplan"
	"xbench/internal/metrics"
	"xbench/internal/pager"
	"xbench/internal/relational"
	"xbench/internal/shredder"
	"xbench/internal/xmldom"
)

// DefaultRowLimit is the decomposition row limit per document, modeling
// DB2's 1024-row limit (§3.1.3 item 5). The class/size support matrix the
// paper observed — single-document databases load only at Small — is
// enforced directly by Supports; this mechanism backs it up and is
// configurable for tests, with a default high enough that the paper-valid
// combinations (including the DC/MD flat documents at Large) still load.
const DefaultRowLimit = 1 << 17

// Engine is an Xcollection instance. Execute is safe from many
// goroutines against a loaded store; Load, BuildIndexes and ColdReset
// take the write lock, excluding (and quiescing) queries.
type Engine struct {
	mu       sync.RWMutex
	p        *pager.Pager
	store    *shredder.Store
	rowLimit int
}

// New returns an empty engine. rowLimit <= 0 selects DefaultRowLimit.
func New(poolPages, rowLimit int) *Engine {
	if rowLimit <= 0 {
		rowLimit = DefaultRowLimit
	}
	p := pager.New(poolPages)
	p.SetMetrics(metrics.NewRegistry())
	return &Engine{p: p, rowLimit: rowLimit}
}

// Name implements core.Engine.
func (e *Engine) Name() string { return "Xcollection" }

// Supports implements core.Engine: single-document classes only fit at
// Small due to the decomposition row limit (paper Tables 4-9 leave those
// cells blank).
func (e *Engine) Supports(c core.Class, s core.Size) error {
	if c.SingleDocument() && s != core.Small {
		return fmt.Errorf("xcollection: %s %s: document decomposition exceeds the row limit: %w",
			c, s, core.ErrUnsupported)
	}
	return nil
}

// Pager exposes the engine's pager for fault injection and recovery.
func (e *Engine) Pager() *pager.Pager { return e.p }

// Metrics returns the engine's metrics registry, shared by its pager,
// shredded-table indexes and query path.
func (e *Engine) Metrics() *metrics.Registry { return e.p.Metrics() }

// reset empties the store so Load is idempotent.
func (e *Engine) reset() error {
	if e.store != nil {
		if err := e.store.Truncate(); err != nil {
			return err
		}
		e.store = nil
	}
	return nil
}

// abortLoad truncates the store after a non-crash mid-load failure so the
// database stays empty and loadable; crash errors pass through (pager
// recovery is the only path forward).
func (e *Engine) abortLoad(err error) error {
	if pager.IsCrash(err) {
		return err
	}
	_ = e.reset()
	return err
}

// Load implements core.Engine. A failed load leaves an empty, loadable
// database.
func (e *Engine) Load(ctx context.Context, db *core.Database) (core.LoadStats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var st core.LoadStats
	if err := e.Supports(db.Class, db.Size); err != nil {
		return st, err
	}
	if err := e.reset(); err != nil {
		return st, err
	}
	st, err := e.loadDocs(ctx, db)
	if err != nil {
		return st, e.abortLoad(err)
	}
	return st, nil
}

func (e *Engine) loadDocs(ctx context.Context, db *core.Database) (core.LoadStats, error) {
	var st core.LoadStats
	start := e.p.Stats()
	rdb := relational.NewDB(e.p)
	e.store = shredder.NewStore(db.Class, rdb, shredder.Options{
		RowLimitPerDoc:   e.rowLimit,
		FlushPerDocument: true,
	})
	for _, d := range db.Docs {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		doc, err := xmldom.Parse(d.Data)
		if err != nil {
			return st, fmt.Errorf("xcollection: %s: %w", d.Name, err)
		}
		rows, err := e.store.ShredDocument(d.Name, doc)
		if err != nil {
			return st, err
		}
		st.Documents++
		st.Rows += rows
		st.Bytes += len(d.Data)
	}
	if err := e.store.Sync(); err != nil {
		return st, err
	}
	// Primary/foreign-key indexes are created automatically during bulk
	// loading (paper §2.2 experimental setup), so their cost lands in the
	// load time, as it did for DB2 and SQL Server in Table 4.
	if err := autoKeyIndexes(e.store); err != nil {
		return st, err
	}
	if err := e.p.SyncAll(); err != nil {
		return st, err
	}
	st.SkippedMixed = e.store.SkippedMixed
	st.PageIO = e.p.Stats().IO() - start.IO()
	return st, nil
}

// autoKeyIndexes builds the PK/FK indexes a relational DBMS creates during
// bulk load: every column named "id" or suffixed "_id".
func autoKeyIndexes(s *shredder.Store) error {
	for _, name := range s.DB.TableNames() {
		t := s.DB.Table(name)
		for _, col := range t.Cols {
			if col == "id" || hasSuffix(col, "_id") {
				if err := t.CreateIndex(col); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}

// BuildIndexes implements core.Engine: map Table 3 targets onto shredded
// table columns.
func (e *Engine) BuildIndexes(specs []core.IndexSpec) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.store == nil {
		return fmt.Errorf("xcollection: BuildIndexes before Load")
	}
	for _, spec := range specs {
		table, col, ok := TargetColumn(e.store.Class, spec.Target)
		if !ok {
			continue
		}
		if err := e.store.DB.Table(table).CreateIndex(col); err != nil {
			return err
		}
	}
	return e.p.SyncAll()
}

// TargetColumn maps a Table 3 index target to the shredded (table, column)
// it lands on. Shared with the SQL Server engine.
func TargetColumn(class core.Class, target string) (table, col string, ok bool) {
	switch class {
	case core.TCSD:
		if target == "hw" {
			return "entry_tab", "hw", true
		}
	case core.TCMD:
		if target == "article/@id" {
			return "article_tab", "id", true
		}
	case core.DCSD:
		switch target {
		case "item/@id":
			return "item_tab", "id", true
		case "date_of_release":
			return "item_tab", "date_of_release", true
		}
	case core.DCMD:
		if target == "order/@id" {
			return "order_tab", "id", true
		}
	}
	return "", "", false
}

// Execute implements core.Engine. It is safe to call from many
// goroutines; cancellation via ctx is honored at page-fetch granularity.
func (e *Engine) Execute(ctx context.Context, q core.QueryID, p core.Params) (core.Result, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.store == nil {
		return core.Result{}, fmt.Errorf("xcollection: Execute before Load")
	}
	before := e.p.Stats()
	planSpan := e.Metrics().StartSpan(metrics.PhasePlan)
	res, err := shredplan.Execute(ctx, e.store, q, p)
	planSpan.End()
	if err != nil {
		return core.Result{}, err
	}
	res.PageIO = e.p.Stats().IO() - before.IO()
	return res, nil
}

// ColdReset implements core.Engine. It quiesces: in-flight queries
// finish before the pool is dropped, and queries submitted during the
// reset wait for it.
func (e *Engine) ColdReset() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.p.ColdReset()
}

// PageIO implements core.Engine. Lock-free: safe concurrently with
// Execute.
func (e *Engine) PageIO() int64 { return e.p.Stats().IO() }

// Close implements core.Engine.
func (e *Engine) Close() error { return nil }

// Store exposes the shredded store for tests.
func (e *Engine) Store() *shredder.Store { return e.store }

var _ core.Engine = (*Engine)(nil)
