// Package xcollection implements the DB2 XML Extender "XML collection"
// analog: documents are shredded into relational tables according to a
// DAD-style mapping, primary/foreign-key indexes are created automatically
// during bulk loading, and queries run as hand-translated relational plans.
//
// Modeled limitations from the paper:
//
//   - No document-order columns: ordered access and reconstruction are
//     only accidentally correct (§3.2.2).
//   - The 1024-row decomposition limit per document (§3.1.3 item 5),
//     scaled to this reproduction's database sizes, rejects Normal and
//     Large single-document databases; only SD/Small loads.
package xcollection

import (
	"context"
	"fmt"
	"sync"

	"xbench/internal/core"
	"xbench/internal/engines/engsnap"
	"xbench/internal/engines/shredplan"
	"xbench/internal/metrics"
	"xbench/internal/pager"
	"xbench/internal/relational"
	"xbench/internal/shredder"
	"xbench/internal/updatelog"
	"xbench/internal/xmldom"
)

// DefaultRowLimit is the decomposition row limit per document, modeling
// DB2's 1024-row limit (§3.1.3 item 5). The class/size support matrix the
// paper observed — single-document databases load only at Small — is
// enforced directly by Supports; this mechanism backs it up and is
// configurable for tests, with a default high enough that the paper-valid
// combinations (including the DC/MD flat documents at Large) still load.
const DefaultRowLimit = 1 << 17

// Engine is an Xcollection instance. Execute is safe from many
// goroutines against a loaded store; Load, BuildIndexes and ColdReset
// take the write lock, excluding (and quiescing) queries.
type Engine struct {
	mu       sync.RWMutex
	p        *pager.Pager
	store    *shredder.Store
	rowLimit int
	docIDs   map[string]string // document name -> unit-document root id
	journal  *updatelog.Log    // logical redo journal for U1-U3
	snap     engsnap.Published // MVCC snapshot state for lock-free reads
}

// New returns an empty engine. rowLimit <= 0 selects DefaultRowLimit.
func New(poolPages, rowLimit int) *Engine {
	if rowLimit <= 0 {
		rowLimit = DefaultRowLimit
	}
	p := pager.New(poolPages)
	p.SetMetrics(metrics.NewRegistry())
	e := &Engine{p: p, rowLimit: rowLimit, journal: updatelog.New(p, "updates")}
	e.snap.SetEnabled(true)
	p.StartGC(engsnap.GCInterval)
	return e
}

// SetSnapshots toggles MVCC snapshot reads (default on). Disabled,
// Execute falls back to the engine read latch and quiesces behind
// writers — the pre-MVCC baseline the update-fraction sweep compares
// against.
func (e *Engine) SetSnapshots(on bool) { e.snap.SetEnabled(on) }

// SnapshotsEnabled reports whether snapshot reads are on.
func (e *Engine) SnapshotsEnabled() bool { return e.snap.Enabled() }

// publishLocked snapshots the store at epoch and publishes it for
// snapshot readers. The caller holds the write lock and has synced the
// store, so the snapshot's views freeze without flushing anything.
func (e *Engine) publishLocked(epoch uint64) error {
	if e.store == nil {
		e.snap.Publish(epoch, nil)
		return nil
	}
	s, err := e.store.Snapshot(epoch)
	if err != nil {
		e.snap.Publish(epoch, nil)
		return err
	}
	e.snap.Publish(epoch, s)
	return nil
}

// Name implements core.Engine.
func (e *Engine) Name() string { return "Xcollection" }

// Supports implements core.Engine: single-document classes only fit at
// Small due to the decomposition row limit (paper Tables 4-9 leave those
// cells blank).
func (e *Engine) Supports(c core.Class, s core.Size) error {
	if c.SingleDocument() && s != core.Small {
		return fmt.Errorf("xcollection: %s %s: document decomposition exceeds the row limit: %w",
			c, s, core.ErrUnsupported)
	}
	return nil
}

// Pager exposes the engine's pager for fault injection and recovery.
func (e *Engine) Pager() *pager.Pager { return e.p }

// Metrics returns the engine's metrics registry, shared by its pager,
// shredded-table indexes and query path.
func (e *Engine) Metrics() *metrics.Registry { return e.p.Metrics() }

// reset empties the store so Load is idempotent. The published snapshot
// is withdrawn first so readers fall back to the locked path rather
// than chase views into truncated files.
func (e *Engine) reset() error {
	e.snap.Publish(e.p.SnapshotEpoch(), nil)
	e.docIDs = nil
	if err := e.journal.Reset(); err != nil {
		return err
	}
	if e.store != nil {
		if err := e.store.Truncate(); err != nil {
			return err
		}
		e.store = nil
	}
	return nil
}

// abortLoad truncates the store after a non-crash mid-load failure so the
// database stays empty and loadable; crash errors pass through (pager
// recovery is the only path forward).
func (e *Engine) abortLoad(err error) error {
	if pager.IsCrash(err) {
		return err
	}
	_ = e.reset()
	return err
}

// Load implements core.Engine. A failed load leaves an empty, loadable
// database. Load drains pinned snapshots before truncating: a reader
// holding a pre-load snapshot would otherwise race the wholesale
// truncate, whose pre-images are deliberately not versioned.
func (e *Engine) Load(ctx context.Context, db *core.Database) (core.LoadStats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var st core.LoadStats
	if err := e.Supports(db.Class, db.Size); err != nil {
		return st, err
	}
	e.p.BlockPins()
	defer e.p.UnblockPins()
	if err := e.reset(); err != nil {
		return st, err
	}
	st, err := e.loadDocs(ctx, db)
	if err != nil {
		return st, e.abortLoad(err)
	}
	if err := e.publishLocked(e.p.AdvanceEpoch()); err != nil {
		return st, e.abortLoad(err)
	}
	return st, nil
}

func (e *Engine) loadDocs(ctx context.Context, db *core.Database) (core.LoadStats, error) {
	var st core.LoadStats
	start := e.p.Stats()
	e.docIDs = make(map[string]string, len(db.Docs))
	rdb := relational.NewDB(e.p)
	e.store = shredder.NewStore(db.Class, rdb, shredder.Options{
		RowLimitPerDoc:   e.rowLimit,
		FlushPerDocument: true,
	})
	for _, d := range db.Docs {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		doc, err := xmldom.Parse(d.Data)
		if err != nil {
			return st, fmt.Errorf("xcollection: %s: %w", d.Name, err)
		}
		rows, err := e.store.ShredDocument(d.Name, doc)
		if err != nil {
			return st, err
		}
		if id, ok := shredder.UnitDocID(db.Class, doc); ok {
			e.docIDs[d.Name] = id
		}
		st.Documents++
		st.Rows += rows
		st.Bytes += len(d.Data)
	}
	if err := e.store.Sync(); err != nil {
		return st, err
	}
	// Primary/foreign-key indexes are created automatically during bulk
	// loading (paper §2.2 experimental setup), so their cost lands in the
	// load time, as it did for DB2 and SQL Server in Table 4.
	if err := autoKeyIndexes(e.store); err != nil {
		return st, err
	}
	if err := e.p.SyncAll(); err != nil {
		return st, err
	}
	st.SkippedMixed = e.store.SkippedMixed
	st.PageIO = e.p.Stats().IO() - start.IO()
	return st, nil
}

// autoKeyIndexes builds the PK/FK indexes a relational DBMS creates during
// bulk load: every column named "id" or suffixed "_id".
func autoKeyIndexes(s *shredder.Store) error {
	for _, name := range s.DB.TableNames() {
		t := s.DB.Table(name)
		for _, col := range t.Cols {
			if col == "id" || hasSuffix(col, "_id") {
				if err := t.CreateIndex(col); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}

// BuildIndexes implements core.Engine: map Table 3 targets onto shredded
// table columns.
func (e *Engine) BuildIndexes(specs []core.IndexSpec) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.store == nil {
		return fmt.Errorf("xcollection: BuildIndexes before Load")
	}
	e.p.BeginMutation()
	for _, spec := range specs {
		table, col, ok := TargetColumn(e.store.Class, spec.Target)
		if !ok {
			continue
		}
		if err := e.store.DB.Table(table).CreateIndex(col); err != nil {
			return err
		}
	}
	if err := e.p.SyncAll(); err != nil {
		return err
	}
	return e.publishLocked(e.p.EndMutation())
}

// TargetColumn maps a Table 3 index target to the shredded (table, column)
// it lands on. Shared with the SQL Server engine.
//
// Deprecated: the mapping moved to shredder.TargetColumn so the planner
// layer can reach it; this alias stays for callers of the old API.
func TargetColumn(class core.Class, target string) (table, col string, ok bool) {
	return shredder.TargetColumn(class, target)
}

// Execute implements core.Engine. It is safe to call from many
// goroutines; cancellation via ctx is honored at page-fetch granularity.
// With snapshots on (the default), a query pins a commit epoch and runs
// against the published snapshot store without touching the engine write
// lock, so U1-U3 updates never stall it; otherwise it quiesces under
// the read latch as before.
func (e *Engine) Execute(ctx context.Context, q core.QueryID, p core.Params) (core.Result, error) {
	if snap, st, ok := e.snap.Pin(e.p); ok {
		defer snap.Release()
		return e.run(ctx, st.(*shredder.Store), q, p)
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.store == nil {
		return core.Result{}, fmt.Errorf("xcollection: Execute before Load")
	}
	return e.run(ctx, e.store, q, p)
}

// run executes q against st, which is either the live store (caller
// holds the read latch) or a pinned snapshot store (lock-free).
func (e *Engine) run(ctx context.Context, st *shredder.Store, q core.QueryID, p core.Params) (core.Result, error) {
	before := e.p.Stats()
	planSpan := e.Metrics().StartSpan(metrics.PhasePlan)
	res, err := shredplan.Execute(ctx, st, q, p)
	planSpan.End()
	if err != nil {
		return core.Result{}, err
	}
	res.PageIO = e.p.Stats().IO() - before.IO()
	return res, nil
}

// Explain implements core.Explainer: the costed physical plan for q
// over the shredded store's live statistics.
func (e *Engine) Explain(_ context.Context, q core.QueryID, _ core.Params) (*core.PlanNode, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.store == nil {
		return nil, fmt.Errorf("xcollection: Explain before Load")
	}
	ph, err := shredplan.Physical(e.store, q)
	if err != nil {
		return nil, err
	}
	return ph.Root, nil
}

var _ core.Explainer = (*Engine)(nil)

// ColdReset implements core.Engine. It quiesces: in-flight queries
// finish before the pool is dropped, and queries submitted during the
// reset wait for it.
func (e *Engine) ColdReset() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.p.ColdReset()
}

// PageIO implements core.Engine. Lock-free: safe concurrently with
// Execute.
func (e *Engine) PageIO() int64 { return e.p.Stats().IO() }

// Close implements core.Engine: dirty pages are flushed best-effort and
// the pager's file handles and pool are released. Double-Close is safe.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.snap.Publish(e.p.SnapshotEpoch(), nil)
	e.store = nil
	e.docIDs = nil
	return e.p.Close()
}

// The update workload (U1-U3) below follows the journal-first protocol:
// validate, journal + sync (the commit point), then apply the shred-table
// cascade. Only unit documents — whole <order> (DC/MD) / <article>
// (TC/MD) files — can be updated: those shred into rows keyed by their
// root id, so document-granularity delete is a clean relational cascade
// (shredder.DeleteDocumentRows). After a crash, RecoverUpdates reloads
// and re-applies the committed journal.
//
// Each update also runs inside a pager mutation bracket: every page it
// overwrites is versioned with its pre-image at the next commit epoch,
// so pinned snapshot readers keep the pre-update state, and EndMutation
// followed by publishLocked makes the update visible to new readers.

// InsertDocument implements core.Engine (U1: shred-table insert).
func (e *Engine) InsertDocument(ctx context.Context, name string, data []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	doc, id, err := e.updateTarget(name, data)
	if err != nil {
		return err
	}
	if _, exists := e.docIDs[name]; exists {
		return fmt.Errorf("xcollection: insert %s: document already exists", name)
	}
	e.p.BeginMutation()
	if err := e.journal.Append(updatelog.Record{Kind: updatelog.KindInsert, Name: name, Data: data}); err != nil {
		return err
	}
	if err := e.applyInsert(name, id, doc); err != nil {
		return err
	}
	return e.publishLocked(e.p.EndMutation())
}

// ReplaceDocument implements core.Engine (U2: upsert — delete the old
// document's rows, then shred the new content).
func (e *Engine) ReplaceDocument(ctx context.Context, name string, data []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	doc, id, err := e.updateTarget(name, data)
	if err != nil {
		return err
	}
	e.p.BeginMutation()
	if err := e.journal.Append(updatelog.Record{Kind: updatelog.KindReplace, Name: name, Data: data}); err != nil {
		return err
	}
	if old, exists := e.docIDs[name]; exists {
		if _, err := e.store.DeleteDocumentRows(ctx, old); err != nil {
			return err
		}
		delete(e.docIDs, name)
	}
	if err := e.applyInsert(name, id, doc); err != nil {
		return err
	}
	return e.publishLocked(e.p.EndMutation())
}

// DeleteDocument implements core.Engine (U3: shred-table delete cascade
// keyed by the document's root id).
func (e *Engine) DeleteDocument(ctx context.Context, name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	if e.store == nil {
		return fmt.Errorf("xcollection: DeleteDocument before Load")
	}
	id, exists := e.docIDs[name]
	if !exists {
		return fmt.Errorf("xcollection: document %q not found", name)
	}
	e.p.BeginMutation()
	if err := e.journal.Append(updatelog.Record{Kind: updatelog.KindDelete, Name: name}); err != nil {
		return err
	}
	if _, err := e.store.DeleteDocumentRows(ctx, id); err != nil {
		return err
	}
	delete(e.docIDs, name)
	return e.publishLocked(e.p.EndMutation())
}

// RecoverUpdates restores the store after a crash. Call pager Recover
// first; RecoverUpdates then reloads db and re-applies the committed
// update journal in order. Rebuild Table 3 indexes with BuildIndexes.
func (e *Engine) RecoverUpdates(ctx context.Context, db *core.Database) error {
	return updatelog.Replay(ctx, e, e.journal, db)
}

// updateTarget validates an update payload: the store must be loaded and
// the document must be a unit document of the loaded class.
func (e *Engine) updateTarget(name string, data []byte) (*xmldom.Node, string, error) {
	if e.store == nil {
		return nil, "", fmt.Errorf("xcollection: update before Load")
	}
	doc, err := xmldom.Parse(data)
	if err != nil {
		return nil, "", fmt.Errorf("xcollection: update %s: %w", name, err)
	}
	id, ok := shredder.UnitDocID(e.store.Class, doc)
	if !ok {
		return nil, "", fmt.Errorf("xcollection: update %s: not a unit document of %s: %w",
			name, e.store.Class, core.ErrUnsupported)
	}
	return doc, id, nil
}

// applyInsert shreds the document (which syncs per document) and records
// its root id. Caller holds the write lock and has journaled the update.
func (e *Engine) applyInsert(name, id string, doc *xmldom.Node) error {
	if _, err := e.store.ShredDocument(name, doc); err != nil {
		return err
	}
	e.docIDs[name] = id
	return nil
}

// Store exposes the shredded store for tests.
func (e *Engine) Store() *shredder.Store { return e.store }

var _ core.Engine = (*Engine)(nil)
