package sqlserver

import (
	"context"
	"testing"

	"xbench/internal/core"
	"xbench/internal/gen"
)

// TestLoadAtomicOnFailure: a malformed document mid-load must leave an
// empty, loadable database.
func TestLoadAtomicOnFailure(t *testing.T) {
	cfg := gen.Config{Orders: 20}
	db, err := cfg.Generate(core.DCMD, core.Small)
	if err != nil {
		t.Fatal(err)
	}
	e := New(64)
	broken := *db
	broken.Docs = append([]core.Doc(nil), db.Docs...)
	broken.Docs[3] = core.Doc{Name: "bad.xml", Data: []byte("<open>no close")}
	if _, err := e.Load(context.Background(), &broken); err == nil {
		t.Fatal("load of malformed database succeeded")
	}
	if e.Store() != nil {
		t.Fatal("failed load left a store behind")
	}
	st, err := e.Load(context.Background(), db)
	if err != nil {
		t.Fatal(err)
	}
	if st.Documents != len(db.Docs) {
		t.Fatalf("reload stored %d/%d documents", st.Documents, len(db.Docs))
	}
}
