package sqlserver

import (
	"context"
	"strings"
	"testing"

	"xbench/internal/core"
	"xbench/internal/gen"
	"xbench/internal/queries"
)

func loadTiny(t *testing.T, class core.Class) *Engine {
	t.Helper()
	cfg := gen.Config{DictEntries: 30, Articles: 5, Items: 20, Orders: 30}
	db, err := cfg.Generate(class, core.Small)
	if err != nil {
		t.Fatal(err)
	}
	e := New(0)
	if _, err := e.Load(context.Background(), db); err != nil {
		t.Fatal(err)
	}
	if err := e.BuildIndexes(queries.Indexes(class)); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSupportsEverything(t *testing.T) {
	e := New(0)
	for _, class := range core.Classes {
		for _, size := range core.Sizes {
			if err := e.Supports(class, size); err != nil {
				t.Errorf("SQL Server should support %s %s: %v", class, size, err)
			}
		}
	}
}

func TestMixedContentDroppedDuringLoad(t *testing.T) {
	cfg := gen.Config{DictEntries: 30}
	db, err := cfg.Generate(core.TCSD, core.Small)
	if err != nil {
		t.Fatal(err)
	}
	e := New(0)
	st, err := e.Load(context.Background(), db)
	if err != nil {
		t.Fatal(err)
	}
	if st.SkippedMixed == 0 {
		t.Fatal("no mixed content counted as dropped")
	}
	if st.Rows == 0 {
		t.Fatal("no rows produced")
	}
}

func TestQ8DropsQtText(t *testing.T) {
	e := loadTiny(t, core.TCSD)
	// Pick the first headword directly from the store.
	et := e.Store().DB.Table("entry_tab")
	rows, err := et.LookupRange(context.Background(), "hw", "", "\xff")
	if err != nil || len(rows) == 0 {
		t.Fatal("no entries", err)
	}
	hw := rows[0][et.Col("hw")]
	res, err := e.Execute(context.Background(), core.Q8, core.Params{"W": hw})
	if err != nil {
		t.Fatal(err)
	}
	if !res.MixedContentLost {
		t.Fatal("Q8 should flag mixed content loss")
	}
	for _, it := range res.Items {
		if strings.Contains(it, "<qt>") && it != "<qt/>" {
			t.Fatalf("qt text survived the unmappable-content drop: %s", it)
		}
	}
}

func TestExecuteBeforeLoadFails(t *testing.T) {
	e := New(0)
	if _, err := e.Execute(context.Background(), core.Q5, nil); err == nil {
		t.Fatal("Execute before Load succeeded")
	}
	if err := e.BuildIndexes(nil); err == nil {
		t.Fatal("BuildIndexes before Load succeeded")
	}
}
