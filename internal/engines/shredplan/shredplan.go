// Package shredplan holds the hand-translated relational query plans that
// the shredding engines (DB2 Xcollection and SQL Server) execute, the way
// the paper's authors translated each XQuery to SQL by hand (§3.2: "the
// query translations from XQuery to their own languages ... were done by
// us").
//
// Plans return XML fragments reconstructed from rows. Reconstruction is
// where shredding hurts: order is only insertion order (flagged
// OrderGuaranteed=false for order-sensitive queries), mixed content is
// flattened or lost, and structure that did not survive the mapping (qp
// groupings, nested paragraphs) cannot be rebuilt — the §3.2.2 caveat.
package shredplan

import (
	"context"

	"sort"
	"strconv"

	"xbench/internal/core"
	"xbench/internal/plan"
	"xbench/internal/queries"
	"xbench/internal/relational"
	"xbench/internal/shredder"
	"xbench/internal/xmldom"
	"xbench/internal/xquery"
)

// Execute runs the plan for (class, q) over the shredded store. Each
// query is first planned cost-based over the store's live statistics;
// the relational plans below route their primary-table lookups through
// the resulting access decisions.
func Execute(ctx context.Context, s *shredder.Store, q core.QueryID, p core.Params) (core.Result, error) {
	def := queries.Lookup(s.Class, q)
	if def == nil {
		return core.Result{}, core.ErrNoQuery
	}
	ph, err := plan.Plan(def, StoreStats(s))
	if err != nil {
		return core.Result{}, err
	}
	a := access{ph: ph, fb: s.Feedback}
	var items []string
	switch s.Class {
	case core.DCSD:
		items, err = execDCSD(ctx, s, a, q, p)
	case core.DCMD:
		items, err = execDCMD(ctx, s, a, q, p)
	case core.TCSD:
		items, err = execTCSD(ctx, s, a, q, p)
	case core.TCMD:
		items, err = execTCMD(ctx, s, a, q, p)
	default:
		err = core.ErrNoQuery
	}
	if err != nil {
		return core.Result{}, err
	}
	return core.Result{
		Items:            items,
		OrderGuaranteed:  !def.OrderSensitive,
		MixedContentLost: def.TouchesMixed && s.Opts.DropMixed,
	}, nil
}

// leaf appends <name>val</name> unless val is NULL.
func leaf(parent *xmldom.Node, name, val string) {
	if relational.IsNull(val) {
		return
	}
	parent.AddLeaf(name, val)
}

func xml(n *xmldom.Node) string { return n.XML() }

// ------------------------------------------------------------------ DC/SD

func execDCSD(ctx context.Context, s *shredder.Store, a access, q core.QueryID, p core.Params) ([]string, error) {
	items := s.DB.Table("item_tab")
	authors := s.DB.Table("item_author_tab")
	pubs := s.DB.Table("item_publisher_tab")
	switch q {
	case core.Q5:
		// First author of item X, reconstructed from the author table in
		// insertion order (no order column in the mapping). The planner's
		// limit pushdown fetches only that one row.
		row, err := a.first(ctx, authors, "item_id", p.Get("X"))
		if err != nil || row == nil {
			return nil, err
		}
		return []string{xml(reconstructAuthor(authors, row))}, nil
	case core.Q8:
		rows, err := a.eq(ctx, items, "id", p.Get("X"))
		if err != nil {
			return nil, err
		}
		var out []string
		for _, r := range rows {
			n := xmldom.NewElement("isbn")
			n.AddText(r[items.Col("isbn")])
			out = append(out, xml(n))
		}
		return out, nil
	case core.Q12:
		row, err := a.first(ctx, authors, "item_id", p.Get("X"))
		if err != nil || row == nil {
			return nil, err
		}
		return []string{xml(reconstructMailingAddress(authors, row))}, nil
	case core.Q14:
		// Date range via the date_of_release index (Table 3); the missing
		// FAX_number check requires scanning the publisher rows of the
		// qualifying items (no index on the missing element, per §3.2.3).
		inRange, err := a.rng(ctx, items, "date_of_release", p.Get("LO"), p.Get("HI"))
		if err != nil {
			return nil, err
		}
		want := map[string]bool{}
		var ids []string
		for _, r := range inRange {
			id := r[items.Col("id")]
			if !want[id] {
				want[id] = true
				ids = append(ids, id)
			}
		}
		var out []string
		idCol, faxCol, nameCol := pubs.Col("item_id"), pubs.Col("fax_number"), pubs.Col("name")
		if err := pubs.Scan(ctx, func(r relational.Row) bool {
			if want[r[idCol]] && relational.IsNull(r[faxCol]) {
				n := xmldom.NewElement("name")
				n.AddText(r[nameCol])
				out = append(out, xml(n))
			}
			return true
		}); err != nil {
			return nil, err
		}
		return out, nil
	case core.Q10:
		// Sorting on a string column over a date range.
		rows, err := a.rng(ctx, items, "date_of_release", p.Get("LO"), p.Get("HI"))
		if err != nil {
			return nil, err
		}
		// Index range scans return date order; re-establish document order
		// as the tie-breaker before the subject sort (ORDER BY subject, id).
		sortByIDSuffix(rows, items.Col("id"))
		relational.SortRows(rows, items.Col("subject"), false, true)
		var out []string
		for _, r := range rows {
			n := xmldom.NewElement("r")
			n.SetAttr("id", r[items.Col("id")])
			n.AddLeaf("subject", r[items.Col("subject")])
			out = append(out, xml(n))
		}
		return out, nil
	case core.Q17:
		word := p.Get("W2")
		descCol, titleCol := items.Col("description"), items.Col("title")
		var out []string
		if err := items.Scan(ctx, func(r relational.Row) bool {
			if !relational.IsNull(r[descCol]) && xquery.ContainsWord(r[descCol], word) {
				n := xmldom.NewElement("title")
				n.AddText(r[titleCol])
				out = append(out, xml(n))
			}
			return true
		}); err != nil {
			return nil, err
		}
		return out, nil
	case core.Q20:
		// Datatype cast: number_of_pages compared numerically.
		limit := p.Get("N")
		var out []string
		pageCol, titleCol := items.Col("number_of_pages"), items.Col("title")
		rows := []relational.Row{}
		if err := items.Scan(ctx, func(r relational.Row) bool {
			rows = append(rows, append(relational.Row(nil), r...))
			return true
		}); err != nil {
			return nil, err
		}
		for _, r := range rows {
			if numGreater(r[pageCol], limit) {
				n := xmldom.NewElement("title")
				n.AddText(r[titleCol])
				out = append(out, xml(n))
			}
		}
		return out, nil
	}
	return execDCSDExtended(ctx, s, a, q, p)
}

func reconstructAuthor(t *relational.Table, r relational.Row) *xmldom.Node {
	a := xmldom.NewElement("author")
	name := a.AddElement("name")
	leaf(name, "first_name", r[t.Col("first_name")])
	leaf(name, "middle_name", r[t.Col("middle_name")])
	leaf(name, "last_name", r[t.Col("last_name")])
	leaf(a, "date_of_birth", r[t.Col("date_of_birth")])
	leaf(a, "biography", r[t.Col("biography")])
	a.Append(reconstructContactInfo(t, r))
	return a
}

func reconstructContactInfo(t *relational.Table, r relational.Row) *xmldom.Node {
	ci := xmldom.NewElement("contact_information")
	ci.Append(reconstructMailingAddress(t, r))
	leaf(ci, "phone_number", r[t.Col("phone_number")])
	leaf(ci, "email_address", r[t.Col("email_address")])
	return ci
}

func reconstructMailingAddress(t *relational.Table, r relational.Row) *xmldom.Node {
	ma := xmldom.NewElement("mailing_address")
	leaf(ma, "street_address1", r[t.Col("street_address1")])
	leaf(ma, "street_address2", r[t.Col("street_address2")])
	leaf(ma, "city", r[t.Col("city")])
	leaf(ma, "state", r[t.Col("state")])
	leaf(ma, "zip_code", r[t.Col("zip_code")])
	leaf(ma, "name_of_country", r[t.Col("country")])
	return ma
}

func numGreater(a, b string) bool {
	af, aok := parseFloat(a)
	bf, bok := parseFloat(b)
	return aok && bok && af > bf
}

// ------------------------------------------------------------------ DC/MD

func execDCMD(ctx context.Context, s *shredder.Store, a access, q core.QueryID, p core.Params) ([]string, error) {
	orders := s.DB.Table("order_tab")
	lines := s.DB.Table("order_line_tab")
	custs := s.DB.Table("customer_tab")
	switch q {
	case core.Q1:
		rows, err := a.eq(ctx, orders, "id", p.Get("X"))
		if err != nil {
			return nil, err
		}
		var out []string
		for _, r := range rows {
			n := xmldom.NewElement("total")
			n.AddText(r[orders.Col("total")])
			out = append(out, xml(n))
		}
		return out, nil
	case core.Q5:
		row, err := a.first(ctx, lines, "order_id", p.Get("X"))
		if err != nil || row == nil {
			return nil, err
		}
		return []string{xml(reconstructOrderLine(lines, row))}, nil
	case core.Q8:
		rows, err := a.eq(ctx, lines, "order_id", p.Get("X"))
		if err != nil {
			return nil, err
		}
		var out []string
		for _, r := range rows {
			n := xmldom.NewElement("item_id")
			n.AddText(r[lines.Col("item_id")])
			out = append(out, xml(n))
		}
		return out, nil
	case core.Q9:
		rows, err := a.eq(ctx, orders, "id", p.Get("X"))
		if err != nil {
			return nil, err
		}
		var out []string
		for _, r := range rows {
			n := xmldom.NewElement("order_status")
			st := r[orders.Col("order_status")]
			if !relational.IsNull(st) {
				n.AddText(st)
			}
			out = append(out, xml(n))
		}
		return out, nil
	case core.Q10:
		rows, err := a.rng(ctx, orders, "order_date", p.Get("LO"), p.Get("HI"))
		if err != nil {
			return nil, err
		}
		sortByIDSuffix(rows, orders.Col("id"))
		relational.SortRows(rows, orders.Col("ship_type"), false, true)
		var out []string
		for _, r := range rows {
			n := xmldom.NewElement("r")
			n.AddLeaf("id", r[orders.Col("id")])
			n.AddLeaf("date", r[orders.Col("order_date")])
			n.AddLeaf("ship", r[orders.Col("ship_type")])
			out = append(out, xml(n))
		}
		return out, nil
	case core.Q12:
		rows, err := a.eq(ctx, orders, "id", p.Get("X"))
		if err != nil || len(rows) == 0 {
			return nil, err
		}
		return []string{xml(reconstructCCXacts(orders, rows[0]))}, nil
	case core.Q14:
		rows, err := a.rng(ctx, orders, "order_date", p.Get("LO"), p.Get("HI"))
		if err != nil {
			return nil, err
		}
		var out []string
		for _, r := range rows {
			if relational.IsNull(r[orders.Col("ship_country")]) {
				out = append(out, r[orders.Col("id")])
			}
		}
		return out, nil
	case core.Q16:
		// Retrieval of the whole order document: the expensive multi-join
		// reconstruction the paper describes.
		rows, err := a.eq(ctx, orders, "id", p.Get("X"))
		if err != nil || len(rows) == 0 {
			return nil, err
		}
		lrows, err := lines.LookupEq(ctx, "order_id", p.Get("X"))
		if err != nil {
			return nil, err
		}
		return []string{xml(reconstructOrder(orders, lines, rows[0], lrows))}, nil
	case core.Q17:
		word := p.Get("W2")
		cCol, oCol := lines.Col("comment"), lines.Col("order_id")
		seen := map[string]bool{}
		var out []string
		if err := lines.Scan(ctx, func(r relational.Row) bool {
			if !relational.IsNull(r[cCol]) && xquery.ContainsWord(r[cCol], word) && !seen[r[oCol]] {
				seen[r[oCol]] = true
				out = append(out, r[oCol])
			}
			return true
		}); err != nil {
			return nil, err
		}
		return out, nil
	case core.Q19:
		// Join-reordered by the planner: the probeable order side is the
		// outer loop, each match probing customers (index nested loop).
		orows, err := a.eq(ctx, orders, "id", p.Get("X"))
		if err != nil {
			return nil, err
		}
		var out []string
		for _, o := range orows {
			crows, err := custs.LookupEq(ctx, "id", o[orders.Col("customer_id")])
			if err != nil {
				return nil, err
			}
			for _, c := range crows {
				n := xmldom.NewElement("r")
				n.AddLeaf("name", c[custs.Col("c_fname")]+" "+c[custs.Col("c_lname")])
				n.AddLeaf("phone", c[custs.Col("c_phone")])
				st := o[orders.Col("order_status")]
				if relational.IsNull(st) {
					st = ""
				}
				n.AddLeaf("status", st)
				out = append(out, xml(n))
			}
		}
		return out, nil
	}
	return execDCMDExtended(ctx, s, a, q, p)
}

func reconstructOrderLine(t *relational.Table, r relational.Row) *xmldom.Node {
	ol := xmldom.NewElement("order_line")
	leaf(ol, "item_id", r[t.Col("item_id")])
	leaf(ol, "qty", r[t.Col("qty")])
	leaf(ol, "discount", r[t.Col("discount")])
	leaf(ol, "comment", r[t.Col("comment")])
	return ol
}

func reconstructCCXacts(t *relational.Table, r relational.Row) *xmldom.Node {
	cc := xmldom.NewElement("cc_xacts")
	leaf(cc, "cc_type", r[t.Col("cc_type")])
	leaf(cc, "cc_number", r[t.Col("cc_number")])
	leaf(cc, "cc_name", r[t.Col("cc_name")])
	leaf(cc, "cc_expiry", r[t.Col("cc_expiry")])
	leaf(cc, "cc_auth_id", r[t.Col("cc_auth_id")])
	leaf(cc, "total_amount", r[t.Col("total_amount")])
	leaf(cc, "ship_country", r[t.Col("ship_country")])
	return cc
}

func reconstructOrder(orders, lines *relational.Table, o relational.Row, lrows []relational.Row) *xmldom.Node {
	n := xmldom.NewElement("order")
	n.SetAttr("id", o[orders.Col("id")])
	leaf(n, "customer_id", o[orders.Col("customer_id")])
	leaf(n, "order_date", o[orders.Col("order_date")])
	leaf(n, "sub_total", o[orders.Col("sub_total")])
	leaf(n, "tax", o[orders.Col("tax")])
	leaf(n, "total", o[orders.Col("total")])
	leaf(n, "ship_type", o[orders.Col("ship_type")])
	leaf(n, "ship_date", o[orders.Col("ship_date")])
	leaf(n, "ship_addr_id", o[orders.Col("ship_addr_id")])
	st := o[orders.Col("order_status")]
	statusEl := n.AddElement("order_status")
	if !relational.IsNull(st) {
		statusEl.AddText(st)
	}
	n.Append(reconstructCCXacts(orders, o))
	ols := n.AddElement("order_lines")
	for _, lr := range lrows {
		ols.Append(reconstructOrderLine(lines, lr))
	}
	return n
}

// ------------------------------------------------------------------ TC/SD

func execTCSD(ctx context.Context, s *shredder.Store, a access, q core.QueryID, p core.Params) ([]string, error) {
	entries := s.DB.Table("entry_tab")
	senses := s.DB.Table("sense_tab")
	quotes := s.DB.Table("quote_tab")
	entryID := func() (string, error) {
		row, err := a.first(ctx, entries, "hw", p.Get("W"))
		if err != nil || row == nil {
			return "", err
		}
		return row[entries.Col("id")], nil
	}
	switch q {
	case core.Q5:
		// First sense of the entry: the sense_no chain id (added per
		// §3.1.3 item 4) stands in for document order.
		id, err := entryID()
		if err != nil || id == "" {
			return nil, err
		}
		srows, err := senses.LookupEq(ctx, "entry_id", id)
		if err != nil || len(srows) == 0 {
			return nil, err
		}
		first := srows[0]
		sense := xmldom.NewElement("sense")
		leaf(sense, "def", first[senses.Col("def")])
		// Quotes of sense 1 are reattached flat: the qp grouping did not
		// survive the mapping, so the reconstructed structure differs from
		// the original (§3.2.2).
		qrows, err := quotes.LookupEq(ctx, "entry_id", id)
		if err != nil {
			return nil, err
		}
		qp := sense.AddElement("qp")
		for _, qr := range qrows {
			if qr[quotes.Col("sense_no")] != first[senses.Col("sense_no")] {
				continue
			}
			qp.Append(reconstructQuote(quotes, qr))
		}
		if len(qp.Children) == 0 {
			sense.Children = sense.Children[:len(sense.Children)-1]
		}
		return []string{xml(sense)}, nil
	case core.Q8:
		id, err := entryID()
		if err != nil || id == "" {
			return nil, err
		}
		qrows, err := quotes.LookupEq(ctx, "entry_id", id)
		if err != nil {
			return nil, err
		}
		var out []string
		for _, qr := range qrows {
			qt := xmldom.NewElement("qt")
			v := qr[quotes.Col("qt")]
			if !relational.IsNull(v) {
				qt.AddText(v)
			}
			out = append(out, xml(qt))
		}
		return out, nil
	case core.Q12:
		id, err := entryID()
		if err != nil || id == "" {
			return nil, err
		}
		qrows, err := quotes.LookupEq(ctx, "entry_id", id)
		if err != nil {
			return nil, err
		}
		qp := xmldom.NewElement("qp")
		for _, qr := range qrows {
			if qr[quotes.Col("sense_no")] == "1" {
				qp.Append(reconstructQuote(quotes, qr))
			}
		}
		if len(qp.Children) == 0 {
			return nil, nil
		}
		return []string{xml(qp)}, nil
	case core.Q14:
		var out []string
		etymCol, hwCol := entries.Col("etym"), entries.Col("hw")
		if err := entries.Scan(ctx, func(r relational.Row) bool {
			if relational.IsNull(r[etymCol]) {
				n := xmldom.NewElement("hw")
				n.AddText(r[hwCol])
				out = append(out, xml(n))
			}
			return true
		}); err != nil {
			return nil, err
		}
		return out, nil
	case core.Q17:
		// Text search must scan every table holding entry text.
		word := p.Get("W2")
		match := map[string]bool{}
		hwCol, etymCol := entries.Col("hw"), entries.Col("etym")
		type entryRow struct{ id, hw string }
		var order []entryRow
		if err := entries.Scan(ctx, func(r relational.Row) bool {
			id := r[entries.Col("id")]
			order = append(order, entryRow{id, r[hwCol]})
			if xquery.ContainsWord(r[hwCol], word) ||
				(!relational.IsNull(r[etymCol]) && xquery.ContainsWord(r[etymCol], word)) {
				match[id] = true
			}
			return true
		}); err != nil {
			return nil, err
		}
		if err := senses.Scan(ctx, func(r relational.Row) bool {
			if xquery.ContainsWord(r[senses.Col("def")], word) {
				match[r[senses.Col("entry_id")]] = true
			}
			return true
		}); err != nil {
			return nil, err
		}
		qtCol, aCol, locCol := quotes.Col("qt"), quotes.Col("a"), quotes.Col("loc")
		if err := quotes.Scan(ctx, func(r relational.Row) bool {
			qt := r[qtCol]
			if (!relational.IsNull(qt) && xquery.ContainsWord(qt, word)) ||
				xquery.ContainsWord(r[aCol], word) || xquery.ContainsWord(r[locCol], word) {
				match[r[quotes.Col("entry_id")]] = true
			}
			return true
		}); err != nil {
			return nil, err
		}
		var out []string
		for _, e := range order {
			if match[e.id] {
				n := xmldom.NewElement("hw")
				n.AddText(e.hw)
				out = append(out, xml(n))
			}
		}
		return out, nil
	}
	return execTCSDExtended(ctx, s, a, q, p)
}

func reconstructQuote(t *relational.Table, r relational.Row) *xmldom.Node {
	q := xmldom.NewElement("q")
	leaf(q, "qd", r[t.Col("qd")])
	leaf(q, "a", r[t.Col("a")])
	leaf(q, "loc", r[t.Col("loc")])
	qt := q.AddElement("qt")
	if v := r[t.Col("qt")]; !relational.IsNull(v) {
		qt.AddText(v)
	}
	return q
}

// ------------------------------------------------------------------ TC/MD

func execTCMD(ctx context.Context, s *shredder.Store, a access, q core.QueryID, p core.Params) ([]string, error) {
	arts := s.DB.Table("article_tab")
	secs := s.DB.Table("sec_tab")
	switch q {
	case core.Q1:
		rows, err := a.eq(ctx, arts, "id", p.Get("X"))
		if err != nil {
			return nil, err
		}
		var out []string
		for _, r := range rows {
			n := xmldom.NewElement("title")
			n.AddText(r[arts.Col("title")])
			out = append(out, xml(n))
		}
		return out, nil
	case core.Q5:
		rows, err := a.eq(ctx, secs, "article_id", p.Get("X"))
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			if relational.IsNull(r[secs.Col("parent_sec")]) {
				h := r[secs.Col("heading")]
				if relational.IsNull(h) {
					return nil, nil
				}
				n := xmldom.NewElement("heading")
				n.AddText(h)
				return []string{xml(n)}, nil
			}
		}
		return nil, nil
	case core.Q8:
		rows, err := a.eq(ctx, secs, "article_id", p.Get("X"))
		if err != nil {
			return nil, err
		}
		var out []string
		for _, r := range rows {
			if relational.IsNull(r[secs.Col("parent_sec")]) && !relational.IsNull(r[secs.Col("heading")]) {
				n := xmldom.NewElement("heading")
				n.AddText(r[secs.Col("heading")])
				out = append(out, xml(n))
			}
		}
		return out, nil
	case core.Q12:
		rows, err := a.eq(ctx, arts, "id", p.Get("X"))
		if err != nil || len(rows) == 0 {
			return nil, err
		}
		if relational.IsNull(rows[0][arts.Col("has_abstract")]) {
			return nil, nil
		}
		// Reconstruction join: the abstract's paragraphs were shredded into
		// their own table, so the fragment rebuilds exactly.
		ab, err := reconstructAbstract(ctx, s, p.Get("X"))
		if err != nil {
			return nil, err
		}
		return []string{xml(ab)}, nil
	case core.Q14:
		rows, err := a.rng(ctx, arts, "date", p.Get("LO"), p.Get("HI"))
		if err != nil {
			return nil, err
		}
		var out []string
		for _, r := range rows {
			if relational.IsNull(r[arts.Col("genre")]) {
				n := xmldom.NewElement("title")
				n.AddText(r[arts.Col("title")])
				out = append(out, xml(n))
			}
		}
		return out, nil
	case core.Q17:
		word := p.Get("W2")
		paras := s.DB.Table("para_tab")
		match := map[string]bool{}
		type artRow struct{ id, title string }
		var order []artRow
		if err := arts.Scan(ctx, func(r relational.Row) bool {
			id := r[arts.Col("id")]
			order = append(order, artRow{id, r[arts.Col("title")]})
			if xquery.ContainsWord(r[arts.Col("title")], word) {
				match[id] = true
			}
			return true
		}); err != nil {
			return nil, err
		}
		absParas := s.DB.Table("abs_para_tab")
		if err := absParas.Scan(ctx, func(r relational.Row) bool {
			if xquery.ContainsWord(r[absParas.Col("text")], word) {
				match[r[absParas.Col("article_id")]] = true
			}
			return true
		}); err != nil {
			return nil, err
		}
		if err := paras.Scan(ctx, func(r relational.Row) bool {
			if xquery.ContainsWord(r[paras.Col("text")], word) {
				match[r[paras.Col("article_id")]] = true
			}
			return true
		}); err != nil {
			return nil, err
		}
		authors := s.DB.Table("art_author_tab")
		if err := authors.Scan(ctx, func(r relational.Row) bool {
			for _, col := range []string{"name", "affiliation", "bio"} {
				if v := r[authors.Col(col)]; !relational.IsNull(v) && xquery.ContainsWord(v, word) {
					match[r[authors.Col("article_id")]] = true
				}
			}
			return true
		}); err != nil {
			return nil, err
		}
		kws := s.DB.Table("kw_tab")
		if err := kws.Scan(ctx, func(r relational.Row) bool {
			if xquery.ContainsWord(r[kws.Col("kw")], word) {
				match[r[kws.Col("article_id")]] = true
			}
			return true
		}); err != nil {
			return nil, err
		}
		if err := secs.Scan(ctx, func(r relational.Row) bool {
			if h := r[secs.Col("heading")]; !relational.IsNull(h) && xquery.ContainsWord(h, word) {
				match[r[secs.Col("article_id")]] = true
			}
			return true
		}); err != nil {
			return nil, err
		}
		var out []string
		for _, a := range order {
			if match[a.id] {
				n := xmldom.NewElement("title")
				n.AddText(a.title)
				out = append(out, xml(n))
			}
		}
		return out, nil
	}
	return execTCMDExtended(ctx, s, a, q, p)
}

// sortByIDSuffix stably orders rows by the numeric suffix of an id column
// ("I25" -> 25), which equals document order for generated ids.
func sortByIDSuffix(rows []relational.Row, col int) {
	sort.SliceStable(rows, func(i, j int) bool {
		return idSuffix(rows[i][col]) < idSuffix(rows[j][col])
	})
}

func idSuffix(id string) int {
	i := 0
	for i < len(id) && (id[i] < '0' || id[i] > '9') {
		i++
	}
	n, _ := strconv.Atoi(id[i:])
	return n
}

// reconstructAbstract joins the abstract paragraphs back into their
// original structure.
func reconstructAbstract(ctx context.Context, s *shredder.Store, articleID string) (*xmldom.Node, error) {
	paras := s.DB.Table("abs_para_tab")
	rows, err := paras.LookupEq(ctx, "article_id", articleID)
	if err != nil {
		return nil, err
	}
	ab := xmldom.NewElement("abstract")
	for _, r := range rows {
		ab.AddLeaf("p", r[paras.Col("text")])
	}
	return ab, nil
}

func parseFloat(s string) (float64, bool) {
	if relational.IsNull(s) {
		return 0, false
	}
	f, err := strconv.ParseFloat(s, 64)
	return f, err == nil
}
