package shredplan

import (
	"context"

	"xbench/internal/core"
	"xbench/internal/plan"
	"xbench/internal/queries"
	"xbench/internal/relational"
	"xbench/internal/shredder"
)

// This file connects the hand-translated relational plans to the
// cost-based planner: Execute plans each query over the store's live
// statistics, and the primary-table lookups below honor the planner's
// index-vs-scan choice and pushed-down limit instead of hard-coding
// LookupEq calls.

// primaryTable names the table whose size drives the scan cost of a
// class's queries: the table the root element shreds into.
func primaryTable(class core.Class) string {
	switch class {
	case core.DCSD:
		return "item_tab"
	case core.DCMD:
		return "order_tab"
	case core.TCSD:
		return "entry_tab"
	case core.TCMD:
		return "article_tab"
	}
	return ""
}

// StoreStats derives planner statistics from the shredded store: pages
// and rows of the class's primary table, plus the heights of the value
// indexes actually built (Table 3 targets, and the customer key index
// that makes Q19's inner side an index nested loop).
func StoreStats(s *shredder.Store) plan.StatValues {
	st := plan.StatValues{Indexes: map[string]int{}}
	if name := primaryTable(s.Class); name != "" {
		t := s.DB.Table(name)
		st.DataPages = t.HeapPages()
		st.DataRows = int64(t.Count())
	}
	for _, spec := range queries.Indexes(s.Class) {
		table, col, ok := shredder.TargetColumn(s.Class, spec.Target)
		if !ok {
			continue
		}
		if h := s.DB.Table(table).IndexHeight(col); h > 0 {
			st.Indexes[spec.Target] = h
		}
	}
	if s.Class == core.DCMD {
		if h := s.DB.Table("customer_tab").IndexHeight("id"); h > 0 {
			st.Indexes["customer/@id"] = h
		}
	}
	st.RangeSelectivity = s.Feedback.Selectivity()
	return st
}

// Physical returns the costed physical plan for (class, q) over the
// store's live statistics — the tree the shredding engines serve
// through core.Explainer.
func Physical(s *shredder.Store, q core.QueryID) (*plan.Physical, error) {
	def := queries.Lookup(s.Class, q)
	if def == nil {
		return nil, core.ErrNoQuery
	}
	return plan.Plan(def, StoreStats(s))
}

// access carries the physical plan's decisions into the per-query
// relational plans. A zero access (nil plan) behaves like the old
// hard-coded paths.
type access struct {
	ph *plan.Physical
	// fb receives observed range selectivities (rows kept / rows in
	// the probed table) so the next Plan call costs the range with
	// what execution saw instead of the fixed prior.
	fb *plan.Feedback
}

// forceScan reports that the cost model rejected the index.
func (a access) forceScan() bool {
	return a.ph != nil && a.ph.Access == plan.AccessScan
}

func (a access) limit() int {
	if a.ph == nil {
		return 0
	}
	return a.ph.Limit
}

// eq fetches the rows where col == val along the planned access path:
// an index probe normally, a forced sequential filter when the plan
// chose the scan.
func (a access) eq(ctx context.Context, t *relational.Table, col, val string) ([]relational.Row, error) {
	if a.forceScan() {
		return t.ScanEq(ctx, col, val)
	}
	return t.LookupEq(ctx, col, val)
}

// first fetches the first row where col == val. When the plan pushed a
// [1] positional down (Limit == 1), only one row is read from the
// index; otherwise it falls back to fetch-all-take-first.
func (a access) first(ctx context.Context, t *relational.Table, col, val string) (relational.Row, error) {
	var (
		rows []relational.Row
		err  error
	)
	if a.limit() == 1 && !a.forceScan() {
		rows, err = t.LookupEqN(ctx, col, val, 1)
	} else {
		rows, err = a.eq(ctx, t, col, val)
	}
	if err != nil || len(rows) == 0 {
		return nil, err
	}
	return rows[0], nil
}

// rng fetches the rows with lo <= col <= hi along the planned access
// path, then feeds the observed selectivity back to the planner. The
// feedback fires on both branches — a range the cost model demoted to
// a scan keeps reporting, so it can be re-promoted when the data
// shifts back under it.
func (a access) rng(ctx context.Context, t *relational.Table, col, lo, hi string) ([]relational.Row, error) {
	var (
		rows []relational.Row
		err  error
	)
	if a.forceScan() {
		rows, err = t.ScanRange(ctx, col, lo, hi)
	} else {
		rows, err = t.LookupRange(ctx, col, lo, hi)
	}
	if err == nil && a.ph != nil {
		a.fb.Observe(a.ph.FeedbackTarget, int64(len(rows)), int64(t.Count()))
	}
	return rows, err
}
