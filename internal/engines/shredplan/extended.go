package shredplan

import (
	"context"

	"sort"
	"strconv"
	"strings"

	"xbench/internal/core"
	"xbench/internal/relational"
	"xbench/internal/shredder"
	"xbench/internal/xmldom"
	"xbench/internal/xquery"
)

// Extended hand-translated plans beyond the five benchmarked queries: the
// paper's authors translated the whole workload per system; these cover
// the remaining query types that map cleanly onto the shredded schema.
// They are dispatched from the per-class exec functions.

// ------------------------------------------------------------------ DC/SD

func execDCSDExtended(ctx context.Context, s *shredder.Store, a access, q core.QueryID, p core.Params) ([]string, error) {
	items, authors := s.DB.Table("item_tab"), s.DB.Table("item_author_tab")
	switch q {
	case core.Q1:
		// The whole item, reconstructed by joining the item, author and
		// publisher tables. DC/SD has no mixed content, so unlike the
		// dictionary entry this reconstruction is exact.
		rows, err := a.eq(ctx, items, "id", p.Get("X"))
		if err != nil || len(rows) == 0 {
			return nil, err
		}
		item, err := reconstructItem(ctx, s, items, rows[0])
		if err != nil {
			return nil, err
		}
		return []string{xml(item)}, nil
	case core.Q2:
		// Titles of items with an author of the given last name.
		rows, err := a.eq(ctx, authors, "last_name", p.Get("Y"))
		if err != nil {
			return nil, err
		}
		want := map[string]bool{}
		for _, r := range rows {
			want[r[authors.Col("item_id")]] = true
		}
		return titlesOfItems(ctx, items, want)
	case core.Q3:
		// avg(number_of_pages) over all items.
		sum, n := 0.0, 0
		pageCol := items.Col("number_of_pages")
		if err := items.Scan(ctx, func(r relational.Row) bool {
			if f, ok := parseFloat(r[pageCol]); ok {
				sum += f
				n++
			}
			return true
		}); err != nil {
			return nil, err
		}
		if n == 0 {
			return nil, nil
		}
		return []string{xquery.FormatNumber(sum / float64(n))}, nil
	case core.Q6, core.Q7:
		// Existential (Q6) / universal (Q7) quantification over author
		// countries: GROUP BY item over the author table.
		perItem := map[string][]string{}
		idCol, coCol := authors.Col("item_id"), authors.Col("country")
		if err := authors.Scan(ctx, func(r relational.Row) bool {
			perItem[r[idCol]] = append(perItem[r[idCol]], r[coCol])
			return true
		}); err != nil {
			return nil, err
		}
		z := p.Get("Z")
		want := map[string]bool{}
		for id, countries := range perItem {
			match := q == core.Q7 // vacuous truth for universal
			for _, c := range countries {
				is := !relational.IsNull(c) && c == z
				if q == core.Q6 && is {
					match = true
					break
				}
				if q == core.Q7 && !is {
					match = false
					break
				}
			}
			if match {
				want[id] = true
			}
		}
		if q == core.Q6 {
			// Q6 returns item ids.
			var out []string
			idc := items.Col("id")
			if err := items.Scan(ctx, func(r relational.Row) bool {
				if want[r[idc]] {
					out = append(out, r[idc])
				}
				return true
			}); err != nil {
				return nil, err
			}
			return out, nil
		}
		return titlesOfItems(ctx, items, want)
	}
	return nil, core.ErrNoQuery
}

// reconstructItem rebuilds a full <item> subtree from the three DC/SD
// tables in the emission order of the generator's mapping.
func reconstructItem(ctx context.Context, s *shredder.Store, items *relational.Table, r relational.Row) (*xmldom.Node, error) {
	id := r[items.Col("id")]
	item := xmldom.NewElement("item")
	item.SetAttr("id", id)
	leaf(item, "title", r[items.Col("title")])
	leaf(item, "date_of_release", r[items.Col("date_of_release")])
	leaf(item, "subject", r[items.Col("subject")])
	leaf(item, "description", r[items.Col("description")])
	attrs := item.AddElement("attributes")
	leaf(attrs, "srp", r[items.Col("srp")])
	leaf(attrs, "cost", r[items.Col("cost")])
	leaf(attrs, "avail", r[items.Col("avail")])
	leaf(attrs, "isbn", r[items.Col("isbn")])
	leaf(attrs, "number_of_pages", r[items.Col("number_of_pages")])
	leaf(attrs, "backing", r[items.Col("backing")])
	dims := attrs.AddElement("dimensions")
	leaf(dims, "length", r[items.Col("length")])
	leaf(dims, "width", r[items.Col("width")])
	leaf(dims, "height", r[items.Col("height")])
	authorsTab := s.DB.Table("item_author_tab")
	arows, err := authorsTab.LookupEq(ctx, "item_id", id)
	if err != nil {
		return nil, err
	}
	authorsEl := item.AddElement("authors")
	for _, ar := range arows {
		authorsEl.Append(reconstructAuthor(authorsTab, ar))
	}
	pubs := s.DB.Table("item_publisher_tab")
	prows, err := pubs.LookupEq(ctx, "item_id", id)
	if err != nil {
		return nil, err
	}
	for _, pr := range prows {
		pub := item.AddElement("publisher")
		leaf(pub, "name", pr[pubs.Col("name")])
		leaf(pub, "FAX_number", pr[pubs.Col("fax_number")])
		leaf(pub, "phone_number", pr[pubs.Col("phone_number")])
		leaf(pub, "email_address", pr[pubs.Col("email_address")])
	}
	return item, nil
}

func titlesOfItems(ctx context.Context, items *relational.Table, want map[string]bool) ([]string, error) {
	var out []string
	idCol, titleCol := items.Col("id"), items.Col("title")
	if err := items.Scan(ctx, func(r relational.Row) bool {
		if want[r[idCol]] {
			n := xmldom.NewElement("title")
			n.AddText(r[titleCol])
			out = append(out, n.XML())
		}
		return true
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// ------------------------------------------------------------------ DC/MD

func execDCMDExtended(ctx context.Context, s *shredder.Store, a access, q core.QueryID, p core.Params) ([]string, error) {
	orders, lines := s.DB.Table("order_tab"), s.DB.Table("order_line_tab")
	switch q {
	case core.Q2:
		// Ids of orders containing item I.
		rows := map[string]bool{}
		oCol, iCol := lines.Col("order_id"), lines.Col("item_id")
		if err := lines.Scan(ctx, func(r relational.Row) bool {
			if r[iCol] == p.Get("I") {
				rows[r[oCol]] = true
			}
			return true
		}); err != nil {
			return nil, err
		}
		return orderIDs(ctx, orders, rows)
	case core.Q3:
		// sum(total) over a date window; the order_date range uses a scan
		// (no Table 3 index on order_date). Rows are summed in scan order,
		// which equals document order, so the float result matches the
		// native engine's bit-for-bit.
		sum := 0.0
		dCol, tCol := orders.Col("order_date"), orders.Col("total")
		lo, hi := p.Get("LO"), p.Get("HI")
		if err := orders.Scan(ctx, func(r relational.Row) bool {
			if d := r[dCol]; !relational.IsNull(d) && d >= lo && d <= hi {
				if f, ok := parseFloat(r[tCol]); ok {
					sum += f
				}
			}
			return true
		}); err != nil {
			return nil, err
		}
		return []string{xquery.FormatNumber(sum)}, nil
	case core.Q6:
		// Orders with some line of qty >= 5.
		want := map[string]bool{}
		oCol, qCol := lines.Col("order_id"), lines.Col("qty")
		if err := lines.Scan(ctx, func(r relational.Row) bool {
			if f, ok := parseFloat(r[qCol]); ok && f >= 5 {
				want[r[oCol]] = true
			}
			return true
		}); err != nil {
			return nil, err
		}
		return orderIDs(ctx, orders, want)
	case core.Q15:
		// Orders whose status element is present but empty.
		var out []string
		sCol, idCol := orders.Col("order_status"), orders.Col("id")
		if err := orders.Scan(ctx, func(r relational.Row) bool {
			if r[sCol] == "" {
				out = append(out, r[idCol])
			}
			return true
		}); err != nil {
			return nil, err
		}
		return out, nil
	}
	return nil, core.ErrNoQuery
}

func orderIDs(ctx context.Context, orders *relational.Table, want map[string]bool) ([]string, error) {
	var out []string
	idCol := orders.Col("id")
	if err := orders.Scan(ctx, func(r relational.Row) bool {
		if want[r[idCol]] {
			out = append(out, r[idCol])
		}
		return true
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// ------------------------------------------------------------------ TC/SD

func execTCSDExtended(ctx context.Context, s *shredder.Store, a access, q core.QueryID, p core.Params) ([]string, error) {
	entries, senses := s.DB.Table("entry_tab"), s.DB.Table("sense_tab")
	quotes, crs := s.DB.Table("quote_tab"), s.DB.Table("cr_tab")
	switch q {
	case core.Q1:
		// The whole entry, reconstructed: the expensive multi-table join
		// the paper describes. qp groupings and inline markup are gone.
		erows, err := a.eq(ctx, entries, "hw", p.Get("W"))
		if err != nil || len(erows) == 0 {
			return nil, err
		}
		er := erows[0]
		id := er[entries.Col("id")]
		entry := xmldom.NewElement("entry")
		entry.SetAttr("id", id)
		leaf(entry, "hw", er[entries.Col("hw")])
		leaf(entry, "pr", er[entries.Col("pr")])
		leaf(entry, "pos", er[entries.Col("pos")])
		if et := er[entries.Col("etym")]; !relational.IsNull(et) {
			entry.AddLeaf("etym", et)
		}
		srows, err := senses.LookupEq(ctx, "entry_id", id)
		if err != nil {
			return nil, err
		}
		qrows, err := quotes.LookupEq(ctx, "entry_id", id)
		if err != nil {
			return nil, err
		}
		crRows, err := crs.LookupEq(ctx, "entry_id", id)
		if err != nil {
			return nil, err
		}
		for _, sr := range srows {
			sense := entry.AddElement("sense")
			leaf(sense, "def", sr[senses.Col("def")])
			qp := xmldom.NewElement("qp")
			for _, qr := range qrows {
				if qr[quotes.Col("sense_no")] == sr[senses.Col("sense_no")] {
					qp.Append(reconstructQuote(quotes, qr))
				}
			}
			if len(qp.Children) > 0 {
				sense.Append(qp)
			}
		}
		for _, cr := range crRows {
			c := entry.AddElement("cr")
			if tgt := cr[crs.Col("target")]; !relational.IsNull(tgt) {
				c.SetAttr("target", tgt)
			}
			c.AddText(cr[crs.Col("text")])
		}
		return []string{entry.XML()}, nil
	case core.Q2:
		// Headwords of entries quoting author Y.
		want := map[string]bool{}
		aCol, eCol := quotes.Col("a"), quotes.Col("entry_id")
		if err := quotes.Scan(ctx, func(r relational.Row) bool {
			if r[aCol] == p.Get("Y") {
				want[r[eCol]] = true
			}
			return true
		}); err != nil {
			return nil, err
		}
		return headwordsOf(ctx, entries, want)
	case core.Q11:
		// Quotation authors and dates of word W, sorted by date.
		erows, err := a.eq(ctx, entries, "hw", p.Get("W"))
		if err != nil || len(erows) == 0 {
			return nil, err
		}
		qrows, err := quotes.LookupEq(ctx, "entry_id", erows[0][entries.Col("id")])
		if err != nil {
			return nil, err
		}
		sort.SliceStable(qrows, func(i, j int) bool {
			return qrows[i][quotes.Col("qd")] < qrows[j][quotes.Col("qd")]
		})
		var out []string
		for _, qr := range qrows {
			n := xmldom.NewElement("r")
			leafAlways(n, "a", qr[quotes.Col("a")])
			leafAlways(n, "qd", qr[quotes.Col("qd")])
			out = append(out, n.XML())
		}
		return out, nil
	case core.Q18:
		// Phrase search over the shredded text columns; like Q17 this
		// diverges from string-value semantics and is checked as Lossy.
		phrase := p.Get("PHRASE")
		want := map[string]bool{}
		if err := senses.Scan(ctx, func(r relational.Row) bool {
			if contains(r[senses.Col("def")], phrase) {
				want[r[senses.Col("entry_id")]] = true
			}
			return true
		}); err != nil {
			return nil, err
		}
		if err := quotes.Scan(ctx, func(r relational.Row) bool {
			if contains(r[quotes.Col("qt")], phrase) {
				want[r[quotes.Col("entry_id")]] = true
			}
			return true
		}); err != nil {
			return nil, err
		}
		return headwordsOf(ctx, entries, want)
	}
	return nil, core.ErrNoQuery
}

func headwordsOf(ctx context.Context, entries *relational.Table, want map[string]bool) ([]string, error) {
	var out []string
	idCol, hwCol := entries.Col("id"), entries.Col("hw")
	if err := entries.Scan(ctx, func(r relational.Row) bool {
		if want[r[idCol]] {
			n := xmldom.NewElement("hw")
			n.AddText(r[hwCol])
			out = append(out, n.XML())
		}
		return true
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// ------------------------------------------------------------------ TC/MD

func execTCMDExtended(ctx context.Context, s *shredder.Store, a access, q core.QueryID, p core.Params) ([]string, error) {
	arts, artAuthors := s.DB.Table("article_tab"), s.DB.Table("art_author_tab")
	switch q {
	case core.Q2:
		// Titles of articles authored by Y.
		want := map[string]bool{}
		nCol, aCol := artAuthors.Col("name"), artAuthors.Col("article_id")
		if err := artAuthors.Scan(ctx, func(r relational.Row) bool {
			if r[nCol] == p.Get("Y") {
				want[r[aCol]] = true
			}
			return true
		}); err != nil {
			return nil, err
		}
		return titlesOfArticles(ctx, arts, want)
	case core.Q3:
		// Group articles by genre with counts, genre-sorted.
		counts := map[string]int{}
		gCol := arts.Col("genre")
		if err := arts.Scan(ctx, func(r relational.Row) bool {
			if g := r[gCol]; !relational.IsNull(g) {
				counts[g]++
			}
			return true
		}); err != nil {
			return nil, err
		}
		genres := make([]string, 0, len(counts))
		for g := range counts {
			genres = append(genres, g)
		}
		sort.Strings(genres)
		var out []string
		for _, g := range genres {
			grp := xmldom.NewElement("group")
			grp.AddLeaf("genre", g)
			grp.AddLeaf("cnt", strconv.Itoa(counts[g]))
			out = append(out, grp.XML())
		}
		return out, nil
	case core.Q13:
		// Summary construction, with the abstract rebuilt from its
		// shredded paragraphs.
		rows, err := a.eq(ctx, arts, "id", p.Get("X"))
		if err != nil || len(rows) == 0 {
			return nil, err
		}
		r := rows[0]
		firstAuthor := ""
		if arows, err := artAuthors.LookupEq(ctx, "article_id", p.Get("X")); err != nil {
			return nil, err
		} else if len(arows) > 0 {
			firstAuthor = arows[0][artAuthors.Col("name")]
		}
		sum := xmldom.NewElement("summary")
		leafAlways(sum, "title", nullToEmpty(r[arts.Col("title")]))
		leafAlways(sum, "first-author", firstAuthor)
		leafAlways(sum, "date", nullToEmpty(r[arts.Col("date")]))
		if !relational.IsNull(r[arts.Col("has_abstract")]) {
			ab, err := reconstructAbstract(ctx, s, p.Get("X"))
			if err != nil {
				return nil, err
			}
			sum.Append(ab)
		}
		return []string{sum.XML()}, nil
	case core.Q15:
		// Authors with empty contact in articles within the date window.
		inWindow := map[string]bool{}
		dCol, idCol := arts.Col("date"), arts.Col("id")
		lo, hi := p.Get("LO"), p.Get("HI")
		if err := arts.Scan(ctx, func(r relational.Row) bool {
			if d := r[dCol]; !relational.IsNull(d) && d >= lo && d <= hi {
				inWindow[r[idCol]] = true
			}
			return true
		}); err != nil {
			return nil, err
		}
		var out []string
		cCol, nCol, aCol := artAuthors.Col("contact"), artAuthors.Col("name"), artAuthors.Col("article_id")
		if err := artAuthors.Scan(ctx, func(r relational.Row) bool {
			if inWindow[r[aCol]] && r[cCol] == "" {
				n := xmldom.NewElement("name")
				n.AddText(r[nCol])
				out = append(out, n.XML())
			}
			return true
		}); err != nil {
			return nil, err
		}
		return out, nil
	}
	return nil, core.ErrNoQuery
}

func titlesOfArticles(ctx context.Context, arts *relational.Table, want map[string]bool) ([]string, error) {
	var out []string
	idCol, tCol := arts.Col("id"), arts.Col("title")
	if err := arts.Scan(ctx, func(r relational.Row) bool {
		if want[r[idCol]] {
			n := xmldom.NewElement("title")
			n.AddText(r[tCol])
			out = append(out, n.XML())
		}
		return true
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// helpers shared by the extended plans.

// leafAlways appends <name>val</name> even when val is empty ("" renders
// as <name/>), matching constructed-element semantics.
func leafAlways(parent *xmldom.Node, name, val string) {
	el := parent.AddElement(name)
	if val != "" {
		el.AddText(val)
	}
}

func nullToEmpty(v string) string {
	if relational.IsNull(v) {
		return ""
	}
	return v
}

func contains(v, sub string) bool {
	return !relational.IsNull(v) && strings.Contains(v, sub)
}
