package shredplan

import (
	"context"
	"errors"
	"strings"
	"testing"

	"xbench/internal/core"
	"xbench/internal/gen"
	"xbench/internal/pager"
	"xbench/internal/plan"
	"xbench/internal/relational"
	"xbench/internal/shredder"
	"xbench/internal/xmldom"
)

// loadStore shreds a tiny generated database into a fresh store.
func loadStore(t *testing.T, class core.Class, opts shredder.Options) *shredder.Store {
	t.Helper()
	cfg := gen.Config{DictEntries: 30, Articles: 6, Items: 20, Orders: 30}
	db, err := cfg.Generate(class, core.Small)
	if err != nil {
		t.Fatal(err)
	}
	s := shredder.NewStore(class, relational.NewDB(pager.New(256)), opts)
	for _, d := range db.Docs {
		doc, err := xmldom.Parse(d.Data)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.ShredDocument(d.Name, doc); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestUndefinedQueries(t *testing.T) {
	s := loadStore(t, core.DCSD, shredder.Options{})
	// Q4 is not defined for DC/SD at all.
	if _, err := Execute(context.Background(), s, core.Q4, nil); !errors.Is(err, core.ErrNoQuery) {
		t.Fatalf("Q4 DCSD: %v", err)
	}
	// Q16 is defined for DC/MD only among the shredded plans.
	if _, err := Execute(context.Background(), s, core.Q16, nil); !errors.Is(err, core.ErrNoQuery) {
		t.Fatalf("Q16 DCSD: %v", err)
	}
}

func TestQ5MissingKeyReturnsEmpty(t *testing.T) {
	s := loadStore(t, core.DCMD, shredder.Options{})
	res, err := Execute(context.Background(), s, core.Q5, core.Params{"X": "O999999"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 0 {
		t.Fatalf("missing order returned items: %v", res.Items)
	}
}

func TestQ1ReconstructsWholeEntry(t *testing.T) {
	s := loadStore(t, core.TCSD, shredder.Options{})
	// Find any headword directly from the table.
	et := s.DB.Table("entry_tab")
	var hw string
	et.Scan(context.Background(), func(r relational.Row) bool {
		hw = r[et.Col("hw")]
		return false
	})
	res, err := Execute(context.Background(), s, core.Q1, core.Params{"W": hw})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 1 {
		t.Fatalf("Q1 = %d items", len(res.Items))
	}
	frag := res.Items[0]
	for _, want := range []string{"<entry", "<hw>" + hw + "</hw>", "<sense>", "<def>"} {
		if !strings.Contains(frag, want) {
			t.Errorf("reconstructed entry missing %s:\n%.200s", want, frag)
		}
	}
	// The reconstruction must itself be well-formed XML.
	if _, err := xmldom.Parse([]byte(frag)); err != nil {
		t.Fatalf("reconstruction not well-formed: %v", err)
	}
}

func TestResultFlags(t *testing.T) {
	drop := loadStore(t, core.TCSD, shredder.Options{DropMixed: true})
	res, err := Execute(context.Background(), drop, core.Q8, core.Params{"W": firstHeadword(t, drop)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.MixedContentLost {
		t.Fatal("DropMixed store did not flag mixed loss on Q8")
	}
	keep := loadStore(t, core.TCSD, shredder.Options{})
	res, err = Execute(context.Background(), keep, core.Q8, core.Params{"W": firstHeadword(t, keep)})
	if err != nil {
		t.Fatal(err)
	}
	if res.MixedContentLost {
		t.Fatal("flattening store flagged mixed loss")
	}
	res, err = Execute(context.Background(), keep, core.Q5, core.Params{"W": firstHeadword(t, keep)})
	if err != nil {
		t.Fatal(err)
	}
	if res.OrderGuaranteed {
		t.Fatal("Q5 should not guarantee order on a shredded store")
	}
}

func firstHeadword(t *testing.T, s *shredder.Store) string {
	t.Helper()
	et := s.DB.Table("entry_tab")
	var hw string
	et.Scan(context.Background(), func(r relational.Row) bool {
		hw = r[et.Col("hw")]
		return false
	})
	if hw == "" {
		t.Fatal("no entries")
	}
	return hw
}

func TestQ3Aggregates(t *testing.T) {
	s := loadStore(t, core.DCSD, shredder.Options{})
	res, err := Execute(context.Background(), s, core.Q3, nil)
	if err != nil || len(res.Items) != 1 {
		t.Fatalf("Q3 = %v, %v", res.Items, err)
	}
	// avg(number_of_pages) must be in the generator's clamp range.
	if res.Items[0] < "1" {
		t.Fatalf("implausible avg %q", res.Items[0])
	}

	md := loadStore(t, core.DCMD, shredder.Options{})
	res, err = Execute(context.Background(), md, core.Q3, core.Params{"LO": "1995-01-01", "HI": "2003-12-30"})
	if err != nil || len(res.Items) != 1 {
		t.Fatalf("DCMD Q3 = %v, %v", res.Items, err)
	}
	// The full window must sum every order's total: compare against a
	// direct scan.
	ot := md.DB.Table("order_tab")
	n := 0
	ot.Scan(context.Background(), func(relational.Row) bool { n++; return true })
	if n == 0 {
		t.Fatal("no orders")
	}
}

// TestRangeFeedbackRecostsPlan: executing a range query must feed its
// observed selectivity back into the store's statistics, and the
// planner must act on it — a window that keeps every row flips the
// next Q10 plan from the index probe to the scan, and narrow windows
// afterwards decay the estimate until the probe wins again.
func TestRangeFeedbackRecostsPlan(t *testing.T) {
	ctx := context.Background()
	// A bigger item table than loadStore's: the premise needs the probe
	// to beat the scan under the default prior, which takes enough heap
	// pages for 0.25*scanCost to dominate the btree descent.
	cfg := gen.Config{DictEntries: 30, Articles: 6, Items: 120, Orders: 30}
	db, err := cfg.Generate(core.DCSD, core.Small)
	if err != nil {
		t.Fatal(err)
	}
	s := shredder.NewStore(core.DCSD, relational.NewDB(pager.New(256)), shredder.Options{})
	for _, d := range db.Docs {
		doc, err := xmldom.Parse(d.Data)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.ShredDocument(d.Name, doc); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.DB.Table("item_tab").CreateIndex("date_of_release"); err != nil {
		t.Fatal(err)
	}
	ph, err := Physical(s, core.Q10)
	if err != nil {
		t.Fatal(err)
	}
	if ph.Access != plan.AccessIndex {
		st := StoreStats(s)
		t.Fatalf("premise broken: default prior picked %v over stats %+v, want index probe", ph.Access, st)
	}

	// A window covering every generated date: observed selectivity ~1.
	all := core.Params{"LO": "0000-01-01", "HI": "9999-12-31"}
	res, err := Execute(ctx, s, core.Q10, all)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) == 0 {
		t.Fatal("full-window Q10 returned nothing")
	}
	if n := s.Feedback.Observations("date_of_release"); n == 0 {
		t.Fatal("range execution recorded no selectivity feedback")
	}
	if sel := s.Feedback.Selectivity()["date_of_release"]; sel < 0.9 {
		t.Fatalf("full-window selectivity observed as %v, want ~1", sel)
	}
	ph, err = Physical(s, core.Q10)
	if err != nil {
		t.Fatal(err)
	}
	if ph.Access != plan.AccessScan {
		t.Fatalf("after observing a full-table range the plan kept %v, want scan", ph.Access)
	}

	// The scan path must keep observing: empty windows decay the
	// estimate back below the flip point and re-promote the probe.
	empty := core.Params{"LO": "0001-01-01", "HI": "0001-01-02"}
	for i := 0; i < 10; i++ {
		if _, err := Execute(ctx, s, core.Q10, empty); err != nil {
			t.Fatal(err)
		}
	}
	ph, err = Physical(s, core.Q10)
	if err != nil {
		t.Fatal(err)
	}
	if ph.Access != plan.AccessIndex {
		t.Fatalf("narrow windows did not re-promote the probe: %v (selectivity %v)",
			ph.Access, s.Feedback.Selectivity()["date_of_release"])
	}
}

func TestTCMDGroupingSorted(t *testing.T) {
	s := loadStore(t, core.TCMD, shredder.Options{})
	res, err := Execute(context.Background(), s, core.Q3, nil)
	if err != nil {
		t.Fatal(err)
	}
	var prev string
	for _, item := range res.Items {
		g := strings.TrimPrefix(item, "<group><genre>")
		g = g[:strings.Index(g, "<")]
		if prev != "" && g < prev {
			t.Fatalf("genres not sorted: %q after %q", g, prev)
		}
		prev = g
	}
}
