package shredplan

import (
	"context"
	"errors"
	"strings"
	"testing"

	"xbench/internal/core"
	"xbench/internal/gen"
	"xbench/internal/pager"
	"xbench/internal/relational"
	"xbench/internal/shredder"
	"xbench/internal/xmldom"
)

// loadStore shreds a tiny generated database into a fresh store.
func loadStore(t *testing.T, class core.Class, opts shredder.Options) *shredder.Store {
	t.Helper()
	cfg := gen.Config{DictEntries: 30, Articles: 6, Items: 20, Orders: 30}
	db, err := cfg.Generate(class, core.Small)
	if err != nil {
		t.Fatal(err)
	}
	s := shredder.NewStore(class, relational.NewDB(pager.New(256)), opts)
	for _, d := range db.Docs {
		doc, err := xmldom.Parse(d.Data)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.ShredDocument(d.Name, doc); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestUndefinedQueries(t *testing.T) {
	s := loadStore(t, core.DCSD, shredder.Options{})
	// Q4 is not defined for DC/SD at all.
	if _, err := Execute(context.Background(), s, core.Q4, nil); !errors.Is(err, core.ErrNoQuery) {
		t.Fatalf("Q4 DCSD: %v", err)
	}
	// Q16 is defined for DC/MD only among the shredded plans.
	if _, err := Execute(context.Background(), s, core.Q16, nil); !errors.Is(err, core.ErrNoQuery) {
		t.Fatalf("Q16 DCSD: %v", err)
	}
}

func TestQ5MissingKeyReturnsEmpty(t *testing.T) {
	s := loadStore(t, core.DCMD, shredder.Options{})
	res, err := Execute(context.Background(), s, core.Q5, core.Params{"X": "O999999"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 0 {
		t.Fatalf("missing order returned items: %v", res.Items)
	}
}

func TestQ1ReconstructsWholeEntry(t *testing.T) {
	s := loadStore(t, core.TCSD, shredder.Options{})
	// Find any headword directly from the table.
	et := s.DB.Table("entry_tab")
	var hw string
	et.Scan(context.Background(), func(r relational.Row) bool {
		hw = r[et.Col("hw")]
		return false
	})
	res, err := Execute(context.Background(), s, core.Q1, core.Params{"W": hw})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 1 {
		t.Fatalf("Q1 = %d items", len(res.Items))
	}
	frag := res.Items[0]
	for _, want := range []string{"<entry", "<hw>" + hw + "</hw>", "<sense>", "<def>"} {
		if !strings.Contains(frag, want) {
			t.Errorf("reconstructed entry missing %s:\n%.200s", want, frag)
		}
	}
	// The reconstruction must itself be well-formed XML.
	if _, err := xmldom.Parse([]byte(frag)); err != nil {
		t.Fatalf("reconstruction not well-formed: %v", err)
	}
}

func TestResultFlags(t *testing.T) {
	drop := loadStore(t, core.TCSD, shredder.Options{DropMixed: true})
	res, err := Execute(context.Background(), drop, core.Q8, core.Params{"W": firstHeadword(t, drop)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.MixedContentLost {
		t.Fatal("DropMixed store did not flag mixed loss on Q8")
	}
	keep := loadStore(t, core.TCSD, shredder.Options{})
	res, err = Execute(context.Background(), keep, core.Q8, core.Params{"W": firstHeadword(t, keep)})
	if err != nil {
		t.Fatal(err)
	}
	if res.MixedContentLost {
		t.Fatal("flattening store flagged mixed loss")
	}
	res, err = Execute(context.Background(), keep, core.Q5, core.Params{"W": firstHeadword(t, keep)})
	if err != nil {
		t.Fatal(err)
	}
	if res.OrderGuaranteed {
		t.Fatal("Q5 should not guarantee order on a shredded store")
	}
}

func firstHeadword(t *testing.T, s *shredder.Store) string {
	t.Helper()
	et := s.DB.Table("entry_tab")
	var hw string
	et.Scan(context.Background(), func(r relational.Row) bool {
		hw = r[et.Col("hw")]
		return false
	})
	if hw == "" {
		t.Fatal("no entries")
	}
	return hw
}

func TestQ3Aggregates(t *testing.T) {
	s := loadStore(t, core.DCSD, shredder.Options{})
	res, err := Execute(context.Background(), s, core.Q3, nil)
	if err != nil || len(res.Items) != 1 {
		t.Fatalf("Q3 = %v, %v", res.Items, err)
	}
	// avg(number_of_pages) must be in the generator's clamp range.
	if res.Items[0] < "1" {
		t.Fatalf("implausible avg %q", res.Items[0])
	}

	md := loadStore(t, core.DCMD, shredder.Options{})
	res, err = Execute(context.Background(), md, core.Q3, core.Params{"LO": "1995-01-01", "HI": "2003-12-30"})
	if err != nil || len(res.Items) != 1 {
		t.Fatalf("DCMD Q3 = %v, %v", res.Items, err)
	}
	// The full window must sum every order's total: compare against a
	// direct scan.
	ot := md.DB.Table("order_tab")
	n := 0
	ot.Scan(context.Background(), func(relational.Row) bool { n++; return true })
	if n == 0 {
		t.Fatal("no orders")
	}
}

func TestTCMDGroupingSorted(t *testing.T) {
	s := loadStore(t, core.TCMD, shredder.Options{})
	res, err := Execute(context.Background(), s, core.Q3, nil)
	if err != nil {
		t.Fatal(err)
	}
	var prev string
	for _, item := range res.Items {
		g := strings.TrimPrefix(item, "<group><genre>")
		g = g[:strings.Index(g, "<")]
		if prev != "" && g < prev {
			t.Fatalf("genres not sorted: %q after %q", g, prev)
		}
		prev = g
	}
}
