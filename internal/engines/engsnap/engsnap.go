// Package engsnap implements the snapshot publication protocol the four
// engines share (DESIGN.md §15): a writer publishes an immutable query
// state per commit epoch, and readers pin a pager snapshot plus the
// matching state without ever taking the engine write lock.
//
// The pairing is a seqlock over two atomics: the pager's committed epoch
// (observed by PinSnapshot) and the published state pointer. A reader
// pins first, then loads the state; if the state's epoch is not the
// pinned epoch the writer is mid-publish (the window between
// EndMutation and Publish is a few instructions), so the reader releases
// and retries. A bounded number of retries falls back to the caller's
// locked path, so a writer stalled inside that window can never wedge
// readers.
package engsnap

import (
	"runtime"
	"sync/atomic"
	"time"

	"xbench/internal/pager"
)

// GCInterval is the background version-GC cadence engines pass to
// pager.StartGC. Inline pruning on snapshot release and commit already
// reclaims most versions; the ticker only mops up after bursts that end
// with a pin still outstanding.
const GCInterval = 2 * time.Second

// maxPinRetries bounds the seqlock retry loop. The mismatch window is
// publish-side and tiny; if it persists this long something is wrong and
// the caller's locked path is the safe answer.
const maxPinRetries = 1000

// stateBox pairs a published state with the commit epoch it describes.
type stateBox struct {
	epoch uint64
	val   any
}

// Published is one engine's snapshot state cell. The zero value is
// usable: snapshots disabled, nothing published.
type Published struct {
	enabled atomic.Bool
	state   atomic.Pointer[stateBox]
}

// SetEnabled toggles snapshot reads (facade WithSnapshots). Disabled,
// Pin always reports no state and the engine serves queries under its
// read latch as before.
func (pb *Published) SetEnabled(on bool) { pb.enabled.Store(on) }

// Enabled reports whether snapshot reads are on.
func (pb *Published) Enabled() bool { return pb.enabled.Load() }

// Publish installs the query state describing the given commit epoch.
// Writers call it at every commit boundary (after pager.EndMutation,
// after Load under BlockPins, after BuildIndexes). A nil val publishes
// "no state" (empty engine), making Pin fall back.
func (pb *Published) Publish(epoch uint64, val any) {
	pb.state.Store(&stateBox{epoch: epoch, val: val})
}

// Pin pins the pager's current snapshot and returns the published state
// matching the pinned epoch. ok is false — and nothing stays pinned —
// when snapshots are disabled, no state is published, or the seqlock
// retry budget runs out; the caller must then use its locked read path.
// On ok the caller owns the returned Snap and must Release it when done
// with the state.
func (pb *Published) Pin(p *pager.Pager) (snap *pager.Snap, val any, ok bool) {
	if !pb.enabled.Load() {
		return nil, nil, false
	}
	for i := 0; i < maxPinRetries; i++ {
		snap := p.PinSnapshot()
		box := pb.state.Load()
		if box == nil || box.val == nil {
			snap.Release()
			return nil, nil, false
		}
		if box.epoch == snap.Epoch() {
			return snap, box.val, true
		}
		// Writer is between EndMutation and Publish; yield and retry.
		snap.Release()
		runtime.Gosched()
	}
	return nil, nil, false
}
