package native

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"xbench/internal/core"
	"xbench/internal/gen"
	"xbench/internal/queries"
	"xbench/internal/textgen"
)

func loadTiny(t *testing.T, class core.Class) (*Engine, *core.Database) {
	t.Helper()
	cfg := gen.Config{DictEntries: 30, Articles: 5, Items: 20, Orders: 150}
	db, err := cfg.Generate(class, core.Small)
	if err != nil {
		t.Fatal(err)
	}
	e := New(0)
	if _, err := e.Load(context.Background(), db); err != nil {
		t.Fatal(err)
	}
	return e, db
}

func TestLoadCountsDocuments(t *testing.T) {
	e, db := loadTiny(t, core.DCMD)
	if e.DocumentCount() != len(db.Docs) {
		t.Fatalf("catalog has %d docs, want %d", e.DocumentCount(), len(db.Docs))
	}
}

func TestLoadRejectsMalformed(t *testing.T) {
	e := New(0)
	db := &core.Database{Class: core.TCMD, Size: core.Small, Docs: []core.Doc{
		{Name: "bad.xml", Data: []byte("<a><b></a>")},
	}}
	if _, err := e.Load(context.Background(), db); err == nil {
		t.Fatal("malformed document loaded")
	}
}

func TestExecuteSequentialScan(t *testing.T) {
	e, _ := loadTiny(t, core.DCSD)
	// No indexes built: Q1 must still work via sequential scan.
	res, err := e.Execute(context.Background(), core.Q1, core.Params{"X": "I1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 1 || !strings.Contains(res.Items[0], `id="I1"`) {
		t.Fatalf("Q1 = %v", res.Items)
	}
	if !res.OrderGuaranteed {
		t.Fatal("native results are always order-guaranteed")
	}
}

func TestIndexSelectsSubset(t *testing.T) {
	e, _ := loadTiny(t, core.DCMD)
	if err := e.BuildIndexes(queries.Indexes(core.DCMD)); err != nil {
		t.Fatal(err)
	}
	e.ColdReset()
	res, err := e.Execute(context.Background(), core.Q1, core.Params{"X": "O3"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 1 {
		t.Fatalf("Q1 via index = %v", res.Items)
	}
	indexedIO := res.PageIO

	// Without indexes the same query scans everything.
	e2, _ := loadTiny(t, core.DCMD)
	e2.ColdReset()
	res2, err := e2.Execute(context.Background(), core.Q1, core.Params{"X": "O3"})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Items[0] != res.Items[0] {
		t.Fatal("indexed and scan answers differ")
	}
	if indexedIO >= res2.PageIO {
		t.Fatalf("index should reduce I/O: %d vs %d", indexedIO, res2.PageIO)
	}
}

func TestDocLookupByName(t *testing.T) {
	e, db := loadTiny(t, core.DCMD)
	res, err := e.Execute(context.Background(), core.Q16, core.Params{"DOC": "order1.xml"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 1 {
		t.Fatalf("Q16 = %d items", len(res.Items))
	}
	// The returned document must be byte-equivalent to the loaded one
	// modulo the XML declaration.
	var orig string
	for _, d := range db.Docs {
		if d.Name == "order1.xml" {
			orig = string(d.Data)
		}
	}
	if !strings.Contains(orig, res.Items[0][:100]) && !strings.Contains(res.Items[0], `id="O1"`) {
		t.Fatalf("Q16 returned a different document: %.120s", res.Items[0])
	}

	if _, err := e.Execute(context.Background(), core.Q16, core.Params{"DOC": "missing.xml"}); err == nil {
		t.Fatal("missing document lookup succeeded")
	}
}

func TestUndefinedQuery(t *testing.T) {
	e, _ := loadTiny(t, core.DCSD)
	if _, err := e.Execute(context.Background(), core.Q19, nil); err != core.ErrNoQuery {
		t.Fatalf("want ErrNoQuery, got %v", err)
	}
}

func TestBuildIndexIdempotent(t *testing.T) {
	e, _ := loadTiny(t, core.TCSD)
	specs := queries.Indexes(core.TCSD)
	if err := e.BuildIndexes(specs); err != nil {
		t.Fatal(err)
	}
	if err := e.BuildIndexes(specs); err != nil {
		t.Fatal(err)
	}
}

func TestReplaceAndDeleteDocument(t *testing.T) {
	e, _ := loadTiny(t, core.DCMD)
	before := e.DocumentCount()

	// Replace order1 with a version whose total is recognizable.
	newDoc := []byte(`<order id="O1"><customer_id>C1</customer_id>
		<order_date>2000-01-01</order_date><sub_total>1</sub_total>
		<tax>0</tax><total>42.42</total><ship_type>AIR</ship_type>
		<ship_date>2000-01-02</ship_date><ship_addr_id>A1</ship_addr_id>
		<order_status>NEW</order_status>
		<cc_xacts><cc_type>VISA</cc_type><cc_number>1</cc_number>
		<cc_name>x</cc_name><cc_expiry>2001-01-01</cc_expiry>
		<cc_auth_id>1</cc_auth_id><total_amount>42.42</total_amount></cc_xacts>
		<order_lines><order_line><item_id>I1</item_id><qty>1</qty>
		<discount>0</discount></order_line></order_lines></order>`)
	if err := e.ReplaceDocument(context.Background(), "order1.xml", newDoc); err != nil {
		t.Fatal(err)
	}
	if e.DocumentCount() != before {
		t.Fatalf("replace changed document count: %d -> %d", before, e.DocumentCount())
	}
	res, err := e.Execute(context.Background(), core.Q1, core.Params{"X": "O1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 1 || !strings.Contains(res.Items[0], "42.42") {
		t.Fatalf("Q1 after replace = %v", res.Items)
	}

	// Delete it and confirm it is gone.
	if err := e.DeleteDocument(context.Background(), "order1.xml"); err != nil {
		t.Fatal(err)
	}
	if e.DocumentCount() != before-1 {
		t.Fatalf("delete did not shrink catalog: %d", e.DocumentCount())
	}
	res, err = e.Execute(context.Background(), core.Q1, core.Params{"X": "O1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 0 {
		t.Fatalf("deleted order still queryable: %v", res.Items)
	}
	if err := e.DeleteDocument(context.Background(), "order1.xml"); err == nil {
		t.Fatal("double delete succeeded")
	}
	if err := e.ReplaceDocument(context.Background(), "bad.xml", []byte("<a><b></a>")); err == nil {
		t.Fatal("replace accepted malformed XML")
	}
}

func TestReplaceUpsertsNewDocument(t *testing.T) {
	e, _ := loadTiny(t, core.TCMD)
	before := e.DocumentCount()
	doc := []byte(`<article id="a999"><prolog><title>Fresh</title>
		<authors><author><name>N</name></author></authors></prolog>
		<body><sec id="s1"><p>x</p></sec></body></article>`)
	if err := e.ReplaceDocument(context.Background(), "article999.xml", doc); err != nil {
		t.Fatal(err)
	}
	if e.DocumentCount() != before+1 {
		t.Fatal("upsert did not add a document")
	}
	res, err := e.Execute(context.Background(), core.Q1, core.Params{"X": "a999"})
	if err != nil || len(res.Items) != 1 {
		t.Fatalf("new document not queryable: %v %v", res.Items, err)
	}
}

func TestIndexesRebuildAfterUpdate(t *testing.T) {
	e, _ := loadTiny(t, core.DCMD)
	if err := e.BuildIndexes(queries.Indexes(core.DCMD)); err != nil {
		t.Fatal(err)
	}
	if err := e.DeleteDocument(context.Background(), "order2.xml"); err != nil {
		t.Fatal(err)
	}
	// Indexes were dropped; scan still answers, then rebuild works.
	res, err := e.Execute(context.Background(), core.Q1, core.Params{"X": "O3"})
	if err != nil || len(res.Items) != 1 {
		t.Fatalf("post-update scan: %v %v", res.Items, err)
	}
	if err := e.BuildIndexes(queries.Indexes(core.DCMD)); err != nil {
		t.Fatal(err)
	}
	res2, err := e.Execute(context.Background(), core.Q1, core.Params{"X": "O3"})
	if err != nil || len(res2.Items) != 1 || res2.Items[0] != res.Items[0] {
		t.Fatalf("post-rebuild answer differs: %v %v", res2.Items, err)
	}
}

func TestConcurrentReadOnlyQueries(t *testing.T) {
	// Warm queries (no ColdReset) from many goroutines must be safe: the
	// pager is the only shared mutable state and is mutex-guarded.
	e, _ := loadTiny(t, core.DCMD)
	if err := e.BuildIndexes(queries.Indexes(core.DCMD)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				id := fmt.Sprintf("O%d", 1+(g*8+i)%20)
				res, err := e.Execute(context.Background(), core.Q1, core.Params{"X": id})
				if err != nil {
					errs <- err
					return
				}
				if len(res.Items) != 1 {
					errs <- fmt.Errorf("%s: %d items", id, len(res.Items))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func loadSegmented(t *testing.T, class core.Class) *Engine {
	t.Helper()
	cfg := gen.Config{DictEntries: 60, Articles: 5, Items: 40, Orders: 60}
	db, err := cfg.Generate(class, core.Small)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewWithOptions(0, Options{Format: FormatDOM, Segmented: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Load(context.Background(), db); err != nil {
		t.Fatal(err)
	}
	if err := e.BuildIndexes(queries.Indexes(class)); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSegmentedMatchesDocumentGranular(t *testing.T) {
	// Segmented and whole-document storage must give identical answers for
	// the entire workload of the single-document classes, where
	// segmentation actually kicks in.
	for _, class := range []core.Class{core.DCSD, core.TCSD} {
		seg := loadSegmented(t, class)
		cfg := gen.Config{DictEntries: 60, Articles: 5, Items: 40, Orders: 60}
		db, _ := cfg.Generate(class, core.Small)
		whole := New(0)
		if _, err := whole.Load(context.Background(), db); err != nil {
			t.Fatal(err)
		}
		if err := whole.BuildIndexes(queries.Indexes(class)); err != nil {
			t.Fatal(err)
		}
		params := map[core.Class]core.Params{
			core.DCSD: {"X": "I7", "LO": "1997-01-01", "HI": "2001-12-30",
				"Z": "Canada", "N": "900", "W2": "system", "Y": "Adams", "PHRASE": "of the"},
			core.TCSD: {"W": textgenHeadword(3), "W2": "system", "Y": "x",
				"L": "London", "LO": "1997-01-01", "PHRASE": "of the"},
		}[class]
		for q := core.Q1; q <= core.Q20; q++ {
			a, errA := seg.Execute(context.Background(), q, params)
			b, errB := whole.Execute(context.Background(), q, params)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("%s/%s: error mismatch %v vs %v", class, q, errA, errB)
			}
			if errA != nil {
				continue
			}
			if len(a.Items) != len(b.Items) {
				t.Fatalf("%s/%s: %d vs %d items", class, q, len(a.Items), len(b.Items))
			}
			for i := range a.Items {
				if a.Items[i] != b.Items[i] {
					t.Fatalf("%s/%s: item %d differs", class, q, i)
				}
			}
		}
	}
}

func TestSegmentedReducesPointQueryIO(t *testing.T) {
	seg := loadSegmented(t, core.DCSD)
	cfg := gen.Config{DictEntries: 60, Articles: 5, Items: 40, Orders: 60}
	db, _ := cfg.Generate(core.DCSD, core.Small)
	whole := New(0)
	if _, err := whole.Load(context.Background(), db); err != nil {
		t.Fatal(err)
	}
	if err := whole.BuildIndexes(queries.Indexes(core.DCSD)); err != nil {
		t.Fatal(err)
	}
	params := core.Params{"X": "I7"}
	seg.ColdReset()
	a, err := seg.Execute(context.Background(), core.Q8, params)
	if err != nil {
		t.Fatal(err)
	}
	whole.ColdReset()
	b, err := whole.Execute(context.Background(), core.Q8, params)
	if err != nil {
		t.Fatal(err)
	}
	if a.PageIO >= b.PageIO {
		t.Fatalf("segmented point query should read fewer pages: %d vs %d", a.PageIO, b.PageIO)
	}
}

func TestSegmentedRequiresDOMFormat(t *testing.T) {
	if _, err := NewWithOptions(0, Options{Format: FormatXML, Segmented: true}); err == nil {
		t.Fatal("segmented raw-XML storage accepted")
	}
}

func textgenHeadword(i int) string { return textgen.Headword(i) }
