// Package native implements the X-Hive analog: a native XML store. Whole
// documents are persisted over the pager as binary DOM pages, a document
// catalog maps names to records, optional value indexes (paper Table 3)
// map element/attribute values to documents, and queries are XQuery
// evaluated directly on the DOM — no shredding, perfect structure and
// order preservation.
//
// The architecture reproduces X-Hive's measured behavior:
//
//   - No mapping work during load, so bulk loading is much faster than the
//     relational engines (paper Table 4).
//   - Document reconstruction and ordered access are exact (Tables 5/6).
//   - Queries without a usable index materialize every document; on a
//     large single document (TC/SD, DC/SD Large) even indexed lookups must
//     materialize the one huge document, reproducing X-Hive's poor
//     large-SD numbers.
//   - The document catalog itself lives on disk, so databases with very
//     many documents (DC/MD Large) pay a catalog scan per cold query —
//     the paper's "X-Hive suffers from accessing huge amounts of XML
//     documents in the DC/MD case".
//
// Options.Segmented switches to node-granular storage: a document whose
// root has many children is stored as a header plus one record per
// top-level subtree, and value indexes carry (document, segment) locators
// so an indexed point query loads only the matching subtrees. This is the
// storage model that would explain the paper's flat DC/SD Q8 cells; it is
// off by default because the paper's TC/SD cells behave as if X-Hive's
// index selection there was document-granular (see EXPERIMENTS.md).
package native

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"

	"xbench/internal/btree"
	"xbench/internal/core"
	"xbench/internal/engines/engsnap"
	"xbench/internal/metrics"
	"xbench/internal/pager"
	"xbench/internal/plan"
	"xbench/internal/queries"
	"xbench/internal/updatelog"
	"xbench/internal/xmldom"
	"xbench/internal/xquery"
)

// Format selects how documents are stored on disk.
type Format int

const (
	// FormatDOM stores documents as persistent binary DOM pages (the
	// X-Hive model: accessing a document pages in nodes, no re-parsing).
	// This is the default.
	FormatDOM Format = iota
	// FormatXML stores raw XML text, re-parsed on every access. Kept for
	// the storage-format ablation benchmark.
	FormatXML
)

// Options configure the native store.
type Options struct {
	// Format is the on-disk document representation.
	Format Format
	// Segmented enables node-granular storage and index locators (see the
	// package comment). Requires FormatDOM.
	Segmented bool
	// SegmentThreshold is the minimum number of root children before a
	// document is split into segments; 0 selects the default (32).
	SegmentThreshold int
}

const defaultSegmentThreshold = 32

// Engine is a native XML database instance. Execute is safe from many
// goroutines against a loaded database; Load, BuildIndexes, document
// updates and ColdReset take the write lock, excluding (and quiescing)
// queries.
type Engine struct {
	mu      sync.RWMutex
	p       *pager.Pager
	class   core.Class
	opts    Options
	docs    *pager.Heap // serialized documents/segments
	catalog *pager.Heap // catalog records in load order
	indexes map[string]*btree.Tree
	journal *updatelog.Log    // logical redo journal for U1-U3
	snap    engsnap.Published // MVCC snapshot state for lock-free reads
	planFB  plan.Feedback     // observed range selectivities for the cost model
	loaded  bool
}

// heapReader is the read surface shared by the live *pager.Heap and a
// frozen pager.HeapView, letting one query path serve both.
type heapReader interface {
	Get(ctx context.Context, rid pager.RID) ([]byte, error)
	Scan(ctx context.Context, fn func(rid pager.RID, rec []byte) bool) error
	Pages() int64
	Count() int
}

// view is the read surface of the store at one moment: either the live
// heaps and trees (caller holds the read latch) or frozen snapshot
// views pinned at a commit epoch (lock-free).
type view struct {
	class   core.Class
	docs    heapReader
	catalog heapReader
	indexes map[string]btree.Reader
}

// liveView wraps the live store. Caller holds at least the read latch.
func (e *Engine) liveView() *view {
	ixs := make(map[string]btree.Reader, len(e.indexes))
	for t, ix := range e.indexes {
		ixs[t] = ix
	}
	return &view{class: e.class, docs: e.docs, catalog: e.catalog, indexes: ixs}
}

// publishLocked freezes the store at epoch and publishes it for
// snapshot readers. The caller holds the write lock and has synced the
// heaps, so the views freeze without flushing anything.
func (e *Engine) publishLocked(epoch uint64) error {
	if !e.loaded {
		e.snap.Publish(epoch, nil)
		return nil
	}
	docs, err := e.docs.View(epoch)
	if err != nil {
		e.snap.Publish(epoch, nil)
		return err
	}
	catalog, err := e.catalog.View(epoch)
	if err != nil {
		e.snap.Publish(epoch, nil)
		return err
	}
	ixs := make(map[string]btree.Reader, len(e.indexes))
	for t, ix := range e.indexes {
		ixs[t] = ix.ViewAt(epoch)
	}
	e.snap.Publish(epoch, &view{class: e.class, docs: docs, catalog: catalog, indexes: ixs})
	return nil
}

// SetSnapshots toggles MVCC snapshot reads (default on). Disabled,
// Execute falls back to the engine read latch and quiesces behind
// writers — the pre-MVCC baseline the update-fraction sweep compares
// against.
func (e *Engine) SetSnapshots(on bool) { e.snap.SetEnabled(on) }

// SnapshotsEnabled reports whether snapshot reads are on.
func (e *Engine) SnapshotsEnabled() bool { return e.snap.Enabled() }

// New returns an empty native engine with the given buffer pool size in
// pages (<= 0 selects the default), storing persistent DOM pages at
// document granularity.
func New(poolPages int) *Engine { return NewWithFormat(poolPages, FormatDOM) }

// NewWithFormat returns an engine with an explicit storage format.
func NewWithFormat(poolPages int, f Format) *Engine {
	e, err := NewWithOptions(poolPages, Options{Format: f})
	if err != nil {
		panic(err) // unreachable: no format/segment conflict possible here
	}
	return e
}

// NewWithOptions returns an engine with full storage options.
func NewWithOptions(poolPages int, opts Options) (*Engine, error) {
	if opts.Segmented && opts.Format != FormatDOM {
		return nil, fmt.Errorf("native: segmented storage requires FormatDOM")
	}
	if opts.SegmentThreshold <= 0 {
		opts.SegmentThreshold = defaultSegmentThreshold
	}
	p := pager.New(poolPages)
	p.SetMetrics(metrics.NewRegistry())
	e := &Engine{
		p:       p,
		opts:    opts,
		docs:    pager.NewHeap(p, "documents"),
		catalog: pager.NewHeap(p, "catalog"),
		indexes: map[string]*btree.Tree{},
		journal: updatelog.New(p, "updates"),
	}
	e.snap.SetEnabled(true)
	p.StartGC(engsnap.GCInterval)
	return e, nil
}

// Name implements core.Engine.
func (e *Engine) Name() string { return "X-Hive" }

// Supports implements core.Engine: a native XML store hosts every class
// and size.
func (e *Engine) Supports(core.Class, core.Size) error { return nil }

// docEntry is one catalog record: a document name plus the record(s)
// holding its content. Unsegmented documents have exactly one rid;
// segmented documents have a header rid followed by one rid per top-level
// subtree.
type docEntry struct {
	name      string
	segmented bool
	rids      []pager.RID
}

func encodeCatalogEntry(en docEntry) []byte {
	buf := make([]byte, 0, 2+9*len(en.rids)+len(en.name))
	if en.segmented {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(len(en.rids)))
	for _, r := range en.rids {
		buf = binary.AppendUvarint(buf, uint64(r))
	}
	return append(buf, en.name...)
}

func decodeCatalogEntry(rec []byte) (docEntry, error) {
	var en docEntry
	if len(rec) < 2 {
		return en, fmt.Errorf("native: catalog record too short")
	}
	en.segmented = rec[0] == 1
	pos := 1
	n, sz := binary.Uvarint(rec[pos:])
	if sz <= 0 || n == 0 || n > uint64(len(rec)) {
		return en, fmt.Errorf("native: corrupt catalog record")
	}
	pos += sz
	en.rids = make([]pager.RID, n)
	for i := range en.rids {
		v, sz := binary.Uvarint(rec[pos:])
		if sz <= 0 {
			return en, fmt.Errorf("native: corrupt catalog rid")
		}
		en.rids[i] = pager.RID(v)
		pos += sz
	}
	en.name = string(rec[pos:])
	return en, nil
}

// Pager exposes the engine's pager for fault injection and recovery.
func (e *Engine) Pager() *pager.Pager { return e.p }

// Metrics returns the engine's metrics registry, shared by its pager,
// B+tree indexes and query path.
func (e *Engine) Metrics() *metrics.Registry { return e.p.Metrics() }

// reset empties the store so Load is idempotent: a repeated or resumed
// load never sees leftovers from an earlier attempt. The published
// snapshot is withdrawn first so readers fall back to the locked path
// rather than chase views into truncated files.
func (e *Engine) reset() error {
	e.snap.Publish(e.p.SnapshotEpoch(), nil)
	e.indexes = map[string]*btree.Tree{}
	e.loaded = false
	if err := e.docs.Reset(); err != nil {
		return err
	}
	if err := e.journal.Reset(); err != nil {
		return err
	}
	return e.catalog.Reset()
}

// abortLoad handles a mid-load failure: after a crash the machine is down
// and cleanup is impossible (pager recovery is the only path forward);
// any other failure truncates the store so the database stays empty and
// loadable.
func (e *Engine) abortLoad(err error) error {
	if pager.IsCrash(err) {
		return err
	}
	_ = e.reset() // best-effort; the original error wins
	return err
}

// Load implements core.Engine: parse (well-formedness check, as the paper
// does with validation off) and persist each document. A failed load
// leaves an empty, loadable database (see abortLoad).
// Load drains pinned snapshots before truncating: a reader holding a
// pre-load snapshot would otherwise race the wholesale truncate, whose
// pre-images are deliberately not versioned.
func (e *Engine) Load(ctx context.Context, db *core.Database) (core.LoadStats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.p.BlockPins()
	defer e.p.UnblockPins()
	if err := e.reset(); err != nil {
		return core.LoadStats{}, err
	}
	st, err := e.loadDocs(ctx, db)
	if err != nil {
		return st, e.abortLoad(err)
	}
	e.loaded = true
	if err := e.publishLocked(e.p.AdvanceEpoch()); err != nil {
		return st, e.abortLoad(err)
	}
	return st, nil
}

func (e *Engine) loadDocs(ctx context.Context, db *core.Database) (core.LoadStats, error) {
	var st core.LoadStats
	e.class = db.Class
	start := e.p.Stats()
	for _, d := range db.Docs {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		doc, err := xmldom.Parse(d.Data)
		if err != nil {
			return st, fmt.Errorf("native: %s: %w", d.Name, err)
		}
		st.Nodes += doc.CountNodes()
		en, err := e.storeDocument(d.Name, doc, d.Data)
		if err != nil {
			return st, err
		}
		if _, err := e.catalog.Insert(encodeCatalogEntry(en)); err != nil {
			return st, err
		}
		// Each document arrives as a separate file and is persisted
		// (synced) individually; the per-document I/O is what makes DC/MD
		// (very many files) the slowest class to load for every system in
		// Table 4.
		if err := e.docs.Sync(); err != nil {
			return st, err
		}
		st.Documents++
		st.Bytes += len(d.Data)
	}
	if err := e.docs.Sync(); err != nil {
		return st, err
	}
	if err := e.catalog.Sync(); err != nil {
		return st, err
	}
	st.PageIO = e.p.Stats().IO() - start.IO()
	return st, nil
}

// storeDocument writes one document according to the storage options.
func (e *Engine) storeDocument(name string, doc *xmldom.Node, raw []byte) (docEntry, error) {
	en := docEntry{name: name}
	root := doc.Root()
	if e.opts.Segmented && root != nil && len(root.Elements()) >= e.opts.SegmentThreshold {
		// Header: the root element stripped of children.
		header := &xmldom.Node{Kind: xmldom.ElementKind, Name: root.Name}
		header.Attrs = append([]xmldom.Attr(nil), root.Attrs...)
		rid, err := e.docs.Insert(xmldom.EncodeBinary(header))
		if err != nil {
			return en, err
		}
		en.segmented = true
		en.rids = append(en.rids, rid)
		for _, c := range root.Children {
			rid, err := e.docs.Insert(xmldom.EncodeBinary(c))
			if err != nil {
				return en, err
			}
			en.rids = append(en.rids, rid)
		}
		return en, nil
	}
	data := raw
	if e.opts.Format == FormatDOM {
		data = xmldom.EncodeBinary(doc)
	}
	rid, err := e.docs.Insert(data)
	if err != nil {
		return en, err
	}
	en.rids = []pager.RID{rid}
	return en, nil
}

// decodeRecord rebuilds a node tree from one stored record of v.
func (e *Engine) decodeRecord(ctx context.Context, v *view, rid pager.RID) (*xmldom.Node, error) {
	data, err := v.docs.Get(ctx, rid)
	if err != nil {
		return nil, err
	}
	if e.opts.Format == FormatDOM {
		return xmldom.DecodeBinary(data)
	}
	return xmldom.Parse(data)
}

// assembleDoc materializes a document, optionally restricted to a set of
// segments (1-based segment numbers; nil means all). Partial assembly is
// only valid for queries that select top-level subtrees by value — which
// is what the index locators guarantee.
func (e *Engine) assembleDoc(ctx context.Context, v *view, en docEntry, segs []int) (*xmldom.Node, error) {
	if !en.segmented {
		node, err := e.decodeRecord(ctx, v, en.rids[0])
		if err != nil {
			return nil, err
		}
		if node.Kind == xmldom.DocumentKind {
			return node, nil
		}
		doc := xmldom.NewDocument()
		doc.Append(node)
		doc.Renumber()
		return doc, nil
	}
	header, err := e.decodeRecord(ctx, v, en.rids[0])
	if err != nil {
		return nil, err
	}
	doc := xmldom.NewDocument()
	root := doc.Append(header)
	if segs == nil {
		for i := 1; i < len(en.rids); i++ {
			child, err := e.decodeRecord(ctx, v, en.rids[i])
			if err != nil {
				return nil, err
			}
			root.Append(child)
		}
	} else {
		sort.Ints(segs)
		for _, s := range segs {
			if s < 1 || s >= len(en.rids) {
				return nil, fmt.Errorf("native: segment %d out of range", s)
			}
			child, err := e.decodeRecord(ctx, v, en.rids[s])
			if err != nil {
				return nil, err
			}
			root.Append(child)
		}
	}
	doc.Renumber()
	return doc, nil
}

// Index locators pack (document position, segment) into the B+tree's
// uint64 value: seg 0 means "whole document".
const locatorSegBits = 20

func makeLocator(docPos, seg int) uint64 {
	return uint64(docPos)<<locatorSegBits | uint64(seg)
}

func splitLocator(loc uint64) (docPos, seg int) {
	return int(loc >> locatorSegBits), int(loc & (1<<locatorSegBits - 1))
}

// BuildIndexes implements core.Engine: value indexes mapping the target
// element/attribute value to a (document, segment) locator.
func (e *Engine) BuildIndexes(specs []core.IndexSpec) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	ctx := context.Background()
	v := e.liveView()
	e.p.BeginMutation()
	for _, spec := range specs {
		if _, dup := e.indexes[spec.Target]; dup {
			continue
		}
		ix, err := btree.New(e.p, "idx:"+spec.Target)
		if err != nil {
			return err
		}
		elem, attr := splitTarget(spec.Target)
		err = e.scanCatalog(ctx, v, func(docPos int, en docEntry) (bool, error) {
			if !en.segmented {
				doc, err := e.decodeRecord(ctx, v, en.rids[0])
				if err != nil {
					return false, err
				}
				for _, v := range extractValues(doc, elem, attr) {
					if err := ix.Insert(v, makeLocator(docPos, 0)); err != nil {
						return false, err
					}
				}
				return true, nil
			}
			for seg := 0; seg < len(en.rids); seg++ {
				node, err := e.decodeRecord(ctx, v, en.rids[seg])
				if err != nil {
					return false, err
				}
				for _, v := range extractValues(node, elem, attr) {
					// Header hits (seg 0) force a whole-document load.
					if err := ix.Insert(v, makeLocator(docPos, seg)); err != nil {
						return false, err
					}
				}
			}
			return true, nil
		})
		if err != nil {
			return err
		}
		// Persist the tree header so the index survives crash recovery.
		if err := ix.Sync(); err != nil {
			return err
		}
		e.indexes[spec.Target] = ix
	}
	if err := e.p.SyncAll(); err != nil {
		return err
	}
	return e.publishLocked(e.p.EndMutation())
}

// splitTarget parses Table 3 notation: "hw", "article/@id".
func splitTarget(target string) (elem, attr string) {
	if i := strings.Index(target, "/@"); i >= 0 {
		return target[:i], target[i+2:]
	}
	return target, ""
}

// extractValues pulls the indexable values of one subtree.
func extractValues(doc *xmldom.Node, elem, attr string) []string {
	var vals []string
	doc.Walk(func(n *xmldom.Node) bool {
		if n.Kind == xmldom.ElementKind && n.Name == elem {
			if attr == "" {
				vals = append(vals, n.Text())
			} else if v, ok := n.Attr(attr); ok {
				vals = append(vals, v)
			}
		}
		return true
	})
	return vals
}

// scanCatalog walks v's on-disk catalog in load order.
func (e *Engine) scanCatalog(ctx context.Context, v *view, fn func(docPos int, en docEntry) (bool, error)) error {
	var inner error
	pos := 0
	err := v.catalog.Scan(ctx, func(_ pager.RID, rec []byte) bool {
		en, err := decodeCatalogEntry(rec)
		if err != nil {
			inner = err
			return false
		}
		cont, err := fn(pos, en)
		pos++
		if err != nil {
			inner = err
			return false
		}
		return cont
	})
	if inner != nil {
		return inner
	}
	return err
}

// Execute implements core.Engine: evaluate the class's XQuery
// instantiation, using a value index to restrict the materialized
// document set when the query has a usable hint. It is safe to call from
// many goroutines; cancellation via ctx is honored at page-fetch
// granularity while documents are materialized.
// With snapshots on (the default), a query pins a commit epoch and runs
// against frozen heap and index views without touching the engine write
// lock, so U1-U3 updates never stall it.
func (e *Engine) Execute(ctx context.Context, q core.QueryID, p core.Params) (core.Result, error) {
	if snap, val, ok := e.snap.Pin(e.p); ok {
		defer snap.Release()
		return e.run(ctx, val.(*view), q, p)
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.run(ctx, e.liveView(), q, p)
}

// run executes q against v, which is either the live store (caller
// holds the read latch) or a pinned snapshot view (lock-free).
func (e *Engine) run(ctx context.Context, v *view, q core.QueryID, p core.Params) (core.Result, error) {
	def := queries.Lookup(v.class, q)
	if def == nil {
		return core.Result{}, core.ErrNoQuery
	}
	reg := e.Metrics()
	before := e.p.Stats()
	ph, err := plan.Plan(def, e.statValues(v))
	if err != nil {
		return core.Result{}, err
	}
	coll, err := e.buildCollection(ctx, v, ph, p)
	if err != nil {
		return core.Result{}, err
	}
	parseSpan := reg.StartSpan(metrics.PhaseParse)
	compiled, err := xquery.Parse(def.XQuery)
	parseSpan.End()
	if err != nil {
		return core.Result{}, fmt.Errorf("native: %s/%s: %w", v.class, q, err)
	}
	vars := map[string]xquery.Seq{}
	for k, v := range p {
		vars[k] = xquery.Seq{v}
	}
	evalSpan := reg.StartSpan(metrics.PhaseEval)
	seq, err := compiled.EvalWithVars(coll, vars)
	evalSpan.End()
	if err != nil {
		return core.Result{}, fmt.Errorf("native: %s/%s: %w", v.class, q, err)
	}
	return core.Result{
		Items:           xquery.SerializeSeq(seq),
		OrderGuaranteed: true,
		PageIO:          e.p.Stats().IO() - before.IO(),
	}, nil
}

// statValues derives planner statistics from v: document heap pages,
// catalog entry count, the heights of the value indexes, and the range
// selectivities execution has observed so far.
func (e *Engine) statValues(v *view) plan.StatValues {
	st := plan.StatValues{
		DataPages: v.docs.Pages(),
		DataRows:  int64(v.catalog.Count()),
		Indexes:   make(map[string]int, len(v.indexes)),
	}
	for target, ix := range v.indexes {
		st.Indexes[target] = ix.Height()
	}
	st.RangeSelectivity = e.planFB.Selectivity()
	return st
}

// Explain implements core.Explainer: the costed physical plan Execute
// would run, over the store's live statistics.
func (e *Engine) Explain(_ context.Context, q core.QueryID, _ core.Params) (*core.PlanNode, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	def := queries.Lookup(e.class, q)
	if def == nil {
		return nil, core.ErrNoQuery
	}
	ph, err := plan.Plan(def, e.statValues(e.liveView()))
	if err != nil {
		return nil, err
	}
	return ph.Root, nil
}

var _ core.Explainer = (*Engine)(nil)

// buildCollection materializes the documents the physical plan's access
// path selects: an index-probed subset (equality or range), a single
// named document for doc()-based queries, or the whole database for
// scans. The catalog is always read from disk (cold-run cost
// proportional to document count).
func (e *Engine) buildCollection(ctx context.Context, v *view, ph *plan.Physical, p core.Params) (*xquery.Collection, error) {
	reg := e.Metrics()
	coll := xquery.NewCollection()
	addDoc := func(en docEntry, segs []int) error {
		sp := reg.StartSpan(metrics.PhaseMaterialize)
		doc, err := e.assembleDoc(ctx, v, en, segs)
		sp.End()
		if err != nil {
			return err
		}
		coll.Add(en.name, doc)
		return nil
	}

	// doc("...") queries need only the named document, but locating it
	// still walks the on-disk catalog.
	if docName := p.Get("DOC"); docName != "" && ph.Access == plan.AccessDoc {
		found := false
		scanSpan := reg.StartSpan(metrics.PhaseScan)
		err := e.scanCatalog(ctx, v, func(_ int, en docEntry) (bool, error) {
			if en.name == docName {
				found = true
				return false, addDoc(en, nil)
			}
			return true, nil
		})
		scanSpan.End()
		if err != nil {
			return nil, err
		}
		if !found {
			return nil, fmt.Errorf("native: document %q not found", docName)
		}
		return coll, nil
	}

	if ix, ok := v.indexes[ph.IndexTarget]; ok && ph.Access == plan.AccessIndex {
		probeSpan := reg.StartSpan(metrics.PhaseIndexProbe)
		var (
			locs []uint64
			err  error
		)
		if ph.IndexParam != "" {
			locs, err = ix.Search(ctx, p.Get(ph.IndexParam))
		} else {
			// Range probe (date windows): the value index is ordered, so
			// the locators of every in-range value come from one range
			// traversal instead of a full scan.
			err = ix.Range(ctx, p.Get(ph.LoParam), p.Get(ph.HiParam), func(_ string, v uint64) bool {
				locs = append(locs, v)
				return true
			})
		}
		probeSpan.End()
		if err != nil {
			return nil, err
		}
		// Group locators per document; a seg-0 locator demands the whole
		// document.
		wantSegs := map[int][]int{}
		wantAll := map[int]bool{}
		for _, l := range locs {
			docPos, seg := splitLocator(l)
			if seg == 0 {
				wantAll[docPos] = true
			} else {
				wantSegs[docPos] = append(wantSegs[docPos], seg)
			}
		}
		if ph.LoParam != "" {
			// Range probe: feed the observed selectivity (documents the
			// window kept / documents in the catalog) back to the cost
			// model for the next Plan call.
			e.planFB.Observe(ph.FeedbackTarget,
				int64(len(wantAll)+len(wantSegs)), int64(v.catalog.Count()))
		}
		// Some queries join against other documents (Q19 joins orders with
		// the flat customers document); always include the flat documents
		// of multi-document DC databases.
		scanSpan := reg.StartSpan(metrics.PhaseScan)
		err = e.scanCatalog(ctx, v, func(docPos int, en docEntry) (bool, error) {
			switch {
			case wantAll[docPos]:
				return true, addDoc(en, nil)
			case len(wantSegs[docPos]) > 0:
				return true, addDoc(en, wantSegs[docPos])
			case v.class == core.DCMD && !strings.HasPrefix(en.name, "order"):
				return true, addDoc(en, nil)
			}
			return true, nil
		})
		scanSpan.End()
		return coll, err
	}

	// Sequential scan: materialize everything.
	scanSpan := reg.StartSpan(metrics.PhaseScan)
	err := e.scanCatalog(ctx, v, func(_ int, en docEntry) (bool, error) {
		return true, addDoc(en, nil)
	})
	scanSpan.End()
	return coll, err
}

// ColdReset implements core.Engine. It quiesces: in-flight queries
// finish before the pool is dropped, and queries submitted during the
// reset wait for it.
func (e *Engine) ColdReset() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.p.ColdReset()
}

// PageIO implements core.Engine. Lock-free: safe concurrently with
// Execute.
func (e *Engine) PageIO() int64 { return e.p.Stats().IO() }

// Close implements core.Engine: dirty pages are flushed best-effort and
// the pager's file handles and pool are released. Double-Close is safe.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.snap.Publish(e.p.SnapshotEpoch(), nil)
	e.loaded = false
	e.indexes = map[string]*btree.Tree{}
	return e.p.Close()
}

// DocumentCount returns the number of stored documents.
func (e *Engine) DocumentCount() int { return e.catalog.Count() }

var _ core.Engine = (*Engine)(nil)

// The update operations below implement the U1-U3 update workload the
// paper lists as future work. Every mutation follows the journal-first
// protocol: validate, append one logical redo record to the update
// journal and sync it (the commit point), then apply the multi-page
// catalog rewrite. After a crash, RecoverUpdates reloads the database
// and re-applies the committed journal, so the store recovers to exactly
// the pre- or post-update state, never a torn catalog.

// InsertDocument adds a new document (U1). It fails if the name exists.
// Value indexes become stale and are dropped; rebuild with BuildIndexes.
func (e *Engine) InsertDocument(ctx context.Context, name string, data []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	parsed, err := xmldom.Parse(data)
	if err != nil {
		return fmt.Errorf("native: insert %s: %w", name, err)
	}
	exists, err := e.hasDocument(ctx, name)
	if err != nil {
		return err
	}
	if exists {
		return fmt.Errorf("native: insert %s: document already exists", name)
	}
	e.p.BeginMutation()
	if err := e.journal.Append(updatelog.Record{Kind: updatelog.KindInsert, Name: name, Data: data}); err != nil {
		return err
	}
	en, err := e.storeDocument(name, parsed, data)
	if err != nil {
		return err
	}
	if err := e.docs.Sync(); err != nil {
		return err
	}
	if _, err := e.catalog.Insert(encodeCatalogEntry(en)); err != nil {
		return err
	}
	if err := e.catalog.Sync(); err != nil {
		return err
	}
	e.indexes = map[string]*btree.Tree{}
	return e.publishLocked(e.p.EndMutation())
}

// ReplaceDocument replaces the named document with new content, or adds
// it when absent (U2). Value indexes become stale and are dropped;
// rebuild them with BuildIndexes.
func (e *Engine) ReplaceDocument(ctx context.Context, name string, data []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	parsed, err := xmldom.Parse(data)
	if err != nil {
		return fmt.Errorf("native: replace %s: %w", name, err)
	}
	e.p.BeginMutation()
	if err := e.journal.Append(updatelog.Record{Kind: updatelog.KindReplace, Name: name, Data: data}); err != nil {
		return err
	}
	if err := e.rewriteCatalog(ctx, name, parsed, data, true); err != nil {
		return err
	}
	return e.publishLocked(e.p.EndMutation())
}

// DeleteDocument removes the named document (U3). It returns an error
// when the document does not exist.
func (e *Engine) DeleteDocument(ctx context.Context, name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	exists, err := e.hasDocument(ctx, name)
	if err != nil {
		return err
	}
	if !exists {
		return fmt.Errorf("native: document %q not found", name)
	}
	e.p.BeginMutation()
	if err := e.journal.Append(updatelog.Record{Kind: updatelog.KindDelete, Name: name}); err != nil {
		return err
	}
	if err := e.rewriteCatalog(ctx, name, nil, nil, false); err != nil {
		return err
	}
	return e.publishLocked(e.p.EndMutation())
}

// RecoverUpdates restores the document store after a crash. Call pager
// Recover first; RecoverUpdates then reloads db (wiping any torn catalog
// rewrite) and re-applies the committed update journal in order. Value
// indexes are dropped by the reload; rebuild with BuildIndexes.
func (e *Engine) RecoverUpdates(ctx context.Context, db *core.Database) error {
	return updatelog.Replay(ctx, e, e.journal, db)
}

// hasDocument reports whether a catalog entry with the name exists.
// Caller holds the write lock.
func (e *Engine) hasDocument(ctx context.Context, name string) (bool, error) {
	found := false
	err := e.scanCatalog(ctx, e.liveView(), func(_ int, en docEntry) (bool, error) {
		if en.name == name {
			found = true
			return false, nil
		}
		return true, nil
	})
	return found, err
}

// rewriteCatalog rebuilds the catalog heap without (or with a replacement
// for) the named document. Document bytes already stored stay in the
// documents heap (space is reclaimed only by a full reload, like a
// vacuum-less store); the catalog is the source of truth.
func (e *Engine) rewriteCatalog(ctx context.Context, name string, parsed *xmldom.Node, raw []byte, upsert bool) error {
	var entries []docEntry
	found := false
	err := e.scanCatalog(ctx, e.liveView(), func(_ int, en docEntry) (bool, error) {
		if en.name == name {
			found = true
			return true, nil // drop the old entry
		}
		entries = append(entries, en)
		return true, nil
	})
	if err != nil {
		return err
	}
	if !found && !upsert {
		return fmt.Errorf("native: document %q not found", name)
	}
	if upsert {
		en, err := e.storeDocument(name, parsed, raw)
		if err != nil {
			return err
		}
		if err := e.docs.Sync(); err != nil {
			return err
		}
		entries = append(entries, en)
	}
	if err := e.catalog.Reset(); err != nil {
		return err
	}
	for _, en := range entries {
		if _, err := e.catalog.Insert(encodeCatalogEntry(en)); err != nil {
			return err
		}
	}
	if err := e.catalog.Sync(); err != nil {
		return err
	}
	// Indexes may now point at removed documents; drop them so queries
	// fall back to scans until BuildIndexes is called again.
	e.indexes = map[string]*btree.Tree{}
	return nil
}

// DropIndexes discards all value indexes (their pages are abandoned; a
// fresh BuildIndexes recreates them).
func (e *Engine) DropIndexes() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.indexes = map[string]*btree.Tree{}
	// Republish at the unchanged epoch so snapshot readers also stop
	// probing the dropped indexes; no pages moved, so views stay valid.
	_ = e.publishLocked(e.p.SnapshotEpoch())
}
