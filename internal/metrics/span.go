package metrics

import "time"

// Canonical phase names used across the engines. An engine records only
// the phases its architecture has: a shredded engine has no parse phase
// at query time, a sequential scan has no index probe.
const (
	PhaseParse       = "parse"       // XQuery/XML parsing
	PhasePlan        = "plan"        // plan lookup / translation
	PhaseIndexProbe  = "index-probe" // B+tree probes (value or key indexes)
	PhaseScan        = "scan"        // catalog/table/CLOB scans
	PhaseMaterialize = "materialize" // decoding records into DOM/rows
	PhaseEval        = "eval"        // XQuery evaluation over the DOM
)

// Span attributes wall-clock time to a named phase. Obtain one with
// Registry.StartSpan and finish it with End; the elapsed time lands in
// the "phase.<name>.ns" counter and the "phase.<name>" histogram. The
// zero/nil Span is inert, so spans on a nil registry cost two monotonic
// clock reads and nothing else.
type Span struct {
	reg   *Registry
	name  string
	start time.Time
}

// StartSpan begins timing a phase. Safe on a nil registry.
func (r *Registry) StartSpan(name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{reg: r, name: name, start: time.Now()}
}

// End stops the span and records its duration. Calling End on the zero
// Span is a no-op; calling it twice records the phase twice (don't).
func (s Span) End() {
	if s.reg == nil {
		return
	}
	d := time.Since(s.start)
	s.reg.Counter(phasePrefix + s.name + phaseSuffix).Add(int64(d))
	s.reg.Histogram(phasePrefix + s.name).Observe(d)
}

// Time runs fn inside a span — the closure-friendly form for callers
// that time a whole block.
func (r *Registry) Time(name string, fn func() error) error {
	sp := r.StartSpan(name)
	defer sp.End()
	return fn()
}
