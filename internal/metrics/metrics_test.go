package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Counter("x").Add(5)
	r.Counter("x").Set(9)
	r.Counter("x").SetMax(9)
	if got := r.Counter("x").Value(); got != 0 {
		t.Fatalf("nil counter value = %d", got)
	}
	r.Histogram("h").Observe(time.Millisecond)
	if r.Histogram("h").Count() != 0 || r.Histogram("h").P99() != 0 {
		t.Fatal("nil histogram recorded something")
	}
	sp := r.StartSpan(PhaseScan)
	sp.End()
	if n := len(r.Snapshot().Counters); n != 0 {
		t.Fatalf("nil registry snapshot has %d counters", n)
	}
	if err := r.Time("p", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestCounters(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pager.read")
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Fatalf("counter = %d, want 4", c.Value())
	}
	if r.Counter("pager.read") != c {
		t.Fatal("Counter did not return the same instance")
	}
	g := r.Counter("btree.idx:hw.height")
	g.SetMax(3)
	g.SetMax(2)
	if g.Value() != 3 {
		t.Fatalf("SetMax regressed to %d", g.Value())
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	r.Counter("pager.read").Add(10)
	r.Counter("pager.hit").Add(30)
	r.Counter("btree.idx.height").Set(2)
	before := r.Snapshot()
	r.Counter("pager.read").Add(5)
	r.Counter("pager.write").Add(2)
	r.Counter("btree.idx.height").Set(3)
	sp := r.StartSpan(PhaseScan)
	time.Sleep(time.Millisecond)
	sp.End()
	b := r.Snapshot().Delta(before)

	if got := b.Get("pager.read"); got != 5 {
		t.Fatalf("pager.read delta = %d, want 5", got)
	}
	if got := b.Get("pager.write"); got != 2 {
		t.Fatalf("pager.write delta = %d, want 2", got)
	}
	if got := b.Get("pager.hit"); got != 0 {
		t.Fatalf("unchanged counter leaked into delta: %d", got)
	}
	if got := b.Get("btree.idx.height"); got != 3 {
		t.Fatalf("gauge delta = %d, want level 3", got)
	}
	if b.PagerIO() != 7 {
		t.Fatalf("PagerIO = %d, want 7", b.PagerIO())
	}
	if d := b.Phases[PhaseScan]; d < time.Millisecond {
		t.Fatalf("scan phase = %v, want >= 1ms", d)
	}
	if _, ok := b.Counters["phase.scan.ns"]; ok {
		t.Fatal("phase counter leaked into Counters")
	}
	hit, ok := b.CacheHitRate()
	if !ok || hit != 0 {
		t.Fatalf("hit rate = %v, %v; want 0 (no hits in delta)", hit, ok)
	}
}

func TestCacheHitRate(t *testing.T) {
	b := Breakdown{Counters: map[string]int64{"pager.hit": 9, "pager.read": 1}}
	hit, ok := b.CacheHitRate()
	if !ok || hit != 0.9 {
		t.Fatalf("hit rate = %v, %v; want 0.9", hit, ok)
	}
	if _, ok := (Breakdown{Counters: map[string]int64{}}).CacheHitRate(); ok {
		t.Fatal("hit rate defined with no page accesses")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	// Buckets are powers of two, so quantiles are bucket-resolution
	// estimates: p50 of 1..100ms must land within (32ms, 64ms] and the
	// estimate must be ordered p50 <= p95 <= p99.
	p50, p95, p99 := h.P50(), h.P95(), h.P99()
	if p50 <= 32*time.Millisecond || p50 > 64*time.Millisecond {
		t.Fatalf("p50 = %v, want in (32ms, 64ms]", p50)
	}
	if p95 < p50 || p99 < p95 {
		t.Fatalf("quantiles out of order: %v %v %v", p50, p95, p99)
	}
	if p99 > bucketUpper(bucketFor(100*time.Millisecond)) {
		t.Fatalf("p99 = %v, beyond the 100ms max's bucket edge", p99)
	}
	if m := h.Mean(); m < 40*time.Millisecond || m > 60*time.Millisecond {
		t.Fatalf("mean = %v, want ~50.5ms", m)
	}
}

func TestHistogramEdges(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram not zero")
	}
	h.Observe(0)
	h.Observe(-time.Second) // clamped
	h.Observe(200 * 365 * 24 * time.Hour)
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if q := h.Quantile(1.0); q < bucketUpper(NumBuckets-2) {
		t.Fatalf("max quantile = %v, want top bucket", q)
	}
	if h.Quantile(-1) > time.Microsecond {
		t.Fatal("q<0 not clamped to min")
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("pager.read").Inc()
				r.Histogram("phase.scan").Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("pager.read").Value(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
	if got := r.Histogram("phase.scan").Count(); got != 8000 {
		t.Fatalf("concurrent histogram = %d, want 8000", got)
	}
}

func TestPhaseNameParsing(t *testing.T) {
	if n, ok := phaseName("phase.index-probe.ns"); !ok || n != "index-probe" {
		t.Fatalf("phaseName = %q, %v", n, ok)
	}
	for _, bad := range []string{"pager.read", "phase..ns", "phase.x", "x.ns"} {
		if _, ok := phaseName(bad); ok {
			t.Fatalf("phaseName accepted %q", bad)
		}
	}
}
