package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed bucket count of every Histogram. Bucket i
// covers durations in (2^(i-1), 2^i] microseconds, with bucket 0
// covering (0, 1µs]; the top bucket is open-ended. 40 buckets reach
// 2^39 µs ≈ 6.4 days — far beyond any cell this benchmark measures —
// while keeping the histogram a fixed 336 bytes of atomics.
const NumBuckets = 40

// Histogram is a fixed-bucket, lock-free latency histogram with
// power-of-two microsecond buckets. Observations and quantile reads are
// safe concurrently; quantiles read a best-effort snapshot. A nil
// *Histogram ignores observations and reports zeros.
type Histogram struct {
	buckets [NumBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketFor maps a duration to its bucket index.
func bucketFor(d time.Duration) int {
	us := d.Microseconds()
	if us <= 1 {
		return 0
	}
	i := bits.Len64(uint64(us - 1)) // ceil(log2(us))
	if i >= NumBuckets {
		return NumBuckets - 1
	}
	return i
}

// bucketUpper returns the inclusive upper bound of a bucket.
func bucketUpper(i int) time.Duration {
	return time.Duration(1<<uint(i)) * time.Microsecond
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.buckets[bucketFor(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / time.Duration(n)
}

// Quantile estimates the q-th quantile (0 <= q <= 1) by linear
// interpolation within the bucket holding the target rank. The estimate
// is bounded above by the bucket's upper edge, so p99 of a set of
// identical sub-microsecond observations reads 1µs, never more than one
// bucket away from the truth.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if math.IsNaN(q) || q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := 0; i < NumBuckets; i++ {
		n := float64(h.buckets[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lower := time.Duration(0)
			if i > 0 {
				lower = bucketUpper(i - 1)
			}
			upper := bucketUpper(i)
			frac := (rank - cum) / n
			return lower + time.Duration(frac*float64(upper-lower))
		}
		cum += n
	}
	return bucketUpper(NumBuckets - 1)
}

// P50, P95 and P99 are the percentile shorthands the report tables use.
func (h *Histogram) P50() time.Duration { return h.Quantile(0.50) }

// P95 estimates the 95th percentile.
func (h *Histogram) P95() time.Duration { return h.Quantile(0.95) }

// P99 estimates the 99th percentile.
func (h *Histogram) P99() time.Duration { return h.Quantile(0.99) }
