// Package metrics is the observability substrate of the benchmark: cheap
// atomic counters, fixed-bucket latency histograms with percentile
// estimation, and a span-style tracer that attributes wall-clock time to
// named execution phases (parse, plan, index-probe, scan, materialize).
//
// One Registry is owned by each engine instance and shared — through the
// engine's pager — by every layer underneath it: the pager counts disk
// reads/writes/hits/evictions/WAL appends/fault retries, the B+tree
// counts node visits and splits, the relational engine counts index
// probes and table scans, and the engine's query path records phase
// spans. The workload driver snapshots the registry around a query so a
// Measurement carries the full delta, not just a wall-clock figure.
//
// Every method is safe on a nil receiver and does nothing, so
// instrumented code never has to guard the "metrics disabled" case; a
// counter increment on a live registry is one atomic add. Counter names
// are dot-separated "<layer>.<event>" (e.g. "pager.read", "btree.visit",
// "relational.probe"); phase time is exposed both as Breakdown.Phases and
// as "phase.<name>.ns" counters so deltas stay a plain map diff.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically-increasing (or gauge-set) atomic int64.
// A nil *Counter ignores all operations.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Set overwrites the value (gauge semantics, e.g. a tree height).
func (c *Counter) Set(n int64) {
	if c != nil {
		c.v.Store(n)
	}
}

// SetMax raises the value to n if n is larger (a high-water gauge).
func (c *Counter) SetMax(n int64) {
	if c == nil {
		return
	}
	for {
		cur := c.v.Load()
		if n <= cur || c.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Registry holds the named counters and histograms of one engine
// instance. Lookup is lock-protected; the returned Counter/Histogram
// operate lock-free, so hot paths should cache the pointer. A nil
// *Registry is valid and inert.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. On a nil
// registry it returns nil (which is itself safe to use).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named latency histogram, creating it on first
// use. On a nil registry it returns nil.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every counter value. Phase spans
// appear as "phase.<name>.ns" counters.
type Snapshot struct {
	Counters map[string]int64
}

// Snapshot copies the current counter values. On a nil registry it
// returns an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Counters: map[string]int64{}}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	return s
}

// Breakdown is the difference between two snapshots: what one measured
// operation (a query, a load) did at every instrumented layer.
type Breakdown struct {
	// Counters holds the non-phase counter deltas, e.g. "pager.read".
	Counters map[string]int64
	// Phases holds wall-clock time attributed to each named phase.
	// Phases can nest (a materialize span inside a scan span), so the
	// phase times are attributions, not a partition of the total.
	Phases map[string]time.Duration
}

// Delta returns the breakdown of activity between an earlier snapshot
// and this one. Gauge-style counters (names ending in ".height") are
// reported at their current value rather than as a difference.
func (s Snapshot) Delta(prev Snapshot) Breakdown {
	b := Breakdown{
		Counters: map[string]int64{},
		Phases:   map[string]time.Duration{},
	}
	for name, v := range s.Counters {
		d := v - prev.Counters[name]
		if IsGauge(name) {
			d = v
		}
		if d == 0 {
			continue
		}
		if phase, ok := phaseName(name); ok {
			b.Phases[phase] = time.Duration(d)
			continue
		}
		b.Counters[name] = d
	}
	return b
}

// Get returns a counter delta from the breakdown (0 when absent).
func (b Breakdown) Get(name string) int64 { return b.Counters[name] }

// PagerIO returns the disk reads+writes attributed by the pager counters.
func (b Breakdown) PagerIO() int64 {
	return b.Counters["pager.read"] + b.Counters["pager.write"]
}

// CacheHitRate returns the buffer-pool hit fraction of the breakdown's
// page accesses, and false when there were none.
func (b Breakdown) CacheHitRate() (float64, bool) {
	hits := b.Counters["pager.hit"]
	total := hits + b.Counters["pager.read"]
	if total == 0 {
		return 0, false
	}
	return float64(hits) / float64(total), true
}

// CounterNames returns the breakdown's counter names, sorted.
func (b Breakdown) CounterNames() []string {
	names := make([]string, 0, len(b.Counters))
	for n := range b.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PhaseNames returns the breakdown's phase names, sorted.
func (b Breakdown) PhaseNames() []string {
	names := make([]string, 0, len(b.Phases))
	for n := range b.Phases {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

const (
	phasePrefix = "phase."
	phaseSuffix = ".ns"
)

// phaseName extracts the phase from a "phase.<name>.ns" counter name.
func phaseName(counter string) (string, bool) {
	if len(counter) <= len(phasePrefix)+len(phaseSuffix) ||
		counter[:len(phasePrefix)] != phasePrefix ||
		counter[len(counter)-len(phaseSuffix):] != phaseSuffix {
		return "", false
	}
	return counter[len(phasePrefix) : len(counter)-len(phaseSuffix)], true
}

// IsGauge reports whether a counter holds a level, not an accumulation
// (names ending in ".height"). Deltas report gauges at their current
// value, and aggregation across runs should take the maximum, not a sum.
func IsGauge(name string) bool {
	const suf = ".height"
	return len(name) >= len(suf) && name[len(name)-len(suf):] == suf
}
