package client

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xbench/internal/wire"
)

// TestMuxSharesConnections: with pipelining on, many concurrent requests
// ride the configured number of mux connections instead of one
// connection each.
func TestMuxSharesConnections(t *testing.T) {
	fs := newFakeServer(t, func(n int, f wire.Frame) (wire.Frame, bool) {
		return okFrame([]byte("pong")), false
	})
	c := fs.client(Config{Pipeline: true, MuxConns: 1, Retries: -1})
	defer c.Close()

	const callers = 16
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if _, err := c.roundTrip(context.Background(), wire.OpPing, nilPayload, true); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	reqs, conns := fs.stats()
	if reqs != callers*10 {
		t.Fatalf("server saw %d requests, want %d", reqs, callers*10)
	}
	if conns != 1 {
		t.Fatalf("%d concurrent callers used %d connections, want 1 shared mux", callers, conns)
	}
}

// TestMuxOutOfOrderResponses: the reader must route responses by frame
// ID even when the server answers out of order — the property that makes
// server-side concurrent execution safe.
func TestMuxOutOfOrderResponses(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// A server that buffers pairs of requests and answers them reversed.
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			a, err := wire.ReadFrame(conn)
			if err != nil {
				return
			}
			b, err := wire.ReadFrame(conn)
			if err != nil {
				return
			}
			for _, f := range []wire.Frame{b, a} {
				resp := wire.Frame{Kind: byte(wire.StatusOK), ID: f.ID, Payload: f.Payload}
				if err := wire.WriteFrame(conn, resp); err != nil {
					return
				}
			}
		}
	}()

	c := newClient([]string{ln.Addr().String()}, Config{Pipeline: true, MuxConns: 1, Retries: -1})
	defer c.Close()
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := fmt.Sprintf("req-%d", i)
			payload, err := c.roundTrip(context.Background(), wire.OpPing,
				func(time.Duration) []byte { return []byte(want) }, true)
			if err != nil {
				errCh <- err
				return
			}
			if string(payload) != want {
				errCh <- fmt.Errorf("response %q routed to request %q", payload, want)
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestMuxFailureFailsAllPendingAndRecovers: killing the connection fails
// every in-flight request, and the next request dials a fresh mux.
func TestMuxFailureFailsAllPendingAndRecovers(t *testing.T) {
	var severed atomic.Bool
	fs := newFakeServer(t, func(n int, f wire.Frame) (wire.Frame, bool) {
		if !severed.Load() {
			severed.Store(true)
			return wire.Frame{}, true // sever with a request in flight
		}
		return okFrame([]byte("pong")), false
	})
	c := fs.client(Config{Pipeline: true, MuxConns: 1, Retries: -1})
	defer c.Close()

	if _, err := c.roundTrip(context.Background(), wire.OpPing, nilPayload, true); err == nil {
		t.Fatal("request on severed mux succeeded without retries")
	}
	// The mux died; a fresh request must transparently redial.
	payload, err := c.roundTrip(context.Background(), wire.OpPing, nilPayload, true)
	if err != nil {
		t.Fatalf("request after mux death: %v", err)
	}
	if string(payload) != "pong" {
		t.Fatalf("payload = %q", payload)
	}
	if _, conns := fs.stats(); conns != 2 {
		t.Fatalf("used %d connections, want 2 (dead mux + replacement)", conns)
	}
}

// TestMuxRetryAcrossFailure: with retries enabled, a severed mux is
// retried transparently like a poisoned pooled connection.
func TestMuxRetryAcrossFailure(t *testing.T) {
	fs := newFakeServer(t, func(n int, f wire.Frame) (wire.Frame, bool) {
		if n == 1 {
			return wire.Frame{}, true
		}
		return okFrame([]byte("pong")), false
	})
	c := fs.client(Config{Pipeline: true, Retries: 3, Backoff: time.Millisecond})
	defer c.Close()
	payload, err := c.roundTrip(context.Background(), wire.OpPing, nilPayload, true)
	if err != nil {
		t.Fatalf("retryable ping over mux failed: %v", err)
	}
	if string(payload) != "pong" {
		t.Fatalf("payload = %q", payload)
	}
}

// TestMuxContextCancelAbandonsRequest: a canceled waiter returns
// promptly, and the mux survives for other requests (the abandoned
// response is dropped by ID, not treated as desync).
func TestMuxContextCancelAbandonsRequest(t *testing.T) {
	block := make(chan struct{})
	fs := newFakeServer(t, func(n int, f wire.Frame) (wire.Frame, bool) {
		if n == 1 {
			<-block // hold the first response hostage
		}
		return okFrame([]byte("pong")), false
	})
	c := fs.client(Config{Pipeline: true, MuxConns: 1, Retries: -1})
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.roundTrip(ctx, wire.OpPing, nilPayload, true)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the request reach the server
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("abandoned request returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled request did not return")
	}
	close(block) // release the stale response; the mux must drop it by ID
	payload, err := c.roundTrip(context.Background(), wire.OpPing, nilPayload, true)
	if err != nil {
		t.Fatalf("request after abandoned predecessor: %v", err)
	}
	if string(payload) != "pong" {
		t.Fatalf("payload = %q", payload)
	}
	if _, conns := fs.stats(); conns != 1 {
		t.Fatalf("stale response killed the mux: %d conns", conns)
	}
}

// TestMuxPooledBufferHammer is the -race aliasing audit for the pooled
// serialization path: many goroutines issue keyed updates and queries
// with distinctive payloads through one mux while responses echo the
// payload back. Any double-put or premature reuse of a pooled buffer
// shows up as a race report or as a corrupted echo.
func TestMuxPooledBufferHammer(t *testing.T) {
	fs := newFakeServer(t, func(n int, f wire.Frame) (wire.Frame, bool) {
		// Echo the request payload so the client can verify integrity.
		return okFrame(append([]byte(nil), f.Payload...)), false
	})
	c := fs.client(Config{Pipeline: true, MuxConns: 2, Retries: -1, ClientID: 7})
	defer c.Close()

	const (
		goroutines = 12
		iters      = 60
	)
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				name := fmt.Sprintf("doc-%d-%d", g, i)
				data := []byte(fmt.Sprintf("<doc g=%d i=%d/>", g, i))
				want := wire.AppendUpdateRequest(nil, wire.UpdateRequest{Name: name, Data: data})
				// Correct pooled-payload lifecycle: the buffer is released
				// only after roundTrip returns (both transports copy the
				// payload out before then). Releasing it inside the builder
				// instead corrupts frames under load — that bug class is
				// exactly what this hammer exists to catch.
				bp := wire.GetBuf()
				echoed, err := c.roundTrip(context.Background(), wire.OpInsert,
					func(remaining time.Duration) []byte {
						b := wire.AppendUpdateRequest((*bp)[:0], wire.UpdateRequest{Name: name, Data: data})
						*bp = b
						return b
					}, true)
				wire.PutBuf(bp)
				if err != nil {
					errCh <- fmt.Errorf("g%d i%d: %w", g, i, err)
					return
				}
				if string(echoed) != string(want) {
					errCh <- fmt.Errorf("g%d i%d: payload corrupted in flight", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestMuxBatchWindowCoalesces: with a batch window, requests issued
// together leave in fewer (batched) writes. Observed indirectly: all
// succeed and share one connection; the window must not deadlock or
// starve the flush.
func TestMuxBatchWindowCoalesces(t *testing.T) {
	fs := newFakeServer(t, func(n int, f wire.Frame) (wire.Frame, bool) {
		return okFrame(nil), false
	})
	c := fs.client(Config{Pipeline: true, MuxConns: 1, BatchWindow: 2 * time.Millisecond, Retries: -1})
	defer c.Close()
	var wg sync.WaitGroup
	var failed atomic.Int32
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.roundTrip(context.Background(), wire.OpPing, nilPayload, true); err != nil {
				failed.Add(1)
			}
		}()
	}
	wg.Wait()
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d requests failed under batch window", n)
	}
	if _, conns := fs.stats(); conns != 1 {
		t.Fatalf("batch window used %d connections", conns)
	}
}

// TestMuxClientCloseFailsWaiters: Close must wake pipelined waiters with
// ErrClosed-or-transport-error instead of leaking them.
func TestMuxClientCloseFailsWaiters(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	fs := newFakeServer(t, func(n int, f wire.Frame) (wire.Frame, bool) {
		<-block
		return okFrame(nil), false
	})
	c := fs.client(Config{Pipeline: true, MuxConns: 1, Retries: -1})
	done := make(chan error, 1)
	go func() {
		_, err := c.roundTrip(context.Background(), wire.OpPing, nilPayload, true)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	c.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("waiter on closed client reported success")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close leaked a pipelined waiter")
	}
}
