package client

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"xbench/internal/core"
	"xbench/internal/wire"
)

// fakeServer speaks raw frames so tests can inject torn responses and
// protocol rejections without a real engine behind them. The handler
// receives the 1-based request ordinal; returning drop=true severs the
// connection without responding (a mid-request crash as the client
// sees it).
type fakeServer struct {
	ln     net.Listener
	handle func(n int, f wire.Frame) (resp wire.Frame, drop bool)

	mu     sync.Mutex
	reqs   int
	conns  int
	frames []wire.Frame
}

func newFakeServer(t *testing.T, handle func(int, wire.Frame) (wire.Frame, bool)) *fakeServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := &fakeServer{ln: ln, handle: handle}
	t.Cleanup(func() { ln.Close() })
	go fs.loop()
	return fs
}

func (fs *fakeServer) loop() {
	for {
		conn, err := fs.ln.Accept()
		if err != nil {
			return
		}
		fs.mu.Lock()
		fs.conns++
		fs.mu.Unlock()
		go func() {
			defer conn.Close()
			for {
				f, err := wire.ReadFrame(conn)
				if err != nil {
					return
				}
				fs.mu.Lock()
				fs.reqs++
				n := fs.reqs
				fs.frames = append(fs.frames, f)
				fs.mu.Unlock()
				resp, drop := fs.handle(n, f)
				if drop {
					return
				}
				if resp.ID == 0 {
					resp.ID = f.ID // echo unless the handler forged one
				}
				if err := wire.WriteFrame(conn, resp); err != nil {
					return
				}
			}
		}()
	}
}

func (fs *fakeServer) stats() (reqs, conns int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.reqs, fs.conns
}

func (fs *fakeServer) seen() []wire.Frame {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return append([]wire.Frame(nil), fs.frames...)
}

func (fs *fakeServer) addr() string { return fs.ln.Addr().String() }

func (fs *fakeServer) client(cfg Config) *Client {
	return newClient([]string{fs.addr()}, cfg)
}

func okFrame(payload []byte) wire.Frame {
	return wire.Frame{Kind: byte(wire.StatusOK), Payload: payload}
}

// deadAddr returns an address nothing listens on (listen then close, so
// the port was just free).
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestRetryTornResponseForIdempotentOp: a connection dropped after the
// request was written is retried for idempotent ops and the retry
// succeeds transparently.
func TestRetryTornResponseForIdempotentOp(t *testing.T) {
	fs := newFakeServer(t, func(n int, f wire.Frame) (wire.Frame, bool) {
		if n == 1 {
			return wire.Frame{}, true // sever without responding
		}
		return okFrame([]byte("pong")), false
	})
	c := fs.client(Config{Retries: 3, Backoff: time.Millisecond})
	payload, err := c.roundTrip(context.Background(), wire.OpPing, nilPayload, true)
	if err != nil {
		t.Fatalf("retryable ping failed: %v", err)
	}
	if string(payload) != "pong" {
		t.Fatalf("payload = %q", payload)
	}
	if reqs, _ := fs.stats(); reqs != 2 {
		t.Fatalf("server saw %d requests, want 2 (original + retry)", reqs)
	}
}

// TestUpdateRetriesWithSameKey: an insert whose response was lost is
// re-sent — and every leg carries the SAME idempotency key, so the
// server can recognize the retry and answer with the original outcome
// instead of double-applying.
func TestUpdateRetriesWithSameKey(t *testing.T) {
	fs := newFakeServer(t, func(n int, f wire.Frame) (wire.Frame, bool) {
		if n == 1 {
			return wire.Frame{}, true // lose the first response
		}
		return okFrame(nil), false
	})
	c := fs.client(Config{Retries: 3, Backoff: time.Millisecond, ClientID: 77})
	if err := c.InsertDocument(context.Background(), "order-update-1.xml", []byte("<order/>")); err != nil {
		t.Fatalf("insert with one lost response failed: %v", err)
	}
	frames := fs.seen()
	if len(frames) != 2 {
		t.Fatalf("server saw %d requests, want 2 (original + retry)", len(frames))
	}
	var keys []wire.IdemKey
	for _, f := range frames {
		req, err := wire.DecodeUpdateRequest(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, req.Key)
	}
	if !keys[0].Valid() {
		t.Fatal("update sent without an idempotency key")
	}
	if keys[0] != keys[1] {
		t.Fatalf("retry changed the idempotency key: %v then %v", keys[0], keys[1])
	}
	if keys[0].Client != 77 {
		t.Fatalf("key client = %d, want configured ClientID 77", keys[0].Client)
	}

	// A second logical update mints a FRESH key — retries dedup, new ops
	// do not.
	if err := c.DeleteDocument(context.Background(), "order-update-1.xml"); err != nil {
		t.Fatal(err)
	}
	req, err := wire.DecodeUpdateRequest(fs.seen()[2].Payload)
	if err != nil {
		t.Fatal(err)
	}
	if req.Key == keys[0] {
		t.Fatal("distinct logical updates shared an idempotency key")
	}
}

// TestOverloadedRetriedWithBackoff: StatusOverloaded is a pre-execution
// admission rejection — for idempotent ops the client backs off and
// retries instead of surfacing backpressure to the workload.
func TestOverloadedRetriedWithBackoff(t *testing.T) {
	fs := newFakeServer(t, func(n int, f wire.Frame) (wire.Frame, bool) {
		if n <= 2 {
			return wire.Frame{Kind: byte(wire.StatusOverloaded), Payload: []byte("busy")}, false
		}
		return okFrame(wire.EncodeResult(core.Result{})), false
	})
	c := fs.client(Config{Retries: 5, Backoff: time.Millisecond})
	if _, err := c.Execute(context.Background(), core.Q1, nil); err != nil {
		t.Fatalf("query through transient overload failed: %v", err)
	}
	if reqs, _ := fs.stats(); reqs != 3 {
		t.Fatalf("server saw %d requests, want 3 (two rejections + success)", reqs)
	}
}

// TestOverloadedSurfacesAfterRetriesExhausted: persistent overload still
// ends in the typed sentinel once the retry budget runs out.
func TestOverloadedSurfacesAfterRetriesExhausted(t *testing.T) {
	fs := newFakeServer(t, func(n int, f wire.Frame) (wire.Frame, bool) {
		return wire.Frame{Kind: byte(wire.StatusOverloaded), Payload: []byte("busy")}, false
	})
	c := fs.client(Config{Retries: 2, Backoff: time.Millisecond})
	_, err := c.Execute(context.Background(), core.Q1, nil)
	if !errors.Is(err, wire.ErrOverloaded) {
		t.Fatalf("err = %v, want wire.ErrOverloaded", err)
	}
	if reqs, _ := fs.stats(); reqs != 3 {
		t.Fatalf("server saw %d requests, want 3 (original + 2 retries)", reqs)
	}
}

// TestNoRetryForLoad: a bulk load whose response was lost is not
// re-sent — re-shipping the whole database is the caller's call.
func TestNoRetryForLoad(t *testing.T) {
	fs := newFakeServer(t, func(n int, f wire.Frame) (wire.Frame, bool) {
		return wire.Frame{}, true // always sever after reading the request
	})
	c := fs.client(Config{Retries: 3, Backoff: time.Millisecond})
	db := &core.Database{Class: core.DCSD, Size: core.Small}
	if _, err := c.Load(context.Background(), db); err == nil {
		t.Fatal("lost-response load reported success")
	}
	if reqs, _ := fs.stats(); reqs != 1 {
		t.Fatalf("server saw %d load requests, want exactly 1", reqs)
	}
}

// TestDialRetryHonorsContext: with nothing listening, the client backs
// off between dial attempts but must abandon the wait the moment the
// caller's context expires.
func TestDialRetryHonorsContext(t *testing.T) {
	c := newClient([]string{deadAddr(t)}, Config{Retries: 100, Backoff: time.Minute})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.roundTrip(ctx, wire.OpPing, nilPayload, true)
	if err == nil {
		t.Fatal("dial to a dead address succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("context-bounded retry took %v", elapsed)
	}
}

// TestPoolReusesConnections: sequential requests ride one pooled
// connection; Close drains the idle list.
func TestPoolReusesConnections(t *testing.T) {
	fs := newFakeServer(t, func(n int, f wire.Frame) (wire.Frame, bool) {
		return okFrame(nil), false
	})
	c := fs.client(Config{PoolSize: 2})
	for i := 0; i < 5; i++ {
		if _, err := c.roundTrip(context.Background(), wire.OpPing, nilPayload, true); err != nil {
			t.Fatal(err)
		}
	}
	if _, conns := fs.stats(); conns != 1 {
		t.Fatalf("5 sequential requests used %d connections, want 1", conns)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.roundTrip(context.Background(), wire.OpPing, nilPayload, true); !errors.Is(err, ErrClosed) {
		t.Fatalf("request on closed client: %v, want ErrClosed", err)
	}
}

// TestResponseIDMismatchPoisonsConnection: a desynchronized connection
// (wrong response id) must not be pooled for the next request.
func TestResponseIDMismatchPoisonsConnection(t *testing.T) {
	fs := newFakeServer(t, func(n int, f wire.Frame) (wire.Frame, bool) {
		resp := okFrame(nil)
		if n == 1 {
			return wire.Frame{Kind: resp.Kind, ID: f.ID + 999, Payload: nil}, false
		}
		return resp, false
	})
	c := fs.client(Config{Retries: -1})
	if _, err := c.roundTrip(context.Background(), wire.OpPing, nilPayload, true); err == nil {
		t.Fatal("mismatched response id accepted")
	}
	if _, err := c.roundTrip(context.Background(), wire.OpPing, nilPayload, true); err != nil {
		t.Fatalf("second request after poisoned conn: %v", err)
	}
	if _, conns := fs.stats(); conns != 2 {
		t.Fatalf("poisoned connection was reused: %d conns", conns)
	}
}

// TestFailoverToSecondAddress: with the primary dead, requests land on
// the secondary; once the primary's breaker opens, requests stop paying
// the dial-to-dead tax at all.
func TestFailoverToSecondAddress(t *testing.T) {
	fs := newFakeServer(t, func(n int, f wire.Frame) (wire.Frame, bool) {
		return okFrame([]byte("pong")), false
	})
	c := newClient([]string{deadAddr(t), fs.addr()}, Config{
		Retries: 5, Backoff: time.Millisecond,
		FailThreshold: 2, Cooldown: time.Hour, // breaker never re-probes in this test
		DialTimeout: 200 * time.Millisecond,
	})
	// Each call prefers the dead primary until its breaker opens after 2
	// consecutive dial failures, then sticks to the secondary.
	for i := 0; i < 4; i++ {
		if _, err := c.roundTrip(context.Background(), wire.OpPing, nilPayload, true); err != nil {
			t.Fatalf("call %d with live secondary failed: %v", i, err)
		}
	}
	if reqs, _ := fs.stats(); reqs != 4 {
		t.Fatalf("secondary saw %d requests, want 4", reqs)
	}
	c.mu.Lock()
	primaryOpen := c.eps[0].brk.open(time.Now())
	c.mu.Unlock()
	if !primaryOpen {
		t.Fatal("primary breaker still closed after consecutive dial failures")
	}
}

// TestDialAddrsFailover: the constructor itself fails over — a client
// handed a dead primary and a live secondary comes up.
func TestDialAddrsFailover(t *testing.T) {
	fs := newFakeServer(t, func(n int, f wire.Frame) (wire.Frame, bool) {
		return okFrame([]byte("stub-engine")), false
	})
	c, err := DialAddrs([]string{deadAddr(t), fs.addr()}, Config{
		Retries: 5, Backoff: time.Millisecond, FailThreshold: 1,
		DialTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("DialAddrs with one live address failed: %v", err)
	}
	defer c.Close()
	if c.Name() != "stub-engine" {
		t.Fatalf("Name() = %q", c.Name())
	}
	if got := c.Addrs(); len(got) != 2 {
		t.Fatalf("Addrs() = %v", got)
	}
}

// TestBreakerStateMachine: closed -> open after threshold, cooling
// blocks, half-open admits exactly one probe, probe failure re-opens,
// probe success closes.
func TestBreakerStateMachine(t *testing.T) {
	var b breaker
	t0 := time.Unix(1000, 0)
	cooldown := time.Second

	if !b.allow(t0) {
		t.Fatal("zero-value breaker blocked traffic")
	}
	b.failure(t0, 3, cooldown)
	b.failure(t0, 3, cooldown)
	if !b.allow(t0) {
		t.Fatal("breaker opened below threshold")
	}
	b.failure(t0, 3, cooldown) // third consecutive: opens
	if b.allow(t0) {
		t.Fatal("breaker admitted traffic while cooling")
	}
	if !b.open(t0) {
		t.Fatal("open() = false while cooling")
	}

	t1 := t0.Add(cooldown + time.Millisecond) // cooldown elapsed: half-open
	if !b.allow(t1) {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.allow(t1) {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.failure(t1, 3, cooldown) // probe failed: re-open immediately
	if b.allow(t1.Add(time.Millisecond)) {
		t.Fatal("breaker closed after a failed probe")
	}

	t2 := t1.Add(cooldown + time.Millisecond)
	if !b.allow(t2) {
		t.Fatal("second half-open refused the probe")
	}
	b.success()
	if !b.allow(t2) || b.open(t2) {
		t.Fatal("successful probe did not close the breaker")
	}
}

// TestBreakerRecoversAfterCooldown: end-to-end — a primary that dies and
// comes back is probed after the cooldown and wins traffic back.
func TestBreakerRecoversAfterCooldown(t *testing.T) {
	var primaryUp sync.Map // "up" -> bool
	primaryUp.Store("up", false)

	// The primary rejects connections until flipped up by listening late;
	// simulate with a handler-level toggle instead: both endpoints live,
	// but the primary severs every request while "down".
	prim := newFakeServer(t, func(n int, f wire.Frame) (wire.Frame, bool) {
		up, _ := primaryUp.Load("up")
		if !up.(bool) {
			return wire.Frame{}, true // torn response = transport failure
		}
		return okFrame([]byte("primary")), false
	})
	sec := newFakeServer(t, func(n int, f wire.Frame) (wire.Frame, bool) {
		return okFrame([]byte("secondary")), false
	})
	c := newClient([]string{prim.addr(), sec.addr()}, Config{
		Retries: 5, Backoff: time.Millisecond,
		FailThreshold: 1, Cooldown: 30 * time.Millisecond,
	})
	// Trip the primary's breaker.
	if p, err := c.roundTrip(context.Background(), wire.OpPing, nilPayload, true); err != nil || string(p) != "secondary" {
		t.Fatalf("first call: payload=%q err=%v, want failover to secondary", p, err)
	}
	// While cooling, traffic goes straight to the secondary.
	if p, _ := c.roundTrip(context.Background(), wire.OpPing, nilPayload, true); string(p) != "secondary" {
		t.Fatalf("during cooldown got %q, want secondary", p)
	}
	// Revive the primary, wait out the cooldown: the half-open probe
	// succeeds and the primary is preferred again.
	primaryUp.Store("up", true)
	time.Sleep(50 * time.Millisecond)
	if p, err := c.roundTrip(context.Background(), wire.OpPing, nilPayload, true); err != nil || string(p) != "primary" {
		t.Fatalf("after recovery: payload=%q err=%v, want primary", p, err)
	}
}

// TestJitterDeterministicWithSeed: two clients with the same (ClientID,
// Seed) draw identical jitter streams; different seeds diverge. This is
// what lets failure-injection tests replay byte-for-byte.
func TestJitterDeterministicWithSeed(t *testing.T) {
	draw := func(c *Client, n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = c.jitter.Float64()
		}
		return out
	}
	a := newClient([]string{"x"}, Config{ClientID: 1, Seed: 42})
	b := newClient([]string{"x"}, Config{ClientID: 1, Seed: 42})
	d := newClient([]string{"x"}, Config{ClientID: 1, Seed: 43})
	av, bv, dv := draw(a, 8), draw(b, 8), draw(d, 8)
	same, diff := true, false
	for i := range av {
		same = same && av[i] == bv[i]
		diff = diff || av[i] != dv[i]
	}
	if !same {
		t.Fatal("same seed produced different jitter streams")
	}
	if !diff {
		t.Fatal("different seeds produced identical jitter streams")
	}
}
