package client

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"xbench/internal/core"
	"xbench/internal/wire"
)

// fakeServer speaks raw frames so tests can inject torn responses and
// protocol rejections without a real engine behind them. The handler
// receives the 1-based request ordinal; returning drop=true severs the
// connection without responding (a mid-request crash as the client
// sees it).
type fakeServer struct {
	ln     net.Listener
	handle func(n int, f wire.Frame) (resp wire.Frame, drop bool)

	mu    sync.Mutex
	reqs  int
	conns int
}

func newFakeServer(t *testing.T, handle func(int, wire.Frame) (wire.Frame, bool)) *fakeServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := &fakeServer{ln: ln, handle: handle}
	t.Cleanup(func() { ln.Close() })
	go fs.loop()
	return fs
}

func (fs *fakeServer) loop() {
	for {
		conn, err := fs.ln.Accept()
		if err != nil {
			return
		}
		fs.mu.Lock()
		fs.conns++
		fs.mu.Unlock()
		go func() {
			defer conn.Close()
			for {
				f, err := wire.ReadFrame(conn)
				if err != nil {
					return
				}
				fs.mu.Lock()
				fs.reqs++
				n := fs.reqs
				fs.mu.Unlock()
				resp, drop := fs.handle(n, f)
				if drop {
					return
				}
				if resp.ID == 0 {
					resp.ID = f.ID // echo unless the handler forged one
				}
				if err := wire.WriteFrame(conn, resp); err != nil {
					return
				}
			}
		}()
	}
}

func (fs *fakeServer) stats() (reqs, conns int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.reqs, fs.conns
}

func (fs *fakeServer) client(cfg Config) *Client {
	return &Client{addr: fs.ln.Addr().String(), cfg: cfg.withDefaults()}
}

func okFrame(payload []byte) wire.Frame {
	return wire.Frame{Kind: byte(wire.StatusOK), Payload: payload}
}

// TestRetryTornResponseForIdempotentOp: a connection dropped after the
// request was written is retried for idempotent ops and the retry
// succeeds transparently.
func TestRetryTornResponseForIdempotentOp(t *testing.T) {
	fs := newFakeServer(t, func(n int, f wire.Frame) (wire.Frame, bool) {
		if n == 1 {
			return wire.Frame{}, true // sever without responding
		}
		return okFrame([]byte("pong")), false
	})
	c := fs.client(Config{Retries: 3, Backoff: time.Millisecond})
	payload, err := c.roundTrip(context.Background(), wire.OpPing, nil, true)
	if err != nil {
		t.Fatalf("retryable ping failed: %v", err)
	}
	if string(payload) != "pong" {
		t.Fatalf("payload = %q", payload)
	}
	if reqs, _ := fs.stats(); reqs != 2 {
		t.Fatalf("server saw %d requests, want 2 (original + retry)", reqs)
	}
}

// TestNoRetryForNonIdempotentOp: an insert whose response was lost may
// have been applied — the client must surface the transport error, not
// re-send.
func TestNoRetryForNonIdempotentOp(t *testing.T) {
	fs := newFakeServer(t, func(n int, f wire.Frame) (wire.Frame, bool) {
		return wire.Frame{}, true // always sever after reading the request
	})
	c := fs.client(Config{Retries: 3, Backoff: time.Millisecond})
	err := c.InsertDocument(context.Background(), "order-update-1.xml", []byte("<order/>"))
	if err == nil {
		t.Fatal("lost-response insert reported success")
	}
	if reqs, _ := fs.stats(); reqs != 1 {
		t.Fatalf("server saw %d insert requests, want exactly 1", reqs)
	}
}

// TestNoRetryOnProtocolRejection: overload is the server's explicit
// backpressure — retrying it would defeat admission control, so exactly
// one request reaches the server and the typed sentinel surfaces.
func TestNoRetryOnProtocolRejection(t *testing.T) {
	fs := newFakeServer(t, func(n int, f wire.Frame) (wire.Frame, bool) {
		return wire.Frame{Kind: byte(wire.StatusOverloaded), Payload: []byte("busy")}, false
	})
	c := fs.client(Config{Retries: 5, Backoff: time.Millisecond})
	_, err := c.Execute(context.Background(), core.Q1, nil)
	if !errors.Is(err, wire.ErrOverloaded) {
		t.Fatalf("err = %v, want wire.ErrOverloaded", err)
	}
	if reqs, _ := fs.stats(); reqs != 1 {
		t.Fatalf("server saw %d requests, want 1 (no retry on rejection)", reqs)
	}
}

// TestDialRetryHonorsContext: with nothing listening, the client backs
// off between dial attempts but must abandon the wait the moment the
// caller's context expires.
func TestDialRetryHonorsContext(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens here anymore
	c := &Client{addr: addr, cfg: Config{Retries: 100, Backoff: time.Minute}.withDefaults()}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.roundTrip(ctx, wire.OpPing, nil, true)
	if err == nil {
		t.Fatal("dial to a dead address succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("context-bounded retry took %v", elapsed)
	}
}

// TestPoolReusesConnections: sequential requests ride one pooled
// connection; Close drains the idle list.
func TestPoolReusesConnections(t *testing.T) {
	fs := newFakeServer(t, func(n int, f wire.Frame) (wire.Frame, bool) {
		return okFrame(nil), false
	})
	c := fs.client(Config{PoolSize: 2})
	for i := 0; i < 5; i++ {
		if _, err := c.roundTrip(context.Background(), wire.OpPing, nil, true); err != nil {
			t.Fatal(err)
		}
	}
	if _, conns := fs.stats(); conns != 1 {
		t.Fatalf("5 sequential requests used %d connections, want 1", conns)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.roundTrip(context.Background(), wire.OpPing, nil, true); !errors.Is(err, ErrClosed) {
		t.Fatalf("request on closed client: %v, want ErrClosed", err)
	}
}

// TestResponseIDMismatchPoisonsConnection: a desynchronized connection
// (wrong response id) must not be pooled for the next request.
func TestResponseIDMismatchPoisonsConnection(t *testing.T) {
	fs := newFakeServer(t, func(n int, f wire.Frame) (wire.Frame, bool) {
		resp := okFrame(nil)
		if n == 1 {
			return wire.Frame{Kind: resp.Kind, ID: f.ID + 999, Payload: nil}, false
		}
		return resp, false
	})
	c := fs.client(Config{Retries: -1})
	if _, err := c.roundTrip(context.Background(), wire.OpPing, nil, true); err == nil {
		t.Fatal("mismatched response id accepted")
	}
	if _, err := c.roundTrip(context.Background(), wire.OpPing, nil, true); err != nil {
		t.Fatalf("second request after poisoned conn: %v", err)
	}
	if _, conns := fs.stats(); conns != 2 {
		t.Fatalf("poisoned connection was reused: %d conns", conns)
	}
}
