// Package client is the remote side of the network serving layer: a
// connection-pooling, retrying, failing-over TCP client for
// internal/server that satisfies core.Engine, so every existing harness —
// the closed-loop driver, the update workload, the verify command — runs
// unchanged over the wire. Point the driver at a Client instead of a
// local engine and the p50/p95/p99 cells include connection handling,
// framing and admission control.
//
// Pooling: completed requests park their connection in a bounded
// per-address idle list (Config.PoolSize); a request takes an idle
// connection if one is free and dials otherwise, so total connections
// track the caller's concurrency (like net/http.Transport, idle is
// bounded, in-flight is not — the server's admission controller is the
// load limiter).
//
// Pipelining: Config.Pipeline switches to the multiplexed transport
// (mux.go) — concurrent requests share a few connections per address,
// writes coalesce into batched flushes and responses route back by frame
// ID, so N-client sweeps stop paying a connection and two syscalls per
// request. Retry, failover and breaker behavior are identical in both
// modes; only the bytes-on-the-wire strategy changes.
//
// Exactly-once updates: every update (U1–U3) carries an idempotency key —
// the client's random 64-bit identity plus a per-client sequence number —
// generated once per logical operation and re-sent verbatim on every
// retry leg. The server's dedup table (rebuilt from its durable journal
// across restarts) recognizes the key and answers a retry with the
// original outcome instead of re-applying, which is what makes updates
// safe to retry at all: a lost response no longer forces the client to
// choose between surfacing a spurious error and double-applying.
//
// Retry: transient dial errors are always retried. I/O errors mid-request
// are retried for idempotent operations — queries, pings, and (thanks to
// the idempotency keys) all three update ops. StatusOverloaded and
// StatusShutdown are pre-execution rejections; for idempotent operations
// they are retried with backoff (overload is backpressure, so the backoff
// is the polite response; shutdown steers the retry to another address).
// Backoff doubles per attempt with seeded jitter drawn from the same
// PCG32 generator family as the driver's per-client streams, so
// concurrent clients never synchronize their retry storms yet tests
// replay deterministically.
//
// Failover: the client holds an ordered address list (DialAddrs). Each
// address owns a circuit breaker (breaker.go) that opens after
// Config.FailThreshold consecutive transport errors and admits a single
// half-open probe after Config.Cooldown. Requests prefer the first
// address whose breaker admits them, so traffic drains away from a dead
// or draining server within one threshold's worth of failures and
// returns after one successful probe. When every breaker is open the
// client forces the least-recently-condemned address rather than
// failing — a fully-partitioned client keeps probing, it never locks
// itself out.
package client

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"xbench/internal/core"
	"xbench/internal/stats"
	"xbench/internal/wire"
)

// Config controls a client.
type Config struct {
	// PoolSize bounds the idle connections kept for reuse per address;
	// <= 0 selects 4.
	PoolSize int
	// DialTimeout bounds one TCP dial; <= 0 selects 2s.
	DialTimeout time.Duration
	// Retries is the number of additional attempts after a transient
	// failure; < 0 disables retry, 0 selects 3.
	Retries int
	// Backoff is the first retry delay, doubling per attempt with seeded
	// jitter in [0.5x, 1.5x); <= 0 selects 10ms.
	Backoff time.Duration
	// MaxBackoff caps the doubling, so a large retry budget (riding out a
	// server restart) polls steadily instead of sleeping for minutes;
	// <= 0 selects 500ms.
	MaxBackoff time.Duration
	// FailThreshold is the number of consecutive transport errors that
	// opens an address's circuit breaker; <= 0 selects 3.
	FailThreshold int
	// Cooldown is how long an open breaker blocks an address before
	// admitting a half-open probe; <= 0 selects 500ms.
	Cooldown time.Duration
	// ClientID is the 64-bit identity stamped into update idempotency
	// keys; 0 draws a random one. Set it only for deterministic tests —
	// two live clients sharing an identity would dedup each other.
	ClientID uint64
	// Seed seeds the retry-jitter stream; 0 derives it from the client
	// identity, so concurrent clients de-synchronize by default while a
	// fixed (ClientID, Seed) pair replays exactly.
	Seed uint64
	// Pipeline enables the multiplexed transport (mux.go): concurrent
	// requests share MuxConns connections per address, writes coalesce
	// into batched flushes, and responses are routed back by frame ID.
	// Off (the zero value) keeps the one-request-per-connection pooled
	// transport.
	Pipeline bool
	// MuxConns is the number of multiplexed connections per address when
	// Pipeline is on; <= 0 selects 2.
	MuxConns int
	// BatchWindow is how long the pipelined writer waits after a flush
	// signal for more requests to coalesce; <= 0 flushes immediately and
	// relies on natural batching (requests arriving during the previous
	// flush syscall share the next one). Ignored unless Pipeline is on.
	BatchWindow time.Duration
}

func (c Config) withDefaults() Config {
	if c.PoolSize <= 0 {
		c.PoolSize = 4
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	switch {
	case c.Retries < 0:
		c.Retries = 0
	case c.Retries == 0:
		c.Retries = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = 10 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 500 * time.Millisecond
	}
	if c.MaxBackoff < c.Backoff {
		c.MaxBackoff = c.Backoff
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 500 * time.Millisecond
	}
	if c.MuxConns <= 0 {
		c.MuxConns = 2
	}
	return c
}

// ErrClosed is returned by operations on a closed client.
var ErrClosed = errors.New("client: closed")

// endpoint is one server address with its idle-connection pool (or, in
// Pipeline mode, its multiplexed connections) and circuit breaker.
// Guarded by Client.mu.
type endpoint struct {
	addr string
	idle []net.Conn
	brk  breaker

	// mux slots (Pipeline mode): dialed lazily, failed entries replaced
	// in place; muxNext round-robins requests across the live ones.
	// muxMu serializes dials (it is its own lock, never held with
	// Client.mu below it released) so a cold start or a mux death doesn't
	// stampede the server with one connection per concurrent caller.
	mux     []*muxConn
	muxNext int
	muxMu   sync.Mutex
}

// Client is a remote engine handle. It is safe for concurrent use; each
// in-flight request occupies one pooled connection on one address.
type Client struct {
	cfg  Config
	name string // remote engine name, fetched at Dial time
	id   uint64 // idempotency-key identity

	nextID atomic.Uint64
	seq    atomic.Uint64 // idempotency-key sequence

	// failovers counts requests answered by an endpoint other than the
	// preferred (first) address — each one is a read or update the breaker
	// machinery steered around a dead or draining server.
	failovers atomic.Uint64

	jmu    sync.Mutex
	jitter *stats.RNG

	mu     sync.Mutex
	eps    []*endpoint
	closed bool
}

// newClient builds an unconnected client (shared by Dial and tests).
func newClient(addrs []string, cfg Config) *Client {
	cfg = cfg.withDefaults()
	c := &Client{cfg: cfg, id: cfg.ClientID}
	for c.id == 0 {
		var b [8]byte
		if _, err := cryptorand.Read(b[:]); err != nil {
			panic("client: crypto/rand unavailable: " + err.Error())
		}
		c.id = binary.BigEndian.Uint64(b[:])
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = c.id
	}
	c.jitter = stats.NewRNG(seed)
	for _, a := range addrs {
		c.eps = append(c.eps, &endpoint{addr: a})
	}
	return c
}

// Dial connects to a server, verifies liveness with a ping, and caches
// the remote engine's name (Name() returns it verbatim, so reports keep
// the same engine labels in remote and in-process runs).
func Dial(addr string, cfg Config) (*Client, error) {
	return DialAddrs([]string{addr}, cfg)
}

// DialAddrs connects with a failover list: addrs are equivalent servers
// (typically replicas serving the same load), preferred in order. The
// liveness ping may be answered by any of them.
func DialAddrs(addrs []string, cfg Config) (*Client, error) {
	if len(addrs) == 0 {
		return nil, errors.New("client: empty address list")
	}
	c := newClient(addrs, cfg)
	payload, err := c.roundTrip(context.Background(), wire.OpPing, nilPayload, true)
	if err != nil {
		return nil, fmt.Errorf("client: dial %v: %w", addrs, err)
	}
	c.name = string(payload)
	return c, nil
}

// nilPayload is the payload builder of body-less requests.
func nilPayload(time.Duration) []byte { return nil }

// Name returns the remote engine's name.
func (c *Client) Name() string { return c.name }

// Addr returns the primary (first) server address.
func (c *Client) Addr() string { return c.eps[0].addr }

// Addrs returns the failover list, in preference order.
func (c *Client) Addrs() []string {
	out := make([]string, len(c.eps))
	for i, ep := range c.eps {
		out[i] = ep.addr
	}
	return out
}

// ClientID returns the identity stamped into this client's idempotency
// keys.
func (c *Client) ClientID() uint64 { return c.id }

// Failovers returns how many successful requests were answered by an
// endpoint other than the preferred (first) address.
func (c *Client) Failovers() uint64 { return c.failovers.Load() }

// nextKey mints the idempotency key of one logical update.
func (c *Client) nextKey() wire.IdemKey {
	return wire.IdemKey{Client: c.id, Seq: c.seq.Add(1)}
}

// pickEndpoint chooses the address for the next attempt: the first whose
// breaker admits traffic, or — when every breaker is open — the one whose
// cooldown expires soonest, forced, so the client always makes progress.
func (c *Client) pickEndpoint() (*endpoint, error) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	for _, ep := range c.eps {
		if ep.brk.allow(now) {
			return ep, nil
		}
	}
	forced := c.eps[0]
	for _, ep := range c.eps[1:] {
		if ep.brk.openUntil.Before(forced.brk.openUntil) {
			forced = ep
		}
	}
	return forced, nil
}

// epSuccess / epFailure feed the endpoint's breaker.
func (c *Client) epSuccess(ep *endpoint) {
	c.mu.Lock()
	ep.brk.success()
	c.mu.Unlock()
}

func (c *Client) epFailure(ep *endpoint) {
	c.mu.Lock()
	ep.brk.failure(time.Now(), c.cfg.FailThreshold, c.cfg.Cooldown)
	c.mu.Unlock()
}

// getConn returns a pooled idle connection for ep or dials a fresh one.
func (c *Client) getConn(ep *endpoint) (net.Conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if n := len(ep.idle); n > 0 {
		conn := ep.idle[n-1]
		ep.idle = ep.idle[:n-1]
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()
	conn, err := net.DialTimeout("tcp", ep.addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, &dialError{err}
	}
	return conn, nil
}

// putConn parks a healthy connection for reuse, or closes it when the
// idle list is full or the client closed meanwhile.
func (c *Client) putConn(ep *endpoint, conn net.Conn) {
	c.mu.Lock()
	if !c.closed && len(ep.idle) < c.cfg.PoolSize {
		ep.idle = append(ep.idle, conn)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	conn.Close()
}

// dialError marks a failure that happened before any request bytes were
// sent — always safe to retry.
type dialError struct{ err error }

func (e *dialError) Error() string { return e.err.Error() }
func (e *dialError) Unwrap() error { return e.err }

// transient reports whether a transport error may be retried for an op.
// Dial failures are retriable for every op; transport failures after the
// request was written only for idempotent ops — which includes keyed
// updates, whose retry the server dedups.
func transient(err error, idempotent bool) bool {
	var de *dialError
	if errors.As(err, &de) {
		return true
	}
	return idempotent
}

// sleepBackoff waits one jittered backoff period (or until ctx fires).
// Jitter draws from the client's seeded PCG32 stream: uniform in
// [0.5x, 1.5x), so synchronized clients spread out instead of retrying in
// lockstep.
func (c *Client) sleepBackoff(ctx context.Context, backoff time.Duration) error {
	c.jmu.Lock()
	f := c.jitter.Float64()
	c.jmu.Unlock()
	d := backoff/2 + time.Duration(f*float64(backoff))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// roundTrip performs one request with pooling, failover and
// retry-with-backoff. build produces the payload for each attempt from
// the context's REMAINING deadline budget, so a retry leg carries the
// time actually left, not the budget the first leg saw. It returns the
// response payload of a StatusOK frame or the typed remote error.
// Admission rejections (overload, shutdown) retry for idempotent ops —
// they are pre-execution, so nothing was applied; engine errors are
// terminal.
func (c *Client) roundTrip(ctx context.Context, op wire.Op, build func(remaining time.Duration) []byte, idempotent bool) ([]byte, error) {
	backoff := c.cfg.Backoff
	var lastErr error
	var lastAddr string
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ep, err := c.pickEndpoint()
		if err != nil {
			return nil, err
		}
		lastAddr = ep.addr
		var resp wire.Frame
		if c.cfg.Pipeline {
			resp, err = c.attemptMux(ctx, ep, op, build(timeoutOf(ctx)))
		} else {
			resp, err = c.attempt(ep, op, build(timeoutOf(ctx)))
		}
		retryable := false
		switch {
		case err == nil && wire.Status(resp.Kind) == wire.StatusOK:
			c.epSuccess(ep)
			if ep != c.eps[0] {
				c.failovers.Add(1)
			}
			return resp.Payload, nil
		case err == nil:
			status := wire.Status(resp.Kind)
			lastErr = wire.DecodeError(status, resp.Payload)
			switch {
			case status == wire.StatusOverloaded && idempotent:
				// Backpressure from a healthy server: back off, retry.
				c.epSuccess(ep)
				retryable = true
			case status == wire.StatusShutdown && idempotent:
				// The server is draining away; steer the retry elsewhere.
				c.epFailure(ep)
				retryable = true
			default:
				c.epSuccess(ep)
				return nil, lastErr
			}
		case errors.Is(err, ErrClosed):
			return nil, err
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			// The caller's context fired locally (pipelined wait); not the
			// endpoint's fault and not retryable.
			return nil, err
		default:
			c.epFailure(ep)
			lastErr = err
			retryable = transient(err, idempotent)
		}
		if !retryable || attempt >= c.cfg.Retries {
			return nil, fmt.Errorf("client: %s %s: %w", op, lastAddr, lastErr)
		}
		if err := c.sleepBackoff(ctx, backoff); err != nil {
			return nil, err
		}
		if backoff *= 2; backoff > c.cfg.MaxBackoff {
			backoff = c.cfg.MaxBackoff
		}
	}
}

// attempt runs one request on one connection of one endpoint. Any error
// poisons the connection (framing state is unrecoverable), so it is
// closed rather than pooled.
func (c *Client) attempt(ep *endpoint, op wire.Op, payload []byte) (wire.Frame, error) {
	conn, err := c.getConn(ep)
	if err != nil {
		return wire.Frame{}, err
	}
	id := c.nextID.Add(1)
	if err := wire.WriteFrame(conn, wire.Frame{Kind: byte(op), ID: id, Payload: payload}); err != nil {
		conn.Close()
		return wire.Frame{}, err
	}
	resp, err := wire.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return wire.Frame{}, err
	}
	if resp.ID != id {
		conn.Close()
		return wire.Frame{}, fmt.Errorf("client: response id %d for request %d", resp.ID, id)
	}
	c.putConn(ep, conn)
	return resp, nil
}

// timeoutOf extracts the remaining deadline budget of a context (0 when
// it has none) so the server can enforce it remotely.
func timeoutOf(ctx context.Context) time.Duration {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	t := time.Until(dl)
	if t <= 0 {
		return time.Nanosecond // already expired; let the server say so
	}
	return t
}

// Close releases the pooled connections. It closes the client handle
// only — the remote servers and their engines keep running (stop them
// with the server's Shutdown, not from a client).
func (c *Client) Close() error {
	c.mu.Lock()
	var idle []net.Conn
	var muxes []*muxConn
	for _, ep := range c.eps {
		idle = append(idle, ep.idle...)
		ep.idle = nil
		for _, m := range ep.mux {
			if m != nil {
				muxes = append(muxes, m)
			}
		}
		ep.mux = nil
	}
	c.closed = true
	c.mu.Unlock()
	for _, conn := range idle {
		conn.Close()
	}
	for _, m := range muxes {
		m.fail(ErrClosed)
	}
	return nil
}

// --- core.Engine ---

// Supports asks the remote engine whether it hosts the combination.
func (c *Client) Supports(cl core.Class, s core.Size) error {
	payload := wire.EncodeClassSize(cl, s)
	_, err := c.roundTrip(context.Background(), wire.OpSupports, func(time.Duration) []byte { return payload }, true)
	return err
}

// Load ships the database over the wire and bulk-loads it remotely. Not
// retried after the request was written: a re-load is safe but enormous,
// so the caller decides.
func (c *Client) Load(ctx context.Context, db *core.Database) (core.LoadStats, error) {
	resp, err := c.roundTrip(ctx, wire.OpLoad, func(remaining time.Duration) []byte {
		return wire.EncodeLoadRequest(wire.LoadRequest{DB: *db, Timeout: remaining})
	}, false)
	if err != nil {
		return core.LoadStats{}, err
	}
	return wire.DecodeLoadStats(resp)
}

// BuildIndexes builds the Table 3 indexes remotely.
func (c *Client) BuildIndexes(specs []core.IndexSpec) error {
	payload := wire.EncodeIndexSpecs(specs)
	_, err := c.roundTrip(context.Background(), wire.OpIndexes, func(time.Duration) []byte { return payload }, false)
	return err
}

// Execute runs one workload query remotely. The context's remaining
// deadline rides along on every retry leg and is enforced server-side at
// page-fetch granularity, exactly like an in-process engine.
func (c *Client) Execute(ctx context.Context, q core.QueryID, p core.Params) (core.Result, error) {
	// The request payload is encoded into a pooled buffer, rebuilt in
	// place on each retry leg. Both transports copy the payload out
	// before returning (WriteFrame into its own scratch buffer, the mux
	// into its batch), so releasing it after roundTrip cannot alias an
	// in-flight frame.
	bp := wire.GetBuf()
	defer wire.PutBuf(bp)
	resp, err := c.roundTrip(ctx, wire.OpQuery, func(remaining time.Duration) []byte {
		b := wire.AppendQueryRequest((*bp)[:0], wire.QueryRequest{Query: q, Params: p, Timeout: remaining})
		*bp = b
		return b
	}, true)
	if err != nil {
		return core.Result{}, err
	}
	return wire.DecodeResult(resp)
}

// Explain fetches the costed physical plan for one workload query from
// the remote engine, implementing core.Explainer over the wire. Servers
// predating OpExplain answer StatusBadRequest; that degrades to
// core.ErrNoExplain so callers need only one sentinel check whether the
// gap is in the engine or in the protocol.
func (c *Client) Explain(ctx context.Context, q core.QueryID, p core.Params) (*core.PlanNode, error) {
	bp := wire.GetBuf()
	defer wire.PutBuf(bp)
	resp, err := c.roundTrip(ctx, wire.OpExplain, func(remaining time.Duration) []byte {
		b := wire.AppendQueryRequest((*bp)[:0], wire.QueryRequest{Query: q, Params: p, Timeout: remaining})
		*bp = b
		return b
	}, true)
	if err != nil {
		if errors.Is(err, wire.ErrBadRequest) {
			return nil, fmt.Errorf("client: server predates OpExplain: %w", core.ErrNoExplain)
		}
		return nil, err
	}
	return wire.DecodePlanNode(resp)
}

var _ core.Explainer = (*Client)(nil)

// ColdReset drops the remote engine's caches.
func (c *Client) ColdReset() {
	// The Engine interface makes ColdReset infallible; a transport error
	// here surfaces on the next query instead.
	_, _ = c.roundTrip(context.Background(), wire.OpColdReset, nilPayload, false)
}

// PageIO reads the remote engine's cumulative page I/O counter (0 when
// the server is unreachable).
func (c *Client) PageIO() int64 {
	resp, err := c.roundTrip(context.Background(), wire.OpPageIO, nilPayload, true)
	if err != nil {
		return 0
	}
	v, err := wire.DecodeInt64(resp)
	if err != nil {
		return 0
	}
	return v
}

// update performs one keyed update op: the idempotency key is minted once
// and re-sent verbatim on every retry leg, so the server can dedup a
// retry whose original was applied but whose response was lost. When the
// context already carries a key (wire.WithIdemKey — a router forwarding
// an update it received over the wire), that key is sent instead of a
// fresh one, so the shard dedups on the identity the original client
// acknowledged rather than on the forwarding hop's.
func (c *Client) update(ctx context.Context, op wire.Op, name string, data []byte) error {
	key := wire.ContextIdemKey(ctx)
	if !key.Valid() {
		key = c.nextKey()
	}
	bp := wire.GetBuf()
	defer wire.PutBuf(bp)
	_, err := c.roundTrip(ctx, op, func(remaining time.Duration) []byte {
		b := wire.AppendUpdateRequest((*bp)[:0], wire.UpdateRequest{Name: name, Data: data, Timeout: remaining, Key: key})
		*bp = b
		return b
	}, true)
	return err
}

// InsertDocument applies update workload U1 remotely, exactly once.
func (c *Client) InsertDocument(ctx context.Context, name string, data []byte) error {
	return c.update(ctx, wire.OpInsert, name, data)
}

// ReplaceDocument applies update workload U2 remotely, exactly once.
func (c *Client) ReplaceDocument(ctx context.Context, name string, data []byte) error {
	return c.update(ctx, wire.OpReplace, name, data)
}

// DeleteDocument applies update workload U3 remotely, exactly once.
func (c *Client) DeleteDocument(ctx context.Context, name string) error {
	return c.update(ctx, wire.OpDelete, name, nil)
}

// JournalPull fetches one window of the server's committed update journal
// starting at record index since (see wire.OpJournal). Replicas call it in
// a loop: apply the records, poll again from Next. A server without a
// journal — or predating the op — answers wire.ErrBadRequest.
func (c *Client) JournalPull(ctx context.Context, since uint64) (wire.JournalPullResponse, error) {
	payload := wire.EncodeJournalPullRequest(wire.JournalPullRequest{Since: since})
	resp, err := c.roundTrip(ctx, wire.OpJournal, func(time.Duration) []byte { return payload }, true)
	if err != nil {
		return wire.JournalPullResponse{}, err
	}
	return wire.DecodeJournalPullResponse(resp)
}

var _ core.Engine = (*Client)(nil)
