// Package client is the remote side of the network serving layer: a
// connection-pooling, retrying TCP client for internal/server that
// satisfies core.Engine, so every existing harness — the closed-loop
// driver, the update workload, the verify command — runs unchanged over
// the wire. Point the driver at a Client instead of a local engine and
// the p50/p95/p99 cells include connection handling, framing and
// admission control.
//
// Pooling: completed requests park their connection in a bounded idle
// list (Config.PoolSize); a request takes an idle connection if one is
// free and dials otherwise, so total connections track the caller's
// concurrency (like net/http.Transport, idle is bounded, in-flight is
// not — the server's admission controller is the load limiter).
//
// Retry: transient dial errors are always retried with exponential
// backoff. I/O errors mid-request are retried only for idempotent
// operations (ping, query, supports, page-I/O) — an insert whose
// response was lost may have been applied, and retrying it would turn
// one logical U1 into two. Admission rejections (ErrOverloaded,
// ErrShutdown) are never retried: they are the server's explicit
// backpressure, and the driver counts them.
package client

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"xbench/internal/core"
	"xbench/internal/wire"
)

// Config controls a client.
type Config struct {
	// PoolSize bounds the idle connections kept for reuse; <= 0 selects 4.
	PoolSize int
	// DialTimeout bounds one TCP dial; <= 0 selects 2s.
	DialTimeout time.Duration
	// Retries is the number of additional attempts after a transient
	// failure; < 0 disables retry, 0 selects 3.
	Retries int
	// Backoff is the first retry delay, doubling per attempt; <= 0
	// selects 10ms.
	Backoff time.Duration
}

func (c Config) withDefaults() Config {
	if c.PoolSize <= 0 {
		c.PoolSize = 4
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	switch {
	case c.Retries < 0:
		c.Retries = 0
	case c.Retries == 0:
		c.Retries = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = 10 * time.Millisecond
	}
	return c
}

// ErrClosed is returned by operations on a closed client.
var ErrClosed = errors.New("client: closed")

// Client is a remote engine handle. It is safe for concurrent use; each
// in-flight request occupies one pooled connection.
type Client struct {
	addr string
	cfg  Config
	name string // remote engine name, fetched at Dial time

	nextID atomic.Uint64

	mu     sync.Mutex
	idle   []net.Conn
	closed bool
}

// Dial connects to a server, verifies liveness with a ping, and caches
// the remote engine's name (Name() returns it verbatim, so reports keep
// the same engine labels in remote and in-process runs).
func Dial(addr string, cfg Config) (*Client, error) {
	c := &Client{addr: addr, cfg: cfg.withDefaults()}
	payload, err := c.roundTrip(context.Background(), wire.OpPing, nil, true)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	c.name = string(payload)
	return c, nil
}

// Name returns the remote engine's name.
func (c *Client) Name() string { return c.name }

// Addr returns the server address the client dials.
func (c *Client) Addr() string { return c.addr }

// getConn returns a pooled idle connection or dials a fresh one.
func (c *Client) getConn() (net.Conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if n := len(c.idle); n > 0 {
		conn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()
	conn, err := net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, &dialError{err}
	}
	return conn, nil
}

// putConn parks a healthy connection for reuse, or closes it when the
// idle list is full or the client closed meanwhile.
func (c *Client) putConn(conn net.Conn) {
	c.mu.Lock()
	if !c.closed && len(c.idle) < c.cfg.PoolSize {
		c.idle = append(c.idle, conn)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	conn.Close()
}

// dialError marks a failure that happened before any request bytes were
// sent — always safe to retry.
type dialError struct{ err error }

func (e *dialError) Error() string { return e.err.Error() }
func (e *dialError) Unwrap() error { return e.err }

// transient reports whether err may be retried for an op. Dial failures
// are retriable for every op; transport failures after the request was
// written only for idempotent ops.
func transient(err error, idempotent bool) bool {
	var de *dialError
	if errors.As(err, &de) {
		return true
	}
	return idempotent
}

// roundTrip performs one request with pooling and retry-with-backoff.
// It returns the response payload of a StatusOK frame or the typed
// remote error. Protocol-level rejections (overload, shutdown, engine
// errors) are terminal — only transport failures retry.
func (c *Client) roundTrip(ctx context.Context, op wire.Op, payload []byte, idempotent bool) ([]byte, error) {
	backoff := c.cfg.Backoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		resp, err := c.attempt(op, payload)
		if err == nil {
			status := wire.Status(resp.Kind)
			if status == wire.StatusOK {
				return resp.Payload, nil
			}
			return nil, wire.DecodeError(status, resp.Payload)
		}
		lastErr = err
		if errors.Is(err, ErrClosed) || !transient(err, idempotent) || attempt >= c.cfg.Retries {
			return nil, fmt.Errorf("client: %s %s: %w", op, c.addr, lastErr)
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		backoff *= 2
	}
}

// attempt runs one request on one connection. Any error poisons the
// connection (framing state is unrecoverable), so it is closed rather
// than pooled.
func (c *Client) attempt(op wire.Op, payload []byte) (wire.Frame, error) {
	conn, err := c.getConn()
	if err != nil {
		return wire.Frame{}, err
	}
	id := c.nextID.Add(1)
	if err := wire.WriteFrame(conn, wire.Frame{Kind: byte(op), ID: id, Payload: payload}); err != nil {
		conn.Close()
		return wire.Frame{}, err
	}
	resp, err := wire.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return wire.Frame{}, err
	}
	if resp.ID != id {
		conn.Close()
		return wire.Frame{}, fmt.Errorf("client: response id %d for request %d", resp.ID, id)
	}
	c.putConn(conn)
	return resp, nil
}

// timeoutOf extracts the remaining deadline budget of a context (0 when
// it has none) so the server can enforce it remotely.
func timeoutOf(ctx context.Context) time.Duration {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	t := time.Until(dl)
	if t <= 0 {
		return time.Nanosecond // already expired; let the server say so
	}
	return t
}

// Close releases the pooled connections. It closes the client handle
// only — the remote server and its engine keep running (stop them with
// the server's Shutdown, not from a client).
func (c *Client) Close() error {
	c.mu.Lock()
	idle := c.idle
	c.idle = nil
	c.closed = true
	c.mu.Unlock()
	for _, conn := range idle {
		conn.Close()
	}
	return nil
}

// --- core.Engine ---

// Supports asks the remote engine whether it hosts the combination.
func (c *Client) Supports(cl core.Class, s core.Size) error {
	_, err := c.roundTrip(context.Background(), wire.OpSupports, wire.EncodeClassSize(cl, s), true)
	return err
}

// Load ships the database over the wire and bulk-loads it remotely.
func (c *Client) Load(ctx context.Context, db *core.Database) (core.LoadStats, error) {
	payload := wire.EncodeLoadRequest(wire.LoadRequest{DB: *db, Timeout: timeoutOf(ctx)})
	resp, err := c.roundTrip(ctx, wire.OpLoad, payload, false)
	if err != nil {
		return core.LoadStats{}, err
	}
	return wire.DecodeLoadStats(resp)
}

// BuildIndexes builds the Table 3 indexes remotely.
func (c *Client) BuildIndexes(specs []core.IndexSpec) error {
	_, err := c.roundTrip(context.Background(), wire.OpIndexes, wire.EncodeIndexSpecs(specs), false)
	return err
}

// Execute runs one workload query remotely. The context's remaining
// deadline rides along and is enforced server-side at page-fetch
// granularity, exactly like an in-process engine.
func (c *Client) Execute(ctx context.Context, q core.QueryID, p core.Params) (core.Result, error) {
	payload := wire.EncodeQueryRequest(wire.QueryRequest{Query: q, Params: p, Timeout: timeoutOf(ctx)})
	resp, err := c.roundTrip(ctx, wire.OpQuery, payload, true)
	if err != nil {
		return core.Result{}, err
	}
	return wire.DecodeResult(resp)
}

// ColdReset drops the remote engine's caches.
func (c *Client) ColdReset() {
	// The Engine interface makes ColdReset infallible; a transport error
	// here surfaces on the next query instead.
	_, _ = c.roundTrip(context.Background(), wire.OpColdReset, nil, false)
}

// PageIO reads the remote engine's cumulative page I/O counter (0 when
// the server is unreachable).
func (c *Client) PageIO() int64 {
	resp, err := c.roundTrip(context.Background(), wire.OpPageIO, nil, true)
	if err != nil {
		return 0
	}
	v, err := wire.DecodeInt64(resp)
	if err != nil {
		return 0
	}
	return v
}

// InsertDocument applies update workload U1 remotely. Not retried on
// transport failure: a lost response may mean the insert applied.
func (c *Client) InsertDocument(ctx context.Context, name string, data []byte) error {
	payload := wire.EncodeUpdateRequest(wire.UpdateRequest{Name: name, Data: data, Timeout: timeoutOf(ctx)})
	_, err := c.roundTrip(ctx, wire.OpInsert, payload, false)
	return err
}

// ReplaceDocument applies update workload U2 remotely.
func (c *Client) ReplaceDocument(ctx context.Context, name string, data []byte) error {
	payload := wire.EncodeUpdateRequest(wire.UpdateRequest{Name: name, Data: data, Timeout: timeoutOf(ctx)})
	_, err := c.roundTrip(ctx, wire.OpReplace, payload, false)
	return err
}

// DeleteDocument applies update workload U3 remotely.
func (c *Client) DeleteDocument(ctx context.Context, name string) error {
	payload := wire.EncodeUpdateRequest(wire.UpdateRequest{Name: name, Timeout: timeoutOf(ctx)})
	_, err := c.roundTrip(ctx, wire.OpDelete, payload, false)
	return err
}

var _ core.Engine = (*Client)(nil)
