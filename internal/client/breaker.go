// Per-address circuit breakers for the failover client. Each endpoint of
// the address list owns one breaker with the classic three states:
//
//	closed    — requests flow; consecutive transport failures are counted.
//	open      — FailThreshold consecutive failures tripped it; requests
//	            avoid the address until the cooldown elapses.
//	half-open — cooldown elapsed; exactly one probe request is admitted.
//	            Success closes the breaker, failure re-opens it for
//	            another cooldown.
//
// Breakers only ever see TRANSPORT verdicts (dial errors, torn
// connections, and shutdown rejections from a draining server). Engine
// and admission errors travel over a healthy connection and count as
// breaker successes — an overloaded server is alive, and steering every
// client away from it the moment it sheds load would turn backpressure
// into a self-inflicted outage.
//
// All methods are called under the client's endpoint lock; the breaker
// itself holds no lock.
package client

import "time"

// breaker is one address's circuit state. The zero value is closed.
type breaker struct {
	fails     int       // consecutive transport failures while closed
	openUntil time.Time // non-zero while open / half-open
	probing   bool      // a half-open probe is in flight
}

// allow reports whether a request may use this address now. In the
// half-open state it admits exactly one probe (marking it in flight);
// callers MUST later report success or failure so the probe slot frees.
func (b *breaker) allow(now time.Time) bool {
	if b.openUntil.IsZero() {
		return true // closed
	}
	if now.Before(b.openUntil) {
		return false // open, cooling down
	}
	if b.probing {
		return false // half-open, probe already in flight
	}
	b.probing = true
	return true
}

// open reports whether the breaker currently blocks ordinary traffic.
func (b *breaker) open(now time.Time) bool {
	return !b.openUntil.IsZero() && (now.Before(b.openUntil) || b.probing)
}

// success records a request that completed over a healthy transport,
// closing the breaker from any state.
func (b *breaker) success() { *b = breaker{} }

// failure records a transport failure. A failed half-open probe re-opens
// immediately; a closed breaker opens once threshold consecutive
// failures accumulate.
func (b *breaker) failure(now time.Time, threshold int, cooldown time.Duration) {
	wasProbe := b.probing
	b.probing = false
	b.fails++
	if wasProbe || b.fails >= threshold {
		b.openUntil = now.Add(cooldown)
	}
}
