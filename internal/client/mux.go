// Pipelined transport: many in-flight requests multiplexed over a small
// set of connections per address, with writes coalesced into batched
// flushes.
//
// The pooled transport (client.go attempt) dedicates one connection to
// each in-flight request: N concurrent callers cost N connections and
// 2N syscalls per round trip. With Config.Pipeline on, callers instead
// encode their frame into the connection's forming batch buffer and wait
// for their response by frame ID. A single writer goroutine flushes the
// batch with one conn.Write — requests that arrive while a flush syscall
// is in progress accumulate into the next batch, so batching deepens
// exactly when load does (the same natural-batching shape as the
// journal's group commit). A single reader goroutine routes response
// frames back to waiters by ID; responses may return in any order, which
// the serving side exploits by executing a connection's requests
// concurrently.
//
// Buffer ownership (the aliasing rules the -race hammer test enforces):
// a caller's payload bytes are copied into the batch buffer inside
// enqueue, so the caller may recycle its payload buffer the moment
// roundTrip returns — even on a context-canceled request, whose frame
// (if it was enqueued at all) has already been copied out. Batch buffers
// themselves cycle through wire.GetBuf/PutBuf and are owned by exactly
// one party at a time: the forming batch by whichever caller holds wmu,
// a sealed batch by the writer until the flush returns.
//
// A transport error on either goroutine fails the whole mux: the
// connection closes, every waiter gets the error, and the next request
// through the endpoint dials a replacement. Retry, failover and breaker
// decisions stay in roundTrip (client.go) — a mux failure looks exactly
// like a poisoned pooled connection, just fanned out to all riders.
package client

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"time"

	"xbench/internal/wire"
)

// muxConn is one multiplexed connection. It dies on first error — muxes
// are replaced, never repaired.
type muxConn struct {
	conn   net.Conn
	window time.Duration
	kick   chan struct{} // buffered(1): batch has frames to flush
	done   chan struct{} // closed by fail

	// wmu guards the forming batch.
	wmu   sync.Mutex
	batch *[]byte

	// pmu guards the waiter registry and the terminal error.
	pmu     sync.Mutex
	pending map[uint64]chan wire.Frame
	err     error
}

// errMuxFailed is the generic mux-failure cause when none was recorded
// (it should never surface; a real error always precedes it).
var errMuxFailed = errors.New("client: pipelined connection failed")

func newMuxConn(conn net.Conn, window time.Duration) *muxConn {
	m := &muxConn{
		conn:    conn,
		window:  window,
		kick:    make(chan struct{}, 1),
		done:    make(chan struct{}),
		batch:   wire.GetBuf(),
		pending: make(map[uint64]chan wire.Frame),
	}
	go m.writeLoop()
	go m.readLoop()
	return m
}

// failed reports whether the mux has died (its next user must redial).
func (m *muxConn) failed() bool {
	m.pmu.Lock()
	defer m.pmu.Unlock()
	return m.err != nil
}

func (m *muxConn) lastErr() error {
	m.pmu.Lock()
	defer m.pmu.Unlock()
	if m.err == nil {
		return errMuxFailed
	}
	return m.err
}

// fail kills the mux once: records the cause, closes the connection and
// wakes every waiter with failure. Waiter channels are closed (not sent
// to) — a waiter distinguishes a real response by the channel's ok flag.
// The registry hand-off under pmu guarantees a channel is closed by fail
// or sent to by the reader, never both.
func (m *muxConn) fail(err error) {
	m.pmu.Lock()
	if m.err != nil {
		m.pmu.Unlock()
		return
	}
	m.err = err
	waiters := m.pending
	m.pending = nil
	close(m.done)
	m.pmu.Unlock()
	m.conn.Close()
	for _, ch := range waiters {
		close(ch)
	}
}

// roundTrip sends one frame and waits for the response with the same ID.
// The frame's payload is copied into the batch before roundTrip blocks,
// so the caller may reuse the payload buffer as soon as this returns,
// whatever the outcome.
func (m *muxConn) roundTrip(ctx context.Context, f wire.Frame) (wire.Frame, error) {
	respCh := make(chan wire.Frame, 1)
	m.pmu.Lock()
	if m.err != nil {
		err := m.err
		m.pmu.Unlock()
		return wire.Frame{}, err
	}
	m.pending[f.ID] = respCh
	m.pmu.Unlock()

	m.wmu.Lock()
	b, err := wire.AppendFrame(*m.batch, f)
	*m.batch = b
	m.wmu.Unlock()
	if err != nil {
		m.deregister(f.ID)
		return wire.Frame{}, err
	}
	select {
	case m.kick <- struct{}{}:
	default: // a flush signal is already pending
	}

	select {
	case resp, ok := <-respCh:
		if !ok {
			return wire.Frame{}, m.lastErr()
		}
		return resp, nil
	case <-ctx.Done():
		m.deregister(f.ID)
		// The response may have raced in just before deregistration.
		select {
		case resp, ok := <-respCh:
			if ok {
				return resp, nil
			}
		default:
		}
		return wire.Frame{}, ctx.Err()
	}
}

func (m *muxConn) deregister(id uint64) {
	m.pmu.Lock()
	delete(m.pending, id)
	m.pmu.Unlock()
}

// writeLoop flushes the forming batch whenever kicked: it swaps in a
// fresh pooled buffer under wmu (so enqueues never wait on the network)
// and writes the sealed batch with one syscall. With BatchWindow set it
// sleeps briefly first, trading that latency for deeper batches; without
// it, batching is purely natural — everything enqueued during the
// previous flush goes out together.
func (m *muxConn) writeLoop() {
	for {
		select {
		case <-m.done:
			return
		case <-m.kick:
		}
		if m.window > 0 {
			timer := time.NewTimer(m.window)
			select {
			case <-m.done:
				timer.Stop()
				return
			case <-timer.C:
			}
		}
		for {
			m.wmu.Lock()
			if len(*m.batch) == 0 {
				m.wmu.Unlock()
				break
			}
			sealed := m.batch
			m.batch = wire.GetBuf()
			m.wmu.Unlock()
			_, err := m.conn.Write(*sealed)
			wire.PutBuf(sealed)
			if err != nil {
				m.fail(err)
				return
			}
		}
	}
}

// readLoop routes response frames to their waiters by ID. A frame with
// no waiter belonged to a context-canceled request and is dropped —
// unlike the one-request-per-connection transport, an unknown ID here is
// expected traffic, not desynchronization. The reader is buffered: the
// server answers in batches, so one kernel read pulls many frames —
// without this, reading costs two syscalls per frame and eats the
// batching win on the write side.
func (m *muxConn) readLoop() {
	br := bufio.NewReader(m.conn)
	for {
		f, err := wire.ReadFrame(br)
		if err != nil {
			m.fail(err)
			return
		}
		m.pmu.Lock()
		ch := m.pending[f.ID]
		delete(m.pending, f.ID)
		m.pmu.Unlock()
		if ch != nil {
			ch <- f // buffered; the reader never blocks on a slow waiter
		}
	}
}

// getMux returns the endpoint's next multiplexed connection in round-robin
// order, dialing a replacement if the slot is empty or its mux has died.
// Dials are serialized per endpoint (ep.muxMu): concurrent callers that
// hit the same dead slot wait for one replacement instead of each dialing
// their own.
func (c *Client) getMux(ep *endpoint) (*muxConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if ep.mux == nil {
		ep.mux = make([]*muxConn, c.cfg.MuxConns)
	}
	slot := ep.muxNext % len(ep.mux)
	ep.muxNext++
	if m := ep.mux[slot]; m != nil && !m.failed() {
		c.mu.Unlock()
		return m, nil
	}
	c.mu.Unlock()

	ep.muxMu.Lock()
	defer ep.muxMu.Unlock()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if m := ep.mux[slot]; m != nil && !m.failed() {
		// The caller ahead of us already replaced the slot; ride theirs.
		c.mu.Unlock()
		return m, nil
	}
	c.mu.Unlock()

	conn, err := net.DialTimeout("tcp", ep.addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, &dialError{err}
	}
	nm := newMuxConn(conn, c.cfg.BatchWindow)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		nm.fail(ErrClosed)
		return nil, ErrClosed
	}
	ep.mux[slot] = nm
	c.mu.Unlock()
	return nm, nil
}

// attemptMux is the pipelined counterpart of attempt: one request over
// the endpoint's shared mux instead of a dedicated pooled connection.
func (c *Client) attemptMux(ctx context.Context, ep *endpoint, op wire.Op, payload []byte) (wire.Frame, error) {
	m, err := c.getMux(ep)
	if err != nil {
		return wire.Frame{}, err
	}
	id := c.nextID.Add(1)
	return m.roundTrip(ctx, wire.Frame{Kind: byte(op), ID: id, Payload: payload})
}
