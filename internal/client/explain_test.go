package client

import (
	"context"
	"errors"
	"testing"

	"xbench/internal/core"
	"xbench/internal/wire"
)

// TestExplainOldServerDegrades: a server predating OpExplain answers
// StatusBadRequest for the unknown op; the client maps that to
// core.ErrNoExplain so callers cannot tell a protocol gap from an
// engine gap — one sentinel covers both.
func TestExplainOldServerDegrades(t *testing.T) {
	fs := newFakeServer(t, func(_ int, f wire.Frame) (wire.Frame, bool) {
		if wire.Op(f.Kind) != wire.OpExplain {
			t.Errorf("unexpected op %d", f.Kind)
		}
		return wire.Frame{Kind: byte(wire.StatusBadRequest), Payload: []byte("unknown op 11")}, false
	})
	c := fs.client(Config{})
	defer c.Close()
	_, err := c.Explain(context.Background(), core.Q5, core.Params{"X": "I1"})
	if !errors.Is(err, core.ErrNoExplain) {
		t.Fatalf("err = %v, want ErrNoExplain", err)
	}
	if reqs, _ := fs.stats(); reqs != 1 {
		t.Errorf("bad-request answer was retried %d times; it is not transient", reqs-1)
	}
}

// TestExplainRoundTrip: a well-formed plan payload decodes through the
// client path.
func TestExplainRoundTrip(t *testing.T) {
	want := &core.PlanNode{Op: "scan", Target: "order", Detail: "sequential", EstPages: 512, EstRows: 4096}
	fs := newFakeServer(t, func(_ int, f wire.Frame) (wire.Frame, bool) {
		return okFrame(wire.EncodePlanNode(want)), false
	})
	c := fs.client(Config{})
	defer c.Close()
	got, err := c.Explain(context.Background(), core.Q10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != "scan" || got.Target != "order" || got.EstPages != 512 {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}
