package bench

import (
	"fmt"

	"xbench/internal/chaos"
	"xbench/internal/core"
)

// ChaosGrid runs the chaos harness over every engine x class at the
// runner's first (smallest) size, printing one cell per combination:
// "-" for unsupported cells, "ok:<crashes>c<queries>q" for passing ones,
// "FAIL" (with a detail line below the table) otherwise. It returns an
// error if any cell failed, so callers can gate CI on it.
func (r *Runner) ChaosGrid(cfg chaos.Config) error {
	cfg = cfg.WithDefaults()
	size := r.Sizes[0]
	fmt.Fprintf(r.Out, "\nChaos: crash/recovery grid (size %s, seed %d, %d crash points)\n",
		size, cfg.Seed, cfg.CrashPoints)
	fmt.Fprintf(r.Out, "%-12s", "")
	for _, c := range columnClasses {
		fmt.Fprintf(r.Out, " %-10s", c.Code())
	}
	fmt.Fprintln(r.Out)

	var failures []string
	for _, name := range r.engineNames() {
		fmt.Fprintf(r.Out, "%-12s", name)
		for _, class := range columnClasses {
			out := r.chaosCell(name, class, size, cfg)
			fmt.Fprintf(r.Out, " %-10s", out)
			if out.Err != nil {
				failures = append(failures, fmt.Sprintf("%s/%s: %v", name, class.Code(), out.Err))
			}
		}
		fmt.Fprintln(r.Out)
	}
	for _, f := range failures {
		fmt.Fprintf(r.Out, "FAIL %s\n", f)
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench: chaos grid: %d cell(s) failed", len(failures))
	}
	return nil
}

func (r *Runner) chaosCell(name string, class core.Class, size core.Size, cfg chaos.Config) chaos.Outcome {
	db, err := r.Database(class, size)
	if err != nil {
		return chaos.Outcome{Engine: name, Class: class, Err: err}
	}
	return chaos.RunCell(func() core.Engine { return r.newEngine(name) }, db, cfg)
}
