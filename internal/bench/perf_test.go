package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestPerfPagerCell: the pager cell is fully deterministic (simulated
// disk), so its improvement ratio is a stable invariant, not a timing:
// scan protection + readahead must lift the hit rate severalfold on the
// hot-set-vs-scan workload.
func TestPerfPagerCell(t *testing.T) {
	res, err := RunPerfCell("pager", true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cell != "pager" || !res.Short {
		t.Fatalf("result mislabeled: %+v", res)
	}
	if res.Improvement < 2 {
		t.Fatalf("pager improvement ratio %.2f, want >= 2 (hit rate %.3f -> %.3f)",
			res.Improvement, res.Before.Extra["hit_rate"], res.After.Extra["hit_rate"])
	}
	if res.Machine.GoVersion == "" || res.Machine.NumCPU <= 0 {
		t.Fatalf("machine spec not populated: %+v", res.Machine)
	}
}

// TestCheckPerfRegression: the gate compares ratios with tolerance and
// fails on a drop below the floor.
func TestCheckPerfRegression(t *testing.T) {
	dir := t.TempDir()
	base := PerfResult{Cell: "pager", Improvement: 8.0}
	path := filepath.Join(dir, "BENCH_pr7_pager.json")
	if err := WritePerfResult(path, base); err != nil {
		t.Fatal(err)
	}
	ok := PerfResult{Cell: "pager", Improvement: 7.0}
	if err := CheckPerfRegression(ok, path, 0.20); err != nil {
		t.Fatalf("7.0 vs baseline 8.0 at 20%% tolerance should pass: %v", err)
	}
	bad := PerfResult{Cell: "pager", Improvement: 6.0}
	if err := CheckPerfRegression(bad, path, 0.20); err == nil {
		t.Fatal("6.0 vs baseline 8.0 at 20% tolerance should fail")
	}
	wrong := PerfResult{Cell: "wire", Improvement: 9.0}
	if err := CheckPerfRegression(wrong, path, 0.20); err == nil || !strings.Contains(err.Error(), "cell") {
		t.Fatalf("cell mismatch not rejected: %v", err)
	}
	missing := PerfResult{Cell: "pager", Improvement: 9.0}
	if err := CheckPerfRegression(missing, filepath.Join(dir, "nope.json"), 0.20); err == nil {
		t.Fatal("missing baseline not rejected")
	}
}
