package bench

import (
	"bytes"
	"strings"
	"testing"

	"xbench/internal/chaos"
	"xbench/internal/core"
	"xbench/internal/workload"
)

// TestUpdatesGridAllEngines is the subcommand's acceptance test: U1-U3
// measure on all four engines for a multi-document class, with non-zero
// latency and attributed I/O.
func TestUpdatesGridAllEngines(t *testing.T) {
	var buf bytes.Buffer
	r := tinyRunner(&buf)
	cells, err := r.UpdatesGrid(UpdatesOptions{Class: core.DCMD, Repeat: 2})
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(EngineNames) * len(workload.UpdateOps)
	if len(cells) != wantCells {
		t.Fatalf("measured %d cells, want %d: %+v", len(cells), wantCells, cells)
	}
	seen := map[string]map[string]bool{}
	for _, c := range cells {
		if c.Err != "" {
			t.Errorf("%s %s: %s", c.Engine, c.Op, c.Err)
			continue
		}
		if c.MeanMs <= 0 {
			t.Errorf("%s %s: zero mean latency", c.Engine, c.Op)
		}
		if c.PageIO <= 0 {
			t.Errorf("%s %s: no attributed page I/O", c.Engine, c.Op)
		}
		if seen[c.Engine] == nil {
			seen[c.Engine] = map[string]bool{}
		}
		seen[c.Engine][c.Op] = true
	}
	for _, name := range EngineNames {
		for _, op := range workload.UpdateOps {
			if !seen[name][op.String()] {
				t.Errorf("no cell for %s %s", name, op)
			}
		}
	}
}

func TestUpdatesReportFormats(t *testing.T) {
	for _, format := range []string{"table", "csv", "json"} {
		var buf bytes.Buffer
		r := tinyRunner(&buf)
		// A single engine keeps the format test quick.
		if err := r.UpdatesReport(UpdatesOptions{
			Class: core.TCMD, Repeat: 1, Format: format, Engines: []string{"X-Hive"},
		}); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		out := buf.String()
		for _, want := range []string{"U1", "U2", "U3"} {
			if !strings.Contains(out, want) {
				t.Errorf("%s output missing %q:\n%s", format, want, out)
			}
		}
	}
}

func TestUpdatesReportRejectsSingleDocumentClass(t *testing.T) {
	var buf bytes.Buffer
	r := tinyRunner(&buf)
	if err := r.UpdatesReport(UpdatesOptions{Class: core.TCSD}); err == nil {
		t.Fatal("single-document class accepted")
	}
}

// TestUpdateChaosGridSmoke runs the full update chaos grid the way `make
// verify` does, on the tiny dataset with few crash points.
func TestUpdateChaosGridSmoke(t *testing.T) {
	var buf bytes.Buffer
	r := tinyRunner(&buf)
	if err := r.UpdateChaosGrid(chaos.Config{Seed: 3, CrashPoints: 2}); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"crash-during-update", "dcmd U1", "tcmd U3", "ok:"} {
		if !strings.Contains(out, want) {
			t.Errorf("grid output missing %q:\n%s", want, out)
		}
	}
}
