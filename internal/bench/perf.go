// Perf cells: small, self-contained before/after measurements for the
// three hot-path optimizations of the raw-speed pass (DESIGN.md §13) —
// the scan-resistant buffer pool, the pipelined wire transport, and the
// journal's group commit. Each cell runs the SAME workload twice, once
// with the optimization disabled (the "before" configuration, which every
// subsystem still supports as a switch) and once enabled, and reports an
// improvement ratio. Ratios, not absolute times, are what the regression
// gate compares across machines: "pipelining is 2x a dedicated-connection
// transport on this workload" transfers between hosts in a way "14,000
// requests per second" never does. EXPERIMENTS.md documents the protocol;
// `xbench perf` is the driver; results/BENCH_pr7_*.json are the archived
// baselines.
package bench

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"xbench/internal/client"
	"xbench/internal/core"
	"xbench/internal/pager"
	"xbench/internal/server"
	"xbench/internal/updatelog"
)

// PerfCellNames lists the defined cells in run order.
var PerfCellNames = []string{"pager", "wire", "journal"}

// MachineSpec is the disclosure block every archived cell carries, per
// the EXPERIMENTS.md machine-spec checklist: enough to judge whether a
// baseline is comparable, without pretending absolute numbers transfer.
type MachineSpec struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
}

func machineSpec() MachineSpec {
	return MachineSpec{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
}

// PerfMetrics is one side (before or after) of a cell.
type PerfMetrics struct {
	Ops       int64              `json:"ops"`
	ElapsedMS float64            `json:"elapsed_ms"`
	OpsPerSec float64            `json:"ops_per_sec"`
	Extra     map[string]float64 `json:"extra,omitempty"`
}

// PerfResult is one archived cell: the same workload measured with the
// optimization off (Before) and on (After).
type PerfResult struct {
	Cell        string      `json:"cell"`
	Label       string      `json:"label,omitempty"`
	Date        string      `json:"date"`
	Short       bool        `json:"short"`
	Machine     MachineSpec `json:"machine"`
	Workload    string      `json:"workload"`
	Before      PerfMetrics `json:"before"`
	After       PerfMetrics `json:"after"`
	Improvement float64     `json:"improvement"`
	// ImprovementMetric names what Improvement is a ratio of — the one
	// number the regression gate tracks.
	ImprovementMetric string `json:"improvement_metric"`
}

// RunPerfCell runs one named cell. Short mode shrinks the workload to CI
// scale (a couple of seconds) without changing its shape.
func RunPerfCell(name string, short bool) (PerfResult, error) {
	var (
		res PerfResult
		err error
	)
	switch name {
	case "pager":
		res, err = perfPager(short)
	case "wire":
		res, err = perfWire(short)
	case "journal":
		res, err = perfJournal(short)
	default:
		return PerfResult{}, fmt.Errorf("unknown perf cell %q (have %v)", name, PerfCellNames)
	}
	if err != nil {
		return PerfResult{}, err
	}
	res.Cell = name
	res.Short = short
	res.Date = time.Now().UTC().Format("2006-01-02")
	res.Machine = machineSpec()
	return res, nil
}

// perfPager: the scan-interleaved-with-hot-set workload from the
// eviction tests, at benchmark scale. A hot working set is re-read
// between repeated sequential scans of a file several times the pool
// size. Plain CLOCK (scan protection off) lets every scan flush the hot
// set and pays a blind miss for every scan page; the GCLOCK policy keeps
// the hot set resident and readahead turns scan misses into prefetch
// hits. The improvement ratio is the buffer-pool hit rate, after over
// before — fully deterministic (the pager's disk is simulated, so no
// clock enters it) and bounded, unlike a ratio of residual miss counts.
func perfPager(short bool) (PerfResult, error) {
	pool, hot, scanPages, rounds := 256, 64, 2048, 8
	if short {
		pool, hot, scanPages, rounds = 64, 16, 512, 4
	}
	run := func(protect bool) (PerfMetrics, error) {
		p := pager.New(pool)
		defer p.Close()
		p.SetScanProtection(protect)
		buf := make([]byte, 8)
		scan := p.Create("scan.dat")
		for i := 0; i < scanPages; i++ {
			no, err := p.Append(scan)
			if err != nil {
				return PerfMetrics{}, err
			}
			binary.LittleEndian.PutUint64(buf, uint64(i))
			if err := p.Write(scan, no, buf); err != nil {
				return PerfMetrics{}, err
			}
		}
		hotF := p.Create("hot.dat")
		for i := 0; i < hot; i++ {
			if _, err := p.Append(hotF); err != nil {
				return PerfMetrics{}, err
			}
		}
		if err := p.SyncAll(); err != nil {
			return PerfMetrics{}, err
		}
		p.ColdReset()
		p.ResetStats()

		start := time.Now()
		var ops int64
		for r := 0; r < rounds; r++ {
			// Touch the hot set a few times (make it provably hot) ...
			for pass := 0; pass < 3; pass++ {
				for i := 0; i < hot; i++ {
					if _, err := p.Read(hotF, uint32(i)); err != nil {
						return PerfMetrics{}, err
					}
					ops++
				}
			}
			// ... then a full sequential scan tries to flush it.
			for i := 0; i < scanPages; i++ {
				if _, err := p.Read(scan, uint32(i)); err != nil {
					return PerfMetrics{}, err
				}
				ops++
			}
		}
		elapsed := time.Since(start)
		st := p.Stats()
		total := st.Hits + st.Reads
		m := PerfMetrics{
			Ops:       ops,
			ElapsedMS: float64(elapsed.Microseconds()) / 1e3,
			OpsPerSec: float64(ops) / elapsed.Seconds(),
			Extra: map[string]float64{
				"disk_reads": float64(st.Reads),
				"hit_rate":   float64(st.Hits) / float64(total),
				"prefetched": float64(st.Prefetched),
			},
		}
		return m, nil
	}
	before, err := run(false)
	if err != nil {
		return PerfResult{}, err
	}
	after, err := run(true)
	if err != nil {
		return PerfResult{}, err
	}
	return PerfResult{
		Workload: fmt.Sprintf("pool=%d hot=%d scan=%d rounds=%d: hot-set re-reads interleaved with sequential scans", pool, hot, scanPages, rounds),
		Before:   before, After: after,
		Improvement:       after.Extra["hit_rate"] / before.Extra["hit_rate"],
		ImprovementMetric: "hit_rate_after_over_before",
	}, nil
}

// perfWire: C concurrent clients run no-op queries against an in-process
// TCP server in a closed loop. The engine answers instantly, so the cell
// isolates the serving path itself: framing, syscalls, admission,
// connection handling. Before is the dedicated-connection pooled
// transport; after is the pipelined mux (Config.Pipeline) riding 2
// shared connections with batched flushes and concurrent server-side
// dispatch. The client count is deliberately high: pipelining pays for
// its extra goroutine hand-offs with syscall amortization, which needs
// enough concurrent riders per connection to form deep batches — at low
// concurrency (a handful of clients) the pooled transport's
// one-socket-per-caller simplicity is already near-optimal on loopback.
func perfWire(short bool) (PerfResult, error) {
	clients, opsPer := 32, 4000
	if short {
		opsPer = 800
	}
	run := func(pipeline bool) (PerfMetrics, error) {
		srv := server.New(nullEngine{}, server.Config{})
		if err := srv.Start(); err != nil {
			return PerfMetrics{}, err
		}
		defer srv.Close()
		c, err := client.Dial(srv.Addr().String(), client.Config{Pipeline: pipeline})
		if err != nil {
			return PerfMetrics{}, err
		}
		defer c.Close()
		ctx := context.Background()
		if _, err := c.Execute(ctx, core.Q1, nil); err != nil { // warm the first connection
			return PerfMetrics{}, err
		}
		start := time.Now()
		var wg sync.WaitGroup
		errs := make([]error, clients)
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for j := 0; j < opsPer; j++ {
					if _, err := c.Execute(ctx, core.Q1, nil); err != nil {
						errs[i] = err
						return
					}
				}
			}(i)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return PerfMetrics{}, err
			}
		}
		ops := int64(clients) * int64(opsPer)
		return PerfMetrics{
			Ops:       ops,
			ElapsedMS: float64(elapsed.Microseconds()) / 1e3,
			OpsPerSec: float64(ops) / elapsed.Seconds(),
		}, nil
	}
	before, err := run(false)
	if err != nil {
		return PerfResult{}, err
	}
	after, err := run(true)
	if err != nil {
		return PerfResult{}, err
	}
	return PerfResult{
		Workload: fmt.Sprintf("%d concurrent clients x %d no-op queries, closed loop, loopback TCP", clients, opsPer),
		Before:   before, After: after,
		Improvement:       after.OpsPerSec / before.OpsPerSec,
		ImprovementMetric: "ops_per_sec_after_over_before",
	}, nil
}

// perfJournal: W concurrent writers append keyed records to a FileLog,
// each waiting for durability — the server's update ack path in
// miniature. Before is the legacy one-fsync-per-record mode; after is
// group commit with a small group window. The window matters in this
// cell: on a real disk the multi-millisecond fsync itself forms the
// group naturally, but benchmark containers often land /tmp on memory-
// backed filesystems where an fsync returns faster than a parked writer
// can be rescheduled, so natural batches degenerate to depth 1. A 250µs
// window restores the coalescing the mechanism is built to exploit. The
// updates-per-fsync ratio (records / syncs) is the cell's witness that
// acks are actually being shared.
func perfJournal(short bool) (PerfResult, error) {
	writers, opsPer := 8, 300
	if short {
		opsPer = 60
	}
	dir, err := os.MkdirTemp("", "xbench-perf-journal")
	if err != nil {
		return PerfResult{}, err
	}
	defer os.RemoveAll(dir)
	run := func(group bool, path string) (PerfMetrics, error) {
		l, _, err := updatelog.OpenFile(path)
		if err != nil {
			return PerfMetrics{}, err
		}
		defer l.Close()
		l.SetGroupCommit(group)
		if group {
			l.SetGroupWindow(250 * time.Microsecond)
		}
		start := time.Now()
		var wg sync.WaitGroup
		errs := make([]error, writers)
		for i := 0; i < writers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				data := []byte("<order><id>7</id></order>")
				for j := 0; j < opsPer; j++ {
					err := l.Append(updatelog.Record{
						Kind: updatelog.KindInsert,
						Name: fmt.Sprintf("doc-%d-%d.xml", i, j),
						Data: data, Client: uint64(i + 1), Seq: uint64(j + 1),
					})
					if err != nil {
						errs[i] = err
						return
					}
				}
			}(i)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return PerfMetrics{}, err
			}
		}
		ops := int64(writers) * int64(opsPer)
		return PerfMetrics{
			Ops:       ops,
			ElapsedMS: float64(elapsed.Microseconds()) / 1e3,
			OpsPerSec: float64(ops) / elapsed.Seconds(),
			Extra: map[string]float64{
				"fsyncs":           float64(l.Syncs()),
				"updates_per_sync": float64(ops) / float64(l.Syncs()),
			},
		}, nil
	}
	before, err := run(false, filepath.Join(dir, "legacy.journal"))
	if err != nil {
		return PerfResult{}, err
	}
	after, err := run(true, filepath.Join(dir, "group.journal"))
	if err != nil {
		return PerfResult{}, err
	}
	return PerfResult{
		Workload: fmt.Sprintf("%d concurrent writers x %d durable appends each", writers, opsPer),
		Before:   before, After: after,
		// The gate metric is the coalescing ratio, not wall-clock: fsync
		// cost varies by orders of magnitude across hosts (memory-backed
		// /tmp vs a real disk), but "W writers share one sync" is the
		// mechanism itself. before.updates_per_sync is 1 by construction.
		Improvement:       after.Extra["updates_per_sync"] / before.Extra["updates_per_sync"],
		ImprovementMetric: "updates_per_sync_after_over_before",
	}, nil
}

// WritePerfResult archives one cell as indented JSON at path.
func WritePerfResult(path string, res PerfResult) error {
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// CheckPerfRegression compares a fresh run against an archived baseline.
// It compares improvement RATIOS, which are machine-independent, with a
// tolerance: the run regresses if its ratio fell below (1 - tolerance) of
// the baseline's. Absolute throughput is deliberately not compared — a
// slower CI machine is not a regression.
func CheckPerfRegression(res PerfResult, baselinePath string, tolerance float64) error {
	b, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("perf baseline %s: %w (run `make bench-baseline` to create it)", baselinePath, err)
	}
	var base PerfResult
	if err := json.Unmarshal(b, &base); err != nil {
		return fmt.Errorf("perf baseline %s: %w", baselinePath, err)
	}
	if base.Cell != res.Cell {
		return fmt.Errorf("baseline %s is for cell %q, not %q", baselinePath, base.Cell, res.Cell)
	}
	floor := base.Improvement * (1 - tolerance)
	if res.Improvement < floor {
		return fmt.Errorf("cell %s regressed: improvement ratio %.2f < %.2f (baseline %.2f - %d%% tolerance)",
			res.Cell, res.Improvement, floor, base.Improvement, int(tolerance*100))
	}
	return nil
}

// nullEngine answers nothing but its name: the wire perf cell pings it so
// the measurement isolates the serving path from any engine cost.
type nullEngine struct{}

func (nullEngine) Name() string                         { return "null" }
func (nullEngine) Supports(core.Class, core.Size) error { return nil }
func (nullEngine) Load(context.Context, *core.Database) (core.LoadStats, error) {
	return core.LoadStats{}, nil
}
func (nullEngine) Execute(context.Context, core.QueryID, core.Params) (core.Result, error) {
	return core.Result{}, nil
}
func (nullEngine) BuildIndexes([]core.IndexSpec) error                  { return nil }
func (nullEngine) InsertDocument(context.Context, string, []byte) error { return nil }
func (nullEngine) ReplaceDocument(context.Context, string, []byte) error {
	return nil
}
func (nullEngine) DeleteDocument(context.Context, string) error { return nil }
func (nullEngine) PageIO() int64                                { return 0 }
func (nullEngine) ColdReset()                                   {}
func (nullEngine) Close() error                                 { return nil }
