package bench

import (
	"context"
	"fmt"
	"time"

	"xbench/internal/core"
	"xbench/internal/workload"
)

// IndexAblation reproduces the paper's unreported baseline: "We measure
// two times for each query: with no indexes (i.e., sequential scan) to
// form a baseline, and with indexes. We only report ... times with
// indexes." This table reports both, per engine and class, for one query
// at one size. The no-index engines still carry the automatically created
// primary/foreign-key indexes of the relational mappings, exactly as in
// the paper's setup — only the "arbitrary" Table 3 indexes are ablated.
func (r *Runner) IndexAblation(q core.QueryID, size core.Size) error {
	fmt.Fprintf(r.Out, "\nIndex ablation for %s at %s (ms: indexed / sequential scan)\n", q, size)
	fmt.Fprintf(r.Out, "%-12s", "")
	for _, c := range columnClasses {
		fmt.Fprintf(r.Out, " %-21s", c.String())
	}
	fmt.Fprintln(r.Out)
	for _, name := range EngineNames {
		fmt.Fprintf(r.Out, "%-12s", name)
		for _, class := range columnClasses {
			indexed := r.queryCell(name, class, size, q)
			scan := r.noIndexCell(name, class, size, q)
			fmt.Fprintf(r.Out, " %-10s/%-10s", indexed, scan)
		}
		fmt.Fprintln(r.Out)
	}
	return nil
}

// noIndexEngine loads (or returns the cached) engine without the Table 3
// indexes.
func (r *Runner) noIndexEngine(name string, class core.Class, size core.Size) (core.Engine, error) {
	k := key("noindex", name, class.Code(), size.String())
	if e, ok := r.engines[k]; ok {
		return e, r.loads[k].err
	}
	e := NewEngine(name)
	cell := loadCell{}
	if err := e.Supports(class, size); err != nil {
		cell.err = err
		r.engines[k], r.loads[k] = nil, cell
		return nil, err
	}
	db, err := r.Database(class, size)
	if err != nil {
		cell.err = err
		r.engines[k], r.loads[k] = nil, cell
		return nil, err
	}
	start := time.Now()
	st, err := e.Load(context.Background(), db)
	cell.stats, cell.dur, cell.err = st, time.Since(start), err
	if err != nil {
		r.engines[k] = nil
		r.loads[k] = cell
		return nil, err
	}
	r.engines[k], r.loads[k] = e, cell
	return e, nil
}

func (r *Runner) noIndexCell(engineName string, class core.Class, size core.Size, q core.QueryID) string {
	e, err := r.noIndexEngine(engineName, class, size)
	if err != nil || e == nil {
		return "-"
	}
	var total time.Duration
	n := max(r.Repeat, 1)
	for i := 0; i < n; i++ {
		m := workload.RunCold(context.Background(), e, class, q)
		if m.Err != nil {
			return "err"
		}
		total += m.Elapsed + time.Duration(m.Result.PageIO)*r.IOCost
	}
	ms := float64((total / time.Duration(n)).Microseconds()) / 1000
	if ms >= 10 {
		return fmt.Sprintf("%.0f", ms)
	}
	return fmt.Sprintf("%.2f", ms)
}
