package bench

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"xbench/internal/core"
	"xbench/internal/gen"
)

// stubEngine lets the degrade tests inject failures at each stage of the
// grid: Supports, Load, and Execute. It implements the legacy EngineV1
// shape and is lifted with core.AdaptV1, which doubles as coverage for
// the adapter.
type stubEngine struct {
	name       string
	supportErr error
	loadErr    error
	execErr    error
}

func (s *stubEngine) Name() string                         { return s.name }
func (s *stubEngine) Supports(core.Class, core.Size) error { return s.supportErr }
func (s *stubEngine) BuildIndexes([]core.IndexSpec) error  { return nil }
func (s *stubEngine) ColdReset()                           {}
func (s *stubEngine) PageIO() int64                        { return 0 }
func (s *stubEngine) Close() error                         { return nil }
func (s *stubEngine) Load(*core.Database) (core.LoadStats, error) {
	return core.LoadStats{}, s.loadErr
}
func (s *stubEngine) Execute(core.QueryID, core.Params) (core.Result, error) {
	if s.execErr != nil {
		return core.Result{}, s.execErr
	}
	return core.Result{}, nil
}

// TestGridDegradesGracefully: an engine that declines a class (wrapped
// ErrUnsupported), one whose load fails fatally, and one whose queries
// error must each degrade to a "-" or "err" cell — the rest of the grid
// keeps printing and no table call aborts.
func TestGridDegradesGracefully(t *testing.T) {
	stubs := map[string]*stubEngine{
		"declines": {name: "declines",
			supportErr: fmt.Errorf("stub: no thanks: %w", core.ErrUnsupported)},
		"loadfail": {name: "loadfail", loadErr: errors.New("stub: disk on fire")},
		"execfail": {name: "execfail", execErr: errors.New("stub: query exploded")},
		"healthy":  {name: "healthy"},
	}
	var out bytes.Buffer
	cfg := gen.Config{DictEntries: 20, Articles: 4, Items: 10, Orders: 20}
	r := NewRunner(cfg, []core.Size{core.Small}, &out)
	r.EngineList = []string{"declines", "loadfail", "execfail", "healthy"}
	r.NewEngineFn = func(name string) core.Engine { return core.AdaptV1(stubs[name]) }

	if err := r.Table4(); err != nil {
		t.Fatalf("Table4 aborted: %v", err)
	}
	if err := r.QueryTable(5); err != nil {
		t.Fatalf("QueryTable aborted: %v", err)
	}

	rows := map[string]string{}
	for _, line := range strings.Split(out.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) > 1 {
			rows[fields[0]] = line
		}
	}
	for _, name := range r.EngineList {
		if _, ok := rows[name]; !ok {
			t.Fatalf("row %q missing from grid output:\n%s", name, out.String())
		}
	}
	for _, name := range []string{"declines", "loadfail"} {
		cells := strings.Fields(rows[name])[1:]
		for i, c := range cells {
			if c != "-" {
				t.Fatalf("%s cell %d = %q, want -", name, i, c)
			}
		}
	}
	// The exec-failing engine loads fine (Table 4 numbers) but every query
	// cell reads "err".
	queryRow := ""
	for _, line := range strings.Split(out.String(), "\n") {
		if strings.HasPrefix(line, "execfail") && strings.Contains(line, "err") {
			queryRow = line
		}
	}
	if queryRow == "" {
		t.Fatalf("no err cells for execfail in query table:\n%s", out.String())
	}
	for i, c := range strings.Fields(queryRow)[1:] {
		if c != "err" {
			t.Fatalf("execfail query cell %d = %q, want err", i, c)
		}
	}
	// The healthy engine's query row must hold numbers, proving the grid
	// kept working past the failures.
	healthyQuery := false
	for _, line := range strings.Split(out.String(), "\n") {
		if strings.HasPrefix(line, "healthy") {
			for _, c := range strings.Fields(line)[1:] {
				if c != "-" && c != "err" {
					healthyQuery = true
				}
			}
		}
	}
	if !healthyQuery {
		t.Fatalf("healthy engine produced no measured cells:\n%s", out.String())
	}
}

// TestMeasureSurfacesLoadError: the programmatic API must return the load
// error instead of panicking when a cell is degraded.
func TestMeasureSurfacesLoadError(t *testing.T) {
	var out bytes.Buffer
	r := NewRunner(gen.Config{DictEntries: 20, Articles: 4, Items: 10, Orders: 20},
		[]core.Size{core.Small}, &out)
	r.EngineList = []string{"loadfail"}
	r.NewEngineFn = func(string) core.Engine {
		return core.AdaptV1(&stubEngine{name: "loadfail", loadErr: errors.New("stub: no disk")})
	}
	if _, err := r.Measure("loadfail", core.DCSD, core.Small, core.Q5); err == nil {
		t.Fatal("Measure returned nil error for a failed load")
	}
}
