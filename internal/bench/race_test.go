package bench

import (
	"bytes"
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"xbench/internal/core"
	"xbench/internal/pager"
	"xbench/internal/workload"
)

// TestConcurrentReadersDuringUpdates hammers every engine with query
// traffic while the update workload mutates documents. Run under -race
// (the CI race job does) it pins the thread-safety of the update path
// against concurrent readers; under plain `go test` it still checks that
// readers never observe an error mid-update.
func TestConcurrentReadersDuringUpdates(t *testing.T) {
	const readers = 4
	const updates = 12
	ctx := context.Background()
	var buf bytes.Buffer
	r := tinyRunner(&buf)
	db, err := r.Database(core.DCMD, core.Small)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range EngineNames {
		t.Run(name, func(t *testing.T) {
			e := r.newEngine(name)
			if _, _, err := workload.LoadAndIndex(ctx, e, db); err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			// Reader mix: whatever the engine defines, like driver warmup.
			var mix []core.QueryID
			for _, q := range []core.QueryID{core.Q1, core.Q2, core.Q5, core.Q6} {
				if workload.RunWarm(ctx, e, db.Class, q).Err == nil {
					mix = append(mix, q)
				}
			}
			if len(mix) == 0 {
				t.Fatal("engine defines none of the reader queries")
			}
			var stop atomic.Bool
			var readErrs atomic.Int64
			var reads atomic.Int64
			var wg sync.WaitGroup
			for i := 0; i < readers; i++ {
				wg.Add(1)
				go func(q core.QueryID) {
					defer wg.Done()
					// At least one read each, even if the updates finish
					// before this goroutine is first scheduled.
					for ok := true; ok; ok = !stop.Load() {
						if m := workload.RunWarm(ctx, e, db.Class, q); m.Err != nil {
							readErrs.Add(1)
						}
						reads.Add(1)
					}
				}(mix[i%len(mix)])
			}
			for seq := 0; seq < updates; seq++ {
				op := workload.UpdateOps[seq%len(workload.UpdateOps)]
				if m := workload.RunUpdateOp(ctx, e, db.Class, op, seq); m.Err != nil {
					t.Errorf("%s seq %d: %v", op, seq, m.Err)
				}
			}
			stop.Store(true)
			wg.Wait()
			if n := readErrs.Load(); n > 0 {
				t.Fatalf("%d/%d reader queries failed during updates", n, reads.Load())
			}
			if reads.Load() == 0 {
				t.Fatal("readers never ran")
			}
		})
	}
}

// TestSnapshotGCStress drives the three MVCC actors at once on every
// engine: snapshot readers pinning commit epochs, the journal-backed
// update path committing through mutation brackets, and version GC
// forced at the highest possible rate — a goroutine hammering
// Pager().GC() instead of waiting for the background tick. Under -race
// (the CI race job) it pins the pin/capture/prune synchronization;
// under plain `go test` it still checks that readers never fail
// mid-update and that GC reclaims every version once the pins drain.
func TestSnapshotGCStress(t *testing.T) {
	const readers = 3
	const updates = 16
	ctx := context.Background()
	var buf bytes.Buffer
	r := tinyRunner(&buf)
	db, err := r.Database(core.DCMD, core.Small)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range EngineNames {
		t.Run(name, func(t *testing.T) {
			e := r.newEngine(name)
			if _, _, err := workload.LoadAndIndex(ctx, e, db); err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			p := e.(interface{ Pager() *pager.Pager }).Pager()
			var mix []core.QueryID
			for _, q := range []core.QueryID{core.Q1, core.Q2, core.Q5, core.Q6} {
				if workload.RunWarm(ctx, e, db.Class, q).Err == nil {
					mix = append(mix, q)
				}
			}
			if len(mix) == 0 {
				t.Fatal("engine defines none of the reader queries")
			}
			var stop atomic.Bool
			var readErrs, reads atomic.Int64
			var wg sync.WaitGroup
			for i := 0; i < readers; i++ {
				wg.Add(1)
				go func(q core.QueryID) {
					defer wg.Done()
					for ok := true; ok; ok = !stop.Load() {
						if m := workload.RunWarm(ctx, e, db.Class, q); m.Err != nil {
							readErrs.Add(1)
						}
						reads.Add(1)
					}
				}(mix[i%len(mix)])
			}
			// The GC hammer: every pass prunes whatever the lowest pin
			// (or the committed epoch, mid-bracket) allows.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !stop.Load() {
					p.GC()
					runtime.Gosched()
				}
			}()
			for seq := 0; seq < updates; seq++ {
				op := workload.UpdateOps[seq%len(workload.UpdateOps)]
				if m := workload.RunUpdateOp(ctx, e, db.Class, op, seq); m.Err != nil {
					t.Errorf("%s seq %d: %v", op, seq, m.Err)
				}
			}
			stop.Store(true)
			wg.Wait()
			if n := readErrs.Load(); n > 0 {
				t.Fatalf("%d/%d reader queries failed during updates+GC", n, reads.Load())
			}
			// All pins drained and no bracket open: one more pass must
			// leave nothing for readers to need.
			p.GC()
			if n := p.PinnedSnapshots(); n != 0 {
				t.Fatalf("%d snapshots still pinned after drain", n)
			}
			if n := p.LiveVersions(); n != 0 {
				t.Fatalf("%d page versions survive with no pins and no open bracket", n)
			}
		})
	}
}
