package bench

import (
	"fmt"

	"xbench/internal/chaos"
	"xbench/internal/core"
	"xbench/internal/workload"
)

// updateClasses are the classes the update workload is defined for: the
// multi-document ones, where a document is the natural update unit.
var updateClasses = []core.Class{core.DCMD, core.TCMD}

// UpdateChaosGrid runs the update chaos harness over every engine x
// multi-document class x update op at the runner's first (smallest) size,
// printing one cell per combination: "-" for unsupported cells,
// "ok:<crashes>c<committed>+<rolledback>" for passing ones, "FAIL" (with
// a detail line below the table) otherwise. It returns an error if any
// cell failed, so callers can gate CI on it.
func (r *Runner) UpdateChaosGrid(cfg chaos.Config) error {
	cfg = cfg.WithDefaults()
	size := r.Sizes[0]
	fmt.Fprintf(r.Out, "\nChaos: crash-during-update grid (size %s, seed %d, %d crash points)\n",
		size, cfg.Seed, cfg.CrashPoints)
	fmt.Fprintf(r.Out, "%-12s", "")
	for _, c := range updateClasses {
		for _, op := range workload.UpdateOps {
			fmt.Fprintf(r.Out, " %-10s", fmt.Sprintf("%s %s", c.Code(), op))
		}
	}
	fmt.Fprintln(r.Out)

	var failures []string
	for _, name := range r.engineNames() {
		fmt.Fprintf(r.Out, "%-12s", name)
		for _, class := range updateClasses {
			for _, op := range workload.UpdateOps {
				out := r.updateChaosCell(name, class, size, op, cfg)
				fmt.Fprintf(r.Out, " %-10s", out)
				if out.Err != nil {
					failures = append(failures, fmt.Sprintf("%s/%s/%s: %v", name, class.Code(), op, out.Err))
				}
			}
		}
		fmt.Fprintln(r.Out)
	}
	for _, f := range failures {
		fmt.Fprintf(r.Out, "FAIL %s\n", f)
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench: update chaos grid: %d cell(s) failed", len(failures))
	}
	return nil
}

func (r *Runner) updateChaosCell(name string, class core.Class, size core.Size,
	op workload.UpdateOp, cfg chaos.Config) chaos.UpdateOutcome {
	db, err := r.Database(class, size)
	if err != nil {
		return chaos.UpdateOutcome{Engine: name, Class: class, Op: op, Err: err}
	}
	return chaos.RunUpdateCell(func() core.Engine { return r.newEngine(name) }, db, op, cfg)
}
