// Updates report: the `xbench updates` subcommand. Runs the document
// update workload (U1 insert, U2 replace, U3 delete) Repeat times per op
// against every engine on a multi-document class and reports per-op
// p50/p95/p99 update latency, the verification-query latency (separately
// — see workload.UpdateMeasurement), and the metrics breakdown the
// instrumented engines attribute to the update path: pager I/O, WAL
// appends, rows touched.
package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"xbench/internal/core"
	"xbench/internal/metrics"
	"xbench/internal/workload"
)

// UpdatesOptions configures UpdatesReport.
type UpdatesOptions struct {
	// Class is the multi-document class to update (DC/MD or TC/MD).
	Class core.Class
	// Repeat is the number of measured runs per update op (>= 1).
	Repeat int
	// Format is "table" (default), "json" or "csv".
	Format string
	// Engines overrides the engine rows (defaults to the runner's grid).
	Engines []string
}

// UpdateCellReport aggregates the runs of one engine x op cell.
type UpdateCellReport struct {
	Engine string `json:"engine"`
	Class  string `json:"class"`
	Size   string `json:"size"`
	Op     string `json:"op"`
	Runs   int    `json:"runs"`

	// Update-only latency (setup and verification excluded).
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
	// Verification-query latency, reported separately.
	VerifyP50Ms  float64 `json:"verify_p50_ms"`
	VerifyMeanMs float64 `json:"verify_mean_ms"`

	// PageIO is the mean per-run pager I/O the metrics layer attributed
	// to the update; Writes the mean page writes within it.
	PageIO float64 `json:"page_io"`
	Writes float64 `json:"page_writes"`
	// Counters holds the remaining summed counter deltas across runs.
	Counters map[string]int64 `json:"counters,omitempty"`

	Err string `json:"error,omitempty"`
}

// UpdatesGrid measures every engine x update-op cell at the runner's
// first (smallest) size and returns the cells in grid order. Engines that
// do not support the class, or whose update path declines the documents,
// are skipped.
func (r *Runner) UpdatesGrid(opts UpdatesOptions) ([]UpdateCellReport, error) {
	ctx := context.Background()
	if opts.Repeat < 1 {
		opts.Repeat = max(r.Repeat, 1)
	}
	if opts.Class.SingleDocument() {
		return nil, fmt.Errorf("bench: update workload is defined for multi-document classes, not %s", opts.Class)
	}
	size := r.Sizes[0]
	db, err := r.Database(opts.Class, size)
	if err != nil {
		return nil, err
	}
	engines := opts.Engines
	if len(engines) == 0 {
		engines = r.engineNames()
	}
	var cells []UpdateCellReport
	for _, name := range engines {
		// Fresh engine per row: updates mutate the store, so the runner's
		// shared engine cache must not be poisoned for later query tables.
		e := r.newEngine(name)
		if e.Supports(opts.Class, size) != nil {
			continue
		}
		if _, _, err := workload.LoadAndIndex(ctx, e, db); err != nil {
			return cells, fmt.Errorf("bench: load %s: %w", name, err)
		}
		seq := 0
		for _, op := range workload.UpdateOps {
			cell, ok := r.measureUpdateCell(ctx, e, name, opts, db.Class, size, op, &seq)
			if ok {
				cells = append(cells, cell)
			}
		}
		if err := e.Close(); err != nil {
			return cells, fmt.Errorf("bench: close %s: %w", name, err)
		}
	}
	return cells, nil
}

func (r *Runner) measureUpdateCell(ctx context.Context, e core.Engine, name string,
	opts UpdatesOptions, class core.Class, size core.Size, op workload.UpdateOp, seq *int) (UpdateCellReport, bool) {
	cell := UpdateCellReport{
		Engine: name,
		Class:  class.Code(),
		Size:   size.String(),
		Op:     op.String(),
		Runs:   opts.Repeat,
	}
	hist := metrics.NewHistogram()
	verify := metrics.NewHistogram()
	counters := map[string]int64{}
	var pageIO, writes int64
	for i := 0; i < opts.Repeat; i++ {
		m := workload.RunUpdateOp(ctx, e, class, op, *seq)
		*seq++
		if m.Err != nil {
			if errors.Is(m.Err, core.ErrUnsupported) || errors.Is(m.Err, core.ErrReadOnly) {
				return cell, false
			}
			cell.Err = m.Err.Error()
			return cell, true
		}
		hist.Observe(m.Elapsed)
		verify.Observe(m.VerifyElapsed)
		pageIO += m.Breakdown.PagerIO()
		writes += m.Breakdown.Get("pager.write")
		for _, cn := range m.Breakdown.CounterNames() {
			if metrics.IsGauge(cn) {
				if v := m.Breakdown.Get(cn); v > counters[cn] {
					counters[cn] = v
				}
				continue
			}
			counters[cn] += m.Breakdown.Get(cn)
		}
	}
	n := float64(opts.Repeat)
	cell.P50Ms = msOf(hist.P50())
	cell.P95Ms = msOf(hist.P95())
	cell.P99Ms = msOf(hist.P99())
	cell.MeanMs = msOf(hist.Mean())
	cell.VerifyP50Ms = msOf(verify.P50())
	cell.VerifyMeanMs = msOf(verify.Mean())
	cell.PageIO = float64(pageIO) / n
	cell.Writes = float64(writes) / n
	cell.Counters = counters
	return cell, true
}

// UpdatesReport measures the update grid and prints it in the requested
// format. It returns an error if any cell failed, so CI can gate on it.
func (r *Runner) UpdatesReport(opts UpdatesOptions) error {
	cells, err := r.UpdatesGrid(opts)
	if err != nil {
		return err
	}
	switch opts.Format {
	case "", "table":
		r.printUpdatesTable(opts, cells)
	case "json":
		enc := json.NewEncoder(r.Out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cells); err != nil {
			return err
		}
	case "csv":
		printUpdatesCSV(r, cells)
	default:
		return fmt.Errorf("bench: unknown updates format %q (want table, json or csv)", opts.Format)
	}
	var failed int
	for _, c := range cells {
		if c.Err != "" {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("bench: updates: %d cell(s) failed", failed)
	}
	return nil
}

func (r *Runner) printUpdatesTable(opts UpdatesOptions, cells []UpdateCellReport) {
	if len(cells) == 0 {
		fmt.Fprintln(r.Out, "no update cells measured")
		return
	}
	fmt.Fprintf(r.Out, "Update workload: %s %s, %d run(s) per op (update-only ms; verification separate)\n",
		cells[0].Class, cells[0].Size, cells[0].Runs)
	fmt.Fprintf(r.Out, "%-12s %-4s %9s %9s %9s %9s %10s %8s %8s\n",
		"engine", "op", "p50", "p95", "p99", "mean", "verify p50", "pageIO", "writes")
	for _, c := range cells {
		if c.Err != "" {
			fmt.Fprintf(r.Out, "%-12s %-4s error: %s\n", c.Engine, c.Op, c.Err)
			continue
		}
		fmt.Fprintf(r.Out, "%-12s %-4s %9.3f %9.3f %9.3f %9.3f %10.3f %8.0f %8.0f\n",
			c.Engine, c.Op, c.P50Ms, c.P95Ms, c.P99Ms, c.MeanMs, c.VerifyP50Ms, c.PageIO, c.Writes)
	}
	// Per-layer counter detail for the curious, one compact line per cell.
	for _, c := range cells {
		if c.Err != "" || len(c.Counters) == 0 {
			continue
		}
		names := make([]string, 0, len(c.Counters))
		for cn := range c.Counters {
			names = append(names, cn)
		}
		sort.Strings(names)
		line := ""
		for _, cn := range names {
			line += fmt.Sprintf(" %s=%d", cn, c.Counters[cn])
		}
		fmt.Fprintf(r.Out, "%-12s %-4s counters:%s\n", c.Engine, c.Op, line)
	}
}

const updatesCSVHeader = "engine,class,size,op,runs," +
	"p50_ms,p95_ms,p99_ms,mean_ms,verify_p50_ms,verify_mean_ms,page_io,page_writes"

func printUpdatesCSV(r *Runner, cells []UpdateCellReport) {
	fmt.Fprintln(r.Out, updatesCSVHeader)
	for _, c := range cells {
		if c.Err != "" {
			fmt.Fprintf(r.Out, "# error: %s %s/%s %s: %s\n", c.Engine, c.Class, c.Size, c.Op, c.Err)
			continue
		}
		fmt.Fprintf(r.Out, "%s,%s,%s,%s,%d,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.1f,%.1f\n",
			c.Engine, c.Class, c.Size, c.Op, c.Runs,
			c.P50Ms, c.P95Ms, c.P99Ms, c.MeanMs, c.VerifyP50Ms, c.VerifyMeanMs,
			c.PageIO, c.Writes)
	}
}
