package bench

import (
	"context"
	"fmt"
	"time"

	"xbench/internal/core"
	"xbench/internal/workload"
)

// ShapeReport mechanically compares this reproduction's measurements with
// the paper's published numbers, checking the two properties that transfer
// across hardware generations:
//
//  1. the winner of each (table, class, size) column — which architecture
//     is fastest — and
//  2. the growth factor of each engine across the 10x size steps.
//
// It prints one line per check with agree/disagree, plus a summary. This
// is the machine-checkable core of EXPERIMENTS.md.
func (r *Runner) ShapeReport() error {
	if len(r.Sizes) < 2 {
		return fmt.Errorf("bench: shape report needs at least two sizes")
	}
	agree, disagree := 0, 0
	note := func(ok bool, format string, args ...any) {
		mark := "agree   "
		if !ok {
			mark = "DIVERGES"
			disagree++
		} else {
			agree++
		}
		fmt.Fprintf(r.Out, "  %s %s\n", mark, fmt.Sprintf(format, args...))
	}

	for table := 4; table <= 9; table++ {
		fmt.Fprintf(r.Out, "\nTable %d shape checks:\n", table)
		// Winner per (class, size) column. The paper prints times at 5-10 ms
		// granularity, so engines within 30% of the column minimum count as
		// co-winners; the check passes when the co-winner sets intersect.
		for _, class := range columnClasses {
			for _, size := range r.Sizes {
				paperVals := map[string]float64{}
				measuredVals := map[string]float64{}
				for _, engine := range EngineNames {
					pv, ok := PaperValue(PaperCell{table, engine, class, size})
					if !ok || pv == Blank {
						continue
					}
					mv, have := r.measuredCell(table, engine, class, size)
					if !have {
						continue
					}
					paperVals[engine] = pv
					measuredVals[engine] = mv
				}
				if len(paperVals) == 0 {
					continue
				}
				paperWin := coWinners(paperVals)
				measuredWin := coWinners(measuredVals)
				ok := false
				for e := range paperWin {
					if measuredWin[e] {
						ok = true
					}
				}
				note(ok, "%s %s fastest: paper=%s measured=%s",
					class, size, setString(paperWin), setString(measuredWin))
			}
		}
		// Growth direction per engine/class across the size span: does the
		// engine scale roughly linearly (factor near the 10x data growth)
		// or super-linearly (well beyond it)? Agreement means both the
		// paper and the measurement fall in the same regime.
		span := float64((r.Sizes[len(r.Sizes)-1].Factor()) / r.Sizes[0].Factor())
		for _, engine := range EngineNames {
			for _, class := range columnClasses {
				pLo, ok1 := PaperValue(PaperCell{table, engine, class, r.Sizes[0]})
				pHi, ok2 := PaperValue(PaperCell{table, engine, class, r.Sizes[len(r.Sizes)-1]})
				if !ok1 || !ok2 || pLo <= 0 || pHi <= 0 {
					continue
				}
				mLo, have1 := r.measuredCell(table, engine, class, r.Sizes[0])
				mHi, have2 := r.measuredCell(table, engine, class, r.Sizes[len(r.Sizes)-1])
				if !have1 || !have2 || mLo <= 0 {
					continue
				}
				paperSuper := pHi/pLo > 2*span
				measuredSuper := mHi/mLo > 2*span
				note(paperSuper == measuredSuper,
					"%s %s growth x%.0f (paper x%.0f) over %.0fx data",
					engine, class, mHi/mLo, pHi/pLo, span)
			}
		}
	}
	fmt.Fprintf(r.Out, "\nshape checks: %d agree, %d diverge (see EXPERIMENTS.md for the analysis of divergences)\n",
		agree, disagree)
	return nil
}

// coWinners returns the engines within 30% of the column minimum.
func coWinners(vals map[string]float64) map[string]bool {
	min := 0.0
	first := true
	for _, v := range vals {
		if first || v < min {
			min, first = v, false
		}
	}
	out := map[string]bool{}
	for e, v := range vals {
		if v <= min*1.3 {
			out[e] = true
		}
	}
	return out
}

// setString renders a winner set deterministically (paper row order).
func setString(set map[string]bool) string {
	s := ""
	for _, e := range EngineNames {
		if set[e] {
			if s != "" {
				s += "+"
			}
			s += e
		}
	}
	return s
}

// measuredCell returns the effective milliseconds for a cell, running the
// measurement if needed. have is false for unsupported combinations.
func (r *Runner) measuredCell(table int, engine string, class core.Class, size core.Size) (ms float64, have bool) {
	e, cell := r.Engine(engine, class, size)
	if cell.err != nil || e == nil {
		return 0, false
	}
	if table == 4 {
		eff := cell.dur + time.Duration(cell.stats.PageIO)*r.IOCost
		return float64(eff.Microseconds()) / 1000, true
	}
	q := TableQueries[table]
	n := max(r.Repeat, 1)
	var total time.Duration
	for i := 0; i < n; i++ {
		m := workload.RunCold(context.Background(), e, class, q)
		if m.Err != nil {
			return 0, false
		}
		total += m.Elapsed + time.Duration(m.Result.PageIO)*r.IOCost
	}
	avg := total / time.Duration(n)
	return float64(avg.Microseconds()) / 1000, true
}
