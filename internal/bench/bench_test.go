package bench

import (
	"bytes"
	"strings"
	"testing"

	"xbench/internal/core"
	"xbench/internal/gen"
)

func tinyRunner(buf *bytes.Buffer) *Runner {
	cfg := gen.Config{DictEntries: 40, Articles: 6, Items: 25, Orders: 40}
	return NewRunner(cfg, []core.Size{core.Small}, buf)
}

func TestStaticTables(t *testing.T) {
	var buf bytes.Buffer
	PrintTable1(&buf)
	PrintTable2(&buf)
	PrintTable3(&buf)
	out := buf.String()
	for _, want := range []string{
		"Online dictionaries", "Transactional data", // Table 1
		"GCIDE", "Reuters", "807000", // Table 2
		"hw", "article/@id", "item/@id, date_of_release", "order/@id", // Table 3
	} {
		if !strings.Contains(out, want) {
			t.Errorf("static tables missing %q", want)
		}
	}
}

func TestTable4Layout(t *testing.T) {
	var buf bytes.Buffer
	r := tinyRunner(&buf)
	if err := r.Table4(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range EngineNames {
		if !strings.Contains(out, name) {
			t.Errorf("Table 4 missing engine row %q", name)
		}
	}
	// Xcolumn cannot host SD classes: its row must contain blank cells.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "Xcolumn") && !strings.Contains(line, "-") {
			t.Errorf("Xcolumn row has no blank cells: %q", line)
		}
	}
}

func TestQueryTablesRun(t *testing.T) {
	var buf bytes.Buffer
	r := tinyRunner(&buf)
	for tn := 5; tn <= 9; tn++ {
		if err := r.QueryTable(tn); err != nil {
			t.Fatalf("table %d: %v", tn, err)
		}
	}
	out := buf.String()
	if strings.Contains(out, "err") {
		t.Fatalf("query table contains error cells:\n%s", out)
	}
	for _, want := range []string{"Q5", "Q12", "Q17", "Q8", "Q14"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing table for %s", want)
		}
	}
}

func TestQueryTableUnknown(t *testing.T) {
	r := tinyRunner(&bytes.Buffer{})
	if err := r.QueryTable(99); err == nil {
		t.Fatal("unknown table number accepted")
	}
}

func TestEngineCaching(t *testing.T) {
	r := tinyRunner(&bytes.Buffer{})
	e1, c1 := r.Engine("X-Hive", core.DCMD, core.Small)
	e2, c2 := r.Engine("X-Hive", core.DCMD, core.Small)
	if e1 != e2 {
		t.Fatal("engine not cached")
	}
	if c1.dur != c2.dur {
		t.Fatal("load measurement not cached")
	}
	if c1.err != nil {
		t.Fatal(c1.err)
	}
}

func TestUnsupportedCellsPropagate(t *testing.T) {
	r := tinyRunner(&bytes.Buffer{})
	e, cell := r.Engine("Xcolumn", core.TCSD, core.Small)
	if e != nil || cell.err == nil {
		t.Fatal("Xcolumn TC/SD should be unsupported")
	}
	if got := r.queryCell("Xcolumn", core.TCSD, core.Small, core.Q5); got != "-" {
		t.Fatalf("unsupported cell = %q", got)
	}
}

func TestMeasure(t *testing.T) {
	r := tinyRunner(&bytes.Buffer{})
	m, err := r.Measure("SQL Server", core.DCSD, core.Small, core.Q8)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Result.Items) == 0 {
		t.Fatal("Q8 returned nothing")
	}
	if m.Elapsed <= 0 {
		t.Fatal("no elapsed time measured")
	}
}

func TestNewEnginePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown engine")
		}
	}()
	NewEngine("Oracle")
}

func TestIndexAblation(t *testing.T) {
	var buf bytes.Buffer
	r := tinyRunner(&buf)
	if err := r.IndexAblation(core.Q5, core.Small); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Index ablation") || !strings.Contains(out, "X-Hive") {
		t.Fatalf("ablation output wrong:\n%s", out)
	}
	if strings.Contains(out, "err") {
		t.Fatalf("ablation contains error cells:\n%s", out)
	}
}

func TestPaperValuesTranscription(t *testing.T) {
	// Spot-check cells against the paper's printed tables.
	spots := []struct {
		cell PaperCell
		want float64
	}{
		{PaperCell{4, "X-Hive", core.DCMD, core.Large}, 8568},
		{PaperCell{4, "SQL Server", core.DCSD, core.Small}, 43},
		{PaperCell{5, "X-Hive", core.DCMD, core.Large}, 213347},
		{PaperCell{5, "Xcolumn", core.TCSD, core.Small}, Blank},
		{PaperCell{6, "Xcollection", core.TCMD, core.Large}, 3101},
		{PaperCell{7, "X-Hive", core.TCMD, core.Small}, 20},
		{PaperCell{8, "X-Hive", core.TCSD, core.Large}, 48459},
		{PaperCell{9, "Xcollection", core.DCSD, core.Small}, 30},
	}
	for _, s := range spots {
		got, ok := PaperValue(s.cell)
		if !ok || got != s.want {
			t.Errorf("PaperValue(%+v) = %v, %v; want %v", s.cell, got, ok, s.want)
		}
	}
	if _, ok := PaperValue(PaperCell{3, "X-Hive", core.DCSD, core.Small}); ok {
		t.Error("PaperValue accepted a non-measured table")
	}
	if !PaperBlank(4, "Xcolumn", core.DCSD, core.Small) {
		t.Error("Xcolumn DC/SD should be blank")
	}
	if PaperBlank(4, "X-Hive", core.DCSD, core.Small) {
		t.Error("X-Hive DC/SD should not be blank")
	}
}

func TestPaperBlanksMatchEngineSupport(t *testing.T) {
	// Every blank cell of the paper must be an unsupported combination of
	// our engine, and vice versa.
	for table := 4; table <= 9; table++ {
		for _, engine := range EngineNames {
			for _, class := range core.Classes {
				for _, size := range core.Sizes {
					blank := PaperBlank(table, engine, class, size)
					unsupported := NewEngine(engine).Supports(class, size) != nil
					if blank != unsupported {
						t.Errorf("table %d %s %s %s: paper blank=%v, engine unsupported=%v",
							table, engine, class, size, blank, unsupported)
					}
				}
			}
		}
	}
}

func TestShapeReportRuns(t *testing.T) {
	var buf bytes.Buffer
	cfg := gen.Config{DictEntries: 40, Articles: 6, Items: 25, Orders: 40}
	r := NewRunner(cfg, []core.Size{core.Small, core.Normal}, &buf)
	if err := r.ShapeReport(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "shape checks:") || !strings.Contains(out, "Table 7 shape checks") {
		t.Fatalf("report incomplete:\n%.400s", out)
	}
	// Single-size runners are rejected.
	r2 := NewRunner(cfg, []core.Size{core.Small}, &buf)
	if err := r2.ShapeReport(); err == nil {
		t.Fatal("single-size shape report accepted")
	}
}
