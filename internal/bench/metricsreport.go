// Metrics report: the `xbench report` subcommand. Where the paper tables
// (bench.go) print one averaged number per cell, the metrics report runs
// each query cell N times cold and M times warm, feeds the effective
// times through the metrics histograms, and prints p50/p95/p99 together
// with the per-phase and per-layer breakdown the instrumented engines
// attribute to the run: pager I/O, buffer-pool hit rate, B+tree node
// visits and span phase times. Output is a grouped text table, JSON or
// CSV (both suitable for checking into results/).
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"xbench/internal/core"
	"xbench/internal/metrics"
	"xbench/internal/workload"
)

// ReportPhases fixes the phase column order of the report (and the CSV
// header): the canonical query pipeline from parse to eval.
var ReportPhases = []string{
	metrics.PhaseParse,
	metrics.PhasePlan,
	metrics.PhaseIndexProbe,
	metrics.PhaseScan,
	metrics.PhaseMaterialize,
	metrics.PhaseEval,
}

// ReportQueries is the default query set of the metrics report: the five
// queries the paper tables measure (Tables 5-9).
var ReportQueries = []core.QueryID{core.Q5, core.Q12, core.Q17, core.Q8, core.Q14}

// ReportOptions configures MetricsReport.
type ReportOptions struct {
	// Queries to measure; empty selects ReportQueries.
	Queries []core.QueryID
	// Repeat is the number of cold runs per cell (>= 1).
	Repeat int
	// Warm is the number of warm runs per cell after the cold runs (the
	// buffer pool keeps what the cold runs loaded); 0 disables.
	Warm int
	// Format is "table" (default), "json" or "csv".
	Format string
}

// CellReport aggregates the cold and warm runs of one query cell. All
// millisecond figures are effective times: wall-clock plus PageIO x
// IOCost, the same model the paper tables use.
type CellReport struct {
	Engine string `json:"engine"`
	Class  string `json:"class"`
	Size   string `json:"size"`
	Query  string `json:"query"`
	Runs   int    `json:"runs"`
	Warm   int    `json:"warm_runs"`

	ColdP50Ms  float64 `json:"cold_p50_ms"`
	ColdP95Ms  float64 `json:"cold_p95_ms"`
	ColdP99Ms  float64 `json:"cold_p99_ms"`
	ColdMeanMs float64 `json:"cold_mean_ms"`
	WarmP50Ms  float64 `json:"warm_p50_ms"`
	WarmMeanMs float64 `json:"warm_mean_ms"`

	// PageIO is the mean per-run page I/O reported by the engine result;
	// AttributedIO is the mean per-run I/O the pager counters attributed.
	// AttributionPct is their ratio — the acceptance gate asks >= 90%.
	PageIO         float64 `json:"page_io"`
	AttributedIO   float64 `json:"attributed_io"`
	AttributionPct float64 `json:"attribution_pct"`

	// CacheHitPct is the buffer-pool hit rate across the cold runs.
	CacheHitPct float64 `json:"cache_hit_pct"`
	// BtreeVisits is the mean per-run B+tree node visit count.
	BtreeVisits float64 `json:"btree_visits"`

	// PhasesMs holds the mean per-run time attributed to each span phase.
	PhasesMs map[string]float64 `json:"phases_ms,omitempty"`
	// Counters holds the remaining summed counter deltas across cold runs
	// (pager.hit, pager.evict, relational.scan.row, ...).
	Counters map[string]int64 `json:"counters,omitempty"`

	Err string `json:"error,omitempty"`
}

// Report is the full metrics report: the measurement configuration plus
// one CellReport per measured cell.
type Report struct {
	Repeat   int          `json:"repeat"`
	Warm     int          `json:"warm_runs"`
	IOCostUs int64        `json:"io_cost_us"`
	Cells    []CellReport `json:"cells"`
}

func msOf(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// effective converts a measurement to the effective time the tables
// report: wall-clock plus simulated disk time.
func (r *Runner) effective(m workload.Measurement) time.Duration {
	return m.Elapsed + time.Duration(m.Result.PageIO)*r.IOCost
}

// measureCell runs one query cell Repeat times cold and Warm times warm,
// aggregating measurements into a CellReport. The second return is false
// for unsupported combinations (the paper's blank cells).
func (r *Runner) measureCell(opts ReportOptions, name string, class core.Class, size core.Size, q core.QueryID) (CellReport, bool) {
	if !workload.Defined(class, q) {
		return CellReport{}, false
	}
	e, lc := r.Engine(name, class, size)
	if lc.err != nil || e == nil {
		return CellReport{}, false
	}
	cr := CellReport{
		Engine: name,
		Class:  class.Code(),
		Size:   size.String(),
		Query:  q.String(),
		Runs:   opts.Repeat,
		Warm:   opts.Warm,
	}
	coldHist := metrics.NewHistogram()
	warmHist := metrics.NewHistogram()
	counters := map[string]int64{}
	phases := map[string]time.Duration{}
	var pageIO, attributed int64
	for i := 0; i < opts.Repeat; i++ {
		m := workload.RunCold(context.Background(), e, class, q)
		if m.Err != nil {
			cr.Err = m.Err.Error()
			r.noteErr(name, class, size, q, m.Err)
			return cr, true
		}
		coldHist.Observe(r.effective(m))
		pageIO += m.Result.PageIO
		attributed += m.Breakdown.PagerIO()
		for _, cn := range m.Breakdown.CounterNames() {
			if metrics.IsGauge(cn) {
				if v := m.Breakdown.Get(cn); v > counters[cn] {
					counters[cn] = v
				}
				continue
			}
			counters[cn] += m.Breakdown.Get(cn)
		}
		for ph, d := range m.Breakdown.Phases {
			phases[ph] += d
		}
	}
	for i := 0; i < opts.Warm; i++ {
		m := workload.RunWarm(context.Background(), e, class, q)
		if m.Err != nil {
			cr.Err = m.Err.Error()
			r.noteErr(name, class, size, q, m.Err)
			return cr, true
		}
		warmHist.Observe(r.effective(m))
	}
	n := float64(opts.Repeat)
	cr.ColdP50Ms = msOf(coldHist.P50())
	cr.ColdP95Ms = msOf(coldHist.P95())
	cr.ColdP99Ms = msOf(coldHist.P99())
	cr.ColdMeanMs = msOf(coldHist.Mean())
	cr.WarmP50Ms = msOf(warmHist.P50())
	cr.WarmMeanMs = msOf(warmHist.Mean())
	cr.PageIO = float64(pageIO) / n
	cr.AttributedIO = float64(attributed) / n
	if pageIO > 0 {
		cr.AttributionPct = 100 * float64(attributed) / float64(pageIO)
	} else if attributed == 0 {
		cr.AttributionPct = 100
	}
	hits, reads := counters["pager.hit"], counters["pager.read"]
	if hits+reads > 0 {
		cr.CacheHitPct = 100 * float64(hits) / float64(hits+reads)
	}
	cr.BtreeVisits = float64(counters["btree.visit"]) / n
	cr.PhasesMs = map[string]float64{}
	for ph, d := range phases {
		cr.PhasesMs[ph] = msOf(d) / n
	}
	cr.Counters = counters
	return cr, true
}

// BuildReport measures every cell of the grid (engine x class x size for
// each requested query) and returns the aggregate report.
func (r *Runner) BuildReport(opts ReportOptions) Report {
	if opts.Repeat < 1 {
		opts.Repeat = r.Repeat
	}
	if opts.Repeat < 1 {
		opts.Repeat = 1
	}
	if len(opts.Queries) == 0 {
		opts.Queries = ReportQueries
	}
	rep := Report{Repeat: opts.Repeat, Warm: opts.Warm, IOCostUs: r.IOCost.Microseconds()}
	for _, q := range opts.Queries {
		for _, name := range r.engineNames() {
			for _, class := range columnClasses {
				for _, size := range r.Sizes {
					if cell, ok := r.measureCell(opts, name, class, size, q); ok {
						rep.Cells = append(rep.Cells, cell)
					}
				}
			}
		}
	}
	return rep
}

// MetricsReport builds and prints the report in the requested format.
func (r *Runner) MetricsReport(opts ReportOptions) error {
	rep := r.BuildReport(opts)
	switch opts.Format {
	case "", "table":
		r.printReportTable(rep)
	case "json":
		enc := json.NewEncoder(r.Out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	case "csv":
		printReportCSV(r, rep)
	default:
		return fmt.Errorf("bench: unknown report format %q (want table, json or csv)", opts.Format)
	}
	r.errs = nil // cell errors are embedded in the report rows
	return nil
}

// reportCSVHeader is the fixed column set of the CSV report format.
const reportCSVHeader = "engine,class,size,query,runs,warm_runs," +
	"cold_p50_ms,cold_p95_ms,cold_p99_ms,cold_mean_ms,warm_p50_ms,warm_mean_ms," +
	"page_io,attributed_io,attribution_pct,cache_hit_pct,btree_visits," +
	"parse_ms,plan_ms,index_probe_ms,scan_ms,materialize_ms,eval_ms"

func printReportCSV(r *Runner, rep Report) {
	fmt.Fprintln(r.Out, reportCSVHeader)
	for _, c := range rep.Cells {
		if c.Err != "" {
			fmt.Fprintf(r.Out, "# error: %s %s/%s %s: %s\n", c.Engine, c.Class, c.Size, c.Query, c.Err)
			continue
		}
		fmt.Fprintf(r.Out, "%s,%s,%s,%s,%d,%d,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.1f,%.1f,%.1f,%.1f,%.1f",
			c.Engine, c.Class, c.Size, c.Query, c.Runs, c.Warm,
			c.ColdP50Ms, c.ColdP95Ms, c.ColdP99Ms, c.ColdMeanMs, c.WarmP50Ms, c.WarmMeanMs,
			c.PageIO, c.AttributedIO, c.AttributionPct, c.CacheHitPct, c.BtreeVisits)
		for _, ph := range ReportPhases {
			fmt.Fprintf(r.Out, ",%.3f", c.PhasesMs[ph])
		}
		fmt.Fprintln(r.Out)
	}
}

func (r *Runner) printReportTable(rep Report) {
	fmt.Fprintf(r.Out, "Metrics Report: %d cold + %d warm run(s) per cell, IOCost %dµs/page\n",
		rep.Repeat, rep.Warm, rep.IOCostUs)
	fmt.Fprintln(r.Out, "(times are effective ms: wall-clock + PageIO x IOCost)")
	lastQuery := ""
	for _, c := range rep.Cells {
		if c.Query != lastQuery {
			lastQuery = c.Query
			fmt.Fprintf(r.Out, "\nQuery %s\n", c.Query)
			fmt.Fprintf(r.Out, "%-12s %-6s %-7s %9s %9s %9s %9s %8s %6s %8s %6s\n",
				"engine", "class", "size", "p50", "p95", "p99", "warm p50",
				"pageIO", "hit%", "btree", "attr%")
		}
		if c.Err != "" {
			fmt.Fprintf(r.Out, "%-12s %-6s %-7s error: %s\n", c.Engine, c.Class, c.Size, c.Err)
			continue
		}
		warm := "-"
		if c.Warm > 0 {
			warm = fmt.Sprintf("%.2f", c.WarmP50Ms)
		}
		fmt.Fprintf(r.Out, "%-12s %-6s %-7s %9.2f %9.2f %9.2f %9s %8.0f %6.1f %8.0f %6.0f\n",
			c.Engine, c.Class, c.Size,
			c.ColdP50Ms, c.ColdP95Ms, c.ColdP99Ms, warm,
			c.PageIO, c.CacheHitPct, c.BtreeVisits, c.AttributionPct)
		line := ""
		for _, ph := range ReportPhases {
			if v, ok := c.PhasesMs[ph]; ok {
				line += fmt.Sprintf(" %s %.2fms", ph, v)
			}
		}
		if line != "" {
			fmt.Fprintf(r.Out, "%-12s   phases:%s\n", "", line)
		}
	}
}
