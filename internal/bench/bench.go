// Package bench is the XBench benchmark harness: it generates the
// databases, loads every engine, runs the experiment grid and prints the
// tables of the paper — Table 4 (bulk loading) and Tables 5-9 (queries
// Q5, Q12, Q17, Q8, Q14) — in the same row/column layout, so measured
// numbers can be compared shape-for-shape with the published ones.
package bench

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"xbench/internal/core"
	"xbench/internal/engines/native"
	"xbench/internal/engines/sqlserver"
	"xbench/internal/engines/xcollection"
	"xbench/internal/engines/xcolumn"
	"xbench/internal/gen"
	"xbench/internal/workload"
)

// EngineNames lists the systems in the paper's row order.
var EngineNames = []string{"Xcolumn", "Xcollection", "SQL Server", "X-Hive"}

// NewEngine constructs a fresh engine by its paper row label.
func NewEngine(name string) core.Engine {
	switch name {
	case "Xcolumn":
		return xcolumn.New(0)
	case "Xcollection":
		return xcollection.New(0, 0)
	case "SQL Server":
		return sqlserver.New(0)
	case "X-Hive":
		return native.New(0)
	}
	panic("bench: unknown engine " + name)
}

// TableQueries maps the paper's query tables to query ids.
var TableQueries = map[int]core.QueryID{
	5: core.Q5,  // ordered access
	6: core.Q12, // document construction
	7: core.Q17, // text search
	8: core.Q8,  // path expressions
	9: core.Q14, // missing elements
}

// Runner executes the experiment grid with caching: each database is
// generated once and each engine loaded once per (class, size).
type Runner struct {
	Cfg   gen.Config
	Sizes []core.Size
	Out   io.Writer
	// Repeat is the number of cold runs to average per query cell (>= 1).
	Repeat int
	// IOCost is the simulated cost of one page read or write. The pager
	// counts I/O but performs memory copies, so reported times are
	// wall-clock plus PageIO x IOCost — standing in for the 2004-era disk
	// of the paper's testbed. Zero disables the model.
	IOCost time.Duration
	// CSV switches output to machine-readable rows
	// (table,engine,class,size,value_ms) instead of the paper's layout.
	CSV bool
	// EngineList overrides EngineNames (tests inject stub engines; the
	// chaos mode reuses the standard grid machinery).
	EngineList []string
	// NewEngineFn overrides NewEngine as the engine factory.
	NewEngineFn func(name string) core.Engine

	dbs     map[string]*core.Database
	engines map[string]core.Engine
	loads   map[string]loadCell

	// csvHeader records whether the CSV header row has been emitted.
	csvHeader bool
	// errs collects query-cell failures so they can be reported after the
	// table instead of being silently collapsed to an "err" cell.
	errs []string
}

// engineNames returns the grid's engine rows.
func (r *Runner) engineNames() []string {
	if len(r.EngineList) > 0 {
		return r.EngineList
	}
	return EngineNames
}

// newEngine constructs a fresh engine through the configured factory.
func (r *Runner) newEngine(name string) core.Engine {
	if r.NewEngineFn != nil {
		return r.NewEngineFn(name)
	}
	return NewEngine(name)
}

type loadCell struct {
	dur   time.Duration
	stats core.LoadStats
	err   error
}

// NewRunner returns a harness writing its tables to out.
func NewRunner(cfg gen.Config, sizes []core.Size, out io.Writer) *Runner {
	if len(sizes) == 0 {
		sizes = core.Sizes
	}
	return &Runner{
		Cfg:     cfg,
		Sizes:   sizes,
		Out:     out,
		Repeat:  1,
		IOCost:  100 * time.Microsecond,
		dbs:     map[string]*core.Database{},
		engines: map[string]core.Engine{},
		loads:   map[string]loadCell{},
	}
}

func key(parts ...string) string { return strings.Join(parts, "|") }

// Database generates (or returns the cached) database for a class/size.
func (r *Runner) Database(class core.Class, size core.Size) (*core.Database, error) {
	k := key(class.Code(), size.String())
	if db, ok := r.dbs[k]; ok {
		return db, nil
	}
	db, err := r.Cfg.Generate(class, size)
	if err != nil {
		return nil, err
	}
	r.dbs[k] = db
	return db, nil
}

// Engine loads (or returns the cached) engine instance for the cell,
// recording the load measurement for Table 4.
func (r *Runner) Engine(name string, class core.Class, size core.Size) (core.Engine, loadCell) {
	k := key(name, class.Code(), size.String())
	if e, ok := r.engines[k]; ok {
		return e, r.loads[k]
	}
	e := r.newEngine(name)
	cell := loadCell{}
	if err := e.Supports(class, size); err != nil {
		cell.err = err
		r.engines[k] = nil
		r.loads[k] = cell
		return nil, cell
	}
	db, err := r.Database(class, size)
	if err != nil {
		cell.err = err
		r.engines[k] = nil
		r.loads[k] = cell
		return nil, cell
	}
	st, dur, err := workload.LoadAndIndex(context.Background(), e, db)
	cell.stats, cell.dur, cell.err = st, dur, err
	if err != nil {
		r.engines[k] = nil
	} else {
		r.engines[k] = e
	}
	r.loads[k] = cell
	return r.engines[k], cell
}

// columnClasses is the paper's column order.
var columnClasses = []core.Class{core.DCSD, core.DCMD, core.TCSD, core.TCMD}

func (r *Runner) printHeader(title string) {
	fmt.Fprintf(r.Out, "\n%s\n", title)
	fmt.Fprintf(r.Out, "%-12s", "")
	for _, c := range columnClasses {
		width := 10 * len(r.Sizes)
		fmt.Fprintf(r.Out, " %-*s", width, c.String())
	}
	fmt.Fprintln(r.Out)
	fmt.Fprintf(r.Out, "%-12s", "")
	for range columnClasses {
		for _, s := range r.Sizes {
			fmt.Fprintf(r.Out, " %-9s", s)
		}
	}
	fmt.Fprintln(r.Out)
}

// Table4 runs and prints the bulk loading experiment.
func (r *Runner) Table4() error {
	if r.CSV {
		for _, name := range r.engineNames() {
			for _, class := range columnClasses {
				for _, size := range r.Sizes {
					_, cell := r.Engine(name, class, size)
					val := "-"
					if cell.err == nil {
						eff := cell.dur + time.Duration(cell.stats.PageIO)*r.IOCost
						val = fmt.Sprintf("%.2f", float64(eff.Microseconds())/1000)
					}
					r.csvRow(4, name, class, size, val)
				}
			}
		}
		return nil
	}
	r.printHeader("Table 4. Bulk Loading Time (in milliseconds; paper reports seconds)")
	for _, name := range r.engineNames() {
		fmt.Fprintf(r.Out, "%-12s", name)
		for _, class := range columnClasses {
			for _, size := range r.Sizes {
				_, cell := r.Engine(name, class, size)
				if cell.err != nil {
					fmt.Fprintf(r.Out, " %-9s", "-")
					continue
				}
				eff := cell.dur + time.Duration(cell.stats.PageIO)*r.IOCost
				fmt.Fprintf(r.Out, " %-9d", eff.Milliseconds())
			}
		}
		fmt.Fprintln(r.Out)
	}
	return nil
}

// csvRow emits one machine-readable result row, preceded by the header
// row on first use.
func (r *Runner) csvRow(table int, engine string, class core.Class, size core.Size, val string) {
	if !r.csvHeader {
		fmt.Fprintln(r.Out, "table,engine,class,size,value_ms")
		r.csvHeader = true
	}
	fmt.Fprintf(r.Out, "%d,%s,%s,%s,%s\n", table, engine, class.Code(), size, val)
}

// noteErr records a cell failure for FlushErrors.
func (r *Runner) noteErr(engine string, class core.Class, size core.Size, q core.QueryID, err error) {
	r.errs = append(r.errs, fmt.Sprintf("%s %s/%s %s: %v", engine, class.Code(), size, q, err))
}

// FlushErrors prints every failure recorded since the last flush. Cells
// that failed print as "err" in the table; this is where the underlying
// errors surface. In CSV mode the lines are '#'-prefixed comments so the
// data rows stay machine-readable.
func (r *Runner) FlushErrors() {
	if len(r.errs) == 0 {
		return
	}
	prefix := ""
	if r.CSV {
		prefix = "# "
	}
	fmt.Fprintf(r.Out, "\n%s%d cell(s) failed:\n", prefix, len(r.errs))
	for _, e := range r.errs {
		fmt.Fprintf(r.Out, "%s  error: %s\n", prefix, e)
	}
	r.errs = nil
}

// QueryTable runs and prints one of Tables 5-9.
func (r *Runner) QueryTable(tableNo int) error {
	q, ok := TableQueries[tableNo]
	if !ok {
		return fmt.Errorf("bench: no query table %d", tableNo)
	}
	if r.CSV {
		for _, name := range r.engineNames() {
			for _, class := range columnClasses {
				for _, size := range r.Sizes {
					r.csvRow(tableNo, name, class, size, r.queryCell(name, class, size, q))
				}
			}
		}
		r.FlushErrors()
		return nil
	}
	title := fmt.Sprintf("Table %d. Query %s Execution Time (in Milliseconds)", tableNo, q)
	r.printHeader(title)
	for _, name := range r.engineNames() {
		fmt.Fprintf(r.Out, "%-12s", name)
		for _, class := range columnClasses {
			for _, size := range r.Sizes {
				cellText := r.queryCell(name, class, size, q)
				fmt.Fprintf(r.Out, " %-9s", cellText)
			}
		}
		fmt.Fprintln(r.Out)
	}
	r.FlushErrors()
	return nil
}

// queryCell measures one cold query cell, averaging Repeat runs. It
// returns "-" for unsupported combinations (the paper's blank cells).
func (r *Runner) queryCell(engineName string, class core.Class, size core.Size, q core.QueryID) string {
	e, cell := r.Engine(engineName, class, size)
	if cell.err != nil || e == nil {
		return "-"
	}
	var total time.Duration
	n := r.Repeat
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		m := workload.RunCold(context.Background(), e, class, q)
		if m.Err != nil {
			r.noteErr(engineName, class, size, q, m.Err)
			return "err"
		}
		total += m.Elapsed + time.Duration(m.Result.PageIO)*r.IOCost
	}
	avg := total / time.Duration(n)
	// Sub-millisecond cells print with a decimal so small databases remain
	// comparable.
	ms := float64(avg.Microseconds()) / 1000
	if ms >= 10 {
		return fmt.Sprintf("%.0f", ms)
	}
	return fmt.Sprintf("%.2f", ms)
}

// Measure runs one cold query and returns the measurement (used by the
// testing.B benchmarks).
func (r *Runner) Measure(engineName string, class core.Class, size core.Size, q core.QueryID) (workload.Measurement, error) {
	e, cell := r.Engine(engineName, class, size)
	if cell.err != nil {
		return workload.Measurement{}, cell.err
	}
	m := workload.RunCold(context.Background(), e, class, q)
	return m, m.Err
}

// LoadMeasurement returns the Table 4 cell for an engine/class/size.
func (r *Runner) LoadMeasurement(engineName string, class core.Class, size core.Size) (time.Duration, core.LoadStats, error) {
	_, cell := r.Engine(engineName, class, size)
	return cell.dur, cell.stats, cell.err
}

// AllTables prints Tables 1-9 (1-3 are static, 4-9 measured). In CSV
// mode only the measured tables are emitted.
func (r *Runner) AllTables() error {
	if !r.CSV {
		PrintTable1(r.Out)
		PrintTable2(r.Out)
		PrintTable3(r.Out)
	}
	if err := r.Table4(); err != nil {
		return err
	}
	for t := 5; t <= 9; t++ {
		if err := r.QueryTable(t); err != nil {
			return err
		}
	}
	return nil
}

// PrintTable1 reproduces the classification matrix (paper Table 1).
func PrintTable1(w io.Writer) {
	fmt.Fprintln(w, "\nTable 1. Classification & Sample Applications")
	fmt.Fprintf(w, "%-4s %-28s %-30s\n", "", "SD", "MD")
	fmt.Fprintf(w, "%-4s %-28s %-30s\n", "TC", "Online dictionaries", "News corpus, Digital libraries")
	fmt.Fprintf(w, "%-4s %-28s %-30s\n", "DC", "E-commerce catalogs", "Transactional data")
}

// PrintTable2 reproduces the analyzed-corpora provenance (paper Table 2).
func PrintTable2(w io.Writer) {
	fmt.Fprintln(w, "\nTable 2. Analyzed TC Class Data")
	fmt.Fprintf(w, "%-10s %-10s %-12s %-14s\n", "Sources", "No. files", "File size", "Data size (MB)")
	for _, c := range gen.AnalyzedCorpora {
		fmt.Fprintf(w, "%-10s %-10d %-12s %-14d\n", c.Name, c.Files, c.FileSize, c.DataMB)
	}
}

// PrintTable3 reproduces the index definitions (paper Table 3).
func PrintTable3(w io.Writer) {
	fmt.Fprintln(w, "\nTable 3. Indexes for Each Class")
	fmt.Fprintf(w, "%-8s %s\n", "Classes", "Indexes")
	for _, class := range []core.Class{core.TCSD, core.TCMD, core.DCSD, core.DCMD} {
		var targets []string
		for _, s := range workload.Indexes(class) {
			targets = append(targets, s.Target)
		}
		fmt.Fprintf(w, "%-8s %s\n", class, strings.Join(targets, ", "))
	}
}
