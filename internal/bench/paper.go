package bench

import "xbench/internal/core"

// The paper's published measurements, transcribed from Tables 4-9 of
// Yao/Özsu/Khandelwal (ICDE 2004). Table 4 is in seconds, Tables 5-9 in
// milliseconds; for shape comparison only ratios matter, so the unit is
// kept as printed. A Blank cell marks a class/size combination the system
// could not host.

// Blank marks an unsupported cell in the paper's tables.
const Blank = -1

// PaperCell addresses one measurement: tables are keyed by table number,
// engine row name, class and size.
type PaperCell struct {
	Table  int
	Engine string
	Class  core.Class
	Size   core.Size
}

// paperRow is one engine row of one table: values in the paper's column
// order DC/SD S/N/L, DC/MD S/N/L, TC/SD S/N/L, TC/MD S/N/L.
type paperRow struct {
	engine string
	cells  [12]float64
}

var paperTables = map[int][]paperRow{
	4: {
		{"Xcolumn", [12]float64{Blank, Blank, Blank, 30, 417, 11532, Blank, Blank, Blank, 12, 85, 662}},
		{"Xcollection", [12]float64{34, Blank, Blank, 87, 1126, 31860, 46, Blank, Blank, 40, 124, 762}},
		{"SQL Server", [12]float64{43, 120, 770, 119, 1438, 39496, 55, 153, 960, 52, 148, 894}},
		{"X-Hive", [12]float64{9, 59, 517, 25, 304, 8568, 12, 72, 647, 7, 57, 512}},
	},
	5: {
		{"Xcolumn", [12]float64{Blank, Blank, Blank, 90, 1598, 9567, Blank, Blank, Blank, 10, 10, 15}},
		{"Xcollection", [12]float64{10, Blank, Blank, 10, 10, 15, 85, Blank, Blank, 20, 40, 65}},
		{"SQL Server", [12]float64{15, 20, 25, 10, 10, 20, 90, 594, 3754, 20, 45, 70}},
		{"X-Hive", [12]float64{10, 10, 20, 335, 7460, 213347, 20, 901, 30886, 30, 60, 80}},
	},
	6: {
		{"Xcolumn", [12]float64{Blank, Blank, Blank, 30, 1487, 7631, Blank, Blank, Blank, 15, 20, 25}},
		{"Xcollection", [12]float64{20, Blank, Blank, 10, 10, 15, 85, Blank, Blank, 70, 403, 3101}},
		{"SQL Server", [12]float64{20, 25, 30, 10, 10, 20, 90, 587, 3792, 80, 458, 3318}},
		{"X-Hive", [12]float64{30, 50, 50, 105, 911, 76280, 10, 201, 43294, 60, 165, 195}},
	},
	7: {
		{"Xcolumn", [12]float64{Blank, Blank, Blank, 10, 8649, 54287, Blank, Blank, Blank, 100, 856, 7859}},
		{"Xcollection", [12]float64{25, Blank, Blank, 20, 187, 1754, 90, Blank, Blank, 95, 592, 4418}},
		{"SQL Server", [12]float64{40, 304, 3194, 55, 216, 1918, 95, 675, 4654, 100, 634, 4593}},
		{"X-Hive", [12]float64{351, 4336, 49962, 140, 8512, 249809, 711, 9023, 127974, 20, 120, 1532}},
	},
	8: {
		{"Xcolumn", [12]float64{Blank, Blank, Blank, 20, 454, 1870, Blank, Blank, Blank, 25, 187, 422}},
		{"Xcollection", [12]float64{15, Blank, Blank, 10, 10, 15, 70, Blank, Blank, 10, 10, 15}},
		{"SQL Server", [12]float64{15, 20, 25, 10, 10, 20, 75, 436, 2537, 10, 10, 20}},
		{"X-Hive", [12]float64{10, 20, 20, 245, 5207, 168162, 10, 120, 48459, 10, 20, 50}},
	},
	9: {
		{"Xcolumn", [12]float64{Blank, Blank, Blank, 10, 143, 398, Blank, Blank, Blank, 25, 477, 1950}},
		{"Xcollection", [12]float64{30, Blank, Blank, 50, 1343, 12432, 55, Blank, Blank, 30, 165, 1685}},
		{"SQL Server", [12]float64{30, 223, 2386, 193, 1520, 14318, 55, 353, 2256, 40, 172, 1793}},
		{"X-Hive", [12]float64{90, 2693, 40398, 210, 9764, 248067, 171, 1372, 15032, 20, 20, 231}},
	},
}

// columnIndex maps (class, size) to the paper's 12-column layout.
func columnIndex(class core.Class, size core.Size) int {
	var c int
	switch class {
	case core.DCSD:
		c = 0
	case core.DCMD:
		c = 1
	case core.TCSD:
		c = 2
	case core.TCMD:
		c = 3
	}
	return c*3 + int(size)
}

// PaperValue returns the published number for a cell, or Blank when the
// paper's table leaves it empty. ok is false for unknown addresses.
func PaperValue(cell PaperCell) (val float64, ok bool) {
	rows, found := paperTables[cell.Table]
	if !found || cell.Size > core.Large {
		return 0, false
	}
	for _, r := range rows {
		if r.engine == cell.Engine {
			return r.cells[columnIndex(cell.Class, cell.Size)], true
		}
	}
	return 0, false
}

// PaperBlank reports whether the paper's table leaves the cell empty.
func PaperBlank(table int, engine string, class core.Class, size core.Size) bool {
	v, ok := PaperValue(PaperCell{table, engine, class, size})
	return ok && v == Blank
}
