package bench

import (
	"bytes"
	"context"
	"testing"

	"xbench/internal/chaos"
	"xbench/internal/core"
	"xbench/internal/driver"
	"xbench/internal/workload"
)

// TestSweepLeavesNoOpenFiles pins the fd-stability acceptance: a mixed
// read/write sweep over three client counts must not grow the engine's
// simulated file-handle count, and Close must release every handle.
func TestSweepLeavesNoOpenFiles(t *testing.T) {
	ctx := context.Background()
	var buf bytes.Buffer
	r := tinyRunner(&buf)
	db, err := r.Database(core.DCMD, core.Small)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range EngineNames {
		t.Run(name, func(t *testing.T) {
			e := r.newEngine(name)
			if _, _, err := workload.LoadAndIndex(ctx, e, db); err != nil {
				t.Fatal(err)
			}
			f, ok := e.(chaos.Faultable)
			if !ok {
				t.Fatalf("%s does not expose its pager", name)
			}
			before := f.Pager().OpenFiles()
			if before == 0 {
				t.Fatal("no open files after load")
			}
			_, err := driver.Sweep(ctx, e, core.DCMD, []int{1, 2, 4}, driver.Config{
				OpsPerClient: 10, Queries: []core.QueryID{core.Q1, core.Q5},
				Think: -1, UpdateFraction: 0.5,
			})
			if err != nil {
				t.Fatal(err)
			}
			// U1 inserts add documents, so the handle count may grow with
			// the data — a leak is any handle surviving Close.
			if after := f.Pager().OpenFiles(); after < before {
				t.Fatalf("open files shrank across sweep: %d -> %d", before, after)
			}
			if err := e.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			if n := f.Pager().OpenFiles(); n != 0 {
				t.Fatalf("%d files still open after Close", n)
			}
			if err := e.Close(); err != nil {
				t.Fatalf("second Close: %v", err)
			}
		})
	}
}
