package bench

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"xbench/internal/core"
)

func TestMetricsReportTable(t *testing.T) {
	var buf bytes.Buffer
	r := tinyRunner(&buf)
	err := r.MetricsReport(ReportOptions{Queries: []core.QueryID{core.Q5}, Repeat: 2, Warm: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Metrics Report", "Query Q5",
		"p50", "p95", "p99", "warm p50", "pageIO", "hit%", "btree", "attr%",
		"phases:", "X-Hive", "SQL Server",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "error:") {
		t.Fatalf("report contains error cells:\n%s", out)
	}
}

// TestIOAttribution pins the acceptance gate: the pager counters must
// attribute at least 90% of each cell's reported page I/O (they increment
// at the same points Stats does, so in practice it is 100%).
func TestIOAttribution(t *testing.T) {
	r := tinyRunner(&bytes.Buffer{})
	rep := r.BuildReport(ReportOptions{Queries: []core.QueryID{core.Q5, core.Q8}, Repeat: 2})
	if len(rep.Cells) == 0 {
		t.Fatal("report has no cells")
	}
	for _, c := range rep.Cells {
		if c.Err != "" {
			t.Errorf("%s %s/%s %s: %s", c.Engine, c.Class, c.Size, c.Query, c.Err)
			continue
		}
		if c.PageIO > 0 && c.AttributionPct < 90 {
			t.Errorf("%s %s/%s %s: counters attribute %.1f%% of %g page I/O",
				c.Engine, c.Class, c.Size, c.Query, c.AttributionPct, c.PageIO)
		}
	}
}

func TestMetricsReportBreakdownPopulated(t *testing.T) {
	r := tinyRunner(&bytes.Buffer{})
	rep := r.BuildReport(ReportOptions{Queries: []core.QueryID{core.Q5}, Repeat: 1})
	var hive *CellReport
	for i := range rep.Cells {
		if rep.Cells[i].Engine == "X-Hive" && rep.Cells[i].Class == "dcsd" {
			hive = &rep.Cells[i]
		}
	}
	if hive == nil {
		t.Fatal("no X-Hive dcsd cell")
	}
	if hive.BtreeVisits <= 0 {
		t.Error("no btree visits attributed")
	}
	if len(hive.PhasesMs) == 0 {
		t.Error("no phase times attributed")
	}
	if hive.Counters["pager.read"] <= 0 {
		t.Error("no pager reads attributed")
	}
}

func TestMetricsReportJSON(t *testing.T) {
	var buf bytes.Buffer
	r := tinyRunner(&buf)
	err := r.MetricsReport(ReportOptions{Queries: []core.QueryID{core.Q8}, Repeat: 1, Format: "json"})
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report JSON does not parse: %v", err)
	}
	if rep.Repeat != 1 || rep.IOCostUs != 100 || len(rep.Cells) == 0 {
		t.Fatalf("bad report meta: %+v", rep)
	}
}

func TestMetricsReportUnknownFormat(t *testing.T) {
	r := tinyRunner(&bytes.Buffer{})
	if err := r.MetricsReport(ReportOptions{Format: "xml"}); err == nil {
		t.Fatal("unknown format accepted")
	}
}

// TestReportCSVShape is the golden shape test for the report CSV format:
// fixed header, one comma-separated row per cell with the same column
// count as the header.
func TestReportCSVShape(t *testing.T) {
	var buf bytes.Buffer
	r := tinyRunner(&buf)
	err := r.MetricsReport(ReportOptions{Queries: []core.QueryID{core.Q5}, Repeat: 1, Warm: 1, Format: "csv"})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != reportCSVHeader {
		t.Fatalf("header = %q", lines[0])
	}
	want := len(strings.Split(reportCSVHeader, ","))
	if len(lines) < 2 {
		t.Fatal("no data rows")
	}
	for _, line := range lines[1:] {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if got := len(strings.Split(line, ",")); got != want {
			t.Errorf("row has %d columns, header %d: %q", got, want, line)
		}
	}
}

// TestBenchCSVShape is the golden shape test for the paper-table CSV
// format: header row then table,engine,class,size,value_ms rows.
func TestBenchCSVShape(t *testing.T) {
	var buf bytes.Buffer
	r := tinyRunner(&buf)
	r.CSV = true
	if err := r.Table4(); err != nil {
		t.Fatal(err)
	}
	if err := r.QueryTable(5); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "table,engine,class,size,value_ms" {
		t.Fatalf("header = %q", lines[0])
	}
	if strings.Count(buf.String(), "table,engine,class,size,value_ms") != 1 {
		t.Fatal("CSV header emitted more than once")
	}
	for _, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != 5 {
			t.Fatalf("row has %d fields: %q", len(fields), line)
		}
		if fields[0] != "4" && fields[0] != "5" {
			t.Errorf("unexpected table id in %q", line)
		}
	}
}

func TestQueryCellErrorsSurface(t *testing.T) {
	var buf bytes.Buffer
	r := tinyRunner(&buf)
	r.EngineList = []string{"stub"}
	r.NewEngineFn = func(name string) core.Engine {
		return core.AdaptV1(&stubEngine{name: name, execErr: errors.New("synthetic query failure")})
	}
	if err := r.QueryTable(5); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "err") {
		t.Fatalf("failing cell not marked:\n%s", out)
	}
	if !strings.Contains(out, "synthetic query failure") {
		t.Fatalf("underlying error not surfaced:\n%s", out)
	}
}
