package tpcw

import (
	"reflect"
	"strings"
	"testing"
)

func small() *Data {
	return Generate(1, Counts{Items: 40, Orders: 60})
}

func TestDeterminism(t *testing.T) {
	a, b := small(), small()
	if !reflect.DeepEqual(a.Items, b.Items) || !reflect.DeepEqual(a.Orders, b.Orders) ||
		!reflect.DeepEqual(a.OrderLines, b.OrderLines) {
		t.Fatal("same seed produced different populations")
	}
	c := Generate(2, Counts{Items: 40, Orders: 60})
	if reflect.DeepEqual(a.Items, c.Items) {
		t.Fatal("different seeds produced identical items")
	}
}

func TestCountsAndDefaults(t *testing.T) {
	d := small()
	if len(d.Items) != 40 || len(d.Orders) != 60 {
		t.Fatalf("items=%d orders=%d", len(d.Items), len(d.Orders))
	}
	if len(d.Authors) == 0 || len(d.Publishers) == 0 || len(d.Customers) == 0 {
		t.Fatal("defaulted tables empty")
	}
	if len(d.Author2s) != len(d.Authors) {
		t.Fatal("AUTHOR_2 not aligned with AUTHOR")
	}
	if len(d.CCXacts) != len(d.Orders) {
		t.Fatal("CC_XACTS not 1:1 with ORDERS")
	}
	if len(d.Addresses) != len(d.Authors)+len(d.Customers) {
		t.Fatal("address count mismatch")
	}
}

func TestReferentialIntegrity(t *testing.T) {
	d := small()
	for _, it := range d.Items {
		if len(it.AuthorIDs) == 0 {
			t.Fatalf("item %s has no authors", it.ID)
		}
		for _, aid := range it.AuthorIDs {
			if _, _, ok := d.AuthorByID(aid); !ok {
				t.Fatalf("item %s references unknown author %s", it.ID, aid)
			}
		}
		if _, ok := d.PublisherByID(it.PubID); !ok {
			t.Fatalf("item %s references unknown publisher %s", it.ID, it.PubID)
		}
	}
	for i, a2 := range d.Author2s {
		if a2.AuthorID != d.Authors[i].ID {
			t.Fatalf("AUTHOR_2[%d] misaligned", i)
		}
		if _, ok := d.AddressByID(a2.AddrID); !ok {
			t.Fatalf("author %s has unknown address %s", a2.AuthorID, a2.AddrID)
		}
	}
	for _, a := range d.Addresses {
		if _, ok := d.CountryByID(a.CountryID); !ok {
			t.Fatalf("address %s has unknown country %s", a.ID, a.CountryID)
		}
	}
	custIDs := map[string]bool{}
	for _, c := range d.Customers {
		custIDs[c.ID] = true
		if _, ok := d.AddressByID(c.AddrID); !ok {
			t.Fatalf("customer %s has unknown address", c.ID)
		}
	}
	itemIDs := map[string]bool{}
	for _, it := range d.Items {
		itemIDs[it.ID] = true
	}
	for i, o := range d.Orders {
		if !custIDs[o.CustomerID] {
			t.Fatalf("order %s has unknown customer %s", o.ID, o.CustomerID)
		}
		if d.CCXacts[i].OrderID != o.ID {
			t.Fatalf("CC_XACTS[%d] not aligned with order %s", i, o.ID)
		}
		lines := d.LinesOf(o.ID)
		if len(lines) == 0 {
			t.Fatalf("order %s has no order lines", o.ID)
		}
		for j, ol := range lines {
			if ol.Seq != j+1 {
				t.Fatalf("order %s line seq %d at position %d", o.ID, ol.Seq, j)
			}
			if !itemIDs[ol.ItemID] {
				t.Fatalf("order line references unknown item %s", ol.ItemID)
			}
		}
	}
}

func TestIDsAreUniqueAndStable(t *testing.T) {
	d := small()
	if d.Items[0].ID != "I1" || d.Orders[0].ID != "O1" ||
		d.Authors[0].ID != "A1" || d.Customers[0].ID != "C1" {
		t.Fatal("first-row ids not stable (workload parameter binding depends on them)")
	}
	seen := map[string]bool{}
	for _, it := range d.Items {
		if seen[it.ID] {
			t.Fatalf("duplicate item id %s", it.ID)
		}
		seen[it.ID] = true
	}
}

func TestIrregularities(t *testing.T) {
	d := Generate(1, Counts{Items: 200, Orders: 300})
	noFax, withFax := 0, 0
	for _, p := range d.Publishers {
		if p.Fax == "" {
			noFax++
		} else {
			withFax++
		}
	}
	if noFax == 0 || withFax == 0 {
		t.Fatalf("Q14 needs both fax-less (%d) and fax-having (%d) publishers", noFax, withFax)
	}
	emptyStatus := 0
	for _, o := range d.Orders {
		if o.Status == "" {
			emptyStatus++
		}
	}
	if emptyStatus == 0 {
		t.Fatal("no orders with empty status (irregular data missing)")
	}
}

func TestMonetaryConsistency(t *testing.T) {
	d := small()
	for i, o := range d.Orders {
		if !strings.Contains(o.Total, ".") {
			t.Fatalf("order %s total %q not monetary", o.ID, o.Total)
		}
		if d.CCXacts[i].Amount != o.Total {
			t.Fatalf("order %s cc amount %s != total %s", o.ID, d.CCXacts[i].Amount, o.Total)
		}
	}
}

func TestDatesInWindow(t *testing.T) {
	d := small()
	for _, o := range d.Orders {
		if o.Date < "1995-01-01" || o.Date > "2003-12-30" {
			t.Fatalf("order date %s outside window", o.Date)
		}
		if o.ShipDate < o.Date {
			t.Fatalf("order %s shipped (%s) before ordered (%s)", o.ID, o.ShipDate, o.Date)
		}
	}
}

func TestLookupMisses(t *testing.T) {
	d := small()
	if _, _, ok := d.AuthorByID("nope"); ok {
		t.Fatal("AuthorByID hit on bogus id")
	}
	if _, ok := d.PublisherByID("nope"); ok {
		t.Fatal("PublisherByID hit on bogus id")
	}
	if _, ok := d.AddressByID("nope"); ok {
		t.Fatal("AddressByID hit on bogus id")
	}
	if _, ok := d.CountryByID("nope"); ok {
		t.Fatal("CountryByID hit on bogus id")
	}
	if lines := d.LinesOf("nope"); len(lines) != 0 {
		t.Fatal("LinesOf returned rows for bogus order")
	}
}
