// Package tpcw generates the TPC-W-derived relational population that
// feeds the data-centric XBench classes (paper §2.1.2). It implements the
// eight TPC-W base tables — ITEM, AUTHOR, CUSTOMER, ADDRESS, COUNTRY,
// ORDERS, ORDER_LINE, CC_XACTS — plus the two tables the paper adds:
// AUTHOR_2 (author mailing address, phone, e-mail) and PUBLISHER (name,
// fax, phone, e-mail).
//
// Population is fully deterministic for a given (seed, counts) so the
// DC/SD catalog mapping and the DC/MD flat/order mappings always agree on
// the underlying data.
package tpcw

import (
	"fmt"

	"xbench/internal/stats"
	"xbench/internal/textgen"
)

// Item is a TPC-W ITEM row (items are books).
type Item struct {
	ID        string // I_ID, "I<n>"
	Title     string
	AuthorIDs []string // authors of the book (>= 1); first is I_A_ID
	PubID     string   // publisher reference (added table)
	PubDate   string   // I_PUB_DATE, also catalog date_of_release
	Subject   string
	Desc      string
	Cost      string
	SRP       string
	Avail     string
	ISBN      string
	Pages     int
	Backing   string
	Length    string
	Width     string
	Height    string
}

// Author is a TPC-W AUTHOR row.
type Author struct {
	ID    string // "A<n>"
	FName string
	MName string // may be empty
	LName string
	DOB   string
	Bio   string
}

// Author2 is the paper's added AUTHOR_2 row: additional author contact
// information (mailing address, phone and e-mail).
type Author2 struct {
	AuthorID string
	AddrID   string
	Phone    string // may be empty
	Email    string // may be empty
}

// Publisher is the paper's added PUBLISHER row.
type Publisher struct {
	ID    string // "P<n>"
	Name  string
	Fax   string // may be empty — the Q14 missing element
	Phone string
	Email string
}

// Address is a TPC-W ADDRESS row.
type Address struct {
	ID        string // "ADDR<n>"
	Street1   string
	Street2   string // may be empty
	City      string
	State     string // may be empty
	Zip       string
	CountryID string
}

// Country is a TPC-W COUNTRY row.
type Country struct {
	ID       string // "CO<n>"
	Name     string
	Exchange string
	Currency string
}

// Customer is a TPC-W CUSTOMER row.
type Customer struct {
	ID       string // "C<n>"
	UName    string
	FName    string
	LName    string
	Phone    string
	Email    string
	Since    string
	Discount string
	AddrID   string
}

// Order is a TPC-W ORDERS row.
type Order struct {
	ID         string // "O<n>"
	CustomerID string
	Date       string
	SubTotal   string
	Tax        string
	Total      string
	ShipType   string
	ShipDate   string
	ShipAddrID string
	Status     string // may be empty (irregularity)
}

// OrderLine is a TPC-W ORDER_LINE row (1:n with ORDERS).
type OrderLine struct {
	OrderID  string
	Seq      int
	ItemID   string
	Qty      int
	Discount string
	Comment  string // may be empty
}

// CCXact is a TPC-W CC_XACTS row (1:1 with ORDERS).
type CCXact struct {
	OrderID string
	Type    string
	Number  string
	Name    string
	Expiry  string
	AuthID  string
	Amount  string
	Country string // may be empty
}

// Counts sizes the population.
type Counts struct {
	Items     int
	Authors   int
	Pubs      int
	Customers int
	Orders    int
	Countries int
}

// Data is a complete deterministic TPC-W population. Slices are ordered by
// id so mappings emit documents in a stable order.
type Data struct {
	Items      []Item
	Authors    []Author
	Author2s   []Author2 // one per author, aligned by index
	Publishers []Publisher
	Addresses  []Address
	Countries  []Country
	Customers  []Customer
	Orders     []Order
	OrderLines []OrderLine // grouped by order, ascending Seq
	CCXacts    []CCXact    // one per order, aligned by index

	authorByID   map[string]int
	pubByID      map[string]int
	addrByID     map[string]int
	countryByID  map[string]int
	linesByOrder map[string][]int
}

var shipTypes = []string{"AIR", "UPS", "FEDEX", "SHIP", "COURIER", "MAIL"}
var subjects = []string{"ARTS", "BIOGRAPHIES", "BUSINESS", "CHILDREN",
	"COMPUTERS", "COOKING", "HEALTH", "HISTORY", "HOME", "HUMOR",
	"LITERATURE", "MYSTERY", "NON-FICTION", "PARENTING", "POLITICS",
	"REFERENCE", "RELIGION", "ROMANCE", "SCIENCE-FICTION", "SCIENCE",
	"SELF-HELP", "SPORTS", "TRAVEL", "YOUTH"}
var backings = []string{"HARDBACK", "PAPERBACK", "USED", "AUDIO", "LIMITED-EDITION"}
var ccTypes = []string{"VISA", "MASTERCARD", "DISCOVER", "AMEX", "DINERS"}
var statuses = []string{"PENDING", "PROCESSING", "SHIPPED", "DENIED", ""}

// Generate builds a deterministic population. Counts fields that are zero
// get sensible defaults derived from Orders/Items.
func Generate(seed uint64, c Counts) *Data {
	if c.Countries == 0 {
		c.Countries = textgen.CountryCount()
	}
	if c.Authors == 0 {
		c.Authors = max(1, c.Items/2)
	}
	if c.Pubs == 0 {
		c.Pubs = max(1, c.Items/10)
	}
	if c.Customers == 0 {
		c.Customers = max(1, c.Orders/3)
	}
	root := stats.NewRNG(seed)
	d := &Data{}

	d.Countries = make([]Country, c.Countries)
	for i := range d.Countries {
		d.Countries[i] = Country{
			ID:       fmt.Sprintf("CO%d", i+1),
			Name:     textgen.Country(i),
			Exchange: fmt.Sprintf("%.4f", 0.5+float64(i%40)*0.1),
			Currency: fmt.Sprintf("CUR%02d", i%25),
		}
	}

	// Addresses: one per author plus one per customer.
	nAddr := c.Authors + c.Customers
	addrRNG := root.Split(1)
	d.Addresses = make([]Address, nAddr)
	for i := range d.Addresses {
		r := addrRNG.Split(uint64(i))
		a := Address{
			ID:        fmt.Sprintf("ADDR%d", i+1),
			Street1:   fmt.Sprintf("%d %s Street", 1+r.Intn(9999), textgen.WordAt(r.Intn(200))),
			City:      textgen.WordAt(100 + r.Intn(120)),
			Zip:       fmt.Sprintf("%05d", r.Intn(100000)),
			CountryID: d.Countries[r.Intn(len(d.Countries))].ID,
		}
		if r.Bool(0.3) {
			a.Street2 = fmt.Sprintf("Suite %d", 1+r.Intn(400))
		}
		if r.Bool(0.7) {
			a.State = fmt.Sprintf("ST%02d", r.Intn(50))
		}
		d.Addresses[i] = a
	}

	authRNG := root.Split(2)
	d.Authors = make([]Author, c.Authors)
	d.Author2s = make([]Author2, c.Authors)
	for i := range d.Authors {
		r := authRNG.Split(uint64(i))
		a := Author{
			ID:    fmt.Sprintf("A%d", i+1),
			FName: textgen.FirstName(i),
			LName: textgen.LastName(i / 7),
			DOB:   textgen.Date(r.Intn(9 * 360)),
			Bio:   textgen.NewText(r.Split(1)).Paragraph(2),
		}
		if r.Bool(0.4) {
			a.MName = textgen.FirstName(i + 13)
		}
		d.Authors[i] = a
		a2 := Author2{AuthorID: a.ID, AddrID: d.Addresses[i].ID}
		if r.Bool(0.85) {
			a2.Phone = textgen.Phone(i)
		}
		if r.Bool(0.85) {
			a2.Email = textgen.Email(a.FName+" "+a.LName, i)
		}
		d.Author2s[i] = a2
	}

	pubRNG := root.Split(3)
	d.Publishers = make([]Publisher, c.Pubs)
	for i := range d.Publishers {
		r := pubRNG.Split(uint64(i))
		p := Publisher{
			ID:    fmt.Sprintf("P%d", i+1),
			Name:  textgen.WordAt(50+i) + " " + textgen.WordAt(90+i*3) + " Press",
			Phone: textgen.Phone(1000 + i),
			Email: textgen.Email("press office", i),
		}
		// Roughly half the publishers have a fax number; Q14 looks for the
		// ones that do not.
		if r.Bool(0.5) {
			p.Fax = textgen.Phone(2000 + i)
		}
		d.Publishers[i] = p
	}

	itemRNG := root.Split(4)
	pages := stats.Normal{Mu: 450, Sigma: 220, Min: 20, Max: 3000}
	d.Items = make([]Item, c.Items)
	for i := range d.Items {
		r := itemRNG.Split(uint64(i))
		tx := textgen.NewText(r.Split(9))
		nAuthors := 1 + r.Intn(3)
		ids := make([]string, nAuthors)
		for j := range ids {
			ids[j] = d.Authors[r.Intn(len(d.Authors))].ID
		}
		cost := 5 + r.Float64()*95
		it := Item{
			ID:        fmt.Sprintf("I%d", i+1),
			Title:     titleCase(tx.Words(2 + r.Intn(5))),
			AuthorIDs: ids,
			PubID:     d.Publishers[r.Intn(len(d.Publishers))].ID,
			PubDate:   textgen.Date(r.Intn(9 * 360)),
			Subject:   subjects[r.Intn(len(subjects))],
			Desc:      tx.Paragraph(1 + r.Intn(3)),
			Cost:      fmt.Sprintf("%.2f", cost),
			SRP:       fmt.Sprintf("%.2f", cost*(1.1+r.Float64()*0.4)),
			Avail:     textgen.Date(r.Intn(9 * 360)),
			ISBN:      fmt.Sprintf("%013d", 9780000000000+uint64(i)*7+uint64(r.Intn(7))),
			Pages:     stats.DrawInt(r, pages),
			Backing:   backings[r.Intn(len(backings))],
			Length:    fmt.Sprintf("%.1f", 10+r.Float64()*20),
			Width:     fmt.Sprintf("%.1f", 8+r.Float64()*12),
			Height:    fmt.Sprintf("%.1f", 1+r.Float64()*6),
		}
		d.Items[i] = it
	}

	custRNG := root.Split(5)
	d.Customers = make([]Customer, c.Customers)
	for i := range d.Customers {
		r := custRNG.Split(uint64(i))
		fn, ln := textgen.FirstName(i+3), textgen.LastName(i/5)
		d.Customers[i] = Customer{
			ID:       fmt.Sprintf("C%d", i+1),
			UName:    fmt.Sprintf("%s%d", fn, i),
			FName:    fn,
			LName:    ln,
			Phone:    textgen.Phone(3000 + i),
			Email:    textgen.Email(fn+" "+ln, i),
			Since:    textgen.Date(r.Intn(9 * 360)),
			Discount: fmt.Sprintf("%d", r.Intn(25)),
			AddrID:   d.Addresses[c.Authors+i].ID,
		}
	}

	orderRNG := root.Split(6)
	lines := stats.Exponential{Lambda: 0.5, Min: 1, Max: 12}
	d.Orders = make([]Order, c.Orders)
	d.CCXacts = make([]CCXact, c.Orders)
	for i := range d.Orders {
		r := orderRNG.Split(uint64(i))
		cust := d.Customers[r.Intn(len(d.Customers))]
		day := r.Intn(9 * 360)
		sub := 0.0
		nLines := stats.DrawInt(r, lines)
		oid := fmt.Sprintf("O%d", i+1)
		for s := 1; s <= nLines; s++ {
			item := d.Items[r.Intn(len(d.Items))]
			qty := 1 + r.Intn(5)
			ol := OrderLine{
				OrderID:  oid,
				Seq:      s,
				ItemID:   item.ID,
				Qty:      qty,
				Discount: fmt.Sprintf("%d", r.Intn(10)),
			}
			if r.Bool(0.2) {
				ol.Comment = textgen.NewText(r.Split(uint64(s))).Sentence(4, 9)
			}
			d.OrderLines = append(d.OrderLines, ol)
			var costF float64
			fmt.Sscanf(item.Cost, "%f", &costF)
			sub += costF * float64(qty)
		}
		tax := sub * 0.08
		o := Order{
			ID:         oid,
			CustomerID: cust.ID,
			Date:       textgen.Date(day),
			SubTotal:   fmt.Sprintf("%.2f", sub),
			Tax:        fmt.Sprintf("%.2f", tax),
			Total:      fmt.Sprintf("%.2f", sub+tax),
			ShipType:   shipTypes[r.Intn(len(shipTypes))],
			ShipDate:   textgen.Date(min(day+1+r.Intn(14), 9*360-1)),
			ShipAddrID: cust.AddrID,
			Status:     statuses[r.Intn(len(statuses))],
		}
		d.Orders[i] = o
		x := CCXact{
			OrderID: oid,
			Type:    ccTypes[r.Intn(len(ccTypes))],
			Number:  fmt.Sprintf("4%015d", r.Intn(1<<30)),
			Name:    cust.FName + " " + cust.LName,
			Expiry:  textgen.Date(day + 360 + r.Intn(720)),
			AuthID:  fmt.Sprintf("AUTH%06d", r.Intn(1000000)),
			Amount:  o.Total,
		}
		if r.Bool(0.6) {
			x.Country = d.Countries[r.Intn(len(d.Countries))].Name
		}
		d.CCXacts[i] = x
	}

	d.buildIndexes()
	return d
}

func (d *Data) buildIndexes() {
	d.authorByID = make(map[string]int, len(d.Authors))
	for i, a := range d.Authors {
		d.authorByID[a.ID] = i
	}
	d.pubByID = make(map[string]int, len(d.Publishers))
	for i, p := range d.Publishers {
		d.pubByID[p.ID] = i
	}
	d.addrByID = make(map[string]int, len(d.Addresses))
	for i, a := range d.Addresses {
		d.addrByID[a.ID] = i
	}
	d.countryByID = make(map[string]int, len(d.Countries))
	for i, c := range d.Countries {
		d.countryByID[c.ID] = i
	}
	d.linesByOrder = make(map[string][]int)
	for i, ol := range d.OrderLines {
		d.linesByOrder[ol.OrderID] = append(d.linesByOrder[ol.OrderID], i)
	}
}

// AuthorByID returns the author row, and its AUTHOR_2 extension.
func (d *Data) AuthorByID(id string) (Author, Author2, bool) {
	i, ok := d.authorByID[id]
	if !ok {
		return Author{}, Author2{}, false
	}
	return d.Authors[i], d.Author2s[i], true
}

// PublisherByID returns the publisher row.
func (d *Data) PublisherByID(id string) (Publisher, bool) {
	i, ok := d.pubByID[id]
	if !ok {
		return Publisher{}, false
	}
	return d.Publishers[i], true
}

// AddressByID returns the address row.
func (d *Data) AddressByID(id string) (Address, bool) {
	i, ok := d.addrByID[id]
	if !ok {
		return Address{}, false
	}
	return d.Addresses[i], true
}

// CountryByID returns the country row.
func (d *Data) CountryByID(id string) (Country, bool) {
	i, ok := d.countryByID[id]
	if !ok {
		return Country{}, false
	}
	return d.Countries[i], true
}

// LinesOf returns the order lines of an order, ascending by Seq.
func (d *Data) LinesOf(orderID string) []OrderLine {
	idx := d.linesByOrder[orderID]
	out := make([]OrderLine, len(idx))
	for i, j := range idx {
		out[i] = d.OrderLines[j]
	}
	return out
}

func titleCase(s string) string {
	out := []byte(s)
	up := true
	for i, c := range out {
		if up && c >= 'a' && c <= 'z' {
			out[i] = c - 'a' + 'A'
		}
		up = c == ' '
	}
	return string(out)
}
