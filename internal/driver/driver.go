// Package driver is the closed-loop multi-client workload driver: N
// client goroutines issue the class's query mix against one shared,
// already-loaded engine and the driver reports throughput (queries per
// second) plus per-query latency percentiles. It is the concurrent
// counterpart of the single-stream cold-run harness in internal/bench —
// the paper measures one query at a time; this driver measures how the
// same engines behave when many clients hit the warm buffer pool at once.
//
// The loop is closed in the TPC-W sense: each client waits for its query
// to answer, then "thinks" for a fixed interval before issuing the next
// one. With think time well above service time, throughput scales with
// the client count until the engine saturates — which makes scaling
// visible even on a single-core host, where an open loop with zero think
// time saturates at one client.
//
// Determinism: client c of a run seeded S draws its query sequence from
// stats.NewRNG(S).Split(c+1), so the same (seed, clients, mix) triple
// replays the same per-client op sequence on any platform. OpSequence
// exposes the sequence for tests.
package driver

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"xbench/internal/core"
	"xbench/internal/metrics"
	"xbench/internal/stats"
	"xbench/internal/workload"
)

// Config controls one driver run.
type Config struct {
	// Clients is the number of concurrent client goroutines; <= 0 selects 1.
	Clients int
	// OpsPerClient fixes the number of queries each client issues. When 0,
	// Duration bounds the run instead; when both are zero, OpsPerClient
	// defaults to 50.
	OpsPerClient int
	// Duration bounds the run by wall clock (ignored when OpsPerClient > 0).
	Duration time.Duration
	// Seed drives the per-client deterministic query mix. 0 is an explicit
	// sentinel selecting DefaultSeed — it is not a usable seed value, and
	// OpSequence/MixedOpSequence apply the same substitution, so replaying
	// a Seed-0 run with OpSequence(0, ...) agrees with what Run executed.
	Seed uint64
	// Queries restricts the mix; nil selects every query the class defines
	// and the engine answers (probed during warmup).
	Queries []core.QueryID
	// NoWarmup skips the warmup pass. The mix is then used as given, and
	// the first measured ops run against a cold-ish pool.
	NoWarmup bool
	// Think is the per-client pause between queries (closed-loop think
	// time). 0 selects the 2ms default; < 0 disables thinking entirely.
	Think time.Duration
	// UpdateFraction is the probability, per op, that a client issues a
	// document update (drawn uniformly from UpdateOps) instead of a
	// query — the mixed read/write mode. 0 disables updates; values
	// outside [0, 1) fail the run. Requires a multi-document class.
	UpdateFraction float64
	// UpdateOps restricts the update-op mix; nil selects all of
	// workload.UpdateOps (U1 insert, U2 replace, U3 delete).
	UpdateOps []workload.UpdateOp
	// UpdateSeqBase is the first update sequence number handed out.
	// Update documents are named after their sequence number, and U1
	// inserts strictly, so a run reusing a warm engine must start past
	// the sequences already consumed — Sweep threads Report.NextUpdateSeq
	// through automatically.
	UpdateSeqBase int
}

// DefaultSeed is the seed a zero Config.Seed resolves to. It is a named
// constant (rather than a silent coercion buried in WithDefaults) so
// callers replaying a run's op stream know exactly which seed a Seed-0
// run used.
const DefaultSeed uint64 = 1

// WithDefaults resolves zero-value fields to their defaults.
func (c Config) WithDefaults() Config {
	if c.Clients <= 0 {
		c.Clients = 1
	}
	if c.OpsPerClient <= 0 && c.Duration <= 0 {
		c.OpsPerClient = 50
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	switch {
	case c.Think < 0:
		c.Think = 0
	case c.Think == 0:
		c.Think = 2 * time.Millisecond
	}
	if c.UpdateFraction > 0 && len(c.UpdateOps) == 0 {
		c.UpdateOps = workload.UpdateOps
	}
	return c
}

// CellStats is the latency summary of one query type in one run.
type CellStats struct {
	Query core.QueryID
	Count int64
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
}

// UpdateCellStats is the latency summary of one update op in a mixed run.
// Latencies cover the update operation only — the follow-up verification
// query is not included (see workload.UpdateMeasurement).
type UpdateCellStats struct {
	Op    workload.UpdateOp
	Count int64
	Errs  int64
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
}

// Report is the outcome of one driver run.
type Report struct {
	Engine  string
	Class   core.Class
	Clients int
	// Mix is the query types the clients drew from, in query order.
	Mix []core.QueryID
	// Elapsed is the measured wall-clock window.
	Elapsed time.Duration
	// Ops and Errs count completed and failed queries across all clients.
	// Errs excludes context cancellations and timeouts — those are the
	// caller stopping the run (or a deadline firing), not the engine
	// failing, and are counted in Canceled instead.
	Ops  int64
	Errs int64
	// Canceled counts ops that ended with context.Canceled or
	// context.DeadlineExceeded, reported as their own column so a remote
	// sweep with per-request deadlines does not masquerade as query
	// failures.
	Canceled int64
	// Throughput is Ops / Elapsed in queries per second.
	Throughput float64
	// ReadCount counts the query (non-update) ops, and ReadP50/P95/P99
	// summarize their latency aggregated across the whole mix — the
	// headline numbers of the update-fraction sweep, where the question
	// is what updates do to reads as a population, not per query type.
	ReadCount int64
	ReadP50   time.Duration
	ReadP95   time.Duration
	ReadP99   time.Duration
	// Cells summarizes latency per query type, in query order.
	Cells []CellStats
	// ClientOps is the number of ops each client completed.
	ClientOps []int
	// Updates and UpdateErrs count completed and failed update ops in a
	// mixed run (included in Ops and Errs; canceled updates count in
	// Canceled, not UpdateErrs).
	Updates    int64
	UpdateErrs int64
	// UpdateCells summarizes update latency per op, in op order; empty
	// when the run issued no updates.
	UpdateCells []UpdateCellStats
	// NextUpdateSeq is the first unconsumed update sequence number; feed
	// it into the next run's Config.UpdateSeqBase when reusing the engine.
	NextUpdateSeq int
}

// isContextErr reports whether an op error is a context cancellation or
// deadline rather than an engine failure. Remote engines reconstruct the
// context sentinels from wire status codes, so the check works
// identically for in-process and networked runs.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// nextOp draws the next query of a client's mix. All mix randomness goes
// through here so OpSequence replays the client loop exactly.
func nextOp(rng *stats.RNG, mix []core.QueryID) core.QueryID {
	return mix[rng.Intn(len(mix))]
}

// MixedOp is one op of a mixed read/write stream: a query, or (when
// Update is non-zero) an update operation.
type MixedOp struct {
	Query  core.QueryID
	Update workload.UpdateOp
}

func (m MixedOp) String() string {
	if m.Update != 0 {
		return m.Update.String()
	}
	return m.Query.String()
}

// nextMixedOp draws the next op of a mixed stream. With frac == 0 it
// consumes exactly the randomness nextOp does, so a pure-query mixed
// stream replays the classic OpSequence.
func nextMixedOp(rng *stats.RNG, mix []core.QueryID, frac float64, ups []workload.UpdateOp) MixedOp {
	if frac > 0 && rng.Float64() < frac {
		return MixedOp{Update: ups[rng.Intn(len(ups))]}
	}
	return MixedOp{Query: nextOp(rng, mix)}
}

// clientRNG returns client c's dedicated stream for a run seeded seed.
// Seed 0 resolves to DefaultSeed here — not only in WithDefaults — so
// the exported sequence replayers agree with Run about what a Seed-0
// run executes.
func clientRNG(seed uint64, client int) *stats.RNG {
	if seed == 0 {
		seed = DefaultSeed
	}
	return stats.NewRNG(seed).Split(uint64(client) + 1)
}

// OpSequence returns the first n queries client (0-based) would issue in
// a run with the given seed and mix. It is the driver's determinism
// contract, replayable without an engine.
func OpSequence(seed uint64, client int, mix []core.QueryID, n int) []core.QueryID {
	rng := clientRNG(seed, client)
	out := make([]core.QueryID, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, nextOp(rng, mix))
	}
	return out
}

// MixedOpSequence is OpSequence for mixed read/write runs: the first n
// ops client (0-based) would issue with the given seed, mix, update
// fraction and update-op mix. With frac == 0 the sequence is exactly
// OpSequence's, wrapped in MixedOps.
func MixedOpSequence(seed uint64, client int, mix []core.QueryID, ups []workload.UpdateOp, frac float64, n int) []MixedOp {
	if len(ups) == 0 {
		ups = workload.UpdateOps
	}
	rng := clientRNG(seed, client)
	out := make([]MixedOp, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, nextMixedOp(rng, mix, frac, ups))
	}
	return out
}

// warmup executes each candidate query once against the engine, returning
// the queries it actually answers (ErrNoQuery/ErrUnsupported candidates
// are dropped) with the side effect of warming the buffer pool. Any other
// error fails the run: a broken query would poison every measurement.
func warmup(ctx context.Context, e core.Engine, class core.Class, candidates []core.QueryID) ([]core.QueryID, error) {
	p := workload.Params(class)
	var mix []core.QueryID
	for _, q := range candidates {
		if _, err := e.Execute(ctx, q, p); err != nil {
			if core.IsNotAnswered(err) {
				continue
			}
			return nil, fmt.Errorf("driver: warmup %s: %w", q, err)
		}
		mix = append(mix, q)
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("driver: engine %s answers no queries for %s", e.Name(), class)
	}
	return mix, nil
}

// Run drives cfg.Clients concurrent clients against a loaded engine and
// reports throughput and per-query latency. The engine must already be
// loaded and indexed; Run never calls Load or ColdReset, so the pool
// stays warm across a Sweep.
func Run(ctx context.Context, e core.Engine, class core.Class, cfg Config) (Report, error) {
	cfg = cfg.WithDefaults()
	rep := Report{Engine: e.Name(), Class: class, Clients: cfg.Clients}
	if cfg.UpdateFraction < 0 || cfg.UpdateFraction >= 1 {
		return rep, fmt.Errorf("driver: update fraction %v outside [0, 1)", cfg.UpdateFraction)
	}
	if cfg.UpdateFraction > 0 && class.SingleDocument() {
		return rep, fmt.Errorf("driver: mixed read/write mode needs a multi-document class, not %s", class)
	}

	candidates := cfg.Queries
	if candidates == nil {
		candidates = workload.QueryIDs(class)
	}
	mix := candidates
	if !cfg.NoWarmup {
		var err error
		if mix, err = warmup(ctx, e, class, candidates); err != nil {
			return rep, err
		}
	}
	if len(mix) == 0 {
		return rep, fmt.Errorf("driver: empty query mix")
	}
	rep.Mix = mix

	hists := make(map[core.QueryID]*metrics.Histogram, len(mix))
	for _, q := range mix {
		hists[q] = metrics.NewHistogram()
	}
	readHist := metrics.NewHistogram()
	uhists := make(map[workload.UpdateOp]*metrics.Histogram, len(cfg.UpdateOps))
	uerrs := make(map[workload.UpdateOp]*atomic.Int64, len(cfg.UpdateOps))
	for _, u := range cfg.UpdateOps {
		uhists[u] = metrics.NewHistogram()
		uerrs[u] = new(atomic.Int64)
	}
	params := workload.Params(class)

	var ops, errs, canceled, updates, updateErrs atomic.Int64
	// updateSeq hands out globally unique document sequence numbers. The
	// assignment order under concurrency is scheduling-dependent, but the
	// op streams themselves stay deterministic — sequence numbers only
	// pick document names, never what ops are drawn.
	var updateSeq atomic.Int64
	updateSeq.Store(int64(cfg.UpdateSeqBase))
	clientOps := make([]int, cfg.Clients)
	var errMu sync.Mutex
	var firstErr error

	deadline := time.Time{}
	if cfg.OpsPerClient <= 0 {
		deadline = time.Now().Add(cfg.Duration)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			rng := clientRNG(cfg.Seed, client)
			for i := 0; ; i++ {
				if cfg.OpsPerClient > 0 {
					if i >= cfg.OpsPerClient {
						return
					}
				} else if time.Now().After(deadline) {
					return
				}
				if ctx.Err() != nil {
					return
				}
				op := nextMixedOp(rng, mix, cfg.UpdateFraction, cfg.UpdateOps)
				var err error
				if op.Update != 0 {
					seq := int(updateSeq.Add(1)) - 1
					m := workload.RunUpdateOp(ctx, e, class, op.Update, seq)
					uhists[op.Update].Observe(m.Elapsed)
					updates.Add(1)
					err = m.Err
				} else {
					t0 := time.Now()
					_, err = e.Execute(ctx, op.Query, params)
					d := time.Since(t0)
					hists[op.Query].Observe(d)
					readHist.Observe(d)
				}
				ops.Add(1)
				clientOps[client]++
				switch {
				case err == nil:
				case isContextErr(err):
					// The caller canceled the run or a deadline fired:
					// accounted separately and never treated as a failure.
					canceled.Add(1)
				default:
					errs.Add(1)
					if op.Update != 0 {
						updateErrs.Add(1)
						uerrs[op.Update].Add(1)
					}
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
				}
				if cfg.Think > 0 {
					time.Sleep(cfg.Think)
				}
			}
		}(c)
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)

	rep.Ops = ops.Load()
	rep.Errs = errs.Load()
	rep.Canceled = canceled.Load()
	rep.ClientOps = clientOps
	if rep.Elapsed > 0 {
		rep.Throughput = float64(rep.Ops) / rep.Elapsed.Seconds()
	}
	rep.Updates = updates.Load()
	rep.UpdateErrs = updateErrs.Load()
	rep.NextUpdateSeq = int(updateSeq.Load())
	rep.ReadCount = readHist.Count()
	rep.ReadP50 = readHist.P50()
	rep.ReadP95 = readHist.P95()
	rep.ReadP99 = readHist.P99()
	qs := append([]core.QueryID(nil), mix...)
	sort.Slice(qs, func(i, j int) bool { return qs[i] < qs[j] })
	for _, q := range qs {
		h := hists[q]
		rep.Cells = append(rep.Cells, CellStats{
			Query: q,
			Count: h.Count(),
			Mean:  h.Mean(),
			P50:   h.P50(),
			P95:   h.P95(),
			P99:   h.P99(),
		})
	}
	if rep.Updates > 0 {
		for _, u := range cfg.UpdateOps {
			h := uhists[u]
			rep.UpdateCells = append(rep.UpdateCells, UpdateCellStats{
				Op:    u,
				Count: h.Count(),
				Errs:  uerrs[u].Load(),
				Mean:  h.Mean(),
				P50:   h.P50(),
				P95:   h.P95(),
				P99:   h.P99(),
			})
		}
	}
	if firstErr != nil {
		return rep, fmt.Errorf("driver: %d/%d queries failed, first: %w", rep.Errs, rep.Ops, firstErr)
	}
	return rep, nil
}

// FractionPoint is one step of an update-fraction sweep: the driver run
// at one update fraction.
type FractionPoint struct {
	Fraction float64
	Report   Report
}

// FractionSweep runs the driver once per update fraction over the same
// loaded engine, holding everything else (clients, ops, seed, think)
// fixed. It is the measurement behind `xbench mvcc-sweep`: with MVCC
// snapshots on, Report.ReadP99 should stay roughly flat as the update
// fraction grows, because readers never wait for the engine write lock;
// with snapshots off, reads queue behind U1-U3 and the same curve
// degrades. The warm mix and the update document sequence are threaded
// across steps exactly like Sweep does for client counts.
func FractionSweep(ctx context.Context, e core.Engine, class core.Class, fractions []float64, cfg Config) ([]FractionPoint, error) {
	var out []FractionPoint
	for _, f := range fractions {
		c := cfg
		c.UpdateFraction = f
		rep, err := Run(ctx, e, class, c)
		if err != nil {
			return out, err
		}
		out = append(out, FractionPoint{Fraction: f, Report: rep})
		cfg.NoWarmup = true
		cfg.Queries = rep.Mix
		cfg.UpdateSeqBase = rep.NextUpdateSeq
	}
	return out, nil
}

// Sweep runs the driver once per client count over the same loaded engine
// (the pool stays warm across steps, so steps differ only in concurrency).
// It is how the scaling table of `xbench throughput` is produced.
func Sweep(ctx context.Context, e core.Engine, class core.Class, clientCounts []int, cfg Config) ([]Report, error) {
	var out []Report
	for _, n := range clientCounts {
		c := cfg
		c.Clients = n
		rep, err := Run(ctx, e, class, c)
		if err != nil {
			return out, err
		}
		out = append(out, rep)
		// The first run warmed the pool and filtered the mix down to the
		// queries the engine answers; later steps must reuse that filtered
		// mix, not the raw candidate list. Mixed runs also thread the
		// update sequence forward so U1 never reuses a document name.
		cfg.NoWarmup = true
		cfg.Queries = rep.Mix
		cfg.UpdateSeqBase = rep.NextUpdateSeq
	}
	return out, nil
}
